package sensorcer

// One benchmark per reproduced figure/claim (see DESIGN.md §4 and
// EXPERIMENTS.md), plus ablation benches for the design choices DESIGN.md
// §5 calls out. Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/collect"
	"sensorcer/internal/discovery"
	"sensorcer/internal/expr"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/spot"
	"sensorcer/internal/testbed"
	"sensorcer/internal/wire"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

// --- Fig. 3: the paper's two-level composite read -----------------------

func BenchmarkFig3CompositeRead(b *testing.B) {
	d := testbed.New(testbed.Config{})
	defer d.Close()
	nm := d.Facade.Network()
	if _, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
		b.Fatal(err)
	}
	if _, err := nm.ComposeService("New-Composite",
		[]string{"Composite-Service", "Coral-Sensor"}, "(a + b)/2"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nm.GetValue("New-Composite"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C1: scalability sweeps ---------------------------------------------

func BenchmarkLookupScaling(b *testing.B) {
	for _, n := range []int{4, 64, 1024, 4096} {
		b.Run(fmt.Sprintf("services-%d", n), func(b *testing.B) {
			lus := registry.New("lus", clockwork.NewFake(epoch))
			defer lus.Close()
			for i := 0; i < n; i++ {
				esp := sensor.NewESP(fmt.Sprintf("s-%d", i),
					probe.NewReplayProbe("x", "t", "c", []float64{1}, true, nil))
				defer esp.Close()
				if _, err := lus.Register(registry.ServiceItem{
					Service: esp, Types: []string{sensor.AccessorType},
					Attributes: nameAttr(fmt.Sprintf("s-%d", i)),
				}, time.Hour); err != nil {
					b.Fatal(err)
				}
			}
			tmpl := registry.ByName(fmt.Sprintf("s-%d", n/2), sensor.AccessorType)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lus.LookupOne(tmpl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompositeFanout(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("children-%d", n), func(b *testing.B) {
			csp := sensor.NewCSP("bench")
			for i := 0; i < n; i++ {
				esp := sensor.NewESP(fmt.Sprintf("s-%d", i),
					probe.NewReplayProbe("x", "t", "c", []float64{float64(i)}, true, nil))
				defer esp.Close()
				if _, err := csp.AddChild(esp); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := csp.GetValue(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C2: plug-and-play cycle ---------------------------------------------

func BenchmarkPlugAndPlay(b *testing.B) {
	bus := discovery.NewBus()
	lus := registry.New("lus", clockwork.NewFake(epoch))
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	esp := sensor.NewESP("popup", probe.NewReplayProbe("popup", "t", "c", []float64{1}, true, nil))
	defer esp.Close()
	tmpl := registry.ByName("popup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join := esp.Publish(clockwork.Real(), mgr)
		if _, err := lus.LookupOne(tmpl); err != nil {
			b.Fatal("not visible after publish")
		}
		join.Terminate()
		if _, err := lus.LookupOne(tmpl); err == nil {
			b.Fatal("still visible after departure")
		}
	}
}

// --- C3: provisioning failover -------------------------------------------

func BenchmarkProvisionFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := testbed.New(testbed.Config{Sensors: 2, Cybernodes: 2})
		nm := d.Facade.Network()
		if err := nm.ProvisionComposite("ha", d.SensorNames(), "", sensor.QoSSpec{}); err != nil {
			b.Fatal(err)
		}
		victim := d.Nodes[0]
		if len(victim.Services()) == 0 {
			victim = d.Nodes[1]
		}
		b.StartTimer()
		victim.Kill() // synchronous re-provision via OnDeath
		if _, err := nm.GetValue("ha"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d.Close()
	}
}

// --- C4: wire overhead ----------------------------------------------------

func wireBatch(n int) []wire.Reading {
	out := make([]wire.Reading, n)
	for i := range out {
		out[i] = wire.Reading{
			SensorID:  uint16(0x1000 + i%4),
			Timestamp: epoch.Add(time.Duration(i) * 250 * time.Millisecond),
			Value:     20 + float64(i%10)*0.37,
		}
	}
	return out
}

func BenchmarkWireCompactEncode(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
			batch := wireBatch(n)
			b.ResetTimer()
			var bytes int
			for i := 0; i < b.N; i++ {
				buf, err := wire.EncodeCompact(batch)
				if err != nil {
					b.Fatal(err)
				}
				bytes = len(buf)
			}
			b.ReportMetric(float64(bytes)/float64(n), "B/reading")
		})
	}
}

func BenchmarkWireIPStyleEncode(b *testing.B) {
	r := wireBatch(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wire.EncodeIPStyle(r)
	}
	b.ReportMetric(float64(wire.IPStyleBytesPerReading), "B/reading")
}

// --- C5: aggregation tree vs direct polling -------------------------------

func BenchmarkAggregation(b *testing.B) {
	const n = 64
	d := testbed.New(testbed.Config{Sensors: n})
	defer d.Close()
	nm := d.Facade.Network()
	names := d.SensorNames()
	var groups []string
	for i := 0; i < n; i += 8 {
		g := fmt.Sprintf("g%d", i/8)
		if _, err := nm.ComposeService(g, names[i:i+8], ""); err != nil {
			b.Fatal(err)
		}
		groups = append(groups, g)
	}
	if _, err := nm.ComposeService("root", groups, ""); err != nil {
		b.Fatal(err)
	}

	b.Run("direct-poll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := 0.0
			for _, name := range names {
				r, err := nm.GetValue(name)
				if err != nil {
					b.Fatal(err)
				}
				sum += r.Value
			}
		}
	})
	b.Run("composite-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nm.GetValue("root"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C6: expression evaluation cost ---------------------------------------

func BenchmarkExprEval(b *testing.B) {
	env := expr.Env{"a": 20.0, "b": 22.0, "c": 24.0}
	b.Run("hardcoded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = (env["a"].(float64) + env["b"].(float64) + env["c"].(float64)) / 3
		}
	})
	for name, src := range map[string]string{
		"paper-avg": "(a + b + c)/3",
		"builtins":  "max(a, b, c) - min(a, b, c) + avg(a, b, c)",
		"ternary":   "a > 30 ? a : (b > 30 ? b : (a + b + c)/3)",
	} {
		p := expr.MustCompile(src)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.EvalNumber(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			expr.MustCompile("(a + b + c)/3")
		}
	})
}

// --- C7: push vs pull federation ------------------------------------------

func benchFederationRig() (*discovery.Manager, *sorcer.Exerter, func()) {
	bus := discovery.NewBus()
	lus := registry.New("lus", clockwork.NewFake(epoch))
	cancel := bus.Announce(lus)
	mgr := discovery.NewManager(bus)
	exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))
	return mgr, exerter, func() { mgr.Terminate(); cancel(); lus.Close() }
}

func benchTasks(n int) []sorcer.Exertion {
	out := make([]sorcer.Exertion, n)
	for i := range out {
		out[i] = sorcer.NewTask(fmt.Sprintf("t%d", i),
			sorcer.Sig("Adder", "add"),
			sorcer.NewContextFrom("arg/a", float64(i), "arg/b", 1.0))
	}
	return out
}

func adder(name string) *sorcer.Provider {
	p := sorcer.NewProvider(name, "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		bv, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+bv)
		return nil
	})
	return p
}

func BenchmarkPushVsPull(b *testing.B) {
	const tasks = 16
	b.Run("push-jobber", func(b *testing.B) {
		mgr, exerter, cleanup := benchFederationRig()
		defer cleanup()
		join := adder("Adder-1").Publish(clockwork.Real(), mgr, nil)
		defer join.Terminate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := sorcer.NewJob("j", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Push}, benchTasks(tasks)...)
			if _, err := exerter.Exert(job, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pull-spacer", func(b *testing.B) {
		mgr, exerter, cleanup := benchFederationRig()
		defer cleanup()
		sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
		defer sp.Close()
		var workers []*sorcer.SpaceWorker
		for i := 0; i < 4; i++ {
			workers = append(workers, sorcer.NewSpaceWorker(sp, adder(fmt.Sprintf("A%d", i)), "Adder"))
		}
		defer func() {
			for _, w := range workers {
				w.Stop()
			}
		}()
		spacer := sorcer.NewSpacer("Spacer-1", sp, sorcer.WithTaskTimeout(30*time.Second))
		join := sorcer.PublishServicer(clockwork.Real(), mgr, spacer, spacer.ID(), spacer.Name(),
			[]string{sorcer.SpacerType}, nil)
		defer join.Terminate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := sorcer.NewJob("j", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, benchTasks(tasks)...)
			if _, err := exerter.Exert(job, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

func BenchmarkProvisionPolicy(b *testing.B) {
	policies := map[string]rio.SelectionPolicy{
		"least-loaded": rio.LeastLoaded{},
		"round-robin":  &rio.RoundRobin{},
		"best-fit":     rio.BestFit{},
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				factories := rio.NewFactoryRegistry()
				factories.Register("noop", func(rio.ServiceElement) (rio.Bean, error) {
					return noopBean{}, nil
				})
				m := rio.NewMonitor(clockwork.NewFake(epoch), policy)
				for j := 0; j < 8; j++ {
					node := rio.NewCybernode(fmt.Sprintf("n%d", j),
						rio.Capability{CPUs: 4 + j, MemoryMB: 1024 << (j % 4)}, factories)
					if _, err := m.RegisterCybernode(node, time.Hour); err != nil {
						b.Fatal(err)
					}
				}
				elem := rio.ServiceElement{Name: "e", Type: "noop", Planned: 16}
				b.StartTimer()
				if err := m.Deploy(rio.OpString{Name: "s", Elements: []rio.ServiceElement{elem}}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				m.Close()
			}
		})
	}
}

type noopBean struct{}

func (noopBean) Start(*rio.Cybernode) error { return nil }
func (noopBean) Stop() error                { return nil }

func BenchmarkCSPReadStrategy(b *testing.B) {
	build := func(opts ...sensor.CSPOption) *sensor.CSP {
		csp := sensor.NewCSP("bench", opts...)
		for i := 0; i < 16; i++ {
			esp := sensor.NewESP(fmt.Sprintf("s-%d", i),
				probe.NewReplayProbe("x", "t", "c", []float64{float64(i)}, true, nil))
			b.Cleanup(func() { esp.Close() })
			csp.AddChild(esp)
		}
		return csp
	}
	b.Run("parallel", func(b *testing.B) {
		csp := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := csp.GetValue(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		csp := build(sensor.WithSequentialReads())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := csp.GetValue(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRegistryRegister(b *testing.B) {
	lus := registry.New("lus", clockwork.NewFake(epoch))
	defer lus.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lus.Register(registry.ServiceItem{
			Service: i, Types: []string{"X"}, Attributes: nameAttr(fmt.Sprint(i)),
		}, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceWriteTake(b *testing.B) {
	sp := space.New(clockwork.NewFake(epoch), lease.Policy{Max: time.Hour})
	defer sp.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Write(space.NewEntry("E", "k", i), nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if _, err := sp.Take(space.NewEntry("E"), nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceParallelMixedKinds drives concurrent write/take pairs on
// per-goroutine hot kinds while the space holds a large resident population
// of unrelated kinds. With the kind-keyed index, cost stays flat as the
// unrelated population grows; under the old linear scan it grew with it.
func BenchmarkSpaceParallelMixedKinds(b *testing.B) {
	for _, resident := range []int{0, 1024, 8192} {
		b.Run(fmt.Sprintf("resident-%d", resident), func(b *testing.B) {
			sp := space.New(clockwork.NewFake(epoch), lease.Policy{Max: time.Hour})
			defer sp.Close()
			for i := 0; i < resident; i++ {
				kind := fmt.Sprintf("COLD-%d", i%8)
				if _, err := sp.Write(space.NewEntry(kind, "k", i), nil, time.Hour); err != nil {
					b.Fatal(err)
				}
			}
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				kind := fmt.Sprintf("HOT-%d", worker.Add(1))
				i := 0
				for pb.Next() {
					if _, err := sp.Write(space.NewEntry(kind, "k", i), nil, time.Hour); err != nil {
						b.Error(err)
						return
					}
					if _, err := sp.Take(space.NewEntry(kind), nil, 0); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

func BenchmarkESPGetValue(b *testing.B) {
	esp := sensor.NewESP("s", probe.NewReplayProbe("s", "t", "c", []float64{21.5}, true, nil))
	defer esp.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := esp.GetValue(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExertTask(b *testing.B) {
	mgr, exerter, cleanup := benchFederationRig()
	defer cleanup()
	join := adder("Adder-1").Publish(clockwork.Real(), mgr, nil)
	defer join.Terminate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := sorcer.NewTask("t", sorcer.Sig("Adder", "add"),
			sorcer.NewContextFrom("arg/a", 1.0, "arg/b", 2.0))
		if _, err := exerter.Exert(task, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// nameAttr builds a single-Name attribute set.
func nameAttr(name string) attr.Set { return attr.Set{attr.Name(name)} }

// --- Radio collection pipeline (collect + spot + wire) ---------------------

func BenchmarkRadioCollection(b *testing.B) {
	fc := clockwork.NewFake(epoch)
	link := spot.NewLink(0, 0, 1)
	dev := spot.NewDevice(spot.Config{Name: "field", Addr: 0x2001, Clock: fc, Link: link})
	dev.Attach(spot.ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	collector := collect.NewCollector(fc)
	collector.Track(0x2001, "field", "temperature", "celsius")
	link.SetReceiver(collector.Receive)
	node := collect.NewFieldNode(dev, "temperature", 0x1, collect.MaxBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := node.Sample(); err != nil {
			b.Fatal(err)
		}
		fc.Advance(time.Second)
	}
	b.StopTimer()
	node.Flush()
	_, _, _, bytes := link.Stats()
	b.ReportMetric(float64(bytes)/float64(b.N), "radioB/reading")
}
