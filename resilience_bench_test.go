package sensorcer

// Overhead of the resilience layer on the exert hot path. The acceptance
// bar (DESIGN.md §6): a configured-but-idle Policy + BreakerSet must cost
// <5% over a bare exert when no faults occur.
//
//	go test -bench=Resilience -benchmem

import (
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/resilience"
	"sensorcer/internal/sorcer"
)

// benchRig is the minimal push federation: one LUS, one Adder provider.
type benchRig struct {
	accessor *sorcer.Accessor
	close    func()
}

func newBenchRig(b *testing.B) *benchRig {
	b.Helper()
	bus := discovery.NewBus()
	lus := registry.New("bench-lus", clockwork.Real())
	cancel := bus.Announce(lus)
	mgr := discovery.NewManager(bus)
	p := sorcer.NewProvider("Adder", "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		x, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+x)
		return nil
	})
	join := p.Publish(clockwork.Real(), mgr, nil)
	return &benchRig{
		accessor: sorcer.NewAccessor(mgr),
		close: func() {
			join.Terminate()
			mgr.Terminate()
			cancel()
			lus.Close()
		},
	}
}

func benchExert(b *testing.B, ex *sorcer.Exerter) {
	b.Helper()
	task := sorcer.NewTask("add", sorcer.Sig("Adder", "add"),
		sorcer.NewContextFrom("arg/a", 2.0, "arg/b", 3.0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exert(task, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilienceExertBare(b *testing.B) {
	r := newBenchRig(b)
	defer r.close()
	benchExert(b, sorcer.NewExerter(r.accessor))
}

func BenchmarkResilienceExertUnderPolicy(b *testing.B) {
	r := newBenchRig(b)
	defer r.close()
	ex := sorcer.NewExerter(r.accessor,
		sorcer.WithRebindPolicy(resilience.Policy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		}),
		sorcer.WithBreakers(resilience.NewBreakerSet(clockwork.Real(), resilience.BreakerConfig{
			FailureThreshold: 5,
			Cooldown:         time.Second,
		})))
	benchExert(b, ex)
}

// BenchmarkResiliencePolicyRun isolates the policy wrapper itself: a no-op
// operation under the zero policy (single attempt) and under a full retry
// configuration that never has to retry.
func BenchmarkResiliencePolicyRun(b *testing.B) {
	noop := func(resilience.Attempt) error { return nil }
	b.Run("zero-policy", func(b *testing.B) {
		var p resilience.Policy
		for i := 0; i < b.N; i++ {
			if err := p.Run(noop); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("configured-no-fault", func(b *testing.B) {
		p := resilience.Policy{
			MaxAttempts:    5,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			AttemptTimeout: time.Second,
		}
		for i := 0; i < b.N; i++ {
			if err := p.Run(noop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResilienceBreakerAllow isolates the per-call breaker check on
// the bound-provider path.
func BenchmarkResilienceBreakerAllow(b *testing.B) {
	bs := resilience.NewBreakerSet(clockwork.Real(), resilience.BreakerConfig{
		FailureThreshold: 5,
		Cooldown:         time.Second,
	})
	br := bs.For("provider-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Allow(); err != nil {
			b.Fatal("closed breaker refused:", err)
		}
		br.Record(nil)
	}
}
