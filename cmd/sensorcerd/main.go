// Command sensorcerd runs SenSORCER network components as standalone
// processes, connected over srpc — the cross-process deployment mode.
//
// Start a lookup service:
//
//	sensorcerd lus -listen 127.0.0.1:4160
//
// Start a simulated SPOT sensor node that registers with it:
//
//	sensorcerd esp -name Neem-Sensor -lus 127.0.0.1:4160 -seed 1
//
// Host a shard backup replica in its own process (a primary elsewhere
// ships its journal to it over srpc):
//
//	sensorcerd shard -name s0 -listen 127.0.0.1:4170 -dir /var/lib/sensorcer/s0
//
// Then browse the network from a third process:
//
//	sensorbrowser -lus 127.0.0.1:4160
//
// The lus process also hosts coordination leases, so coordinator
// replicas in other processes can compete for the space-coordinator
// role with fencing tokens (see internal/repl's coordination plane).
//
// Components keep their registration leases renewed; killing an esp
// process makes its service expire from the lookup service within the
// lease term, exactly the paper's crash semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/remote"
	"sensorcer/internal/repl"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/spot"
	"sensorcer/internal/srpc"
	"sensorcer/internal/subscribe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "lus":
		runLUS(os.Args[2:])
	case "esp":
		runESP(os.Args[2:])
	case "shard":
		runShard(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sensorcerd lus -listen host:port [-codec binary|json]
  sensorcerd esp -name <name> -lus host:port [-seed n] [-interval 1s]
  sensorcerd shard -name <shard> -listen host:port [-dir path] [-codec binary|json]`)
	os.Exit(2)
}

// parseCodec resolves a -codec flag value or exits with usage help. The
// flag exists for ablation: "json" pins a component to the legacy
// line-delimited protocol (it never sends the binary preamble, so every
// peer negotiates down), "binary" is the default length-prefixed codec.
func parseCodec(v string) srpc.Codec {
	c, err := srpc.ParseCodec(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensorcerd:", err)
		os.Exit(2)
	}
	return c
}

func runLUS(args []string) {
	fs := flag.NewFlagSet("lus", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:4160", "srpc listen address")
	leaseMax := fs.Duration("lease-max", 30*time.Second, "maximum registration lease")
	token := fs.String("token", "", "shared secret required from clients (empty = open)")
	announce := fs.String("announce", "", "UDP address to send discovery announcements to (optional)")
	groups := fs.String("groups", discovery.PublicGroup, "comma-separated discovery groups")
	codec := fs.String("codec", "binary", "wire codec to offer (binary|json)")
	fs.Parse(args)

	clock := clockwork.Real()
	lus := registry.New(*listen, clock,
		registry.WithLeasePolicy(lease.Policy{Max: *leaseMax}))
	defer lus.Close()

	server := srpc.NewServer()
	server.SetCodec(parseCodec(*codec))
	if *token != "" {
		server.SetToken(*token)
	}
	if err := server.Listen(*listen); err != nil {
		fatal(err)
	}
	defer server.Close()
	remote.ServeRegistrar(server, lus)
	// The lookup service doubles as the coordination-lease host, so
	// coordinator replicas in other processes can compete for
	// single-holder roles with fencing tokens.
	remote.ServeCoordination(server, lus)

	// Sweep expired registrations periodically so crashed providers
	// disappear even with no lookup traffic.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				lus.SweepNow()
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	if *announce != "" {
		ann, err := discovery.NewAnnouncer(*announce, discovery.Packet{
			ID:      lus.ID(),
			Name:    lus.Name(),
			Groups:  strings.Split(*groups, ","),
			Locator: server.Addr(),
		}, 2*time.Second)
		if err != nil {
			fatal(err)
		}
		defer ann.Stop()
		fmt.Printf("announcing to %s (groups %s)\n", *announce, *groups)
	}

	fmt.Printf("lookup service %s serving on %s (lease max %v)\n", lus.ID().Short(), server.Addr(), *leaseMax)
	waitForSignal()
}

func runESP(args []string) {
	fs := flag.NewFlagSet("esp", flag.ExitOnError)
	name := fs.String("name", "Spot-Sensor", "sensor service name")
	lusAddr := fs.String("lus", "127.0.0.1:4160", "lookup service locator")
	seed := fs.Int64("seed", 1, "simulation seed")
	interval := fs.Duration("interval", time.Second, "background sample interval (0 = on demand)")
	listen := fs.String("listen", "127.0.0.1:0", "srpc export address")
	leaseDur := fs.Duration("lease", 10*time.Second, "registration lease to request")
	token := fs.String("token", "", "shared secret for the deployment (empty = open)")
	codec := fs.String("codec", "binary", "wire codec to offer (binary|json)")
	push := fs.Bool("push", false, "serve push subscriptions (multiplexed streams) alongside polled reads")
	fs.Parse(args)

	clock := clockwork.Real()
	device := spot.NewDevice(spot.Config{Name: *name, Clock: clock})
	device.Attach(spot.NewTemperatureModel(22, 6, 0, 0.3, *seed))
	opts := []sensor.ESPOption{sensor.WithClock(clock)}
	if *interval > 0 {
		opts = append(opts, sensor.WithSampleInterval(*interval))
	}
	esp := sensor.NewESP(*name, probe.NewSpotProbe(*name, device, "temperature", nil), opts...)
	esp.Start()
	defer esp.Close()

	server := srpc.NewServer()
	server.SetCodec(parseCodec(*codec))
	if *token != "" {
		server.SetToken(*token)
	}
	if err := server.Listen(*listen); err != nil {
		fatal(err)
	}
	defer server.Close()
	desc := remote.ServeAccessor(server, *name, esp)
	if *push {
		// Subscription plane: every background sample marks the source
		// dirty; one evaluation fans out to all stream subscribers.
		hub := subscribe.NewHub(subscribe.WithHubClock(clock))
		defer hub.Close()
		src := subscribe.NewSource(hub, esp)
		src.Start()
		defer src.Stop()
		if _, err := esp.Events().Register(sensor.EventReadingUpdate, src.Listener(), 24*time.Hour); err != nil {
			fatal(err)
		}
		remote.ServeSubscriptions(server, hub)
	}

	rc, err := dialRegistrar(*lusAddr, *token)
	if err != nil {
		fatal(err)
	}
	defer rc.Close()
	info := esp.Describe()
	reg, err := rc.Register(registry.ServiceItem{
		Service: desc,
		Types:   []string{sensor.AccessorType},
		Attributes: attr.Set{
			attr.Name(*name),
			attr.SensorType(info.Kind, info.Unit),
			attr.ServiceType(sensor.CategoryElementary),
		},
	}, *leaseDur)
	if err != nil {
		fatal(err)
	}
	renewals := lease.NewRenewalManager(clock, lease.WithRequest(*leaseDur),
		lease.WithFailureHandler(func(_ *lease.Lease, err error) {
			fmt.Fprintf(os.Stderr, "lease renewal failed: %v\n", err)
		}))
	defer renewals.Stop()
	renewals.Manage(&reg.Lease)

	fmt.Printf("%s exporting on %s, registered at %s as %s\n",
		*name, server.Addr(), *lusAddr, reg.ServiceID.Short())
	waitForSignal()
	// Orderly departure.
	_ = rc.Deregister(reg.ServiceID)
}

// runShard hosts one shard backup replica as its own process: a
// repl.Node over a WAL directory, serving the replication endpoints
// (batch ship, snapshot install, heartbeat) over srpc. A primary in
// another process attaches it as a follower and ships its journal here,
// so the shard's redundancy survives the primary's machine.
func runShard(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	name := fs.String("name", "s0", "shard name the primary dials (must match its shard)")
	listen := fs.String("listen", "127.0.0.1:0", "srpc listen address")
	dir := fs.String("dir", "", "WAL directory for the replica (empty = fresh temp dir)")
	leaseMax := fs.Duration("lease-max", 30*time.Second, "maximum entry lease on the hosted replica")
	token := fs.String("token", "", "shared secret required from clients (empty = open)")
	codec := fs.String("codec", "binary", "wire codec to offer (binary|json)")
	fs.Parse(args)

	clock := clockwork.Real()
	if *dir == "" {
		d, err := os.MkdirTemp("", "sensorcerd-shard-*")
		if err != nil {
			fatal(err)
		}
		*dir = d
	}
	node, err := repl.NewNode(*name+"-backup", clock, lease.Policy{Max: *leaseMax}, *dir)
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	server := srpc.NewServer()
	server.SetCodec(parseCodec(*codec))
	if *token != "" {
		server.SetToken(*token)
	}
	if err := server.Listen(*listen); err != nil {
		fatal(err)
	}
	defer server.Close()
	desc := remote.ServeReplication(server, *name, node)

	fmt.Printf("shard %s backup serving on %s (wal %s)\n", *name, desc.Locator, *dir)
	waitForSignal()
}

// dialRegistrar connects to a lookup service, with or without a token.
func dialRegistrar(addr, token string) (*remote.RegistrarClient, error) {
	if token != "" {
		return remote.NewRegistrarClientWithToken(addr, token, 5*time.Second)
	}
	return remote.NewRegistrarClient(addr, 5*time.Second)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("\nshutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sensorcerd:", err)
	os.Exit(1)
}
