// Command sensorlint runs sensorcer's project-specific static analyzers
// over the repository (see internal/lint). It is the machine check behind
// `make lint`: the invariants that keep the federation deterministic and
// un-wedgeable — no wall-clock in library code, no uncancellable
// goroutines, no RPC under a mutex, disciplined fault sites and contexts,
// no silently dropped Cancel/Abort/Close errors.
//
// Usage:
//
//	sensorlint [-checks rawclock,ctxflow] [-list] [-why] [packages]
//
// Packages default to ./... relative to the enclosing module root. Exit
// codes compose staticcheck-style: 0 clean, 1 diagnostics reported, 2 the
// analysis itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sensorcer/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list   = flag.Bool("list", false, "list analyzers and exit")
		checks = flag.String("checks", "", "comma-separated analyzers to run (default: all)")
		why    = flag.Bool("why", false, "print the full call chain behind whole-program diagnostics")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(*checks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sensorlint:", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensorlint:", err)
		return 2
	}
	root, module, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensorlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are interpreted relative to the invocation directory but
	// loaded against the module root, so `sensorlint ./...` works from a
	// subdirectory too.
	if rel, err := filepath.Rel(root, cwd); err == nil && rel != "." {
		for i, p := range patterns {
			patterns[i] = filepath.Join(rel, strings.TrimPrefix(p, "./"))
		}
	}

	diags, err := lint.Run(root, module, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensorlint:", err)
		return 2
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s (sensorlint/%s)\n", pos, d.Message, d.Analyzer)
		if *why {
			for _, hop := range d.Chain {
				fmt.Printf("\t%s\n", hop)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sensorlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
