// Command sensorbrowser is the zero-install Sensor Browser of the paper's
// Fig. 2: a text UI attached to a SenSORCER façade. It runs in two modes:
//
//	sensorbrowser -demo
//	    embeds a complete simulated deployment (four SPOT temperature
//	    sensors, two cybernodes, a provision monitor) and opens the
//	    browser on it — the fastest way to walk the paper's experiment.
//
//	sensorbrowser -lus host:port
//	    attaches to a remote lookup service exported by
//	    "sensorcerd lus" and browses the live cross-process network.
//
// Type "help" at the prompt for commands.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"sensorcer/internal/browser"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/remote"
	"sensorcer/internal/sensor"
	"sensorcer/internal/srpc"
	"sensorcer/internal/testbed"
)

func main() {
	demo := flag.Bool("demo", false, "run against an embedded simulated deployment")
	lusAddr := flag.String("lus", "", "remote lookup service locator (host:port)")
	discover := flag.String("discover", "", "UDP address to listen on for lookup-service announcements")
	token := flag.String("token", "", "shared secret for the deployment (empty = open)")
	script := flag.String("c", "", "run a single command and exit")
	flag.Parse()

	var controller *browser.Controller
	switch {
	case *demo:
		d := testbed.New(testbed.Config{})
		defer d.Close()
		// Pre-build the paper's subnet so "list"/"info" show something.
		if _, err := d.Facade.Network().ComposeService("Composite-Service",
			[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
			fatal(err)
		}
		controller = browser.NewController(d.Facade, d.Mgr)
		fmt.Println("demo deployment up: 4 SPOT sensors, 2 cybernodes, 1 composite")
	case *lusAddr != "":
		rc, err := dialRegistrar(*lusAddr, *token)
		if err != nil {
			fatal(err)
		}
		defer rc.Close()
		bus := discovery.NewBus()
		defer bus.Announce(rc)()
		mgr := discovery.NewManager(bus)
		defer mgr.Terminate()
		facade := sensor.NewFacade("browser-facade", clockwork.Real(), mgr)
		attachExporter(facade)
		controller = browser.NewController(facade, mgr)
		fmt.Printf("attached to lookup service at %s\n", *lusAddr)
	case *discover != "":
		// Dynamic discovery: lookup services announce themselves over
		// UDP; each announcement's locator is dialed into a registrar
		// stub, and the browser tracks arrivals and departures.
		bus := discovery.NewBus()
		resolver := func(locator string) (registry.Registrar, error) {
			return dialRegistrar(locator, *token)
		}
		listener, err := discovery.NewUDPListener(*discover, nil, bus, resolver, clockwork.Real(), 10*time.Second)
		if err != nil {
			fatal(err)
		}
		defer listener.Close()
		mgr := discovery.NewManager(bus)
		defer mgr.Terminate()
		facade := sensor.NewFacade("browser-facade", clockwork.Real(), mgr)
		attachExporter(facade)
		controller = browser.NewController(facade, mgr)
		fmt.Printf("listening for lookup-service announcements on %s\n", listener.Addr())
		// Give the first announcement a moment to land before one-shot
		// commands run.
		if *script != "" {
			deadline := time.Now().Add(5 * time.Second)
			for len(mgr.Registrars()) == 0 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Millisecond)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "need -demo, -lus host:port, or -discover host:port")
		os.Exit(2)
	}

	if *script != "" {
		out, err := controller.Execute(*script)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	fmt.Println(`SenSORCER sensor browser — "help" for commands, ctrl-D to exit`)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("sensorcer> ")
	for scanner.Scan() {
		out, err := controller.Execute(scanner.Text())
		if err != nil {
			fmt.Printf("error: %v\n", err)
		} else if out != "" {
			fmt.Println(out)
		}
		fmt.Print("sensorcer> ")
	}
	fmt.Println()
}

// dialRegistrar connects to a lookup service, with or without a token.
func dialRegistrar(addr, token string) (*remote.RegistrarClient, error) {
	if token != "" {
		return remote.NewRegistrarClientWithToken(addr, token, 5*time.Second)
	}
	return remote.NewRegistrarClient(addr, 5*time.Second)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sensorbrowser:", err)
	os.Exit(1)
}

// attachExporter gives the browser's façade an srpc export server so
// composites composed from this browser are registered with proxy
// descriptors and stay reachable from other processes.
func attachExporter(facade *sensor.Facade) {
	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		fatal(err)
	}
	facade.Network().SetExporter(remote.AccessorExporter(server))
}
