// Command experiments regenerates the paper's figures and claim
// benchmarks (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-versus-measured record).
//
// Usage:
//
//	experiments             # run everything
//	experiments -run fig3   # one experiment
//	experiments -list       # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"sensorcer/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failed := 0
	for _, e := range toRun {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
