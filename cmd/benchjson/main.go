// Command benchjson converts `go test -bench` output into a machine-
// readable JSON file so the repo can keep a perf trajectory across PRs
// (see `make bench`, which writes BENCH_PR4.json). Input is read from
// stdin and echoed through unchanged, so it can sit at the end of a pipe
// without hiding the human-readable results.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result holds the standard testing.B metrics plus any custom
// b.ReportMetric values keyed by their unit (e.g. "B/reading").
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix strips the -GOMAXPROCS suffix Go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(fields []string) (string, Result, bool) {
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			ok = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return cpuSuffix.ReplaceAllString(fields[0], ""), res, ok
}

func main() {
	out := flag.String("o", "", "output JSON file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o <file> is required")
		os.Exit(2)
	}

	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, res, ok := parseLine(strings.Fields(line)); ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	// encoding/json writes map keys in sorted order, so the file diffs
	// cleanly between PRs.
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
