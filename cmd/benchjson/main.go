// Command benchjson converts `go test -bench` output into a machine-
// readable JSON file so the repo can keep a perf trajectory across PRs
// (see `make bench`, which writes BENCH_PR4.json). Input is read from
// stdin and echoed through unchanged, so it can sit at the end of a pipe
// without hiding the human-readable results.
//
// With -compare it instead diffs two such files:
//
//	benchjson -compare [-threshold 4.0] old.json new.json
//
// Each benchmark present in both files is compared by ns/op; a ratio
// above the threshold is a regression and the exit code is 1 (so CI can
// gate on `make bench-compare`). Benchmarks present in only one file are
// reported but never fail the run — the suite grows between PRs. Alloc
// count increases are warnings only: single-iteration CI runs are too
// noisy to gate on, but the jump is worth a line in the log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds the standard testing.B metrics plus any custom
// b.ReportMetric values keyed by their unit (e.g. "B/reading").
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix strips the -GOMAXPROCS suffix Go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(fields []string) (string, Result, bool) {
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			ok = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return cpuSuffix.ReplaceAllString(fields[0], ""), res, ok
}

// median returns the middle sample (mean of the middle two for even
// counts). The input is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// aggregate collapses repeated samples of the same benchmark (from
// `go test -count=N`) into one Result per name by taking the median of
// every metric independently — the standard robust choice for benchmark
// noise, matching what benchstat centers on.
func aggregate(samples map[string][]Result) map[string]Result {
	out := make(map[string]Result, len(samples))
	for name, ss := range samples {
		if len(ss) == 1 {
			out[name] = ss[0]
			continue
		}
		var agg Result
		pick := func(get func(Result) (float64, bool)) (float64, bool) {
			var vals []float64
			for _, s := range ss {
				if v, ok := get(s); ok {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				return 0, false
			}
			return median(vals), true
		}
		ns, _ := pick(func(r Result) (float64, bool) { return r.NsPerOp, true })
		agg.NsPerOp = ns
		iters, _ := pick(func(r Result) (float64, bool) { return float64(r.Iterations), true })
		agg.Iterations = int64(iters)
		if v, ok := pick(func(r Result) (float64, bool) {
			if r.BytesPerOp == nil {
				return 0, false
			}
			return *r.BytesPerOp, true
		}); ok {
			agg.BytesPerOp = &v
		}
		if v, ok := pick(func(r Result) (float64, bool) {
			if r.AllocsPerOp == nil {
				return 0, false
			}
			return *r.AllocsPerOp, true
		}); ok {
			agg.AllocsPerOp = &v
		}
		units := make(map[string]bool)
		for _, s := range ss {
			for u := range s.Metrics {
				units[u] = true
			}
		}
		for u := range units {
			if v, ok := pick(func(r Result) (float64, bool) {
				m, ok := r.Metrics[u]
				return m, ok
			}); ok {
				if agg.Metrics == nil {
					agg.Metrics = make(map[string]float64)
				}
				agg.Metrics[u] = v
			}
		}
		out[name] = agg
	}
	return out
}

func loadResults(path string) (map[string]Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return m, nil
}

// compare diffs new against old by ns/op median and writes a report to
// stdout. It returns the number of regressions past the threshold.
func compare(old, new map[string]Result, threshold float64) int {
	names := make([]string, 0, len(new))
	for name := range new {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		n := new[name]
		o, ok := old[name]
		if !ok {
			fmt.Printf("%-60s  new benchmark (%.1f ns/op)\n", name, n.NsPerOp)
			continue
		}
		if o.NsPerOp <= 0 {
			fmt.Printf("%-60s  baseline has no ns/op, skipped\n", name)
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		status := "ok"
		if ratio > threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-60s  %12.1f -> %12.1f ns/op  (%.2fx)  %s\n",
			name, o.NsPerOp, n.NsPerOp, ratio, status)
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil && *n.AllocsPerOp > *o.AllocsPerOp {
			fmt.Printf("%-60s  warning: allocs/op rose %.1f -> %.1f\n",
				name, *o.AllocsPerOp, *n.AllocsPerOp)
		}
	}
	var removed []string
	for name := range old {
		if _, ok := new[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-60s  missing from new run\n", name)
	}
	return regressions
}

func main() {
	out := flag.String("o", "", "output JSON file (capture mode)")
	doCompare := flag.Bool("compare", false, "compare two JSON files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 4.0, "ns/op ratio past which a benchmark counts as regressed (compare mode); generous because CI smoke runs use -benchtime=1x")
	flag.Parse()

	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		old, err := loadResults(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		new, err := loadResults(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if n := compare(old, new, *threshold); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.2fx\n", n, *threshold)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regression past %.2fx across %d benchmark(s)\n", *threshold, len(new))
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o <file> is required (or -compare old.json new.json)")
		os.Exit(2)
	}

	samples := make(map[string][]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, res, ok := parseLine(strings.Fields(line)); ok {
			samples[name] = append(samples[name], res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	results := aggregate(samples)

	// encoding/json writes map keys in sorted order, so the file diffs
	// cleanly between PRs.
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
