package main

import "testing"

func f64(v float64) *float64 { return &v }

func TestParseLineStripsCPUSuffixAndReadsMetrics(t *testing.T) {
	name, res, ok := parseLine([]string{
		"BenchmarkSpaceTake-8", "12345", "812.5", "ns/op", "16", "B/op", "1", "allocs/op", "42.5", "B/reading",
	})
	if !ok {
		t.Fatal("expected line to parse")
	}
	if name != "BenchmarkSpaceTake" {
		t.Fatalf("name = %q", name)
	}
	if res.Iterations != 12345 || res.NsPerOp != 812.5 {
		t.Fatalf("iters/ns = %d/%v", res.Iterations, res.NsPerOp)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 16 || res.AllocsPerOp == nil || *res.AllocsPerOp != 1 {
		t.Fatalf("B/op allocs/op = %v %v", res.BytesPerOp, res.AllocsPerOp)
	}
	if res.Metrics["B/reading"] != 42.5 {
		t.Fatalf("custom metric = %v", res.Metrics)
	}
}

func TestParseLineRejectsNonBenchmarkLines(t *testing.T) {
	for _, fields := range [][]string{
		{"ok", "sensorcer/internal/space", "1.2s"},
		{"BenchmarkX", "notanint", "10", "ns/op"},
		{"BenchmarkX", "10"},
	} {
		if _, _, ok := parseLine(fields); ok {
			t.Fatalf("expected %v to be rejected", fields)
		}
	}
}

func TestAggregateTakesMedianOfRepeatedSamples(t *testing.T) {
	samples := map[string][]Result{
		"BenchmarkX": {
			{Iterations: 100, NsPerOp: 50, AllocsPerOp: f64(2)},
			{Iterations: 90, NsPerOp: 500, AllocsPerOp: f64(2)},
			{Iterations: 110, NsPerOp: 60, AllocsPerOp: f64(2)},
		},
	}
	got := aggregate(samples)["BenchmarkX"]
	if got.NsPerOp != 60 {
		t.Fatalf("median ns/op = %v, want 60 (outlier 500 should not dominate)", got.NsPerOp)
	}
	if got.Iterations != 100 {
		t.Fatalf("median iterations = %d, want 100", got.Iterations)
	}
	if got.AllocsPerOp == nil || *got.AllocsPerOp != 2 {
		t.Fatalf("allocs = %v", got.AllocsPerOp)
	}
}

func TestAggregateEvenCountAveragesMiddlePair(t *testing.T) {
	samples := map[string][]Result{
		"BenchmarkY": {{NsPerOp: 10}, {NsPerOp: 20}, {NsPerOp: 30}, {NsPerOp: 1000}},
	}
	if got := aggregate(samples)["BenchmarkY"].NsPerOp; got != 25 {
		t.Fatalf("median of even count = %v, want 25", got)
	}
}

func TestCompareFlagsOnlyPastThreshold(t *testing.T) {
	old := map[string]Result{
		"BenchmarkStable":  {NsPerOp: 100},
		"BenchmarkSlower":  {NsPerOp: 100},
		"BenchmarkRemoved": {NsPerOp: 100},
	}
	new := map[string]Result{
		"BenchmarkStable": {NsPerOp: 150}, // 1.5x: within a 2x threshold
		"BenchmarkSlower": {NsPerOp: 300}, // 3x: regression
		"BenchmarkAdded":  {NsPerOp: 100}, // only in new: never fails
	}
	if n := compare(old, new, 2.0); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	if n := compare(old, new, 5.0); n != 0 {
		t.Fatalf("regressions at 5x = %d, want 0", n)
	}
}

func TestCompareToleratesZeroBaseline(t *testing.T) {
	old := map[string]Result{"BenchmarkZ": {NsPerOp: 0}}
	new := map[string]Result{"BenchmarkZ": {NsPerOp: 100}}
	if n := compare(old, new, 2.0); n != 0 {
		t.Fatalf("zero baseline must be skipped, got %d regressions", n)
	}
}
