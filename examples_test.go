package sensorcer

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example end to end — examples are the
// public face of the library and must not rot. Skipped under -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := map[string][]string{
		"quickstart":  {"Greenhouse-Average", "services on the network"},
		"farm":        {"farm-mean", "battery", "after dropping pasture-4"},
		"failover":    {"PROVISIONED", "NODE-LOST", "answering again"},
		"airvehicle":  {"pull-mode fleet sweep", "job status: DONE"},
		"metacompute": {"sqrt(square(7)) = 7", "sum of squares 1..9 = 285"},
		"fieldradio":  {"radio-collected sensors", "field-mean =", "battery after the campaign"},
	}
	for name, wants := range examples {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
