// Package sensorcer is a from-scratch Go reproduction of "SenSORCER: A
// Framework for Managing Sensor-Federated Networks" (Bhosale & Sobolewski,
// ICPP Workshops 2009): a service-oriented sensor federation in which
// elementary sensor providers wrap device probes, composite providers
// aggregate them with runtime compute-expressions, and a façade manages
// the logical network — all on top of reimplemented Jini (lookup,
// discovery, leases, events, transactions, tuple space), Rio (cybernodes,
// provision monitor, QoS placement, failover) and SORCER
// (exertion-oriented programming with push/pull federation) substrates.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and examples/ for runnable entry points.
// The root bench_test.go holds one benchmark per reproduced figure/claim.
package sensorcer
