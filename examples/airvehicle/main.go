// Airvehicle: the paper's stated next step ("we are planning for
// large-scale air vehicles distributed applications", §VIII, funded by the
// AFRL Air Vehicles Directorate). Three simulated vehicles each carry
// temperature, humidity and vibration sensors; a ground station collects a
// fleet health picture two ways:
//
//  1. direct federated reads through per-vehicle composite services, and
//  2. an exertion job in pull mode: tasks dropped into the exertion space
//     and drained by per-vehicle space workers — SORCER's Spacer
//     federation, which load-balances across vehicles without the ground
//     station ever binding to one.
package main

import (
	"fmt"
	"log"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/spot"
)

func main() {
	clock := clockwork.Real()
	bus := discovery.NewBus()
	lus := registry.New("ground-station", clock)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))

	vehicles := []string{"raven-1", "raven-2", "raven-3"}
	sp := space.New(clock, lease.Policy{Max: time.Minute})
	defer sp.Close()
	var workers []*sorcer.SpaceWorker

	for vi, vehicle := range vehicles {
		seed := int64(vi + 1)
		// On-board sensor suite.
		dev := spot.NewDevice(spot.Config{Name: vehicle, Clock: clock})
		dev.Attach(spot.NewTemperatureModel(-5, 3, float64(vi), 0.4, seed))
		dev.Attach(spot.NewHumidityModel(40, 10, 2, seed+100))

		var members []string
		for _, kind := range []string{"temperature", "humidity"} {
			name := fmt.Sprintf("%s/%s", vehicle, kind)
			esp := sensor.NewESP(name, probe.NewSpotProbe(name, dev, kind, nil))
			defer esp.Close()
			defer esp.Publish(clock, mgr).Terminate()
			members = append(members, name)
		}
		// Vibration from a synthetic model (different sensor technology,
		// same framework — §VII technology independence).
		vibName := vehicle + "/vibration"
		vib := sensor.NewESP(vibName, probe.NewSyntheticProbe(vibName,
			spot.NewTemperatureModel(0.2, 0.1, 0, 0.05, seed+200), clock, nil))
		defer vib.Close()
		defer vib.Publish(clock, mgr).Terminate()
		members = append(members, vibName)

		// Per-vehicle health composite: normalized stress score.
		facadeless := sensor.NewCSP(vehicle + "/health")
		for _, m := range members {
			acc := mustAccessor(mgr, m)
			if _, err := facadeless.AddChild(acc); err != nil {
				log.Fatal(err)
			}
		}
		// a=temp, b=humidity, c=vibration: alarm-ish scalar.
		if err := facadeless.SetExpression("abs(a + 5)/10 + b/100 + c*2"); err != nil {
			log.Fatal(err)
		}
		defer facadeless.Publish(clock, mgr).Terminate()

		// Each vehicle also works the exertion space for its telemetry
		// service type.
		telemetry := sorcer.NewProvider(vehicle+"/telemetry", "Telemetry")
		telemetry.RegisterOp("snapshot", func(vehicle string, csp *sensor.CSP) sorcer.Operation {
			return func(ctx *sorcer.Context) error {
				r, err := csp.GetValue()
				if err != nil {
					return err
				}
				ctx.Put("telemetry/vehicle", vehicle)
				ctx.Put("telemetry/health", r.Value)
				return nil
			}
		}(vehicle, facadeless))
		workers = append(workers, sorcer.NewSpaceWorker(sp, telemetry, "Telemetry"))
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
	}()

	facade := sensor.NewFacade("Ground Station", clock, mgr)
	defer facade.Publish().Terminate()

	// 1. Direct federated reads.
	fmt.Println("direct federated reads:")
	for _, v := range vehicles {
		r, err := facade.Network().GetValue(v + "/health")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s health=%.3f\n", v+"/health", r.Value)
	}

	// 2. Pull-mode exertion job: one snapshot task per vehicle, drained
	// from the exertion space by the vehicles themselves.
	spacer := sorcer.NewSpacer("Ground-Spacer", sp, sorcer.WithTaskTimeout(10*time.Second))
	defer sorcer.PublishServicer(clock, mgr, spacer, spacer.ID(), spacer.Name(),
		[]string{sorcer.SpacerType}, nil).Terminate()

	var tasks []sorcer.Exertion
	for range vehicles {
		tasks = append(tasks, sorcer.NewTask("snapshot",
			sorcer.Sig("Telemetry", "snapshot"), nil))
	}
	job := sorcer.NewJob("fleet-sweep", sorcer.Strategy{
		Flow: sorcer.Parallel, Access: sorcer.Pull,
	}, tasks...)
	res, err := exerter.Exert(job, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npull-mode fleet sweep (exertion space):")
	served := map[string]int{}
	for _, ex := range job.Exertions() {
		v, _ := ex.Context().StringAt("telemetry/vehicle")
		h, _ := ex.Context().Float("telemetry/health")
		fmt.Printf("  task %-10s served by %-8s health=%.3f\n", ex.Name(), v, h)
		served[v]++
	}
	fmt.Printf("job status: %v, %d vehicles participated\n", res.Status(), len(served))
}

func mustAccessor(mgr *discovery.Manager, name string) sensor.DataAccessor {
	for _, reg := range mgr.Registrars() {
		if item, err := reg.LookupOne(registry.ByName(name, sensor.AccessorType)); err == nil {
			if acc, ok := item.Service.(sensor.DataAccessor); ok {
				return acc
			}
		}
	}
	log.Fatalf("accessor %q not found", name)
	return nil
}
