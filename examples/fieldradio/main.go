// Fieldradio: the full MC² loop (§V-A — Measure, Compute, Communicate)
// for sensors too weak to host services themselves. Six battery-powered
// field nodes sample temperature and ship compact batches over a lossy
// 802.15.4 radio to a collection point; the collector re-exposes each
// field sensor as a standard SensorDataAccessor, registers them in the
// lookup service, and from there they compose and aggregate like any
// other sensor service — the paper's legacy-sensor integration (§III-B)
// with the motivation-#1 economics (framing overhead = battery life) made
// visible.
package main

import (
	"fmt"
	"log"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/collect"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/spot"
)

func main() {
	clock := clockwork.Real()

	// Infrastructure.
	bus := discovery.NewBus()
	lus := registry.New("basecamp-lus", clock)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	facade := sensor.NewFacade("Basecamp", clock, mgr)
	nm := facade.Network()

	// The collection point: one lossy radio link per field node.
	collector := collect.NewCollector(clock)
	const nodes = 6
	const batch = 4
	var fieldNodes []*collect.FieldNode
	var devices []*spot.Device
	budget := 50_000.0 // µJ per node
	for i := 0; i < nodes; i++ {
		link := spot.NewLink(0.15, 0, int64(i+1)) // 15% frame loss in the field
		link.SetReceiver(collector.Receive)
		addr := uint16(0x3000 + i)
		name := fmt.Sprintf("field-%d", i+1)
		dev := spot.NewDevice(spot.Config{
			Name: name, Addr: addr, Clock: clock, Link: link, BatteryMicroJ: budget,
		})
		dev.Attach(spot.NewTemperatureModel(16, 7, float64(i)*0.6, 0.4, int64(i)*31+7))
		devices = append(devices, dev)
		collector.Track(addr, name, "temperature", "celsius")
		fieldNodes = append(fieldNodes, collect.NewFieldNode(dev, "temperature", 0x1, batch))

		// Register the collected view of this sensor in the LUS.
		acc, err := collector.Accessor(addr)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lus.Register(registry.ServiceItem{
			Service: acc,
			Types:   []string{sensor.AccessorType},
			Attributes: attr.Set{
				attr.Name(name),
				attr.SensorType("temperature", "celsius"),
				attr.ServiceType(sensor.CategoryElementary),
				attr.Comment("radio-collected field sensor"),
			},
		}, time.Hour); err != nil {
			log.Fatal(err)
		}
	}

	// A day of sampling: every node samples once a minute for 2 hours
	// (compressed — we just step the shared fake-free real clock forward
	// by calling Sample repeatedly).
	const rounds = 120
	for r := 0; r < rounds; r++ {
		for _, n := range fieldNodes {
			_ = n.Sample() // lost batches are retried; terminal losses acceptable
		}
	}
	for _, n := range fieldNodes {
		_ = n.Flush()
	}

	frames, readings, _ := collector.Stats()
	fmt.Printf("collection: %d frames carried %d readings (batch %d, 15%% loss, retries on)\n",
		frames, readings, batch)

	// Field sensors now behave like any sensor service: group them.
	if _, n, err := nm.ComposeByTemplate("field-mean",
		attr.Set{attr.New(attr.TypeComment, "comment", "radio-collected field sensor")}, ""); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("composed field-mean over %d radio-collected sensors\n", n)
	}
	reading, err := nm.GetValue("field-mean")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field-mean = %.2f celsius\n\n", reading.Value)

	// The economics: battery spent per delivered reading.
	fmt.Println("battery after the campaign:")
	for i, dev := range devices {
		spent := budget - dev.Battery().Remaining()
		perReading := spent / float64(rounds)
		fmt.Printf("  %-9s %6.0f µJ spent  (%.1f µJ/sample incl. radio+retries)  %.0f%% left\n",
			dev.Name(), spent, perReading, dev.Battery().Level()*100)
		_ = i
	}
	fmt.Println("\nsee 'go run ./cmd/experiments -run c8' for the batch-size/loss sweep")
}
