// Farm: the paper's motivating agricultural scenario (§II motivation 2 —
// "in agricultural area, where the sensors are located at different
// locations on the farms ... the data collection specialist has to collect
// the data from the sensors, directly visiting those places").
//
// Here the specialist never leaves the desk: twelve field sensors across
// three zones publish themselves; zone composites and a farm-wide
// composite aggregate them; the browser panel answers "what is the status
// of the sensor in place" remotely; and when a field device's battery
// dies, the failure is visible immediately instead of after a drive to
// the field.
package main

import (
	"fmt"
	"log"
	"strings"

	"sensorcer/internal/attr"
	"sensorcer/internal/browser"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/calib"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/spot"
)

func main() {
	clock := clockwork.Real()
	bus := discovery.NewBus()
	lus := registry.New("farm-lus", clock)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()

	// Three zones, four sensors each; one sensor gets a nearly dead
	// battery to demonstrate field-failure visibility.
	zones := []string{"orchard", "vineyard", "pasture"}
	var weakDevice *spot.Device
	for zi, zone := range zones {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("%s-%d", zone, i+1)
			cfg := spot.Config{Name: name, Clock: clock}
			if zone == "pasture" && i == 3 {
				cfg.BatteryMicroJ = 30 // enough for ~5 samples, then dead
			}
			device := spot.NewDevice(cfg)
			if cfg.BatteryMicroJ > 0 {
				weakDevice = device
			}
			device.Attach(spot.NewTemperatureModel(
				18+float64(zi)*2, 5, float64(i)*0.5, 0.3, int64(zi*10+i+1)))
			// Field probes carry a per-device linear calibration.
			chain := calib.Chain{calib.Linear{Gain: 1, Offset: float64(i) * 0.05}, calib.Clamp{Lo: -40, Hi: 60}}
			esp := sensor.NewESP(name, probe.NewSpotProbe(name, device, "temperature", chain))
			defer esp.Close()
			defer esp.Publish(clock, mgr, attr.Location("farm", zone, fmt.Sprint(i+1))).Terminate()
		}
	}

	facade := sensor.NewFacade("Farm Facade", clock, mgr)
	defer facade.Publish().Terminate()
	nm := facade.Network()

	// Zone composites and a farm-wide composite over them.
	for _, zone := range zones {
		var members []string
		for i := 0; i < 4; i++ {
			members = append(members, fmt.Sprintf("%s-%d", zone, i+1))
		}
		if _, err := nm.ComposeService(zone+"-mean", members, ""); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := nm.ComposeService("farm-mean",
		[]string{"orchard-mean", "vineyard-mean", "pasture-mean"}, "(a + b + c)/3"); err != nil {
		log.Fatal(err)
	}
	// A frost alarm: 1 when any zone mean is below 16 degrees.
	if _, err := nm.ComposeService("frost-alarm",
		[]string{"orchard-mean", "vineyard-mean", "pasture-mean"},
		"min(a, b, c) < 16 ? 1 : 0"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("zone and farm means:")
	for _, name := range []string{"orchard-mean", "vineyard-mean", "pasture-mean", "farm-mean", "frost-alarm"} {
		r, err := nm.GetValue(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-14s %6.2f\n", name, r.Value)
	}

	// Run the weak sensor's battery down: the next pasture read reports a
	// concrete device failure with the failing sensor named.
	for i := 0; i < 5; i++ {
		weakDevice.Sample("temperature")
	}
	fmt.Println("\nafter pasture-4's battery dies:")
	if _, err := nm.GetValue("pasture-mean"); err != nil {
		fmt.Printf("  pasture-mean read fails fast: %v\n", err)
	}
	// The specialist regroups the zone without the dead node — pure
	// logical reconfiguration, no field visit.
	if err := nm.RemoveFromComposite("pasture-mean", "pasture-4"); err != nil {
		log.Fatal(err)
	}
	r, err := nm.GetValue("pasture-mean")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after dropping pasture-4 from the group: %.2f\n", r.Value)

	// Fig. 2-style status panel, from the desk.
	ctl := browser.NewController(facade, mgr)
	out, err := ctl.Execute("info farm-mean")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + strings.TrimRight(out, "\n"))
}
