// Quickstart: the smallest complete SenSORCER network — a lookup service,
// two simulated temperature sensors published as elementary sensor
// providers, a composite averaging them with a runtime expression, and a
// read through the façade. This is the paper's architecture end to end in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/spot"
)

func main() {
	clock := clockwork.Real()

	// 1. Infrastructure: one lookup service on an in-process discovery bus.
	bus := discovery.NewBus()
	lus := registry.New("quickstart-lus", clock)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()

	// 2. Two simulated SPOT devices wrapped in probes, published as ESPs.
	for i, name := range []string{"Greenhouse-North", "Greenhouse-South"} {
		device := spot.NewDevice(spot.Config{Name: name, Clock: clock})
		device.Attach(spot.NewTemperatureModel(21, 4, float64(i), 0.2, int64(i+1)))
		esp := sensor.NewESP(name, probe.NewSpotProbe(name, device, "temperature", nil))
		defer esp.Close()
		defer esp.Publish(clock, mgr).Terminate()
	}

	// 3. A façade: the single entry point for management and reads.
	facade := sensor.NewFacade("Quickstart Facade", clock, mgr)
	defer facade.Publish().Terminate()
	nm := facade.Network()

	// 4. Compose a logical sensor with a runtime compute-expression.
	if _, err := nm.ComposeService("Greenhouse-Average",
		[]string{"Greenhouse-North", "Greenhouse-South"}, "(a + b)/2"); err != nil {
		log.Fatal(err)
	}

	// 5. Read individual sensors and the composite by name.
	for _, name := range []string{"Greenhouse-North", "Greenhouse-South", "Greenhouse-Average"} {
		r, err := nm.GetValue(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %6.2f %s\n", name, r.Value, r.Unit)
	}

	// 6. The service list a browser would show.
	fmt.Println("\nservices on the network:")
	for _, e := range facade.ListServices() {
		fmt.Printf("  [%-10s] %s\n", e.Category, e.Name)
	}
}
