// Failover: the Rio provisioning story of §IV-C — "fault tolerance
// achieved by dynamically allocating the service to a different compute
// node (cybernode), if the original node fails."
//
// A composite sensor service is provisioned with QoS onto one of three
// cybernodes; the hosting node is killed; the provision monitor detects
// the death, re-provisions the service onto a survivor, and reads through
// the façade keep working under the same service name.
package main

import (
	"fmt"
	"log"
	"time"

	"sensorcer/internal/event"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor"
	"sensorcer/internal/testbed"
)

func main() {
	d := testbed.New(testbed.Config{Sensors: 4, Cybernodes: 3})
	defer d.Close()
	nm := d.Facade.Network()

	// Watch provisioning events like an operator console would.
	d.Monitor.Events().Register(event.AnyEvent, event.ListenerFunc(func(ev event.RemoteEvent) error {
		n, _ := ev.Payload.(rio.ProvisionNotice)
		kind := map[uint64]string{
			rio.EventProvisioned: "PROVISIONED",
			rio.EventRelocated:   "RELOCATED",
			rio.EventPending:     "PENDING",
			rio.EventNodeLost:    "NODE-LOST",
		}[ev.EventID]
		fmt.Printf("  [monitor] %-11s element=%s node=%s %s\n", kind, n.Element, n.Node, n.Detail)
		return nil
	}), time.Hour)

	// Provision the composite with a QoS floor.
	fmt.Println("provisioning Fleet-Average with QoS {MinCPUs: 2}:")
	if err := nm.ProvisionComposite("Fleet-Average",
		d.SensorNames(), "", sensor.QoSSpec{MinCPUs: 2}); err != nil {
		log.Fatal(err)
	}
	r, err := nm.GetValue("Fleet-Average")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial read: %.2f\n\n", r.Value)

	// Find and kill the hosting node.
	var victim *rio.Cybernode
	for _, n := range d.Nodes {
		if len(n.Services()) > 0 {
			victim = n
			break
		}
	}
	fmt.Printf("killing %s (hosting Fleet-Average):\n", victim.Name())
	start := time.Now()
	victim.Kill()

	// The service keeps answering under its name.
	for {
		if r, err = nm.GetValue("Fleet-Average"); err == nil {
			break
		}
		if time.Since(start) > 5*time.Second {
			log.Fatal("failover did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("\nservice answering again after %v: %.2f\n", time.Since(start).Round(time.Microsecond), r.Value)

	st, err := d.Monitor.Status("sensorcer/Fleet-Average")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: planned=%d actual=%d on %v\n", st[0].Planned, st[0].Actual, st[0].Nodes)
	fmt.Printf("surviving cybernodes: %d of %d\n", len(d.Monitor.Nodes()), len(d.Nodes))
}
