// Metacompute: exertion-oriented programming (§IV-D) on its own, without
// sensors — the SORCER substrate that makes SenSORCER possible. A tiny
// engineering workflow runs three ways:
//
//  1. elementary tasks bound by federated method invocation (with
//     automatic re-binding when a provider fails mid-collaboration),
//  2. a sequential job whose context pipes feed one step's output into
//     the next step's input, coordinated by a Jobber, and
//  3. a parallel pull-mode job drained from the exertion space by
//     self-paced workers, coordinated by a Spacer.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
)

func main() {
	clock := clockwork.Real()
	bus := discovery.NewBus()
	lus := registry.New("metacompute-lus", clock)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))

	// Domain providers: a "Calc" type with a few operations.
	calc := sorcer.NewProvider("Calc-1", "Calc")
	calc.RegisterOp("square", func(ctx *sorcer.Context) error {
		x, err := ctx.Float("in/x")
		if err != nil {
			return err
		}
		ctx.Put("out/y", x*x)
		return nil
	})
	calc.RegisterOp("sqrt", func(ctx *sorcer.Context) error {
		x, err := ctx.Float("in/x")
		if err != nil {
			return err
		}
		if x < 0 {
			return errors.New("negative input")
		}
		ctx.Put("out/y", math.Sqrt(x))
		return nil
	})
	defer calc.Publish(clock, mgr, nil).Terminate()

	// A flaky twin that fails its first two calls: FMI re-binds to Calc-1.
	var calls atomic.Int64
	flaky := sorcer.NewProvider("Calc-flaky", "Calc")
	flaky.RegisterOp("square", func(ctx *sorcer.Context) error {
		if calls.Add(1) <= 2 {
			return errors.New("injected transient failure")
		}
		x, _ := ctx.Float("in/x")
		ctx.Put("out/y", x*x)
		return nil
	})
	defer flaky.Publish(clock, mgr, nil).Terminate()

	// 1. Elementary task: the requestor never names a provider — the
	// signature type is enough, and failures re-bind transparently.
	fmt.Println("1. elementary tasks (federated method invocation):")
	for i := 0; i < 3; i++ {
		task := sorcer.NewTask("square", sorcer.Sig("Calc", "square"),
			sorcer.NewContextFrom("in/x", float64(i+3)))
		res, err := exerter.Exert(task, nil)
		if err != nil {
			log.Fatal(err)
		}
		y, _ := res.Context().Float("out/y")
		fmt.Printf("   square(%d) = %.0f  (status %v)\n", i+3, y, res.Status())
	}

	// 2. Sequential job with a context pipe: sqrt(square(7)).
	fmt.Println("\n2. sequential job with context pipes (Jobber):")
	first := sorcer.NewTask("step1", sorcer.Sig("Calc", "square"), sorcer.NewContextFrom("in/x", 7.0))
	second := sorcer.NewTask("step2", sorcer.Sig("Calc", "sqrt"), nil)
	job := sorcer.NewJob("chain", sorcer.Strategy{
		Flow:   sorcer.Sequential,
		Access: sorcer.Push,
		Pipes:  []sorcer.Pipe{{FromIndex: 0, FromPath: "out/y", ToIndex: 1, ToPath: "in/x"}},
	}, first, second)
	res, err := exerter.Exert(job, nil)
	if err != nil {
		log.Fatal(err)
	}
	y, _ := res.Context().Float("step2/out/y")
	fmt.Printf("   sqrt(square(7)) = %.0f\n", y)

	// 3. Pull-mode parallel job: the requestor drops tasks into the
	// exertion space; three workers take them at their own pace.
	fmt.Println("\n3. parallel pull-mode job (Spacer + exertion space):")
	sp := space.New(clock, lease.Policy{Max: time.Minute})
	defer sp.Close()
	var workers []*sorcer.SpaceWorker
	for i := 0; i < 3; i++ {
		w := sorcer.NewProvider(fmt.Sprintf("Worker-%d", i+1), "Calc")
		w.RegisterOp("square", func(ctx *sorcer.Context) error {
			x, _ := ctx.Float("in/x")
			ctx.Put("out/y", x*x)
			return nil
		})
		w.SetConcurrency(1)
		workers = append(workers, sorcer.NewSpaceWorker(sp, w, "Calc"))
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
	}()
	spacer := sorcer.NewSpacer("Spacer-1", sp, sorcer.WithTaskTimeout(10*time.Second))
	defer sorcer.PublishServicer(clock, mgr, spacer, spacer.ID(), spacer.Name(),
		[]string{sorcer.SpacerType}, nil).Terminate()

	var tasks []sorcer.Exertion
	for i := 1; i <= 9; i++ {
		tasks = append(tasks, sorcer.NewTask(fmt.Sprintf("sq-%d", i),
			sorcer.Sig("Calc", "square"), sorcer.NewContextFrom("in/x", float64(i))))
	}
	pullJob := sorcer.NewJob("sweep", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, tasks...)
	start := time.Now()
	if _, err := exerter.Exert(pullJob, nil); err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, ex := range pullJob.Exertions() {
		v, _ := ex.Context().Float("out/y")
		sum += v
	}
	fmt.Printf("   sum of squares 1..9 = %.0f in %v (3 workers drained the space)\n",
		sum, time.Since(start).Round(time.Microsecond))
}
