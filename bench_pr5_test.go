package sensorcer

// Acceptance benchmarks for the data-plane batching work: the composite
// read path after the slot-bound expression VM (BenchmarkCSPRead*) and
// pull-mode job dispatch through WriteBatch/TakeAny against the
// per-envelope baseline (BenchmarkSpacerBatch*). The expression VM itself
// is benchmarked in internal/expr (BenchmarkEvalVM*).

import (
	"fmt"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// BenchmarkCSPReadExpression measures a sequential composite read through
// a slot-bound compute-expression — the paper's §V-B shapes. With the
// bound fast path the steady state is allocation-free.
func BenchmarkCSPReadExpression(b *testing.B) {
	for _, tc := range []struct {
		name, src string
	}{
		{"default-average", ""},
		{"paper-avg", "(a + b + c) / 3"},
		{"hist-baseline", "a - avg(a_hist)"},
		{"quorum", "max(values) - min(values) < 5 ? avg(values) : a"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			csp := sensor.NewCSP("bench", sensor.WithSequentialReads())
			for i := 0; i < 3; i++ {
				esp := sensor.NewESP(fmt.Sprintf("s-%d", i),
					probe.NewReplayProbe("x", "t", "c", []float64{float64(i) + 20}, true, nil))
				b.Cleanup(func() { esp.Close() })
				if _, err := csp.AddChild(esp); err != nil {
					b.Fatal(err)
				}
			}
			if tc.src != "" {
				if err := csp.SetExpression(tc.src); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := csp.GetValue(); err != nil { // warm pools and stores
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := csp.GetValue(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpacerBatch runs an 8-task pull-mode job over a durable
// (journaled, fsync-per-ack) exertion space: batched dispatch pays one
// group commit for the envelope flood and the worker drains with TakeAny,
// versus one Write/Take/fsync per envelope on the baseline.
func BenchmarkSpacerBatch(b *testing.B) {
	const tasks = 8
	run := func(b *testing.B, spacerOpts []sorcer.SpacerOption, workerOpts []sorcer.WorkerOption) {
		l, err := wal.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sp, err := space.Recover(clockwork.Real(), lease.Policy{Max: time.Hour}, l)
		if err != nil {
			b.Fatal(err)
		}
		w := sorcer.NewSpaceWorker(sp, benchAdder("Adder-1"), "Adder", workerOpts...)
		spacer := sorcer.NewSpacer("Spacer-1", sp,
			append([]sorcer.SpacerOption{sorcer.WithTaskTimeout(30 * time.Second)}, spacerOpts...)...)
		b.Cleanup(func() {
			w.Stop()
			sp.Close()
			_ = l.Close()
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var comps []sorcer.Exertion
			for j := 0; j < tasks; j++ {
				comps = append(comps, sorcer.NewTask(fmt.Sprintf("t%d", j),
					sorcer.Sig("Adder", "add"),
					sorcer.NewContextFrom("arg/a", float64(j), "arg/b", 100.0)))
			}
			job := sorcer.NewJob("bench-job", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, comps...)
			if _, err := spacer.Service(job, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run(fmt.Sprintf("batched-%d", tasks), func(b *testing.B) {
		run(b, nil, nil)
	})
	b.Run(fmt.Sprintf("per-envelope-%d", tasks), func(b *testing.B) {
		run(b, []sorcer.SpacerOption{sorcer.WithPerEnvelopeDispatch()},
			[]sorcer.WorkerOption{sorcer.WithWorkerBatch(1)})
	})
}

// benchAdder is a minimal Adder provider for dispatch benchmarks.
func benchAdder(name string) *sorcer.Provider {
	p := sorcer.NewProvider(name, "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		bv, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+bv)
		return nil
	})
	return p
}
