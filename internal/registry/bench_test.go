package registry

import (
	"fmt"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
)

// populateLUS registers n sensors named bench-sensor-<i>. Every item
// implements the bulk accessor type; one in sixteen also implements the
// rare actuator type, so type-pinned lookups can show the index walking a
// small set instead of the full population.
func populateLUS(b *testing.B, n int) *LookupService {
	b.Helper()
	lus := New("bench:4160", clockwork.NewFake(epoch))
	b.Cleanup(lus.Close)
	for i := 0; i < n; i++ {
		item := ServiceItem{
			Service: i,
			Types:   []string{"SensorDataAccessor"},
			Attributes: attr.Set{
				attr.Name(fmt.Sprintf("bench-sensor-%d", i)),
				attr.SensorType("temperature", "celsius"),
			},
		}
		if i%16 == 0 {
			item.Types = append(item.Types, "ActuatorControl")
		}
		if _, err := lus.Register(item, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	return lus
}

// BenchmarkLookupIndexed measures the indexed lookup paths against a
// 2048-item registry: name hit and miss (byName index), rare-type hit and
// absent-type miss (byType index), and an ID-pinned direct hit.
func BenchmarkLookupIndexed(b *testing.B) {
	const population = 2048
	b.Run("name-hit", func(b *testing.B) {
		lus := populateLUS(b, population)
		tmpl := ByName("bench-sensor-1024", "SensorDataAccessor")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := lus.Lookup(tmpl, 1); len(got) != 1 {
				b.Fatalf("got %d matches", len(got))
			}
		}
	})
	b.Run("name-miss", func(b *testing.B) {
		lus := populateLUS(b, population)
		tmpl := ByName("no-such-sensor")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := lus.Lookup(tmpl, 1); len(got) != 0 {
				b.Fatalf("got %d matches", len(got))
			}
		}
	})
	b.Run("type-hit", func(b *testing.B) {
		lus := populateLUS(b, population)
		tmpl := ByType("ActuatorControl")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := lus.Lookup(tmpl, 4); len(got) != 4 {
				b.Fatalf("got %d matches", len(got))
			}
		}
	})
	b.Run("type-miss", func(b *testing.B) {
		lus := populateLUS(b, population)
		tmpl := ByType("NoSuchInterface")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := lus.Lookup(tmpl, 1); len(got) != 0 {
				b.Fatalf("got %d matches", len(got))
			}
		}
	})
	b.Run("id-hit", func(b *testing.B) {
		lus := populateLUS(b, population)
		all := lus.Lookup(ByType("SensorDataAccessor"), 1)
		if len(all) != 1 {
			b.Fatal("no seed item")
		}
		tmpl := Template{ID: all[0].ID}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := lus.Lookup(tmpl, 1); len(got) != 1 {
				b.Fatalf("got %d matches", len(got))
			}
		}
	})
}
