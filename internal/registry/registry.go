// Package registry implements the Jini-style lookup service (LUS) at the
// heart of the sensorcer federation. Service providers register proxies
// under interface type names and attribute entries; requestors locate them
// with templates (type + attribute match, per package attr). Registrations
// are leased: a provider that stops renewing is swept from the registry,
// which is exactly how the paper (§IV-B) keeps the sensor network "healthy
// and robust". Requestors may also register leased event notifications and
// learn immediately when matching services appear, change or disappear —
// the mechanism behind the paper's plug-and-play claim (§VII).
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/wal"
)

// ServiceItem is a registered service: its identity, its proxy object (for
// in-process federations the provider itself; for remote federations an
// srpc stub), the interface type names it implements, and its attributes.
type ServiceItem struct {
	ID         ids.ServiceID
	Service    any
	Types      []string
	Attributes attr.Set
}

// Clone deep-copies the item's mutable parts (the Service proxy is shared).
func (si ServiceItem) Clone() ServiceItem {
	c := si
	c.Types = append([]string(nil), si.Types...)
	c.Attributes = attr.CloneSet(si.Attributes)
	return c
}

// Template selects services: a zero ID is a wildcard; every listed type
// must be implemented; attributes match per attr.Set.MatchesTemplate.
type Template struct {
	ID         ids.ServiceID
	Types      []string
	Attributes attr.Set
}

// Matches reports whether the item satisfies the template.
func (t Template) Matches(item ServiceItem) bool {
	if !t.ID.IsZero() && t.ID != item.ID {
		return false
	}
	for _, want := range t.Types {
		found := false
		for _, have := range item.Types {
			if want == have {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return item.Attributes.MatchesTemplate(t.Attributes)
}

// ByName builds the common "find the provider named n" template.
func ByName(name string, types ...string) Template {
	return Template{Types: types, Attributes: attr.Set{attr.Name(name)}}
}

// ByType builds a template matching any provider of the interface types.
func ByType(types ...string) Template { return Template{Types: types} }

// Transition kinds for event notifications, mirroring Jini's
// TRANSITION_NOMATCH_MATCH etc.
const (
	// TransitionNoMatchMatch fires when an item starts matching the
	// template (registration or attribute change).
	TransitionNoMatchMatch = 1 << iota
	// TransitionMatchNoMatch fires when a matching item stops matching
	// (deregistration, lease expiry, or attribute change).
	TransitionMatchNoMatch
	// TransitionMatchMatch fires when a matching item changes but still
	// matches.
	TransitionMatchMatch
	// TransitionAny is the union of all transitions.
	TransitionAny = TransitionNoMatchMatch | TransitionMatchNoMatch | TransitionMatchMatch
)

// Event describes a service transition delivered to a notification listener.
type Event struct {
	// Registrar identifies the lookup service that emitted the event.
	Registrar ids.ServiceID
	// SeqNo increases per notification registration.
	SeqNo uint64
	// Transition is one of the Transition* constants.
	Transition int
	// Item is a snapshot of the service after the transition; for
	// TransitionMatchNoMatch it is the last matching snapshot.
	Item ServiceItem
}

// Listener receives events. Implementations must not block for long; the
// registry delivers on a dedicated goroutine per notification registration
// but with a bounded queue.
type Listener func(Event)

// Registration is returned from Register; keep the lease renewed to stay in
// the registry.
type Registration struct {
	ServiceID ids.ServiceID
	Lease     lease.Lease
}

// EventRegistration is returned from Notify.
type EventRegistration struct {
	NotificationID uint64
	Lease          lease.Lease
}

// ErrNotFound is returned by LookupOne when no item matches.
var ErrNotFound = errors.New("registry: no matching service")

const notifyQueue = 256

// LookupService is an in-process LUS. It is safe for concurrent use.
type LookupService struct {
	id    ids.ServiceID
	name  string
	clock clockwork.Clock

	itemLeases  *lease.Table
	eventLeases *lease.Table

	mu       sync.RWMutex
	items    map[ids.ServiceID]*record
	byLease  map[uint64]ids.ServiceID
	notifs   map[uint64]*notification
	byNLease map[uint64]uint64
	// byName indexes registrations by their Name attribute so the
	// overwhelmingly common find-by-name lookup (every FindAccessor,
	// every browser read) avoids a full template scan. byType does the
	// same for interface type names, serving find-by-type templates from
	// the smallest matching type set.
	byName map[string]map[ids.ServiceID]bool
	byType map[string]map[ids.ServiceID]bool
	closed bool

	// coord is the fenced single-holder ledger behind AcquireCoordination
	// (see coordination.go); created lazily on first use.
	coord       *lease.FencedTable
	coordPolicy lease.Policy

	// journal, when set, is the write-ahead log every registration change
	// is recorded in before it is acknowledged (see durable.go). Nil for
	// volatile registries. The log's lifecycle belongs to whoever opened
	// it.
	journal *wal.Log
}

type record struct {
	item    ServiceItem
	leaseID uint64
}

type notification struct {
	id          uint64
	template    Template
	transitions int
	listener    Listener
	seq         ids.Sequence
	queue       chan Event
	done        chan struct{}
}

// Option configures a LookupService.
type Option func(*config)

type config struct {
	itemPolicy  lease.Policy
	eventPolicy lease.Policy
	coordPolicy lease.Policy
}

// WithLeasePolicy sets the policy for registration leases.
func WithLeasePolicy(p lease.Policy) Option {
	return func(c *config) { c.itemPolicy = p }
}

// WithEventLeasePolicy sets the policy for notification leases.
func WithEventLeasePolicy(p lease.Policy) Option {
	return func(c *config) { c.eventPolicy = p }
}

// WithCoordLeasePolicy sets the policy for coordination leases (the
// single-holder fenced grants coordinator replicas compete for).
func WithCoordLeasePolicy(p lease.Policy) Option {
	return func(c *config) { c.coordPolicy = p }
}

// New creates a lookup service. name is administrative (e.g. the host:port
// string shown in the paper's Fig. 2, "persimmon.cs.ttu.edu:4160").
func New(name string, clock clockwork.Clock, opts ...Option) *LookupService {
	cfg := config{
		itemPolicy:  lease.Policy{Max: lease.DefaultMax},
		eventPolicy: lease.Policy{Max: lease.DefaultMax},
		coordPolicy: lease.Policy{Max: lease.DefaultMax},
	}
	for _, o := range opts {
		o(&cfg)
	}
	l := &LookupService{
		id:          ids.NewServiceID(),
		name:        name,
		clock:       clock,
		itemLeases:  lease.NewTable(clock, cfg.itemPolicy),
		eventLeases: lease.NewTable(clock, cfg.eventPolicy),
		items:       make(map[ids.ServiceID]*record),
		byLease:     make(map[uint64]ids.ServiceID),
		notifs:      make(map[uint64]*notification),
		byNLease:    make(map[uint64]uint64),
		byName:      make(map[string]map[ids.ServiceID]bool),
		byType:      make(map[string]map[ids.ServiceID]bool),
		coordPolicy: cfg.coordPolicy,
	}
	l.itemLeases.OnExpire(l.onItemLeaseExpired)
	l.eventLeases.OnExpire(l.onEventLeaseExpired)
	return l
}

// ID returns the registrar's service ID.
func (l *LookupService) ID() ids.ServiceID { return l.id }

// Name returns the administrative name.
func (l *LookupService) Name() string { return l.name }

// Register adds (or, for an existing ID, replaces) a service item and
// grants a lease for it. A zero item ID is assigned a fresh one, which is
// reported back in the Registration — providers keep it for
// re-registration after restarts, matching Jini semantics.
func (l *LookupService) Register(item ServiceItem, leaseDur time.Duration) (Registration, error) {
	if len(item.Types) == 0 {
		return Registration{}, errors.New("registry: item must declare at least one type")
	}
	if item.ID.IsZero() {
		item.ID = ids.NewServiceID()
	}
	item = item.Clone()
	lse := l.itemLeases.Grant(leaseDur)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		_ = lse.Cancel()
		return Registration{}, errors.New("registry: closed")
	}
	if err := l.journalLocked(regRecord{
		Op: regOpRegister, ID: item.ID, Types: item.Types,
		Attrs:   item.Attributes,
		LeaseMS: int64(leaseDur / time.Millisecond),
	}); err != nil {
		l.mu.Unlock()
		_ = lse.Cancel()
		return Registration{}, err
	}
	var prev *ServiceItem
	if old, ok := l.items[item.ID]; ok {
		// Replacement: retire the old lease silently.
		delete(l.byLease, old.leaseID)
		_ = l.itemLeases.Cancel(old.leaseID)
		l.indexRemoveLocked(old.item)
		p := old.item
		prev = &p
	}
	l.items[item.ID] = &record{item: item, leaseID: lse.ID}
	l.byLease[lse.ID] = item.ID
	l.indexAddLocked(item)
	l.notifyLocked(prev, &item)
	l.mu.Unlock()

	return Registration{ServiceID: item.ID, Lease: lse}, nil
}

// Deregister removes a service immediately (orderly departure).
func (l *LookupService) Deregister(id ids.ServiceID) error {
	l.mu.Lock()
	rec, ok := l.items[id]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if err := l.journalLocked(regRecord{Op: regOpDeregister, ID: id}); err != nil {
		l.mu.Unlock()
		return err
	}
	delete(l.items, id)
	delete(l.byLease, rec.leaseID)
	_ = l.itemLeases.Cancel(rec.leaseID)
	l.indexRemoveLocked(rec.item)
	l.notifyLocked(&rec.item, nil)
	l.mu.Unlock()

	return nil
}

// ModifyAttributes replaces the attribute set of a registered service,
// emitting match/no-match transitions as needed.
func (l *LookupService) ModifyAttributes(id ids.ServiceID, attrs attr.Set) error {
	l.mu.Lock()
	rec, ok := l.items[id]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if err := l.journalLocked(regRecord{Op: regOpModAttrs, ID: id, Attrs: attrs}); err != nil {
		l.mu.Unlock()
		return err
	}
	prev := rec.item
	l.indexRemoveLocked(rec.item)
	rec.item.Attributes = attr.CloneSet(attrs)
	l.indexAddLocked(rec.item)
	cur := rec.item
	l.notifyLocked(&prev, &cur)
	l.mu.Unlock()

	return nil
}

// Lookup returns up to maxMatches items matching the template (all if
// maxMatches <= 0), sorted by service name then ID for stable output.
// Expired registrations are swept first. ID-pinned templates are a direct
// map hit, name- and type-pinned templates are served from the indexes,
// and only the first maxMatches survivors are deep-copied — the rest are
// never cloned.
func (l *LookupService) Lookup(tmpl Template, maxMatches int) []ServiceItem {
	l.SweepNow()
	l.mu.RLock()
	// Candidates carry a precomputed name key so ordering the refs costs no
	// attribute scans per comparison, and no clones at all. IDs compare as
	// raw bytes, which orders identically to ServiceID.String (fixed-width
	// lowercase hex) without formatting anything.
	type candidate struct {
		name string
		rec  *record
	}
	var cands []candidate
	consider := func(rec *record) {
		if tmpl.Matches(rec.item) {
			cands = append(cands, candidate{
				name: attr.NameOf(rec.item.Attributes),
				rec:  rec,
			})
		}
	}
	name, nameOK := templateName(tmpl)
	switch {
	case !tmpl.ID.IsZero():
		// ID-pinned: at most one item can match.
		if rec, ok := l.items[tmpl.ID]; ok {
			consider(rec)
		}
	case nameOK:
		for id := range l.byName[name] {
			if rec, ok := l.items[id]; ok {
				consider(rec)
			}
		}
	case len(tmpl.Types) > 0:
		// Walk the smallest indexed type set; Matches still verifies the
		// remaining types and attributes.
		set := l.byType[tmpl.Types[0]]
		for _, typ := range tmpl.Types[1:] {
			if s := l.byType[typ]; len(s) < len(set) {
				set = s
			}
		}
		for id := range set {
			if rec, ok := l.items[id]; ok {
				consider(rec)
			}
		}
	default:
		for _, rec := range l.items {
			consider(rec)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].name != cands[j].name {
			return cands[i].name < cands[j].name
		}
		a, b := cands[i].rec.item.ID, cands[j].rec.item.ID
		return bytes.Compare(a[:], b[:]) < 0
	})
	if maxMatches > 0 && len(cands) > maxMatches {
		cands = cands[:maxMatches]
	}
	var out []ServiceItem
	for _, c := range cands {
		out = append(out, c.rec.item.Clone())
	}
	l.mu.RUnlock()
	return out
}

// LookupOne returns the first match or ErrNotFound.
func (l *LookupService) LookupOne(tmpl Template) (ServiceItem, error) {
	matches := l.Lookup(tmpl, 1)
	if len(matches) == 0 {
		return ServiceItem{}, ErrNotFound
	}
	return matches[0], nil
}

// Items returns a snapshot of every live registration (the browser's
// service list, Fig. 2).
func (l *LookupService) Items() []ServiceItem {
	return l.Lookup(Template{}, 0)
}

// Len reports the number of live registrations.
func (l *LookupService) Len() int {
	l.SweepNow()
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.items)
}

// Notify registers a leased event listener for template transitions.
func (l *LookupService) Notify(tmpl Template, transitions int, fn Listener, leaseDur time.Duration) (EventRegistration, error) {
	if transitions&TransitionAny == 0 {
		return EventRegistration{}, errors.New("registry: no transitions requested")
	}
	if fn == nil {
		return EventRegistration{}, errors.New("registry: nil listener")
	}
	lse := l.eventLeases.Grant(leaseDur)
	n := &notification{
		id:          lse.ID,
		template:    tmpl,
		transitions: transitions,
		listener:    fn,
		queue:       make(chan Event, notifyQueue),
		done:        make(chan struct{}),
	}
	go n.pump()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		close(n.queue)
		_ = lse.Cancel()
		return EventRegistration{}, errors.New("registry: closed")
	}
	l.notifs[n.id] = n
	l.byNLease[lse.ID] = n.id
	l.mu.Unlock()

	return EventRegistration{NotificationID: n.id, Lease: lse}, nil
}

// CancelNotify removes an event registration and waits for its pump to
// drain, so no listener callback runs after CancelNotify returns.
func (l *LookupService) CancelNotify(notificationID uint64) {
	l.mu.Lock()
	n, ok := l.notifs[notificationID]
	if ok {
		delete(l.notifs, notificationID)
		delete(l.byNLease, notificationID)
		close(n.queue) // under l.mu: serialized against notifyLocked sends
	}
	l.mu.Unlock()
	if ok {
		_ = l.eventLeases.Cancel(notificationID)
		<-n.done
	}
}

// RenewItemLease renews a registration lease by id — the hook the remote
// registrar protocol (package remote) uses, since lease.Lease handles do
// not cross process boundaries.
func (l *LookupService) RenewItemLease(leaseID uint64, d time.Duration) (time.Time, error) {
	return l.itemLeases.Renew(leaseID, d)
}

// CancelItemLease cancels a registration lease by id, deregistering the
// item (remote protocol support).
func (l *LookupService) CancelItemLease(leaseID uint64) error {
	l.mu.RLock()
	id, ok := l.byLease[leaseID]
	l.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", lease.ErrUnknownLease, leaseID)
	}
	return l.Deregister(id)
}

// SweepNow expires lapsed registration and notification leases immediately.
// A production deployment pairs the registry with a lease.Janitor; tests
// drive expiry through the fake clock and call this directly.
func (l *LookupService) SweepNow() {
	l.itemLeases.Sweep()
	l.eventLeases.Sweep()
}

// Close shuts down the registry and all notification pumps.
func (l *LookupService) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	notifs := make([]*notification, 0, len(l.notifs))
	for _, n := range l.notifs {
		notifs = append(notifs, n)
		close(n.queue)
	}
	l.notifs = map[uint64]*notification{}
	l.items = map[ids.ServiceID]*record{}
	l.mu.Unlock()
	for _, n := range notifs {
		<-n.done
	}
}

func (l *LookupService) onItemLeaseExpired(leaseID uint64) {
	l.mu.Lock()
	id, ok := l.byLease[leaseID]
	if !ok {
		l.mu.Unlock()
		return
	}
	rec := l.items[id]
	// Best-effort journaling: if the expire record fails to land, replay
	// re-grants the rebased lease and the item re-expires after recovery
	// instead — expiry is idempotent.
	_ = l.journalLocked(regRecord{Op: regOpExpire, ID: id})
	delete(l.items, id)
	delete(l.byLease, leaseID)
	l.indexRemoveLocked(rec.item)
	l.notifyLocked(&rec.item, nil)
	l.mu.Unlock()
}

// indexAddLocked and indexRemoveLocked maintain the by-name and by-type
// indexes; caller holds l.mu.
func (l *LookupService) indexAddLocked(item ServiceItem) {
	if name := attr.NameOf(item.Attributes); name != "" {
		indexPut(l.byName, name, item.ID)
	}
	for _, typ := range item.Types {
		indexPut(l.byType, typ, item.ID)
	}
}

func (l *LookupService) indexRemoveLocked(item ServiceItem) {
	if name := attr.NameOf(item.Attributes); name != "" {
		indexDrop(l.byName, name, item.ID)
	}
	for _, typ := range item.Types {
		indexDrop(l.byType, typ, item.ID)
	}
}

func indexPut(idx map[string]map[ids.ServiceID]bool, key string, id ids.ServiceID) {
	set, ok := idx[key]
	if !ok {
		set = make(map[ids.ServiceID]bool, 1)
		idx[key] = set
	}
	set[id] = true
}

func indexDrop(idx map[string]map[ids.ServiceID]bool, key string, id ids.ServiceID) {
	if set, ok := idx[key]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(idx, key)
		}
	}
}

// templateName extracts a concrete Name constraint from a template, if the
// template pins one.
func templateName(tmpl Template) (string, bool) {
	for _, e := range tmpl.Attributes {
		if e.Type != attr.TypeName {
			continue
		}
		if v, ok := e.Get("name"); ok {
			if s, ok := v.(string); ok && s != "" {
				return s, true
			}
		}
	}
	return "", false
}

func (l *LookupService) onEventLeaseExpired(leaseID uint64) {
	l.mu.Lock()
	nid, ok := l.byNLease[leaseID]
	var n *notification
	if ok {
		n = l.notifs[nid]
		delete(l.notifs, nid)
		delete(l.byNLease, leaseID)
		close(n.queue)
	}
	l.mu.Unlock()
	if n != nil {
		<-n.done
	}
}

// notifyLocked computes the events implied by an item changing from prev to
// cur (either may be nil for appear/disappear) and enqueues them onto the
// per-notification pumps. Sends are non-blocking: events are dropped if a
// listener's queue is full, because a slow consumer must not stall the
// registry (Jini's remote events are similarly best-effort). Caller holds
// l.mu, which also serializes sends against queue closure.
func (l *LookupService) notifyLocked(prev, cur *ServiceItem) {
	for _, n := range l.notifs {
		before := prev != nil && n.template.Matches(*prev)
		after := cur != nil && n.template.Matches(*cur)
		var transition int
		var snapshot ServiceItem
		switch {
		case !before && after:
			transition = TransitionNoMatchMatch
			snapshot = cur.Clone()
		case before && !after:
			transition = TransitionMatchNoMatch
			snapshot = prev.Clone()
		case before && after:
			transition = TransitionMatchMatch
			snapshot = cur.Clone()
		default:
			continue
		}
		if n.transitions&transition == 0 {
			continue
		}
		ev := Event{
			Registrar:  l.id,
			SeqNo:      n.seq.Next(),
			Transition: transition,
			Item:       snapshot,
		}
		select {
		case n.queue <- ev:
		default:
		}
	}
}

func (n *notification) pump() {
	defer close(n.done)
	for ev := range n.queue {
		n.listener(ev)
	}
}
