// Coordination leases: the lookup service doubles as the rendezvous
// point for single-holder control-plane roles. A replicated space's
// coordinator replicas all know the registry already (it is where the
// shard map is published), so hosting the coordination lease here gives
// them leader election with fencing tokens without introducing a new
// service: whoever wins AcquireCoordination is the coordinator until it
// stops renewing, and the token it won fences every decision it makes.
package registry

import (
	"time"

	"sensorcer/internal/lease"
)

// CoordGrantor is the coordination-lease surface coordinator replicas
// compete through — implemented by LookupService locally and by the srpc
// coordination client for separate-process replicas.
type CoordGrantor interface {
	// AcquireCoordination claims the named single-holder role. It fails
	// with lease.ErrHeld while another holder's grant is live; a win
	// returns a renewable lease plus a fencing token strictly greater
	// than every earlier holder's.
	AcquireCoordination(name, holder string, dur time.Duration) (lease.FencedGrant, error)
	// CoordinationHolder reports the live holder and token of the named
	// role, if any.
	CoordinationHolder(name string) (holder string, token uint64, ok bool)
}

// coordTable lazily creates the fenced ledger (old deployments never pay
// for it).
func (l *LookupService) coordTable() *lease.FencedTable {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.coord == nil {
		l.coord = lease.NewFencedTable(l.clock, l.coordPolicy)
	}
	return l.coord
}

// AcquireCoordination implements CoordGrantor on the lookup service.
func (l *LookupService) AcquireCoordination(name, holder string, dur time.Duration) (lease.FencedGrant, error) {
	return l.coordTable().Acquire(name, holder, dur)
}

// CoordinationHolder implements CoordGrantor on the lookup service.
func (l *LookupService) CoordinationHolder(name string) (string, uint64, bool) {
	return l.coordTable().Holder(name)
}

// RenewCoordination extends the identified coordination grant — the
// by-id surface the remote protocol renews through. A deposed holder's
// id fails with lease.ErrUnknownLease.
func (l *LookupService) RenewCoordination(id uint64, d time.Duration) (time.Time, error) {
	return l.coordTable().Renew(id, d)
}

// CancelCoordination abdicates the identified coordination grant.
func (l *LookupService) CancelCoordination(id uint64) error {
	return l.coordTable().Cancel(id)
}

var _ CoordGrantor = (*LookupService)(nil)
