package registry

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
)

func TestCoordinationLeaseSingleHolderAcrossReplicas(t *testing.T) {
	fc := clockwork.NewFake(time.Unix(1_700_000_000, 0))
	l := New("lus-coord", fc, WithCoordLeasePolicy(lease.Policy{Max: 5 * time.Second}))
	defer l.Close()

	a, err := l.AcquireCoordination("space-coordinator", "coord-a", 5*time.Second)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := l.AcquireCoordination("space-coordinator", "coord-b", 5*time.Second); !errors.Is(err, lease.ErrHeld) {
		t.Fatalf("rival acquire = %v, want ErrHeld", err)
	}
	holder, tok, ok := l.CoordinationHolder("space-coordinator")
	if !ok || holder != "coord-a" || tok != a.Token {
		t.Fatalf("Holder = %q/%d/%v, want coord-a/%d/true", holder, tok, ok, a.Token)
	}

	// Once the holder lapses, a standby wins with a dominating token.
	fc.Advance(6 * time.Second)
	b, err := l.AcquireCoordination("space-coordinator", "coord-b", 5*time.Second)
	if err != nil {
		t.Fatalf("standby acquire after lapse: %v", err)
	}
	if b.Token <= a.Token {
		t.Fatalf("standby token %d does not dominate %d", b.Token, a.Token)
	}
	// The deposed holder's renewal bounces rather than resurrecting it.
	if err := a.Lease.Renew(5 * time.Second); !errors.Is(err, lease.ErrUnknownLease) {
		t.Fatalf("deposed renewal = %v, want ErrUnknownLease", err)
	}
}
