package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newLUS(t *testing.T) (*clockwork.Fake, *LookupService) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	lus := New("persimmon.cs.ttu.edu:4160", fc)
	t.Cleanup(lus.Close)
	return fc, lus
}

func sensorItem(name string) ServiceItem {
	return ServiceItem{
		Service: name, // any payload; providers use themselves
		Types:   []string{"SensorDataAccessor", "Servicer"},
		Attributes: attr.Set{
			attr.Name(name),
			attr.SensorType("temperature", "celsius"),
			attr.ServiceType("ELEMENTARY"),
		},
	}
}

func TestRegisterAndLookupByType(t *testing.T) {
	_, lus := newLUS(t)
	reg, err := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ServiceID.IsZero() {
		t.Fatal("no service ID assigned")
	}
	got := lus.Lookup(ByType("SensorDataAccessor"), 0)
	if len(got) != 1 || attr.NameOf(got[0].Attributes) != "Neem-Sensor" {
		t.Fatalf("Lookup = %v", got)
	}
}

func TestLookupByNameAndAttrs(t *testing.T) {
	_, lus := newLUS(t)
	for _, n := range []string{"Neem-Sensor", "Jade-Sensor", "Coral-Sensor", "Diamond-Sensor"} {
		if _, err := lus.Register(sensorItem(n), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	item, err := lus.LookupOne(ByName("Jade-Sensor", "SensorDataAccessor"))
	if err != nil {
		t.Fatal(err)
	}
	if attr.NameOf(item.Attributes) != "Jade-Sensor" {
		t.Fatalf("got %v", item.Attributes)
	}
	// Attribute-only template.
	tmpl := Template{Attributes: attr.Set{attr.New(attr.TypeSensorType, "kind", "temperature")}}
	if got := lus.Lookup(tmpl, 0); len(got) != 4 {
		t.Fatalf("temperature sensors = %d, want 4", len(got))
	}
	// Missing type name filters out.
	if got := lus.Lookup(ByType("NoSuchInterface"), 0); len(got) != 0 {
		t.Fatalf("bogus type matched %d", len(got))
	}
}

func TestLookupByID(t *testing.T) {
	_, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	lus.Register(sensorItem("Jade-Sensor"), time.Minute)
	got := lus.Lookup(Template{ID: reg.ServiceID}, 0)
	if len(got) != 1 || got[0].ID != reg.ServiceID {
		t.Fatalf("Lookup by ID = %v", got)
	}
}

func TestLookupMaxMatchesAndOrdering(t *testing.T) {
	_, lus := newLUS(t)
	for _, n := range []string{"c", "a", "b"} {
		lus.Register(sensorItem(n), time.Minute)
	}
	got := lus.Lookup(Template{}, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if attr.NameOf(got[0].Attributes) != "a" || attr.NameOf(got[1].Attributes) != "b" {
		t.Fatalf("ordering wrong: %v, %v", attr.NameOf(got[0].Attributes), attr.NameOf(got[1].Attributes))
	}
}

func TestRegisterRequiresType(t *testing.T) {
	_, lus := newLUS(t)
	_, err := lus.Register(ServiceItem{Service: 1}, time.Minute)
	if err == nil {
		t.Fatal("typeless registration accepted")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	_, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	item2 := sensorItem("Neem-Sensor")
	item2.ID = reg.ServiceID
	item2.Attributes = item2.Attributes.Replace(attr.Comment("v2"))
	if _, err := lus.Register(item2, time.Minute); err != nil {
		t.Fatal(err)
	}
	if lus.Len() != 1 {
		t.Fatalf("Len = %d after re-register, want 1", lus.Len())
	}
	got, _ := lus.LookupOne(Template{ID: reg.ServiceID})
	if _, ok := got.Attributes.Find(attr.TypeComment); !ok {
		t.Fatal("replacement did not take")
	}
	// Old lease must be dead.
	if err := reg.Lease.Renew(time.Minute); !errors.Is(err, lease.ErrUnknownLease) {
		t.Fatalf("old lease renew err = %v", err)
	}
}

func TestDeregister(t *testing.T) {
	_, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	if err := lus.Deregister(reg.ServiceID); err != nil {
		t.Fatal(err)
	}
	if lus.Len() != 0 {
		t.Fatal("item survived Deregister")
	}
	if err := lus.Deregister(reg.ServiceID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Deregister err = %v", err)
	}
}

func TestLeaseExpirySweepsItem(t *testing.T) {
	fc, lus := newLUS(t)
	lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	fc.Advance(30 * time.Second)
	if lus.Len() != 1 {
		t.Fatal("item expired early")
	}
	fc.Advance(31 * time.Second)
	if lus.Len() != 0 {
		t.Fatal("expired item still present")
	}
}

func TestLeaseRenewalKeepsItem(t *testing.T) {
	fc, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	for i := 0; i < 5; i++ {
		fc.Advance(45 * time.Second)
		if err := reg.Lease.Renew(time.Minute); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if lus.Len() != 1 {
		t.Fatal("renewed item was swept")
	}
}

func TestModifyAttributes(t *testing.T) {
	_, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	newAttrs := attr.Set{attr.Name("Neem-Sensor"), attr.ServiceType("COMPOSITE")}
	if err := lus.ModifyAttributes(reg.ServiceID, newAttrs); err != nil {
		t.Fatal(err)
	}
	item, _ := lus.LookupOne(Template{ID: reg.ServiceID})
	e, _ := item.Attributes.Find(attr.TypeServiceType)
	if v, _ := e.Get("category"); v != "COMPOSITE" {
		t.Fatalf("category = %v", v)
	}
	if err := lus.ModifyAttributes(ids.NewServiceID(), newAttrs); !errors.Is(err, ErrNotFound) {
		t.Fatalf("modify unknown err = %v", err)
	}
}

func waitEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}

func TestNotifyOnRegister(t *testing.T) {
	_, lus := newLUS(t)
	ch := make(chan Event, 16)
	_, err := lus.Notify(ByType("SensorDataAccessor"), TransitionNoMatchMatch, func(ev Event) { ch <- ev }, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	ev := waitEvent(t, ch)
	if ev.Transition != TransitionNoMatchMatch {
		t.Fatalf("transition = %d", ev.Transition)
	}
	if attr.NameOf(ev.Item.Attributes) != "Neem-Sensor" {
		t.Fatalf("item = %v", ev.Item.Attributes)
	}
	if ev.SeqNo != 1 {
		t.Fatalf("seq = %d", ev.SeqNo)
	}
	if ev.Registrar != lus.ID() {
		t.Fatal("wrong registrar id")
	}
}

func TestNotifyOnDepartureAndExpiry(t *testing.T) {
	fc, lus := newLUS(t)
	ch := make(chan Event, 16)
	lus.Notify(ByType("SensorDataAccessor"), TransitionMatchNoMatch, func(ev Event) { ch <- ev }, time.Hour)
	reg1, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	// Orderly departure.
	lus.Deregister(reg1.ServiceID)
	ev := waitEvent(t, ch)
	if ev.Transition != TransitionMatchNoMatch || attr.NameOf(ev.Item.Attributes) != "Neem-Sensor" {
		t.Fatalf("event = %+v", ev)
	}
	// Crash-style departure: lease lapses.
	lus.Register(sensorItem("Jade-Sensor"), time.Minute)
	fc.Advance(2 * time.Minute)
	lus.SweepNow()
	ev = waitEvent(t, ch)
	if attr.NameOf(ev.Item.Attributes) != "Jade-Sensor" {
		t.Fatalf("expiry event = %+v", ev)
	}
}

func TestNotifyMatchMatchOnAttributeChange(t *testing.T) {
	_, lus := newLUS(t)
	ch := make(chan Event, 16)
	lus.Notify(ByType("SensorDataAccessor"), TransitionMatchMatch, func(ev Event) { ch <- ev }, time.Hour)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	lus.ModifyAttributes(reg.ServiceID, attr.Set{attr.Name("Neem-Sensor"), attr.Comment("recalibrated")})
	ev := waitEvent(t, ch)
	if ev.Transition != TransitionMatchMatch {
		t.Fatalf("transition = %d", ev.Transition)
	}
}

func TestNotifyTransitionViaAttributeChange(t *testing.T) {
	// An attribute change can move an item in or out of a template's
	// match set.
	_, lus := newLUS(t)
	tmpl := Template{Attributes: attr.Set{attr.ServiceType("COMPOSITE")}}
	ch := make(chan Event, 16)
	lus.Notify(tmpl, TransitionNoMatchMatch|TransitionMatchNoMatch, func(ev Event) { ch <- ev }, time.Hour)
	reg, _ := lus.Register(sensorItem("S"), time.Minute) // ELEMENTARY: no match
	lus.ModifyAttributes(reg.ServiceID, attr.Set{attr.Name("S"), attr.ServiceType("COMPOSITE")})
	ev := waitEvent(t, ch)
	if ev.Transition != TransitionNoMatchMatch {
		t.Fatalf("transition = %d, want NoMatchMatch", ev.Transition)
	}
	lus.ModifyAttributes(reg.ServiceID, attr.Set{attr.Name("S"), attr.ServiceType("ELEMENTARY")})
	ev = waitEvent(t, ch)
	if ev.Transition != TransitionMatchNoMatch {
		t.Fatalf("transition = %d, want MatchNoMatch", ev.Transition)
	}
}

func TestNotifyValidation(t *testing.T) {
	_, lus := newLUS(t)
	if _, err := lus.Notify(Template{}, 0, func(Event) {}, time.Minute); err == nil {
		t.Fatal("zero transitions accepted")
	}
	if _, err := lus.Notify(Template{}, TransitionAny, nil, time.Minute); err == nil {
		t.Fatal("nil listener accepted")
	}
}

func TestCancelNotifyStopsEvents(t *testing.T) {
	_, lus := newLUS(t)
	var mu sync.Mutex
	count := 0
	er, _ := lus.Notify(Template{}, TransitionAny, func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	}, time.Hour)
	lus.Register(sensorItem("A"), time.Minute)
	lus.CancelNotify(er.NotificationID)
	after := func() int { mu.Lock(); defer mu.Unlock(); return count }()
	lus.Register(sensorItem("B"), time.Minute)
	time.Sleep(20 * time.Millisecond)
	if got := func() int { mu.Lock(); defer mu.Unlock(); return count }(); got != after {
		t.Fatalf("events after cancel: %d -> %d", after, got)
	}
}

func TestNotificationLeaseExpiry(t *testing.T) {
	fc, lus := newLUS(t)
	ch := make(chan Event, 16)
	lus.Notify(Template{}, TransitionAny, func(ev Event) { ch <- ev }, time.Minute)
	fc.Advance(2 * time.Minute)
	lus.SweepNow()
	lus.Register(sensorItem("A"), time.Minute)
	select {
	case ev := <-ch:
		t.Fatalf("event after notification lease expiry: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClosedRegistryRejects(t *testing.T) {
	_, lus := newLUS(t)
	lus.Close()
	if _, err := lus.Register(sensorItem("A"), time.Minute); err == nil {
		t.Fatal("register on closed registry accepted")
	}
	if _, err := lus.Notify(Template{}, TransitionAny, func(Event) {}, time.Minute); err == nil {
		t.Fatal("notify on closed registry accepted")
	}
	lus.Close() // idempotent
}

func TestLookupOneNotFound(t *testing.T) {
	_, lus := newLUS(t)
	if _, err := lus.LookupOne(ByName("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentRegisterLookup(t *testing.T) {
	_, lus := newLUS(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				item := sensorItem(fmt.Sprintf("sensor-%d-%d", g, i))
				if _, err := lus.Register(item, time.Minute); err != nil {
					t.Error(err)
					return
				}
				lus.Lookup(ByType("SensorDataAccessor"), 10)
			}
		}(g)
	}
	wg.Wait()
	if lus.Len() != 400 {
		t.Fatalf("Len = %d, want 400", lus.Len())
	}
}

func TestLookupReturnsClones(t *testing.T) {
	_, lus := newLUS(t)
	lus.Register(sensorItem("A"), time.Minute)
	got := lus.Lookup(Template{}, 0)
	got[0].Attributes[0].Fields["name"] = "tampered"
	again, _ := lus.LookupOne(Template{})
	if attr.NameOf(again.Attributes) != "A" {
		t.Fatal("Lookup leaked internal state")
	}
}

// Property: after registering N uniquely named services, each is findable
// by name and the total count is N.
func TestPropertyRegisterLookupComplete(t *testing.T) {
	f := func(seed uint8) bool {
		fc := clockwork.NewFake(epoch)
		lus := New("test", fc)
		defer lus.Close()
		n := int(seed%16) + 1
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("s%d", i)
			if _, err := lus.Register(sensorItem(name), time.Minute); err != nil {
				return false
			}
		}
		if lus.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := lus.LookupOne(ByName(fmt.Sprintf("s%d", i))); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateMatchesDirect(t *testing.T) {
	item := sensorItem("X")
	item.ID = ids.NewServiceID()
	if !(Template{}).Matches(item) {
		t.Fatal("empty template must match")
	}
	if (Template{ID: ids.NewServiceID()}).Matches(item) {
		t.Fatal("foreign ID matched")
	}
	if !(Template{ID: item.ID, Types: []string{"Servicer"}}).Matches(item) {
		t.Fatal("exact template failed")
	}
}

func TestNameIndexConsistency(t *testing.T) {
	_, lus := newLUS(t)
	reg, _ := lus.Register(sensorItem("Indexed"), time.Minute)
	// Index-served lookup agrees with full scan.
	byName := lus.Lookup(ByName("Indexed"), 0)
	byScan := lus.Lookup(Template{Types: []string{"SensorDataAccessor"}}, 0)
	if len(byName) != 1 || len(byScan) != 1 || byName[0].ID != byScan[0].ID {
		t.Fatalf("index/scan disagree: %v vs %v", byName, byScan)
	}
	// Rename via ModifyAttributes moves the index entry.
	lus.ModifyAttributes(reg.ServiceID, attr.Set{attr.Name("Renamed")})
	if got := lus.Lookup(ByName("Indexed"), 0); len(got) != 0 {
		t.Fatal("old name still resolves after rename")
	}
	if _, err := lus.LookupOne(ByName("Renamed")); err != nil {
		t.Fatal("new name does not resolve")
	}
	// Deregistration clears the index.
	lus.Deregister(reg.ServiceID)
	if got := lus.Lookup(ByName("Renamed"), 0); len(got) != 0 {
		t.Fatal("index entry survived deregistration")
	}
}

func TestNameIndexWithDuplicateNames(t *testing.T) {
	// Two distinct services may share a name (different hosts); the
	// index must return both, and removing one must keep the other.
	_, lus := newLUS(t)
	r1, _ := lus.Register(sensorItem("Twin"), time.Minute)
	lus.Register(sensorItem("Twin"), time.Minute)
	if got := lus.Lookup(ByName("Twin"), 0); len(got) != 2 {
		t.Fatalf("Lookup = %d, want 2", len(got))
	}
	lus.Deregister(r1.ServiceID)
	if got := lus.Lookup(ByName("Twin"), 0); len(got) != 1 {
		t.Fatalf("Lookup after one departure = %d, want 1", len(got))
	}
}

func TestNameIndexAfterLeaseExpiry(t *testing.T) {
	fc, lus := newLUS(t)
	lus.Register(sensorItem("Fleeting"), time.Minute)
	fc.Advance(2 * time.Minute)
	lus.SweepNow()
	if got := lus.Lookup(ByName("Fleeting"), 0); len(got) != 0 {
		t.Fatal("index entry survived lease expiry")
	}
}

func TestNamePinnedTemplateStillAppliesOtherConstraints(t *testing.T) {
	_, lus := newLUS(t)
	lus.Register(sensorItem("Constrained"), time.Minute)
	// Name matches but the type constraint does not.
	tmpl := Template{Types: []string{"NoSuchType"}, Attributes: attr.Set{attr.Name("Constrained")}}
	if got := lus.Lookup(tmpl, 0); len(got) != 0 {
		t.Fatal("index bypassed the type constraint")
	}
	// Name matches but another attribute does not.
	tmpl2 := ByName("Constrained")
	tmpl2.Attributes = tmpl2.Attributes.Replace(attr.New(attr.TypeSensorType, "kind", "humidity"))
	if got := lus.Lookup(tmpl2, 0); len(got) != 0 {
		t.Fatal("index bypassed the attribute constraint")
	}
}

// Property: after an arbitrary mix of registrations and deregistrations,
// index-served name lookups agree exactly with a brute-force scan.
func TestPropertyIndexMatchesScan(t *testing.T) {
	f := func(ops []uint8) bool {
		fc := clockwork.NewFake(epoch)
		lus := New("t", fc)
		defer lus.Close()
		names := []string{"alpha", "beta", "gamma"}
		var live []Registration
		for _, op := range ops {
			name := names[int(op)%len(names)]
			switch (op / 8) % 3 {
			case 0, 1: // register (biased toward growth)
				reg, err := lus.Register(sensorItem(name), time.Minute)
				if err != nil {
					return false
				}
				live = append(live, reg)
			case 2: // deregister the oldest live registration
				if len(live) > 0 {
					lus.Deregister(live[0].ServiceID)
					live = live[1:]
				}
			}
		}
		all := lus.Items()
		for _, name := range names {
			indexed := lus.Lookup(ByName(name), 0)
			want := 0
			for _, item := range all {
				if attr.NameOf(item.Attributes) == name {
					want++
				}
			}
			if len(indexed) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
