package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/wal"
)

// Journal operation tags (on-disk format).
const (
	regOpRegister   = "register"
	regOpDeregister = "deregister"
	regOpModAttrs   = "modattrs"
	regOpExpire     = "expire"
)

// regRecord is one registry journal entry. Service proxies are live
// objects and are deliberately NOT journaled: a recovered item carries a
// nil Service until its provider re-registers under the same ServiceID
// (the Jini restart protocol), at which point Register replaces the whole
// item.
type regRecord struct {
	Op      string        `json:"op"`
	ID      ids.ServiceID `json:"id,omitempty"`
	Types   []string      `json:"types,omitempty"`
	Attrs   attr.Set      `json:"attrs,omitempty"`
	LeaseMS int64         `json:"leaseMs,omitempty"`
}

// registrySnapshot is the checkpoint format. LeaseMS is the lease time
// remaining at checkpoint, rebased onto the recovery clock.
type registrySnapshot struct {
	Items []regRecord `json:"items"`
}

// journalLocked appends a record to the journal (no-op for volatile
// registries). Callers hold l.mu for writing. An error means the record
// is not durable: the caller must not apply the operation.
func (l *LookupService) journalLocked(rec regRecord) error {
	if l.journal == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("registry: encoding journal record: %w", err)
	}
	if _, err := l.journal.Append(b); err != nil {
		return fmt.Errorf("registry: journaling %s: %w", rec.Op, err)
	}
	return nil
}

// decodeRegJSON unmarshals registry journal payloads preserving integer
// attribute values: package attr canonicalizes ints to int64, and a plain
// json.Unmarshal would return them as float64, silently breaking template
// matches after recovery. Numbers without a fraction or exponent decode as
// int64 (integral float64 attributes therefore also recover as int64 — an
// accepted fidelity loss, documented in DESIGN.md §8).
func decodeRegJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// fixNumbers converts json.Number values left by decodeRegJSON into the
// attr-canonical int64/float64 kinds, in place.
func fixNumbers(attrs attr.Set) error {
	for _, e := range attrs {
		for k, v := range e.Fields {
			num, ok := v.(json.Number)
			if !ok {
				continue
			}
			s := num.String()
			if strings.ContainsAny(s, ".eE") {
				f, err := num.Float64()
				if err != nil {
					return fmt.Errorf("registry: attribute %s.%s: %w", e.Type, k, err)
				}
				e.Fields[k] = f
				continue
			}
			i, err := num.Int64()
			if err != nil {
				return fmt.Errorf("registry: attribute %s.%s: %w", e.Type, k, err)
			}
			e.Fields[k] = i
		}
	}
	return nil
}

// Recover opens a durable lookup service backed by log: it loads the
// latest snapshot, replays the records after it, and attaches the log so
// every subsequent registration change is journaled before it is
// acknowledged.
//
// Registration leases are rebased onto the recovery clock: an item
// registered with lease duration d (or holding d-remaining at the last
// checkpoint) gets a fresh grant of d from now, so providers have one full
// lease term after a registry restart to resume renewing — or re-register
// — before they are swept. Recovered items have a nil Service proxy until
// their provider re-registers.
func Recover(name string, clock clockwork.Clock, log *wal.Log, opts ...Option) (*LookupService, error) {
	l := New(name, clock, opts...)
	live := make(map[ids.ServiceID]*regRecord)

	if data, _, _, ok := log.Snapshot(); ok {
		var snap registrySnapshot
		if err := decodeRegJSON(data, &snap); err != nil {
			return nil, fmt.Errorf("registry: decoding snapshot: %w", err)
		}
		for i := range snap.Items {
			it := snap.Items[i]
			live[it.ID] = &it
		}
	}

	err := log.Replay(func(_ uint64, payload []byte) error {
		var rec regRecord
		if err := decodeRegJSON(payload, &rec); err != nil {
			return fmt.Errorf("registry: decoding journal record: %w", err)
		}
		switch rec.Op {
		case regOpRegister:
			live[rec.ID] = &rec
		case regOpDeregister, regOpExpire:
			delete(live, rec.ID)
		case regOpModAttrs:
			if it, ok := live[rec.ID]; ok {
				it.Attrs = rec.Attrs
			}
		default:
			return fmt.Errorf("registry: unknown journal op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for id, it := range live {
		if err := fixNumbers(it.Attrs); err != nil {
			return nil, err
		}
		lse := l.itemLeases.Grant(time.Duration(it.LeaseMS) * time.Millisecond)
		item := ServiceItem{ID: id, Types: it.Types, Attributes: it.Attrs}
		l.items[id] = &record{item: item, leaseID: lse.ID}
		l.byLease[lse.ID] = id
		l.indexAddLocked(item)
	}
	l.journal = log
	return l, nil
}

// Checkpoint writes a snapshot of the live registrations to the journal
// and compacts it, bounding recovery time. Volatile registries return nil.
func (l *LookupService) Checkpoint() error {
	if l.journal == nil {
		return nil
	}
	l.itemLeases.Sweep()
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock.Now()
	var snap registrySnapshot
	for id, rec := range l.items {
		exp, ok := l.itemLeases.Expiration(rec.leaseID)
		if !ok {
			continue // lapsed but not yet swept
		}
		snap.Items = append(snap.Items, regRecord{
			ID:      id,
			Types:   rec.item.Types,
			Attrs:   rec.item.Attributes,
			LeaseMS: int64(exp.Sub(now) / time.Millisecond),
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("registry: encoding snapshot: %w", err)
	}
	if err := l.journal.WriteSnapshot(data); err != nil {
		return fmt.Errorf("registry: checkpoint: %w", err)
	}
	return nil
}
