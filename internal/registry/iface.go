package registry

import (
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
)

// Registrar is the client-facing surface of a lookup service. In-process
// federations use *LookupService directly; cross-process deployments use an
// srpc client stub. Discovery (package discovery) deals only in Registrars,
// so the two are interchangeable.
type Registrar interface {
	// ID returns the registrar's own service ID.
	ID() ids.ServiceID
	// Name returns the registrar's administrative name (host:port).
	Name() string
	// Register adds or replaces a service registration under a lease.
	Register(item ServiceItem, leaseDur time.Duration) (Registration, error)
	// Deregister removes a service immediately.
	Deregister(id ids.ServiceID) error
	// ModifyAttributes replaces a registration's attribute set.
	ModifyAttributes(id ids.ServiceID, attrs attr.Set) error
	// Lookup returns up to maxMatches matching items (all if <= 0).
	Lookup(tmpl Template, maxMatches int) []ServiceItem
	// LookupOne returns the first match or ErrNotFound.
	LookupOne(tmpl Template) (ServiceItem, error)
	// Notify registers a leased event listener.
	Notify(tmpl Template, transitions int, fn Listener, leaseDur time.Duration) (EventRegistration, error)
	// CancelNotify removes an event registration.
	CancelNotify(notificationID uint64)
}

// Compile-time check that the in-process LUS satisfies Registrar.
var _ Registrar = (*LookupService)(nil)
