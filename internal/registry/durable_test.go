package registry

import (
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/wal"
)

// durableLUS recovers a lookup service from dir on a fresh fake clock.
// fsync is disabled: these tests crash by reopening the directory, so the
// page cache is always intact.
func durableLUS(t *testing.T, dir string) (*clockwork.Fake, *LookupService, *wal.Log) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	lus, err := Recover("persimmon.cs.ttu.edu:4160", fc, l)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		lus.Close()
		_ = l.Close()
	})
	return fc, lus, l
}

func TestRegistrationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	reg, err := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lus.Register(sensorItem("Oak-Sensor"), time.Minute); err != nil {
		t.Fatal(err)
	}
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	if n := re.Len(); n != 2 {
		t.Fatalf("recovered %d registrations, want 2", n)
	}
	item, err := re.LookupOne(ByName("Neem-Sensor", "SensorDataAccessor"))
	if err != nil {
		t.Fatalf("recovered item not matchable by name+type: %v", err)
	}
	if item.ID != reg.ServiceID {
		t.Fatalf("recovered ID = %s, want %s", item.ID.Short(), reg.ServiceID.Short())
	}
	// Proxies are live objects and cannot be journaled.
	if item.Service != nil {
		t.Fatalf("recovered item has a proxy: %v", item.Service)
	}
}

func TestReregistrationRestoresProxy(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	// Jini restart protocol: the provider re-registers under its kept
	// ServiceID, replacing the proxy-less recovered item.
	item := sensorItem("Neem-Sensor")
	item.ID = reg.ServiceID
	if _, err := re.Register(item, time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := re.Len(); n != 1 {
		t.Fatalf("re-registration duplicated the item, Len = %d", n)
	}
	got, err := re.LookupOne(ByName("Neem-Sensor"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "Neem-Sensor" {
		t.Fatalf("proxy not restored: %v", got.Service)
	}
}

func TestDeregisteredServiceStaysGone(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	lus.Register(sensorItem("Oak-Sensor"), time.Minute)
	if err := lus.Deregister(reg.ServiceID); err != nil {
		t.Fatal(err)
	}
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	if _, err := re.LookupOne(ByName("Neem-Sensor")); err == nil {
		t.Fatal("deregistered service resurrected")
	}
	if _, err := re.LookupOne(ByName("Oak-Sensor")); err != nil {
		t.Fatalf("surviving registration lost: %v", err)
	}
}

func TestAttributeChangesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	reg, _ := lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	next := attr.Set{
		attr.Name("Neem-Sensor"),
		attr.SensorType("humidity", "percent"),
	}
	if err := lus.ModifyAttributes(reg.ServiceID, next); err != nil {
		t.Fatal(err)
	}
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	got, err := re.LookupOne(ByName("Neem-Sensor"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attributes.MatchesTemplate(attr.Set{attr.New(attr.TypeSensorType, "kind", "humidity")}) {
		t.Fatalf("modified attributes lost: %v", got.Attributes)
	}
}

// TestIntegerAttributesMatchAfterRecovery pins the json.Number decode
// path: attr canonicalizes ints to int64, so a recovered integer
// attribute must still match an int-valued template.
func TestIntegerAttributesMatchAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	item := sensorItem("Neem-Sensor")
	item.Attributes = append(item.Attributes, attr.New("PortInfo", "port", 4160))
	if _, err := lus.Register(item, time.Minute); err != nil {
		t.Fatal(err)
	}
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	tmpl := Template{Attributes: attr.Set{attr.New("PortInfo", "port", 4160)}}
	if _, err := re.LookupOne(tmpl); err != nil {
		t.Fatalf("integer attribute stopped matching after recovery: %v", err)
	}
}

func TestRegistryLeasesRebasedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	lus.Close()
	_ = l.Close()

	fc, re, _ := durableLUS(t, dir)
	// Alive immediately after recovery (one fresh lease term to resume
	// renewing), gone one rebased duration later if the provider stays
	// silent.
	if n := re.Len(); n != 1 {
		t.Fatalf("Len = %d right after recovery", n)
	}
	fc.Advance(2 * time.Minute)
	if n := re.Len(); n != 0 {
		t.Fatalf("silent provider survived its rebased lease, Len = %d", n)
	}
}

func TestExpiredRegistrationStaysDeadAfterRestart(t *testing.T) {
	dir := t.TempDir()
	fc, lus, l := durableLUS(t, dir)
	lus.Register(sensorItem("Neem-Sensor"), time.Minute)
	fc.Advance(2 * time.Minute)
	lus.SweepNow() // journals the expire record
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	if n := re.Len(); n != 0 {
		t.Fatalf("expired registration resurrected, Len = %d", n)
	}
}

func TestRegistryCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	_, lus, l := durableLUS(t, dir)
	for i := 0; i < 20; i++ {
		lus.Register(sensorItem("Sensor-"+string(rune('A'+i))), time.Minute)
	}
	if err := lus.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotSeq() == 0 {
		t.Fatal("checkpoint wrote no snapshot")
	}
	lus.Register(sensorItem("Late-Sensor"), time.Minute)
	lus.Close()
	_ = l.Close()

	_, re, _ := durableLUS(t, dir)
	if n := re.Len(); n != 21 {
		t.Fatalf("recovered %d registrations, want 21", n)
	}
	if _, err := re.LookupOne(ByName("Late-Sensor")); err != nil {
		t.Fatalf("post-checkpoint registration lost: %v", err)
	}
}
