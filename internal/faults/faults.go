// Package faults is a deterministic, seed-driven fault injector for chaos
// testing the federation. Production components expose narrow hook points
// ("sites") — an srpc send, a tuple-space write, a provider operation — and
// consult an Injector before proceeding. With a nil Injector every hook is
// a no-op, so the hooks cost one nil check on the hot path and nothing is
// injected outside tests.
//
// All randomness flows from one seeded source, and delays are driven by an
// injectable clockwork.Clock, so a chaos run with a fixed seed replays the
// same fault pattern every time. The package also provides the two
// non-probabilistic chaos primitives the paper's failure semantics call
// for: Crash (a provider that stops serving and stops renewing its leases)
// and Partition (groups of nodes that cannot reach each other).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// Sentinel errors distinguishing injected failures from organic ones.
// Chaos assertions match these with errors.Is to prove every failure that
// reaches a requestor is typed and attributable.
var (
	// ErrInjected is the default error returned by error-rate rules.
	ErrInjected = errors.New("faults: injected failure")
	// ErrCrashed is returned by hooks guarding a crashed component.
	ErrCrashed = errors.New("faults: provider crashed")
	// ErrPartitioned is returned when a call crosses partition groups.
	ErrPartitioned = errors.New("faults: network partitioned")
)

// Rule is the fault profile for one site: independent probabilities of
// returning an error, silently dropping the message, and delaying before
// proceeding. Probabilities are evaluated in that order, each in [0, 1].
type Rule struct {
	// ErrorRate is the probability the hook returns Err.
	ErrorRate float64
	// Err overrides the error returned on an error injection
	// (default ErrInjected).
	Err error
	// DropRate is the probability Drop reports true — the message is
	// lost in flight and the caller never learns; whoever waits on the
	// other end times out.
	DropRate float64
	// DelayRate is the probability the hook sleeps Delay before letting
	// the call proceed.
	DelayRate float64
	// Delay is the injected latency for delay events.
	Delay time.Duration
}

// SiteStats counts what the injector did at one site.
type SiteStats struct {
	Calls  uint64
	Errors uint64
	Drops  uint64
	Delays uint64
}

// Injector holds per-site rules and the shared random source. All methods
// are safe for concurrent use, and every method is safe on a nil receiver
// (no-op / zero result), which is how production code guards its hooks.
type Injector struct {
	clock clockwork.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]Rule
	// fallback applies to sites without a specific rule.
	fallback *Rule
	stats    map[string]*SiteStats
}

// New creates an injector whose randomness derives entirely from seed and
// whose injected delays run on clock (nil = real clock).
func New(seed int64, clock clockwork.Clock) *Injector {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &Injector{
		clock: clock,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]Rule),
		stats: make(map[string]*SiteStats),
	}
}

// Set installs the rule for a site, replacing any previous one.
func (in *Injector) Set(site string, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[site] = r
	in.mu.Unlock()
}

// SetDefault installs a rule applied to every site without its own rule.
func (in *Injector) SetDefault(r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.fallback = &r
	in.mu.Unlock()
}

// Clear removes the rule for a site.
func (in *Injector) Clear(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	delete(in.rules, site)
	in.mu.Unlock()
}

// rule resolves the effective rule for a site (zero Rule when none).
func (in *Injector) rule(site string) (Rule, *SiteStats) {
	st := in.stats[site]
	if st == nil {
		st = &SiteStats{}
		in.stats[site] = st
	}
	if r, ok := in.rules[site]; ok {
		return r, st
	}
	if in.fallback != nil {
		return *in.fallback, st
	}
	return Rule{}, st
}

// Inject is the main hook: it applies the site's rule and returns either
// nil (proceed — possibly after an injected delay) or the injected error.
// Nil-safe.
func (in *Injector) Inject(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r, st := in.rule(site)
	st.Calls++
	var delay time.Duration
	var injected error
	if r.ErrorRate > 0 && in.rng.Float64() < r.ErrorRate {
		injected = r.Err
		if injected == nil {
			injected = ErrInjected
		}
		st.Errors++
	} else if r.DelayRate > 0 && in.rng.Float64() < r.DelayRate {
		delay = r.Delay
		st.Delays++
	}
	in.mu.Unlock()
	if injected != nil {
		return fmt.Errorf("%w (site %s)", injected, site)
	}
	if delay > 0 {
		in.clock.Sleep(delay)
	}
	return nil
}

// Drop reports whether the message at this site should be silently lost.
// Call sites that can model in-flight loss (a request never sent, a tuple
// never stored) use Drop; everything else uses Inject. Nil-safe.
func (in *Injector) Drop(site string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	r, st := in.rule(site)
	st.Calls++
	dropped := r.DropRate > 0 && in.rng.Float64() < r.DropRate
	if dropped {
		st.Drops++
	}
	in.mu.Unlock()
	return dropped
}

// Stats snapshots the counters for a site.
func (in *Injector) Stats(site string) SiteStats {
	if in == nil {
		return SiteStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[site]; st != nil {
		return *st
	}
	return SiteStats{}
}

// Crash is a crash-provider switch: a component guards its entry points
// with Check and the chaos harness flips it with Crash. Unlike an
// error-rate rule, a crashed component also stops doing background work
// (lease renewal, space polling) — callers poll Crashed for that.
type Crash struct {
	mu   sync.Mutex
	down bool
}

// Crash marks the component dead.
func (c *Crash) Crash() {
	c.mu.Lock()
	c.down = true
	c.mu.Unlock()
}

// Recover brings the component back.
func (c *Crash) Recover() {
	c.mu.Lock()
	c.down = false
	c.mu.Unlock()
}

// Crashed reports the switch state.
func (c *Crash) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Check returns ErrCrashed while the component is down.
func (c *Crash) Check() error {
	if c.Crashed() {
		return ErrCrashed
	}
	return nil
}

// Partition models a network split: every node starts in group 0; Isolate
// moves nodes to other groups; calls between different groups fail. Heal
// restores full connectivity. Nil-safe like the Injector.
type Partition struct {
	mu    sync.Mutex
	group map[string]int
}

// NewPartition creates a fully connected (unpartitioned) network.
func NewPartition() *Partition {
	return &Partition{group: make(map[string]int)}
}

// Isolate assigns a node to a partition group (group 0 is the majority
// side). Unknown nodes are implicitly in group 0.
func (p *Partition) Isolate(node string, group int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.group[node] = group
	p.mu.Unlock()
}

// Heal reconnects everything.
func (p *Partition) Heal() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.group = make(map[string]int)
	p.mu.Unlock()
}

// Check returns ErrPartitioned when from and to sit in different groups.
func (p *Partition) Check(from, to string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	a, b := p.group[from], p.group[to]
	p.mu.Unlock()
	if a != b {
		return fmt.Errorf("%w: %s -> %s", ErrPartitioned, from, to)
	}
	return nil
}
