package faults

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Inject("x"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Drop("x") {
		t.Fatal("nil injector dropped")
	}
	in.Set("x", Rule{ErrorRate: 1})
	in.SetDefault(Rule{ErrorRate: 1})
	in.Clear("x")
	if got := in.Stats("x"); got != (SiteStats{}) {
		t.Fatalf("nil injector stats = %+v", got)
	}
}

func TestErrorRateDeterministic(t *testing.T) {
	count := func() int {
		in := New(42, clockwork.Real())
		in.Set("s", Rule{ErrorRate: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if err := in.Inject("s"); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error type: %v", err)
				}
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed produced different fault patterns: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("error rate 0.3 produced %d/1000 errors", a)
	}
}

func TestCustomError(t *testing.T) {
	custom := errors.New("boom")
	in := New(1, clockwork.Real())
	in.Set("s", Rule{ErrorRate: 1, Err: custom})
	if err := in.Inject("s"); !errors.Is(err, custom) {
		t.Fatalf("got %v, want wrapped %v", err, custom)
	}
}

func TestDropRate(t *testing.T) {
	in := New(7, clockwork.Real())
	in.Set("s", Rule{DropRate: 1})
	if !in.Drop("s") {
		t.Fatal("DropRate 1 did not drop")
	}
	st := in.Stats("s")
	if st.Drops != 1 || st.Calls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDelayUsesClock(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	in := New(7, fake)
	in.Set("s", Rule{DelayRate: 1, Delay: time.Second})
	// Fake clock Sleep is a no-op, so this must not block; the delay is
	// still accounted.
	if err := in.Inject("s"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if st := in.Stats("s"); st.Delays != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDefaultRuleAppliesToUnknownSites(t *testing.T) {
	in := New(3, clockwork.Real())
	in.SetDefault(Rule{ErrorRate: 1})
	if err := in.Inject("anything"); err == nil {
		t.Fatal("default rule not applied")
	}
	in.Set("quiet", Rule{})
	if err := in.Inject("quiet"); err != nil {
		t.Fatalf("site rule should override default: %v", err)
	}
}

func TestCrashSwitch(t *testing.T) {
	var c Crash
	if err := c.Check(); err != nil {
		t.Fatalf("fresh switch: %v", err)
	}
	c.Crash()
	if err := c.Check(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed switch: %v", err)
	}
	if !c.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	c.Recover()
	if err := c.Check(); err != nil {
		t.Fatalf("recovered switch: %v", err)
	}
}

func TestPartition(t *testing.T) {
	p := NewPartition()
	if err := p.Check("a", "b"); err != nil {
		t.Fatalf("unpartitioned: %v", err)
	}
	p.Isolate("b", 1)
	if err := p.Check("a", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-group: %v", err)
	}
	if err := p.Check("b", "b"); err != nil {
		t.Fatalf("same group: %v", err)
	}
	p.Heal()
	if err := p.Check("a", "b"); err != nil {
		t.Fatalf("healed: %v", err)
	}
	var nilP *Partition
	if err := nilP.Check("a", "b"); err != nil {
		t.Fatalf("nil partition: %v", err)
	}
}
