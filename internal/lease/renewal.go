package lease

import (
	"errors"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/resilience"
)

// RenewalManager keeps a set of leases alive by renewing each one when a
// configurable fraction of its term has elapsed. It is the in-process
// analogue of the Jini Lease Renewal Service that appears in the paper's
// Fig. 2 service list: providers hand their registration leases to the
// manager and forget about them.
type RenewalManager struct {
	clock clockwork.Clock
	// renewAt is the fraction of the lease term after which renewal is
	// attempted (e.g. 0.5 renews at half-life).
	renewAt float64
	// request is the duration asked for on each renewal.
	request time.Duration
	// retry governs each renewal attempt (zero = single attempt, the
	// historical behavior); see WithRetryPolicy.
	retry resilience.Policy

	mu sync.Mutex
	// leases maps each managed lease to its renew deadline: the instant
	// at which renewAt of the term (measured when the lease was added or
	// last renewed) has elapsed.
	leases  map[*Lease]time.Time
	stopped bool
	wake    chan struct{}
	done    chan struct{}

	onFailure func(l *Lease, err error)
	// resolve, when set, is consulted after a failed renewal attempt: it
	// may hand back a replacement lease (re-granted by a promoted backup
	// after a failover) which the manager renews immediately — within
	// the same retry attempt — and manages from then on.
	resolve func(l *Lease) (*Lease, bool)
}

// RenewalOption customizes a RenewalManager.
type RenewalOption func(*RenewalManager)

// WithRenewAt sets the fraction of the term after which renewal happens;
// values are clamped to [0.1, 0.9]. Default 0.5.
func WithRenewAt(fraction float64) RenewalOption {
	return func(m *RenewalManager) {
		if fraction < 0.1 {
			fraction = 0.1
		}
		if fraction > 0.9 {
			fraction = 0.9
		}
		m.renewAt = fraction
	}
}

// WithRequest sets the duration requested on each renewal. Default Forever
// (the grantor clamps to its policy max).
func WithRequest(d time.Duration) RenewalOption {
	return func(m *RenewalManager) { m.request = d }
}

// WithFailureHandler installs a callback invoked when a renewal fails; the
// lease is dropped from management first. By default failures are silent
// (the service simply leaves the network, per the paper's semantics).
func WithFailureHandler(fn func(l *Lease, err error)) RenewalOption {
	return func(m *RenewalManager) { m.onFailure = fn }
}

// WithRetryPolicy runs each renewal under the resilience policy, so a
// transiently unreachable grantor does not immediately cost the lease.
// The policy's clock defaults to the manager's and its Retryable filter
// defaults to refusing ErrUnknownLease and ErrCanceled (dead or
// deliberately departed leases are never worth retrying).
func WithRetryPolicy(p resilience.Policy) RenewalOption {
	return func(m *RenewalManager) {
		if p.Clock == nil {
			p.Clock = m.clock
		}
		if p.Retryable == nil {
			p.Retryable = resilience.NotRetryable(ErrUnknownLease, ErrCanceled)
		}
		m.retry = p
	}
}

// WithFailoverResolver installs a failover hook consulted when a renewal
// attempt fails for any reason other than deliberate cancellation: the
// resolver may return a replacement lease — typically one re-granted by
// the promoted backup of a failed grantor — and the manager switches to
// it on the spot, renewing the replacement within the same attempt so a
// failover does not burn the retry budget meant for transient faults.
// Returning (nil, false) declines, and the original error stands.
func WithFailoverResolver(fn func(l *Lease) (*Lease, bool)) RenewalOption {
	return func(m *RenewalManager) { m.resolve = fn }
}

// NewRenewalManager starts the renewal loop. Call Stop to shut it down.
func NewRenewalManager(clock clockwork.Clock, opts ...RenewalOption) *RenewalManager {
	m := &RenewalManager{
		clock:   clock,
		renewAt: 0.5,
		request: Forever,
		leases:  make(map[*Lease]time.Time),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	go m.loop()
	return m
}

// Manage adds a lease to the renewal set.
func (m *RenewalManager) Manage(l *Lease) {
	m.mu.Lock()
	if !m.stopped {
		m.leases[l] = m.renewDeadline(l, m.clock.Now())
	}
	m.mu.Unlock()
	m.kick()
}

// renewDeadline computes when to next renew l, given the current time.
func (m *RenewalManager) renewDeadline(l *Lease, now time.Time) time.Time {
	term := l.Expiration.Sub(now)
	if term < 0 {
		term = 0
	}
	return now.Add(time.Duration(float64(term) * m.renewAt))
}

// Release removes a lease from management without cancelling it.
func (m *RenewalManager) Release(l *Lease) {
	m.mu.Lock()
	delete(m.leases, l)
	m.mu.Unlock()
	m.kick()
}

// Count reports the number of managed leases.
func (m *RenewalManager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.leases)
}

// Stop halts the renewal loop. Managed leases are left to expire naturally;
// call Cancel on them first for an orderly departure.
func (m *RenewalManager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	m.kick()
	<-m.done
}

func (m *RenewalManager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// loop renews each lease once renewAt of its term has elapsed, sleeping
// until the earliest pending renewal point.
func (m *RenewalManager) loop() {
	defer close(m.done)
	const idlePoll = time.Second
	for {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return
		}
		now := m.clock.Now()
		var due, lapsed []*Lease
		nextWake := now.Add(idlePoll)
		for l, deadline := range m.leases {
			if l.Expired(now) {
				// Already lapsed; drop it and report below.
				delete(m.leases, l)
				lapsed = append(lapsed, l)
				continue
			}
			if !now.Before(deadline) {
				due = append(due, l)
			} else if deadline.Before(nextWake) {
				nextWake = deadline
			}
		}
		onFailure := m.onFailure
		resolve := m.resolve
		m.mu.Unlock()

		if onFailure != nil {
			for _, l := range lapsed {
				onFailure(l, ErrUnknownLease)
			}
		}
		for _, l := range due {
			cur := l
			err := m.retry.Run(func(resilience.Attempt) error {
				rerr := cur.Renew(m.request)
				if rerr == nil || resolve == nil || errors.Is(rerr, ErrCanceled) {
					return rerr
				}
				// The grantor may be gone for good (shard failover): ask
				// the resolver for a replacement lease from its successor
				// and renew that instead, inside this same attempt — a
				// cured failover must not consume the retry budget.
				repl, ok := resolve(cur)
				if !ok || repl == nil {
					return rerr
				}
				cur = repl
				return cur.Renew(m.request)
			})
			m.mu.Lock()
			if err != nil {
				delete(m.leases, l)
			} else if _, still := m.leases[l]; still {
				if cur != l {
					delete(m.leases, l)
				}
				m.leases[cur] = m.renewDeadline(cur, m.clock.Now())
			}
			m.mu.Unlock()
			// A canceled lease left deliberately; only organic failures
			// are worth reporting.
			if err != nil && onFailure != nil && !errors.Is(err, ErrCanceled) {
				onFailure(l, err)
			}
		}
		if len(due) > 0 {
			// Deadlines changed; rescan before sleeping so the fresh
			// renew points are taken into account.
			continue
		}

		sleep := nextWake.Sub(m.clock.Now())
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		timer := m.clock.NewTimer(sleep)
		select {
		case <-timer.C():
		case <-m.wake:
			timer.Stop()
		}
	}
}

// Janitor periodically sweeps a Table so expirations are detected promptly
// even when the table sees no traffic. Stop it with Stop.
type Janitor struct {
	stop chan struct{}
	done chan struct{}
}

// NewJanitor starts sweeping table every interval using clock.
func NewJanitor(clock clockwork.Clock, table *Table, interval time.Duration) *Janitor {
	j := &Janitor{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(j.done)
		for {
			timer := clock.NewTimer(interval)
			select {
			case <-timer.C():
				table.Sweep()
			case <-j.stop:
				timer.Stop()
				return
			}
		}
	}()
	return j
}

// Stop halts the janitor and waits for it to exit.
func (j *Janitor) Stop() {
	close(j.stop)
	<-j.done
}
