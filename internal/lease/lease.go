// Package lease implements Jini-style resource leasing: time-bounded grants
// that must be renewed to stay alive. Leasing is what keeps a SenSORCER
// network "healthy and robust" (paper §IV-B): a sensor service that dies
// simply stops renewing and is swept from the lookup service, so stale
// services never linger.
//
// The package has three parts:
//
//   - Lease: the client-side handle (id + expiration + grantor reference).
//   - Table: the server-side grant ledger ("landlord"), used by the lookup
//     service, tuple space, event mailbox and transaction manager.
//   - RenewalManager: a client agent that keeps a set of leases renewed,
//     playing the role of the "Lease Renewal Service" visible in the
//     paper's Fig. 2.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// Forever requests the maximum duration the grantor allows.
const Forever = time.Duration(1<<62 - 1)

// ErrUnknownLease is returned when renewing or cancelling a lease the
// grantor no longer tracks (expired, cancelled, or never granted).
var ErrUnknownLease = errors.New("lease: unknown or expired lease")

// ErrCanceled is returned by Renew on a lease whose Cancel has already
// run (or begun): a renewal racing a cancel must not resurrect the grant,
// and must not look like an unexpected failure to renewal managers.
var ErrCanceled = errors.New("lease: canceled")

// Grantor is implemented by services that issue leases (the landlord side).
type Grantor interface {
	// Renew extends the lease and returns the new expiration.
	Renew(id uint64, requested time.Duration) (time.Time, error)
	// Cancel relinquishes the lease immediately.
	Cancel(id uint64) error
}

// Lease is a granted, renewable claim on a remote resource.
type Lease struct {
	// ID identifies the grant within its grantor.
	ID uint64
	// Expiration is the absolute time the grant lapses.
	Expiration time.Time
	// Grantor renews or cancels the grant; nil for detached leases
	// (e.g. deserialized snapshots).
	Grantor Grantor
	// st serializes Renew against Cancel so a renewal in flight when the
	// holder cancels cannot resurrect the grant (and vice versa: a
	// renewal arriving after Cancel is refused locally with ErrCanceled,
	// never reaching the grantor). Copies of the handle share it; it is
	// nil on hand-built detached leases, which keep the historical
	// unsynchronized behavior.
	st *leaseState
}

// leaseState is the shared synchronization cell behind copies of one
// lease handle.
type leaseState struct {
	mu       sync.Mutex
	canceled bool
}

// Expired reports whether the lease has lapsed at the given instant.
func (l *Lease) Expired(now time.Time) bool { return !now.Before(l.Expiration) }

// Remaining returns the time left before expiry (negative if lapsed).
func (l *Lease) Remaining(now time.Time) time.Duration { return l.Expiration.Sub(now) }

// Renew asks the grantor for an extension and updates Expiration. On a
// lease whose Cancel has run it returns ErrCanceled without contacting
// the grantor.
//
//lint:blockok st.mu is per-handle: only copies of this one lease handle contend, and serializing renew against cancel across the grantor round-trip is the documented resurrection-prevention contract
func (l *Lease) Renew(requested time.Duration) error {
	if l.Grantor == nil {
		return errors.New("lease: no grantor attached")
	}
	if l.st != nil {
		l.st.mu.Lock()
		defer l.st.mu.Unlock()
		if l.st.canceled {
			return ErrCanceled
		}
	}
	exp, err := l.Grantor.Renew(l.ID, requested)
	if err != nil {
		return err
	}
	l.Expiration = exp
	return nil
}

// Cancel relinquishes the lease. It waits out any in-flight renewal of
// the same handle, then revokes the grant, so the post-condition is
// unconditional: after Cancel returns, the grant is gone.
//
//lint:blockok st.mu is per-handle: only copies of this one lease handle contend, and serializing cancel against renew across the grantor round-trip is the documented resurrection-prevention contract
func (l *Lease) Cancel() error {
	if l.Grantor == nil {
		return errors.New("lease: no grantor attached")
	}
	if l.st != nil {
		l.st.mu.Lock()
		defer l.st.mu.Unlock()
		if l.st.canceled {
			return ErrCanceled
		}
		l.st.canceled = true
	}
	return l.Grantor.Cancel(l.ID)
}

// Policy bounds the durations a Table will grant.
type Policy struct {
	// Max caps any single grant or renewal. Zero means DefaultMax.
	Max time.Duration
	// Min floors grants so pathological zero-length requests still get a
	// usable lease. Zero means DefaultMin.
	Min time.Duration
}

// Defaults for Policy fields left zero.
const (
	DefaultMax = 5 * time.Minute
	DefaultMin = 100 * time.Millisecond
)

func (p Policy) clamp(requested time.Duration) time.Duration {
	max := p.Max
	if max <= 0 {
		max = DefaultMax
	}
	min := p.Min
	if min <= 0 {
		min = DefaultMin
	}
	if requested > max {
		requested = max
	}
	if requested < min {
		requested = min
	}
	return requested
}

// Table is the landlord-side grant ledger. It is passive: expiry is
// detected by Sweep (call it lazily before reads and/or periodically from a
// Janitor). All methods are safe for concurrent use.
type Table struct {
	clock  clockwork.Clock
	policy Policy

	mu     sync.Mutex
	nextID uint64
	grants map[uint64]time.Time // id -> expiration
	// minExp is a lower bound on the earliest live expiration; Sweep
	// returns immediately while now precedes it, so hot read paths that
	// sweep defensively cost O(1) instead of a full scan. The bound may
	// be stale-low after cancels (conservative, never misses expiry).
	minExp    time.Time
	hasMinExp bool

	onExpire func(id uint64)
}

// NewTable creates a grant ledger using the clock and policy.
func NewTable(clock clockwork.Clock, policy Policy) *Table {
	return &Table{clock: clock, policy: policy, grants: make(map[uint64]time.Time)}
}

// OnExpire installs a callback invoked (synchronously from Sweep) with each
// expired grant id. Must be set before concurrent use.
func (t *Table) OnExpire(fn func(id uint64)) { t.onExpire = fn }

// Grant issues a new lease for the clamped requested duration.
func (t *Table) Grant(requested time.Duration) Lease {
	d := t.policy.clamp(requested)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	exp := t.clock.Now().Add(d)
	t.grants[id] = exp
	if !t.hasMinExp || exp.Before(t.minExp) {
		t.minExp, t.hasMinExp = exp, true
	}
	t.mu.Unlock()
	return Lease{ID: id, Expiration: exp, Grantor: t, st: &leaseState{}}
}

// Renew implements Grantor.
func (t *Table) Renew(id uint64, requested time.Duration) (time.Time, error) {
	d := t.policy.clamp(requested)
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	exp, ok := t.grants[id]
	if !ok || !now.Before(exp) {
		if ok {
			delete(t.grants, id)
		}
		return time.Time{}, fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	newExp := now.Add(d)
	t.grants[id] = newExp
	return newExp, nil
}

// Cancel implements Grantor.
func (t *Table) Cancel(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.grants[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	delete(t.grants, id)
	return nil
}

// Expiration returns the grant's current deadline and whether the grant
// exists and has not lapsed. Durability checkpoints use it to record the
// remaining lifetime of each lease, which recovery rebases onto the
// post-restart clock.
func (t *Table) Expiration(id uint64) (time.Time, bool) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	exp, ok := t.grants[id]
	if !ok || !now.Before(exp) {
		return time.Time{}, false
	}
	return exp, true
}

// Valid reports whether the grant exists and has not lapsed.
func (t *Table) Valid(id uint64) bool {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	exp, ok := t.grants[id]
	return ok && now.Before(exp)
}

// Len reports the number of tracked grants, expired or not.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.grants)
}

// Sweep removes lapsed grants, invoking the OnExpire callback for each, and
// returns the expired ids. While the earliest possible expiration lies in
// the future, Sweep is O(1).
func (t *Table) Sweep() []uint64 {
	now := t.clock.Now()
	t.mu.Lock()
	if t.hasMinExp && now.Before(t.minExp) {
		t.mu.Unlock()
		return nil
	}
	var expired []uint64
	var newMin time.Time
	hasNewMin := false
	for id, exp := range t.grants {
		if !now.Before(exp) {
			expired = append(expired, id)
			delete(t.grants, id)
			continue
		}
		if !hasNewMin || exp.Before(newMin) {
			newMin, hasNewMin = exp, true
		}
	}
	t.minExp, t.hasMinExp = newMin, hasNewMin
	cb := t.onExpire
	t.mu.Unlock()
	if cb != nil {
		for _, id := range expired {
			cb(id)
		}
	}
	return expired
}

// NextExpiry returns the earliest expiration among live grants, and whether
// any grant exists. Janitors use it to schedule the next sweep.
func (t *Table) NextExpiry() (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min time.Time
	found := false
	for _, exp := range t.grants {
		if !found || exp.Before(min) {
			min = exp
			found = true
		}
	}
	return min, found
}
