package lease

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/resilience"
)

func TestFencedAcquireSingleHolder(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	tbl := NewFencedTable(fc, Policy{Max: 10 * time.Second})

	a, err := tbl.Acquire("coord", "A", 10*time.Second)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if a.Token != 1 {
		t.Fatalf("first token = %d, want 1", a.Token)
	}
	if _, err := tbl.Acquire("coord", "B", 10*time.Second); !errors.Is(err, ErrHeld) {
		t.Fatalf("second acquire while held = %v, want ErrHeld", err)
	}
	holder, tok, ok := tbl.Holder("coord")
	if !ok || holder != "A" || tok != 1 {
		t.Fatalf("Holder = %q/%d/%v, want A/1/true", holder, tok, ok)
	}

	// Distinct names are independent resources.
	if _, err := tbl.Acquire("other", "B", 10*time.Second); err != nil {
		t.Fatalf("acquire of distinct name: %v", err)
	}
}

func TestFencedTokensIncreaseAcrossHandovers(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	tbl := NewFencedTable(fc, Policy{Max: 10 * time.Second})

	a, _ := tbl.Acquire("coord", "A", 10*time.Second)
	fc.Advance(11 * time.Second) // A lapses
	b, err := tbl.Acquire("coord", "B", 10*time.Second)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if b.Token <= a.Token {
		t.Fatalf("successor token %d not greater than predecessor %d", b.Token, a.Token)
	}

	// Orderly abdication also frees the name, and the next token still
	// dominates.
	if err := b.Lease.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	c, err := tbl.Acquire("coord", "C", 10*time.Second)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	if c.Token <= b.Token {
		t.Fatalf("token after cancel %d not greater than %d", c.Token, b.Token)
	}
}

func TestFencedDeposedRenewalFailsCleanly(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	tbl := NewFencedTable(fc, Policy{Max: 10 * time.Second})

	a, _ := tbl.Acquire("coord", "A", 10*time.Second)
	fc.Advance(11 * time.Second)
	b, _ := tbl.Acquire("coord", "B", 10*time.Second)

	// The deposed holder's renewal must not extend (or displace) the
	// successor's grant.
	if err := a.Lease.Renew(10 * time.Second); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("deposed renewal = %v, want ErrUnknownLease", err)
	}
	holder, tok, ok := tbl.Holder("coord")
	if !ok || holder != "B" || tok != b.Token {
		t.Fatalf("after deposed renewal Holder = %q/%d/%v, want B/%d/true", holder, tok, ok, b.Token)
	}
	// A live holder's renewal works.
	if err := b.Lease.Renew(10 * time.Second); err != nil {
		t.Fatalf("live renewal: %v", err)
	}
}

// gateGrantor interposes on a FencedGrant's lease so the test can
// simulate a holder partitioned from the grantor: while closed, renewals
// fail without reaching the table.
type gateGrantor struct {
	inner  Grantor
	closed atomic.Bool
}

var errGateClosed = errors.New("gate: grantor unreachable")

func (g *gateGrantor) Renew(id uint64, d time.Duration) (time.Time, error) {
	if g.closed.Load() {
		return time.Time{}, errGateClosed
	}
	return g.inner.Renew(id, d)
}

func (g *gateGrantor) Cancel(id uint64) error { return g.inner.Cancel(id) }

// TestFencedRenewalRacesCoordinatorHandover is the coordination-plane
// regression: a coordination-lease renewal (driven by a RenewalManager
// with WithFailoverResolver) races a coordinator handover. The renewal
// must either land on the current fenced grantor state — re-acquiring
// through the resolver once the old grant lapsed — or fail cleanly; in no
// interleaving may two holders end up granted at once, and tokens must
// stay strictly increasing.
func TestFencedRenewalRacesCoordinatorHandover(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewFencedTable(clock, Policy{Min: 30 * time.Millisecond, Max: 30 * time.Millisecond})

	a, err := tbl.Acquire("coord", "A", 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateGrantor{inner: a.Lease.Grantor}
	a.Lease.Grantor = gate

	var mu sync.Mutex
	var aTokens []uint64 // tokens A re-acquired through the resolver
	var aDone atomic.Bool
	m := NewRenewalManager(clock,
		WithRenewAt(0.5),
		WithRequest(30*time.Millisecond),
		WithRetryPolicy(resilience.Policy{MaxAttempts: 1, Clock: clock}),
		WithFailoverResolver(func(_ *Lease) (*Lease, bool) {
			// The holder lost contact: re-acquire from the fenced table.
			// ErrHeld means a grant on the name is still live (ours or a
			// rival's); either way we decline and the renewal fails
			// cleanly rather than double-granting.
			if aDone.Load() {
				return nil, false
			}
			g, aerr := tbl.Acquire("coord", "A", 30*time.Millisecond)
			if aerr != nil {
				return nil, false
			}
			mu.Lock()
			aTokens = append(aTokens, g.Token)
			n := len(aTokens)
			mu.Unlock()
			if n >= 3 {
				// Bound the contest so the standby is guaranteed to win a
				// later race; this grant is A's last.
				aDone.Store(true)
			}
			g.Lease.Grantor = gate // still partitioned
			return &g.Lease, true
		}))
	defer m.Stop()
	m.Manage(&a.Lease)

	// Partition A mid-term: every renewal from now on fails at the gate,
	// so each term's expiry instant becomes an open race between A's
	// resolver re-acquire and the standby's takeover attempt.
	time.Sleep(10 * time.Millisecond)
	gate.closed.Store(true)

	// B races for the handover continuously.
	deadline := time.Now().Add(5 * time.Second)
	var b FencedGrant
	for {
		if b, err = tbl.Acquire("coord", "B", 30*time.Millisecond); err == nil {
			break
		}
		if !errors.Is(err, ErrHeld) {
			t.Fatalf("standby acquire: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never won the lease after the holder lapsed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if b.Token <= a.Token {
		t.Fatalf("handover token %d does not dominate deposed holder's %d", b.Token, a.Token)
	}

	// The deposed original handle must not resurrect A's claim behind B's
	// back, even when its renewal reaches the table itself.
	if _, err := tbl.Renew(a.Lease.ID, 30*time.Millisecond); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("deposed holder's direct renewal = %v, want ErrUnknownLease (never a double grant)", err)
	}

	// Every re-acquire A landed during the contest carries a token
	// strictly below B's win — the table never interleaved two live
	// grants, and the fencing order is exactly the acquisition order.
	mu.Lock()
	defer mu.Unlock()
	seen := map[uint64]bool{a.Token: true, b.Token: true}
	for _, tk := range aTokens {
		if tk >= b.Token {
			t.Fatalf("resolver re-acquired token %d at or after B's %d; grants overlapped", tk, b.Token)
		}
		if seen[tk] {
			t.Fatalf("token %d issued twice", tk)
		}
		seen[tk] = true
	}
}
