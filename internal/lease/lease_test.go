package lease

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/resilience"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newTable(max time.Duration) (*clockwork.Fake, *Table) {
	fc := clockwork.NewFake(epoch)
	return fc, NewTable(fc, Policy{Max: max})
}

func TestGrantClampsToPolicy(t *testing.T) {
	_, tbl := newTable(time.Minute)
	l := tbl.Grant(time.Hour)
	if got := l.Expiration.Sub(epoch); got != time.Minute {
		t.Fatalf("granted %v, want 1m", got)
	}
	l2 := tbl.Grant(0)
	if got := l2.Expiration.Sub(epoch); got != DefaultMin {
		t.Fatalf("granted %v, want DefaultMin", got)
	}
	l3 := tbl.Grant(Forever)
	if got := l3.Expiration.Sub(epoch); got != time.Minute {
		t.Fatalf("Forever granted %v, want policy max", got)
	}
}

func TestDefaultPolicyMax(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	tbl := NewTable(fc, Policy{})
	l := tbl.Grant(Forever)
	if got := l.Expiration.Sub(epoch); got != DefaultMax {
		t.Fatalf("granted %v, want DefaultMax", got)
	}
}

func TestRenewExtends(t *testing.T) {
	fc, tbl := newTable(time.Minute)
	l := tbl.Grant(time.Minute)
	fc.Advance(30 * time.Second)
	if err := l.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := epoch.Add(30*time.Second + time.Minute)
	if !l.Expiration.Equal(want) {
		t.Fatalf("expiration = %v, want %v", l.Expiration, want)
	}
}

func TestRenewAfterExpiryFails(t *testing.T) {
	fc, tbl := newTable(time.Minute)
	l := tbl.Grant(time.Minute)
	fc.Advance(2 * time.Minute)
	err := l.Renew(time.Minute)
	if !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("err = %v, want ErrUnknownLease", err)
	}
	// Expired-on-renew grants are reaped immediately.
	if tbl.Len() != 0 {
		t.Fatalf("table len = %d after failed renew", tbl.Len())
	}
}

func TestCancel(t *testing.T) {
	_, tbl := newTable(time.Minute)
	l := tbl.Grant(time.Minute)
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	if tbl.Valid(l.ID) {
		t.Fatal("cancelled lease still valid")
	}
	if err := l.Cancel(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("double cancel err = %v", err)
	}
}

func TestDetachedLease(t *testing.T) {
	l := &Lease{ID: 1, Expiration: epoch.Add(time.Minute)}
	if err := l.Renew(time.Minute); err == nil {
		t.Fatal("renew on detached lease should fail")
	}
	if err := l.Cancel(); err == nil {
		t.Fatal("cancel on detached lease should fail")
	}
}

func TestExpiredAndRemaining(t *testing.T) {
	l := &Lease{Expiration: epoch.Add(time.Minute)}
	if l.Expired(epoch) {
		t.Fatal("fresh lease reported expired")
	}
	if !l.Expired(epoch.Add(time.Minute)) {
		t.Fatal("lease not expired exactly at expiration")
	}
	if got := l.Remaining(epoch.Add(30 * time.Second)); got != 30*time.Second {
		t.Fatalf("Remaining = %v", got)
	}
}

func TestSweepCallsOnExpire(t *testing.T) {
	fc, tbl := newTable(time.Minute)
	var mu sync.Mutex
	var expired []uint64
	tbl.OnExpire(func(id uint64) {
		mu.Lock()
		expired = append(expired, id)
		mu.Unlock()
	})
	l1 := tbl.Grant(time.Minute)
	tbl.Grant(time.Minute)
	fc.Advance(30 * time.Second)
	if ids := tbl.Sweep(); len(ids) != 0 {
		t.Fatalf("early sweep expired %v", ids)
	}
	// Renew one so it survives.
	if err := l1.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	fc.Advance(45 * time.Second)
	ids := tbl.Sweep()
	if len(ids) != 1 {
		t.Fatalf("sweep expired %d grants, want 1", len(ids))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(expired) != 1 || expired[0] != ids[0] {
		t.Fatalf("OnExpire got %v, sweep returned %v", expired, ids)
	}
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d, want 1", tbl.Len())
	}
}

func TestNextExpiry(t *testing.T) {
	fc, tbl := newTable(time.Hour)
	if _, ok := tbl.NextExpiry(); ok {
		t.Fatal("empty table reported expiry")
	}
	tbl.Grant(time.Hour)
	l := tbl.Grant(time.Minute)
	exp, ok := tbl.NextExpiry()
	if !ok || !exp.Equal(l.Expiration) {
		t.Fatalf("NextExpiry = %v %v, want %v", exp, ok, l.Expiration)
	}
	_ = fc
}

func TestValidUnknown(t *testing.T) {
	_, tbl := newTable(time.Minute)
	if tbl.Valid(999) {
		t.Fatal("unknown grant reported valid")
	}
}

func TestJanitorSweeps(t *testing.T) {
	fc, tbl := newTable(time.Minute)
	tbl.Grant(time.Minute)
	j := NewJanitor(fc, tbl, 10*time.Second)
	defer j.Stop()
	// Advance past expiry plus a janitor tick; poll for the sweep since
	// the janitor goroutine runs concurrently.
	deadline := time.Now().Add(2 * time.Second)
	for tbl.Len() != 0 && time.Now().Before(deadline) {
		fc.Advance(15 * time.Second)
		time.Sleep(time.Millisecond)
	}
	if tbl.Len() != 0 {
		t.Fatal("janitor never swept the expired grant")
	}
}

// Property: for any requested duration, the granted term is within policy
// bounds and the lease validates until just before expiry.
func TestPropertyGrantBounds(t *testing.T) {
	f := func(reqMillis int32) bool {
		fc := clockwork.NewFake(epoch)
		tbl := NewTable(fc, Policy{Max: time.Minute})
		req := time.Duration(reqMillis) * time.Millisecond
		l := tbl.Grant(req)
		term := l.Expiration.Sub(epoch)
		return term >= DefaultMin && term <= time.Minute && tbl.Valid(l.ID)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenewalManagerKeepsLeaseAlive(t *testing.T) {
	// Real clock with short durations: the manager must renew a 60ms
	// lease well past several terms.
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 60 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(60 * time.Millisecond)
	m := NewRenewalManager(clock)
	defer m.Stop()
	m.Manage(&l)
	time.Sleep(300 * time.Millisecond)
	if !tbl.Valid(l.ID) {
		t.Fatal("managed lease expired")
	}
	if m.Count() != 1 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestRenewalManagerReportsFailure(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 50 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(50 * time.Millisecond)
	failed := make(chan error, 1)
	m := NewRenewalManager(clock, WithFailureHandler(func(_ *Lease, err error) {
		select {
		case failed <- err:
		default:
		}
	}))
	defer m.Stop()
	// Revoke grantor-side, behind the handle's back (as a crashed or
	// rebooted grantor would); the next renewal must fail organically.
	if err := tbl.Cancel(l.ID); err != nil {
		t.Fatal(err)
	}
	m.Manage(&l)
	select {
	case err := <-failed:
		if !errors.Is(err, ErrUnknownLease) {
			t.Fatalf("failure err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure handler never called")
	}
	if m.Count() != 0 {
		t.Fatalf("failed lease still managed, Count = %d", m.Count())
	}
}

func TestRenewalManagerRelease(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 40 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(40 * time.Millisecond)
	m := NewRenewalManager(clock)
	defer m.Stop()
	m.Manage(&l)
	m.Release(&l)
	time.Sleep(100 * time.Millisecond)
	tbl.Sweep()
	if tbl.Valid(l.ID) {
		t.Fatal("released lease was still renewed")
	}
}

func TestRenewalManagerStopIdempotent(t *testing.T) {
	m := NewRenewalManager(clockwork.Real())
	m.Stop()
	m.Stop() // must not panic or hang
}

func TestRenewalOptionsClamp(t *testing.T) {
	m := NewRenewalManager(clockwork.Real(), WithRenewAt(0.01), WithRequest(time.Second))
	defer m.Stop()
	if m.renewAt != 0.1 {
		t.Fatalf("renewAt = %v, want clamped 0.1", m.renewAt)
	}
	m2 := NewRenewalManager(clockwork.Real(), WithRenewAt(0.99))
	defer m2.Stop()
	if m2.renewAt != 0.9 {
		t.Fatalf("renewAt = %v, want clamped 0.9", m2.renewAt)
	}
}

func TestSweepFastPathStillCatchesExpiry(t *testing.T) {
	fc, tbl := newTable(time.Minute)
	l1 := tbl.Grant(time.Minute)
	// Fast path: nothing can be expired yet, repeated sweeps are no-ops.
	for i := 0; i < 3; i++ {
		if ids := tbl.Sweep(); ids != nil {
			t.Fatalf("early sweep = %v", ids)
		}
	}
	// Renew pushes the real expiry out; the stale lower bound must not
	// cause missed expirations once crossed.
	fc.Advance(45 * time.Second)
	if err := l1.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	fc.Advance(50 * time.Second) // crosses the stale bound, not the real expiry
	if ids := tbl.Sweep(); len(ids) != 0 {
		t.Fatalf("renewed grant swept: %v", ids)
	}
	fc.Advance(time.Minute)
	if ids := tbl.Sweep(); len(ids) != 1 {
		t.Fatalf("expired grant not swept: %v", ids)
	}
	// Empty table sweeps remain no-ops.
	if ids := tbl.Sweep(); len(ids) != 0 {
		t.Fatal("phantom expiry")
	}
}

func BenchmarkSweepFastPath(b *testing.B) {
	fc := clockwork.NewFake(epoch)
	tbl := NewTable(fc, Policy{Max: time.Hour})
	for i := 0; i < 4096; i++ {
		tbl.Grant(time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Sweep()
	}
}

// gatedGrantor blocks Renew until released, so tests can hold a renewal
// in flight while racing a Cancel against it.
type gatedGrantor struct {
	inner   Grantor
	entered chan struct{}
	gate    chan struct{}
	renews  atomic.Int32
}

func (g *gatedGrantor) Renew(id uint64, d time.Duration) (time.Time, error) {
	g.renews.Add(1)
	close(g.entered)
	<-g.gate
	return g.inner.Renew(id, d)
}

func (g *gatedGrantor) Cancel(id uint64) error { return g.inner.Cancel(id) }

func TestCancelWaitsOutInFlightRenewal(t *testing.T) {
	clock := clockwork.NewFake(time.Unix(0, 0))
	tbl := NewTable(clock, Policy{Max: time.Minute})
	l := tbl.Grant(time.Minute)
	g := &gatedGrantor{inner: tbl, entered: make(chan struct{}), gate: make(chan struct{})}
	l.Grantor = g

	renewDone := make(chan error, 1)
	go func() { renewDone <- l.Renew(time.Minute) }()
	<-g.entered // renewal is in flight at the grantor

	cancelDone := make(chan error, 1)
	go func() { cancelDone <- l.Cancel() }()
	// Cancel must serialize behind the in-flight renewal, not interleave.
	select {
	case <-cancelDone:
		t.Fatal("Cancel completed while a renewal was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(g.gate)
	if err := <-renewDone; err != nil {
		t.Fatalf("in-flight renew: %v", err)
	}
	if err := <-cancelDone; err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// The decisive postcondition: whatever the interleaving, the grant
	// is gone — the renewal did not resurrect it.
	if tbl.Valid(l.ID) {
		t.Fatal("renewal racing cancel resurrected the lease")
	}
	if tbl.Len() != 0 {
		t.Fatalf("table still holds %d grants", tbl.Len())
	}
}

func TestRenewAfterCancelRefusedLocally(t *testing.T) {
	clock := clockwork.NewFake(time.Unix(0, 0))
	tbl := NewTable(clock, Policy{Max: time.Minute})
	l := tbl.Grant(time.Minute)
	g := &gatedGrantor{inner: tbl, entered: make(chan struct{}), gate: make(chan struct{})}
	close(g.gate) // no blocking needed here
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	l.Grantor = g
	if err := l.Renew(time.Minute); !errors.Is(err, ErrCanceled) {
		t.Fatalf("renew after cancel = %v, want ErrCanceled", err)
	}
	// The refusal is local: the grantor never saw the renewal.
	if n := g.renews.Load(); n != 0 {
		t.Fatalf("grantor saw %d renewals after cancel", n)
	}
	if err := l.Cancel(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("second cancel = %v, want ErrCanceled", err)
	}
}

func TestRenewalManagerSilentOnDeliberateCancel(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 40 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(40 * time.Millisecond)
	var failures atomic.Int32
	m := NewRenewalManager(clock, WithFailureHandler(func(*Lease, error) {
		failures.Add(1)
	}))
	defer m.Stop()
	m.Manage(&l)
	// Cancel through the handle: a deliberate departure racing the
	// renewal loop. The manager must drop the lease without reporting.
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled lease never dropped from management")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("deliberate cancel reported as %d failure(s)", n)
	}
	if tbl.Valid(l.ID) {
		t.Fatal("canceled lease still valid")
	}
}

// flakyGrantor fails its first n renewals with a transient error.
type flakyGrantor struct {
	inner     Grantor
	mu        sync.Mutex
	failsLeft int
	attempts  int
}

var errFlaky = errors.New("transient grantor outage")

func (g *flakyGrantor) Renew(id uint64, d time.Duration) (time.Time, error) {
	g.mu.Lock()
	g.attempts++
	fail := g.failsLeft > 0
	if fail {
		g.failsLeft--
	}
	g.mu.Unlock()
	if fail {
		return time.Time{}, errFlaky
	}
	return g.inner.Renew(id, d)
}

func (g *flakyGrantor) Cancel(id uint64) error { return g.inner.Cancel(id) }

func TestRenewalManagerRetryPolicyRidesOutTransientFailures(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 60 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(60 * time.Millisecond)
	g := &flakyGrantor{inner: tbl, failsLeft: 2}
	l.Grantor = g
	var failures atomic.Int32
	m := NewRenewalManager(clock,
		WithRetryPolicy(resilience.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond}),
		WithFailureHandler(func(*Lease, error) { failures.Add(1) }))
	defer m.Stop()
	m.Manage(&l)
	time.Sleep(300 * time.Millisecond)
	if !tbl.Valid(l.ID) {
		t.Fatal("lease lapsed despite retry policy covering the transient failures")
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("transient failures surfaced %d times", n)
	}
	g.mu.Lock()
	attempts := g.attempts
	g.mu.Unlock()
	if attempts < 3 {
		t.Fatalf("grantor saw only %d attempts", attempts)
	}
}
