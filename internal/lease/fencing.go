package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// ErrHeld is returned by FencedTable.Acquire while another holder's grant
// on the same name is still live. The caller is a standby: it retries
// after a lease term and wins only once the holder stops renewing.
var ErrHeld = errors.New("lease: resource is held")

// FencedGrant is one acquisition of a single-holder resource: the
// renewable lease that keeps the claim alive plus the fencing token that
// orders this holder against every holder before and after it.
type FencedGrant struct {
	// Token is strictly greater than the token of every earlier grant on
	// the same name — downstream state machines compare tokens, never
	// wall-clocks, to reject a deposed holder's late decisions.
	Token uint64
	// Holder echoes the name the claimant passed to Acquire.
	Holder string
	// Lease keeps the claim alive; letting it lapse deposes the holder.
	Lease Lease
}

// fencedRecord is the ledger entry for one named resource.
type fencedRecord struct {
	holder  string
	token   uint64
	leaseID uint64
	exp     time.Time
}

// FencedTable is a landlord for single-holder resources: at most one live
// grant per name, each grant carrying a fencing token that strictly
// increases across successive holders of that name. It is the
// coordination-lease primitive — a coordinator replica that wins Acquire
// is the holder until it stops renewing, and its token fences every
// decision it publishes.
//
// Unlike Table, grants are keyed by resource name, so a renewal by a
// deposed holder (its record replaced by a later Acquire) fails with
// ErrUnknownLease instead of resurrecting the old claim.
type FencedTable struct {
	clock  clockwork.Clock
	policy Policy

	mu      sync.Mutex
	nextID  uint64
	nextTok uint64
	records map[string]*fencedRecord
}

// NewFencedTable creates a single-holder grant ledger using the clock and
// policy.
func NewFencedTable(clock clockwork.Clock, policy Policy) *FencedTable {
	return &FencedTable{clock: clock, policy: policy, records: make(map[string]*fencedRecord)}
}

// Acquire claims the named resource for holder. While an earlier grant is
// live it fails with ErrHeld; once the previous holder's lease has lapsed
// (or was cancelled) the claim succeeds with a strictly greater fencing
// token. Re-acquiring a name the same holder already owns also mints a
// fresh token — the old handle is deposed, exactly as if another replica
// had won.
func (t *FencedTable) Acquire(name, holder string, requested time.Duration) (FencedGrant, error) {
	d := t.policy.clamp(requested)
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.records[name]; ok && now.Before(rec.exp) {
		return FencedGrant{}, fmt.Errorf("%w: %q held by %q (token %d)", ErrHeld, name, rec.holder, rec.token)
	}
	t.nextID++
	t.nextTok++
	rec := &fencedRecord{holder: holder, token: t.nextTok, leaseID: t.nextID, exp: now.Add(d)}
	t.records[name] = rec
	return FencedGrant{
		Token:  rec.token,
		Holder: holder,
		Lease:  Lease{ID: rec.leaseID, Expiration: rec.exp, Grantor: t, st: &leaseState{}},
	}, nil
}

// Holder reports the live holder and token of the named resource, if any.
func (t *FencedTable) Holder(name string) (holder string, token uint64, ok bool) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, exists := t.records[name]
	if !exists || !now.Before(rec.exp) {
		return "", 0, false
	}
	return rec.holder, rec.token, true
}

// Token returns the highest fencing token ever issued (across all names):
// any token a future Acquire mints will exceed it.
func (t *FencedTable) Token() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextTok
}

// findLocked resolves a lease id to its record, or nil if the id no
// longer names the live grant (deposed, expired, or cancelled).
func (t *FencedTable) findLocked(id uint64) *fencedRecord {
	for _, rec := range t.records {
		if rec.leaseID == id {
			return rec
		}
	}
	return nil
}

// Renew implements Grantor: it extends the grant only while the id still
// names the resource's current record — a deposed holder's renewal fails
// with ErrUnknownLease and can never displace its successor.
func (t *FencedTable) Renew(id uint64, requested time.Duration) (time.Time, error) {
	d := t.policy.clamp(requested)
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.findLocked(id)
	if rec == nil || !now.Before(rec.exp) {
		return time.Time{}, fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	rec.exp = now.Add(d)
	return rec.exp, nil
}

// Cancel implements Grantor: an orderly abdication. The resource becomes
// immediately acquirable; the fencing token sequence keeps increasing, so
// nothing the departing holder published can outrank its successor.
func (t *FencedTable) Cancel(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.findLocked(id)
	if rec == nil {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	for name, r := range t.records {
		if r == rec {
			delete(t.records, name)
			break
		}
	}
	return nil
}

var _ Grantor = (*FencedTable)(nil)
