package lease

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/resilience"
)

// TestRenewalManagerFailsOverToPromotedGrantor is the failover
// regression: when a grantor dies and a promoted backup re-grants the
// lease, the manager must switch to the replacement — within the same
// retry attempt, without burning the budget reserved for transient
// faults — and keep the replacement alive from then on.
func TestRenewalManagerFailsOverToPromotedGrantor(t *testing.T) {
	clock := clockwork.Real()
	oldTbl := NewTable(clock, Policy{Max: 60 * time.Millisecond, Min: time.Millisecond})
	newTbl := NewTable(clock, Policy{Max: 60 * time.Millisecond, Min: time.Millisecond})
	l := oldTbl.Grant(60 * time.Millisecond)

	var resolved atomic.Int32
	var promoted atomic.Pointer[Lease]
	failed := make(chan error, 1)
	m := NewRenewalManager(clock,
		// MaxAttempts 1: any failed renewal that is not cured by the
		// resolver drops the lease immediately, so the test proves the
		// failover path consumes no retry budget at all.
		WithRetryPolicy(resilience.Policy{MaxAttempts: 1, Clock: clock}),
		WithFailoverResolver(func(_ *Lease) (*Lease, bool) {
			resolved.Add(1)
			repl := newTbl.Grant(60 * time.Millisecond)
			promoted.Store(&repl)
			return &repl, true
		}),
		WithFailureHandler(func(_ *Lease, err error) {
			select {
			case failed <- err:
			default:
			}
		}),
	)
	defer m.Stop()

	// The grantor "crashes": its table forgets the grant, as a failed
	// primary would. The next renewal fails organically and the resolver
	// must hand over the promoted backup's re-grant.
	if err := oldTbl.Cancel(l.ID); err != nil {
		t.Fatal(err)
	}
	m.Manage(&l)

	deadline := time.Now().Add(2 * time.Second)
	for resolved.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("resolver never consulted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-failed:
		t.Fatalf("failover reported as failure: %v", err)
	default:
	}

	// The replacement must now be the managed lease, kept alive well past
	// several of its terms.
	time.Sleep(300 * time.Millisecond)
	repl := promoted.Load()
	if repl == nil {
		t.Fatal("no replacement lease recorded")
	}
	if !newTbl.Valid(repl.ID) {
		t.Fatal("replacement lease expired under management")
	}
	if m.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (replacement only)", m.Count())
	}
}

// TestRenewalManagerResolverDecline keeps the original failure semantics
// when the resolver has no replacement to offer.
func TestRenewalManagerResolverDecline(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 50 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(50 * time.Millisecond)
	failed := make(chan error, 1)
	m := NewRenewalManager(clock,
		WithFailoverResolver(func(_ *Lease) (*Lease, bool) { return nil, false }),
		WithFailureHandler(func(_ *Lease, err error) {
			select {
			case failed <- err:
			default:
			}
		}),
	)
	defer m.Stop()
	if err := tbl.Cancel(l.ID); err != nil {
		t.Fatal(err)
	}
	m.Manage(&l)
	select {
	case err := <-failed:
		if !errors.Is(err, ErrUnknownLease) {
			t.Fatalf("failure err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("declined failover never reported as failure")
	}
	if m.Count() != 0 {
		t.Fatalf("Count = %d, want 0", m.Count())
	}
}

// TestRenewalManagerResolverSkipsCanceled proves a deliberate local
// cancellation is never "failed over" — the holder chose to leave.
func TestRenewalManagerResolverSkipsCanceled(t *testing.T) {
	clock := clockwork.Real()
	tbl := NewTable(clock, Policy{Max: 50 * time.Millisecond, Min: time.Millisecond})
	l := tbl.Grant(50 * time.Millisecond)
	var resolved atomic.Int32
	m := NewRenewalManager(clock,
		WithFailoverResolver(func(_ *Lease) (*Lease, bool) {
			resolved.Add(1)
			return nil, false
		}),
	)
	defer m.Stop()
	// Cancel through the handle: Renew now fails locally with ErrCanceled.
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	m.Manage(&l)
	time.Sleep(200 * time.Millisecond)
	if n := resolved.Load(); n != 0 {
		t.Fatalf("resolver consulted %d time(s) for a canceled lease", n)
	}
}
