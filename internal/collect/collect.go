// Package collect implements the measure→communicate leg of the paper's
// MC² approach (§V-A) for radio-attached field sensors: a FieldNode
// samples its device, batches readings into the compact wire format and
// transmits them over the lossy 802.15.4 link; a Collector receives
// frames, decodes batches, and re-exposes each field sensor as a standard
// SensorDataAccessor — so even sensors too weak to host a service
// participate in the federation through their collection point. This is
// the integration path for the "legacy sensors and their protocols"
// the paper wants wrapped "without any changes to underlying codes"
// (§III-B).
package collect

import (
	"errors"
	"fmt"
	"sync"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/spot"
	"sensorcer/internal/wire"
)

// MaxBatch is the largest batch guaranteed to fit one radio frame: a
// compact reading costs at most ~12 B (worst-case varints), so 8 readings
// stay under spot.MaxPayload with the batch header.
const MaxBatch = 8

// FieldNode samples one quantity on a device and ships batches to a
// collector over the device's radio link.
type FieldNode struct {
	device *spot.Device
	kind   string
	dest   uint16
	batch  int

	mu      sync.Mutex
	pending []wire.Reading
	seq     uint8
	// retries bounds retransmissions of a lost frame.
	retries int
}

// NewFieldNode creates a node batching up to batch readings (clamped to
// MaxBatch) toward the collector's radio address.
func NewFieldNode(device *spot.Device, kind string, dest uint16, batch int) *FieldNode {
	if batch <= 0 || batch > MaxBatch {
		batch = MaxBatch
	}
	return &FieldNode{device: device, kind: kind, dest: dest, batch: batch, retries: 2}
}

// Sample takes one measurement and queues it; a full batch is transmitted
// immediately.
func (n *FieldNode) Sample() error {
	v, at, err := n.device.Sample(n.kind)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.pending = append(n.pending, wire.Reading{
		SensorID:  n.device.Addr(),
		Timestamp: at,
		Value:     v,
	})
	full := len(n.pending) >= n.batch
	n.mu.Unlock()
	if full {
		return n.Flush()
	}
	return nil
}

// Flush transmits any pending readings, retrying lost frames up to the
// retry budget. Pending readings are dropped only after all retries fail
// (fresh data will follow; the battery is the scarce resource).
func (n *FieldNode) Flush() error {
	n.mu.Lock()
	if len(n.pending) == 0 {
		n.mu.Unlock()
		return nil
	}
	batch := n.pending
	n.pending = nil
	n.seq++
	seq := n.seq
	n.mu.Unlock()

	payload, err := wire.EncodeCompact(batch)
	if err != nil {
		return fmt.Errorf("collect: encoding batch: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= n.retries; attempt++ {
		lastErr = n.device.Transmit(n.dest, seq, payload)
		if lastErr == nil {
			return nil
		}
		if !errors.Is(lastErr, spot.ErrLinkLost) {
			return lastErr // battery/off errors don't retry
		}
	}
	return fmt.Errorf("collect: batch lost after %d attempts: %w", n.retries+1, lastErr)
}

// Pending reports queued-but-unsent readings.
func (n *FieldNode) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Collector receives batches from many field nodes and exposes each as a
// SensorDataAccessor.
type Collector struct {
	clock clockwork.Clock

	mu       sync.Mutex
	stores   map[uint16]*sensor.RingStore
	meta     map[uint16]probe.Info
	frames   uint64
	readings uint64
	unknown  uint64
}

// NewCollector creates an empty collector; attach Receive to each link:
//
//	link.SetReceiver(collector.Receive)
func NewCollector(clock clockwork.Clock) *Collector {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &Collector{
		clock:  clock,
		stores: make(map[uint16]*sensor.RingStore),
		meta:   make(map[uint16]probe.Info),
	}
}

// Track registers a field sensor's metadata under its radio address;
// frames from untracked addresses are counted and dropped.
func (c *Collector) Track(addr uint16, name, kind, unit string) {
	c.mu.Lock()
	c.stores[addr] = sensor.NewRingStore(256)
	c.meta[addr] = probe.Info{Name: name, Technology: "radio-collected", Kind: kind, Unit: unit}
	c.mu.Unlock()
}

// Receive ingests one radio frame (spot.Link receiver signature).
func (c *Collector) Receive(f spot.Frame) {
	batch, err := wire.DecodeCompact(f.Payload)
	if err != nil {
		return // corrupt or foreign frame
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames++
	for _, r := range batch {
		store, ok := c.stores[r.SensorID]
		if !ok {
			c.unknown++
			continue
		}
		info := c.meta[r.SensorID]
		store.Add(probe.Reading{
			Sensor:    info.Name,
			Kind:      info.Kind,
			Unit:      info.Unit,
			Value:     r.Value,
			Timestamp: r.Timestamp,
		})
		c.readings++
	}
}

// Stats reports received frames, stored readings and readings from
// untracked addresses.
func (c *Collector) Stats() (frames, readings, unknown uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames, c.readings, c.unknown
}

// ErrNoData is returned when a tracked sensor has not reported yet.
var ErrNoData = errors.New("collect: no readings received yet")

// Accessor returns the DataAccessor view of one tracked field sensor,
// suitable for publishing in a lookup service or composing into a CSP.
func (c *Collector) Accessor(addr uint16) (sensor.DataAccessor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	store, ok := c.stores[addr]
	if !ok {
		return nil, fmt.Errorf("collect: address %#x not tracked", addr)
	}
	return &collectedAccessor{info: c.meta[addr], store: store}, nil
}

// collectedAccessor serves collected readings through the standard
// interface.
type collectedAccessor struct {
	info  probe.Info
	store *sensor.RingStore
}

// SensorName implements sensor.DataAccessor.
func (a *collectedAccessor) SensorName() string { return a.info.Name }

// GetValue implements sensor.DataAccessor.
func (a *collectedAccessor) GetValue() (probe.Reading, error) {
	r, ok := a.store.Latest()
	if !ok {
		return probe.Reading{}, fmt.Errorf("%w: %s", ErrNoData, a.info.Name)
	}
	return r, nil
}

// GetReadings implements sensor.DataAccessor.
func (a *collectedAccessor) GetReadings(n int) []probe.Reading {
	return a.store.LastN(n)
}

// Describe implements sensor.DataAccessor.
func (a *collectedAccessor) Describe() probe.Info { return a.info }

var _ sensor.DataAccessor = (*collectedAccessor)(nil)
