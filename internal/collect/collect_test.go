package collect

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/spot"
)

var epoch = time.Date(2009, 10, 6, 12, 0, 0, 0, time.UTC)

// rig: one device on a perfect link into a collector.
func newRig(t *testing.T, lossRate float64) (*clockwork.Fake, *spot.Device, *FieldNode, *Collector) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	link := spot.NewLink(lossRate, 0, 7)
	dev := spot.NewDevice(spot.Config{Name: "Field-1", Addr: 0x2001, Clock: fc, Link: link})
	dev.Attach(spot.ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	collector := NewCollector(fc)
	collector.Track(0x2001, "Field-1", "temperature", "celsius")
	link.SetReceiver(collector.Receive)
	node := NewFieldNode(dev, "temperature", 0x1, 4)
	return fc, dev, node, collector
}

func TestBatchDeliveredAtBatchSize(t *testing.T) {
	fc, _, node, collector := newRig(t, 0)
	for i := 0; i < 3; i++ {
		if err := node.Sample(); err != nil {
			t.Fatal(err)
		}
		fc.Advance(time.Second)
	}
	if f, r, _ := collector.Stats(); f != 0 || r != 0 {
		t.Fatalf("early delivery: frames=%d readings=%d", f, r)
	}
	if node.Pending() != 3 {
		t.Fatalf("Pending = %d", node.Pending())
	}
	if err := node.Sample(); err != nil { // 4th fills the batch
		t.Fatal(err)
	}
	frames, readings, unknown := collector.Stats()
	if frames != 1 || readings != 4 || unknown != 0 {
		t.Fatalf("stats = %d/%d/%d", frames, readings, unknown)
	}
	if node.Pending() != 0 {
		t.Fatal("pending not cleared after flush")
	}
}

func TestAccessorServesCollectedReadings(t *testing.T) {
	fc, _, node, collector := newRig(t, 0)
	acc, err := collector.Accessor(0x2001)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.GetValue(); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	for i := 0; i < 4; i++ {
		node.Sample()
		fc.Advance(time.Second)
	}
	r, err := acc.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 21.5 || r.Sensor != "Field-1" || r.Unit != "celsius" {
		t.Fatalf("reading = %+v", r)
	}
	if got := acc.GetReadings(0); len(got) != 4 {
		t.Fatalf("GetReadings = %d", len(got))
	}
	// Timestamps survive the wire (ms resolution).
	first := acc.GetReadings(0)[0]
	if !first.Timestamp.Equal(epoch) {
		t.Fatalf("timestamp = %v", first.Timestamp)
	}
	info := acc.Describe()
	if info.Technology != "radio-collected" {
		t.Fatalf("Describe = %+v", info)
	}
	if acc.SensorName() != "Field-1" {
		t.Fatal("name wrong")
	}
}

func TestFlushPartialBatch(t *testing.T) {
	_, _, node, collector := newRig(t, 0)
	node.Sample()
	node.Sample()
	if err := node.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, readings, _ := statsOf(collector); readings != 2 {
		t.Fatalf("readings = %d", readings)
	}
	// Flushing empty is a no-op.
	if err := node.Flush(); err != nil {
		t.Fatal(err)
	}
}

func statsOf(c *Collector) (uint64, uint64, uint64) { return c.Stats() }

func TestRetransmitOnLoss(t *testing.T) {
	// 50% loss: with 2 retries per batch nearly all batches arrive.
	fc, _, node, collector := newRig(t, 0.5)
	delivered := 0
	for i := 0; i < 200; i++ {
		if err := node.Sample(); err != nil && !strings.Contains(err.Error(), "batch lost") {
			t.Fatal(err)
		}
		fc.Advance(time.Second)
	}
	node.Flush()
	_, readings, _ := collector.Stats()
	delivered = int(readings)
	if delivered < 150 {
		t.Fatalf("only %d/200 readings delivered despite retries", delivered)
	}
}

func TestUntrackedAddressCounted(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	link := spot.NewLink(0, 0, 1)
	dev := spot.NewDevice(spot.Config{Name: "ghost", Addr: 0x9999, Clock: fc, Link: link})
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	collector := NewCollector(fc)
	link.SetReceiver(collector.Receive)
	node := NewFieldNode(dev, "temperature", 0x1, 1)
	if err := node.Sample(); err != nil {
		t.Fatal(err)
	}
	if _, _, unknown := collector.Stats(); unknown != 1 {
		t.Fatalf("unknown = %d", unknown)
	}
	if _, err := collector.Accessor(0x9999); err == nil {
		t.Fatal("untracked accessor granted")
	}
}

func TestCorruptFrameIgnored(t *testing.T) {
	collector := NewCollector(clockwork.NewFake(epoch))
	collector.Receive(spot.Frame{Payload: []byte("garbage")})
	if f, _, _ := collector.Stats(); f != 0 {
		t.Fatal("corrupt frame counted")
	}
}

func TestBatteryDeathStopsSampling(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	link := spot.NewLink(0, 0, 1)
	dev := spot.NewDevice(spot.Config{Name: "weak", Addr: 0x1, Clock: fc, Link: link, BatteryMicroJ: 20})
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	node := NewFieldNode(dev, "temperature", 0x2, 2)
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		lastErr = node.Sample()
	}
	if !errors.Is(lastErr, spot.ErrBatteryDead) {
		t.Fatalf("err = %v", lastErr)
	}
}

func TestCollectedSensorJoinsFederation(t *testing.T) {
	// End to end: a radio-collected field sensor appears in the lookup
	// service and composes into a CSP like any other sensor service.
	fc, _, node, collector := newRig(t, 0)
	for i := 0; i < 4; i++ {
		node.Sample()
		fc.Advance(time.Second)
	}
	acc, err := collector.Accessor(0x2001)
	if err != nil {
		t.Fatal(err)
	}

	bus := discovery.NewBus()
	lus := registry.New("lus", fc)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	if _, err := lus.Register(registry.ServiceItem{
		Service:    acc,
		Types:      []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Field-1"), attr.SensorType("temperature", "celsius")},
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	facade := sensor.NewFacade("f", clockwork.Real(), mgr)
	fr, err := facade.Network().GetValue("Field-1")
	if err != nil || fr.Value != 21.5 {
		t.Fatalf("facade read of collected sensor = %+v, %v", fr, err)
	}

	csp := sensor.NewCSP("edge-composite", sensor.WithCSPClock(fc))
	if _, err := csp.AddChild(acc); err != nil {
		t.Fatal(err)
	}
	r, err := csp.GetValue()
	if err != nil || r.Value != 21.5 {
		t.Fatalf("composite over collected sensor = %+v, %v", r, err)
	}
}

func TestBatchClampedToMax(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	link := spot.NewLink(0, 0, 1)
	dev := spot.NewDevice(spot.Config{Name: "d", Addr: 0x1, Clock: fc, Link: link})
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	node := NewFieldNode(dev, "temperature", 0x2, 1000)
	if node.batch != MaxBatch {
		t.Fatalf("batch = %d, want clamped %d", node.batch, MaxBatch)
	}
}
