package txn

import (
	"errors"
	"testing"
	"time"
)

// Abort-path coverage: what exactly happens to each participant when one
// of them errors during prepare.

func TestPrepareErrorAbortsAlreadyPreparedPeers(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	first := &part{vote: VotePrepared}
	failing := &part{vote: VotePrepared, prepErr: errors.New("participant crashed in prepare")}
	last := &part{vote: VotePrepared}
	tx.Join(first)
	tx.Join(failing)
	tx.Join(last) // joined after the failer: never even asked to prepare

	if err := tx.Commit(); !errors.Is(err, ErrCommitAbort) {
		t.Fatalf("err = %v, want ErrCommitAbort", err)
	}
	// The peer that had prepared must be told to roll back.
	if pr, co, ab := first.counts(); pr != 1 || co != 0 || ab != 1 {
		t.Fatalf("prepared peer: prepare=%d commit=%d abort=%d", pr, co, ab)
	}
	// The failer itself is aborted too (it may have partial state).
	if _, co, ab := failing.counts(); co != 0 || ab != 1 {
		t.Fatalf("failing peer: commit=%d abort=%d", co, ab)
	}
	// Voting stopped at the failure, but phase-2 abort reaches everyone.
	if pr, co, ab := last.counts(); pr != 0 || co != 0 || ab != 1 {
		t.Fatalf("unvoted peer: prepare=%d commit=%d abort=%d", pr, co, ab)
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestPrepareErrorSettlesWithManager(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	tx.Join(&part{vote: VotePrepared, prepErr: errors.New("boom")})
	if m.Active() != 1 {
		t.Fatalf("Active = %d before commit", m.Active())
	}
	_ = tx.Commit()
	if m.Active() != 0 {
		t.Fatalf("aborted transaction not settled, Active = %d", m.Active())
	}
	if _, ok := m.Get(tx.ID()); ok {
		t.Fatal("settled transaction still retrievable")
	}
}

func TestCommitAfterPrepareErrorAbortFails(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	tx.Join(&part{vote: VotePrepared, prepErr: errors.New("boom")})
	_ = tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("second commit err = %v, want ErrNotActive", err)
	}
	// Abort of an already aborted transaction stays a no-op.
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort after aborted = %v", err)
	}
}

func TestPrepareErrorAbortsReadOnlyPeersToo(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	readonly := &part{vote: VoteNotChanged}
	failing := &part{vote: VotePrepared, prepErr: errors.New("boom")}
	tx.Join(readonly)
	tx.Join(failing)
	if err := tx.Commit(); !errors.Is(err, ErrCommitAbort) {
		t.Fatalf("err = %v", err)
	}
	// Read-only peers get the abort notification as well — they may hold
	// read locks or cached state keyed to the transaction.
	if _, _, ab := readonly.counts(); ab != 1 {
		t.Fatalf("read-only peer aborts = %d", ab)
	}
}

func TestJoinAfterVotingRejected(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	tx.Join(&part{vote: VotePrepared, prepErr: errors.New("boom")})
	_ = tx.Commit()
	if err := tx.Join(&part{vote: VotePrepared}); err == nil {
		t.Fatal("join after settle accepted")
	}
}
