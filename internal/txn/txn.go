// Package txn implements the Jini transaction model: lease-bounded
// two-phase-commit transactions coordinated by a Transaction Manager (the
// "Transaction Manager" in the paper's Fig. 2 service list). SORCER's
// Servicer interface is service(Exertion, Transaction): exertions may run
// under a transaction so that tuple-space takes and context writes either
// all happen or none do.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
)

// State is a transaction's lifecycle stage.
type State int

// Transaction lifecycle states.
const (
	Active State = iota
	Voting
	Committed
	Aborted
)

// String renders the state for logs.
func (s State) String() string {
	switch s {
	case Active:
		return "ACTIVE"
	case Voting:
		return "VOTING"
	case Committed:
		return "COMMITTED"
	case Aborted:
		return "ABORTED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Vote is a participant's answer to Prepare.
type Vote int

// Prepare votes.
const (
	// VotePrepared: the participant has durably staged its changes and
	// will commit or abort as told.
	VotePrepared Vote = iota
	// VoteNotChanged: the participant made no changes (read-only) and
	// needs no second phase.
	VoteNotChanged
	// VoteAborted: the participant cannot commit.
	VoteAborted
)

// Participant is a resource manager joined to a transaction.
type Participant interface {
	// Prepare stages the participant's changes for txnID.
	Prepare(txnID uint64) (Vote, error)
	// Commit finalizes previously prepared changes.
	Commit(txnID uint64) error
	// Abort discards changes (prepared or not).
	Abort(txnID uint64) error
}

// Errors returned by transaction operations.
var (
	ErrNotActive   = errors.New("txn: transaction not active")
	ErrUnknownTxn  = errors.New("txn: unknown transaction")
	ErrCommitAbort = errors.New("txn: transaction aborted during commit")
)

// Manager creates and tracks transactions. A transaction whose lease lapses
// is aborted — the crash-safety net for federations that die mid-exertion.
type Manager struct {
	clock  clockwork.Clock
	leases *lease.Table

	mu   sync.Mutex
	txns map[uint64]*Transaction
}

// NewManager creates a transaction manager.
func NewManager(clock clockwork.Clock, policy lease.Policy) *Manager {
	m := &Manager{
		clock: clock,
		txns:  make(map[uint64]*Transaction),
	}
	m.leases = lease.NewTable(clock, policy)
	m.leases.OnExpire(m.onLeaseExpired)
	return m
}

// Create starts a transaction under a lease of the requested duration. Keep
// the lease renewed for long-running collaborations.
func (m *Manager) Create(leaseDur time.Duration) (*Transaction, lease.Lease) {
	lse := m.leases.Grant(leaseDur)
	t := &Transaction{id: lse.ID, mgr: m, state: Active}
	m.mu.Lock()
	m.txns[lse.ID] = t
	m.mu.Unlock()
	return t, lse
}

// Get returns a live transaction by id.
func (m *Manager) Get(id uint64) (*Transaction, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.txns[id]
	return t, ok
}

// Active reports the number of transactions not yet settled.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.txns {
		if t.State() == Active {
			n++
		}
	}
	return n
}

// Sweep aborts transactions whose leases lapsed.
func (m *Manager) Sweep() { m.leases.Sweep() }

func (m *Manager) onLeaseExpired(leaseID uint64) {
	m.mu.Lock()
	t := m.txns[leaseID]
	m.mu.Unlock()
	if t != nil {
		_ = t.Abort()
	}
}

func (m *Manager) settle(id uint64) {
	m.mu.Lock()
	delete(m.txns, id)
	m.mu.Unlock()
	_ = m.leases.Cancel(id)
}

// Transaction is a single lease-bounded unit of work.
type Transaction struct {
	id  uint64
	mgr *Manager

	mu           sync.Mutex
	state        State
	participants []Participant
}

// ID returns the transaction identifier.
func (t *Transaction) ID() uint64 { return t.id }

// State returns the current lifecycle state.
func (t *Transaction) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Join enrols a participant. Joining the same participant twice is
// idempotent (crash-retry semantics).
func (t *Transaction) Join(p Participant) error {
	if p == nil {
		return errors.New("txn: nil participant")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return fmt.Errorf("%w: state %s", ErrNotActive, t.state)
	}
	for _, existing := range t.participants {
		if existing == p {
			return nil
		}
	}
	t.participants = append(t.participants, p)
	return nil
}

// Commit runs two-phase commit across the participants: every participant
// is asked to Prepare; if all vote Prepared or NotChanged, the Prepared
// ones are told to Commit; otherwise everything aborts and ErrCommitAbort
// is returned.
func (t *Transaction) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrNotActive, st)
	}
	t.state = Voting
	parts := append([]Participant{}, t.participants...)
	t.mu.Unlock()

	// Phase 1: collect votes.
	var prepared []Participant
	abort := false
	for _, p := range parts {
		vote, err := p.Prepare(t.id)
		if err != nil || vote == VoteAborted {
			abort = true
			break
		}
		if vote == VotePrepared {
			prepared = append(prepared, p)
		}
	}
	if abort {
		for _, p := range parts {
			_ = p.Abort(t.id)
		}
		t.setState(Aborted)
		t.mgr.settle(t.id)
		return ErrCommitAbort
	}
	// Phase 2: commit the prepared participants.
	var firstErr error
	for _, p := range prepared {
		if err := p.Commit(t.id); err != nil && firstErr == nil {
			// The decision to commit is already durable; a failed
			// Commit is a participant-side delivery problem, surfaced
			// but not reversible.
			firstErr = err
		}
	}
	t.setState(Committed)
	t.mgr.settle(t.id)
	return firstErr
}

// Abort aborts the transaction across all participants. Aborting a settled
// transaction returns ErrNotActive, except that aborting an already
// aborted transaction is a no-op.
func (t *Transaction) Abort() error {
	t.mu.Lock()
	switch t.state {
	case Aborted:
		t.mu.Unlock()
		return nil
	case Committed, Voting:
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrNotActive, st)
	}
	t.state = Aborted
	parts := append([]Participant{}, t.participants...)
	t.mu.Unlock()

	for _, p := range parts {
		_ = p.Abort(t.id)
	}
	t.mgr.settle(t.id)
	return nil
}

func (t *Transaction) setState(s State) {
	t.mu.Lock()
	t.state = s
	t.mu.Unlock()
}
