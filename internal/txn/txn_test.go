package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newMgr() (*clockwork.Fake, *Manager) {
	fc := clockwork.NewFake(epoch)
	return fc, NewManager(fc, lease.Policy{Max: time.Hour})
}

// part is a scripted participant.
type part struct {
	mu        sync.Mutex
	vote      Vote
	prepErr   error
	commitErr error

	prepared  int
	committed int
	aborted   int
}

func (p *part) Prepare(uint64) (Vote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prepared++
	return p.vote, p.prepErr
}

func (p *part) Commit(uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.committed++
	return p.commitErr
}

func (p *part) Abort(uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborted++
	return nil
}

func (p *part) counts() (int, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prepared, p.committed, p.aborted
}

func TestCommitHappyPath(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p1, p2 := &part{vote: VotePrepared}, &part{vote: VotePrepared}
	tx.Join(p1)
	tx.Join(p2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
	for i, p := range []*part{p1, p2} {
		pr, co, ab := p.counts()
		if pr != 1 || co != 1 || ab != 0 {
			t.Fatalf("participant %d: prepare=%d commit=%d abort=%d", i, pr, co, ab)
		}
	}
}

func TestReadOnlyParticipantSkipsPhase2(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	ro := &part{vote: VoteNotChanged}
	rw := &part{vote: VotePrepared}
	tx.Join(ro)
	tx.Join(rw)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, co, _ := ro.counts(); co != 0 {
		t.Fatal("read-only participant was committed")
	}
	if _, co, _ := rw.counts(); co != 1 {
		t.Fatal("read-write participant not committed")
	}
}

func TestAbortVoteAbortsAll(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	good := &part{vote: VotePrepared}
	bad := &part{vote: VoteAborted}
	tx.Join(good)
	tx.Join(bad)
	if err := tx.Commit(); !errors.Is(err, ErrCommitAbort) {
		t.Fatalf("err = %v", err)
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
	if _, co, ab := good.counts(); co != 0 || ab != 1 {
		t.Fatalf("good participant commit=%d abort=%d", co, ab)
	}
}

func TestPrepareErrorAborts(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p := &part{vote: VotePrepared, prepErr: errors.New("disk full")}
	tx.Join(p)
	if err := tx.Commit(); !errors.Is(err, ErrCommitAbort) {
		t.Fatalf("err = %v", err)
	}
}

func TestCommitErrorSurfacedButCommitted(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p := &part{vote: VotePrepared, commitErr: errors.New("link lost")}
	tx.Join(p)
	err := tx.Commit()
	if err == nil {
		t.Fatal("commit error swallowed")
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v, decision must stand", tx.State())
	}
}

func TestAbortExplicit(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p := &part{vote: VotePrepared}
	tx.Join(p)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, _, ab := p.counts(); ab != 1 {
		t.Fatal("participant not aborted")
	}
	// Idempotent.
	if err := tx.Abort(); err != nil {
		t.Fatal("second abort should be a no-op")
	}
	// Joining a settled txn fails.
	if err := tx.Join(&part{}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("join after abort err = %v", err)
	}
}

func TestCommitAfterCommitFails(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("abort after commit err = %v", err)
	}
}

func TestLeaseExpiryAborts(t *testing.T) {
	fc, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p := &part{vote: VotePrepared}
	tx.Join(p)
	fc.Advance(2 * time.Minute)
	m.Sweep()
	if tx.State() != Aborted {
		t.Fatalf("state = %v, want Aborted after lease expiry", tx.State())
	}
	if _, _, ab := p.counts(); ab != 1 {
		t.Fatal("participant not aborted on expiry")
	}
}

func TestLeaseRenewalKeepsTxnAlive(t *testing.T) {
	fc, m := newMgr()
	tx, lse := m.Create(time.Minute)
	fc.Advance(45 * time.Second)
	if err := lse.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	fc.Advance(45 * time.Second)
	m.Sweep()
	if tx.State() != Active {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestJoinIdempotent(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	p := &part{vote: VotePrepared}
	tx.Join(p)
	tx.Join(p)
	tx.Commit()
	if pr, _, _ := p.counts(); pr != 1 {
		t.Fatalf("prepared %d times, want 1", pr)
	}
}

func TestJoinNil(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	if err := tx.Join(nil); err == nil {
		t.Fatal("nil participant accepted")
	}
}

func TestManagerGetAndSettle(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	if got, ok := m.Get(tx.ID()); !ok || got != tx {
		t.Fatal("Get failed")
	}
	if m.Active() != 1 {
		t.Fatalf("Active = %d", m.Active())
	}
	tx.Commit()
	if _, ok := m.Get(tx.ID()); ok {
		t.Fatal("settled txn still tracked")
	}
	if m.Active() != 0 {
		t.Fatalf("Active = %d", m.Active())
	}
}

func TestEmptyCommit(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Active: "ACTIVE", Voting: "VOTING", Committed: "COMMITTED", Aborted: "ABORTED", State(9): "State(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestConcurrentJoins(t *testing.T) {
	_, m := newMgr()
	tx, _ := m.Create(time.Minute)
	var wg sync.WaitGroup
	parts := make([]*part, 32)
	for i := range parts {
		parts[i] = &part{vote: VotePrepared}
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			tx.Join(p)
		}(parts[i])
	}
	wg.Wait()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if _, co, _ := p.counts(); co != 1 {
			t.Fatal("participant missed commit")
		}
	}
}
