package wire

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func batch(n int) []Reading {
	out := make([]Reading, n)
	for i := range out {
		out[i] = Reading{
			SensorID:  uint16(0x1000 + i%4),
			Timestamp: epoch.Add(time.Duration(i) * 250 * time.Millisecond),
			Value:     20 + float64(i%10)*0.37,
		}
	}
	return out
}

func TestCompactRoundTrip(t *testing.T) {
	in := batch(16)
	b, err := EncodeCompact(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCompact(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i].SensorID != in[i].SensorID {
			t.Fatalf("reading %d id %v != %v", i, out[i].SensorID, in[i].SensorID)
		}
		if !out[i].Timestamp.Equal(in[i].Timestamp) {
			t.Fatalf("reading %d ts %v != %v", i, out[i].Timestamp, in[i].Timestamp)
		}
		if math.Abs(out[i].Value-in[i].Value) > Quantum/2+1e-12 {
			t.Fatalf("reading %d value %v != %v", i, out[i].Value, in[i].Value)
		}
	}
}

func TestCompactRejectsEmptyAndDisorder(t *testing.T) {
	if _, err := EncodeCompact(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := batch(2)
	bad[1].Timestamp = bad[0].Timestamp.Add(-time.Second)
	if _, err := EncodeCompact(bad); err == nil {
		t.Fatal("out-of-order batch accepted")
	}
}

func TestDecodeCompactRejectsGarbage(t *testing.T) {
	good, _ := EncodeCompact(batch(3))
	cases := [][]byte{
		nil,
		{9, 9, 9},
		append([]byte{}, good[:len(good)-1]...), // truncated
		append(append([]byte{}, good...), 0),    // trailing byte
		func() []byte { b := append([]byte{}, good...); b[0] = 7; return b }(), // bad version
	}
	for i, b := range cases {
		if _, err := DecodeCompact(b); !errors.Is(err, ErrBadBatch) && err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestIPStyleRoundTrip(t *testing.T) {
	r := Reading{SensorID: 0x1003, Timestamp: epoch, Value: -12.75}
	b := EncodeIPStyle(r)
	if len(b) != IPStyleBytesPerReading {
		t.Fatalf("len = %d", len(b))
	}
	back, err := DecodeIPStyle(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.SensorID != r.SensorID || !back.Timestamp.Equal(r.Timestamp) || back.Value != r.Value {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := DecodeIPStyle(b[:10]); err == nil {
		t.Fatal("short datagram accepted")
	}
}

func TestCompactBeatsIPStyle(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64, 256} {
		ratio, err := OverheadRatio(batch(n))
		if err != nil {
			t.Fatal(err)
		}
		if ratio <= 1 {
			t.Fatalf("n=%d: compact not smaller (ratio %v)", n, ratio)
		}
		// Amortization: bigger batches waste fewer bytes per reading.
		bpr, _ := BytesPerReadingCompact(batch(n))
		if n >= 64 && bpr > 8 {
			t.Fatalf("n=%d: %v bytes/reading, want <= 8", n, bpr)
		}
	}
	// The headline: large batches should be ~8-10x smaller than IP-style.
	ratio, _ := OverheadRatio(batch(256))
	if ratio < 6 {
		t.Fatalf("256-batch ratio = %v, want >= 6", ratio)
	}
}

func TestAmortizationMonotonic(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		bpr, err := BytesPerReadingCompact(batch(n))
		if err != nil {
			t.Fatal(err)
		}
		if bpr > prev+1e-9 {
			t.Fatalf("bytes/reading grew at n=%d: %v > %v", n, bpr, prev)
		}
		prev = bpr
	}
}

// Property: compact round trip preserves ids, millisecond timestamps and
// values to within the quantum, for arbitrary ordered batches.
func TestPropertyCompactRoundTrip(t *testing.T) {
	f := func(ids []uint16, deltasMS []uint16, centivals []int16) bool {
		n := len(ids)
		if len(deltasMS) < n {
			n = len(deltasMS)
		}
		if len(centivals) < n {
			n = len(centivals)
		}
		if n == 0 {
			return true
		}
		in := make([]Reading, n)
		ts := epoch
		for i := 0; i < n; i++ {
			ts = ts.Add(time.Duration(deltasMS[i]) * time.Millisecond)
			in[i] = Reading{
				SensorID:  ids[i],
				Timestamp: ts,
				Value:     float64(centivals[i]) * Quantum,
			}
		}
		b, err := EncodeCompact(in)
		if err != nil {
			return false
		}
		out, err := DecodeCompact(b)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if out[i].SensorID != in[i].SensorID ||
				!out[i].Timestamp.Equal(in[i].Timestamp) ||
				math.Abs(out[i].Value-in[i].Value) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IP-style codec is exact for all finite values.
func TestPropertyIPStyleExact(t *testing.T) {
	f := func(id uint16, nanos int64, val float64) bool {
		if math.IsNaN(val) {
			return true
		}
		r := Reading{SensorID: id, Timestamp: time.Unix(0, nanos), Value: val}
		back, err := DecodeIPStyle(EncodeIPStyle(r))
		return err == nil && back.SensorID == id && back.Timestamp.Equal(r.Timestamp) && back.Value == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
