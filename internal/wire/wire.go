// Package wire implements sensorcer's compact on-the-wire encoding for
// sensor readings and, for comparison, the naive per-reading IP-style
// framing the paper's motivation #1 complains about: "the data generated
// from a single sensor at any instance is very small; to transfer this
// small amount of data over the network, header overhead of the current IP
// protocol is relatively high". The compact format batches readings,
// delta-encodes timestamps and varint-encodes quantized values, so the
// per-reading cost amortizes toward a few bytes; IP-style framing pays a
// 28-byte header per reading. Experiment C4 benchmarks the two.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Reading is one sensor measurement in transit.
type Reading struct {
	// SensorID is the device's short address.
	SensorID uint16
	// Timestamp is when the sample was taken.
	Timestamp time.Time
	// Value is the measured quantity.
	Value float64
}

// Quantum is the value resolution of the compact encoding: readings are
// quantized to centi-units (0.01 °C for temperature), ample for the
// paper's sensors.
const Quantum = 0.01

// compactVersion tags the batch header.
const compactVersion = 1

// ErrBadBatch reports a malformed compact batch.
var ErrBadBatch = errors.New("wire: malformed compact batch")

// EncodeCompact serializes a batch of readings:
//
//	1B version | uvarint count | 8B base unix-nanos |
//	per reading: uvarint sensorID | uvarint delta-nanos/1e6 (ms) |
//	             svarint round(value/Quantum)
//
// Readings must be in non-decreasing timestamp order (the natural order a
// collector produces); out-of-order input is rejected.
func EncodeCompact(readings []Reading) ([]byte, error) {
	return AppendCompact(make([]byte, 0, 16+6*len(readings)), readings)
}

// AppendCompact is EncodeCompact into a caller-owned buffer — the
// reading-batch encode path the srpc binary codec reuses, allocation-free
// beyond amortized growth of buf.
//
//lint:noalloc
func AppendCompact(buf []byte, readings []Reading) ([]byte, error) {
	if len(readings) == 0 {
		return nil, errors.New("wire: empty batch")
	}
	base := readings[0].Timestamp
	//lint:allocok amortized growth of the caller-owned encode buffer
	buf = append(buf, compactVersion)
	buf = AppendUvarint(buf, uint64(len(readings)))
	buf = AppendUint64LE(buf, uint64(base.UnixNano()))
	prev := base
	for i, r := range readings {
		if r.Timestamp.Before(prev) {
			return nil, fmt.Errorf("wire: reading %d out of order", i)
		}
		deltaMS := r.Timestamp.Sub(prev).Milliseconds()
		prev = r.Timestamp
		q := int64(math.Round(r.Value / Quantum))
		buf = AppendUvarint(buf, uint64(r.SensorID))
		buf = AppendUvarint(buf, uint64(deltaMS))
		buf = AppendSvarint(buf, q)
	}
	return buf, nil
}

// DecodeCompact parses a compact batch. Values come back quantized to
// Quantum and timestamps to millisecond resolution.
func DecodeCompact(b []byte) ([]Reading, error) {
	if len(b) < 10 || b[0] != compactVersion {
		return nil, fmt.Errorf("%w: bad header", ErrBadBatch)
	}
	off := 1
	count, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: count", ErrBadBatch)
	}
	off += n
	if off+8 > len(b) {
		return nil, fmt.Errorf("%w: base timestamp", ErrBadBatch)
	}
	base := time.Unix(0, int64(binary.LittleEndian.Uint64(b[off:])))
	off += 8
	if count > uint64(len(b)) { // cheap sanity bound: >= 3 bytes/reading min 1
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadBatch, count)
	}
	out := make([]Reading, 0, count)
	prev := base
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: sensor id of reading %d", ErrBadBatch, i)
		}
		off += n
		delta, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: delta of reading %d", ErrBadBatch, i)
		}
		off += n
		q, n := binary.Varint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: value of reading %d", ErrBadBatch, i)
		}
		off += n
		ts := prev.Add(time.Duration(delta) * time.Millisecond)
		prev = ts
		out = append(out, Reading{
			SensorID:  uint16(id),
			Timestamp: ts,
			Value:     float64(q) * Quantum,
		})
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing byte(s)", ErrBadBatch, len(b)-off)
	}
	return out, nil
}

// IP-style framing constants: a minimal IPv4 header plus UDP header per
// reading — what a naive one-datagram-per-sample design pays.
const (
	IPv4HeaderBytes = 20
	UDPHeaderBytes  = 8
	// IPPayloadBytes is the naive payload: 2B sensor id + 8B unix-nanos
	// + 8B float64 value.
	IPPayloadBytes = 18
	// IPStyleBytesPerReading is the total datagram size per reading.
	IPStyleBytesPerReading = IPv4HeaderBytes + UDPHeaderBytes + IPPayloadBytes
)

// EncodeIPStyle serializes one reading as a full mock IPv4/UDP datagram.
func EncodeIPStyle(r Reading) []byte {
	buf := make([]byte, IPStyleBytesPerReading)
	// IPv4 header skeleton (version/IHL, total length, TTL, proto=UDP).
	buf[0] = 0x45
	binary.BigEndian.PutUint16(buf[2:], IPStyleBytesPerReading)
	buf[8] = 64
	buf[9] = 17
	// UDP header: src/dst port 4160 (the paper's LUS port), length.
	binary.BigEndian.PutUint16(buf[20:], 4160)
	binary.BigEndian.PutUint16(buf[22:], 4160)
	binary.BigEndian.PutUint16(buf[24:], UDPHeaderBytes+IPPayloadBytes)
	// Payload.
	binary.BigEndian.PutUint16(buf[28:], r.SensorID)
	binary.BigEndian.PutUint64(buf[30:], uint64(r.Timestamp.UnixNano()))
	binary.BigEndian.PutUint64(buf[38:], math.Float64bits(r.Value))
	return buf
}

// DecodeIPStyle parses a mock datagram produced by EncodeIPStyle.
func DecodeIPStyle(b []byte) (Reading, error) {
	if len(b) != IPStyleBytesPerReading || b[0] != 0x45 || b[9] != 17 {
		return Reading{}, errors.New("wire: malformed IP-style datagram")
	}
	return Reading{
		SensorID:  binary.BigEndian.Uint16(b[28:]),
		Timestamp: time.Unix(0, int64(binary.BigEndian.Uint64(b[30:]))),
		Value:     math.Float64frombits(binary.BigEndian.Uint64(b[38:])),
	}, nil
}

// BytesPerReadingCompact reports the amortized compact cost for a batch.
func BytesPerReadingCompact(readings []Reading) (float64, error) {
	b, err := EncodeCompact(readings)
	if err != nil {
		return 0, err
	}
	return float64(len(b)) / float64(len(readings)), nil
}

// OverheadRatio reports IP-style bytes divided by compact bytes for the
// same batch — the headline number of experiment C4.
func OverheadRatio(readings []Reading) (float64, error) {
	compact, err := EncodeCompact(readings)
	if err != nil {
		return 0, err
	}
	ip := len(readings) * IPStyleBytesPerReading
	return float64(ip) / float64(len(compact)), nil
}
