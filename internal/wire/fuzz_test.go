package wire

import (
	"testing"
	"time"
)

// FuzzDecodeCompact hammers the reading-batch decoder — the payload
// parser behind the srpc ShapeReadingBatch fast path — with arbitrary
// bytes: it must never panic, never allocate unboundedly from a hostile
// count, and anything it accepts must survive an encode/decode round
// trip with the same batch size.
func FuzzDecodeCompact(f *testing.F) {
	base := time.Unix(1700000000, 0)
	good, _ := EncodeCompact([]Reading{
		{SensorID: 1, Timestamp: base, Value: 21.5},
		{SensorID: 2, Timestamp: base.Add(250 * time.Millisecond), Value: -3.25},
		{SensorID: 1, Timestamp: base.Add(time.Second), Value: 21.75},
	})
	f.Add(good)
	f.Add(good[:len(good)-1])              // truncated last value
	f.Add(good[:5])                        // truncated header
	f.Add([]byte{})                        // empty
	f.Add([]byte{compactVersion})          // header only
	f.Add(append([]byte{compactVersion}, 0xff, 0xff, 0xff, 0xff, 0x0f)) // hostile count
	f.Add(append(append([]byte(nil), good...), 0x00)) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		readings, err := DecodeCompact(data)
		if err != nil {
			return
		}
		if uint64(len(readings)) > uint64(len(data)) {
			t.Fatalf("%d readings from %d input bytes", len(readings), len(data))
		}
		re, err := EncodeCompact(readings)
		if err != nil {
			// Extreme decoded values (duration overflow, quantization far
			// past float precision) are legitimately not re-encodable.
			return
		}
		again, err := DecodeCompact(re)
		if err != nil || len(again) != len(readings) {
			t.Fatalf("re-encoded batch failed to decode: %d readings, %v", len(again), err)
		}
	})
}

// FuzzConsumePrimitives drives the low-level binary consumers with
// arbitrary input: never panic, and every successful decode must
// re-encode to the bytes just consumed.
func FuzzConsumePrimitives(f *testing.F) {
	f.Add(AppendUvarint(nil, 300))
	f.Add(AppendSvarint(nil, -12345))
	f.Add(AppendBytes(nil, []byte("payload")))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if u, _, ok := ConsumeUvarint(data); ok {
			if got, rest, ok2 := ConsumeUvarint(AppendUvarint(nil, u)); !ok2 || got != u || len(rest) != 0 {
				t.Fatalf("uvarint %d did not round-trip", u)
			}
		}
		if v, _, ok := ConsumeSvarint(data); ok {
			if got, rest, ok2 := ConsumeSvarint(AppendSvarint(nil, v)); !ok2 || got != v || len(rest) != 0 {
				t.Fatalf("svarint %d did not round-trip", v)
			}
		}
		if b, rest, ok := ConsumeBytes(data); ok {
			if len(b)+len(rest) > len(data) {
				t.Fatalf("ConsumeBytes returned more than it was given")
			}
		}
		if _, _, ok := ConsumeUint64LE(data); ok && len(data) < 8 {
			t.Fatal("ConsumeUint64LE accepted a short buffer")
		}
		if s, _, ok := ConsumeString(data); ok && len(s) > len(data) {
			t.Fatal("ConsumeString returned more than it was given")
		}
	})
}
