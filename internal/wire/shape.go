// ReadingBatch adapts a []Reading to the srpc binary codec's hot-shape
// interfaces (srpc.BinaryMarshaler / srpc.BinaryUnmarshaler, satisfied
// structurally so wire stays dependency-free): on a binary connection a
// batch travels as the compact encoding instead of JSON. The subscription
// plane (ROADMAP item 2) will stream these; today the codec tests and
// benchmarks exercise the shape.
package wire

import "fmt"

// ShapeReadingBatch is the srpc payload-shape tag for a compact reading
// batch. Shape tags are allocated per package: srpc reserves 0 for the
// JSON fallback, internal/remote owns 1..31, wire owns 32+.
const ShapeReadingBatch byte = 32

// ReadingBatch is a []Reading with srpc fast-path encoding.
type ReadingBatch []Reading

// SrpcShape tags the binary payload.
func (rb ReadingBatch) SrpcShape() byte { return ShapeReadingBatch }

// AppendSrpc appends the compact encoding of the batch.
//
//lint:noalloc
func (rb ReadingBatch) AppendSrpc(buf []byte) ([]byte, error) {
	return AppendCompact(buf, rb)
}

// UnmarshalSrpc decodes a compact batch payload.
func (rb *ReadingBatch) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != ShapeReadingBatch {
		return fmt.Errorf("wire: unexpected payload shape %#x for ReadingBatch", shape)
	}
	rs, err := DecodeCompact(data)
	if err != nil {
		return err
	}
	*rb = rs
	return nil
}
