// Append/Consume primitives for sensorcer's binary wire formats. The
// srpc binary codec and the hot-shape encoders in internal/remote build
// every frame from these instead of encoding/json (or encoding/binary,
// whose helpers the noalloc analyzer cannot see through): Append* grow a
// caller-owned buffer amortized, Consume* parse without copying — a
// consumed byte slice aliases the input — and never panic on truncated
// or hostile input (they return ok=false instead).
package wire

import "math"

// AppendUvarint appends v in LEB128 (the same uvarint encoding
// encoding/binary uses, reimplemented so noalloc-annotated encoders can
// call it).
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		//lint:allocok amortized growth of the caller-owned encode buffer
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	//lint:allocok amortized growth of the caller-owned encode buffer
	return append(b, byte(v))
}

// AppendSvarint appends v zigzag-encoded as a uvarint.
func AppendSvarint(b []byte, v int64) []byte {
	return AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// AppendUint64LE appends v as 8 fixed little-endian bytes.
func AppendUint64LE(b []byte, v uint64) []byte {
	//lint:allocok amortized growth of the caller-owned encode buffer
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendFloat64 appends the IEEE 754 bits of v little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64LE(b, math.Float64bits(v))
}

// AppendBytes appends a uvarint length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	//lint:allocok amortized growth of the caller-owned encode buffer
	return append(b, p...)
}

// AppendString appends a uvarint length prefix followed by s.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	//lint:allocok amortized growth of the caller-owned encode buffer
	return append(b, s...)
}

// maxVarintLen64 bounds a uvarint at 10 bytes (64 bits / 7 per byte).
const maxVarintLen64 = 10

// ConsumeUvarint parses a LEB128 uvarint from the front of b, returning
// the value and the unconsumed remainder. ok is false on truncated or
// overlong (>64-bit) input.
func ConsumeUvarint(b []byte) (v uint64, rest []byte, ok bool) {
	var shift uint
	for i, c := range b {
		if i >= maxVarintLen64 || (i == maxVarintLen64-1 && c > 1) {
			return 0, b, false // value overflows 64 bits
		}
		if c < 0x80 {
			return v | uint64(c)<<shift, b[i+1:], true
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, b, false
}

// ConsumeSvarint parses a zigzag-encoded svarint from the front of b.
func ConsumeSvarint(b []byte) (int64, []byte, bool) {
	u, rest, ok := ConsumeUvarint(b)
	return int64(u>>1) ^ -int64(u&1), rest, ok
}

// ConsumeUint64LE parses 8 fixed little-endian bytes.
func ConsumeUint64LE(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, b, false
	}
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return v, b[8:], true
}

// ConsumeFloat64 parses an IEEE 754 double written by AppendFloat64.
func ConsumeFloat64(b []byte) (float64, []byte, bool) {
	u, rest, ok := ConsumeUint64LE(b)
	return math.Float64frombits(u), rest, ok
}

// ConsumeBytes parses a length-prefixed byte slice. The returned slice
// aliases b — zero-copy; callers that retain it past the life of the
// input buffer must copy.
func ConsumeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := ConsumeUvarint(b)
	if !ok || n > uint64(len(rest)) {
		return nil, b, false
	}
	return rest[:n:n], rest[n:], true
}

// ConsumeString parses a length-prefixed string (one copy — strings are
// immutable).
func ConsumeString(b []byte) (string, []byte, bool) {
	p, rest, ok := ConsumeBytes(b)
	if !ok {
		return "", b, false
	}
	return string(p), rest, true
}
