package space

import (
	"reflect"
	"sort"
)

// The match index replaces the original linear scan over s.entries with two
// coordinated structures per entry kind:
//
//   - ids: every stored entry id of that kind, ascending — so the FIFO
//     "lowest-id visible match" rule falls out of iteration order;
//   - byField: an inverted index field -> value -> ascending ids, covering
//     every comparable field value, so templates that pin a field (the
//     Spacer's taskID lookups, a worker's service-type template) jump
//     straight to their candidate set.
//
// The index covers storage, not visibility: transaction staging tags and
// lease validity are still checked per candidate, which keeps claim/abort
// and expiry coherent without index churn on every visibility flip. Entries
// enter the index on Write (and Recover replay) and leave it exactly when
// they leave s.entries.
type kindIndex struct {
	ids     []uint64
	byField map[string]map[any][]uint64
}

// indexableValue reports whether v can serve as an inverted-index key.
// Non-comparable values (slices, maps, payload structs holding them) are
// never indexed — they also never equal a comparable template value, so
// skipping them is lossless for matching.
func indexableValue(v any) bool {
	if v == nil {
		return false
	}
	return reflect.TypeOf(v).Comparable()
}

// insertID adds id to an ascending id slice. Writes arrive in id order, so
// the common case is a plain append; recovery replay may interleave.
func insertID(ids []uint64, id uint64) []uint64 {
	if n := len(ids); n == 0 || ids[n-1] < id {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeID deletes id from an ascending id slice (no-op when absent).
func removeID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	return append(ids[:i], ids[i+1:]...)
}

// indexAddLocked enters a stored entry into the kind and field indexes.
// Caller holds s.mu.
func (s *Space) indexAddLocked(se *storedEntry) {
	ki, ok := s.byKind[se.entry.Kind]
	if !ok {
		ki = &kindIndex{byField: make(map[string]map[any][]uint64)}
		s.byKind[se.entry.Kind] = ki
	}
	ki.ids = insertID(ki.ids, se.id)
	for f, v := range se.entry.Fields {
		if !indexableValue(v) {
			continue
		}
		vm, ok := ki.byField[f]
		if !ok {
			vm = make(map[any][]uint64, 1)
			ki.byField[f] = vm
		}
		vm[v] = insertID(vm[v], se.id)
	}
}

// indexRemoveLocked retires a stored entry from the indexes. Caller holds
// s.mu.
func (s *Space) indexRemoveLocked(se *storedEntry) {
	ki, ok := s.byKind[se.entry.Kind]
	if !ok {
		return
	}
	ki.ids = removeID(ki.ids, se.id)
	for f, v := range se.entry.Fields {
		if !indexableValue(v) {
			continue
		}
		vm, ok := ki.byField[f]
		if !ok {
			continue
		}
		if ids := removeID(vm[v], se.id); len(ids) == 0 {
			delete(vm, v)
			if len(vm) == 0 {
				delete(ki.byField, f)
			}
		} else {
			vm[v] = ids
		}
	}
	// A drained kind keeps its (empty) index: kinds are few and long-lived,
	// and the write/take churn on a hot kind would otherwise reallocate the
	// maps and id slices on every cycle. Value entries above are still
	// deleted eagerly because field values are unbounded.
}

// candidatesLocked returns the smallest ascending candidate id set for a
// template, or (nil, false) when the index proves no entry can match: an
// unknown kind, a pinned field value no entry holds, or a non-comparable
// template value (which == would never equal anyway). Caller holds s.mu.
//
//lint:noalloc
func (s *Space) candidatesLocked(tmpl Entry) ([]uint64, bool) {
	ki, ok := s.byKind[tmpl.Kind]
	if !ok {
		return nil, false
	}
	candidates := ki.ids
	for f, v := range tmpl.Fields {
		if v == nil {
			continue // wildcard
		}
		if !indexableValue(v) {
			return nil, false
		}
		vm, ok := ki.byField[f]
		if !ok {
			// No entry of this kind holds a comparable value for f, so the
			// pinned field cannot be satisfied.
			return nil, false
		}
		ids, ok := vm[v]
		if !ok {
			return nil, false
		}
		if len(ids) < len(candidates) {
			candidates = ids
		}
	}
	return candidates, true
}
