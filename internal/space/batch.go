package space

import (
	"errors"
	"time"

	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

// WriteBatch stores every entry under its own lease with one lock
// acquisition and — on a durable space — one journal group commit, so a
// caller with n entries in hand pays one fsync instead of n. Semantics
// per entry are identical to Write: with a transaction the entries are
// staged until commit, and a nil error means every non-dropped entry is
// durable. The batch is all-or-nothing at the acknowledgement level: a
// journaling failure stores nothing and cancels every granted lease.
//
// Returned leases are positionally aligned with entries.
func (s *Space) WriteBatch(entries []Entry, tx *txn.Transaction, leaseDur time.Duration) ([]lease.Lease, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	for _, e := range entries {
		if e.Kind == "" {
			return nil, errors.New("space: entry must have a kind")
		}
	}
	inj, site := s.faultHooks()
	if err := inj.Inject(site + FaultSiteWrite); err != nil {
		return nil, err
	}
	leases := make([]lease.Lease, len(entries))
	stored := make([]bool, len(entries))
	anyStored := false
	for i := range entries {
		leases[i] = s.leases.Grant(leaseDur)
		if inj.Drop(site + FaultSiteWrite) {
			// Lost write, same contract as Write: the caller holds a lease
			// for an entry that never becomes visible.
			continue
		}
		stored[i] = true
		anyStored = true
	}
	if !anyStored {
		return leases, nil
	}
	cancelAll := func() {
		for _, l := range leases {
			_ = l.Cancel()
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancelAll()
		return nil, ErrClosed
	}
	var part *spaceTxnPart
	txnID := uint64(0)
	if tx != nil {
		var err error
		if part, err = s.joinLocked(tx); err != nil {
			s.mu.Unlock()
			cancelAll()
			return nil, err
		}
		txnID = tx.ID()
	}
	if err := s.checkGuardLocked(); err != nil {
		s.mu.Unlock()
		cancelAll()
		return nil, err
	}
	if s.journal != nil {
		recs := make([]journalRecord, 0, len(entries))
		id := s.nextID
		for i, e := range entries {
			if !stored[i] {
				continue
			}
			id++
			recs = append(recs, journalRecord{
				Op: opWrite, ID: id, Txn: txnID, Kind: e.Kind,
				Fields:  encodeFields(e.Fields),
				LeaseMS: int64(leaseDur / time.Millisecond),
			})
		}
		if err := s.journalBatchLocked(recs); err != nil {
			s.mu.Unlock()
			cancelAll()
			return nil, err
		}
	}
	wake := make([]*storedEntry, 0, len(entries))
	for i, e := range entries {
		if !stored[i] {
			continue
		}
		s.nextID++
		se := &storedEntry{id: s.nextID, entry: e.Clone(), leaseID: leases[i].ID, writtenTxn: txnID}
		if part != nil {
			part.written = append(part.written, se.id)
		}
		s.entries[se.id] = se
		s.byLease[leases[i].ID] = se.id
		s.indexAddLocked(se)
		if txnID == 0 {
			s.notifyVisibleLocked(se.entry)
		}
		wake = append(wake, se)
	}
	for _, se := range wake {
		s.wakeWaitersLocked(se)
	}
	s.mu.Unlock()
	return leases, nil
}

// TakeAny removes and returns up to max entries matching the template in
// FIFO order — at least one, blocking up to timeout for the first. The
// grab is opportunistic: whatever is visible when the space is scanned is
// taken under one lock and one journal group commit; the call never
// blocks waiting to fill the batch. Under a transaction the removals are
// provisional until commit, exactly as Take.
func (s *Space) TakeAny(tmpl Entry, max int, tx *txn.Transaction, timeout time.Duration) ([]Entry, error) {
	if max <= 0 {
		return nil, errors.New("space: TakeAny wants a positive max")
	}
	inj, site := s.faultHooks()
	if err := inj.Inject(site + FaultSiteTake); err != nil {
		return nil, err
	}
	s.leases.Sweep()
	txnID := uint64(0)
	if tx != nil {
		txnID = tx.ID()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	out, err := s.takeBatchLocked(tmpl, max, tx, txnID)
	if err != nil || len(out) > 0 {
		s.mu.Unlock()
		return out, err
	}
	if timeout <= 0 {
		s.mu.Unlock()
		return nil, ErrTimeout
	}
	w := &waiter{template: tmpl, take: true, txnID: txnID, result: make(chan Entry, 1)}
	s.waitq[tmpl.Kind] = append(s.waitq[tmpl.Kind], w)
	s.mu.Unlock()
	first, err := s.awaitWaiter(w, tmpl.Kind, timeout)
	if err != nil {
		return nil, err
	}
	out = append(out, first)
	if max > 1 {
		// Drain whatever arrived alongside the entry that woke us. The
		// first entry is already taken (and journaled by the waker), so an
		// error on this opportunistic top-up is dropped — the contract is
		// "at least one".
		s.mu.Lock()
		if !s.closed {
			if more, merr := s.takeBatchLocked(tmpl, max-1, tx, txnID); merr == nil {
				out = append(out, more...)
			}
		}
		s.mu.Unlock()
	}
	return out, nil
}

// takeBatchLocked removes up to max visible matches in FIFO order under
// one journal group commit. Candidates are collected before anything is
// mutated — candidatesLocked returns live index slices that must not
// change mid-iteration. Returns (nil, nil) when nothing matches; a
// journaling error takes nothing.
func (s *Space) takeBatchLocked(tmpl Entry, max int, tx *txn.Transaction, txnID uint64) ([]Entry, error) {
	candidates, ok := s.candidatesLocked(tmpl)
	if !ok {
		return nil, nil
	}
	var picked []*storedEntry
	for _, id := range candidates {
		se := s.entries[id]
		if s.visibleLocked(se, txnID) && tmpl.Matches(se.entry) {
			picked = append(picked, se)
			if len(picked) == max {
				break
			}
		}
	}
	if len(picked) == 0 {
		return nil, nil
	}
	if err := s.checkGuardLocked(); err != nil {
		return nil, err
	}
	var part *spaceTxnPart
	if tx != nil {
		var err error
		if part, err = s.joinLocked(tx); err != nil {
			return nil, err
		}
	}
	if s.journal != nil {
		recs := make([]journalRecord, len(picked))
		for i, se := range picked {
			rec := journalRecord{Op: opTake, ID: se.id}
			// Taking an entry the transaction itself wrote removes it
			// outright, so (as in claimLocked) the record carries no txn tag.
			if tx != nil && se.writtenTxn != txnID {
				rec.Txn = txnID
			}
			recs[i] = rec
		}
		if err := s.journalBatchLocked(recs); err != nil {
			return nil, err
		}
	}
	out := make([]Entry, len(picked))
	for i, se := range picked {
		out[i] = se.entry.Clone()
		switch {
		case tx == nil:
			s.removeLocked(se)
		case se.writtenTxn == txnID:
			s.removeLocked(se)
			for j, id := range part.written {
				if id == se.id {
					part.written = append(part.written[:j], part.written[j+1:]...)
					break
				}
			}
		default:
			se.takenTxn = txnID
			part.taken = append(part.taken, se.id)
		}
	}
	return out, nil
}
