package space

import (
	"encoding/json"
	"fmt"
	"sync"
)

// PayloadCodec serializes entry field values that plain JSON cannot
// round-trip — rich payload objects such as exertion tasks. Packages that
// put such values into a durable space register a codec (package sorcer
// registers one for *Task); plain JSON-native values (strings, bools,
// float64s, maps, slices) need none.
//
// Encode reports ok=false when the value is not this codec's type; when it
// is, the returned bytes must be valid JSON (they are embedded verbatim in
// the journal record). Decode must invert Encode.
type PayloadCodec interface {
	// Name tags encoded values in the journal; it must be unique and
	// stable across restarts — it is part of the on-disk format.
	Name() string
	// Encode serializes v, or reports ok=false for foreign values.
	Encode(v any) (data []byte, ok bool)
	// Decode reverses Encode.
	Decode(data []byte) (any, error)
}

var (
	codecMu     sync.RWMutex
	codecs      []PayloadCodec
	codecByName = make(map[string]PayloadCodec)
)

// RegisterPayloadCodec installs a codec for durable field serialization.
// Typically called from an init function; registering two codecs with the
// same name panics (the name is an on-disk format tag).
func RegisterPayloadCodec(c PayloadCodec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByName[c.Name()]; dup {
		panic(fmt.Sprintf("space: payload codec %q registered twice", c.Name()))
	}
	codecByName[c.Name()] = c
	codecs = append(codecs, c)
}

// opaqueCodec tags values no codec claimed and JSON rejected (channels,
// functions, cyclic payloads). They survive as nil after recovery: the
// entry and its matchable fields persist, the opaque payload does not.
const opaqueCodec = "opaque"

// fieldWire is one serialized entry field. An empty Codec means native
// JSON.
type fieldWire struct {
	Codec string          `json:"c,omitempty"`
	Data  json.RawMessage `json:"d,omitempty"`
}

// encodeFields serializes an entry's field map for journaling. Values are
// tried against registered codecs first, then native JSON; unserializable
// values degrade to opaque (recovered as nil).
func encodeFields(fields map[string]any) map[string]fieldWire {
	if fields == nil {
		return nil
	}
	out := make(map[string]fieldWire, len(fields))
	codecMu.RLock()
	defer codecMu.RUnlock()
	for k, v := range fields {
		out[k] = encodeFieldLocked(v)
	}
	return out
}

func encodeFieldLocked(v any) fieldWire {
	for _, c := range codecs {
		if data, ok := c.Encode(v); ok {
			return fieldWire{Codec: c.Name(), Data: data}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fieldWire{Codec: opaqueCodec}
	}
	return fieldWire{Data: raw}
}

// decodeFields reverses encodeFields. Numeric values come back as float64
// (JSON semantics, matching package attr's canonical kinds); template
// fields on durable entries should therefore stick to strings, bools and
// float64s.
func decodeFields(wire map[string]fieldWire) (map[string]any, error) {
	if wire == nil {
		return nil, nil
	}
	out := make(map[string]any, len(wire))
	codecMu.RLock()
	defer codecMu.RUnlock()
	for k, w := range wire {
		switch w.Codec {
		case "":
			var v any
			if err := json.Unmarshal(w.Data, &v); err != nil {
				return nil, fmt.Errorf("space: decoding field %q: %w", k, err)
			}
			out[k] = v
		case opaqueCodec:
			out[k] = nil
		default:
			c, ok := codecByName[w.Codec]
			if !ok {
				return nil, fmt.Errorf("space: field %q uses unregistered codec %q", k, w.Codec)
			}
			v, err := c.Decode(w.Data)
			if err != nil {
				return nil, fmt.Errorf("space: codec %q decoding field %q: %w", w.Codec, k, err)
			}
			out[k] = v
		}
	}
	return out, nil
}
