package space

import (
	"encoding/json"
	"fmt"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
)

// Journal is the durability contract the space writes through: the subset
// of *wal.Log the space relies on, lifted to an interface so the
// replication layer (internal/repl) can substitute a journal that ships
// every batch to a backup before acknowledging it. A nil Journal field
// means the space is volatile.
type Journal interface {
	// Append durably adds one record and returns its sequence.
	//
	//lint:blockok journal-before-ack: the space journals inside its critical section so journal order, ship order and memory order agree
	Append(payload []byte) (uint64, error)
	// AppendBatch durably adds every payload under one acknowledgement.
	//
	//lint:blockok journal-before-ack: the space journals inside its critical section so journal order, ship order and memory order agree
	AppendBatch(payloads [][]byte) (uint64, error)
	// WriteSnapshot records a point-in-time state and compacts the log.
	//
	//lint:blockok journal-before-ack: checkpoints run under s.mu so the snapshot is a consistent cut of the space
	WriteSnapshot(data []byte) error
	// Snapshot returns the latest snapshot, if any.
	Snapshot() (data []byte, seq uint64, taken time.Time, ok bool)
	// Replay streams every record after the snapshot in sequence order.
	Replay(fn func(seq uint64, payload []byte) error) error
}

// SetGuard installs a check consulted — under s.mu, before the journal
// record for any mutation is appended — by every durable mutation path.
// The replication layer uses it for epoch fencing: a primary that has
// been superseded installs a guard returning its fencing error, so no
// write, take, expire, commit or abort can be journaled (and therefore
// acknowledged) under a stale epoch. A nil guard (the default) admits
// everything.
func (s *Space) SetGuard(fn func() error) {
	s.mu.Lock()
	s.guard = fn
	s.mu.Unlock()
}

// checkGuardLocked consults the mutation guard. Caller holds s.mu. Every
// function that journals (journalLocked / journalBatchLocked callers)
// must call this first — the epochguard lint check enforces it.
//
//lint:blockok replication hook: the guard runs inside the space's critical section by contract (epoch fencing must observe mutation order), and the replicated guard ships over RPC
func (s *Space) checkGuardLocked() error {
	if s.guard == nil {
		return nil
	}
	return s.guard()
}

// Journal operation tags (on-disk format).
const (
	opWrite  = "write"
	opTake   = "take"
	opExpire = "expire"
	opCommit = "commit"
	opAbort  = "abort"
)

// journalRecord is one redo-log entry. Write/take records are tagged with
// the staging transaction (0 = none); commit/abort records resolve it.
type journalRecord struct {
	Op      string               `json:"op"`
	ID      uint64               `json:"id,omitempty"`
	Txn     uint64               `json:"txn,omitempty"`
	Kind    string               `json:"kind,omitempty"`
	Fields  map[string]fieldWire `json:"fields,omitempty"`
	LeaseMS int64                `json:"leaseMs,omitempty"`
}

// spaceSnapshot is the checkpoint format: every stored entry (including
// transaction staging tags) plus the id high-water mark. LeaseMS holds the
// lease time remaining at checkpoint, rebased onto the recovery clock.
type spaceSnapshot struct {
	NextID  uint64      `json:"nextId"`
	Entries []entryWire `json:"entries"`
}

type entryWire struct {
	ID         uint64               `json:"id"`
	Kind       string               `json:"kind"`
	Fields     map[string]fieldWire `json:"fields,omitempty"`
	WrittenTxn uint64               `json:"writtenTxn,omitempty"`
	TakenTxn   uint64               `json:"takenTxn,omitempty"`
	LeaseMS    int64                `json:"leaseMs"`
}

// journalLocked appends a record to the journal (no-op for volatile
// spaces). Callers hold s.mu, which serializes journal order with memory
// order. An error means the record is not durable: the caller must not
// apply (or must undo) the operation.
func (s *Space) journalLocked(rec journalRecord) error {
	if s.journal == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("space: encoding journal record: %w", err)
	}
	if _, err := s.journal.Append(b); err != nil {
		return fmt.Errorf("space: journaling %s: %w", rec.Op, err)
	}
	return nil
}

// journalBatchLocked appends every record as one WAL group commit —
// the durable spine of WriteBatch/TakeAny. Same contract as
// journalLocked, amortized: an error means none of the records may be
// applied (the underlying log fails stop, so no partial batch is ever
// acknowledged).
func (s *Space) journalBatchLocked(recs []journalRecord) error {
	if s.journal == nil || len(recs) == 0 {
		return nil
	}
	payloads := make([][]byte, len(recs))
	for i := range recs {
		b, err := json.Marshal(recs[i])
		if err != nil {
			return fmt.Errorf("space: encoding journal record: %w", err)
		}
		payloads[i] = b
	}
	if _, err := s.journal.AppendBatch(payloads); err != nil {
		return fmt.Errorf("space: journaling batch of %d: %w", len(recs), err)
	}
	return nil
}

// Recover opens a durable tuple space backed by log: it loads the latest
// snapshot, replays the records after it, and attaches the log so every
// subsequent mutation is journaled before it is acknowledged.
//
// Replay restores exactly the acknowledged state, under three invariants
// the crash-recovery chaos suite asserts:
//
//   - no acked write is lost: a Write that returned nil is present after
//     recovery (until taken or expired);
//   - no entry is taken twice: an acked Take is durable, so the entry
//     cannot reappear;
//   - no aborted transaction is resurrected: staged writes of aborted —
//     or unresolved, i.e. in flight at the crash — transactions are
//     dropped, and their staged takes are restored.
//
// Entry leases are rebased onto the recovery clock: an entry written with
// lease duration d (or holding d-remaining at the last checkpoint) gets a
// fresh grant of d from now. Rebasing is conservative — recovery never
// shortens a lease below what was promised, it restarts it.
func Recover(clock clockwork.Clock, policy lease.Policy, log Journal) (*Space, error) {
	s := New(clock, policy)
	staged := make(map[uint64]*entryWire)
	var order []uint64 // ids in first-seen order, for deterministic FIFO
	maxID := uint64(0)
	note := func(id uint64) {
		if id > maxID {
			maxID = id
		}
	}

	if data, _, _, ok := log.Snapshot(); ok {
		var snap spaceSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("space: decoding snapshot: %w", err)
		}
		note(snap.NextID)
		for i := range snap.Entries {
			ew := snap.Entries[i]
			staged[ew.ID] = &ew
			order = append(order, ew.ID)
			note(ew.ID)
		}
	}

	err := log.Replay(func(_ uint64, payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("space: decoding journal record: %w", err)
		}
		switch rec.Op {
		case opWrite:
			staged[rec.ID] = &entryWire{
				ID: rec.ID, Kind: rec.Kind, Fields: rec.Fields,
				WrittenTxn: rec.Txn, LeaseMS: rec.LeaseMS,
			}
			order = append(order, rec.ID)
			note(rec.ID)
		case opTake:
			if rec.Txn == 0 {
				delete(staged, rec.ID)
			} else if ew, ok := staged[rec.ID]; ok {
				ew.TakenTxn = rec.Txn
			}
			note(rec.ID)
		case opExpire:
			delete(staged, rec.ID)
			note(rec.ID)
		case opCommit:
			for id, ew := range staged {
				if ew.WrittenTxn == rec.Txn {
					ew.WrittenTxn = 0
				}
				if ew.TakenTxn == rec.Txn {
					delete(staged, id)
				}
			}
		case opAbort:
			for id, ew := range staged {
				if ew.WrittenTxn == rec.Txn {
					delete(staged, id)
				}
				if ew.TakenTxn == rec.Txn {
					ew.TakenTxn = 0
				}
			}
		default:
			return fmt.Errorf("space: unknown journal op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Resolve transactions that were in flight at the crash: their commit
	// record is missing, so they abort — staged writes vanish, staged
	// takes are restored.
	for id, ew := range staged {
		if ew.WrittenTxn != 0 {
			delete(staged, id)
			continue
		}
		ew.TakenTxn = 0
	}

	for _, id := range order {
		ew, ok := staged[id]
		if !ok || s.entries[id] != nil {
			continue
		}
		fields, err := decodeFields(ew.Fields)
		if err != nil {
			return nil, err
		}
		lse := s.leases.Grant(time.Duration(ew.LeaseMS) * time.Millisecond)
		se := &storedEntry{
			id:      id,
			entry:   Entry{Kind: ew.Kind, Fields: fields},
			leaseID: lse.ID,
		}
		s.entries[id] = se
		s.byLease[lse.ID] = id
		s.indexAddLocked(se)
	}
	s.nextID = maxID
	s.journal = log
	return s, nil
}

// Checkpoint writes a snapshot of the space's durable state to the journal
// and compacts it, bounding recovery time. Transaction staging tags are
// included, so a checkpoint taken mid-transaction still aborts correctly
// if the commit record never lands. Volatile spaces return nil.
func (s *Space) Checkpoint() error {
	if s.journal == nil {
		return nil
	}
	s.leases.Sweep()
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	snap := spaceSnapshot{NextID: s.nextID}
	for _, se := range s.entries {
		exp, ok := s.leases.Expiration(se.leaseID)
		if !ok {
			continue // lapsed but not yet swept
		}
		snap.Entries = append(snap.Entries, entryWire{
			ID:         se.id,
			Kind:       se.entry.Kind,
			Fields:     encodeFields(se.entry.Fields),
			WrittenTxn: se.writtenTxn,
			TakenTxn:   se.takenTxn,
			LeaseMS:    int64(exp.Sub(now) / time.Millisecond),
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("space: encoding snapshot: %w", err)
	}
	if err := s.journal.WriteSnapshot(data); err != nil {
		return fmt.Errorf("space: checkpoint: %w", err)
	}
	return nil
}
