package space

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

func TestWriteBatchVisibilityAndFIFO(t *testing.T) {
	_, s := newSpace(t)
	batch := []Entry{task("avg", 0), task("avg", 1), task("avg", 2)}
	leases, err := s.WriteBatch(batch, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 3 {
		t.Fatalf("got %d leases, want 3", len(leases))
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
	// Batch order is FIFO order for takers.
	for i := 0; i < 3; i++ {
		e, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e.Field("n") != i {
			t.Fatalf("take %d = n=%v, want %d", i, e.Field("n"), i)
		}
	}
	if got, err := s.WriteBatch(nil, nil, time.Minute); err != nil || got != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := s.WriteBatch([]Entry{{}}, nil, time.Minute); err == nil {
		t.Fatal("kindless entry accepted")
	}
}

func TestWriteBatchLeaseCancelRemovesEntry(t *testing.T) {
	_, s := newSpace(t)
	leases, err := s.WriteBatch([]Entry{task("avg", 0), task("avg", 1)}, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := leases[0].Cancel(); err != nil {
		t.Fatal(err)
	}
	e, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Field("n") != 1 {
		t.Fatalf("surviving entry n=%v, want 1", e.Field("n"))
	}
}

func TestWriteBatchWakesBlockedTakers(t *testing.T) {
	_, s := newSpace(t)
	const n = 3
	got := make(chan Entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := s.Take(NewEntry("ExertionEnvelope"), nil, Forever)
			if err != nil {
				t.Errorf("blocked take: %v", err)
				return
			}
			got <- e
		}()
	}
	// Let the takers block, then satisfy all of them with one batch.
	time.Sleep(10 * time.Millisecond)
	if _, err := s.WriteBatch([]Entry{task("avg", 0), task("avg", 1), task("avg", 2)}, nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(got)
	seen := map[any]bool{}
	for e := range got {
		seen[e.Field("n")] = true
	}
	if len(seen) != n {
		t.Fatalf("takers saw %d distinct entries, want %d", len(seen), n)
	}
}

func TestTakeAnyDrainsUpToMax(t *testing.T) {
	_, s := newSpace(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Write(task("avg", i), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 3, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("TakeAny = %d entries, want 3", len(out))
	}
	for i, e := range out {
		if e.Field("n") != i {
			t.Fatalf("entry %d = n=%v, want %d (FIFO)", i, e.Field("n"), i)
		}
	}
	out, err = s.TakeAny(NewEntry("ExertionEnvelope"), 10, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("second TakeAny = %d entries, want the remaining 2", len(out))
	}
	if _, err := s.TakeAny(NewEntry("ExertionEnvelope"), 1, nil, 0); err != ErrTimeout {
		t.Fatalf("empty TakeAny err = %v, want ErrTimeout", err)
	}
	if _, err := s.TakeAny(NewEntry("ExertionEnvelope"), 0, nil, 0); err == nil {
		t.Fatal("non-positive max accepted")
	}
}

func TestTakeAnyBlocksForFirstEntry(t *testing.T) {
	_, s := newSpace(t)
	done := make(chan []Entry, 1)
	go func() {
		out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 4, nil, Forever)
		if err != nil {
			t.Errorf("TakeAny: %v", err)
		}
		done <- out
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.WriteBatch([]Entry{task("avg", 0), task("avg", 1)}, nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if len(out) == 0 {
		t.Fatal("TakeAny returned nothing after a write")
	}
	// Whatever TakeAny left behind is still takeable; nothing is lost or
	// duplicated.
	rest := 0
	for {
		if _, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
			break
		}
		rest++
	}
	if len(out)+rest != 2 {
		t.Fatalf("batch of 2 split into %d + %d", len(out), rest)
	}
}

func TestTakeAnyTimeout(t *testing.T) {
	fc, s := newSpace(t)
	done := make(chan error, 1)
	go func() {
		_, err := s.TakeAny(NewEntry("ExertionEnvelope"), 2, nil, time.Second)
		done <- err
	}()
	for fc.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	fc.Advance(2 * time.Second)
	if err := <-done; err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestWriteBatchTxnStagedUntilCommit(t *testing.T) {
	fc, s := newSpace(t)
	mgr := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := mgr.Create(time.Minute)
	if _, err := s.WriteBatch([]Entry{task("avg", 0), task("avg", 1)}, tx, time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("staged batch visible outside txn: Count = %d", n)
	}
	// Visible inside: the writer's transaction can TakeAny its own batch.
	out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 1, tx, 0)
	if err != nil || len(out) != 1 {
		t.Fatalf("in-txn TakeAny = (%d, %v)", len(out), err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 1 {
		t.Fatalf("after commit Count = %d, want 1 (one taken in-txn)", n)
	}
}

func TestTakeAnyTxnAbortRestores(t *testing.T) {
	fc, s := newSpace(t)
	mgr := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	for i := 0; i < 3; i++ {
		if _, err := s.Write(task("avg", i), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := mgr.Create(time.Minute)
	out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 3, tx, 0)
	if err != nil || len(out) != 3 {
		t.Fatalf("TakeAny = (%d, %v)", len(out), err)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("provisionally taken entries visible: Count = %d", n)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 3 {
		t.Fatalf("after abort Count = %d, want 3", n)
	}
}

func TestBatchDurableReplay(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	if _, err := s.WriteBatch([]Entry{envelope("avg", 0), envelope("avg", 1), envelope("avg", 2), envelope("avg", 3)}, nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 2, nil, 0)
	if err != nil || len(out) != 2 {
		t.Fatalf("TakeAny = (%d, %v)", len(out), err)
	}
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, re, _ := durableSpace(t, dir)
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 2 {
		t.Fatalf("recovered Count = %d, want 2", n)
	}
	// The two batch-taken entries must not reappear.
	for _, e := range out {
		tmpl := NewEntry("ExertionEnvelope", "n", e.Field("n"))
		if re.Count(tmpl) != 0 {
			t.Fatalf("batch-taken entry n=%v resurrected", e.Field("n"))
		}
	}
}

// TestBatchConcurrentExactAccounting hammers WriteBatch/TakeAny from many
// goroutines and checks nothing is lost or duplicated (run under -race).
func TestBatchConcurrentExactAccounting(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	s := New(fc, lease.Policy{Max: time.Hour})
	const (
		producers = 4
		rounds    = 20
		batchN    = 5
		total     = producers * rounds * batchN
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := make([]Entry, batchN)
				for i := range batch {
					batch[i] = NewEntry("ExertionEnvelope", "tag", fmt.Sprintf("p%d-r%d-%d", p, r, i))
				}
				if _, err := s.WriteBatch(batch, nil, time.Hour); err != nil {
					t.Errorf("WriteBatch: %v", err)
					return
				}
			}
		}(p)
	}
	var (
		mu   sync.Mutex
		seen = map[string]int{}
		got  int
	)
	consumerWG := sync.WaitGroup{}
	for c := 0; c < producers; c++ {
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			for {
				out, err := s.TakeAny(NewEntry("ExertionEnvelope"), 8, nil, 0)
				if err != nil {
					mu.Lock()
					fin := got >= total
					mu.Unlock()
					if fin {
						return
					}
					continue
				}
				mu.Lock()
				for _, e := range out {
					seen[e.Field("tag").(string)]++
					got++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	consumerWG.Wait()
	s.Close()
	if len(seen) != total {
		t.Fatalf("saw %d distinct entries, want %d", len(seen), total)
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("entry %s taken %d times", tag, n)
		}
	}
}
