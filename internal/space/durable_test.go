package space

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
	"sensorcer/internal/wal"
)

// openLog opens a WAL in dir with fsync disabled (these tests crash by
// reopening the directory, not by killing the process, so the page cache
// is always intact — syncing would only slow the suite down).
func openLog(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// durableSpace recovers a space from dir on a fresh fake clock.
func durableSpace(t *testing.T, dir string) (*clockwork.Fake, *Space, *wal.Log) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	l := openLog(t, dir)
	s, err := Recover(fc, lease.Policy{Max: time.Hour}, l)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		_ = l.Close()
	})
	return fc, s, l
}

// envelope builds a durable-friendly entry: JSON round-trips float64s and
// strings losslessly, so templates keep matching after recovery.
func envelope(sig string, n float64) Entry {
	return NewEntry("ExertionEnvelope", "signature", sig, "n", n)
}

func TestRecoverEmptyLogYieldsUsableSpace(t *testing.T) {
	_, s, _ := durableSpace(t, t.TempDir())
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("fresh recovered space has %d entries", n)
	}
	if _, err := s.Write(envelope("avg", 1), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 1 {
		t.Fatalf("Count = %d after write", n)
	}
}

func TestAckedWritesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := s.Write(envelope("avg", float64(i)), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, re, _ := durableSpace(t, dir)
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 5 {
		t.Fatalf("recovered %d entries, want 5", n)
	}
	// FIFO order survives: takes drain in original write order.
	var got []float64
	for i := 0; i < 5; i++ {
		e, err := re.Take(NewEntry("ExertionEnvelope"), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Field("n").(float64))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("recovered takes out of write order: %v", got)
	}
}

func TestTakenEntryNotResurrected(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	s.Write(envelope("avg", 1), nil, time.Minute)
	s.Write(envelope("max", 2), nil, time.Minute)
	if _, err := s.Take(NewEntry("ExertionEnvelope", "signature", "avg"), nil, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Take(NewEntry("ExertionEnvelope", "signature", "avg"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("taken entry resurrected after restart (err=%v)", err)
	}
	if _, err := re.Take(NewEntry("ExertionEnvelope", "signature", "max"), nil, 0); err != nil {
		t.Fatalf("untaken entry lost: %v", err)
	}
}

// TestUnresolvedTxnAbortsOnReplay crashes a space mid-transaction — after
// the staged write and take landed, before any commit record — and checks
// recovery resolves the transaction by aborting: the staged write
// vanishes, the provisional take is restored.
func TestUnresolvedTxnAbortsOnReplay(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("preexisting", 1), nil, time.Minute)

	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	if _, err := s.Write(envelope("staged", 2), tx, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Take(NewEntry("ExertionEnvelope", "signature", "preexisting"), tx, 0); err != nil {
		t.Fatal(err)
	}
	// Crash: no commit, no abort.
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("unresolved txn's staged write resurrected (err=%v)", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "preexisting"), nil, 0); err != nil {
		t.Fatalf("unresolved txn's provisional take not restored: %v", err)
	}
}

func TestCommittedTxnSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("victim", 1), nil, time.Minute)

	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(envelope("staged", 2), tx, time.Minute)
	s.Take(NewEntry("ExertionEnvelope", "signature", "victim"), tx, 0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); err != nil {
		t.Fatalf("committed write lost: %v", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "victim"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("committed take resurrected (err=%v)", err)
	}
}

func TestAbortedTxnNotResurrected(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("victim", 1), nil, time.Minute)

	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(envelope("staged", 2), tx, time.Minute)
	s.Take(NewEntry("ExertionEnvelope", "signature", "victim"), tx, 0)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("aborted write resurrected (err=%v)", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "victim"), nil, 0); err != nil {
		t.Fatalf("aborted take not restored: %v", err)
	}
}

// TestTxnLeaseExpiryAbortsMidTransaction expires a transaction's lease
// while it holds a staged write and a provisional take: the manager's
// sweep aborts it, the abort is journaled, and a restart agrees — the
// staged write stays dead and the take stays restored.
func TestTxnLeaseExpiryAbortsMidTransaction(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("victim", 1), nil, time.Hour)

	tm := txn.NewManager(fc, lease.Policy{Max: time.Minute})
	tx, _ := tm.Create(time.Minute)
	s.Write(envelope("staged", 2), tx, time.Hour)
	s.Take(NewEntry("ExertionEnvelope", "signature", "victim"), tx, 0)

	// The transaction's owner dies: no renewals, the lease lapses, the
	// manager aborts mid-transaction.
	fc.Advance(2 * time.Minute)
	tm.Sweep()
	if _, err := s.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired txn's staged write still visible (err=%v)", err)
	}
	if _, err := s.Read(NewEntry("ExertionEnvelope", "signature", "victim"), nil, 0); err != nil {
		t.Fatalf("expired txn's take not restored: %v", err)
	}

	s.Close()
	_ = l.Close()
	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired txn's staged write resurrected after restart (err=%v)", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "victim"), nil, 0); err != nil {
		t.Fatalf("expired txn's restored take lost after restart: %v", err)
	}
}

// TestTornCommitRecordAbortsTxn chops the tail off the journal's final
// record — the commit — simulating a crash mid-commit-write. With the
// commit record gone, replay must abort the transaction.
func TestTornCommitRecordAbortsTxn(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(envelope("staged", 1), tx, time.Minute)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_ = l.Close()

	// Tear the last record (the commit) by truncating a few bytes.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err=%v)", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("txn with torn commit record resurrected its write (err=%v)", err)
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	for i := 0; i < 50; i++ {
		s.Write(envelope("avg", float64(i)), nil, time.Minute)
	}
	if _, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotSeq() == 0 {
		t.Fatal("checkpoint wrote no snapshot")
	}
	// Post-checkpoint traffic replays on top of the snapshot.
	s.Write(envelope("late", 1000), nil, time.Minute)
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 50 {
		t.Fatalf("recovered %d entries, want 50 (49 checkpointed + 1 late)", n)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "late"), nil, 0); err != nil {
		t.Fatalf("post-checkpoint write lost: %v", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "n", float64(0)), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("pre-checkpoint take resurrected (err=%v)", err)
	}
}

// TestCheckpointMidTxnStillAborts takes a checkpoint while a transaction
// is staged and never commits it: the snapshot carries the staging tags,
// so recovery must still abort the transaction.
func TestCheckpointMidTxnStillAborts(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("preexisting", 1), nil, time.Minute)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(envelope("staged", 2), tx, time.Minute)
	s.Take(NewEntry("ExertionEnvelope", "signature", "preexisting"), tx, 0)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "staged"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("checkpointed staged write resurrected (err=%v)", err)
	}
	if _, err := re.Read(NewEntry("ExertionEnvelope", "signature", "preexisting"), nil, 0); err != nil {
		t.Fatalf("checkpointed provisional take not restored: %v", err)
	}
}

func TestRecoveryRebasesLeases(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	s.Write(envelope("avg", 1), nil, time.Minute)
	s.Close()
	_ = l.Close()

	// Recover on a clock far past the original expiration: the lease is
	// rebased, not compared against wall time, so the entry is alive.
	fc := clockwork.NewFake(epoch.Add(24 * time.Hour))
	rl := openLog(t, dir)
	re, err := Recover(fc, lease.Policy{Max: time.Hour}, rl)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { re.Close(); _ = rl.Close() }()
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 1 {
		t.Fatalf("rebased entry absent, Count = %d", n)
	}
	// And it re-expires one rebased duration later.
	fc.Advance(2 * time.Minute)
	re.Sweep()
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("rebased lease never expires, Count = %d", n)
	}
}

func TestExpiredEntryStaysDeadAfterRestart(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("avg", 1), nil, time.Minute)
	fc.Advance(2 * time.Minute)
	s.Sweep() // journals the expire record
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	if n := re.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("expired entry resurrected, Count = %d", n)
	}
}

// TestJournalFailureFailsWrite injects a WAL append fault: the write must
// fail (not be acked) and leave nothing behind — a record that is not
// durable must not be applied.
func TestJournalFailureFailsWrite(t *testing.T) {
	dir := t.TempDir()
	fc, s, l := durableSpace(t, dir)
	s.Write(envelope("before", 1), nil, time.Minute)

	inj := faults.New(1, fc)
	inj.Set(wal.FaultSiteAppend, faults.Rule{ErrorRate: 1})
	l.SetFaultInjector(inj, "")
	if _, err := s.Write(envelope("doomed", 2), nil, time.Minute); err == nil {
		t.Fatal("write acked despite journal failure")
	}
	// The failed log is fail-stop: later takes cannot journal, so the
	// surviving entry stays put rather than being removed undurably.
	if _, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0); err == nil {
		t.Fatal("take succeeded without a durable record")
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 1 {
		t.Fatalf("Count = %d, want 1 (failed ops must not mutate)", n)
	}
}

// TestReplayedEntriesDoNotAliasJournalState pins the no-aliasing guarantee
// recovery depends on: mutating a field map the caller kept after Write
// must not leak into what a later recovery returns, and mutating a
// recovered entry's map must not corrupt the store.
func TestReplayedEntriesDoNotAliasJournalState(t *testing.T) {
	dir := t.TempDir()
	_, s, l := durableSpace(t, dir)
	e := envelope("avg", 1)
	if _, err := s.Write(e, nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	e.Fields["n"] = float64(999) // caller mutates after ack
	s.Close()
	_ = l.Close()

	_, re, _ := durableSpace(t, dir)
	got, err := re.Read(NewEntry("ExertionEnvelope"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Field("n") != float64(1) {
		t.Fatalf("recovered entry aliased caller mutation: n = %v", got.Field("n"))
	}
	got.Fields["n"] = float64(-5) // reader mutates their copy
	again, err := re.Read(NewEntry("ExertionEnvelope"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Field("n") != float64(1) {
		t.Fatalf("stored entry aliased reader mutation: n = %v", again.Field("n"))
	}
}
