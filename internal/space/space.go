// Package space implements a JavaSpaces-style tuple space: leased entries
// written, read and taken by template matching, with optional transactional
// visibility via package txn. SORCER's Spacer (pull-mode exertion
// federation) is built on it: a rendezvous peer writes task envelopes into
// the space and worker providers take envelopes matching their signatures —
// exactly the "exertion space" coordination model the paper's SORCER
// substrate provides.
package space

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

// Entry is a tuple: a kind plus named fields. Template matching follows
// JavaSpaces: kinds must be equal and every non-nil template field must
// equal the entry's field; absent/nil template fields are wildcards.
// Fields used in templates must be comparable; payload-only fields may hold
// anything.
type Entry struct {
	Kind   string
	Fields map[string]any
}

// NewEntry builds an entry from alternating key/value pairs.
func NewEntry(kind string, kv ...any) Entry {
	if len(kv)%2 != 0 {
		panic("space.NewEntry: odd number of key/value arguments")
	}
	e := Entry{Kind: kind, Fields: make(map[string]any, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		e.Fields[kv[i].(string)] = kv[i+1]
	}
	return e
}

// Clone returns a copy with its own field map: mutating the original's map
// (adding, removing or reassigning keys) cannot affect the clone, and vice
// versa. The copy is shallow one level down — field values themselves are
// shared, so payload values should be treated as immutable once written.
// The space clones on Write and on every Read/Take, so stored entries never
// alias caller-held maps; recovery rebuilds field maps from the journal, so
// replayed entries cannot alias pre-crash ones either.
func (e Entry) Clone() Entry {
	c := Entry{Kind: e.Kind}
	if e.Fields != nil {
		c.Fields = make(map[string]any, len(e.Fields))
		for k, v := range e.Fields {
			c.Fields[k] = v
		}
	}
	return c
}

// Field returns a field value (nil when absent).
func (e Entry) Field(name string) any { return e.Fields[name] }

// Matches reports whether candidate satisfies template e.
func (e Entry) Matches(candidate Entry) bool {
	if e.Kind != candidate.Kind {
		return false
	}
	for k, want := range e.Fields {
		if want == nil {
			continue // explicit wildcard
		}
		got, ok := candidate.Fields[k]
		if !ok || !equalValue(want, got) {
			return false
		}
	}
	return true
}

// equalValue compares two field values, tolerating non-comparable payloads
// (which never match templates).
func equalValue(a, b any) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// Forever blocks a Read/Take until a match arrives.
const Forever = time.Duration(1<<62 - 1)

// ErrTimeout is returned when no matching entry arrived in time.
var ErrTimeout = errors.New("space: timed out waiting for matching entry")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("space: closed")

type storedEntry struct {
	id      uint64
	entry   Entry
	leaseID uint64
	// writtenTxn is non-zero while the entry is staged by an uncommitted
	// transaction's write: visible only within that transaction.
	writtenTxn uint64
	// takenTxn is non-zero while the entry is held by an uncommitted
	// transaction's take: invisible to everyone else.
	takenTxn uint64
}

type waiter struct {
	template Entry
	take     bool
	txnID    uint64
	result   chan Entry
}

// Space is an in-process tuple space, safe for concurrent use.
type Space struct {
	id          ids.ServiceID
	clock       clockwork.Clock
	leases      *lease.Table
	notifLeases *lease.Table

	mu      sync.Mutex
	nextID  uint64
	entries map[uint64]*storedEntry
	byLease map[uint64]uint64 // leaseID -> entryID
	// byKind is the match index (see index.go): per-kind ascending id
	// lists plus a field-value inverted index, kept coherent with entries.
	byKind map[string]*kindIndex
	// waitq holds blocked Read/Take waiters FIFO per template kind, so an
	// arriving entry wakes only the waiters whose template kind it can
	// possibly satisfy.
	waitq  map[string][]*waiter
	txns   map[uint64]*spaceTxnPart
	notifs map[uint64]*spaceNotification
	closed bool

	// journal, when set, is the write-ahead log every mutation is recorded
	// in before it is acknowledged (see durable.go). Nil for volatile
	// spaces. The log's lifecycle belongs to whoever opened it.
	journal Journal
	// guard, when set, is consulted before any mutation is journaled —
	// the replication layer's epoch fence (see SetGuard).
	guard func() error

	// inj, when set, injects faults at sites "<site>/write" and
	// "<site>/take" (chaos testing only; nil in production).
	inj     *faults.Injector
	injSite string
}

// spaceNotification is one leased write-notification registration.
type spaceNotification struct {
	template Entry
	queue    chan Entry
	done     chan struct{}
}

const notifyQueue = 256

// New creates a tuple space whose entry leases follow policy.
func New(clock clockwork.Clock, policy lease.Policy) *Space {
	s := &Space{
		id:          ids.NewServiceID(),
		clock:       clock,
		leases:      lease.NewTable(clock, policy),
		notifLeases: lease.NewTable(clock, policy),
		entries:     make(map[uint64]*storedEntry),
		byLease:     make(map[uint64]uint64),
		byKind:      make(map[string]*kindIndex),
		waitq:       make(map[string][]*waiter),
		txns:        make(map[uint64]*spaceTxnPart),
		notifs:      make(map[uint64]*spaceNotification),
	}
	s.leases.OnExpire(s.onLeaseExpired)
	s.notifLeases.OnExpire(s.onNotifyLeaseExpired)
	return s
}

// Notify registers a leased listener invoked (asynchronously, in order,
// best-effort on overflow) with a copy of every entry that becomes
// visible outside a transaction and matches the template — JavaSpaces
// notify. Cancel the lease to stop.
func (s *Space) Notify(tmpl Entry, fn func(Entry), leaseDur time.Duration) (lease.Lease, error) {
	if fn == nil {
		return lease.Lease{}, errors.New("space: nil notify listener")
	}
	lse := s.notifLeases.Grant(leaseDur)
	n := &spaceNotification{
		template: tmpl,
		queue:    make(chan Entry, notifyQueue),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(n.done)
		for e := range n.queue {
			fn(e)
		}
	}()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(n.queue)
		_ = lse.Cancel()
		return lease.Lease{}, ErrClosed
	}
	s.notifs[lse.ID] = n
	s.mu.Unlock()
	// Cancelling the lease must also retire the registration, which the
	// grant table alone cannot do (its OnExpire fires only on sweeps).
	lse.Grantor = notifyGrantor{s: s}
	return lse, nil
}

// notifyGrantor forwards lease operations to the notification lease table
// and retires the registration on cancel.
type notifyGrantor struct{ s *Space }

// Renew implements lease.Grantor.
func (g notifyGrantor) Renew(id uint64, d time.Duration) (time.Time, error) {
	return g.s.notifLeases.Renew(id, d)
}

// Cancel implements lease.Grantor.
func (g notifyGrantor) Cancel(id uint64) error {
	err := g.s.notifLeases.Cancel(id)
	g.s.onNotifyLeaseExpired(id)
	return err
}

// notifyVisibleLocked fans a newly visible entry out to matching
// notification registrations. Caller holds s.mu.
func (s *Space) notifyVisibleLocked(e Entry) {
	for _, n := range s.notifs {
		if !n.template.Matches(e) {
			continue
		}
		select {
		case n.queue <- e.Clone():
		default: // drop on overflow
		}
	}
}

func (s *Space) onNotifyLeaseExpired(leaseID uint64) {
	s.mu.Lock()
	n, ok := s.notifs[leaseID]
	if ok {
		delete(s.notifs, leaseID)
		close(n.queue)
	}
	s.mu.Unlock()
	if ok {
		<-n.done
	}
}

// ID returns the space's service identity.
func (s *Space) ID() ids.ServiceID { return s.id }

// Fault-injection site suffixes appended to the base site handed to
// SetFaultInjector. They are the space's two chaos hook points.
const (
	// FaultSiteWrite is consulted by Write: injected errors fail the
	// write, drops lose the entry silently — the caller believes it was
	// stored.
	FaultSiteWrite = "/write"
	// FaultSiteTake is consulted by Read and Take: injected errors fail
	// the operation before matching.
	FaultSiteTake = "/take"
)

// SetFaultInjector arms chaos hooks: Write consults site
// "<site>"+FaultSiteWrite and Read/Take consult "<site>"+FaultSiteTake.
func (s *Space) SetFaultInjector(inj *faults.Injector, site string) {
	s.mu.Lock()
	s.inj = inj
	s.injSite = site
	s.mu.Unlock()
}

// faultHooks snapshots the injector under the lock.
func (s *Space) faultHooks() (*faults.Injector, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj, s.injSite
}

// Write stores an entry under a lease. With a transaction, the entry is
// visible only inside that transaction until it commits. On a durable
// space the entry is journaled before Write returns: a nil error means the
// write survives a crash.
func (s *Space) Write(e Entry, tx *txn.Transaction, leaseDur time.Duration) (lease.Lease, error) {
	if e.Kind == "" {
		return lease.Lease{}, errors.New("space: entry must have a kind")
	}
	inj, site := s.faultHooks()
	if err := inj.Inject(site + FaultSiteWrite); err != nil {
		return lease.Lease{}, err
	}
	lse := s.leases.Grant(leaseDur)
	if inj.Drop(site + FaultSiteWrite) {
		// Lost write: the caller gets a lease and believes the entry was
		// stored, but nothing ever becomes visible — the tuple-space
		// analogue of a message lost on the wire.
		return lse, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = lse.Cancel()
		return lease.Lease{}, ErrClosed
	}
	var part *spaceTxnPart
	txnID := uint64(0)
	if tx != nil {
		var err error
		if part, err = s.joinLocked(tx); err != nil {
			s.mu.Unlock()
			_ = lse.Cancel()
			return lease.Lease{}, err
		}
		txnID = tx.ID()
	}
	if err := s.checkGuardLocked(); err != nil {
		s.mu.Unlock()
		_ = lse.Cancel()
		return lease.Lease{}, err
	}
	id := s.nextID + 1
	if s.journal != nil {
		// Only a durable space pays for field encoding; volatile spaces
		// skip the record build entirely on this hot path.
		if err := s.journalLocked(journalRecord{
			Op: opWrite, ID: id, Txn: txnID, Kind: e.Kind,
			Fields:  encodeFields(e.Fields),
			LeaseMS: int64(leaseDur / time.Millisecond),
		}); err != nil {
			s.mu.Unlock()
			_ = lse.Cancel()
			return lease.Lease{}, err
		}
	}
	s.nextID = id
	se := &storedEntry{id: id, entry: e.Clone(), leaseID: lse.ID, writtenTxn: txnID}
	if part != nil {
		part.written = append(part.written, se.id)
	}
	s.entries[se.id] = se
	s.byLease[lse.ID] = se.id
	s.indexAddLocked(se)
	if se.writtenTxn == 0 {
		s.notifyVisibleLocked(se.entry)
	}
	s.wakeWaitersLocked(se)
	s.mu.Unlock()
	return lse, nil
}

// Read returns a copy of a matching entry without removing it, blocking up
// to timeout (0 = non-blocking, Forever = indefinitely).
func (s *Space) Read(tmpl Entry, tx *txn.Transaction, timeout time.Duration) (Entry, error) {
	return s.acquire(tmpl, tx, timeout, false)
}

// Take removes and returns a matching entry, blocking up to timeout. Under
// a transaction the removal is provisional until commit.
func (s *Space) Take(tmpl Entry, tx *txn.Transaction, timeout time.Duration) (Entry, error) {
	return s.acquire(tmpl, tx, timeout, true)
}

// Count reports visible entries matching the template (outside any txn).
func (s *Space) Count(tmpl Entry) int {
	s.leases.Sweep()
	s.mu.Lock()
	defer s.mu.Unlock()
	candidates, ok := s.candidatesLocked(tmpl)
	if !ok {
		return 0
	}
	n := 0
	for _, id := range candidates {
		se := s.entries[id]
		if s.visibleLocked(se, 0) && tmpl.Matches(se.entry) {
			n++
		}
	}
	return n
}

// Sweep expires lapsed entry and notification leases.
func (s *Space) Sweep() {
	s.leases.Sweep()
	s.notifLeases.Sweep()
}

// Close fails all blocked operations, stops notifications and rejects new
// ones.
func (s *Space) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var ws []*waiter
	for _, q := range s.waitq {
		ws = append(ws, q...)
	}
	s.waitq = map[string][]*waiter{}
	notifs := make([]*spaceNotification, 0, len(s.notifs))
	for _, n := range s.notifs {
		notifs = append(notifs, n)
		close(n.queue)
	}
	s.notifs = map[uint64]*spaceNotification{}
	s.mu.Unlock()
	for _, w := range ws {
		close(w.result)
	}
	for _, n := range notifs {
		<-n.done
	}
}

func (s *Space) acquire(tmpl Entry, tx *txn.Transaction, timeout time.Duration, take bool) (Entry, error) {
	inj, site := s.faultHooks()
	if err := inj.Inject(site + FaultSiteTake); err != nil {
		return Entry{}, err
	}
	s.leases.Sweep()
	txnID := uint64(0)
	if tx != nil {
		txnID = tx.ID()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Entry{}, ErrClosed
	}
	if se := s.matchLocked(tmpl, txnID); se != nil {
		out, err := s.claimLocked(se, tx, take)
		s.mu.Unlock()
		return out, err
	}
	if timeout <= 0 {
		s.mu.Unlock()
		return Entry{}, ErrTimeout
	}
	w := &waiter{template: tmpl, take: take, txnID: txnID, result: make(chan Entry, 1)}
	s.waitq[tmpl.Kind] = append(s.waitq[tmpl.Kind], w)
	s.mu.Unlock()
	return s.awaitWaiter(w, tmpl.Kind, timeout)
}

// awaitWaiter blocks on a registered waiter until it is served, the space
// closes, or the timeout lapses (the waiter is then deregistered).
func (s *Space) awaitWaiter(w *waiter, kind string, timeout time.Duration) (Entry, error) {
	var timer clockwork.Timer
	var timeoutCh <-chan time.Time
	if timeout != Forever {
		timer = s.clock.NewTimer(timeout)
		timeoutCh = timer.C()
		defer timer.Stop()
	}
	select {
	case e, ok := <-w.result:
		if !ok {
			return Entry{}, ErrClosed
		}
		return e, nil
	case <-timeoutCh:
		s.mu.Lock()
		// Remove the waiter unless it was already served concurrently.
		q := s.waitq[kind]
		for i, cand := range q {
			if cand == w {
				s.waitq[kind] = append(q[:i], q[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		select {
		case e, ok := <-w.result:
			if ok {
				return e, nil // raced: served just before removal
			}
			return Entry{}, ErrClosed
		default:
			return Entry{}, ErrTimeout
		}
	}
}

// matchLocked finds the lowest-id visible entry matching tmpl for txnID.
// Candidates come from the kind/field index in ascending id order, so the
// first visible match is the FIFO winner.
func (s *Space) matchLocked(tmpl Entry, txnID uint64) *storedEntry {
	candidates, ok := s.candidatesLocked(tmpl)
	if !ok {
		return nil
	}
	for _, id := range candidates {
		se := s.entries[id]
		if s.visibleLocked(se, txnID) && tmpl.Matches(se.entry) {
			return se
		}
	}
	return nil
}

// visibleLocked reports whether txnID can see the entry.
func (s *Space) visibleLocked(se *storedEntry, txnID uint64) bool {
	if !s.leases.Valid(se.leaseID) {
		return false
	}
	if se.takenTxn != 0 && se.takenTxn != txnID {
		return false
	}
	if se.writtenTxn != 0 && se.writtenTxn != txnID {
		return false
	}
	return true
}

// claimLocked performs the read/take on a matched entry. Takes are
// journaled before the entry is touched: a journaling error leaves the
// entry intact and fails the operation.
func (s *Space) claimLocked(se *storedEntry, tx *txn.Transaction, take bool) (Entry, error) {
	if !take {
		return se.entry.Clone(), nil
	}
	if err := s.checkGuardLocked(); err != nil {
		return Entry{}, err
	}
	if tx == nil {
		if err := s.journalLocked(journalRecord{Op: opTake, ID: se.id}); err != nil {
			return Entry{}, err
		}
		s.removeLocked(se)
		return se.entry.Clone(), nil
	}
	part, err := s.joinLocked(tx)
	if err != nil {
		return Entry{}, err
	}
	if se.writtenTxn == tx.ID() {
		// Taking an entry this transaction itself wrote: net effect is
		// nothing, remove it outright. The removal is unconditional (it
		// stands even if the transaction later aborts), so the journal
		// record carries no txn tag.
		if err := s.journalLocked(journalRecord{Op: opTake, ID: se.id}); err != nil {
			return Entry{}, err
		}
		s.removeLocked(se)
		for i, id := range part.written {
			if id == se.id {
				part.written = append(part.written[:i], part.written[i+1:]...)
				break
			}
		}
		return se.entry.Clone(), nil
	}
	if err := s.journalLocked(journalRecord{Op: opTake, ID: se.id, Txn: tx.ID()}); err != nil {
		return Entry{}, err
	}
	se.takenTxn = tx.ID()
	part.taken = append(part.taken, se.id)
	return se.entry.Clone(), nil
}

func (s *Space) removeLocked(se *storedEntry) {
	delete(s.entries, se.id)
	delete(s.byLease, se.leaseID)
	s.indexRemoveLocked(se)
	_ = s.leases.Cancel(se.leaseID)
}

// wakeWaitersLocked offers one newly visible entry to the blocked
// operations whose template kind it carries, FIFO per arrival order. Only
// that kind's queue is consulted — waiters on other kinds cannot match and
// are not re-scanned, which keeps the wake cost independent of the
// unrelated waiter population.
//
//lint:blockok waiter result channels are buffered (capacity 1) and written at most once per waiter, so the send under s.mu cannot block
func (s *Space) wakeWaitersLocked(se *storedEntry) {
	kind := se.entry.Kind
	q := s.waitq[kind]
	if len(q) == 0 {
		return
	}
	remaining := q[:0]
	for i, w := range q {
		if _, live := s.entries[se.id]; !live {
			// A previous waiter consumed the entry outright; everyone else
			// keeps waiting.
			remaining = append(remaining, q[i:]...)
			break
		}
		if !s.visibleLocked(se, w.txnID) || !w.template.Matches(se.entry) {
			remaining = append(remaining, w)
			continue
		}
		var tx *txn.Transaction
		if w.txnID != 0 {
			if part, ok := s.txns[w.txnID]; ok {
				tx = part.tx
			}
		}
		out, err := s.claimLocked(se, tx, w.take)
		if err != nil {
			remaining = append(remaining, w)
			continue
		}
		w.result <- out
	}
	if len(remaining) == 0 {
		delete(s.waitq, kind)
	} else {
		s.waitq[kind] = remaining
	}
}

func (s *Space) onLeaseExpired(leaseID uint64) {
	s.mu.Lock()
	if err := s.checkGuardLocked(); err != nil {
		// Fenced: the promoted peer owns expiry now. The entry stays; the
		// superseded space is about to be closed anyway.
		s.mu.Unlock()
		return
	}
	if id, ok := s.byLease[leaseID]; ok {
		// Best-effort journaling: if the expire record fails to land,
		// replay re-grants the rebased lease and the entry re-expires
		// after recovery instead — expiry is idempotent.
		_ = s.journalLocked(journalRecord{Op: opExpire, ID: id})
		delete(s.byLease, leaseID)
		if se, ok := s.entries[id]; ok {
			delete(s.entries, id)
			s.indexRemoveLocked(se)
		}
	}
	s.mu.Unlock()
}

// --- transaction participation ---

type spaceTxnPart struct {
	space   *Space
	tx      *txn.Transaction
	written []uint64
	taken   []uint64
}

// joinLocked returns the participant state for tx, enrolling on first use.
func (s *Space) joinLocked(tx *txn.Transaction) (*spaceTxnPart, error) {
	if part, ok := s.txns[tx.ID()]; ok {
		return part, nil
	}
	part := &spaceTxnPart{space: s, tx: tx}
	if err := tx.Join(part); err != nil {
		return nil, fmt.Errorf("space: joining transaction: %w", err)
	}
	s.txns[tx.ID()] = part
	return part, nil
}

// Prepare implements txn.Participant.
func (p *spaceTxnPart) Prepare(uint64) (txn.Vote, error) {
	p.space.mu.Lock()
	defer p.space.mu.Unlock()
	if len(p.written) == 0 && len(p.taken) == 0 {
		return txn.VoteNotChanged, nil
	}
	return txn.VotePrepared, nil
}

// Commit implements txn.Participant: staged writes become visible and
// provisional takes become permanent. On a durable space the commit record
// must land before anything is applied — if it cannot, the commit fails
// and replay will abort the transaction, matching what a crash at this
// point would do.
func (p *spaceTxnPart) Commit(txnID uint64) error {
	p.space.mu.Lock()
	if err := p.space.checkGuardLocked(); err != nil {
		p.space.mu.Unlock()
		return err
	}
	if err := p.space.journalLocked(journalRecord{Op: opCommit, Txn: txnID}); err != nil {
		p.space.mu.Unlock()
		return err
	}
	var revealed []*storedEntry
	for _, id := range p.written {
		if se, ok := p.space.entries[id]; ok {
			se.writtenTxn = 0
			p.space.notifyVisibleLocked(se.entry)
			revealed = append(revealed, se)
		}
	}
	for _, id := range p.taken {
		if se, ok := p.space.entries[id]; ok {
			p.space.removeLocked(se)
		}
	}
	delete(p.space.txns, txnID)
	for _, se := range revealed {
		p.space.wakeWaitersLocked(se)
	}
	p.space.mu.Unlock()
	return nil
}

// Abort implements txn.Participant: staged writes vanish and provisional
// takes are restored. The abort record is best-effort — replay aborts any
// transaction without a commit record, so a lost abort record converges to
// the same state.
func (p *spaceTxnPart) Abort(txnID uint64) error {
	p.space.mu.Lock()
	// The abort record is best-effort and so is the fence: a fenced space
	// skips the journal (replay aborts unresolved transactions anyway) but
	// still rolls back its in-memory staging.
	if err := p.space.checkGuardLocked(); err == nil {
		_ = p.space.journalLocked(journalRecord{Op: opAbort, Txn: txnID})
	}
	for _, id := range p.written {
		if se, ok := p.space.entries[id]; ok {
			p.space.removeLocked(se)
		}
	}
	var restored []*storedEntry
	for _, id := range p.taken {
		if se, ok := p.space.entries[id]; ok {
			se.takenTxn = 0
			restored = append(restored, se)
		}
	}
	delete(p.space.txns, txnID)
	for _, se := range restored {
		p.space.wakeWaitersLocked(se)
	}
	p.space.mu.Unlock()
	return nil
}
