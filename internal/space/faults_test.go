package space

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

func TestFaultInjectorWriteError(t *testing.T) {
	s := New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer s.Close()
	inj := faults.New(1, clockwork.Real())
	inj.Set("sp"+FaultSiteWrite, faults.Rule{ErrorRate: 1})
	s.SetFaultInjector(inj, "sp")
	if _, err := s.Write(NewEntry("E"), nil, time.Minute); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
}

func TestFaultInjectorDroppedWriteIsSilentlyLost(t *testing.T) {
	s := New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer s.Close()
	inj := faults.New(1, clockwork.Real())
	inj.Set("sp"+FaultSiteWrite, faults.Rule{DropRate: 1})
	s.SetFaultInjector(inj, "sp")
	if _, err := s.Write(NewEntry("E"), nil, time.Minute); err != nil {
		t.Fatalf("dropped write must look successful, got %v", err)
	}
	if n := s.Count(NewEntry("E")); n != 0 {
		t.Fatalf("dropped entry is visible (%d)", n)
	}
	// Disarm: the space works normally again.
	inj.Clear("sp" + FaultSiteWrite)
	if _, err := s.Write(NewEntry("E"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(NewEntry("E")); n != 1 {
		t.Fatalf("post-heal entry count = %d", n)
	}
}

func TestFaultInjectorTakeError(t *testing.T) {
	s := New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer s.Close()
	if _, err := s.Write(NewEntry("E"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1, clockwork.Real())
	inj.Set("sp"+FaultSiteTake, faults.Rule{ErrorRate: 1})
	s.SetFaultInjector(inj, "sp")
	if _, err := s.Take(NewEntry("E"), nil, 0); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("take err = %v, want ErrInjected", err)
	}
	// The entry was not consumed by the failed take.
	s.SetFaultInjector(nil, "")
	if _, err := s.Take(NewEntry("E"), nil, 0); err != nil {
		t.Fatalf("entry lost to injected take: %v", err)
	}
}

// failingParticipant errors during prepare, forcing the transaction to
// abort — the co-participant crash scenario the space must roll back from.
type failingParticipant struct{}

func (failingParticipant) Prepare(uint64) (txn.Vote, error) {
	return txn.VotePrepared, errors.New("co-participant crashed in prepare")
}
func (failingParticipant) Commit(uint64) error { return nil }
func (failingParticipant) Abort(uint64) error  { return nil }

func TestSpaceRollsBackWhenCoParticipantFailsPrepare(t *testing.T) {
	fc := clockwork.NewFake(time.Unix(0, 0))
	s := New(fc, lease.Policy{Max: time.Hour})
	defer s.Close()
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})

	// Pre-existing entry the transaction provisionally takes.
	if _, err := s.Write(NewEntry("Old"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	tx, _ := tm.Create(time.Hour)
	if _, err := s.Take(NewEntry("Old"), tx, 0); err != nil {
		t.Fatal(err)
	}
	// Staged write, visible only inside the transaction.
	if _, err := s.Write(NewEntry("New"), tx, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := tx.Join(failingParticipant{}); err != nil {
		t.Fatal(err)
	}

	if err := tx.Commit(); !errors.Is(err, txn.ErrCommitAbort) {
		t.Fatalf("commit err = %v, want ErrCommitAbort", err)
	}
	// The staged write vanished with the abort...
	if n := s.Count(NewEntry("New")); n != 0 {
		t.Fatalf("aborted staged write visible (%d)", n)
	}
	// ...and the provisional take was restored for everyone.
	if n := s.Count(NewEntry("Old")); n != 1 {
		t.Fatalf("provisionally taken entry not restored (%d)", n)
	}
	if _, err := s.Take(NewEntry("Old"), nil, 0); err != nil {
		t.Fatalf("restored entry not takeable: %v", err)
	}
}
