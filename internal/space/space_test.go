package space

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newSpace(t *testing.T) (*clockwork.Fake, *Space) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	s := New(fc, lease.Policy{Max: time.Hour})
	t.Cleanup(s.Close)
	return fc, s
}

func task(name string, n int) Entry {
	return NewEntry("ExertionEnvelope", "signature", name, "n", n)
}

func TestWriteTakeRoundTrip(t *testing.T) {
	_, s := newSpace(t)
	if _, err := s.Write(task("avg", 1), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err := s.Take(NewEntry("ExertionEnvelope", "signature", "avg"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Field("n") != 1 {
		t.Fatalf("payload = %v", e.Field("n"))
	}
	if s.Count(NewEntry("ExertionEnvelope")) != 0 {
		t.Fatal("take did not remove entry")
	}
}

func TestReadDoesNotRemove(t *testing.T) {
	_, s := newSpace(t)
	s.Write(task("avg", 1), nil, time.Minute)
	for i := 0; i < 3; i++ {
		if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count(NewEntry("ExertionEnvelope")) != 1 {
		t.Fatal("read removed the entry")
	}
}

func TestTemplateWildcardsAndMismatch(t *testing.T) {
	_, s := newSpace(t)
	s.Write(task("avg", 1), nil, time.Minute)
	if _, err := s.Take(NewEntry("ExertionEnvelope", "signature", "max"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("mismatching take err = %v", err)
	}
	if _, err := s.Take(NewEntry("OtherKind"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("wrong-kind take err = %v", err)
	}
	// nil field value is an explicit wildcard.
	if _, err := s.Take(NewEntry("ExertionEnvelope", "signature", nil), nil, 0); err != nil {
		t.Fatalf("wildcard take err = %v", err)
	}
}

func TestFIFOOrderByWriteSequence(t *testing.T) {
	_, s := newSpace(t)
	for i := 1; i <= 3; i++ {
		s.Write(task("avg", i), nil, time.Minute)
	}
	for i := 1; i <= 3; i++ {
		e, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e.Field("n") != i {
			t.Fatalf("take %d returned n=%v", i, e.Field("n"))
		}
	}
}

func TestBlockingTakeServedByWrite(t *testing.T) {
	_, s := newSpace(t)
	got := make(chan Entry, 1)
	go func() {
		e, err := s.Take(NewEntry("ExertionEnvelope"), nil, Forever)
		if err == nil {
			got <- e
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the taker block
	s.Write(task("avg", 42), nil, time.Minute)
	select {
	case e := <-got:
		if e.Field("n") != 42 {
			t.Fatalf("got %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked take never served")
	}
}

func TestBlockingTakeTimesOut(t *testing.T) {
	fc, s := newSpace(t)
	errs := make(chan error, 1)
	go func() {
		_, err := s.Take(NewEntry("ExertionEnvelope"), nil, time.Minute)
		errs <- err
	}()
	// Let the waiter enqueue, then advance past the timeout.
	time.Sleep(10 * time.Millisecond)
	fc.Advance(2 * time.Minute)
	select {
	case err := <-errs:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take never timed out")
	}
}

func TestEntryLeaseExpiryRemoves(t *testing.T) {
	fc, s := newSpace(t)
	s.Write(task("avg", 1), nil, time.Minute)
	fc.Advance(2 * time.Minute)
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("Count = %d after lease expiry", n)
	}
}

func TestOnlyOneTakerWins(t *testing.T) {
	// Real clock: losing takers must be released by their own timeouts.
	s := New(clockwork.Real(), lease.Policy{Max: time.Hour})
	t.Cleanup(s.Close)
	const takers = 16
	var wg sync.WaitGroup
	wins := make(chan Entry, takers)
	for i := 0; i < takers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e, err := s.Take(NewEntry("ExertionEnvelope"), nil, 100*time.Millisecond); err == nil {
				wins <- e
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Write(task("avg", 7), nil, time.Minute)
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d takers won, want exactly 1", n)
	}
}

func TestTxnWriteInvisibleUntilCommit(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(task("avg", 1), tx, time.Minute)

	if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatal("uncommitted write visible outside txn")
	}
	// Visible inside the writing txn.
	if _, err := s.Read(NewEntry("ExertionEnvelope"), tx, 0); err != nil {
		t.Fatalf("own write invisible: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
		t.Fatal("committed write not visible")
	}
}

func TestTxnWriteDiscardedOnAbort(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(task("avg", 1), tx, time.Minute)
	tx.Abort()
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("aborted write persisted, Count = %d", n)
	}
}

func TestTxnTakeRestoredOnAbort(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	s.Write(task("avg", 1), nil, time.Minute)
	tx, _ := tm.Create(time.Minute)
	if _, err := s.Take(NewEntry("ExertionEnvelope"), tx, 0); err != nil {
		t.Fatal(err)
	}
	// Invisible to others while held.
	if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatal("provisionally taken entry still visible")
	}
	tx.Abort()
	if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
		t.Fatal("aborted take did not restore entry")
	}
}

func TestTxnTakeFinalizedOnCommit(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	s.Write(task("avg", 1), nil, time.Minute)
	tx, _ := tm.Create(time.Minute)
	s.Take(NewEntry("ExertionEnvelope"), tx, 0)
	tx.Commit()
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("committed take left entry, Count = %d", n)
	}
}

func TestTxnWriteThenTakeSameTxn(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	tx, _ := tm.Create(time.Minute)
	s.Write(task("avg", 1), tx, time.Minute)
	if _, err := s.Take(NewEntry("ExertionEnvelope"), tx, 0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 0 {
		t.Fatalf("net-zero txn left entry, Count = %d", n)
	}
}

func TestTxnLeaseExpiryRestoresTake(t *testing.T) {
	// A federation that dies mid-exertion: its txn lease lapses and the
	// taken envelope returns to the space for another worker.
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Minute})
	s.Write(task("avg", 1), nil, time.Hour)
	tx, _ := tm.Create(time.Minute)
	s.Take(NewEntry("ExertionEnvelope"), tx, 0)
	fc.Advance(2 * time.Minute)
	tm.Sweep()
	if _, err := s.Read(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
		t.Fatal("crashed worker's take was not restored")
	}
}

func TestCommittedWriteWakesBlockedTaker(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	got := make(chan Entry, 1)
	go func() {
		if e, err := s.Take(NewEntry("ExertionEnvelope"), nil, Forever); err == nil {
			got <- e
		}
	}()
	time.Sleep(10 * time.Millisecond)
	tx, _ := tm.Create(time.Minute)
	s.Write(task("avg", 5), tx, time.Minute)
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("taker served before commit")
	default:
	}
	tx.Commit()
	select {
	case e := <-got:
		if e.Field("n") != 5 {
			t.Fatalf("got %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit did not wake taker")
	}
}

func TestWriteValidation(t *testing.T) {
	_, s := newSpace(t)
	if _, err := s.Write(Entry{}, nil, time.Minute); err == nil {
		t.Fatal("kindless entry accepted")
	}
}

func TestCloseFailsBlockedAndNewOps(t *testing.T) {
	_, s := newSpace(t)
	errs := make(chan error, 1)
	go func() {
		_, err := s.Take(NewEntry("X"), nil, Forever)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked take err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked take not released by Close")
	}
	if _, err := s.Write(task("x", 1), nil, time.Minute); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	if _, err := s.Read(NewEntry("X"), nil, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
	s.Close() // idempotent
}

func TestNonComparablePayloadNeverMatchesButCarries(t *testing.T) {
	_, s := newSpace(t)
	payload := []float64{1, 2, 3}
	s.Write(NewEntry("Data", "values", payload, "tag", "t1"), nil, time.Minute)
	e, err := s.Take(NewEntry("Data", "tag", "t1"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Field("values").([]float64); len(got) != 3 {
		t.Fatalf("payload lost: %v", got)
	}
	// Matching on the slice field itself must not panic, just not match.
	s.Write(NewEntry("Data", "values", payload), nil, time.Minute)
	if _, err := s.Take(NewEntry("Data", "values", []float64{1, 2, 3}), nil, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slice template err = %v", err)
	}
}

func TestNewEntryPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEntry("X", "k")
}

func TestEntryCloneIndependence(t *testing.T) {
	e := task("a", 1)
	c := e.Clone()
	c.Fields["n"] = 99
	if e.Field("n") != 1 {
		t.Fatal("Clone shares fields")
	}
}

// Property: conservation — after w writes and t takes (t <= w) of the same
// kind, Count reports w - t.
func TestPropertyConservation(t *testing.T) {
	f := func(writes, takes uint8) bool {
		w := int(writes%20) + 1
		k := int(takes) % (w + 1)
		fc := clockwork.NewFake(epoch)
		s := New(fc, lease.Policy{Max: time.Hour})
		defer s.Close()
		for i := 0; i < w; i++ {
			if _, err := s.Write(task("sig", i), nil, time.Minute); err != nil {
				return false
			}
		}
		for i := 0; i < k; i++ {
			if _, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0); err != nil {
				return false
			}
		}
		return s.Count(NewEntry("ExertionEnvelope")) == w-k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent takers never receive the same entry twice.
func TestPropertyExclusiveTakes(t *testing.T) {
	_, s := newSpace(t)
	const n = 50
	for i := 0; i < n; i++ {
		s.Write(task("sig", i), nil, time.Minute)
	}
	var mu sync.Mutex
	seen := make(map[any]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, err := s.Take(NewEntry("ExertionEnvelope"), nil, 0)
				if err != nil {
					return
				}
				mu.Lock()
				if seen[e.Field("n")] {
					t.Errorf("duplicate take of %v", e.Field("n"))
				}
				seen[e.Field("n")] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("took %d entries, want %d", len(seen), n)
	}
}

func TestCountWithTemplate(t *testing.T) {
	_, s := newSpace(t)
	s.Write(task("a", 1), nil, time.Minute)
	s.Write(task("b", 2), nil, time.Minute)
	s.Write(NewEntry("Result", "signature", "a"), nil, time.Minute)
	if n := s.Count(NewEntry("ExertionEnvelope", "signature", "a")); n != 1 {
		t.Fatalf("Count = %d", n)
	}
	if n := s.Count(NewEntry("ExertionEnvelope")); n != 2 {
		t.Fatalf("Count = %d", n)
	}
}

func TestManyKindsIsolated(t *testing.T) {
	_, s := newSpace(t)
	for i := 0; i < 10; i++ {
		s.Write(NewEntry(fmt.Sprintf("K%d", i), "i", i), nil, time.Minute)
	}
	for i := 0; i < 10; i++ {
		e, err := s.Take(NewEntry(fmt.Sprintf("K%d", i)), nil, 0)
		if err != nil || e.Field("i") != i {
			t.Fatalf("kind K%d: %v %v", i, e, err)
		}
	}
}

func TestNotifyOnWrite(t *testing.T) {
	_, s := newSpace(t)
	got := make(chan Entry, 16)
	if _, err := s.Notify(NewEntry("ExertionEnvelope"), func(e Entry) { got <- e }, time.Hour); err != nil {
		t.Fatal(err)
	}
	s.Write(task("avg", 7), nil, time.Minute)
	select {
	case e := <-got:
		if e.Field("n") != 7 {
			t.Fatalf("notified entry = %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
	// Non-matching kind: silent.
	s.Write(NewEntry("Other"), nil, time.Minute)
	select {
	case e := <-got:
		t.Fatalf("notified for foreign kind: %v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNotifyFiresOnCommitNotStaging(t *testing.T) {
	fc, s := newSpace(t)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	got := make(chan Entry, 16)
	s.Notify(NewEntry("ExertionEnvelope"), func(e Entry) { got <- e }, time.Hour)
	tx, _ := tm.Create(time.Minute)
	s.Write(task("avg", 1), tx, time.Minute)
	select {
	case <-got:
		t.Fatal("notified before commit")
	case <-time.After(50 * time.Millisecond):
	}
	tx.Commit()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification after commit")
	}
}

func TestNotifyLeaseExpiry(t *testing.T) {
	fc, s := newSpace(t)
	got := make(chan Entry, 16)
	s.Notify(NewEntry("ExertionEnvelope"), func(e Entry) { got <- e }, time.Minute)
	fc.Advance(2 * time.Hour)
	s.Sweep()
	s.Write(task("avg", 1), nil, time.Minute)
	select {
	case <-got:
		t.Fatal("notified after lease expiry")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNotifyValidationAndClose(t *testing.T) {
	_, s := newSpace(t)
	if _, err := s.Notify(NewEntry("X"), nil, time.Minute); err == nil {
		t.Fatal("nil listener accepted")
	}
	s.Close()
	if _, err := s.Notify(NewEntry("X"), func(Entry) {}, time.Minute); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestNotifyCancelViaLease(t *testing.T) {
	_, s := newSpace(t)
	got := make(chan Entry, 16)
	lse, _ := s.Notify(NewEntry("ExertionEnvelope"), func(e Entry) { got <- e }, time.Hour)
	if err := lse.Cancel(); err != nil {
		t.Fatal(err)
	}
	s.Sweep()
	s.Write(task("avg", 1), nil, time.Minute)
	select {
	case <-got:
		t.Fatal("notified after cancel")
	case <-time.After(50 * time.Millisecond):
	}
}

// Randomized stress: concurrent writers/takers/readers mixing direct and
// transactional operations. Invariant: every written entry is either taken
// exactly once or still present at the end — no loss, no duplication.
func TestStressConservationUnderConcurrency(t *testing.T) {
	s := New(clockwork.Real(), lease.Policy{Max: time.Hour})
	t.Cleanup(s.Close)
	tm := txn.NewManager(clockwork.Real(), lease.Policy{Max: time.Hour})

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	// Writers: half direct, half under committed/aborted transactions.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := w*perWriter + i
				switch i % 4 {
				case 0, 1: // direct write
					s.Write(NewEntry("Stress", "key", key), nil, time.Hour)
				case 2: // committed txn write
					tx, _ := tm.Create(time.Minute)
					s.Write(NewEntry("Stress", "key", key), tx, time.Hour)
					tx.Commit()
				case 3: // aborted txn write (entry must vanish)
					tx, _ := tm.Create(time.Minute)
					s.Write(NewEntry("StressAborted", "key", key), tx, time.Hour)
					tx.Abort()
				}
			}
		}(w)
	}
	// Concurrent takers drain what they can.
	var takenMu sync.Mutex
	taken := map[any]bool{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, err := s.Take(NewEntry("Stress"), nil, 20*time.Millisecond)
				if err != nil {
					return
				}
				k := e.Field("key")
				takenMu.Lock()
				if taken[k] {
					t.Errorf("entry %v taken twice", k)
				}
				taken[k] = true
				takenMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Whatever was not taken is still countable; totals must add up to
	// the number of committed+direct writes (i%4 in {0,1,2}).
	expected := 0
	for i := 0; i < perWriter; i++ {
		if i%4 != 3 {
			expected++
		}
	}
	expected *= writers
	remaining := s.Count(NewEntry("Stress"))
	takenMu.Lock()
	got := len(taken) + remaining
	takenMu.Unlock()
	if got != expected {
		t.Fatalf("conservation violated: taken+remaining = %d, want %d", got, expected)
	}
	if s.Count(NewEntry("StressAborted")) != 0 {
		t.Fatal("aborted writes leaked")
	}
}
