package space

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/txn"
)

// TestSpaceStressIndexedConcurrency hammers the kind/field indexes from
// every direction at once: concurrent writers across four kinds, blocking
// takers per kind (pinning the waiter-wake index against starvation — a
// waiter whose kind never gets woken hangs this test), a transaction abort
// storm whose provisional takes and uncommitted writes must leave no trace,
// and a batch of short-lease entries expiring mid-flight. Run under -race
// this exercises index coherence through claim, abort, restore, and expiry.
func TestSpaceStressIndexedConcurrency(t *testing.T) {
	const (
		writers       = 4
		perWriter     = 200
		takersPerKind = 2
		stormers      = 2
		expEntries    = 50
	)
	kinds := []string{"KindA", "KindB", "KindC", "KindD"}
	total := writers * perWriter

	fc := clockwork.NewFake(epoch)
	s := New(fc, lease.Policy{Max: time.Hour})
	defer s.Close()
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})

	taken := make(chan string, total+len(kinds)*takersPerKind)
	var takerWG sync.WaitGroup
	for _, kind := range kinds {
		for i := 0; i < takersPerKind; i++ {
			takerWG.Add(1)
			go func(kind string) {
				defer takerWG.Done()
				for {
					e, err := s.Take(NewEntry(kind), nil, Forever)
					if err != nil {
						t.Errorf("take %s: %v", kind, err)
						return
					}
					uid, _ := e.Field("uid").(string)
					taken <- uid
					if strings.HasPrefix(uid, "poison") {
						return
					}
				}
			}(kind)
		}
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				kind := kinds[(w+i)%len(kinds)]
				uid := fmt.Sprintf("w%d-%d", w, i)
				if _, err := s.Write(NewEntry(kind, "uid", uid), nil, time.Hour); err != nil {
					t.Errorf("write %s: %v", uid, err)
					return
				}
			}
		}(w)
	}

	// Abort storm: provisional takes hide entries from the blocked takers
	// until the abort restores (and re-wakes) them; ghost writes under the
	// same txns must never become visible.
	stopStorm := make(chan struct{})
	var stormWG sync.WaitGroup
	for g := 0; g < stormers; g++ {
		stormWG.Add(1)
		go func(g int) {
			defer stormWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopStorm:
					return
				default:
				}
				tx, _ := tm.Create(time.Hour)
				kind := kinds[i%len(kinds)]
				if _, err := s.Take(NewEntry(kind), tx, 0); err != nil && !errors.Is(err, ErrTimeout) {
					t.Errorf("storm take: %v", err)
					_ = tx.Abort()
					return
				}
				ghost := fmt.Sprintf("ghost-%d-%d", g, i)
				if _, err := s.Write(NewEntry(kind, "uid", ghost), tx, time.Hour); err != nil {
					t.Errorf("storm write: %v", err)
					_ = tx.Abort()
					return
				}
				if err := tx.Abort(); err != nil {
					t.Errorf("storm abort: %v", err)
					return
				}
			}
		}(g)
	}

	// Short-lease victims expire while the rest of the traffic runs.
	for i := 0; i < expEntries; i++ {
		if _, err := s.Write(NewEntry("EXP", "uid", fmt.Sprintf("exp-%d", i)), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	fc.Advance(2 * time.Minute)
	s.Sweep()

	writerWG.Wait()
	close(stopStorm)
	stormWG.Wait()

	// Every written entry must be taken exactly once — no losses, no
	// duplicates, no leaked ghosts.
	seen := make(map[string]bool, total)
	deadline := time.After(30 * time.Second)
	for len(seen) < total {
		select {
		case uid := <-taken:
			if seen[uid] {
				t.Fatalf("entry %s taken twice", uid)
			}
			if !strings.HasPrefix(uid, "w") {
				t.Fatalf("took unexpected entry %q", uid)
			}
			seen[uid] = true
		case <-deadline:
			t.Fatalf("took %d of %d entries before deadline (lost entries or starved waiter)", len(seen), total)
		}
	}

	// Release the blocked takers and confirm each is still being served.
	for _, kind := range kinds {
		for i := 0; i < takersPerKind; i++ {
			uid := fmt.Sprintf("poison-%s-%d", kind, i)
			if _, err := s.Write(NewEntry(kind, "uid", uid), nil, time.Hour); err != nil {
				t.Fatal(err)
			}
		}
	}
	takerWG.Wait()

	for _, kind := range kinds {
		if n := s.Count(NewEntry(kind)); n != 0 {
			t.Fatalf("kind %s left %d entries behind", kind, n)
		}
	}
	if n := s.Count(NewEntry("EXP")); n != 0 {
		t.Fatalf("%d expired entries survived the sweep", n)
	}
}
