package event

import (
	"errors"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
)

// Mailbox is the store-and-forward event service from the paper's Fig. 2:
// a client registers a leased Box, hands the Box (which implements
// Listener) to event generators, and later either drains stored events
// (pull) or enables forwarding to a live listener (push). Events that
// arrive while the box is disabled are retained up to a capacity bound.
type Mailbox struct {
	id     ids.ServiceID
	leases *lease.Table
	cap    int

	mu    sync.Mutex
	boxes map[uint64]*Box
}

// DefaultBoxCapacity bounds stored events per box.
const DefaultBoxCapacity = 4096

// NewMailbox creates a mailbox service. capacity <= 0 selects
// DefaultBoxCapacity.
func NewMailbox(clock clockwork.Clock, policy lease.Policy, capacity int) *Mailbox {
	if capacity <= 0 {
		capacity = DefaultBoxCapacity
	}
	m := &Mailbox{
		id:     ids.NewServiceID(),
		leases: lease.NewTable(clock, policy),
		cap:    capacity,
		boxes:  make(map[uint64]*Box),
	}
	m.leases.OnExpire(m.onExpire)
	return m
}

// ID returns the mailbox service identity.
func (m *Mailbox) ID() ids.ServiceID { return m.id }

// Register creates a new leased box.
func (m *Mailbox) Register(leaseDur time.Duration) (*Box, lease.Lease) {
	lse := m.leases.Grant(leaseDur)
	b := &Box{mailbox: m, id: lse.ID, cap: m.cap}
	m.mu.Lock()
	m.boxes[lse.ID] = b
	m.mu.Unlock()
	return b, lse
}

// BoxCount reports live boxes (after sweeping expired leases).
func (m *Mailbox) BoxCount() int {
	m.leases.Sweep()
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.boxes)
}

// Sweep expires lapsed box leases.
func (m *Mailbox) Sweep() { m.leases.Sweep() }

func (m *Mailbox) onExpire(leaseID uint64) {
	m.mu.Lock()
	b, ok := m.boxes[leaseID]
	if ok {
		delete(m.boxes, leaseID)
	}
	m.mu.Unlock()
	if ok {
		b.expire()
	}
}

// ErrBoxExpired is returned by Notify after the box's lease lapsed, which
// signals generators to drop the registration.
var ErrBoxExpired = errors.New("event: mailbox box expired")

// Box is a store-and-forward event buffer. It implements Listener so it can
// be registered directly with any Generator.
type Box struct {
	mailbox *Mailbox
	id      uint64
	cap     int

	mu      sync.Mutex
	stored  []RemoteEvent
	dropped uint64
	// reported marks how much of dropped has been handed out by
	// DrainWithDropped, so each drain reports only the gap it observed.
	reported uint64
	target   Listener
	expired  bool
}

// Notify implements Listener: the event is forwarded if the box is enabled,
// stored otherwise.
func (b *Box) Notify(ev RemoteEvent) error {
	b.mu.Lock()
	if b.expired {
		b.mu.Unlock()
		return ErrBoxExpired
	}
	if t := b.target; t != nil {
		b.mu.Unlock()
		return t.Notify(ev)
	}
	if len(b.stored) >= b.cap {
		// Drop the oldest: fresh sensor data is worth more than stale.
		copy(b.stored, b.stored[1:])
		b.stored = b.stored[:len(b.stored)-1]
		b.dropped++
	}
	b.stored = append(b.stored, ev)
	b.mu.Unlock()
	return nil
}

// Enable starts forwarding to target, first flushing stored events in
// order. Passing nil is an error; use Disable.
func (b *Box) Enable(target Listener) error {
	if target == nil {
		return errors.New("event: nil forwarding target")
	}
	b.mu.Lock()
	if b.expired {
		b.mu.Unlock()
		return ErrBoxExpired
	}
	backlog := b.stored
	b.stored = nil
	b.target = target
	b.mu.Unlock()
	for _, ev := range backlog {
		if err := target.Notify(ev); err != nil {
			// Target failed mid-flush: re-store the remainder and
			// disable forwarding.
			b.mu.Lock()
			b.target = nil
			// events delivered so far are gone; keep the rest.
			rest := backlogAfter(backlog, ev)
			b.stored = append(rest, b.stored...)
			b.mu.Unlock()
			return err
		}
	}
	return nil
}

// backlogAfter returns the suffix of backlog strictly after ev (matching by
// SeqNo and Source).
func backlogAfter(backlog []RemoteEvent, ev RemoteEvent) []RemoteEvent {
	for i := range backlog {
		if backlog[i].SeqNo == ev.SeqNo && backlog[i].Source == ev.Source && backlog[i].EventID == ev.EventID {
			out := make([]RemoteEvent, len(backlog)-i-1)
			copy(out, backlog[i+1:])
			return out
		}
	}
	return nil
}

// Disable stops forwarding; subsequent events are stored again.
func (b *Box) Disable() {
	b.mu.Lock()
	b.target = nil
	b.mu.Unlock()
}

// Drain removes and returns up to max stored events (all if max <= 0).
func (b *Box) Drain(max int) []RemoteEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.stored)
	if max > 0 && max < n {
		n = max
	}
	out := make([]RemoteEvent, n)
	copy(out, b.stored[:n])
	b.stored = append(b.stored[:0], b.stored[n:]...)
	return out
}

// DrainWithDropped removes and returns up to max stored events (all if
// max <= 0) together with the number of events dropped by the capacity
// bound since the previous DrainWithDropped call. A non-zero dropped
// count means the drained sequence has a gap — the events' SeqNos jump
// by more than one where the oldest entries were discarded — and lets a
// catch-up consumer surface the loss instead of silently papering over
// it.
func (b *Box) DrainWithDropped(max int) ([]RemoteEvent, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.stored)
	if max > 0 && max < n {
		n = max
	}
	out := make([]RemoteEvent, n)
	copy(out, b.stored[:n])
	b.stored = append(b.stored[:0], b.stored[n:]...)
	gap := b.dropped - b.reported
	b.reported = b.dropped
	return out, gap
}

// Stored reports the number of buffered events.
func (b *Box) Stored() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.stored)
}

// Dropped reports how many events were discarded due to capacity.
func (b *Box) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

func (b *Box) expire() {
	b.mu.Lock()
	b.expired = true
	b.stored = nil
	b.target = nil
	b.mu.Unlock()
}
