// Package event implements the Jini distributed event model used across
// sensorcer: providers fire RemoteEvents at leased listener registrations,
// and an EventMailbox service offers store-and-forward delivery for
// listeners that are disconnected or slow — the "Event Mailbox" entry in
// the paper's Fig. 2 service list. Sensor services use events to push
// reading updates and the provision monitor uses them for deployment state
// changes.
package event

import (
	"errors"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
)

// RemoteEvent is the notification unit: identified by the source service,
// an event kind (EventID) and a per-registration sequence number.
type RemoteEvent struct {
	// Source identifies the emitting service.
	Source ids.ServiceID
	// EventID names the event kind within the source (e.g. "reading
	// updated", "service provisioned").
	EventID uint64
	// SeqNo increases per registration, letting consumers detect loss.
	SeqNo uint64
	// Timestamp is the emission time at the source.
	Timestamp time.Time
	// Payload carries event-specific data.
	Payload any
}

// Listener consumes remote events. Notify errors tell the generator the
// listener is unreachable; after repeated failures a registration may be
// dropped.
type Listener interface {
	Notify(RemoteEvent) error
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(RemoteEvent) error

// Notify implements Listener.
func (f ListenerFunc) Notify(ev RemoteEvent) error { return f(ev) }

// AnyEvent as an EventID filter matches every event kind.
const AnyEvent = ^uint64(0)

// Registration is returned by Generator.Register.
type Registration struct {
	RegistrationID uint64
	Lease          lease.Lease
}

const deliveryQueue = 512

// Generator manages leased listener registrations for one event source and
// fans fired events out to them asynchronously (one delivery goroutine per
// registration, in order, best-effort on overflow).
type Generator struct {
	source ids.ServiceID
	leases *lease.Table

	mu     sync.Mutex
	regs   map[uint64]*eventReg
	clock  clockwork.Clock
	closed bool
}

type eventReg struct {
	eventID  uint64
	listener Listener
	seq      ids.Sequence
	queue    chan RemoteEvent
	done     chan struct{}
	// failures counts consecutive Notify errors; the registration is
	// dropped after maxFailures.
	failures int
}

const maxFailures = 3

// NewGenerator creates an event generator for the given source identity.
func NewGenerator(source ids.ServiceID, clock clockwork.Clock, policy lease.Policy) *Generator {
	g := &Generator{
		source: source,
		clock:  clock,
		leases: lease.NewTable(clock, policy),
		regs:   make(map[uint64]*eventReg),
	}
	g.leases.OnExpire(g.onLeaseExpired)
	return g
}

// Register adds a leased listener for the event kind (AnyEvent for all).
func (g *Generator) Register(eventID uint64, l Listener, leaseDur time.Duration) (Registration, error) {
	if l == nil {
		return Registration{}, errors.New("event: nil listener")
	}
	lse := g.leases.Grant(leaseDur)
	r := &eventReg{
		eventID:  eventID,
		listener: l,
		queue:    make(chan RemoteEvent, deliveryQueue),
		done:     make(chan struct{}),
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = lse.Cancel()
		return Registration{}, errors.New("event: generator closed")
	}
	g.regs[lse.ID] = r
	g.mu.Unlock()
	go g.pump(lse.ID, r)
	return Registration{RegistrationID: lse.ID, Lease: lse}, nil
}

// Fire emits an event of the given kind to all matching registrations.
// Expired registrations are swept first.
func (g *Generator) Fire(eventID uint64, payload any) {
	g.leases.Sweep()
	now := g.clock.Now()
	g.mu.Lock()
	for _, r := range g.regs {
		if r.eventID != AnyEvent && r.eventID != eventID {
			continue
		}
		ev := RemoteEvent{
			Source:    g.source,
			EventID:   eventID,
			SeqNo:     r.seq.Next(),
			Timestamp: now,
			Payload:   payload,
		}
		select {
		case r.queue <- ev:
		default: // drop on overflow; SeqNo gap reveals the loss
		}
	}
	g.mu.Unlock()
}

// Cancel removes a registration immediately.
func (g *Generator) Cancel(registrationID uint64) {
	g.removeReg(registrationID, true)
}

// Count reports live registrations.
func (g *Generator) Count() int {
	g.leases.Sweep()
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.regs)
}

// Close shuts down all delivery pumps.
func (g *Generator) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	regs := make([]*eventReg, 0, len(g.regs))
	for _, r := range g.regs {
		regs = append(regs, r)
		close(r.queue)
	}
	g.regs = map[uint64]*eventReg{}
	g.mu.Unlock()
	for _, r := range regs {
		<-r.done
	}
}

func (g *Generator) onLeaseExpired(leaseID uint64) { g.removeReg(leaseID, false) }

func (g *Generator) removeReg(id uint64, cancelLease bool) {
	g.mu.Lock()
	r, ok := g.regs[id]
	if ok {
		delete(g.regs, id)
		close(r.queue)
	}
	g.mu.Unlock()
	if ok {
		if cancelLease {
			_ = g.leases.Cancel(id)
		}
		<-r.done
	}
}

// pump delivers queued events in order; after maxFailures consecutive
// Notify errors the registration is dropped (the listener is unreachable).
func (g *Generator) pump(id uint64, r *eventReg) {
	defer close(r.done)
	for ev := range r.queue {
		if err := r.listener.Notify(ev); err != nil {
			r.failures++
			if r.failures >= maxFailures {
				// Drop asynchronously; removeReg waits on done, so it
				// must not be called from this goroutine.
				go g.removeReg(id, true)
				// Drain remaining events without delivery.
				for range r.queue {
				}
				return
			}
			continue
		}
		r.failures = 0
	}
}
