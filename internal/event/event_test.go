package event

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newGen(t *testing.T) (*clockwork.Fake, *Generator) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	g := NewGenerator(ids.NewServiceID(), fc, lease.Policy{Max: time.Hour})
	t.Cleanup(g.Close)
	return fc, g
}

// collector is a Listener recording events.
type collector struct {
	mu  sync.Mutex
	evs []RemoteEvent
	err error
}

func (c *collector) Notify(ev RemoteEvent) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.evs = append(c.evs, ev)
	return nil
}

func (c *collector) wait(t *testing.T, n int) []RemoteEvent {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.evs) >= n {
			out := append([]RemoteEvent{}, c.evs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d events", n)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func TestFireDelivers(t *testing.T) {
	_, g := newGen(t)
	c := &collector{}
	if _, err := g.Register(7, c, time.Minute); err != nil {
		t.Fatal(err)
	}
	g.Fire(7, "hello")
	evs := c.wait(t, 1)
	if evs[0].EventID != 7 || evs[0].Payload != "hello" || evs[0].SeqNo != 1 {
		t.Fatalf("event = %+v", evs[0])
	}
	if !evs[0].Timestamp.Equal(epoch) {
		t.Fatalf("timestamp = %v", evs[0].Timestamp)
	}
}

func TestEventIDFilter(t *testing.T) {
	_, g := newGen(t)
	c7, cAny := &collector{}, &collector{}
	g.Register(7, c7, time.Minute)
	g.Register(AnyEvent, cAny, time.Minute)
	g.Fire(7, nil)
	g.Fire(8, nil)
	cAny.wait(t, 2)
	time.Sleep(10 * time.Millisecond)
	if c7.count() != 1 {
		t.Fatalf("filtered listener got %d events, want 1", c7.count())
	}
}

func TestSeqNoPerRegistration(t *testing.T) {
	_, g := newGen(t)
	c := &collector{}
	g.Register(AnyEvent, c, time.Minute)
	for i := 0; i < 5; i++ {
		g.Fire(1, i)
	}
	evs := c.wait(t, 5)
	for i, ev := range evs {
		if ev.SeqNo != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, ev.SeqNo)
		}
		if ev.Payload != i {
			t.Fatalf("order violated: payload[%d] = %v", i, ev.Payload)
		}
	}
}

func TestRegistrationLeaseExpiry(t *testing.T) {
	fc, g := newGen(t)
	c := &collector{}
	g.Register(AnyEvent, c, time.Minute)
	fc.Advance(2 * time.Minute)
	g.Fire(1, nil) // sweeps first
	time.Sleep(10 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("expired registration received event")
	}
	if g.Count() != 0 {
		t.Fatalf("Count = %d", g.Count())
	}
}

func TestCancelRegistration(t *testing.T) {
	_, g := newGen(t)
	c := &collector{}
	r, _ := g.Register(AnyEvent, c, time.Minute)
	g.Cancel(r.RegistrationID)
	g.Fire(1, nil)
	time.Sleep(10 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("cancelled registration received event")
	}
}

func TestFailingListenerDropped(t *testing.T) {
	_, g := newGen(t)
	c := &collector{err: errors.New("unreachable")}
	g.Register(AnyEvent, c, time.Minute)
	for i := 0; i < maxFailures; i++ {
		g.Fire(1, i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.Count() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Count() != 0 {
		t.Fatal("failing listener never dropped")
	}
}

func TestRegisterNilListener(t *testing.T) {
	_, g := newGen(t)
	if _, err := g.Register(1, nil, time.Minute); err == nil {
		t.Fatal("nil listener accepted")
	}
}

func TestGeneratorCloseIdempotent(t *testing.T) {
	_, g := newGen(t)
	c := &collector{}
	g.Register(AnyEvent, c, time.Minute)
	g.Close()
	g.Close()
	if _, err := g.Register(AnyEvent, c, time.Minute); err == nil {
		t.Fatal("register after close accepted")
	}
}

func TestListenerFunc(t *testing.T) {
	called := false
	l := ListenerFunc(func(RemoteEvent) error { called = true; return nil })
	if err := l.Notify(RemoteEvent{}); err != nil || !called {
		t.Fatal("ListenerFunc adapter broken")
	}
}

// --- Mailbox ---

func newMailbox(t *testing.T) (*clockwork.Fake, *Mailbox) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	return fc, NewMailbox(fc, lease.Policy{Max: time.Hour}, 8)
}

func TestBoxStoresWhileDisabled(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	for i := 0; i < 3; i++ {
		if err := box.Notify(RemoteEvent{SeqNo: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if box.Stored() != 3 {
		t.Fatalf("Stored = %d", box.Stored())
	}
}

func TestBoxDrainPull(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	for i := 1; i <= 5; i++ {
		box.Notify(RemoteEvent{SeqNo: uint64(i)})
	}
	first := box.Drain(2)
	if len(first) != 2 || first[0].SeqNo != 1 || first[1].SeqNo != 2 {
		t.Fatalf("Drain(2) = %v", first)
	}
	rest := box.Drain(0)
	if len(rest) != 3 || rest[0].SeqNo != 3 {
		t.Fatalf("Drain(0) = %v", rest)
	}
	if box.Stored() != 0 {
		t.Fatal("events remained after full drain")
	}
}

func TestBoxEnableFlushesBacklogThenForwards(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	box.Notify(RemoteEvent{SeqNo: 1})
	box.Notify(RemoteEvent{SeqNo: 2})
	c := &collector{}
	if err := box.Enable(c); err != nil {
		t.Fatal(err)
	}
	box.Notify(RemoteEvent{SeqNo: 3})
	if c.count() != 3 {
		t.Fatalf("forwarded %d, want 3", c.count())
	}
	for i, ev := range c.evs {
		if ev.SeqNo != uint64(i+1) {
			t.Fatalf("order: %v", c.evs)
		}
	}
}

func TestBoxEnableNil(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	if err := box.Enable(nil); err == nil {
		t.Fatal("Enable(nil) accepted")
	}
}

func TestBoxDisableResumesStoring(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	c := &collector{}
	box.Enable(c)
	box.Notify(RemoteEvent{SeqNo: 1})
	box.Disable()
	box.Notify(RemoteEvent{SeqNo: 2})
	if c.count() != 1 || box.Stored() != 1 {
		t.Fatalf("forwarded=%d stored=%d", c.count(), box.Stored())
	}
}

func TestBoxCapacityDropsOldest(t *testing.T) {
	_, mb := newMailbox(t) // cap 8
	box, _ := mb.Register(time.Minute)
	for i := 1; i <= 10; i++ {
		box.Notify(RemoteEvent{SeqNo: uint64(i)})
	}
	if box.Stored() != 8 {
		t.Fatalf("Stored = %d", box.Stored())
	}
	if box.Dropped() != 2 {
		t.Fatalf("Dropped = %d", box.Dropped())
	}
	evs := box.Drain(0)
	if evs[0].SeqNo != 3 || evs[len(evs)-1].SeqNo != 10 {
		t.Fatalf("kept wrong window: %v..%v", evs[0].SeqNo, evs[len(evs)-1].SeqNo)
	}
}

// TestBoxDrainWithDroppedRevealsGap: the dropped count a drain reports
// matches the SeqNo discontinuity in the drained sequence, and resets
// between drains.
func TestBoxDrainWithDroppedRevealsGap(t *testing.T) {
	_, mb := newMailbox(t) // cap 8
	box, _ := mb.Register(time.Minute)
	for i := 1; i <= 11; i++ {
		box.Notify(RemoteEvent{SeqNo: uint64(i)})
	}
	evs, dropped := box.DrainWithDropped(0)
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	// The gap at the front of the window equals the dropped count: the
	// consumer's last known SeqNo (0) to the first drained one.
	if gap := evs[0].SeqNo - 1; gap != dropped {
		t.Fatalf("SeqNo discontinuity %d does not match dropped %d", gap, dropped)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].SeqNo != evs[i-1].SeqNo+1 {
			t.Fatalf("unexpected interior gap at %d: %v -> %v", i, evs[i-1].SeqNo, evs[i].SeqNo)
		}
	}
	// Already-reported drops are not re-reported.
	box.Notify(RemoteEvent{SeqNo: 12})
	evs, dropped = box.DrainWithDropped(0)
	if dropped != 0 || len(evs) != 1 || evs[0].SeqNo != 12 {
		t.Fatalf("second drain = %d events, dropped %d", len(evs), dropped)
	}
	// Cumulative accounting is untouched.
	if box.Dropped() != 3 {
		t.Fatalf("cumulative Dropped = %d, want 3", box.Dropped())
	}
}

func TestBoxLeaseExpiry(t *testing.T) {
	fc, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	box.Notify(RemoteEvent{SeqNo: 1})
	fc.Advance(2 * time.Minute)
	mb.Sweep()
	if err := box.Notify(RemoteEvent{SeqNo: 2}); !errors.Is(err, ErrBoxExpired) {
		t.Fatalf("Notify on expired box err = %v", err)
	}
	if err := box.Enable(&collector{}); !errors.Is(err, ErrBoxExpired) {
		t.Fatalf("Enable on expired box err = %v", err)
	}
	if mb.BoxCount() != 0 {
		t.Fatalf("BoxCount = %d", mb.BoxCount())
	}
}

func TestBoxEnableFailureMidFlushKeepsRemainder(t *testing.T) {
	_, mb := newMailbox(t)
	box, _ := mb.Register(time.Minute)
	for i := 1; i <= 4; i++ {
		box.Notify(RemoteEvent{SeqNo: uint64(i)})
	}
	// Target accepts 2 events, then fails.
	n := 0
	target := ListenerFunc(func(ev RemoteEvent) error {
		n++
		if n > 2 {
			return errors.New("link dropped")
		}
		return nil
	})
	if err := box.Enable(target); err == nil {
		t.Fatal("Enable should surface target failure")
	}
	// Events 3 was attempted-and-failed (lost), events 4 retained.
	evs := box.Drain(0)
	if len(evs) != 1 || evs[0].SeqNo != 4 {
		t.Fatalf("retained = %v, want [seq 4]", evs)
	}
}

func TestMailboxGeneratorIntegration(t *testing.T) {
	// End-to-end: generator -> box (offline) -> enable -> live listener.
	fc := clockwork.NewFake(epoch)
	g := NewGenerator(ids.NewServiceID(), fc, lease.Policy{Max: time.Hour})
	defer g.Close()
	mb := NewMailbox(fc, lease.Policy{Max: time.Hour}, 0)
	box, _ := mb.Register(time.Minute)
	g.Register(AnyEvent, box, time.Minute)

	g.Fire(1, "offline-1")
	g.Fire(1, "offline-2")
	deadline := time.Now().Add(2 * time.Second)
	for box.Stored() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c := &collector{}
	if err := box.Enable(c); err != nil {
		t.Fatal(err)
	}
	g.Fire(1, "live-1")
	evs := c.wait(t, 3)
	if evs[0].Payload != "offline-1" || evs[2].Payload != "live-1" {
		t.Fatalf("order = %v", evs)
	}
}

func TestMailboxDefaultCapacity(t *testing.T) {
	mb := NewMailbox(clockwork.NewFake(epoch), lease.Policy{Max: time.Hour}, 0)
	box, _ := mb.Register(time.Minute)
	if box.cap != DefaultBoxCapacity {
		t.Fatalf("cap = %d", box.cap)
	}
}
