// Package experiments regenerates every figure of the paper and a
// measurable benchmark for every quantitative claim of its evaluation
// sections (§VI–VII), per the experiment index in DESIGN.md. Each
// experiment is a named function writing a human-readable report; the
// cmd/experiments binary runs them and EXPERIMENTS.md records the
// paper-versus-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sensorcer/internal/browser"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/spot"
	"sensorcer/internal/testbed"
)

// Experiment is one runnable reproduction.
type Experiment struct {
	// ID is the experiment key ("fig3", "c4").
	ID string
	// Title describes what it reproduces.
	Title string
	// Run writes the report.
	Run func(w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig. 1 — component architecture wiring", Fig1},
		{"fig2", "Fig. 2 — service browser listing of the paper deployment", Fig2},
		{"fig3", "Fig. 3 / §VI steps 1-6 — logical sensor networking experiment", Fig3},
		{"c1", "C1 — scalability: lookup and composite read vs sensor count", C1Scalability},
		{"c2", "C2 — plug-and-play: join/leave visibility latency", C2PlugAndPlay},
		{"c3", "C3 — fault tolerance: cybernode failover", C3Failover},
		{"c4", "C4 — header overhead: compact batching vs per-reading IP framing", C4WireOverhead},
		{"c5", "C5 — aggregation capacity: composite tree vs direct polling", C5AggregationTree},
		{"c6", "C6 — runtime expressions vs hard-coded aggregation", C6ExpressionCost},
		{"c7", "C7 — push (Jobber) vs pull (Spacer) federation under skew", C7PushVsPull},
		{"c8", "C8 — battery energy per delivered reading vs batch size and loss", C8Energy},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Fig1 walks the Fig. 1 component diagram, asserting each interface edge
// live: probe -> ESP (DataCollection), ESP/CSP -> requestor
// (SensorDataAccessor), façade -> network (lookup), providers -> exertions
// (Servicer).
func Fig1(w io.Writer) error {
	d := testbed.New(testbed.Config{Sensors: 1})
	defer d.Close()

	fmt.Fprintln(w, "Fig. 1 component wiring (each edge exercised live):")
	esp := d.ESPs[0]
	info := esp.Describe()
	fmt.Fprintf(w, "  Sensor Probe -> ESP          : DataCollection read, technology=%s kind=%s\n",
		info.Technology, info.Kind)
	r, err := esp.GetValue()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  ESP -> requestor             : SensorDataAccessor.GetValue = %.2f %s\n", r.Value, r.Unit)

	csp := sensor.NewCSP("Wiring-Composite")
	if _, err := csp.AddChild(esp); err != nil {
		return err
	}
	cr, err := csp.GetValue()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  CSP composes accessors       : composite value = %.2f\n", cr.Value)

	join := csp.Publish(d.Clock, d.Mgr)
	defer join.Terminate()
	fr, err := d.Facade.Network().GetValue("Wiring-Composite")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  Facade -> network via lookup : GetValue(Wiring-Composite) = %.2f\n", fr.Value)

	task := sorcer.NewTask("read", sorcer.Sig(sensor.AccessorType, sensor.SelGetValue), nil)
	if _, err := esp.Service(task, nil); err != nil {
		return err
	}
	v, _ := task.Context().Float(sensor.PathValue)
	fmt.Fprintf(w, "  Providers are Servicers      : service(Exertion) -> %s = %.2f\n", sensor.PathValue, v)
	fmt.Fprintln(w, "  probe is the only sensor-dependent component: PASS")
	return nil
}

// Fig2 stands up the paper's deployment and prints the browser's service
// tree and sensor-value panel — the textual equivalent of the Inca X
// screenshot.
func Fig2(w io.Writer) error {
	d := testbed.New(testbed.Config{})
	defer d.Close()
	nm := d.Facade.Network()
	if _, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
		return err
	}

	ctl := browser.NewController(d.Facade, d.Mgr)
	model := ctl.Refresh()
	fmt.Fprint(w, browser.RenderServiceList(model))
	// Infrastructure services of Fig. 2 that live outside the registry in
	// this build (they are wired directly): list them for parity.
	fmt.Fprintln(w, "Infrastructure peers (direct-wired):")
	fmt.Fprintf(w, "  [INFRASTRUCTURE] Transaction Manager (active txns: %d)\n", d.TxnMgr.Active())
	fmt.Fprintf(w, "  [INFRASTRUCTURE] Event Mailbox (boxes: %d)\n", d.Mailbox.BoxCount())
	fmt.Fprintf(w, "  [INFRASTRUCTURE] Exertion Space (entries: %d)\n", 0)
	for _, n := range d.Nodes {
		fmt.Fprintf(w, "  [INFRASTRUCTURE] %s (util %.0f%%)\n", n.Name(), n.Utilization()*100)
	}
	fmt.Fprint(w, browser.RenderValues(model.Values))
	detail, err := ctl.Select("Composite-Service")
	if err != nil {
		return err
	}
	fmt.Fprint(w, browser.RenderDetail(detail))
	return nil
}

// Fig3 reproduces §VI steps 1–6 and prints each step's observable result.
func Fig3(w io.Writer) error {
	d := testbed.New(testbed.Config{})
	defer d.Close()
	nm := d.Facade.Network()

	fmt.Fprintln(w, "§VI experiment, steps 1-6:")
	values := map[string]float64{}
	for _, name := range d.SensorNames() {
		r, err := nm.GetValue(name)
		if err != nil {
			return err
		}
		values[name] = r.Value
		fmt.Fprintf(w, "  %-16s %.2f celsius\n", name, r.Value)
	}

	if _, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  step 1: subnet {Neem, Jade, Diamond} formed as Composite-Service")
	fmt.Fprintln(w, `  step 2: expression "(a + b + c)/3" associated`)

	if err := nm.ProvisionComposite("New-Composite",
		[]string{"Composite-Service", "Coral-Sensor"}, "(a + b)/2",
		sensor.QoSSpec{MinCPUs: 1}); err != nil {
		return err
	}
	st, err := d.Monitor.Status("sensorcer/New-Composite")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  step 3: New-Composite provisioned via Rio (planned=%d actual=%d on %v)\n",
		st[0].Planned, st[0].Actual, st[0].Nodes)
	fmt.Fprintln(w, "  step 4: composed {Composite-Service, Coral-Sensor}")
	fmt.Fprintln(w, `  step 5: expression "(a + b)/2" associated`)

	reading, err := nm.GetValue("New-Composite")
	if err != nil {
		return err
	}
	subnet := (values["Neem-Sensor"] + values["Jade-Sensor"] + values["Diamond-Sensor"]) / 3
	expected := (subnet + values["Coral-Sensor"]) / 2
	fmt.Fprintf(w, "  step 6: New-Composite value = %.2f (expected near %.2f from step-0 samples)\n",
		reading.Value, expected)

	kids, expr, err := nm.CompositeInfo("New-Composite")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  panel: contained =")
	for _, k := range kids {
		fmt.Fprintf(w, " %s=%s", k.Var, k.Name)
	}
	fmt.Fprintf(w, ", expression = %q\n", expr)
	return nil
}

// sortedKeys is a tiny helper for stable report output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mustReplayESP builds a deterministic ESP for claim experiments.
func mustReplayESP(name string, vals ...float64) *sensor.ESP {
	return sensor.NewESP(name, probe.NewReplayProbe(name, "temperature", "celsius", vals, true, nil))
}

// expClock is the clock behind all experiment timing. Experiments measure
// real end-to-end latencies, so it stays the real clock — but going
// through clockwork keeps the package under the rawclock invariant and
// leaves a single seam for replaying runs against a fake.
var expClock = clockwork.Real()

// timeIt measures fn over n iterations, returning per-op latency.
func timeIt(n int, fn func()) time.Duration {
	start := expClock.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return expClock.Since(start) / time.Duration(n)
}

var _ = spot.PaperFleetNames // referenced by claims.go
