package experiments

import (
	"fmt"
	"io"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/expr"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/testbed"
	"sensorcer/internal/wire"
)

// C1Scalability measures lookup latency and composite-read latency as the
// sensor population grows — the §VII claim "the SenSORCER network scales
// very well ... addition of new sensor services does not necessarily
// affect the performance of the system".
func C1Scalability(w io.Writer) error {
	fmt.Fprintln(w, "C1: population sweep (in-process federation)")
	fmt.Fprintf(w, "  %8s %16s %16s %18s\n", "sensors", "lookup-one", "read-one", "composite(all)")
	for _, n := range []int{4, 16, 64, 256, 1024} {
		d := testbed.New(testbed.Config{Sensors: n, Cybernodes: 2})
		nm := d.Facade.Network()
		names := d.SensorNames()

		lookup := timeIt(64, func() {
			if _, err := nm.FindAccessor(names[n/2]); err != nil {
				panic(err)
			}
		})
		read := timeIt(64, func() {
			if _, err := nm.GetValue(names[n/2]); err != nil {
				panic(err)
			}
		})
		if _, err := nm.ComposeService("all", names, ""); err != nil {
			d.Close()
			return err
		}
		composite := timeIt(8, func() {
			if _, err := nm.GetValue("all"); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "  %8d %16v %16v %18v\n", n, lookup, read, composite)
		d.Close()
	}
	fmt.Fprintln(w, "  expectation: lookup/read stay near-flat; composite grows ~linearly with fan-in")
	return nil
}

// C2PlugAndPlay measures how quickly a joining sensor becomes visible and
// how a crashed sensor disappears via lease expiry — §VII "plug-and-play
// of discoverable services ... sensor services can come and go".
func C2PlugAndPlay(w io.Writer) error {
	// Short registration leases so crash departure is quick to observe.
	lus := registry.New("lus", clockwork.Real(),
		registry.WithLeasePolicy(lease.Policy{Max: 100 * time.Millisecond, Min: time.Millisecond}))
	defer lus.Close()
	bus := discovery.NewBus()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	facade := sensor.NewFacade("f", clockwork.Real(), mgr)

	// Join: publish and poll until visible.
	esp := mustReplayESP("Popup-Sensor", 21)
	defer esp.Close()
	start := expClock.Now()
	join := esp.Publish(clockwork.Real(), mgr)
	var joinLatency time.Duration
	for {
		if _, err := facade.Network().GetValue("Popup-Sensor"); err == nil {
			joinLatency = expClock.Since(start)
			break
		}
		if expClock.Since(start) > 5*time.Second {
			return fmt.Errorf("join never became visible")
		}
	}
	fmt.Fprintf(w, "C2: join -> readable through facade: %v\n", joinLatency)

	// Orderly leave.
	start = expClock.Now()
	join.Terminate()
	for {
		if _, err := facade.Network().GetValue("Popup-Sensor"); err != nil {
			break
		}
		if expClock.Since(start) > 5*time.Second {
			return fmt.Errorf("orderly departure never propagated")
		}
	}
	fmt.Fprintf(w, "C2: orderly leave -> gone: %v\n", expClock.Since(start))

	// Crash departure: register directly with a lease and never renew.
	esp2 := mustReplayESP("Crash-Sensor", 22)
	defer esp2.Close()
	if _, err := lus.Register(registry.ServiceItem{
		Service: esp2,
		Types:   []string{sensor.AccessorType},
	}, 100*time.Millisecond); err != nil {
		return err
	}
	start = expClock.Now()
	for lus.Len() != 0 {
		if expClock.Since(start) > 5*time.Second {
			return fmt.Errorf("crashed sensor never expired")
		}
		expClock.Sleep(time.Millisecond)
		lus.SweepNow()
	}
	fmt.Fprintf(w, "C2: crash (no renewals, 100ms lease) -> swept: %v\n", expClock.Since(start))
	fmt.Fprintln(w, "  expectation: join/leave immediate; crash bounded by lease term")
	return nil
}

// C3Failover kills the cybernode hosting a provisioned composite and
// measures how long until the service answers again from the survivor —
// the §IV-C fault-tolerance capability.
func C3Failover(w io.Writer) error {
	d := testbed.New(testbed.Config{})
	defer d.Close()
	nm := d.Facade.Network()
	if err := nm.ProvisionComposite("HA-Composite",
		[]string{"Neem-Sensor", "Coral-Sensor"}, "(a + b)/2", sensor.QoSSpec{}); err != nil {
		return err
	}
	if _, err := nm.GetValue("HA-Composite"); err != nil {
		return err
	}
	victim := d.Nodes[0]
	if len(victim.Services()) == 0 {
		victim = d.Nodes[1]
	}
	fmt.Fprintf(w, "C3: HA-Composite hosted on %s; killing it\n", victim.Name())
	start := expClock.Now()
	victim.Kill()
	for {
		if _, err := nm.GetValue("HA-Composite"); err == nil {
			break
		}
		if expClock.Since(start) > 5*time.Second {
			return fmt.Errorf("failover never completed")
		}
	}
	fmt.Fprintf(w, "C3: service answering again after %v (re-provisioned on survivor)\n", expClock.Since(start))
	st, err := d.Monitor.Status("sensorcer/HA-Composite")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C3: deployment status: planned=%d actual=%d nodes=%v\n",
		st[0].Planned, st[0].Actual, st[0].Nodes)
	return nil
}

// C4WireOverhead compares bytes-per-reading for compact batching against
// per-reading IP framing — the paper's motivation #1.
func C4WireOverhead(w io.Writer) error {
	fmt.Fprintln(w, "C4: wire cost per reading (18-byte naive payload)")
	fmt.Fprintf(w, "  %8s %18s %18s %10s\n", "batch", "compact B/reading", "IP-style B/reading", "ratio")
	base := time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)
	for _, n := range []int{1, 4, 16, 64, 256} {
		readings := make([]wire.Reading, n)
		for i := range readings {
			readings[i] = wire.Reading{
				SensorID:  uint16(0x1000 + i%4),
				Timestamp: base.Add(time.Duration(i) * 250 * time.Millisecond),
				Value:     20 + float64(i%10)*0.37,
			}
		}
		bpr, err := wire.BytesPerReadingCompact(readings)
		if err != nil {
			return err
		}
		ratio, err := wire.OverheadRatio(readings)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %8d %18.2f %18d %9.1fx\n", n, bpr, wire.IPStyleBytesPerReading, ratio)
	}
	fmt.Fprintln(w, "  expectation: ratio grows with batch size, ~1 order of magnitude at 64+")
	return nil
}

// C5AggregationTree compares collecting N sensors through a composite tree
// (service-to-service aggregation) against a client polling every sensor
// directly — the paper's data-flow-reversal motivation (#4, #5).
func C5AggregationTree(w io.Writer) error {
	fmt.Fprintln(w, "C5: aggregate read of N sensors, client-side polling vs CSP tree")
	fmt.Fprintf(w, "  %8s %16s %16s\n", "sensors", "direct poll", "composite tree")
	for _, n := range []int{8, 32, 128} {
		d := testbed.New(testbed.Config{Sensors: n})
		nm := d.Facade.Network()
		names := d.SensorNames()

		direct := timeIt(8, func() {
			sum := 0.0
			for _, name := range names {
				r, err := nm.GetValue(name)
				if err != nil {
					panic(err)
				}
				sum += r.Value
			}
			_ = sum / float64(n)
		})

		// Two-level tree: groups of 8 under a root composite.
		groups := 0
		var groupNames []string
		for i := 0; i < n; i += 8 {
			end := i + 8
			if end > n {
				end = n
			}
			gname := fmt.Sprintf("group-%d", groups)
			if _, err := nm.ComposeService(gname, names[i:end], ""); err != nil {
				d.Close()
				return err
			}
			groupNames = append(groupNames, gname)
			groups++
		}
		if _, err := nm.ComposeService("root", groupNames, ""); err != nil {
			d.Close()
			return err
		}
		tree := timeIt(8, func() {
			if _, err := nm.GetValue("root"); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "  %8d %16v %16v\n", n, direct, tree)
		d.Close()
	}
	fmt.Fprintln(w, "  expectation: tree wins at scale (parallel fan-out inside CSPs)")
	return nil
}

// C6ExpressionCost prices the runtime expression mechanism against
// hard-coded Go aggregation — the cost of the paper's Groovy-style
// flexibility (§V Sensor Computation).
func C6ExpressionCost(w io.Writer) error {
	fmt.Fprintln(w, "C6: 3-sensor aggregation, per evaluation")
	env := expr.Env{"a": 20.0, "b": 22.0, "c": 24.0}
	exprs := map[string]string{
		"paper avg":  "(a + b + c)/3",
		"minmax mix": "max(a, b, c) - min(a, b, c) + avg(a, b, c)",
		"piecewise":  "a > 30 ? a : (b > 30 ? b : (a + b + c)/3)",
	}
	hard := timeIt(1_000_000, func() {
		_ = (env["a"].(float64) + env["b"].(float64) + env["c"].(float64)) / 3
	})
	fmt.Fprintf(w, "  %-24s %12v\n", "hard-coded Go", hard)
	for _, name := range sortedKeys(exprs) {
		p := expr.MustCompile(exprs[name])
		perEval := timeIt(200_000, func() {
			if _, err := p.EvalNumber(env); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "  %-24s %12v  (%q)\n", name, perEval, exprs[name])
	}
	compile := timeIt(100_000, func() { expr.MustCompile("(a + b + c)/3") })
	fmt.Fprintf(w, "  %-24s %12v\n", "compile (one-time)", compile)
	fmt.Fprintln(w, "  expectation: interpreted eval within ~2 orders of native; negligible vs sensor I/O")
	return nil
}

// C7PushVsPull runs the same skewed task batch through the Jobber (push)
// and the Spacer (pull) and compares makespan — the DESIGN.md ablation of
// SORCER's two federation modes. Providers model single-threaded sensor
// nodes (concurrency 1), so the comparison isolates the dispatch strategy:
// push binds each task to a provider up front; pull lets idle workers
// steal, which absorbs the cost skew.
func C7PushVsPull(w io.Writer) error {
	const tasks = 24
	fmt.Fprintf(w, "C7: %d tasks, costs skewed 1x..8x, single-threaded providers\n", tasks)

	build := func() (*discovery.Manager, *sorcer.Exerter, func()) {
		bus := discovery.NewBus()
		lus := registry.New("lus", clockwork.NewFake(time.Date(2009, 10, 6, 0, 0, 0, 0, time.UTC)))
		cancel := bus.Announce(lus)
		mgr := discovery.NewManager(bus)
		exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))
		return mgr, exerter, func() { mgr.Terminate(); cancel(); lus.Close() }
	}
	workOp := func(ctx *sorcer.Context) error {
		cost, err := ctx.Float("work/cost")
		if err != nil {
			return err
		}
		expClock.Sleep(time.Duration(cost) * time.Millisecond)
		ctx.Put("work/done", true)
		return nil
	}
	makeTasks := func() []sorcer.Exertion {
		out := make([]sorcer.Exertion, tasks)
		for i := range out {
			cost := float64(1 + (i%8)*1) // 1..8ms skew
			out[i] = sorcer.NewTask(fmt.Sprintf("t%d", i),
				sorcer.Sig("Worker", "work"), sorcer.NewContextFrom("work/cost", cost))
		}
		return out
	}

	// Push: the jobber binds every task to a looked-up provider. With 4
	// equivalent single-threaded providers, binding order decides who
	// gets overloaded — the jobber cannot see queue depth.
	{
		mgr, exerter, cleanup := build()
		var joins []func()
		for i := 0; i < 4; i++ {
			p := sorcer.NewProvider(fmt.Sprintf("Worker-%d", i+1), "Worker")
			p.RegisterOp("work", workOp)
			p.SetConcurrency(1)
			j := p.Publish(clockwork.Real(), mgr, nil)
			joins = append(joins, j.Terminate)
		}
		job := sorcer.NewJob("push", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Push}, makeTasks()...)
		start := expClock.Now()
		if _, err := exerter.Exert(job, nil); err != nil {
			return err
		}
		fmt.Fprintf(w, "  push (jobber binds, 4 providers @1 slot): %v\n", expClock.Since(start))
		for _, j := range joins {
			j()
		}
		cleanup()
	}

	// Pull: 4 workers drain the space at their own pace.
	{
		mgr, exerter, cleanup := build()
		sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
		var workers []*sorcer.SpaceWorker
		for i := 0; i < 4; i++ {
			p := sorcer.NewProvider(fmt.Sprintf("Worker-%d", i+1), "Worker")
			p.RegisterOp("work", workOp)
			p.SetConcurrency(1)
			workers = append(workers, sorcer.NewSpaceWorker(sp, p, "Worker"))
		}
		spacer := sorcer.NewSpacer("Spacer-1", sp, sorcer.WithTaskTimeout(30*time.Second))
		join := sorcer.PublishServicer(clockwork.Real(), mgr, spacer, spacer.ID(), spacer.Name(),
			[]string{sorcer.SpacerType}, nil)
		job := sorcer.NewJob("pull", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, makeTasks()...)
		start := expClock.Now()
		if _, err := exerter.Exert(job, nil); err != nil {
			return err
		}
		fmt.Fprintf(w, "  pull (spacer, 4 workers @1 slot steal):   %v\n", expClock.Since(start))
		join.Terminate()
		for _, wk := range workers {
			wk.Stop()
		}
		sp.Close()
		cleanup()
	}
	fmt.Fprintln(w, "  expectation: similar order; pull self-balances the skew without queue knowledge")
	return nil
}

var _ = rio.QoS{} // rio is exercised via testbed in C3
