package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The figure experiments are cheap enough to run fully in tests; the claim
// experiments with long sweeps get smoke-level assertions on their fast
// paths elsewhere (bench_test.go at the repo root runs the sweeps).

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not found", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(seen))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestFig1Report(t *testing.T) {
	out := runExperiment(t, "fig1")
	for _, want := range []string{
		"Sensor Probe -> ESP",
		"SensorDataAccessor.GetValue",
		"CSP composes accessors",
		"Facade -> network via lookup",
		"Providers are Servicers",
		"PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Report(t *testing.T) {
	out := runExperiment(t, "fig2")
	for _, want := range []string{
		"persimmon.cs.ttu.edu:4160",
		"Neem-Sensor", "Jade-Sensor", "Coral-Sensor", "Diamond-Sensor",
		"Composite-Service", "SenSORCER Facade",
		"Cybernode-1", "Cybernode-2",
		"Transaction Manager", "Event Mailbox",
		"Sensor Value",
		"Compute Expression: (a + b + c)/3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Report(t *testing.T) {
	out := runExperiment(t, "fig3")
	for _, want := range []string{
		"step 1", "step 2", "step 3", "step 4", "step 5", "step 6",
		"New-Composite value =",
		"a=Composite-Service b=Coral-Sensor",
		`expression = "(a + b)/2"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestC2PlugAndPlayReport(t *testing.T) {
	out := runExperiment(t, "c2")
	for _, want := range []string{"join -> readable", "orderly leave", "crash"} {
		if !strings.Contains(out, want) {
			t.Fatalf("c2 output missing %q:\n%s", want, out)
		}
	}
}

func TestC3FailoverReport(t *testing.T) {
	out := runExperiment(t, "c3")
	if !strings.Contains(out, "answering again after") {
		t.Fatalf("c3 output:\n%s", out)
	}
}

func TestC4WireOverheadReport(t *testing.T) {
	out := runExperiment(t, "c4")
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "46") {
		t.Fatalf("c4 output:\n%s", out)
	}
}

func TestC7PushVsPullReport(t *testing.T) {
	out := runExperiment(t, "c7")
	if !strings.Contains(out, "push (jobber") || !strings.Contains(out, "pull (spacer") {
		t.Fatalf("c7 output:\n%s", out)
	}
}

func TestC8EnergyReport(t *testing.T) {
	out := runExperiment(t, "c8")
	if !strings.Contains(out, "µJ") || !strings.Contains(out, "loss=30%") {
		t.Fatalf("c8 output:\n%s", out)
	}
}

// The sweep experiments run fully only via cmd/experiments; under -short
// (and in CI) they are skipped, otherwise smoke-run to keep them honest.
func TestSweepExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	for _, id := range []string{"c1", "c5", "c6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out := runExperiment(t, id)
			if len(out) < 100 {
				t.Fatalf("%s output suspiciously small:\n%s", id, out)
			}
		})
	}
}
