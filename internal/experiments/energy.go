package experiments

import (
	"fmt"
	"io"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/collect"
	"sensorcer/internal/spot"
)

// C8Energy measures battery energy per *delivered* reading as a function
// of batch size and link loss — the energy-domain consequence of the
// paper's motivation #1: radio bytes, not samples, drain field sensors,
// so framing overhead translates directly into battery life.
func C8Energy(w io.Writer) error {
	fmt.Fprintln(w, "C8: battery energy per delivered reading (µJ), 400 samples each")
	fmt.Fprintf(w, "  %6s %10s %10s %10s\n", "batch", "loss=0%", "loss=10%", "loss=30%")
	const samples = 400
	for _, batch := range []int{1, 2, 4, 8} {
		fmt.Fprintf(w, "  %6d", batch)
		for _, loss := range []float64{0, 0.1, 0.3} {
			perReading, err := energyPerDelivered(batch, loss, samples)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.2f", perReading)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  expectation: larger batches amortize frame overhead; loss adds retransmit cost")
	return nil
}

// energyPerDelivered runs one field node until `samples` samples are taken
// and reports consumed energy divided by readings that reached the
// collector.
func energyPerDelivered(batch int, loss float64, samples int) (float64, error) {
	fc := clockwork.NewFake(time.Date(2009, 10, 6, 12, 0, 0, 0, time.UTC))
	link := spot.NewLink(loss, 0, int64(batch)*1000+int64(loss*100))
	const budget = 1e9 // effectively unlimited, but finite so Remaining works
	dev := spot.NewDevice(spot.Config{
		Name: "field", Addr: 0x2001, Clock: fc, Link: link, BatteryMicroJ: budget,
	})
	dev.Attach(spot.ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	collector := collect.NewCollector(fc)
	collector.Track(0x2001, "field", "temperature", "celsius")
	link.SetReceiver(collector.Receive)
	node := collect.NewFieldNode(dev, "temperature", 0x1, batch)

	for i := 0; i < samples; i++ {
		// Batches may still be lost after retries; that's part of the
		// energy story, not an error.
		_ = node.Sample()
		fc.Advance(time.Second)
	}
	_ = node.Flush()
	consumed := budget - dev.Battery().Remaining()
	_, delivered, _ := collector.Stats()
	if delivered == 0 {
		return 0, fmt.Errorf("experiments: no readings delivered (batch %d, loss %.0f%%)", batch, loss*100)
	}
	return consumed / float64(delivered), nil
}
