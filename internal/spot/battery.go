package spot

import (
	"errors"
	"sync"
)

// ErrBatteryDead is returned when the device has exhausted its charge.
var ErrBatteryDead = errors.New("spot: battery exhausted")

// Battery models the SPOT's rechargeable cell as an energy budget in
// microjoules. Sensing and radio transmission draw it down; an exhausted
// battery makes the device fail exactly the way a field sensor does, which
// feeds the framework's failure-handling paths (lease lapse, FMI re-bind).
type Battery struct {
	mu        sync.Mutex
	capacity  float64 // µJ
	remaining float64 // µJ
}

// Energy costs per operation, in microjoules. Ballpark figures for a
// CC2420-class radio and a low-power sensor board: sampling is cheap,
// radio bytes are the expensive part — the asymmetry behind the paper's
// motivation #1 (header overhead matters).
const (
	SampleCost   = 5.0  // one ADC sample
	TxByteCost   = 1.6  // transmit one byte
	RxByteCost   = 1.8  // receive one byte
	IdleTickCost = 0.05 // housekeeping per sample period
)

// NewBattery creates a battery with the capacity in microjoules. A
// non-positive capacity means unlimited (mains powered).
func NewBattery(capacityMicroJ float64) *Battery {
	return &Battery{capacity: capacityMicroJ, remaining: capacityMicroJ}
}

// Draw consumes energy; it reports ErrBatteryDead once the budget is gone.
func (b *Battery) Draw(microJ float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		return nil // unlimited
	}
	if b.remaining <= 0 {
		return ErrBatteryDead
	}
	b.remaining -= microJ
	if b.remaining < 0 {
		b.remaining = 0
		return ErrBatteryDead
	}
	return nil
}

// Remaining reports the unused budget (µJ); unlimited batteries report -1.
func (b *Battery) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		return -1
	}
	return b.remaining
}

// Level reports the charge fraction in [0, 1]; unlimited batteries report 1.
func (b *Battery) Level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		return 1
	}
	return b.remaining / b.capacity
}

// Recharge restores the battery to full.
func (b *Battery) Recharge() {
	b.mu.Lock()
	b.remaining = b.capacity
	b.mu.Unlock()
}
