package spot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// The radio layer models an IEEE 802.15.4 link, the SPOT's transport. A
// frame carries at most MaxPayload data bytes behind a FrameOverhead-byte
// MAC header+footer — the small-packet regime that makes per-reading
// protocol overhead so costly (the paper's motivation #1, benchmarked by
// experiment C4).
const (
	// FrameOverhead is the MAC header + FCS bytes per frame.
	FrameOverhead = 11
	// MaxPayload is the usable payload per frame.
	MaxPayload = 102
)

// Frame is one radio frame.
type Frame struct {
	// Source and Dest are short 16-bit addresses.
	Source uint16
	Dest   uint16
	// Seq disambiguates retransmissions.
	Seq uint8
	// Payload is the application data (<= MaxPayload).
	Payload []byte
}

// ErrFrameTooLarge reports an oversized payload.
var ErrFrameTooLarge = errors.New("spot: payload exceeds radio frame capacity")

// ErrLinkLost reports a dropped (and unacknowledged) transmission.
var ErrLinkLost = errors.New("spot: frame lost")

// EncodeFrame serializes a frame, including the modelled MAC overhead.
func EncodeFrame(f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(f.Payload), MaxPayload)
	}
	buf := make([]byte, FrameOverhead+len(f.Payload))
	buf[0] = 0x41 // frame control (data frame)
	buf[1] = 0x88
	buf[2] = f.Seq
	binary.LittleEndian.PutUint16(buf[3:], 0xFACE) // PAN id
	binary.LittleEndian.PutUint16(buf[5:], f.Dest)
	binary.LittleEndian.PutUint16(buf[7:], f.Source)
	copy(buf[9:], f.Payload)
	// Trailing 2-byte FCS (checksum over payload for the simulation).
	var fcs uint16
	for _, b := range buf[:len(buf)-2] {
		fcs += uint16(b)
	}
	binary.LittleEndian.PutUint16(buf[len(buf)-2:], fcs)
	return buf, nil
}

// DecodeFrame parses a serialized frame, verifying the FCS.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < FrameOverhead {
		return Frame{}, errors.New("spot: short frame")
	}
	var fcs uint16
	for _, x := range b[:len(b)-2] {
		fcs += uint16(x)
	}
	if binary.LittleEndian.Uint16(b[len(b)-2:]) != fcs {
		return Frame{}, errors.New("spot: FCS mismatch")
	}
	f := Frame{
		Seq:    b[2],
		Dest:   binary.LittleEndian.Uint16(b[5:]),
		Source: binary.LittleEndian.Uint16(b[7:]),
	}
	f.Payload = append([]byte{}, b[9:len(b)-2]...)
	return f, nil
}

// Link is a lossy, delayed point-to-point radio link. Delivered frames
// invoke the receiver callback synchronously after the modelled latency.
type Link struct {
	mu       sync.Mutex
	rng      *rand.Rand
	lossRate float64
	latency  time.Duration
	// stats
	sent      int
	delivered int
	lost      int
	bytes     int
	receiver  func(Frame)
	clock     clockwork.Clock
}

// NewLink creates a link with the loss probability and one-way latency.
// Latency is modelled on the real clock; inject a fake with SetClock to
// make frame timing (and the battery drain it drives) deterministic.
func NewLink(lossRate float64, latency time.Duration, seed int64) *Link {
	return &Link{
		rng:      rand.New(rand.NewSource(seed)),
		lossRate: lossRate,
		latency:  latency,
		clock:    clockwork.Real(),
	}
}

// SetClock overrides the clock that models transmission latency.
func (l *Link) SetClock(c clockwork.Clock) {
	l.mu.Lock()
	l.clock = c
	l.mu.Unlock()
}

// SetReceiver installs the frame sink (the host-side probe).
func (l *Link) SetReceiver(fn func(Frame)) {
	l.mu.Lock()
	l.receiver = fn
	l.mu.Unlock()
}

// Transmit sends a frame over the link, returning ErrLinkLost when the
// loss model drops it. The byte count includes MAC overhead — the cost a
// battery pays per transmission.
func (l *Link) Transmit(f Frame) (int, error) {
	raw, err := EncodeFrame(f)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.sent++
	l.bytes += len(raw)
	drop := l.rng.Float64() < l.lossRate
	receiver := l.receiver
	latency := l.latency
	clock := l.clock
	if drop {
		l.lost++
	} else {
		l.delivered++
	}
	l.mu.Unlock()

	if drop {
		return len(raw), ErrLinkLost
	}
	if latency > 0 {
		clock.Sleep(latency)
	}
	if receiver != nil {
		decoded, err := DecodeFrame(raw)
		if err != nil {
			return len(raw), err
		}
		receiver(decoded)
	}
	return len(raw), nil
}

// Stats reports sent/delivered/lost frame counts and total bytes on air.
func (l *Link) Stats() (sent, delivered, lost, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent, l.delivered, l.lost, l.bytes
}
