package spot

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// ErrNoSensor is returned when sampling a quantity the device lacks.
var ErrNoSensor = errors.New("spot: device has no such sensor")

// ErrDeviceOff is returned after Shutdown.
var ErrDeviceOff = errors.New("spot: device is off")

// Device is one simulated Sun SPOT: a radio address, a battery, and a set
// of on-board environment sensors. The paper's experiment names its four
// SPOTs Neem, Jade, Coral and Diamond; NewFleet recreates exactly that
// deployment.
type Device struct {
	name    string
	addr    uint16
	clock   clockwork.Clock
	battery *Battery
	link    *Link

	mu      sync.Mutex
	sensors map[string]EnvironmentModel
	samples uint64
	off     bool
}

// Config assembles a device.
type Config struct {
	// Name labels the device ("Neem").
	Name string
	// Addr is the 16-bit radio address.
	Addr uint16
	// Clock drives timestamps (Real() by default).
	Clock clockwork.Clock
	// BatteryMicroJ is the energy budget; <= 0 means mains powered.
	BatteryMicroJ float64
	// Link is the device's radio link (optional; sampling works without
	// one, transmission does not).
	Link *Link
}

// NewDevice creates a device with no sensors attached.
func NewDevice(cfg Config) *Device {
	clock := cfg.Clock
	if clock == nil {
		clock = clockwork.Real()
	}
	return &Device{
		name:    cfg.Name,
		addr:    cfg.Addr,
		clock:   clock,
		battery: NewBattery(cfg.BatteryMicroJ),
		link:    cfg.Link,
		sensors: make(map[string]EnvironmentModel),
	}
}

// Name returns the device label.
func (d *Device) Name() string { return d.name }

// Addr returns the radio address.
func (d *Device) Addr() uint16 { return d.addr }

// Battery exposes the energy model.
func (d *Device) Battery() *Battery { return d.battery }

// Link exposes the radio link (nil if none).
func (d *Device) Link() *Link { return d.link }

// Attach adds an environment sensor to the board.
func (d *Device) Attach(model EnvironmentModel) {
	d.mu.Lock()
	d.sensors[model.Kind()] = model
	d.mu.Unlock()
}

// Kinds lists the attached sensor kinds.
func (d *Device) Kinds() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.sensors))
	for k := range d.sensors {
		out = append(out, k)
	}
	return out
}

// Sample reads the named quantity, drawing battery for the ADC sample.
func (d *Device) Sample(kind string) (float64, time.Time, error) {
	d.mu.Lock()
	if d.off {
		d.mu.Unlock()
		return 0, time.Time{}, ErrDeviceOff
	}
	model, ok := d.sensors[kind]
	d.mu.Unlock()
	if !ok {
		return 0, time.Time{}, fmt.Errorf("%w: %q on %q", ErrNoSensor, kind, d.name)
	}
	if err := d.battery.Draw(SampleCost + IdleTickCost); err != nil {
		return 0, time.Time{}, fmt.Errorf("spot: %q: %w", d.name, err)
	}
	now := d.clock.Now()
	v := model.At(now)
	d.mu.Lock()
	d.samples++
	d.mu.Unlock()
	return v, now, nil
}

// Transmit sends payload bytes over the radio, paying the per-byte energy
// cost (including frame overhead).
func (d *Device) Transmit(dest uint16, seq uint8, payload []byte) error {
	d.mu.Lock()
	off := d.off
	d.mu.Unlock()
	if off {
		return ErrDeviceOff
	}
	if d.link == nil {
		return errors.New("spot: device has no radio link")
	}
	n, err := d.link.Transmit(Frame{Source: d.addr, Dest: dest, Seq: seq, Payload: payload})
	if n > 0 {
		if berr := d.battery.Draw(float64(n) * TxByteCost); berr != nil && err == nil {
			err = berr
		}
	}
	return err
}

// Samples reports how many samples the device has taken.
func (d *Device) Samples() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.samples
}

// Shutdown turns the device off (field maintenance, crash injection).
func (d *Device) Shutdown() {
	d.mu.Lock()
	d.off = true
	d.mu.Unlock()
}

// Restart turns the device back on.
func (d *Device) Restart() {
	d.mu.Lock()
	d.off = false
	d.mu.Unlock()
}

// PaperFleetNames are the four sensors of the paper's Fig. 2/3 deployment.
var PaperFleetNames = []string{"Neem", "Jade", "Coral", "Diamond"}

// NewFleet creates n temperature-sensing devices with correlated but
// distinct site conditions, deterministically from the seed. The first
// four take the paper's names; further devices are numbered.
func NewFleet(n int, clock clockwork.Clock, seed int64) []*Device {
	out := make([]*Device, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Spot-%d", i+1)
		if i < len(PaperFleetNames) {
			name = PaperFleetNames[i]
		}
		d := NewDevice(Config{
			Name:  name,
			Addr:  uint16(0x1000 + i),
			Clock: clock,
		})
		// Shared climate (base 22C, 6C swing) with per-site offsets and
		// independent noise streams derived from the master seed.
		siteOffset := float64(i%7)*0.8 - 2.4
		d.Attach(NewTemperatureModel(22, 6, siteOffset, 0.3, seed+int64(i)*101))
		out[i] = d
	}
	return out
}
