package spot

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/clockwork"
)

var epoch = time.Date(2009, 10, 6, 12, 0, 0, 0, time.UTC)

func TestTemperatureModelDeterminism(t *testing.T) {
	m1 := NewTemperatureModel(22, 6, 0, 0.3, 42)
	m2 := NewTemperatureModel(22, 6, 0, 0.3, 42)
	for i := 0; i < 100; i++ {
		at := epoch.Add(time.Duration(i) * time.Minute)
		if m1.At(at) != m2.At(at) {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestTemperatureDiurnalShape(t *testing.T) {
	m := NewTemperatureModel(22, 6, 0, 0, 1) // no noise
	afternoon := m.At(time.Date(2009, 10, 6, 15, 0, 0, 0, time.UTC))
	night := m.At(time.Date(2009, 10, 6, 3, 0, 0, 0, time.UTC))
	if afternoon <= night {
		t.Fatalf("afternoon %v not warmer than night %v", afternoon, night)
	}
	if math.Abs(afternoon-28) > 1e-9 || math.Abs(night-16) > 1e-9 {
		t.Fatalf("extremes: %v / %v, want 28 / 16", afternoon, night)
	}
}

func TestTemperatureNoiseBounded(t *testing.T) {
	m := NewTemperatureModel(22, 0, 0, 0.5, 7)
	for i := 0; i < 1000; i++ {
		v := m.At(epoch)
		// AR(1) with 0.9 decay and U(-0.5, 0.5) shocks stays within
		// noise/(1-0.9) = 5 of the base with huge margin.
		if math.Abs(v-22) > 5 {
			t.Fatalf("noise excursion %v at step %d", v, i)
		}
	}
}

func TestHumidityClampedAndAntiCorrelated(t *testing.T) {
	m := NewHumidityModel(50, 20, 0, 3)
	afternoon := m.At(time.Date(2009, 10, 6, 15, 0, 0, 0, time.UTC))
	night := m.At(time.Date(2009, 10, 6, 3, 0, 0, 0, time.UTC))
	if afternoon >= night {
		t.Fatalf("humidity should dip in the afternoon: %v vs %v", afternoon, night)
	}
	ext := NewHumidityModel(99, 50, 0, 4)
	if v := ext.At(time.Date(2009, 10, 6, 3, 0, 0, 0, time.UTC)); v > 100 {
		t.Fatalf("humidity %v above 100", v)
	}
}

func TestLightZeroAtNight(t *testing.T) {
	m := NewLightModel(10000, 500, 5)
	if v := m.At(time.Date(2009, 10, 6, 0, 30, 0, 0, time.UTC)); v != 0 {
		t.Fatalf("midnight lux = %v", v)
	}
	if v := m.At(time.Date(2009, 10, 6, 12, 0, 0, 0, time.UTC)); v < 9000 {
		t.Fatalf("noon lux = %v", v)
	}
}

func TestConstantModel(t *testing.T) {
	m := ConstantModel{Value: 42, UnitName: "u", KindName: "k"}
	if m.At(epoch) != 42 || m.Unit() != "u" || m.Kind() != "k" {
		t.Fatal("ConstantModel broken")
	}
}

func TestBatteryDrainsAndDies(t *testing.T) {
	b := NewBattery(100)
	if b.Level() != 1 {
		t.Fatalf("fresh level = %v", b.Level())
	}
	if err := b.Draw(60); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 40 {
		t.Fatalf("remaining = %v", b.Remaining())
	}
	if err := b.Draw(50); err != nil {
		// Draw that crosses zero reports death.
		if !errors.Is(err, ErrBatteryDead) {
			t.Fatalf("err = %v", err)
		}
	} else {
		t.Fatal("overdraw accepted")
	}
	if err := b.Draw(1); !errors.Is(err, ErrBatteryDead) {
		t.Fatalf("dead battery draw err = %v", err)
	}
	b.Recharge()
	if b.Level() != 1 {
		t.Fatal("recharge failed")
	}
}

func TestUnlimitedBattery(t *testing.T) {
	b := NewBattery(0)
	for i := 0; i < 1000; i++ {
		if err := b.Draw(1e9); err != nil {
			t.Fatal("mains-powered battery died")
		}
	}
	if b.Remaining() != -1 || b.Level() != 1 {
		t.Fatal("unlimited battery accounting wrong")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(src, dst uint16, seq uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		raw, err := EncodeFrame(Frame{Source: src, Dest: dst, Seq: seq, Payload: payload})
		if err != nil {
			return false
		}
		if len(raw) != FrameOverhead+len(payload) {
			return false
		}
		back, err := DecodeFrame(raw)
		if err != nil {
			return false
		}
		if back.Source != src || back.Dest != dst || back.Seq != seq || len(back.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if back.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := EncodeFrame(Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	raw, _ := EncodeFrame(Frame{Payload: []byte("hello")})
	raw[9] ^= 0xFF // corrupt payload
	if _, err := DecodeFrame(raw); err == nil {
		t.Fatal("corrupt FCS accepted")
	}
}

func TestLinkDeliveryAndStats(t *testing.T) {
	link := NewLink(0, 0, 1)
	var got []Frame
	link.SetReceiver(func(f Frame) { got = append(got, f) })
	for i := 0; i < 5; i++ {
		if _, err := link.Transmit(Frame{Seq: uint8(i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
	sent, delivered, lost, bytes := link.Stats()
	if sent != 5 || delivered != 5 || lost != 0 {
		t.Fatalf("stats = %d/%d/%d", sent, delivered, lost)
	}
	if bytes != 5*(FrameOverhead+1) {
		t.Fatalf("bytes = %d", bytes)
	}
}

func TestLinkLossStatistics(t *testing.T) {
	link := NewLink(0.3, 0, 99)
	n, lostCount := 2000, 0
	for i := 0; i < n; i++ {
		if _, err := link.Transmit(Frame{Payload: []byte{1}}); errors.Is(err, ErrLinkLost) {
			lostCount++
		}
	}
	rate := float64(lostCount) / float64(n)
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed loss rate %v, want ~0.3", rate)
	}
	_, _, lost, _ := link.Stats()
	if lost != lostCount {
		t.Fatalf("stats lost = %d, observed %d", lost, lostCount)
	}
}

// sleepRecorder wraps a fake clock and records Sleep durations without
// blocking (no other goroutine advances the fake during Transmit).
type sleepRecorder struct {
	clockwork.Clock
	slept *time.Duration
}

func (s sleepRecorder) Sleep(d time.Duration) { *s.slept += d }

func TestLinkLatencyUsesClock(t *testing.T) {
	link := NewLink(0, 5*time.Millisecond, 1)
	var slept time.Duration
	link.SetClock(sleepRecorder{Clock: clockwork.NewFake(epoch), slept: &slept})
	link.SetReceiver(func(Frame) {})
	link.Transmit(Frame{Payload: []byte{1}})
	if slept != 5*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestDeviceSample(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	d := NewDevice(Config{Name: "Neem", Addr: 0x1000, Clock: fc})
	d.Attach(ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	v, at, err := d.Sample("temperature")
	if err != nil || v != 21.5 || !at.Equal(epoch) {
		t.Fatalf("Sample = %v @ %v, %v", v, at, err)
	}
	if d.Samples() != 1 {
		t.Fatalf("Samples = %d", d.Samples())
	}
	if _, _, err := d.Sample("humidity"); !errors.Is(err, ErrNoSensor) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeviceBatteryExhaustion(t *testing.T) {
	d := NewDevice(Config{Name: "x", BatteryMicroJ: 3 * (SampleCost + IdleTickCost)})
	d.Attach(ConstantModel{Value: 1, KindName: "temperature"})
	okCount := 0
	for i := 0; i < 10; i++ {
		if _, _, err := d.Sample("temperature"); err == nil {
			okCount++
		}
	}
	if okCount >= 10 {
		t.Fatal("battery never died")
	}
	if _, _, err := d.Sample("temperature"); !errors.Is(err, ErrBatteryDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeviceShutdownRestart(t *testing.T) {
	d := NewDevice(Config{Name: "x"})
	d.Attach(ConstantModel{Value: 1, KindName: "temperature"})
	d.Shutdown()
	if _, _, err := d.Sample("temperature"); !errors.Is(err, ErrDeviceOff) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Transmit(1, 0, []byte{1}); !errors.Is(err, ErrDeviceOff) {
		t.Fatalf("transmit err = %v", err)
	}
	d.Restart()
	if _, _, err := d.Sample("temperature"); err != nil {
		t.Fatal("restart did not restore sampling")
	}
}

func TestDeviceTransmitCostsBattery(t *testing.T) {
	link := NewLink(0, 0, 1)
	budget := 1000.0
	d := NewDevice(Config{Name: "x", BatteryMicroJ: budget, Link: link})
	payload := []byte("reading")
	if err := d.Transmit(0x2000, 1, payload); err != nil {
		t.Fatal(err)
	}
	wantCost := float64(FrameOverhead+len(payload)) * TxByteCost
	if got := budget - d.Battery().Remaining(); math.Abs(got-wantCost) > 1e-9 {
		t.Fatalf("energy drawn %v, want %v", got, wantCost)
	}
}

func TestDeviceTransmitWithoutLink(t *testing.T) {
	d := NewDevice(Config{Name: "x"})
	if err := d.Transmit(1, 0, []byte{1}); err == nil {
		t.Fatal("linkless transmit accepted")
	}
}

func TestNewFleetPaperNames(t *testing.T) {
	fleet := NewFleet(6, clockwork.NewFake(epoch), 42)
	want := []string{"Neem", "Jade", "Coral", "Diamond", "Spot-5", "Spot-6"}
	for i, d := range fleet {
		if d.Name() != want[i] {
			t.Fatalf("fleet[%d] = %q, want %q", i, d.Name(), want[i])
		}
		if len(d.Kinds()) != 1 || d.Kinds()[0] != "temperature" {
			t.Fatalf("fleet[%d] sensors = %v", i, d.Kinds())
		}
	}
	// Distinct addresses.
	seen := map[uint16]bool{}
	for _, d := range fleet {
		if seen[d.Addr()] {
			t.Fatal("duplicate radio address")
		}
		seen[d.Addr()] = true
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	fc1 := clockwork.NewFake(epoch)
	fc2 := clockwork.NewFake(epoch)
	f1 := NewFleet(4, fc1, 7)
	f2 := NewFleet(4, fc2, 7)
	for i := range f1 {
		v1, _, _ := f1[i].Sample("temperature")
		v2, _, _ := f2[i].Sample("temperature")
		if v1 != v2 {
			t.Fatalf("device %d diverged: %v vs %v", i, v1, v2)
		}
	}
}

func TestFleetSitesDiffer(t *testing.T) {
	fleet := NewFleet(4, clockwork.NewFake(epoch), 7)
	vals := map[float64]bool{}
	for _, d := range fleet {
		v, _, _ := d.Sample("temperature")
		vals[v] = true
	}
	if len(vals) < 3 {
		t.Fatalf("fleet readings suspiciously identical: %v", vals)
	}
}
