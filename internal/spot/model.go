// Package spot simulates Sun SPOT sensor devices — the hardware the paper
// experiments with (§VI: "temperature sensors built into SUN's
// Programmable Object Technology device"). Real SPOTs are unavailable
// here, so the package provides deterministic physical models
// (temperature, humidity, light), a battery/energy model and an
// 802.15.4-style radio link with loss and latency. The framework above
// only ever talks to a device through the sensor probe interface, so the
// substitution exercises exactly the code paths the paper's deployment
// did, while keeping every experiment reproducible from a seed.
package spot

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// EnvironmentModel produces a physical quantity as a function of time.
type EnvironmentModel interface {
	// At returns the modelled value at the instant.
	At(t time.Time) float64
	// Unit names the measurement unit.
	Unit() string
	// Kind names the quantity ("temperature", "humidity", "light").
	Kind() string
}

// TemperatureModel is a diurnal sinusoid around a base temperature with a
// per-site offset and AR(1) measurement noise: realistic enough that
// composite averages over neighbouring sensors behave like the paper's
// farm scenario, fully deterministic for a given seed.
type TemperatureModel struct {
	// BaseC is the site's mean temperature in Celsius.
	BaseC float64
	// SwingC is the diurnal half-amplitude (peak at 15:00 local).
	SwingC float64
	// SiteOffsetC models spatial variation between sensors.
	SiteOffsetC float64
	// NoiseC scales the AR(1) noise term.
	NoiseC float64

	mu  sync.Mutex
	rng *rand.Rand
	ar  float64
}

// NewTemperatureModel creates a model with its own deterministic noise
// stream.
func NewTemperatureModel(baseC, swingC, siteOffsetC, noiseC float64, seed int64) *TemperatureModel {
	return &TemperatureModel{
		BaseC: baseC, SwingC: swingC, SiteOffsetC: siteOffsetC, NoiseC: noiseC,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// At implements EnvironmentModel. Each call advances the noise process.
func (m *TemperatureModel) At(t time.Time) float64 {
	hours := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	// Peak at 15:00, trough at 03:00.
	diurnal := m.SwingC * math.Sin(2*math.Pi*(hours-9)/24)
	m.mu.Lock()
	// AR(1): x' = 0.9 x + e, e ~ U(-1, 1) * noise.
	m.ar = 0.9*m.ar + (m.rng.Float64()*2-1)*m.NoiseC
	noise := m.ar
	m.mu.Unlock()
	return m.BaseC + m.SiteOffsetC + diurnal + noise
}

// Unit implements EnvironmentModel.
func (m *TemperatureModel) Unit() string { return "celsius" }

// Kind implements EnvironmentModel.
func (m *TemperatureModel) Kind() string { return "temperature" }

// HumidityModel anti-correlates with the diurnal cycle (drier afternoons).
type HumidityModel struct {
	// BasePct is the mean relative humidity.
	BasePct float64
	// SwingPct is the diurnal half-amplitude.
	SwingPct float64
	// NoisePct scales uniform noise.
	NoisePct float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewHumidityModel creates a deterministic humidity model.
func NewHumidityModel(basePct, swingPct, noisePct float64, seed int64) *HumidityModel {
	return &HumidityModel{BasePct: basePct, SwingPct: swingPct, NoisePct: noisePct, rng: rand.New(rand.NewSource(seed))}
}

// At implements EnvironmentModel; results clamp to [0, 100].
func (m *HumidityModel) At(t time.Time) float64 {
	hours := float64(t.Hour()) + float64(t.Minute())/60
	diurnal := -m.SwingPct * math.Sin(2*math.Pi*(hours-9)/24)
	m.mu.Lock()
	noise := (m.rng.Float64()*2 - 1) * m.NoisePct
	m.mu.Unlock()
	v := m.BasePct + diurnal + noise
	return math.Max(0, math.Min(100, v))
}

// Unit implements EnvironmentModel.
func (m *HumidityModel) Unit() string { return "percent" }

// Kind implements EnvironmentModel.
func (m *HumidityModel) Kind() string { return "humidity" }

// LightModel is zero at night and a clipped sinusoid during the day.
type LightModel struct {
	// PeakLux is the noon illuminance.
	PeakLux float64
	// NoiseLux scales uniform noise (cloud flicker).
	NoiseLux float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLightModel creates a deterministic light model.
func NewLightModel(peakLux, noiseLux float64, seed int64) *LightModel {
	return &LightModel{PeakLux: peakLux, NoiseLux: noiseLux, rng: rand.New(rand.NewSource(seed))}
}

// At implements EnvironmentModel.
func (m *LightModel) At(t time.Time) float64 {
	hours := float64(t.Hour()) + float64(t.Minute())/60
	// Daylight 06:00–18:00, peak at noon.
	day := math.Sin(math.Pi * (hours - 6) / 12)
	if day < 0 {
		day = 0
	}
	m.mu.Lock()
	noise := (m.rng.Float64()*2 - 1) * m.NoiseLux * day
	m.mu.Unlock()
	v := m.PeakLux*day + noise
	return math.Max(0, v)
}

// Unit implements EnvironmentModel.
func (m *LightModel) Unit() string { return "lux" }

// Kind implements EnvironmentModel.
func (m *LightModel) Kind() string { return "light" }

// ConstantModel returns a fixed value — useful for calibration tests.
type ConstantModel struct {
	Value    float64
	UnitName string
	KindName string
}

// At implements EnvironmentModel.
func (m ConstantModel) At(time.Time) float64 { return m.Value }

// Unit implements EnvironmentModel.
func (m ConstantModel) Unit() string { return m.UnitName }

// Kind implements EnvironmentModel.
func (m ConstantModel) Kind() string { return m.KindName }
