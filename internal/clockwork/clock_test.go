package clockwork

import (
	"testing"
	"time"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC) // the paper's screenshot timestamp

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake(epoch)
	if !f.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", f.Now(), epoch)
	}
	f.Advance(90 * time.Second)
	want := epoch.Add(90 * time.Second)
	if !f.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", f.Now(), want)
	}
}

func TestFakeTimerFires(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(2 * time.Second)
	select {
	case at := <-tm.C():
		want := epoch.Add(10 * time.Second)
		if !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire")
	}
}

func TestFakeTimerOrder(t *testing.T) {
	f := NewFake(epoch)
	t1 := f.NewTimer(3 * time.Second)
	t2 := f.NewTimer(1 * time.Second)
	t3 := f.NewTimer(2 * time.Second)
	f.Advance(5 * time.Second)
	at1 := <-t1.C()
	at2 := <-t2.C()
	at3 := <-t3.C()
	if !at2.Before(at3) || !at3.Before(at1) {
		t.Fatalf("fire order wrong: %v %v %v", at1, at2, at3)
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on active timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(time.Second)
	tm.Stop()
	if tm.Reset(2*time.Second) != false {
		t.Fatal("Reset on stopped timer should report false")
	}
	f.Advance(3 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestFakeZeroDurationTimerFiresImmediately(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer should fire immediately")
	}
}

func TestFakeAfter(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(time.Minute)
	f.Advance(time.Minute)
	select {
	case <-ch:
	default:
		t.Fatal("After channel did not deliver")
	}
}

func TestFakePendingTimers(t *testing.T) {
	f := NewFake(epoch)
	f.NewTimer(time.Second)
	f.NewTimer(time.Hour)
	if got := f.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	f.Advance(2 * time.Second)
	if got := f.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers after advance = %d, want 1", got)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(time.Hour)
	f.Set(epoch.Add(2 * time.Hour))
	select {
	case <-tm.C():
	default:
		t.Fatal("Set did not fire timer")
	}
	if !f.Now().Equal(epoch.Add(2 * time.Hour)) {
		t.Fatalf("Now = %v", f.Now())
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := c.Now()
	tm := c.NewTimer(time.Millisecond)
	<-tm.C()
	if c.Since(before) <= 0 {
		t.Fatal("Since must be positive after timer fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestFakeSinceAndSleep(t *testing.T) {
	f := NewFake(epoch)
	f.Sleep(time.Hour) // no-op by contract
	if f.Since(epoch) != 0 {
		t.Fatalf("Since = %v, want 0", f.Since(epoch))
	}
	f.Advance(time.Minute)
	if f.Since(epoch) != time.Minute {
		t.Fatalf("Since = %v, want 1m", f.Since(epoch))
	}
}
