// Package clockwork provides an injectable clock abstraction so that
// time-dependent components (leases, discovery announcements, provisioning
// heartbeats) can be tested deterministically without sleeping.
//
// Production code uses Real(); tests use NewFake(start) and advance time
// manually with Advance. Timers created from a fake clock fire synchronously
// during Advance, in expiry order, which makes lease-expiry and
// failure-detection tests exact.
package clockwork

import (
	"sync"
	"time"
)

// Clock abstracts the subset of package time used throughout sensorcer.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a Timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Timer is the timer surface needed by lease and provisioning code.
type Timer interface {
	// C returns the channel on which the expiry time is delivered.
	C() <-chan time.Time
	// Reset re-arms the timer to fire after d. It reports whether the
	// timer had been active.
	Reset(d time.Duration) bool
	// Stop disarms the timer. It reports whether the timer had been
	// active.
	Stop() bool
}

// Real returns a Clock backed by the real time package.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }

// Fake is a manually advanced Clock for tests.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFake returns a Fake clock whose current time is start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.NewTimer(d).C() }

// Sleep on a fake clock returns immediately; tests drive time with Advance.
// Blocking here would deadlock single-goroutine tests, so Sleep is a no-op
// that still observes ordering via Gosched-like semantics.
func (f *Fake) Sleep(d time.Duration) {}

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft := &fakeTimer{
		clock:  f,
		ch:     make(chan time.Time, 1),
		when:   f.now.Add(d),
		active: true,
	}
	if d <= 0 {
		ft.active = false
		//lint:ignore sensorlint/deepblock the channel was created a few lines up with capacity 1 and has no other writer; the send cannot block
		ft.ch <- f.now
		return ft
	}
	f.timers = append(f.timers, ft)
	return ft
}

// Advance moves the fake clock forward by d, firing every timer whose
// deadline falls within the window, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range f.timers {
			if !t.active || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) {
				next = t
			}
		}
		if next == nil {
			break
		}
		f.now = next.when
		next.active = false
		select {
		case next.ch <- f.now:
		default:
		}
	}
	f.now = target
	// Compact the timer list, dropping fired/stopped timers.
	live := f.timers[:0]
	for _, t := range f.timers {
		if t.active {
			live = append(live, t)
		}
	}
	f.timers = live
	f.mu.Unlock()
}

// Set jumps the fake clock to t (which must not be earlier than Now),
// firing timers as with Advance.
func (f *Fake) Set(t time.Time) {
	d := t.Sub(f.Now())
	if d < 0 {
		d = 0
	}
	f.Advance(d)
}

// PendingTimers reports how many timers are armed; useful for leak checks.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if t.active {
			n++
		}
	}
	return n
}

type fakeTimer struct {
	clock  *Fake
	ch     chan time.Time
	when   time.Time
	active bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.active
	t.active = false
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.active
	t.when = t.clock.now.Add(d)
	if d <= 0 {
		t.active = false
		select {
		case t.ch <- t.clock.now:
		default:
		}
		return was
	}
	if !was {
		t.active = true
		t.clock.timers = append(t.clock.timers, t)
	} else {
		t.active = true
	}
	return was
}
