// Package ids supplies the identifier types used across the sensorcer
// network: 128-bit service IDs (the Jini ServiceID analogue), event
// sequence counters, and lease identifiers.
package ids

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
)

// ServiceID is a 128-bit universally unique identifier, formatted like a
// UUID (the paper's Fig. 2 shows "267c67a0-dd67-4b95-beb0-e6763e117b03").
type ServiceID [16]byte

// Zero is the zero ServiceID, used as a wildcard in lookup templates.
var Zero ServiceID

// NewServiceID returns a fresh random ServiceID (UUID version 4 layout).
func NewServiceID() ServiceID {
	var id ServiceID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failure is unrecoverable for identity generation.
		panic(fmt.Sprintf("ids: crypto/rand failed: %v", err))
	}
	id[6] = (id[6] & 0x0f) | 0x40 // version 4
	id[8] = (id[8] & 0x3f) | 0x80 // RFC 4122 variant
	return id
}

// IsZero reports whether the ID is the wildcard zero value.
func (id ServiceID) IsZero() bool { return id == Zero }

// String renders the ID in canonical 8-4-4-4-12 UUID form.
func (id ServiceID) String() string {
	var b [36]byte
	hex.Encode(b[0:8], id[0:4])
	b[8] = '-'
	hex.Encode(b[9:13], id[4:6])
	b[13] = '-'
	hex.Encode(b[14:18], id[6:8])
	b[18] = '-'
	hex.Encode(b[19:23], id[8:10])
	b[23] = '-'
	hex.Encode(b[24:36], id[10:16])
	return string(b[:])
}

// Short returns the first 8 hex digits, convenient for log lines.
func (id ServiceID) Short() string { return id.String()[:8] }

// ParseServiceID parses the canonical UUID form produced by String.
func ParseServiceID(s string) (ServiceID, error) {
	var id ServiceID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return id, errors.New("ids: malformed service ID " + s)
	}
	hexed := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexed)
	if err != nil {
		return id, fmt.Errorf("ids: malformed service ID %q: %w", s, err)
	}
	copy(id[:], raw)
	return id, nil
}

// MarshalText implements encoding.TextMarshaler so IDs serialize cleanly
// through the JSON RPC layer.
func (id ServiceID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ServiceID) UnmarshalText(b []byte) error {
	parsed, err := ParseServiceID(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// Sequence is a monotonically increasing 64-bit counter safe for concurrent
// use; remote events and lease identifiers draw from Sequences.
type Sequence struct{ n atomic.Uint64 }

// Next returns the next value, starting at 1.
func (s *Sequence) Next() uint64 { return s.n.Add(1) }

// Current returns the most recently issued value (0 if none).
func (s *Sequence) Current() uint64 { return s.n.Load() }
