package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewServiceIDUniqueness(t *testing.T) {
	seen := make(map[ServiceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewServiceID()
		if seen[id] {
			t.Fatalf("duplicate ServiceID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestServiceIDVersionAndVariant(t *testing.T) {
	for i := 0; i < 64; i++ {
		id := NewServiceID()
		if id[6]>>4 != 4 {
			t.Fatalf("version nibble = %x, want 4", id[6]>>4)
		}
		if id[8]>>6 != 0b10 {
			t.Fatalf("variant bits = %b, want 10", id[8]>>6)
		}
	}
}

func TestServiceIDStringFormat(t *testing.T) {
	id := NewServiceID()
	s := id.String()
	if len(s) != 36 {
		t.Fatalf("len = %d, want 36", len(s))
	}
	for _, i := range []int{8, 13, 18, 23} {
		if s[i] != '-' {
			t.Fatalf("expected dash at %d in %q", i, s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		id := ServiceID(raw)
		back, err := ParseServiceID(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"267c67a0",
		"267c67a0-dd67-4b95-beb0-e6763e117b0",   // too short
		"267c67a0-dd67-4b95-beb0-e6763e117b033", // too long
		"267c67a0xdd67-4b95-beb0-e6763e117b03",  // wrong separator
		"zzzzzzzz-dd67-4b95-beb0-e6763e117b03",  // non-hex
		"267c67a0-dd67-4b95-beb0-e6763e117bzz",  // non-hex tail
	}
	for _, s := range bad {
		if _, err := ParseServiceID(s); err == nil {
			t.Fatalf("ParseServiceID(%q) accepted garbage", s)
		}
	}
}

func TestParsePaperExampleID(t *testing.T) {
	// The exact service ID shown in the paper's Fig. 2.
	const paper = "267c67a0-dd67-4b95-beb0-e6763e117b03"
	id, err := ParseServiceID(paper)
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != paper {
		t.Fatalf("round trip = %q", id.String())
	}
	if id.Short() != "267c67a0" {
		t.Fatalf("Short = %q", id.Short())
	}
}

func TestZeroIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if NewServiceID().IsZero() {
		t.Fatal("fresh ID reported zero")
	}
}

func TestTextMarshaling(t *testing.T) {
	id := NewServiceID()
	b, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back ServiceID
	if err := back.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip mismatch: %v vs %v", back, id)
	}
	if err := back.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("UnmarshalText accepted garbage")
	}
}

func TestSequenceMonotonic(t *testing.T) {
	var s Sequence
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		n := s.Next()
		if n <= prev {
			t.Fatalf("sequence not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
	if s.Current() != prev {
		t.Fatalf("Current = %d, want %d", s.Current(), prev)
	}
}

func TestSequenceConcurrent(t *testing.T) {
	var s Sequence
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Next()
			}
		}()
	}
	wg.Wait()
	if got := s.Current(); got != goroutines*per {
		t.Fatalf("Current = %d, want %d", got, goroutines*per)
	}
}
