package discovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
)

// The UDP discovery protocol mirrors Jini's multicast announcement
// protocol: each lookup service periodically datagrams an announcement
// carrying its identity, groups, and a unicast locator (host:port of its
// RPC endpoint). Listeners track announcements and expire registrars whose
// announcements stop arriving. The protocol is transport-agnostic about
// the registrar handle itself: a Resolver turns a locator string into a
// registry.Registrar (an srpc client in real deployments, a test double in
// tests).

// protocolMagic distinguishes sensorcer announcements from stray datagrams.
const protocolMagic = "SNSRCR1"

// Packet is the wire form of one announcement.
type Packet struct {
	Magic   string        `json:"magic"`
	ID      ids.ServiceID `json:"id"`
	Name    string        `json:"name"`
	Groups  []string      `json:"groups"`
	Locator string        `json:"locator"`
}

// EncodePacket serializes an announcement.
func EncodePacket(p Packet) ([]byte, error) {
	p.Magic = protocolMagic
	return json.Marshal(p)
}

// ErrBadPacket reports a datagram that is not a sensorcer announcement.
var ErrBadPacket = errors.New("discovery: not a sensorcer announcement")

// DecodePacket parses and validates an announcement datagram.
func DecodePacket(b []byte) (Packet, error) {
	var p Packet
	if err := json.Unmarshal(b, &p); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	if p.Magic != protocolMagic {
		return Packet{}, fmt.Errorf("%w: magic %q", ErrBadPacket, p.Magic)
	}
	if p.ID.IsZero() {
		return Packet{}, fmt.Errorf("%w: zero registrar id", ErrBadPacket)
	}
	return p, nil
}

// Announcer periodically datagrams a registrar announcement to a UDP
// destination (multicast group or unicast listener).
type Announcer struct {
	conn     *net.UDPConn
	packet   []byte
	interval time.Duration
	clock    clockwork.Clock
	stop     chan struct{}
	done     chan struct{}
}

// NewAnnouncer starts announcing to dst (e.g. "239.77.86.9:4160" or
// "127.0.0.1:4160") every interval. The first announcement is sent
// immediately.
func NewAnnouncer(dst string, p Packet, interval time.Duration) (*Announcer, error) {
	addr, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return nil, fmt.Errorf("discovery: resolve %s: %w", dst, err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("discovery: dial %s: %w", dst, err)
	}
	buf, err := EncodePacket(p)
	if err != nil {
		conn.Close()
		return nil, err
	}
	a := &Announcer{
		conn:     conn,
		packet:   buf,
		interval: interval,
		clock:    clockwork.Real(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

func (a *Announcer) loop() {
	defer close(a.done)
	timer := a.clock.NewTimer(a.interval)
	defer timer.Stop()
	a.conn.Write(a.packet)
	for {
		select {
		case <-timer.C():
			a.conn.Write(a.packet)
			timer.Reset(a.interval)
		case <-a.stop:
			return
		}
	}
}

// Stop halts announcements and closes the socket.
func (a *Announcer) Stop() {
	close(a.stop)
	<-a.done
	a.conn.Close()
}

// Resolver converts an announcement locator into a registrar handle.
type Resolver func(locator string) (registry.Registrar, error)

// UDPListener receives announcements on a UDP socket and maintains the set
// of live registrars, expiring any whose announcements stop for longer
// than the configured timeout. Discovered registrars are delivered to an
// attached Bus, so Managers and Joins work identically over UDP and
// in-process transports.
type UDPListener struct {
	conn    *net.UDPConn
	resolve Resolver
	bus     *Bus
	clock   clockwork.Clock
	timeout time.Duration
	groups  map[string]bool

	mu      sync.Mutex
	entries map[ids.ServiceID]*udpEntry
	closed  bool
	done    chan struct{}
	reaped  chan struct{}
}

type udpEntry struct {
	lastSeen time.Time
	cancel   func()
}

// NewUDPListener binds addr (e.g. "127.0.0.1:0") and feeds announcements
// for the given groups into bus. timeout governs expiry of silent
// registrars.
func NewUDPListener(addr string, groups []string, bus *Bus, resolve Resolver, clock clockwork.Clock, timeout time.Duration) (*UDPListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("discovery: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("discovery: listen %s: %w", addr, err)
	}
	l := &UDPListener{
		conn:    conn,
		resolve: resolve,
		bus:     bus,
		clock:   clock,
		timeout: timeout,
		groups:  groupSet(groups),
		entries: make(map[ids.ServiceID]*udpEntry),
		done:    make(chan struct{}),
		reaped:  make(chan struct{}),
	}
	go l.readLoop()
	go l.reapLoop()
	return l, nil
}

// Addr returns the bound UDP address, useful when listening on port 0.
func (l *UDPListener) Addr() string { return l.conn.LocalAddr().String() }

func (l *UDPListener) readLoop() {
	defer close(l.done)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		p, err := DecodePacket(buf[:n])
		if err != nil {
			continue // not ours
		}
		l.handle(p)
	}
}

func (l *UDPListener) handle(p Packet) {
	if !groupsMatch(l.groups, groupSet(p.Groups)) {
		return
	}
	now := l.clock.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if e, ok := l.entries[p.ID]; ok {
		e.lastSeen = now
		l.mu.Unlock()
		return
	}
	// Placeholder so concurrent announcements don't double-resolve.
	e := &udpEntry{lastSeen: now}
	l.entries[p.ID] = e
	l.mu.Unlock()

	reg, err := l.resolve(p.Locator)
	if err != nil || reg == nil {
		l.mu.Lock()
		delete(l.entries, p.ID)
		l.mu.Unlock()
		return
	}
	cancel := l.bus.Announce(reg, p.Groups...)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		cancel()
		return
	}
	e.cancel = cancel
	l.mu.Unlock()
}

func (l *UDPListener) reapLoop() {
	defer close(l.reaped)
	for {
		timer := l.clock.NewTimer(l.timeout / 2)
		select {
		case <-timer.C():
		case <-l.done:
			timer.Stop()
			return
		}
		now := l.clock.Now()
		var cancels []func()
		l.mu.Lock()
		for id, e := range l.entries {
			if now.Sub(e.lastSeen) > l.timeout {
				if e.cancel != nil {
					cancels = append(cancels, e.cancel)
				}
				delete(l.entries, id)
			}
		}
		l.mu.Unlock()
		for _, c := range cancels {
			c()
		}
	}
}

// Close stops listening and withdraws every discovered registrar from the
// bus.
func (l *UDPListener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	var cancels []func()
	for _, e := range l.entries {
		if e.cancel != nil {
			cancels = append(cancels, e.cancel)
		}
	}
	l.entries = map[ids.ServiceID]*udpEntry{}
	l.mu.Unlock()
	l.conn.Close()
	<-l.done
	<-l.reaped
	for _, c := range cancels {
		c()
	}
}
