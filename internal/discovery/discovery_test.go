package discovery

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newLUS(name string) *registry.LookupService {
	return registry.New(name, clockwork.NewFake(epoch))
}

func TestBusAnnounceThenWatch(t *testing.T) {
	bus := NewBus()
	lus := newLUS("lus-1")
	defer lus.Close()
	cancel := bus.Announce(lus)
	defer cancel()

	m := NewManager(bus)
	defer m.Terminate()
	regs := m.Registrars()
	if len(regs) != 1 || regs[0].ID() != lus.ID() {
		t.Fatalf("Registrars = %v", regs)
	}
}

func TestBusWatchThenAnnounce(t *testing.T) {
	bus := NewBus()
	m := NewManager(bus)
	defer m.Terminate()

	found := make(chan registry.Registrar, 1)
	m.OnDiscovered(func(r registry.Registrar) { found <- r })

	lus := newLUS("lus-1")
	defer lus.Close()
	cancel := bus.Announce(lus)
	defer cancel()

	select {
	case r := <-found:
		if r.ID() != lus.ID() {
			t.Fatal("wrong registrar discovered")
		}
	case <-time.After(time.Second):
		t.Fatal("discovery callback never fired")
	}
}

func TestBusGroupIsolation(t *testing.T) {
	bus := NewBus()
	lusA := newLUS("a")
	defer lusA.Close()
	lusB := newLUS("b")
	defer lusB.Close()
	defer bus.Announce(lusA, "farm")()
	defer bus.Announce(lusB, "lab")()

	m := NewManager(bus, "farm")
	defer m.Terminate()
	regs := m.Registrars()
	if len(regs) != 1 || regs[0].ID() != lusA.ID() {
		t.Fatalf("group filter failed: %v", regs)
	}
}

func TestBusWildcardGroups(t *testing.T) {
	bus := NewBus()
	lus := newLUS("a")
	defer lus.Close()
	defer bus.Announce(lus, "private")()

	m := NewManager(bus, AllGroups)
	defer m.Terminate()
	if len(m.Registrars()) != 1 {
		t.Fatal("wildcard manager missed announcement")
	}
	if got := bus.Registrars(AllGroups); len(got) != 1 {
		t.Fatalf("bus.Registrars(*) = %d", len(got))
	}
}

func TestBusDiscarded(t *testing.T) {
	bus := NewBus()
	lus := newLUS("a")
	defer lus.Close()
	cancel := bus.Announce(lus)

	m := NewManager(bus)
	defer m.Terminate()
	gone := make(chan registry.Registrar, 1)
	m.OnDiscarded(func(r registry.Registrar) { gone <- r })
	cancel()
	cancel() // idempotent
	select {
	case r := <-gone:
		if r.ID() != lus.ID() {
			t.Fatal("wrong registrar discarded")
		}
	case <-time.After(time.Second):
		t.Fatal("discard callback never fired")
	}
	if len(m.Registrars()) != 0 {
		t.Fatal("registrar still tracked after discard")
	}
}

func TestManagerDiscardManual(t *testing.T) {
	bus := NewBus()
	lus := newLUS("a")
	defer lus.Close()
	defer bus.Announce(lus)()
	m := NewManager(bus)
	defer m.Terminate()
	m.Discard(lus)
	if len(m.Registrars()) != 0 {
		t.Fatal("manual discard failed")
	}
}

func TestManagerTerminateStopsCallbacks(t *testing.T) {
	bus := NewBus()
	m := NewManager(bus)
	var mu sync.Mutex
	count := 0
	m.OnDiscovered(func(registry.Registrar) { mu.Lock(); count++; mu.Unlock() })
	m.Terminate()
	m.Terminate() // idempotent
	lus := newLUS("late")
	defer lus.Close()
	defer bus.Announce(lus)()
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatal("callback fired after Terminate")
	}
}

func TestJoinRegistersEverywhere(t *testing.T) {
	bus := NewBus()
	lus1 := newLUS("one")
	defer lus1.Close()
	lus2 := newLUS("two")
	defer lus2.Close()
	defer bus.Announce(lus1)()
	defer bus.Announce(lus2)()

	m := NewManager(bus)
	defer m.Terminate()
	item := registry.ServiceItem{
		Service:    "probe",
		Types:      []string{"SensorDataAccessor"},
		Attributes: attr.Set{attr.Name("Neem-Sensor")},
	}
	j := NewJoin(clockwork.Real(), m, item)
	defer j.Terminate()

	if j.RegistrarCount() != 2 {
		t.Fatalf("RegistrarCount = %d, want 2", j.RegistrarCount())
	}
	for _, lus := range []*registry.LookupService{lus1, lus2} {
		it, err := lus.LookupOne(registry.ByName("Neem-Sensor"))
		if err != nil {
			t.Fatalf("%s: %v", lus.Name(), err)
		}
		if it.ID != j.ServiceID() {
			t.Fatal("item registered under different IDs")
		}
	}
}

func TestJoinRegistersOnLateRegistrar(t *testing.T) {
	bus := NewBus()
	m := NewManager(bus)
	defer m.Terminate()
	item := registry.ServiceItem{Service: "p", Types: []string{"X"}, Attributes: attr.Set{attr.Name("S")}}
	j := NewJoin(clockwork.Real(), m, item)
	defer j.Terminate()

	lus := newLUS("late")
	defer lus.Close()
	defer bus.Announce(lus)()
	if j.RegistrarCount() != 1 {
		t.Fatalf("RegistrarCount = %d", j.RegistrarCount())
	}
	if _, err := lus.LookupOne(registry.ByName("S")); err != nil {
		t.Fatal("join did not register on late registrar")
	}
}

func TestJoinTerminateDeregisters(t *testing.T) {
	bus := NewBus()
	lus := newLUS("one")
	defer lus.Close()
	defer bus.Announce(lus)()
	m := NewManager(bus)
	defer m.Terminate()
	j := NewJoin(clockwork.Real(), m, registry.ServiceItem{
		Service: "p", Types: []string{"X"}, Attributes: attr.Set{attr.Name("S")},
	})
	j.Terminate()
	j.Terminate() // idempotent
	if lus.Len() != 0 {
		t.Fatal("item survived Join.Terminate")
	}
}

func TestJoinSetAttributes(t *testing.T) {
	bus := NewBus()
	lus := newLUS("one")
	defer lus.Close()
	defer bus.Announce(lus)()
	m := NewManager(bus)
	defer m.Terminate()
	j := NewJoin(clockwork.Real(), m, registry.ServiceItem{
		Service: "p", Types: []string{"X"}, Attributes: attr.Set{attr.Name("S")},
	})
	defer j.Terminate()
	j.SetAttributes(attr.Set{attr.Name("S"), attr.Comment("updated")})
	it, err := lus.LookupOne(registry.ByName("S"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Attributes.Find(attr.TypeComment); !ok {
		t.Fatal("attribute update did not propagate")
	}
	if _, ok := j.Attributes().Find(attr.TypeComment); !ok {
		t.Fatal("local attributes not updated")
	}
}

func TestJoinKeepsLeaseAlive(t *testing.T) {
	// Real clock, short leases: the join's renewal manager must keep the
	// registration alive across several lease terms.
	clock := clockwork.Real()
	lus := registry.New("one", clock, registry.WithLeasePolicy(leasePolicy(40*time.Millisecond)))
	defer lus.Close()
	bus := NewBus()
	defer bus.Announce(lus)()
	m := NewManager(bus)
	defer m.Terminate()
	j := NewJoin(clock, m, registry.ServiceItem{
		Service: "p", Types: []string{"X"}, Attributes: attr.Set{attr.Name("S")},
	}, WithLeaseDuration(40*time.Millisecond))
	defer j.Terminate()

	time.Sleep(250 * time.Millisecond)
	if _, err := lus.LookupOne(registry.ByName("S")); err != nil {
		t.Fatal("registration lapsed despite join renewal")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	f := func(name string, groups []string, locator string) bool {
		p := Packet{ID: ids.NewServiceID(), Name: name, Groups: groups, Locator: locator}
		b, err := EncodePacket(p)
		if err != nil {
			return false
		}
		back, err := DecodePacket(b)
		if err != nil {
			return false
		}
		if back.ID != p.ID || back.Name != p.Name || back.Locator != p.Locator {
			return false
		}
		return len(back.Groups) == len(p.Groups)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePacketRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte("not json"),
		[]byte(`{}`),
		[]byte(`{"magic":"WRONG","id":"267c67a0-dd67-4b95-beb0-e6763e117b03"}`),
		[]byte(`{"magic":"SNSRCR1","id":"00000000-0000-0000-0000-000000000000"}`),
	}
	for i, b := range cases {
		if _, err := DecodePacket(b); !errors.Is(err, ErrBadPacket) {
			t.Errorf("case %d: err = %v, want ErrBadPacket", i, err)
		}
	}
}

func TestUDPDiscoveryEndToEnd(t *testing.T) {
	bus := NewBus()
	lus := newLUS("udp-lus")
	defer lus.Close()
	resolver := func(locator string) (registry.Registrar, error) {
		if locator != "127.0.0.1:9000" {
			return nil, errors.New("unknown locator")
		}
		return lus, nil
	}
	listener, err := NewUDPListener("127.0.0.1:0", nil, bus, resolver, clockwork.Real(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	ann, err := NewAnnouncer(listener.Addr(), Packet{
		ID: lus.ID(), Name: lus.Name(), Groups: []string{PublicGroup}, Locator: "127.0.0.1:9000",
	}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Stop()

	m := NewManager(bus)
	defer m.Terminate()
	found := make(chan registry.Registrar, 1)
	m.OnDiscovered(func(r registry.Registrar) {
		select {
		case found <- r:
		default:
		}
	})
	select {
	case r := <-found:
		if r.ID() != lus.ID() {
			t.Fatal("wrong registrar over UDP")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("UDP discovery timed out")
	}
}

func TestUDPDiscoveryExpiry(t *testing.T) {
	bus := NewBus()
	lus := newLUS("udp-lus")
	defer lus.Close()
	resolver := func(string) (registry.Registrar, error) { return lus, nil }
	listener, err := NewUDPListener("127.0.0.1:0", nil, bus, resolver, clockwork.Real(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	ann, err := NewAnnouncer(listener.Addr(), Packet{
		ID: lus.ID(), Name: lus.Name(), Groups: []string{PublicGroup}, Locator: "x",
	}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(bus)
	defer m.Terminate()
	gone := make(chan registry.Registrar, 1)
	m.OnDiscarded(func(r registry.Registrar) {
		select {
		case gone <- r:
		default:
		}
	})

	// Wait until discovered, then stop announcing and expect expiry.
	deadline := time.Now().Add(3 * time.Second)
	for len(m.Registrars()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(m.Registrars()) == 0 {
		t.Fatal("never discovered")
	}
	ann.Stop()
	select {
	case <-gone:
	case <-time.After(3 * time.Second):
		t.Fatal("silent registrar never expired")
	}
}

func TestUDPDiscoveryGroupFilter(t *testing.T) {
	bus := NewBus()
	lus := newLUS("udp-lus")
	defer lus.Close()
	resolved := make(chan struct{}, 1)
	resolver := func(string) (registry.Registrar, error) {
		select {
		case resolved <- struct{}{}:
		default:
		}
		return lus, nil
	}
	listener, err := NewUDPListener("127.0.0.1:0", []string{"lab"}, bus, resolver, clockwork.Real(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	ann, err := NewAnnouncer(listener.Addr(), Packet{
		ID: lus.ID(), Name: "x", Groups: []string{"farm"}, Locator: "y",
	}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Stop()
	select {
	case <-resolved:
		t.Fatal("announcement for foreign group was resolved")
	case <-time.After(150 * time.Millisecond):
	}
}

// leasePolicy builds a registry lease policy with the given max.
func leasePolicy(max time.Duration) lease.Policy {
	return lease.Policy{Max: max, Min: time.Millisecond}
}
