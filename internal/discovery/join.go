package discovery

import (
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
)

// Join keeps one service item registered on every discovered lookup
// service and its registration leases renewed — the Jini JoinManager. A
// provider constructs a Join at startup and the service is thereafter
// visible network-wide until Terminate (orderly departure) or process
// death (leases lapse and the registrars sweep it — the paper's crash
// semantics).
type Join struct {
	clock    clockwork.Clock
	leaseDur time.Duration
	renewals *lease.RenewalManager
	mgr      *Manager

	mu         sync.Mutex
	item       registry.ServiceItem
	entries    map[ids.ServiceID]*joinEntry // registrar ID -> registration
	terminated bool
}

type joinEntry struct {
	registrar registry.Registrar
	lease     *lease.Lease
}

// JoinOption customizes a Join.
type JoinOption func(*Join)

// WithLeaseDuration sets the requested registration lease term (default 30s,
// clamped by each registrar's policy).
func WithLeaseDuration(d time.Duration) JoinOption {
	return func(j *Join) { j.leaseDur = d }
}

// NewJoin starts managing the item's registrations across all registrars
// the Manager discovers. A zero item ID is assigned here so the service has
// one identity on every registrar.
func NewJoin(clock clockwork.Clock, mgr *Manager, item registry.ServiceItem, opts ...JoinOption) *Join {
	if item.ID.IsZero() {
		item.ID = ids.NewServiceID()
	}
	j := &Join{
		clock:    clock,
		leaseDur: 30 * time.Second,
		mgr:      mgr,
		item:     item.Clone(),
		entries:  make(map[ids.ServiceID]*joinEntry),
	}
	for _, o := range opts {
		o(j)
	}
	j.renewals = lease.NewRenewalManager(clock, lease.WithRequest(j.leaseDur))
	mgr.OnDiscovered(j.onDiscovered)
	mgr.OnDiscarded(j.onDiscarded)
	return j
}

// ServiceID returns the item's network-wide identity.
func (j *Join) ServiceID() ids.ServiceID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.item.ID
}

// RegistrarCount reports how many registrars currently hold a live
// registration for the item.
func (j *Join) RegistrarCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

func (j *Join) onDiscovered(reg registry.Registrar) {
	j.mu.Lock()
	if j.terminated || j.entries[reg.ID()] != nil {
		j.mu.Unlock()
		return
	}
	item := j.item.Clone()
	j.mu.Unlock()

	r, err := reg.Register(item, j.leaseDur)
	if err != nil {
		return
	}
	l := r.Lease

	j.mu.Lock()
	if j.terminated {
		j.mu.Unlock()
		_ = l.Cancel()
		return
	}
	j.entries[reg.ID()] = &joinEntry{registrar: reg, lease: &l}
	j.mu.Unlock()
	j.renewals.Manage(&l)
}

func (j *Join) onDiscarded(reg registry.Registrar) {
	j.mu.Lock()
	e, ok := j.entries[reg.ID()]
	if ok {
		delete(j.entries, reg.ID())
	}
	j.mu.Unlock()
	if ok {
		j.renewals.Release(e.lease)
	}
}

// SetAttributes replaces the item's attribute set everywhere.
func (j *Join) SetAttributes(attrs attr.Set) {
	j.mu.Lock()
	j.item.Attributes = attr.CloneSet(attrs)
	id := j.item.ID
	regs := make([]registry.Registrar, 0, len(j.entries))
	for _, e := range j.entries {
		regs = append(regs, e.registrar)
	}
	j.mu.Unlock()
	for _, reg := range regs {
		_ = reg.ModifyAttributes(id, attrs)
	}
}

// Attributes snapshots the current attribute set.
func (j *Join) Attributes() attr.Set {
	j.mu.Lock()
	defer j.mu.Unlock()
	return attr.CloneSet(j.item.Attributes)
}

// Terminate deregisters the item from every registrar (orderly departure)
// and stops lease renewal.
func (j *Join) Terminate() {
	j.mu.Lock()
	if j.terminated {
		j.mu.Unlock()
		return
	}
	j.terminated = true
	id := j.item.ID
	entries := make([]*joinEntry, 0, len(j.entries))
	for _, e := range j.entries {
		entries = append(entries, e)
	}
	j.entries = map[ids.ServiceID]*joinEntry{}
	j.mu.Unlock()

	for _, e := range entries {
		j.renewals.Release(e.lease)
		_ = e.lease.Cancel()
		_ = e.registrar.Deregister(id)
	}
	j.renewals.Stop()
}
