package discovery

import (
	"sync"

	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
)

// Manager tracks the set of lookup services discovered in a group set,
// delivering discovered/discarded callbacks — the LookupDiscoveryManager of
// the Jini programming model, and the "Lookup Discovery Service" slot in
// the paper's Fig. 2 service list.
type Manager struct {
	mu         sync.Mutex
	registrars map[ids.ServiceID]registry.Registrar
	discovered []func(registry.Registrar)
	discarded  []func(registry.Registrar)
	cancel     func()
	terminated bool
}

// NewManager starts discovery on the bus for the given groups (PublicGroup
// when none given). Call Terminate when done.
func NewManager(bus *Bus, groups ...string) *Manager {
	m := &Manager{registrars: make(map[ids.ServiceID]registry.Registrar)}
	m.cancel = bus.watch(groups, m.onDiscovered, m.onDiscarded)
	return m
}

func (m *Manager) onDiscovered(reg registry.Registrar) {
	m.mu.Lock()
	if m.terminated || m.registrars[reg.ID()] != nil {
		m.mu.Unlock()
		return
	}
	m.registrars[reg.ID()] = reg
	cbs := append([]func(registry.Registrar){}, m.discovered...)
	m.mu.Unlock()
	for _, fn := range cbs {
		fn(reg)
	}
}

func (m *Manager) onDiscarded(reg registry.Registrar) {
	m.mu.Lock()
	if m.registrars[reg.ID()] == nil {
		m.mu.Unlock()
		return
	}
	delete(m.registrars, reg.ID())
	cbs := append([]func(registry.Registrar){}, m.discarded...)
	m.mu.Unlock()
	for _, fn := range cbs {
		fn(reg)
	}
}

// OnDiscovered registers a callback for newly discovered registrars. Known
// registrars are replayed immediately so late subscribers miss nothing.
func (m *Manager) OnDiscovered(fn func(registry.Registrar)) {
	m.mu.Lock()
	m.discovered = append(m.discovered, fn)
	replay := make([]registry.Registrar, 0, len(m.registrars))
	for _, reg := range m.registrars {
		replay = append(replay, reg)
	}
	m.mu.Unlock()
	for _, reg := range replay {
		fn(reg)
	}
}

// OnDiscarded registers a callback for registrars that leave the network.
func (m *Manager) OnDiscarded(fn func(registry.Registrar)) {
	m.mu.Lock()
	m.discarded = append(m.discarded, fn)
	m.mu.Unlock()
}

// Registrars snapshots the currently known registrars.
func (m *Manager) Registrars() []registry.Registrar {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]registry.Registrar, 0, len(m.registrars))
	for _, reg := range m.registrars {
		out = append(out, reg)
	}
	return out
}

// Discard drops a registrar from the managed set (e.g. after it failed an
// operation); discarded callbacks fire. If the registrar is announced again
// it will be re-discovered by a fresh announcement.
func (m *Manager) Discard(reg registry.Registrar) { m.onDiscarded(reg) }

// Terminate stops discovery. Callbacks will no longer fire.
func (m *Manager) Terminate() {
	m.mu.Lock()
	if m.terminated {
		m.mu.Unlock()
		return
	}
	m.terminated = true
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
