// Package discovery implements the Jini discovery/join protocols that let
// sensorcer services find lookup services without configuration. Two
// transports are provided:
//
//   - Bus: an in-process "multicast segment". Lookup services announce
//     themselves into named groups; Managers subscribe to groups and learn
//     of arrivals and departures. This is the default transport for
//     single-process federations, examples and tests.
//   - UDP (udp.go): a real announcement protocol over UDP for
//     cross-process deployments, with the same group semantics.
//
// On top of either transport, Manager implements the LookupDiscovery
// pattern (discovered/discarded callbacks) and JoinManager keeps a service
// registered — with its lease renewed — on every discovered registrar,
// which is how providers in the paper "appear and go away in the network
// dynamically" (§VII).
package discovery

import (
	"sync"

	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
)

// AllGroups is the wildcard group name: a Manager configured with it
// discovers every announced registrar, and a registrar announced into it is
// visible to every Manager.
const AllGroups = "*"

// PublicGroup is the conventional group for sensorcer federations.
const PublicGroup = "sensorcer"

// Bus is an in-process discovery segment. It is safe for concurrent use.
type Bus struct {
	mu        sync.Mutex
	announced map[ids.ServiceID]*announcement
	watchers  map[*watcher]bool
}

type announcement struct {
	reg    registry.Registrar
	groups map[string]bool
}

type watcher struct {
	groups     map[string]bool
	discovered func(registry.Registrar)
	discarded  func(registry.Registrar)
}

// NewBus creates an empty discovery segment.
func NewBus() *Bus {
	return &Bus{
		announced: make(map[ids.ServiceID]*announcement),
		watchers:  make(map[*watcher]bool),
	}
}

// groupsMatch reports whether a watcher interested in want sees an
// announcement into have (either side may use the AllGroups wildcard).
func groupsMatch(want, have map[string]bool) bool {
	if want[AllGroups] || have[AllGroups] {
		return true
	}
	for g := range want {
		if have[g] {
			return true
		}
	}
	return false
}

func groupSet(groups []string) map[string]bool {
	m := make(map[string]bool, len(groups))
	for _, g := range groups {
		m[g] = true
	}
	if len(m) == 0 {
		m[PublicGroup] = true
	}
	return m
}

// Announce makes reg discoverable in the given groups (PublicGroup when
// none are named) and returns a cancel function that withdraws the
// announcement, notifying watchers of the departure.
func (b *Bus) Announce(reg registry.Registrar, groups ...string) (cancel func()) {
	ann := &announcement{reg: reg, groups: groupSet(groups)}
	b.mu.Lock()
	b.announced[reg.ID()] = ann
	var notify []func(registry.Registrar)
	for w := range b.watchers {
		if groupsMatch(w.groups, ann.groups) {
			notify = append(notify, w.discovered)
		}
	}
	b.mu.Unlock()
	for _, fn := range notify {
		fn(reg)
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.announced, reg.ID())
			var drops []func(registry.Registrar)
			for w := range b.watchers {
				if groupsMatch(w.groups, ann.groups) {
					drops = append(drops, w.discarded)
				}
			}
			b.mu.Unlock()
			for _, fn := range drops {
				fn(reg)
			}
		})
	}
}

// watch subscribes to group announcements; existing matching announcements
// are replayed synchronously. The returned cancel removes the subscription.
func (b *Bus) watch(groups []string, discovered, discarded func(registry.Registrar)) (cancel func()) {
	w := &watcher{groups: groupSet(groups), discovered: discovered, discarded: discarded}
	b.mu.Lock()
	b.watchers[w] = true
	var replay []registry.Registrar
	for _, ann := range b.announced {
		if groupsMatch(w.groups, ann.groups) {
			replay = append(replay, ann.reg)
		}
	}
	b.mu.Unlock()
	for _, reg := range replay {
		discovered(reg)
	}
	return func() {
		b.mu.Lock()
		delete(b.watchers, w)
		b.mu.Unlock()
	}
}

// Registrars returns the registrars currently announced into the groups.
func (b *Bus) Registrars(groups ...string) []registry.Registrar {
	want := groupSet(groups)
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []registry.Registrar
	for _, ann := range b.announced {
		if groupsMatch(want, ann.groups) {
			out = append(out, ann.reg)
		}
	}
	return out
}
