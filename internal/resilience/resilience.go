// Package resilience is the single place sensorcer expresses "try again,
// but not forever": a Policy bundles bounded retries, exponential backoff
// with jitter, a per-attempt deadline, and an optional circuit breaker.
// Before this package each layer hand-rolled its own timeout/retry code
// (srpc calls, exertion rebinding, spacer result waits, lease renewal);
// they now all run operations through a Policy, so degradation behavior is
// configured — and chaos-tested — in one vocabulary.
//
// A zero Policy runs the operation exactly once with no deadline, no
// backoff and no breaker, which keeps it safe to embed as an optional
// field: callers that never configure one get the historical behavior.
package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// Defaults for Policy fields left zero when retries are enabled.
const (
	DefaultBaseBackoff = 10 * time.Millisecond
	DefaultMaxBackoff  = time.Second
)

// Attempt tells the operation which try this is and what deadline applies.
type Attempt struct {
	// N is the 1-based attempt number.
	N int
	// Timeout is the per-attempt deadline (0 = none). Operations that
	// support native timeouts (srpc calls, space takes) should honor it;
	// the Policy does not forcibly interrupt an attempt, because killing
	// a goroutine mid-operation would leak it.
	Timeout time.Duration
}

// Policy is a reusable description of how to run a fallible operation.
// Policies are values: copy freely, share between goroutines.
type Policy struct {
	// MaxAttempts bounds the total tries (0 or 1 = no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles every
	// further retry. Zero means DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the (pre-jitter) backoff. Zero means
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Jitter in [0, 1] randomizes each backoff within
	// [d*(1-Jitter), d], decorrelating retry storms. Zero disables.
	Jitter float64
	// AttemptTimeout is handed to the operation via Attempt.Timeout.
	AttemptTimeout time.Duration
	// Clock drives backoff sleeps (nil = real clock). Chaos tests inject
	// a fake so retry schedules are deterministic.
	Clock clockwork.Clock
	// Retryable filters errors worth retrying (nil = retry everything).
	// Non-retryable errors return immediately.
	Retryable func(error) bool
	// Breaker, when set, is consulted before and informed after every
	// attempt. Use a per-provider breaker from a BreakerSet when the
	// policy guards calls to one specific peer.
	Breaker *Breaker
}

// jitterRand is the shared jitter source; jitter only perturbs sleep
// lengths, never control flow, so a process-global source keeps Policy a
// plain value without threatening chaos-test determinism.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(1))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// backoff computes the sleep before retry n+1 (n is the failed attempt's
// 1-based number).
func (p Policy) backoff(n int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d = time.Duration(float64(d) * (1 - j*jitterFloat()))
	}
	return d
}

// Run executes op under the policy and returns the final attempt's error
// (unwrapped, so call sites keep their error identity).
func (p Policy) Run(op func(Attempt) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	clock := p.Clock
	if clock == nil {
		clock = clockwork.Real()
	}
	var err error
	for n := 1; ; n++ {
		if berr := p.Breaker.Allow(); berr != nil {
			if err != nil {
				// A previous attempt's error is more informative
				// than "breaker open".
				return err
			}
			return berr
		}
		err = op(Attempt{N: n, Timeout: p.AttemptTimeout})
		p.Breaker.Record(err)
		if err == nil {
			return nil
		}
		if n >= attempts {
			return err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		clock.Sleep(p.backoff(n))
	}
}

// Do is Run for operations that produce a value.
func Do[T any](p Policy, op func(Attempt) (T, error)) (T, error) {
	var out T
	err := p.Run(func(a Attempt) error {
		v, err := op(a)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

// NotRetryable wraps sentinel errors into a Retryable predicate that
// refuses them and retries everything else.
func NotRetryable(sentinels ...error) func(error) bool {
	return func(err error) bool {
		for _, s := range sentinels {
			if errors.Is(err, s) {
				return false
			}
		}
		return true
	}
}
