package resilience

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
)

var errBoom = errors.New("boom")

func TestZeroPolicyRunsOnce(t *testing.T) {
	calls := 0
	err := Policy{}.Run(func(a Attempt) error {
		calls++
		if a.N != 1 || a.Timeout != 0 {
			t.Fatalf("attempt = %+v", a)
		}
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	calls := 0
	p := Policy{MaxAttempts: 5, Clock: fake, BaseBackoff: time.Millisecond}
	err := p.Run(func(a Attempt) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestAttemptsBounded(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	calls := 0
	p := Policy{MaxAttempts: 3, Clock: fake}
	err := p.Run(func(Attempt) error { calls++; return errBoom })
	if !errors.Is(err, errBoom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestNonRetryableReturnsImmediately(t *testing.T) {
	sentinel := errors.New("fatal")
	calls := 0
	p := Policy{MaxAttempts: 5, Clock: clockwork.NewFake(time.Unix(0, 0)), Retryable: NotRetryable(sentinel)}
	err := p.Run(func(Attempt) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestAttemptTimeoutPropagated(t *testing.T) {
	p := Policy{AttemptTimeout: 42 * time.Millisecond}
	_ = p.Run(func(a Attempt) error {
		if a.Timeout != 42*time.Millisecond {
			t.Fatalf("timeout = %v", a.Timeout)
		}
		return nil
	})
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestJitterStaysInRange(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := p.backoff(1)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 100ms]", d)
		}
	}
}

func TestDoReturnsValue(t *testing.T) {
	v, err := Do(Policy{MaxAttempts: 2, Clock: clockwork.NewFake(time.Unix(0, 0))}, func(a Attempt) (int, error) {
		if a.N == 1 {
			return 0, errBoom
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	b := NewBreaker(fake, BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(errBoom)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want OPEN", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(clockwork.NewFake(time.Unix(0, 0)), BreakerConfig{FailureThreshold: 3})
	b.Record(errBoom)
	b.Record(errBoom)
	b.Record(nil)
	b.Record(errBoom)
	b.Record(errBoom)
	if b.State() != Closed {
		t.Fatalf("state = %v after interleaved success", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	b := NewBreaker(fake, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Record(errBoom)
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	fake.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HALF-OPEN", b.State())
	}
	// Only one probe admitted while the first is in flight.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe allowed: %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v after probe success", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	b := NewBreaker(fake, BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Record(errBoom)
	fake.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(errBoom)
	if b.State() != Open {
		t.Fatalf("state = %v after probe failure", b.State())
	}
}

func TestPolicyWithBreakerShortCircuits(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	b := NewBreaker(fake, BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute})
	p := Policy{MaxAttempts: 10, Clock: fake, Breaker: b}
	calls := 0
	err := p.Run(func(Attempt) error { calls++; return errBoom })
	// Two attempts trip the breaker; the third Allow fails and the last
	// attempt error is surfaced.
	if !errors.Is(err, errBoom) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// With no prior attempt, the breaker error itself surfaces.
	err = p.Run(func(Attempt) error { t.Fatal("should not run"); return nil })
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err=%v, want ErrBreakerOpen", err)
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal("nil breaker rejected")
	}
	b.Record(errBoom)
	if b.State() != Closed {
		t.Fatal("nil breaker state not closed")
	}
}

func TestBreakerSet(t *testing.T) {
	fake := clockwork.NewFake(time.Unix(0, 0))
	s := NewBreakerSet(fake, BreakerConfig{FailureThreshold: 1})
	a := s.For("p1")
	if a != s.For("p1") {
		t.Fatal("For not stable per key")
	}
	a.Record(errBoom)
	states := s.States()
	if states["p1"] != Open {
		t.Fatalf("states = %v", states)
	}
	var nilSet *BreakerSet
	if nilSet.For("x") != nil {
		t.Fatal("nil set returned a breaker")
	}
	if nilSet.States() != nil {
		t.Fatal("nil set returned states")
	}
}

func TestBreakerStateString(t *testing.T) {
	if Closed.String() != "CLOSED" || Open.String() != "OPEN" || HalfOpen.String() != "HALF-OPEN" {
		t.Fatal("state strings wrong")
	}
	if BreakerState(9).String() == "" {
		t.Fatal("unknown state unrendered")
	}
}
