package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
)

// ErrBreakerOpen is returned by Allow while a breaker rejects calls.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// Closed: calls flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: calls are rejected until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probe calls are admitted; success
	// closes the breaker, failure re-opens it.
	HalfOpen
)

// String renders the state for logs.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "CLOSED"
	case Open:
		return "OPEN"
	case HalfOpen:
		return "HALF-OPEN"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes a Breaker. Zero fields take the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting
	// half-open probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrently admitted probe calls while
	// half-open (default 1).
	HalfOpenProbes int
	// SuccessesToClose is how many probe successes close the breaker
	// (default 1).
	SuccessesToClose int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	return c
}

// Breaker is a per-peer circuit breaker: after FailureThreshold
// consecutive failures it rejects calls for Cooldown, then admits a few
// probes (half-open) and closes again once they succeed — the standard
// way to stop hammering a provider that is down while still noticing when
// it comes back. All methods are safe for concurrent use and safe on a
// nil receiver (a nil breaker never rejects), so optional breaker fields
// need no guards.
type Breaker struct {
	clock clockwork.Clock
	cfg   BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int
	openedAt  time.Time
	inflight  int
	successes int
}

// NewBreaker creates a closed breaker on the clock (nil = real).
func NewBreaker(clock clockwork.Clock, cfg BreakerConfig) *Breaker {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &Breaker{clock: clock, cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed, transitioning Open→HalfOpen
// when the cooldown has elapsed. Every successful Allow must be paired
// with a Record.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clock.Since(b.openedAt) < b.cfg.Cooldown {
			return ErrBreakerOpen
		}
		b.state = HalfOpen
		b.inflight = 0
		b.successes = 0
		fallthrough
	default: // HalfOpen
		if b.inflight >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.inflight++
		return nil
	}
}

// Record reports a call outcome (nil = success).
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err != nil {
			b.fails++
			if b.fails >= b.cfg.FailureThreshold {
				b.trip()
			}
		} else {
			b.fails = 0
		}
	case HalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if err != nil {
			b.trip()
		} else {
			b.successes++
			if b.successes >= b.cfg.SuccessesToClose {
				b.state = Closed
				b.fails = 0
			}
		}
	case Open:
		// A straggler from before the trip; nothing to update.
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.clock.Now()
	b.fails = 0
	b.inflight = 0
	b.successes = 0
}

// State returns the breaker's current position (Closed for nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet is a lazily populated family of breakers keyed by peer
// identity — the Exerter keeps one per provider so a flapping provider is
// skipped during rebinding without penalizing its equivalents.
type BreakerSet struct {
	clock clockwork.Clock
	cfg   BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet creates an empty set; each breaker is built from cfg.
func NewBreakerSet(clock clockwork.Clock, cfg BreakerConfig) *BreakerSet {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &BreakerSet{clock: clock, cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns the breaker for a key, creating it closed on first use.
// Nil-safe: a nil set yields a nil (always-allowing) breaker.
func (s *BreakerSet) For(key string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = &Breaker{clock: s.clock, cfg: s.cfg}
		s.m[key] = b
	}
	return b
}

// States snapshots every tracked breaker's state (for tests and the
// browser's health panel).
func (s *BreakerSet) States() map[string]BreakerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for k, b := range s.m {
		out[k] = b.State()
	}
	return out
}
