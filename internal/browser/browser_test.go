package browser

import (
	"strings"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/spot"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

type rig struct {
	controller *Controller
	facade     *sensor.Facade
	monitor    *rio.Monitor
	nodes      []*rio.Cybernode
}

func newRig(t *testing.T) *rig {
	t.Helper()
	bus := discovery.NewBus()
	lus := registry.New("persimmon.cs.ttu.edu:4160", clockwork.NewFake(epoch))
	cancel := bus.Announce(lus)
	mgr := discovery.NewManager(bus)

	var cleanup []func()
	for name, v := range map[string]float64{
		"Neem-Sensor": 20, "Jade-Sensor": 22, "Diamond-Sensor": 24, "Coral-Sensor": 26,
	} {
		e := sensor.NewESP(name, probe.NewReplayProbe(name, "temperature", "celsius", []float64{v}, true, nil))
		j := e.Publish(clockwork.Real(), mgr)
		cleanup = append(cleanup, j.Terminate, func() { e.Close() })
	}
	facade := sensor.NewFacade("SenSORCER Facade", clockwork.Real(), mgr)
	fj := facade.Publish()

	factories := rio.NewFactoryRegistry()
	monitor := rio.NewMonitor(clockwork.Real(), nil)
	nm := facade.Network()
	nm.AttachProvisioner(sensor.NewProvisioner(monitor, factories, clockwork.Real(), mgr, nm.FindAccessor))
	node := rio.NewCybernode("Cybernode-1", rio.Capability{CPUs: 4}, factories)
	monitor.RegisterCybernode(node, time.Minute)

	t.Cleanup(func() {
		fj.Terminate()
		for _, f := range cleanup {
			f()
		}
		monitor.Close()
		mgr.Terminate()
		cancel()
		lus.Close()
	})
	return &rig{
		controller: NewController(facade, mgr),
		facade:     facade,
		monitor:    monitor,
		nodes:      []*rio.Cybernode{node},
	}
}

func TestRefreshModel(t *testing.T) {
	r := newRig(t)
	m := r.controller.Refresh()
	if len(m.Registrars) != 1 || m.Registrars[0] != "persimmon.cs.ttu.edu:4160" {
		t.Fatalf("Registrars = %v", m.Registrars)
	}
	if len(m.Values) != 4 {
		t.Fatalf("Values = %d rows", len(m.Values))
	}
	for _, v := range m.Values {
		if v.Err != "" || v.Value == 0 {
			t.Fatalf("value row = %+v", v)
		}
	}
}

func TestListCommandRendersTree(t *testing.T) {
	r := newRig(t)
	out, err := r.controller.Execute("list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Lookup services", "persimmon.cs.ttu.edu:4160",
		"[ELEMENTARY", "Neem-Sensor", "Coral-Sensor",
		"[FACADE", "SenSORCER Facade",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestPaperWorkflowThroughBrowser(t *testing.T) {
	// Drive the §VI experiment entirely through browser commands.
	r := newRig(t)
	c := r.controller
	steps := []string{
		"compose Composite-Service Neem-Sensor Jade-Sensor Diamond-Sensor",
		"expr Composite-Service (a + b + c)/3",
		"provision New-Composite Composite-Service Coral-Sensor",
		"expr New-Composite (a + b)/2",
	}
	for _, s := range steps {
		if _, err := c.Execute(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	out, err := c.Execute("value New-Composite")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "24.000") {
		t.Fatalf("value output = %q, want 24.000", out)
	}
	// Detail panel shows composition and expression (Fig. 3 panel).
	out, err = c.Execute("info New-Composite")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Sensor Name:: New-Composite",
		"Service Type:: COMPOSITE",
		"a = Composite-Service",
		"b = Coral-Sensor",
		"Compute Expression: (a + b)/2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestValuesCommand(t *testing.T) {
	r := newRig(t)
	out, err := r.controller.Execute("values")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Jade-Sensor") || !strings.Contains(out, "22.000") {
		t.Fatalf("values output:\n%s", out)
	}
}

func TestAddAndRemoveCommands(t *testing.T) {
	r := newRig(t)
	c := r.controller
	if _, err := c.Execute("compose g Neem-Sensor"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute("add g Coral-Sensor")
	if err != nil || !strings.Contains(out, "variable b") {
		t.Fatalf("add = %q, %v", out, err)
	}
	if _, err := c.Execute("remove g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute("value g"); err == nil {
		t.Fatal("removed composite still readable")
	}
}

func TestCommandErrors(t *testing.T) {
	r := newRig(t)
	c := r.controller
	bad := []string{
		"info", "value", "compose x", "add x", "expr x", "provision x",
		"remove", "bogus", "value ghost", "info ghost",
	}
	for _, s := range bad {
		if _, err := c.Execute(s); err == nil {
			t.Fatalf("%q accepted", s)
		}
	}
	// Blank and help are fine.
	if out, err := c.Execute(""); err != nil || out != "" {
		t.Fatal("blank command misbehaved")
	}
	if out, err := c.Execute("help"); err != nil || !strings.Contains(out, "compose") {
		t.Fatal("help broken")
	}
}

func TestSelectDetailForElementary(t *testing.T) {
	r := newRig(t)
	d, err := r.controller.Select("Neem-Sensor")
	if err != nil {
		t.Fatal(err)
	}
	if d.Category != sensor.CategoryElementary || len(d.Attributes) == 0 {
		t.Fatalf("detail = %+v", d)
	}
	rendered := RenderDetail(d)
	if !strings.Contains(rendered, "Service ID::") {
		t.Fatalf("rendered detail:\n%s", rendered)
	}
}

func TestValuesPanelShowsErrors(t *testing.T) {
	bus := discovery.NewBus()
	lus := registry.New("lus", clockwork.NewFake(epoch))
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	dead := sensor.NewESP("dead", probe.NewReplayProbe("dead", "k", "u", nil, false, nil))
	defer dead.Close()
	defer dead.Publish(clockwork.Real(), mgr).Terminate()
	facade := sensor.NewFacade("f", clockwork.Real(), mgr)
	c := NewController(facade, mgr)
	out, err := c.Execute("values")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<error:") {
		t.Fatalf("values output missing error row:\n%s", out)
	}
}

func TestValuesPanelShowsBattery(t *testing.T) {
	bus := discovery.NewBus()
	lus := registry.New("lus", clockwork.NewFake(epoch))
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	dev := spot.NewDevice(spot.Config{Name: "b", BatteryMicroJ: 1000})
	dev.Attach(spot.ConstantModel{Value: 20, UnitName: "celsius", KindName: "temperature"})
	e := sensor.NewESP("Battery-Sensor", probe.NewSpotProbe("Battery-Sensor", dev, "temperature", nil))
	defer e.Close()
	defer e.Publish(clockwork.Real(), mgr).Terminate()
	facade := sensor.NewFacade("f", clockwork.Real(), mgr)
	out, err := NewController(facade, mgr).Execute("values")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[battery") {
		t.Fatalf("values output missing battery column:\n%s", out)
	}
}

func TestScaleCommand(t *testing.T) {
	r := newRig(t)
	c := r.controller
	if _, err := c.Execute("provision hs Neem-Sensor Coral-Sensor"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute("scale hs 2")
	if err != nil || !strings.Contains(out, "scaled hs to 2") {
		t.Fatalf("scale = %q, %v", out, err)
	}
	if _, err := c.Execute("scale hs two"); err == nil {
		t.Fatal("non-numeric count accepted")
	}
	if _, err := c.Execute("scale"); err == nil {
		t.Fatal("missing args accepted")
	}
}
