// Package browser implements the Sensor Browser of the paper's Fig. 2: a
// zero-install, lightweight service UI attached to the SenSORCER Façade.
// Per §V-B it follows the MVC pattern: the Model holds the sensor-network
// configuration data, the View renders it (as text here — the paper used
// a Swing service UI inside Inca X), and the Controller maps user commands
// onto façade operations. It carries no heavy processing: "for the most
// part, the service UI just takes the input from the user and gives back
// result from the SenSORCER network" (§VII).
package browser

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
)

// SensorValue is one row of the "Sensor Value" panel.
type SensorValue struct {
	Name  string
	Value float64
	Unit  string
	Err   string
	// Health is the device condition (battery level) when the sensor
	// reports one.
	Health    float64
	HasHealth bool
}

// healthReporter matches sensor services able to report device condition
// (ESPs over SPOT probes implement it).
type healthReporter interface {
	Health() (float64, bool)
}

// ServiceDetail is the "Sensor Service Information" panel.
type ServiceDetail struct {
	Name       string
	Category   string
	ID         string
	Contained  []sensor.ChildInfo
	Expression string
	Attributes []string
}

// Model is the browser's data: the network configuration as last
// refreshed.
type Model struct {
	Registrars []string
	Services   []sensor.ServiceEntry
	Values     []SensorValue
	Selected   *ServiceDetail
}

// Controller mediates between user commands and the façade.
type Controller struct {
	facade *sensor.Facade
	mgr    *discovery.Manager
}

// NewController attaches a browser controller to a façade.
func NewController(facade *sensor.Facade, mgr *discovery.Manager) *Controller {
	return &Controller{facade: facade, mgr: mgr}
}

// Refresh rebuilds the model from the live network: registrar names, the
// full service list, and a value sample from every sensor service.
func (c *Controller) Refresh() *Model {
	m := &Model{}
	var regs []registry.Registrar
	if c.mgr != nil {
		regs = c.mgr.Registrars()
	}
	for _, r := range regs {
		m.Registrars = append(m.Registrars, r.Name())
	}
	sort.Strings(m.Registrars)
	m.Services = c.facade.ListServices()
	for _, e := range c.facade.SensorEntries() {
		sv := SensorValue{Name: e.Name}
		r, err := c.facade.Network().GetValue(e.Name)
		if err != nil {
			sv.Err = err.Error()
		} else {
			sv.Value = r.Value
			sv.Unit = r.Unit
		}
		if acc, err := c.facade.Network().FindAccessor(e.Name); err == nil {
			if hr, ok := acc.(healthReporter); ok {
				if level, has := hr.Health(); has {
					sv.Health, sv.HasHealth = level, true
				}
			}
		}
		m.Values = append(m.Values, sv)
	}
	return m
}

// Select builds the detail panel for a named service.
func (c *Controller) Select(name string) (*ServiceDetail, error) {
	for _, e := range c.facade.ListServices() {
		if e.Name != name {
			continue
		}
		d := &ServiceDetail{
			Name:     e.Name,
			Category: e.Category,
			ID:       e.ID.String(),
		}
		for _, a := range e.Attributes {
			d.Attributes = append(d.Attributes, a.String())
		}
		sort.Strings(d.Attributes)
		if e.Category == sensor.CategoryComposite {
			kids, expr, err := c.facade.Network().CompositeInfo(name)
			if err == nil {
				d.Contained = kids
				d.Expression = expr
			}
		}
		return d, nil
	}
	return nil, fmt.Errorf("%w: %q", sensor.ErrUnknownService, name)
}

// Execute parses and runs one browser command, returning rendered output.
// Commands mirror the buttons of the paper's UI: "Get Sensor List",
// "Get Value", "Compose Service", "Add Expression", "Create Service".
func (c *Controller) Execute(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	nm := c.facade.Network()
	switch cmd {
	case "list":
		return RenderServiceList(c.Refresh()), nil
	case "values":
		return RenderValues(c.Refresh().Values), nil
	case "info":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: info <service>")
		}
		d, err := c.Select(args[0])
		if err != nil {
			return "", err
		}
		return RenderDetail(d), nil
	case "value":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: value <service>")
		}
		r, err := nm.GetValue(args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s = %.3f %s", args[0], r.Value, r.Unit), nil
	case "compose":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: compose <name> <child> [child...]")
		}
		if _, err := nm.ComposeService(args[0], args[1:], ""); err != nil {
			return "", err
		}
		return fmt.Sprintf("composed %s over %s", args[0], strings.Join(args[1:], ", ")), nil
	case "add":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: add <composite> <child>")
		}
		v, err := nm.AddToComposite(args[0], args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("added %s to %s as variable %s", args[1], args[0], v), nil
	case "expr":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: expr <composite> <expression>")
		}
		expression := strings.Join(args[1:], " ")
		if err := nm.SetExpression(args[0], expression); err != nil {
			return "", err
		}
		return fmt.Sprintf("expression of %s set to %q", args[0], expression), nil
	case "provision":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: provision <name> <child> [child...]")
		}
		if err := nm.ProvisionComposite(args[0], args[1:], "", sensor.QoSSpec{}); err != nil {
			return "", err
		}
		return fmt.Sprintf("provisioned %s", args[0]), nil
	case "scale":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: scale <provisioned-composite> <instances>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("usage: scale <provisioned-composite> <instances>")
		}
		if err := nm.ScaleComposite(args[0], n); err != nil {
			return "", err
		}
		return fmt.Sprintf("scaled %s to %d instance(s)", args[0], n), nil
	case "remove":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: remove <service>")
		}
		if err := nm.RemoveService(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("removed %s", args[0]), nil
	case "help":
		return helpText, nil
	default:
		return "", fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

const helpText = `commands:
  list                                  show all services (Fig. 2 service tree)
  values                                read every sensor service
  info <service>                        service detail panel
  value <service>                       read one service
  compose <name> <child> [child...]     create a composite service
  add <composite> <child>               compose another service in
  expr <composite> <expression>         set the compute-expression
  provision <name> <child> [child...]   provision a composite via Rio
  scale <name> <instances>              rescale a provisioned composite
  remove <service>                      remove a composite created here
  help                                  this text`

// RenderServiceList renders the Fig. 2-style service tree.
func RenderServiceList(m *Model) string {
	var b strings.Builder
	b.WriteString("Lookup services\n")
	for _, r := range m.Registrars {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("Services\n")
	for _, e := range m.Services {
		tag := e.Category
		if tag == "" {
			tag = "INFRASTRUCTURE"
		}
		fmt.Fprintf(&b, "  [%-14s] %s\n", tag, e.Name)
	}
	return b.String()
}

// RenderValues renders the "Sensor Value" panel.
func RenderValues(values []SensorValue) string {
	var b strings.Builder
	b.WriteString("Sensor Value\n")
	for _, v := range values {
		if v.Err != "" {
			fmt.Fprintf(&b, "  %-20s <error: %s>\n", v.Name, v.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-20s %8.3f %s", v.Name, v.Value, v.Unit)
		if v.HasHealth {
			fmt.Fprintf(&b, "  [battery %3.0f%%]", v.Health*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderDetail renders the "Sensor Service Information" panel.
func RenderDetail(d *ServiceDetail) string {
	var b strings.Builder
	b.WriteString("Sensor Service Information\n")
	fmt.Fprintf(&b, "  Sensor Name:: %s\n", d.Name)
	fmt.Fprintf(&b, "  Service Type:: %s\n", d.Category)
	fmt.Fprintf(&b, "  Service ID:: %s\n", d.ID)
	if len(d.Contained) > 0 {
		b.WriteString("  Contained Services:\n")
		for _, ch := range d.Contained {
			fmt.Fprintf(&b, "    %s = %s\n", ch.Var, ch.Name)
		}
	}
	if d.Expression != "" {
		fmt.Fprintf(&b, "  Compute Expression: %s\n", d.Expression)
	}
	if len(d.Attributes) > 0 {
		b.WriteString("  Attributes:\n")
		for _, a := range d.Attributes {
			fmt.Fprintf(&b, "    %s\n", a)
		}
	}
	return b.String()
}
