package remote

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/repl"
	"sensorcer/internal/space"
	"sensorcer/internal/srpc"
	"sensorcer/internal/wal"
)

// TestReplicationOverSRPC runs a shard pair across a process-style
// boundary: the backup serves its replication endpoints on srpc and the
// primary ships through a ReplicationClient. Every acknowledged write
// must be durable on the remote log, and the wire must preserve the
// sentinel errors the fencing logic branches on.
func TestReplicationOverSRPC(t *testing.T) {
	policy := lease.Policy{Max: time.Hour, Min: time.Millisecond}
	primary, err := repl.NewNode("p", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = primary.Close() }()
	backup, err := repl.NewNode("b", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = backup.Close() }()

	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	desc := ServeReplication(server, "s0", backup)
	if desc.Kind != ReplicationKind || desc.Locator == "" {
		t.Fatalf("desc = %+v", desc)
	}
	follower, err := NewReplicationClient(desc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	sp, err := primary.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.AttachBackup(2, follower, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if pp, bp := primary.Log().NextSeq(), backup.Log().NextSeq(); pp != bp || pp != 6 {
		t.Fatalf("log positions: primary %d, remote backup %d, want both 6", pp, bp)
	}

	// Heartbeats cross the wire too.
	if err := follower.Heartbeat(2); err != nil {
		t.Fatalf("remote heartbeat: %v", err)
	}

	// A checkpoint ships its snapshot: both logs compact in lockstep.
	if err := sp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ps, bs := primary.Log().SnapshotSeq(), backup.Log().SnapshotSeq(); ps != bs || ps == 0 {
		t.Fatalf("snapshot seqs: primary %d, remote backup %d", ps, bs)
	}

	// Sentinels survive the string-flattening wire: a stale-epoch ship
	// must come back as ErrStaleEpoch so the sender fences itself.
	if _, err := follower.ShipBatch(1, 1, [][]byte{[]byte("x")}); !errors.Is(err, repl.ErrStaleEpoch) {
		t.Fatalf("stale remote ship = %v, want ErrStaleEpoch", err)
	}
	// And a gapped ship maps back to wal.ErrSeqGap.
	if _, err := follower.ShipBatch(2, 99, [][]byte{[]byte("x")}); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("gapped remote ship = %v, want ErrSeqGap", err)
	}
}

// TestRemoteFailoverPromotesRemoteLog proves the remote backup's log is
// complete enough to take over: kill the primary, promote the backup
// in its own "process", and read back every acknowledged entry.
func TestRemoteFailoverPromotesRemoteLog(t *testing.T) {
	policy := lease.Policy{Max: time.Hour, Min: time.Millisecond}
	primary, err := repl.NewNode("p", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = primary.Close() }()
	backup, err := repl.NewNode("b", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = backup.Close() }()

	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	follower, err := NewReplicationClient(ServeReplication(server, "s0", backup), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	sp, err := primary.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.AttachBackup(2, follower, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	primary.Kill()
	promoted, err := backup.Promote(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := promoted.TakeAny(space.NewEntry("job"), 16, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("promoted remote backup served %d entries, want 7", len(got))
	}
}
