// Hand-written binary fast paths for the hot srpc message shapes: repl
// ship batches (the write-ack path), registry lookups (the discovery
// path), accessor readings and exertion envelopes. Each wire struct
// implements srpc.BinaryMarshaler on its value form and
// srpc.BinaryUnmarshaler on its pointer form, so the codec picks the
// fast path automatically on negotiated-binary connections and the same
// structs still fall back to their JSON tags against legacy peers.
//
// Layouts build on internal/wire's Append/Consume primitives. Dynamic
// values (attr fields, exertion context values) are tagged scalars —
// strings, bools, int64 and float64 survive a round trip with their Go
// types intact, unlike JSON, which folds every number into float64 — and
// anything richer rides as a tagged JSON blob. Decoded shapes own their
// memory: consuming aliases the frame buffer, so every retained byte
// slice or string is copied out before the decoder returns (ship-batch
// payloads into one contiguous block, since the WAL retains them).
package remote

import (
	"encoding/json"
	"fmt"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
	"sensorcer/internal/wire"
)

// Payload shape tags owned by this package (srpc reserves 0 for JSON,
// internal/wire owns 32+). Part of the wire format — append only.
const (
	shapeShipBatch    byte = 1
	shapeShipResult   byte = 2
	shapeShipSnapshot byte = 3
	shapeHeartbeat    byte = 4
	shapeLookupParams byte = 5
	shapeItems        byte = 6
	shapeReading      byte = 7
	shapeReadings     byte = 8
	shapeReadingsReq  byte = 9
	shapeServiceReq   byte = 10
	shapeTask         byte = 11
	shapeTaskResult   byte = 12
)

func shapeErr(what string, shape byte) error {
	return fmt.Errorf("remote: unexpected payload shape %#x for %s", shape, what)
}

func malformedErr(what string) error {
	return fmt.Errorf("remote: malformed binary %s payload", what)
}

// --- dynamic value encoding (attr fields, exertion context) ---

// Value tags: the scalar kinds attr.Value admits, plus a JSON blob
// fallback for anything richer (lists in exertion contexts).
const (
	valString  byte = 0
	valFalse   byte = 1
	valTrue    byte = 2
	valInt64   byte = 3
	valFloat64 byte = 4
	valJSON    byte = 5
)

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case string:
		return wire.AppendString(append(b, valString), x), nil
	case bool:
		if x {
			return append(b, valTrue), nil
		}
		return append(b, valFalse), nil
	case int64:
		return wire.AppendSvarint(append(b, valInt64), x), nil
	case float64:
		return wire.AppendFloat64(append(b, valFloat64), x), nil
	default:
		blob, err := json.Marshal(v)
		if err != nil {
			return b, err
		}
		return wire.AppendBytes(append(b, valJSON), blob), nil
	}
}

func consumeValue(b []byte) (any, []byte, bool) {
	if len(b) < 1 {
		return nil, b, false
	}
	tag, rest := b[0], b[1:]
	switch tag {
	case valString:
		s, rest, ok := wire.ConsumeString(rest)
		return s, rest, ok
	case valFalse:
		return false, rest, true
	case valTrue:
		return true, rest, true
	case valInt64:
		v, rest, ok := wire.ConsumeSvarint(rest)
		return v, rest, ok
	case valFloat64:
		v, rest, ok := wire.ConsumeFloat64(rest)
		return v, rest, ok
	case valJSON:
		blob, rest, ok := wire.ConsumeBytes(rest)
		if !ok {
			return nil, b, false
		}
		var v any
		if err := json.Unmarshal(blob, &v); err != nil {
			return nil, b, false
		}
		return v, rest, true
	}
	return nil, b, false
}

// --- shared sub-encodings ---

func appendTime(b []byte, t time.Time) []byte {
	b = wire.AppendSvarint(b, t.Unix())
	return wire.AppendUvarint(b, uint64(t.Nanosecond()))
}

func consumeTime(b []byte) (time.Time, []byte, bool) {
	sec, b, ok := wire.ConsumeSvarint(b)
	if !ok {
		return time.Time{}, b, false
	}
	nsec, b, ok := wire.ConsumeUvarint(b)
	if !ok || nsec >= 1e9 {
		return time.Time{}, b, false
	}
	return time.Unix(sec, int64(nsec)), b, true
}

func appendAttrSet(b []byte, set attr.Set) ([]byte, error) {
	b = wire.AppendUvarint(b, uint64(len(set)))
	var err error
	for _, e := range set {
		b = wire.AppendString(b, e.Type)
		b = wire.AppendUvarint(b, uint64(len(e.Fields)))
		for k, v := range e.Fields {
			b = wire.AppendString(b, k)
			if b, err = appendValue(b, v); err != nil {
				return b, err
			}
		}
	}
	return b, nil
}

func consumeAttrSet(b []byte) (attr.Set, []byte, bool) {
	n, b, ok := wire.ConsumeUvarint(b)
	if !ok || n > uint64(len(b)) {
		return nil, b, false
	}
	var set attr.Set
	if n > 0 {
		set = make(attr.Set, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var e attr.Entry
		if e.Type, b, ok = wire.ConsumeString(b); !ok {
			return nil, b, false
		}
		var nf uint64
		if nf, b, ok = wire.ConsumeUvarint(b); !ok || nf > uint64(len(b)) {
			return nil, b, false
		}
		if nf > 0 {
			e.Fields = make(map[string]attr.Value, nf)
		}
		for j := uint64(0); j < nf; j++ {
			var k string
			var v any
			if k, b, ok = wire.ConsumeString(b); !ok {
				return nil, b, false
			}
			if v, b, ok = consumeValue(b); !ok {
				return nil, b, false
			}
			e.Fields[k] = v
		}
		set = append(set, e)
	}
	return set, b, true
}

func appendContext(b []byte, ctx map[string]any) ([]byte, error) {
	b = wire.AppendUvarint(b, uint64(len(ctx)))
	var err error
	for k, v := range ctx {
		b = wire.AppendString(b, k)
		if b, err = appendValue(b, v); err != nil {
			return b, err
		}
	}
	return b, nil
}

func consumeContext(b []byte) (map[string]any, []byte, bool) {
	n, b, ok := wire.ConsumeUvarint(b)
	if !ok || n > uint64(len(b)) {
		return nil, b, false
	}
	var ctx map[string]any
	if n > 0 {
		ctx = make(map[string]any, n)
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v any
		if k, b, ok = wire.ConsumeString(b); !ok {
			return nil, b, false
		}
		if v, b, ok = consumeValue(b); !ok {
			return nil, b, false
		}
		ctx[k] = v
	}
	return ctx, b, true
}

func appendID(b []byte, id ids.ServiceID) []byte {
	//lint:allocok amortized growth of the caller-owned encode buffer
	return append(b, id[:]...)
}

func consumeID(b []byte) (ids.ServiceID, []byte, bool) {
	var id ids.ServiceID
	if len(b) < len(id) {
		return id, b, false
	}
	copy(id[:], b)
	return id, b[len(id):], true
}

func appendProxy(b []byte, p *ProxyDesc) []byte {
	if p == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = wire.AppendString(b, p.Kind)
	b = wire.AppendString(b, p.Locator)
	return wire.AppendString(b, p.Service)
}

func consumeProxy(b []byte) (*ProxyDesc, []byte, bool) {
	if len(b) < 1 {
		return nil, b, false
	}
	present, rest := b[0], b[1:]
	if present == 0 {
		return nil, rest, true
	}
	var p ProxyDesc
	var ok bool
	if p.Kind, rest, ok = wire.ConsumeString(rest); !ok {
		return nil, b, false
	}
	if p.Locator, rest, ok = wire.ConsumeString(rest); !ok {
		return nil, b, false
	}
	if p.Service, rest, ok = wire.ConsumeString(rest); !ok {
		return nil, b, false
	}
	return &p, rest, true
}

// --- replication shapes (the write-ack hot path) ---

// SrpcShape implements srpc.BinaryMarshaler.
func (w wireShipBatch) SrpcShape() byte { return shapeShipBatch }

// AppendSrpc encodes epoch | firstSeq | count | length-prefixed records.
// This is the per-acknowledged-write encode path, allocation-free beyond
// amortized buffer growth.
//
//lint:noalloc
func (w wireShipBatch) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, w.Epoch)
	buf = wire.AppendUvarint(buf, w.FirstSeq)
	buf = wire.AppendUvarint(buf, uint64(len(w.Payloads)))
	for _, p := range w.Payloads {
		buf = wire.AppendBytes(buf, p)
	}
	return buf, nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler. Record payloads are
// copied out of the frame into one contiguous owned block — the WAL
// retains them past the handler call.
func (w *wireShipBatch) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeShipBatch {
		return shapeErr("ship batch", shape)
	}
	var ok bool
	if w.Epoch, data, ok = wire.ConsumeUvarint(data); !ok {
		return malformedErr("ship batch")
	}
	if w.FirstSeq, data, ok = wire.ConsumeUvarint(data); !ok {
		return malformedErr("ship batch")
	}
	count, data, ok := wire.ConsumeUvarint(data)
	if !ok || count > uint64(len(data)) {
		return malformedErr("ship batch")
	}
	views := make([][]byte, count)
	total := 0
	for i := range views {
		if views[i], data, ok = wire.ConsumeBytes(data); !ok {
			return malformedErr("ship batch")
		}
		total += len(views[i])
	}
	if len(data) != 0 {
		return malformedErr("ship batch")
	}
	block := make([]byte, 0, total)
	payloads := make([][]byte, len(views))
	for i, v := range views {
		start := len(block)
		block = append(block, v...)
		payloads[i] = block[start:len(block):len(block)]
	}
	w.Payloads = payloads
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (w wireShipResult) SrpcShape() byte { return shapeShipResult }

// AppendSrpc implements srpc.BinaryMarshaler.
//
//lint:noalloc
func (w wireShipResult) AppendSrpc(buf []byte) ([]byte, error) {
	return wire.AppendUvarint(buf, w.NextSeq), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (w *wireShipResult) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeShipResult {
		return shapeErr("ship result", shape)
	}
	next, rest, ok := wire.ConsumeUvarint(data)
	if !ok || len(rest) != 0 {
		return malformedErr("ship result")
	}
	w.NextSeq = next
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (w wireShipSnapshot) SrpcShape() byte { return shapeShipSnapshot }

// AppendSrpc implements srpc.BinaryMarshaler.
func (w wireShipSnapshot) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, w.Epoch)
	buf = wire.AppendUvarint(buf, w.Seq)
	return wire.AppendBytes(buf, w.Data), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler; the snapshot bytes are
// copied out of the frame (the node retains them while installing).
func (w *wireShipSnapshot) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeShipSnapshot {
		return shapeErr("snapshot", shape)
	}
	var ok bool
	if w.Epoch, data, ok = wire.ConsumeUvarint(data); !ok {
		return malformedErr("snapshot")
	}
	if w.Seq, data, ok = wire.ConsumeUvarint(data); !ok {
		return malformedErr("snapshot")
	}
	view, rest, ok := wire.ConsumeBytes(data)
	if !ok || len(rest) != 0 {
		return malformedErr("snapshot")
	}
	w.Data = append([]byte(nil), view...)
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (w wireHeartbeat) SrpcShape() byte { return shapeHeartbeat }

// AppendSrpc implements srpc.BinaryMarshaler.
//
//lint:noalloc
func (w wireHeartbeat) AppendSrpc(buf []byte) ([]byte, error) {
	return wire.AppendUvarint(buf, w.Epoch), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (w *wireHeartbeat) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeHeartbeat {
		return shapeErr("heartbeat", shape)
	}
	epoch, rest, ok := wire.ConsumeUvarint(data)
	if !ok || len(rest) != 0 {
		return malformedErr("heartbeat")
	}
	w.Epoch = epoch
	return nil
}

// --- registry lookup shapes (the discovery hot path) ---

// SrpcShape implements srpc.BinaryMarshaler.
func (p lookupParams) SrpcShape() byte { return shapeLookupParams }

// AppendSrpc implements srpc.BinaryMarshaler.
func (p lookupParams) AppendSrpc(buf []byte) ([]byte, error) {
	buf = appendID(buf, p.ID)
	buf = wire.AppendUvarint(buf, uint64(len(p.Types)))
	for _, t := range p.Types {
		buf = wire.AppendString(buf, t)
	}
	buf, err := appendAttrSet(buf, p.Attributes)
	if err != nil {
		return buf, err
	}
	return wire.AppendSvarint(buf, int64(p.Max)), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (p *lookupParams) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeLookupParams {
		return shapeErr("lookup params", shape)
	}
	var ok bool
	if p.ID, data, ok = consumeID(data); !ok {
		return malformedErr("lookup params")
	}
	nt, data, ok := wire.ConsumeUvarint(data)
	if !ok || nt > uint64(len(data)) {
		return malformedErr("lookup params")
	}
	if nt > 0 {
		p.Types = make([]string, nt)
	}
	for i := range p.Types {
		if p.Types[i], data, ok = wire.ConsumeString(data); !ok {
			return malformedErr("lookup params")
		}
	}
	if p.Attributes, data, ok = consumeAttrSet(data); !ok {
		return malformedErr("lookup params")
	}
	max, rest, ok := wire.ConsumeSvarint(data)
	if !ok || len(rest) != 0 {
		return malformedErr("lookup params")
	}
	p.Max = int(max)
	return nil
}

// wireItems is the lookup match list; named so the slice can carry the
// binary fast path as a response shape.
type wireItems []wireItem

// SrpcShape implements srpc.BinaryMarshaler.
func (ws wireItems) SrpcShape() byte { return shapeItems }

// AppendSrpc implements srpc.BinaryMarshaler.
func (ws wireItems) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(len(ws)))
	var err error
	for _, w := range ws {
		buf = appendID(buf, w.ID)
		buf = wire.AppendUvarint(buf, uint64(len(w.Types)))
		for _, t := range w.Types {
			buf = wire.AppendString(buf, t)
		}
		if buf, err = appendAttrSet(buf, w.Attributes); err != nil {
			return buf, err
		}
		buf = appendProxy(buf, w.Proxy)
	}
	return buf, nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (ws *wireItems) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeItems {
		return shapeErr("lookup matches", shape)
	}
	n, data, ok := wire.ConsumeUvarint(data)
	if !ok || n > uint64(len(data)) {
		return malformedErr("lookup matches")
	}
	out := make(wireItems, 0, n)
	for i := uint64(0); i < n; i++ {
		var w wireItem
		if w.ID, data, ok = consumeID(data); !ok {
			return malformedErr("lookup matches")
		}
		var nt uint64
		if nt, data, ok = wire.ConsumeUvarint(data); !ok || nt > uint64(len(data)) {
			return malformedErr("lookup matches")
		}
		if nt > 0 {
			w.Types = make([]string, nt)
		}
		for j := range w.Types {
			if w.Types[j], data, ok = wire.ConsumeString(data); !ok {
				return malformedErr("lookup matches")
			}
		}
		if w.Attributes, data, ok = consumeAttrSet(data); !ok {
			return malformedErr("lookup matches")
		}
		if w.Proxy, data, ok = consumeProxy(data); !ok {
			return malformedErr("lookup matches")
		}
		out = append(out, w)
	}
	if len(data) != 0 {
		return malformedErr("lookup matches")
	}
	*ws = out
	return nil
}

// --- accessor shapes (sensor reads) ---

func appendReading(b []byte, w wireReading) []byte {
	b = wire.AppendString(b, w.Sensor)
	b = wire.AppendString(b, w.Kind)
	b = wire.AppendString(b, w.Unit)
	b = wire.AppendFloat64(b, w.Value)
	return appendTime(b, w.Timestamp)
}

func consumeReading(b []byte) (wireReading, []byte, bool) {
	var w wireReading
	var ok bool
	if w.Sensor, b, ok = wire.ConsumeString(b); !ok {
		return w, b, false
	}
	if w.Kind, b, ok = wire.ConsumeString(b); !ok {
		return w, b, false
	}
	if w.Unit, b, ok = wire.ConsumeString(b); !ok {
		return w, b, false
	}
	if w.Value, b, ok = wire.ConsumeFloat64(b); !ok {
		return w, b, false
	}
	if w.Timestamp, b, ok = consumeTime(b); !ok {
		return w, b, false
	}
	return w, b, true
}

// SrpcShape implements srpc.BinaryMarshaler.
func (w wireReading) SrpcShape() byte { return shapeReading }

// AppendSrpc implements srpc.BinaryMarshaler.
//
//lint:noalloc
func (w wireReading) AppendSrpc(buf []byte) ([]byte, error) {
	return appendReading(buf, w), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (w *wireReading) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeReading {
		return shapeErr("reading", shape)
	}
	r, rest, ok := consumeReading(data)
	if !ok || len(rest) != 0 {
		return malformedErr("reading")
	}
	*w = r
	return nil
}

// wireReadings is the GetReadings batch; named so the slice can carry
// the binary fast path as a response shape.
type wireReadings []wireReading

// SrpcShape implements srpc.BinaryMarshaler.
func (ws wireReadings) SrpcShape() byte { return shapeReadings }

// AppendSrpc is the probe reading-batch encode path.
//
//lint:noalloc
func (ws wireReadings) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(len(ws)))
	for _, w := range ws {
		buf = appendReading(buf, w)
	}
	return buf, nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (ws *wireReadings) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeReadings {
		return shapeErr("readings", shape)
	}
	n, data, ok := wire.ConsumeUvarint(data)
	if !ok || n > uint64(len(data)) {
		return malformedErr("readings")
	}
	out := make(wireReadings, 0, n)
	for i := uint64(0); i < n; i++ {
		var w wireReading
		if w, data, ok = consumeReading(data); !ok {
			return malformedErr("readings")
		}
		out = append(out, w)
	}
	if len(data) != 0 {
		return malformedErr("readings")
	}
	*ws = out
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (p readingsParams) SrpcShape() byte { return shapeReadingsReq }

// AppendSrpc implements srpc.BinaryMarshaler.
//
//lint:noalloc
func (p readingsParams) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendString(buf, p.Service)
	return wire.AppendSvarint(buf, int64(p.N)), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (p *readingsParams) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeReadingsReq {
		return shapeErr("readings params", shape)
	}
	var ok bool
	if p.Service, data, ok = wire.ConsumeString(data); !ok {
		return malformedErr("readings params")
	}
	n, rest, ok := wire.ConsumeSvarint(data)
	if !ok || len(rest) != 0 {
		return malformedErr("readings params")
	}
	p.N = int(n)
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (p serviceParams) SrpcShape() byte { return shapeServiceReq }

// AppendSrpc implements srpc.BinaryMarshaler.
//
//lint:noalloc
func (p serviceParams) AppendSrpc(buf []byte) ([]byte, error) {
	return wire.AppendString(buf, p.Service), nil
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (p *serviceParams) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeServiceReq {
		return shapeErr("service params", shape)
	}
	var ok bool
	if p.Service, data, ok = wire.ConsumeString(data); !ok || len(data) != 0 {
		return malformedErr("service params")
	}
	return nil
}

// --- exertion envelope shapes ---

// SrpcShape implements srpc.BinaryMarshaler.
func (t wireTask) SrpcShape() byte { return shapeTask }

// AppendSrpc implements srpc.BinaryMarshaler.
func (t wireTask) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendString(buf, t.Name)
	buf = wire.AppendString(buf, t.ServiceType)
	buf = wire.AppendString(buf, t.Selector)
	buf = wire.AppendString(buf, t.ProviderName)
	return appendContext(buf, t.Context)
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (t *wireTask) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeTask {
		return shapeErr("task", shape)
	}
	var ok bool
	if t.Name, data, ok = wire.ConsumeString(data); !ok {
		return malformedErr("task")
	}
	if t.ServiceType, data, ok = wire.ConsumeString(data); !ok {
		return malformedErr("task")
	}
	if t.Selector, data, ok = wire.ConsumeString(data); !ok {
		return malformedErr("task")
	}
	if t.ProviderName, data, ok = wire.ConsumeString(data); !ok {
		return malformedErr("task")
	}
	ctx, rest, ok := consumeContext(data)
	if !ok || len(rest) != 0 {
		return malformedErr("task")
	}
	t.Context = ctx
	return nil
}

// SrpcShape implements srpc.BinaryMarshaler.
func (t wireTaskResult) SrpcShape() byte { return shapeTaskResult }

// AppendSrpc implements srpc.BinaryMarshaler.
func (t wireTaskResult) AppendSrpc(buf []byte) ([]byte, error) {
	return appendContext(buf, t.Context)
}

// UnmarshalSrpc implements srpc.BinaryUnmarshaler.
func (t *wireTaskResult) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapeTaskResult {
		return shapeErr("task result", shape)
	}
	ctx, rest, ok := consumeContext(data)
	if !ok || len(rest) != 0 {
		return malformedErr("task result")
	}
	t.Context = ctx
	return nil
}
