package remote

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/srpc"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func newESP(name string, vals ...float64) *sensor.ESP {
	return sensor.NewESP(name, probe.NewReplayProbe(name, "temperature", "celsius", vals, true, nil))
}

func TestAccessorOverSRPC(t *testing.T) {
	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	esp := newESP("Neem-Sensor", 21.5, 22.5)
	defer esp.Close()
	desc := ServeAccessor(server, "Neem-Sensor", esp)
	if desc.Kind != AccessorKind || desc.Locator == "" {
		t.Fatalf("desc = %+v", desc)
	}

	client, err := NewAccessorClient(desc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.SensorName() != "Neem-Sensor" {
		t.Fatalf("SensorName = %q", client.SensorName())
	}
	r, err := client.GetValue()
	if err != nil || r.Value != 21.5 || r.Unit != "celsius" {
		t.Fatalf("GetValue = %+v, %v", r, err)
	}
	client.GetValue()
	readings := client.GetReadings(0)
	if len(readings) != 2 {
		t.Fatalf("GetReadings = %d", len(readings))
	}
	info := client.Describe()
	if info.Kind != "temperature" || info.Technology != "replay" {
		t.Fatalf("Describe = %+v", info)
	}
}

func TestAccessorClientWrongKind(t *testing.T) {
	if _, err := NewAccessorClient(ProxyDesc{Kind: "other"}, time.Second); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestAccessorErrorPropagates(t *testing.T) {
	server := srpc.NewServer()
	server.Listen("127.0.0.1:0")
	defer server.Close()
	dead := sensor.NewESP("dead", probe.NewReplayProbe("dead", "k", "u", nil, false, nil))
	defer dead.Close()
	desc := ServeAccessor(server, "dead", dead)
	client, err := NewAccessorClient(desc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.GetValue(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v", err)
	}
}

// remoteRig: a LUS process (server) and a provider process (client side).
type remoteRig struct {
	lus       *registry.LookupService
	lusServer *srpc.Server
	registrar *RegistrarClient
}

func newRemoteRig(t *testing.T) *remoteRig {
	t.Helper()
	lus := registry.New("remote-lus", clockwork.NewFake(epoch))
	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ServeRegistrar(server, lus)
	rc, err := NewRegistrarClient(server.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rc.Close()
		server.Close()
		lus.Close()
	})
	return &remoteRig{lus: lus, lusServer: server, registrar: rc}
}

func TestRegistrarClientIdentity(t *testing.T) {
	r := newRemoteRig(t)
	if r.registrar.ID() != r.lus.ID() || r.registrar.Name() != "remote-lus" {
		t.Fatal("identity mismatch")
	}
}

func TestRemoteRegisterLookupRead(t *testing.T) {
	r := newRemoteRig(t)
	// Provider process: ESP exported over its own srpc server.
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("Jade-Sensor", 22)
	defer esp.Close()
	desc := ServeAccessor(provServer, "Jade-Sensor", esp)

	reg, err := r.registrar.Register(registry.ServiceItem{
		Service:    desc,
		Types:      []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Jade-Sensor")},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ServiceID.IsZero() {
		t.Fatal("no service id assigned")
	}

	// Consumer: remote lookup materializes an accessor stub.
	items := r.registrar.Lookup(registry.ByName("Jade-Sensor", sensor.AccessorType), 0)
	if len(items) != 1 {
		t.Fatalf("Lookup = %d items", len(items))
	}
	acc, ok := items[0].Service.(sensor.DataAccessor)
	if !ok {
		t.Fatalf("proxy = %T", items[0].Service)
	}
	reading, err := acc.GetValue()
	if err != nil || reading.Value != 22 {
		t.Fatalf("remote read = %+v, %v", reading, err)
	}

	// Local lookups in the LUS process can also reach the sensor.
	item, err := r.lus.LookupOne(registry.ByName("Jade-Sensor"))
	if err != nil {
		t.Fatal(err)
	}
	holder, ok := item.Service.(*remoteProxyHolder)
	if !ok {
		t.Fatalf("local proxy = %T", item.Service)
	}
	localAcc, err := holder.Accessor(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := localAcc.GetValue(); err != nil || v.Value != 22 {
		t.Fatalf("holder read = %+v, %v", v, err)
	}
}

func TestRemoteLeaseRenewAndCancel(t *testing.T) {
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("s", 1)
	defer esp.Close()
	desc := ServeAccessor(provServer, "s", esp)
	reg, err := r.registrar.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("s")},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Lease.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := reg.Lease.Cancel(); err != nil {
		t.Fatal(err)
	}
	if r.lus.Len() != 0 {
		t.Fatal("cancel did not deregister")
	}
	if err := reg.Lease.Renew(time.Minute); err == nil {
		t.Fatal("renew after cancel accepted")
	}
}

func TestRemoteDeregisterAndModify(t *testing.T) {
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("s", 1)
	defer esp.Close()
	desc := ServeAccessor(provServer, "s", esp)
	reg, _ := r.registrar.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("s")},
	}, time.Minute)

	if err := r.registrar.ModifyAttributes(reg.ServiceID,
		attr.Set{attr.Name("s"), attr.Comment("updated")}); err != nil {
		t.Fatal(err)
	}
	item, _ := r.registrar.LookupOne(registry.ByName("s"))
	if _, ok := item.Attributes.Find(attr.TypeComment); !ok {
		t.Fatal("modify did not propagate")
	}
	if err := r.registrar.Deregister(reg.ServiceID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.registrar.LookupOne(registry.ByName("s")); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteRegisterRequiresProxy(t *testing.T) {
	r := newRemoteRig(t)
	_, err := r.registrar.Register(registry.ServiceItem{
		Service: 42, Types: []string{"X"},
	}, time.Minute)
	if err == nil {
		t.Fatal("proxyless remote registration accepted")
	}
}

func TestRemoteNotifyUnsupported(t *testing.T) {
	r := newRemoteRig(t)
	if _, err := r.registrar.Notify(registry.Template{}, registry.TransitionAny, func(registry.Event) {}, time.Minute); err == nil {
		t.Fatal("remote Notify should be unsupported")
	}
	r.registrar.CancelNotify(1) // no-op, must not panic
}

func TestRemoteRegistrarWithDiscoveryBus(t *testing.T) {
	// A RegistrarClient is a registry.Registrar: it can flow through the
	// discovery bus and the whole sensor stack on the consumer side.
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("Coral-Sensor", 26)
	defer esp.Close()
	desc := ServeAccessor(provServer, "Coral-Sensor", esp)
	r.registrar.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Coral-Sensor"), attr.ServiceType(sensor.CategoryElementary)},
	}, time.Minute)

	bus := discovery.NewBus()
	defer bus.Announce(r.registrar)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	facade := sensor.NewFacade("f", clockwork.Real(), mgr)
	reading, err := facade.Network().GetValue("Coral-Sensor")
	if err != nil || reading.Value != 26 {
		t.Fatalf("cross-process facade read = %+v, %v", reading, err)
	}
}

func TestRemoteLeaseExpiryDeregisters(t *testing.T) {
	// Build the LUS on a real clock with short leases to show crash
	// semantics over the wire.
	lus := registry.New("lus", clockwork.Real(),
		registry.WithLeasePolicy(lease.Policy{Max: 50 * time.Millisecond, Min: time.Millisecond}))
	defer lus.Close()
	server := srpc.NewServer()
	server.Listen("127.0.0.1:0")
	defer server.Close()
	ServeRegistrar(server, lus)
	rc, err := NewRegistrarClient(server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("s", 1)
	defer esp.Close()
	desc := ServeAccessor(provServer, "s", esp)
	if _, err := rc.Register(registry.ServiceItem{
		Service: desc, Types: []string{"X"}, Attributes: attr.Set{attr.Name("s")},
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	// No renewals: the provider "crashed"; the registration must lapse.
	deadline := time.Now().Add(2 * time.Second)
	for lus.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if lus.Len() != 0 {
		t.Fatal("crashed remote registration never expired")
	}
}

func TestServicerOverSRPC(t *testing.T) {
	// Provider process: an Adder exported as a remote servicer.
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	p := sorcer.NewProvider("Adder-1", "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		b, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+b)
		return nil
	})
	desc := ServeServicer(provServer, "Adder-1", p)

	client, err := NewServicerClient(desc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	task := sorcer.NewTask("t", sorcer.Sig("Adder", "add"),
		sorcer.NewContextFrom("arg/a", 3.0, "arg/b", 4.0))
	res, err := client.Service(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status() != sorcer.Done {
		t.Fatalf("status = %v", res.Status())
	}
	v, err := res.Context().Float("result/value")
	if err != nil || v != 7 {
		t.Fatalf("remote result = %v, %v", v, err)
	}
}

func TestServicerClientErrors(t *testing.T) {
	if _, err := NewServicerClient(ProxyDesc{Kind: "wrong"}, time.Second); err == nil {
		t.Fatal("wrong kind accepted")
	}
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	p := sorcer.NewProvider("P", "P")
	p.RegisterOp("fail", func(*sorcer.Context) error { return errors.New("op boom") })
	desc := ServeServicer(provServer, "P", p)
	client, _ := NewServicerClient(desc, time.Second)
	defer client.Close()

	// Jobs are rejected.
	if _, err := client.Service(sorcer.NewJob("j", sorcer.Strategy{}), nil); err == nil {
		t.Fatal("job accepted by remote servicer stub")
	}
	// Remote op failure propagates and fails the task.
	task := sorcer.NewTask("t", sorcer.Sig("P", "fail"), nil)
	if _, err := client.Service(task, nil); err == nil || !strings.Contains(err.Error(), "op boom") {
		t.Fatalf("err = %v", err)
	}
	if task.Status() != sorcer.Failed {
		t.Fatalf("status = %v", task.Status())
	}
}

func TestRemoteFMIThroughRegistrar(t *testing.T) {
	// Full cross-process FMI: provider registers its servicer proxy in a
	// remote LUS; a consumer's Exerter discovers and exerts it.
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	p := sorcer.NewProvider("Doubler", "Doubler")
	p.RegisterOp("run", func(ctx *sorcer.Context) error {
		x, err := ctx.Float("x")
		if err != nil {
			return err
		}
		ctx.Put("y", 2*x)
		return nil
	})
	desc := ServeServicer(provServer, "Doubler", p)
	if _, err := r.registrar.Register(registry.ServiceItem{
		Service:    desc,
		Types:      []string{"Doubler", sorcer.ServicerType},
		Attributes: attr.Set{attr.Name("Doubler")},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}

	bus := discovery.NewBus()
	defer bus.Announce(r.registrar)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))
	task := sorcer.NewTask("t", sorcer.Sig("Doubler", "run"), sorcer.NewContextFrom("x", 21.0))
	res, err := exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	y, err := res.Context().Float("y")
	if err != nil || y != 42 {
		t.Fatalf("cross-process exertion = %v, %v", y, err)
	}
}

func TestAuthenticatedFederation(t *testing.T) {
	// Every server in the deployment requires a shared secret; clients
	// carrying it work end to end, clients without it are refused.
	const secret = "lab-secret"
	lus := registry.New("secure-lus", clockwork.NewFake(epoch))
	defer lus.Close()
	lusServer := srpc.NewServer()
	lusServer.SetToken(secret)
	lusServer.Listen("127.0.0.1:0")
	defer lusServer.Close()
	ServeRegistrar(lusServer, lus)

	// Unauthenticated registrar client fails at the identity fetch.
	if _, err := NewRegistrarClient(lusServer.Addr(), time.Second); err == nil {
		t.Fatal("unauthenticated registrar client connected")
	}

	// Authenticated path: the constructor needs the token before the
	// identity fetch, so dial raw first.
	raw, err := srpc.Dial(lusServer.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	raw.Close()
	// NewRegistrarClient has no token parameter; simulate the CLI flow:
	// build with a tokenized dial by registering a helper.
	rc, err := NewRegistrarClientWithToken(lusServer.Addr(), secret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Secure provider process.
	provServer := srpc.NewServer()
	provServer.SetToken(secret)
	provServer.Listen("127.0.0.1:0")
	defer provServer.Close()
	esp := newESP("Secure-Sensor", 19)
	defer esp.Close()
	desc := ServeAccessor(provServer, "Secure-Sensor", esp)
	if _, err := rc.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Secure-Sensor")},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Authenticated lookup materializes tokenized stubs that can read.
	items := rc.Lookup(registry.ByName("Secure-Sensor"), 0)
	if len(items) != 1 {
		t.Fatalf("lookup = %d items", len(items))
	}
	acc := items[0].Service.(sensor.DataAccessor)
	r, err := acc.GetValue()
	if err != nil || r.Value != 19 {
		t.Fatalf("secure read = %+v, %v", r, err)
	}

	// A stub without the token is refused by the provider.
	bare, err := NewAccessorClient(desc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.GetValue(); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadProviderEndpointSurfacesCleanly(t *testing.T) {
	// A provider registers, then its process dies (socket closed) while
	// its registration is still live. Consumers must get a clean error,
	// not a hang.
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	esp := newESP("Doomed", 1)
	defer esp.Close()
	desc := ServeAccessor(provServer, "Doomed", esp)
	if _, err := r.registrar.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Doomed")},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}
	items := r.registrar.Lookup(registry.ByName("Doomed"), 0)
	if len(items) != 1 {
		t.Fatalf("lookup = %d", len(items))
	}
	acc := items[0].Service.(sensor.DataAccessor)

	// Kill the provider process.
	provServer.Close()

	start := time.Now()
	_, err := acc.GetValue()
	if err == nil {
		t.Fatal("read from dead endpoint succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("dead-endpoint read blocked %v", time.Since(start))
	}
	// Describe degrades to the name-only info rather than panicking.
	if info := acc.Describe(); info.Name != "Doomed" {
		t.Fatalf("Describe = %+v", info)
	}
	// GetReadings degrades to nil.
	if got := acc.GetReadings(5); got != nil {
		t.Fatalf("GetReadings = %v", got)
	}
}

func TestLookupSkipsUnresolvableProxies(t *testing.T) {
	// An item whose export endpoint is already gone at lookup time is
	// returned without a usable proxy; the facade then reports unknown
	// service instead of crashing.
	r := newRemoteRig(t)
	provServer := srpc.NewServer()
	provServer.Listen("127.0.0.1:0")
	esp := newESP("Ghost", 1)
	defer esp.Close()
	desc := ServeAccessor(provServer, "Ghost", esp)
	r.registrar.Register(registry.ServiceItem{
		Service: desc, Types: []string{sensor.AccessorType},
		Attributes: attr.Set{attr.Name("Ghost")},
	}, time.Minute)
	provServer.Close() // endpoint gone before any consumer dials

	items := r.registrar.Lookup(registry.ByName("Ghost"), 0)
	if len(items) != 1 {
		t.Fatalf("lookup = %d", len(items))
	}
	if items[0].Service != nil {
		// Dial failure leaves the proxy unmaterialized.
		t.Fatalf("proxy = %T, want nil", items[0].Service)
	}
}
