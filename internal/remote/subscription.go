// Subscription streaming: the remote face of the push-based
// subscription plane. A provider process exports its subscribe.Hub with
// ServeSubscriptions on the "subscribe.stream" stream method; consumers
// open one multiplexed srpc stream per subscription with Subscribe (or
// ResumeSubscription after a disconnect) and receive conflated updates
// in the compact delta encoding. The server-side sink maps srpc's
// credit window onto the hub's backpressure contract, so a slow
// consumer conflates instead of blocking the publisher.
package remote

import (
	"errors"
	"fmt"
	"time"

	"sensorcer/internal/ids"
	"sensorcer/internal/srpc"
	"sensorcer/internal/subscribe"
)

// SubscribeMethod is the srpc stream method subscriptions ride on.
const SubscribeMethod = "subscribe.stream"

// subscribeParams is the stream-open payload.
type subscribeParams struct {
	// Token names the subscription; the client chooses it so a resume
	// after a disconnect needs no extra handshake.
	Token string `json:"token"`
	// Resume reattaches a parked durable subscription instead of
	// creating one.
	Resume bool `json:"resume,omitempty"`
	// Durable subscriptions survive disconnects: the hub parks them
	// (TTL below) and buffers filtered readings for a Resume.
	Durable bool `json:"durable,omitempty"`
	// DurableTTLMS bounds how long a parked subscription is kept.
	DurableTTLMS int64            `json:"durable_ttl_ms,omitempty"`
	Filter       subscribe.Filter `json:"filter"`
	// window is the client-local stream credit window; it rides in the
	// stream-open frame itself, not the params.
	window uint64
}

// DefaultDurableTTL bounds parked subscriptions when the subscriber does
// not say.
const DefaultDurableTTL = time.Minute

// streamSink adapts an srpc server stream to the hub's Sink contract,
// translating credit exhaustion into the hub's blocked sentinel. Each
// sink owns the stream's stateful update encoder.
type streamSink struct {
	st  *srpc.ServerStream
	enc subscribe.UpdateEncoder
}

func (k *streamSink) TrySend(u *subscribe.Update) error {
	err := k.st.TrySend(subscribe.WireUpdate{U: u, Enc: &k.enc})
	switch {
	case err == nil:
		return nil
	case errors.Is(err, srpc.ErrNoCredit):
		return subscribe.ErrSinkBlocked
	case errors.Is(err, srpc.ErrStreamClosed):
		return subscribe.ErrSinkClosed
	default:
		return err
	}
}

func (k *streamSink) Ready() <-chan struct{} { return k.st.Ready() }
func (k *streamSink) Done() <-chan struct{}  { return k.st.Done() }
func (k *streamSink) Close(err error)        { k.st.Close(err) }

// ServeSubscriptions exports the hub on the server's SubscribeMethod
// stream method. Each accepted open becomes a hub subscription whose
// pump pushes updates down the stream; when the stream ends (client
// close or connection loss) the subscription detaches — parking if
// durable, cancelled otherwise.
func ServeSubscriptions(server *srpc.Server, hub *subscribe.Hub) {
	srpc.HandleStreamFunc(server, SubscribeMethod, func(p subscribeParams, st *srpc.ServerStream) error {
		sink := &streamSink{st: st}
		if p.Resume {
			if err := hub.Resume(p.Token, sink); err != nil {
				return err
			}
		} else {
			ttl := time.Duration(p.DurableTTLMS) * time.Millisecond
			if p.Durable && ttl <= 0 {
				ttl = DefaultDurableTTL
			}
			if err := hub.Subscribe(p.Token, p.Filter, sink, p.Durable, ttl); err != nil {
				return err
			}
		}
		// The pump watches st.Done itself and detaches on stream loss; no
		// extra watcher goroutine is needed here.
		return nil
	})
}

// SubscriberClient is the consumer half of one subscription stream.
type SubscriberClient struct {
	st    *srpc.ClientStream
	token string
	dec   subscribe.UpdateDecoder
}

// SubscribeOption configures a subscription.
type SubscribeOption func(*subscribeParams)

// WithDurable makes the subscription survive disconnects: the provider
// parks it for ttl (DefaultDurableTTL if 0) and ResumeSubscription picks
// the backlog up.
func WithDurable(ttl time.Duration) SubscribeOption {
	return func(p *subscribeParams) {
		p.Durable = true
		p.DurableTTLMS = ttl.Milliseconds()
	}
}

// WithWindow sets the stream credit window (frames in flight before the
// provider conflates); 0 keeps srpc.DefaultStreamWindow.
func WithWindow(n uint64) SubscribeOption {
	return func(p *subscribeParams) { p.window = n }
}

// Subscribe opens a push subscription over the client's connection. The
// returned SubscriberClient's token identifies the subscription for a
// later ResumeSubscription.
func Subscribe(c *srpc.Client, f subscribe.Filter, opts ...SubscribeOption) (*SubscriberClient, error) {
	p := subscribeParams{Token: ids.NewServiceID().String(), Filter: f}
	for _, o := range opts {
		o(&p)
	}
	st, err := c.OpenStream(SubscribeMethod, p, p.window)
	if err != nil {
		return nil, fmt.Errorf("remote: opening subscription: %w", err)
	}
	return &SubscriberClient{st: st, token: p.Token}, nil
}

// ResumeSubscription reattaches a durable subscription by token after a
// disconnect. Buffered readings (and the count of any the retention
// bound dropped) arrive as the first update.
func ResumeSubscription(c *srpc.Client, token string, opts ...SubscribeOption) (*SubscriberClient, error) {
	p := subscribeParams{Token: token, Resume: true}
	for _, o := range opts {
		o(&p)
	}
	st, err := c.OpenStream(SubscribeMethod, p, p.window)
	if err != nil {
		return nil, fmt.Errorf("remote: resuming subscription: %w", err)
	}
	return &SubscriberClient{st: st, token: token}, nil
}

// Token identifies the subscription (for ResumeSubscription).
func (sc *SubscriberClient) Token() string { return sc.token }

// Recv waits for the next update (timeout 0 = indefinitely). It returns
// io.EOF after an orderly provider close and a *srpc.RemoteError when
// the provider rejected or ended the subscription.
func (sc *SubscriberClient) Recv(timeout time.Duration) (subscribe.Update, error) {
	var u subscribe.Update
	w := subscribe.WireUpdate{U: &u, Dec: &sc.dec}
	if err := sc.st.Recv(&w, timeout); err != nil {
		return subscribe.Update{}, err
	}
	return u, nil
}

// Close ends the subscription stream. A durable subscription parks
// provider-side; others are cancelled.
func (sc *SubscriberClient) Close() { sc.st.Close() }

var _ subscribe.Sink = (*streamSink)(nil)
