package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/srpc"
)

// The registrar protocol lets a provider process register services in a
// lookup service running elsewhere, renew/cancel the registration leases,
// and let consumer processes run template lookups. Remote proxies cross
// the wire as ProxyDescs and are materialized into AccessorClients on the
// consumer side. Event notifications (Registrar.Notify) are intentionally
// not exposed remotely: remote consumers poll Lookup instead, exactly as
// the sensor browser does.

type wireItem struct {
	ID         ids.ServiceID `json:"id"`
	Types      []string      `json:"types"`
	Attributes attr.Set      `json:"attributes"`
	Proxy      *ProxyDesc    `json:"proxy,omitempty"`
}

type registerParams struct {
	Item     wireItem `json:"item"`
	LeaseSec float64  `json:"leaseSec"`
}

type registerResult struct {
	ServiceID  ids.ServiceID `json:"serviceId"`
	LeaseID    uint64        `json:"leaseId"`
	Expiration time.Time     `json:"expiration"`
}

type leaseParams struct {
	LeaseID  uint64  `json:"leaseId"`
	LeaseSec float64 `json:"leaseSec"`
}

type lookupParams struct {
	ID         ids.ServiceID `json:"id"`
	Types      []string      `json:"types"`
	Attributes attr.Set      `json:"attributes"`
	Max        int           `json:"max"`
}

type idParams struct {
	ID ids.ServiceID `json:"id"`
}

type modifyParams struct {
	ID         ids.ServiceID `json:"id"`
	Attributes attr.Set      `json:"attributes"`
}

type infoResult struct {
	ID   ids.ServiceID `json:"id"`
	Name string        `json:"name"`
}

// remoteProxyHolder wraps a ProxyDesc registered by a remote provider so
// that local lookups can also materialize a stub lazily.
type remoteProxyHolder struct {
	desc ProxyDesc

	mu     sync.Mutex
	client *AccessorClient
}

// Accessor materializes (and caches) a stub for the held descriptor. The
// dial happens outside h.mu — holding a lock across a TCP connect would
// stall every concurrent lookup behind one slow peer — so two callers may
// race; the loser's client is closed and the cached winner returned.
func (h *remoteProxyHolder) Accessor(timeout time.Duration) (*AccessorClient, error) {
	h.mu.Lock()
	cached := h.client
	h.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	c, err := NewAccessorClient(h.desc, timeout)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if h.client == nil {
		h.client = c
	}
	cached = h.client
	h.mu.Unlock()
	if cached != c {
		c.Close()
	}
	return cached, nil
}

// Describer is implemented by local services that know their own remote
// proxy descriptor, so they can be served to remote lookups.
type Describer interface {
	ProxyDesc() ProxyDesc
}

// ServeRegistrar exports a lookup service over srpc. Remote registrations
// carry proxy descriptors; locally registered services are exported to
// remote lookups only if their proxy implements Describer.
func ServeRegistrar(server *srpc.Server, lus registry.Registrar) {
	srpc.HandleFunc(server, "registrar.info", func(struct{}) (any, error) {
		return infoResult{ID: lus.ID(), Name: lus.Name()}, nil
	})
	srpc.HandleFunc(server, "registrar.register", func(p registerParams) (any, error) {
		if p.Item.Proxy == nil {
			return nil, errors.New("remote: registration without proxy descriptor")
		}
		item := registry.ServiceItem{
			ID:         p.Item.ID,
			Types:      p.Item.Types,
			Attributes: p.Item.Attributes,
			Service:    &remoteProxyHolder{desc: *p.Item.Proxy},
		}
		reg, err := lus.Register(item, time.Duration(p.LeaseSec*float64(time.Second)))
		if err != nil {
			return nil, err
		}
		return registerResult{
			ServiceID:  reg.ServiceID,
			LeaseID:    reg.Lease.ID,
			Expiration: reg.Lease.Expiration,
		}, nil
	})
	srpc.HandleFunc(server, "registrar.renew", func(p leaseParams) (any, error) {
		// The in-process LUS grants its leases from tables reachable via
		// the Registration lease's grantor; we reach them through a
		// renewal shim registered at Register time. For the remote
		// protocol the grantor is found through the lus itself.
		g, ok := lus.(leaseGrantorSource)
		if !ok {
			return nil, errors.New("remote: registrar does not expose lease grantor")
		}
		exp, err := g.RenewItemLease(p.LeaseID, time.Duration(p.LeaseSec*float64(time.Second)))
		if err != nil {
			return nil, err
		}
		return exp, nil
	})
	srpc.HandleFunc(server, "registrar.cancel", func(p leaseParams) (any, error) {
		g, ok := lus.(leaseGrantorSource)
		if !ok {
			return nil, errors.New("remote: registrar does not expose lease grantor")
		}
		return nil, g.CancelItemLease(p.LeaseID)
	})
	srpc.HandleFunc(server, "registrar.lookup", func(p lookupParams) (any, error) {
		tmpl := registry.Template{ID: p.ID, Types: p.Types, Attributes: p.Attributes}
		items := lus.Lookup(tmpl, p.Max)
		out := make(wireItems, 0, len(items))
		for _, item := range items {
			w := wireItem{ID: item.ID, Types: item.Types, Attributes: item.Attributes}
			switch svc := item.Service.(type) {
			case *remoteProxyHolder:
				d := svc.desc
				w.Proxy = &d
			case Describer:
				d := svc.ProxyDesc()
				w.Proxy = &d
			}
			out = append(out, w)
		}
		return out, nil
	})
	srpc.HandleFunc(server, "registrar.deregister", func(p idParams) (any, error) {
		return nil, lus.Deregister(p.ID)
	})
	srpc.HandleFunc(server, "registrar.modify", func(p modifyParams) (any, error) {
		return nil, lus.ModifyAttributes(p.ID, p.Attributes)
	})
}

// leaseGrantorSource is the extra surface the remote protocol needs from
// the lookup service to renew item leases by id.
type leaseGrantorSource interface {
	RenewItemLease(leaseID uint64, d time.Duration) (time.Time, error)
	CancelItemLease(leaseID uint64) error
}

// RegistrarClient is a registry.Registrar stub over srpc.
type RegistrarClient struct {
	client  *srpc.Client
	timeout time.Duration

	mu    sync.Mutex
	id    ids.ServiceID
	name  string
	token string
}

// NewRegistrarClient dials a remote registrar and fetches its identity.
func NewRegistrarClient(locator string, timeout time.Duration) (*RegistrarClient, error) {
	c, err := srpc.Dial(locator, timeout)
	if err != nil {
		return nil, err
	}
	rc := &RegistrarClient{client: c, timeout: timeout}
	var info infoResult
	if err := c.Call("registrar.info", nil, &info); err != nil {
		c.Close()
		return nil, fmt.Errorf("remote: fetching registrar identity: %w", err)
	}
	rc.id, rc.name = info.ID, info.Name
	return rc, nil
}

// ID implements registry.Registrar.
func (r *RegistrarClient) ID() ids.ServiceID { return r.id }

// Name implements registry.Registrar.
func (r *RegistrarClient) Name() string { return r.name }

// Register implements registry.Registrar. The item's Service must be a
// ProxyDesc or a Describer (a locally exported service).
func (r *RegistrarClient) Register(item registry.ServiceItem, leaseDur time.Duration) (registry.Registration, error) {
	var desc *ProxyDesc
	switch svc := item.Service.(type) {
	case ProxyDesc:
		desc = &svc
	case *ProxyDesc:
		desc = svc
	case Describer:
		d := svc.ProxyDesc()
		desc = &d
	default:
		return registry.Registration{}, fmt.Errorf("remote: cannot export %T; register a ProxyDesc", item.Service)
	}
	p := registerParams{
		Item:     wireItem{ID: item.ID, Types: item.Types, Attributes: item.Attributes, Proxy: desc},
		LeaseSec: leaseDur.Seconds(),
	}
	var res registerResult
	if err := r.client.Call("registrar.register", p, &res); err != nil {
		return registry.Registration{}, err
	}
	return registry.Registration{
		ServiceID: res.ServiceID,
		Lease: lease.Lease{
			ID:         res.LeaseID,
			Expiration: res.Expiration,
			Grantor:    &remoteGrantor{client: r.client},
		},
	}, nil
}

// remoteGrantor renews/cancels registration leases over the wire.
type remoteGrantor struct{ client *srpc.Client }

// Renew implements lease.Grantor.
func (g *remoteGrantor) Renew(id uint64, requested time.Duration) (time.Time, error) {
	var exp time.Time
	err := g.client.Call("registrar.renew", leaseParams{LeaseID: id, LeaseSec: requested.Seconds()}, &exp)
	return exp, err
}

// Cancel implements lease.Grantor.
func (g *remoteGrantor) Cancel(id uint64) error {
	return g.client.Call("registrar.cancel", leaseParams{LeaseID: id}, nil)
}

// Deregister implements registry.Registrar.
func (r *RegistrarClient) Deregister(id ids.ServiceID) error {
	return r.client.Call("registrar.deregister", idParams{ID: id}, nil)
}

// ModifyAttributes implements registry.Registrar.
func (r *RegistrarClient) ModifyAttributes(id ids.ServiceID, attrs attr.Set) error {
	return r.client.Call("registrar.modify", modifyParams{ID: id, Attributes: attrs}, nil)
}

// Lookup implements registry.Registrar, materializing accessor stubs for
// items that carry proxy descriptors.
func (r *RegistrarClient) Lookup(tmpl registry.Template, maxMatches int) []registry.ServiceItem {
	p := lookupParams{ID: tmpl.ID, Types: tmpl.Types, Attributes: tmpl.Attributes, Max: maxMatches}
	var ws wireItems
	if err := r.client.Call("registrar.lookup", p, &ws); err != nil {
		return nil
	}
	token := r.currentToken()
	out := make([]registry.ServiceItem, 0, len(ws))
	for _, w := range ws {
		item := registry.ServiceItem{ID: w.ID, Types: w.Types, Attributes: w.Attributes}
		if w.Proxy != nil {
			switch w.Proxy.Kind {
			case AccessorKind:
				if acc, err := NewAccessorClient(*w.Proxy, r.timeout); err == nil {
					if token != "" {
						acc.SetToken(token)
					}
					item.Service = acc
				}
			case ServicerKind:
				if svc, err := NewServicerClient(*w.Proxy, r.timeout); err == nil {
					if token != "" {
						svc.SetToken(token)
					}
					item.Service = svc
				}
			}
		}
		out = append(out, item)
	}
	return out
}

// LookupOne implements registry.Registrar.
func (r *RegistrarClient) LookupOne(tmpl registry.Template) (registry.ServiceItem, error) {
	items := r.Lookup(tmpl, 1)
	if len(items) == 0 {
		return registry.ServiceItem{}, registry.ErrNotFound
	}
	return items[0], nil
}

// Notify is not supported over the remote protocol; consumers poll Lookup.
func (r *RegistrarClient) Notify(registry.Template, int, registry.Listener, time.Duration) (registry.EventRegistration, error) {
	return registry.EventRegistration{}, errors.New("remote: Notify is not supported over srpc; poll Lookup")
}

// CancelNotify is a no-op (see Notify).
func (r *RegistrarClient) CancelNotify(uint64) {}

// Close releases the connection.
func (r *RegistrarClient) Close() { r.client.Close() }

var _ registry.Registrar = (*RegistrarClient)(nil)

// SetToken attaches a shared secret to this registrar connection and to
// every accessor/servicer stub later materialized by Lookup, for
// deployments whose srpc servers require authentication.
func (r *RegistrarClient) SetToken(token string) {
	r.mu.Lock()
	r.token = token
	r.mu.Unlock()
	r.client.SetToken(token)
}

func (r *RegistrarClient) currentToken() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.token
}

// NewRegistrarClientWithToken dials a remote registrar whose server
// requires the shared secret.
func NewRegistrarClientWithToken(locator, token string, timeout time.Duration) (*RegistrarClient, error) {
	c, err := srpc.Dial(locator, timeout)
	if err != nil {
		return nil, err
	}
	c.SetToken(token)
	rc := &RegistrarClient{client: c, timeout: timeout, token: token}
	var info infoResult
	if err := c.Call("registrar.info", nil, &info); err != nil {
		c.Close()
		return nil, fmt.Errorf("remote: fetching registrar identity: %w", err)
	}
	rc.id, rc.name = info.ID, info.Name
	return rc, nil
}
