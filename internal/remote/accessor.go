// Package remote provides the cross-process adapters for sensorcer's two
// remote interfaces: SensorDataAccessor (sensor reads) and the lookup
// service Registrar (registration/lookup). In Java/Jini these would be
// dynamic proxies serialized into the lookup service; in Go they are small
// hand-written stubs over the srpc transport. A provider process exports
// its accessor with ServeAccessor and registers a proxy descriptor; a
// consumer process materializes an AccessorClient from the descriptor.
package remote

import (
	"errors"
	"fmt"
	"time"

	"sensorcer/internal/resilience"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/srpc"
)

// retryableCall is the default Retryable filter for remote stubs: remote
// execution errors are final (the server ran the handler and said no), as
// is the stub's own orderly shutdown; timeouts and lost connections are
// worth another attempt.
func retryableCall(err error) bool {
	var re *srpc.RemoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, srpc.ErrClientClosed)
}

// callPolicy normalizes a user-supplied policy for stub use.
func callPolicy(p resilience.Policy) resilience.Policy {
	if p.Retryable == nil {
		p.Retryable = retryableCall
	}
	return p
}

// ProxyDesc is the serializable stand-in for a live service proxy: enough
// information for a remote peer to construct a stub.
type ProxyDesc struct {
	// Kind discriminates the stub type ("accessor").
	Kind string `json:"kind"`
	// Locator is the srpc endpoint (host:port).
	Locator string `json:"locator"`
	// Service scopes the methods on a shared endpoint (one process may
	// export several sensors).
	Service string `json:"service"`
}

// AccessorKind is the ProxyDesc kind for sensor data accessors.
const AccessorKind = "accessor"

// wireReading is the JSON form of a probe.Reading.
type wireReading struct {
	Sensor    string    `json:"sensor"`
	Kind      string    `json:"kind"`
	Unit      string    `json:"unit"`
	Value     float64   `json:"value"`
	Timestamp time.Time `json:"timestamp"`
}

func toWire(r probe.Reading) wireReading {
	return wireReading{Sensor: r.Sensor, Kind: r.Kind, Unit: r.Unit, Value: r.Value, Timestamp: r.Timestamp}
}

func fromWire(w wireReading) probe.Reading {
	return probe.Reading{Sensor: w.Sensor, Kind: w.Kind, Unit: w.Unit, Value: w.Value, Timestamp: w.Timestamp}
}

type wireInfo struct {
	Name       string `json:"name"`
	Technology string `json:"technology"`
	Kind       string `json:"kind"`
	Unit       string `json:"unit"`
}

type readingsParams struct {
	Service string `json:"service"`
	N       int    `json:"n"`
}

type serviceParams struct {
	Service string `json:"service"`
}

// ServeAccessor exports a DataAccessor on the srpc server under the given
// service name, returning the proxy descriptor to register in lookup
// services.
func ServeAccessor(server *srpc.Server, serviceName string, acc sensor.DataAccessor) ProxyDesc {
	srpc.HandleFunc(server, "accessor.getValue."+serviceName, func(serviceParams) (any, error) {
		r, err := acc.GetValue()
		if err != nil {
			return nil, err
		}
		return toWire(r), nil
	})
	srpc.HandleFunc(server, "accessor.getReadings."+serviceName, func(p readingsParams) (any, error) {
		readings := acc.GetReadings(p.N)
		out := make(wireReadings, len(readings))
		for i, r := range readings {
			out[i] = toWire(r)
		}
		return out, nil
	})
	srpc.HandleFunc(server, "accessor.describe."+serviceName, func(serviceParams) (any, error) {
		info := acc.Describe()
		return wireInfo{Name: info.Name, Technology: info.Technology, Kind: info.Kind, Unit: info.Unit}, nil
	})
	return ProxyDesc{Kind: AccessorKind, Locator: server.Addr(), Service: serviceName}
}

// AccessorClient is a sensor.DataAccessor stub over srpc.
type AccessorClient struct {
	desc   ProxyDesc
	client *srpc.Client
	// policy governs each remote call (zero = single attempt); see
	// SetRetryPolicy.
	policy resilience.Policy
}

// SetRetryPolicy runs every stub call under the resilience policy. The
// Retryable filter defaults to refusing remote execution errors (the
// provider ran and failed — retrying re-executes) while retrying
// timeouts and lost connections; Attempt.Timeout bounds each try.
func (a *AccessorClient) SetRetryPolicy(p resilience.Policy) {
	a.policy = callPolicy(p)
}

// call runs one srpc method under the stub's policy.
func (a *AccessorClient) call(method string, params, out any) error {
	return a.policy.Run(func(at resilience.Attempt) error {
		return a.client.CallWithTimeout(method, params, out, at.Timeout)
	})
}

// NewAccessorClient materializes a stub from a proxy descriptor, dialing
// the exporting process.
func NewAccessorClient(desc ProxyDesc, timeout time.Duration) (*AccessorClient, error) {
	if desc.Kind != AccessorKind {
		return nil, fmt.Errorf("remote: descriptor kind %q is not an accessor", desc.Kind)
	}
	client, err := srpc.Dial(desc.Locator, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing %s: %w", desc.Locator, err)
	}
	return &AccessorClient{desc: desc, client: client}, nil
}

// SensorName implements sensor.DataAccessor.
func (a *AccessorClient) SensorName() string { return a.desc.Service }

// GetValue implements sensor.DataAccessor.
func (a *AccessorClient) GetValue() (probe.Reading, error) {
	var w wireReading
	if err := a.call("accessor.getValue."+a.desc.Service, serviceParams{Service: a.desc.Service}, &w); err != nil {
		return probe.Reading{}, err
	}
	return fromWire(w), nil
}

// GetReadings implements sensor.DataAccessor.
func (a *AccessorClient) GetReadings(n int) []probe.Reading {
	var ws wireReadings
	if err := a.call("accessor.getReadings."+a.desc.Service, readingsParams{Service: a.desc.Service, N: n}, &ws); err != nil {
		return nil
	}
	out := make([]probe.Reading, len(ws))
	for i, w := range ws {
		out[i] = fromWire(w)
	}
	return out
}

// Describe implements sensor.DataAccessor.
func (a *AccessorClient) Describe() probe.Info {
	var w wireInfo
	if err := a.call("accessor.describe."+a.desc.Service, serviceParams{Service: a.desc.Service}, &w); err != nil {
		return probe.Info{Name: a.desc.Service}
	}
	return probe.Info{Name: w.Name, Technology: w.Technology, Kind: w.Kind, Unit: w.Unit}
}

// Close releases the stub's connection.
func (a *AccessorClient) Close() { a.client.Close() }

var _ sensor.DataAccessor = (*AccessorClient)(nil)

// AccessorExporter returns a sensor.ProxyExporter backed by the srpc
// server: each locally created composite is exported under its name and
// registered as a dual proxy — live DataAccessor for in-process
// registrars, Describer (proxy descriptor) for remote ones.
func AccessorExporter(server *srpc.Server) func(name string, acc sensor.DataAccessor) any {
	return func(name string, acc sensor.DataAccessor) any {
		desc := ServeAccessor(server, name, acc)
		return exportedAccessor{DataAccessor: acc, desc: desc}
	}
}

// exportedAccessor is both a live accessor and a remote-describable proxy.
type exportedAccessor struct {
	sensor.DataAccessor
	desc ProxyDesc
}

// ProxyDesc implements Describer.
func (e exportedAccessor) ProxyDesc() ProxyDesc { return e.desc }

// SetToken attaches a shared secret to the stub's connection.
func (a *AccessorClient) SetToken(token string) { a.client.SetToken(token) }
