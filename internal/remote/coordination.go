package remote

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/srpc"
)

// The coordination protocol lets coordinator replicas in separate
// processes compete for a coordination lease hosted by a lookup service
// elsewhere: acquire the single-holder grant (winning a fencing token),
// renew it by id, and abdicate. The fencing semantics are entirely the
// lease table's — the wire only has to preserve the sentinels a replica
// branches on (ErrHeld: stand by; ErrUnknownLease: deposed).

type wireCoordAcquire struct {
	Name   string  `json:"name"`
	Holder string  `json:"holder"`
	DurSec float64 `json:"durSec"`
}

type wireCoordGrant struct {
	Token      uint64    `json:"token"`
	Holder     string    `json:"holder"`
	LeaseID    uint64    `json:"leaseId"`
	Expiration time.Time `json:"expiration"`
}

type wireCoordName struct {
	Name string `json:"name"`
}

type wireCoordHolder struct {
	Holder string `json:"holder"`
	Token  uint64 `json:"token"`
	OK     bool   `json:"ok"`
}

type wireCoordLease struct {
	LeaseID uint64  `json:"leaseId"`
	DurSec  float64 `json:"durSec"`
}

// CoordLeaseSource is the surface a lookup service exports for remote
// coordination: the CoordGrantor competition plus by-id renewal.
// *registry.LookupService implements it.
type CoordLeaseSource interface {
	registry.CoordGrantor
	RenewCoordination(id uint64, d time.Duration) (time.Time, error)
	CancelCoordination(id uint64) error
}

// ServeCoordination exports the lookup service's coordination leases
// over srpc, so coordinator replicas in other processes can compete for
// them.
func ServeCoordination(server *srpc.Server, src CoordLeaseSource) {
	srpc.HandleFunc(server, "coord.acquire", func(p wireCoordAcquire) (any, error) {
		g, err := src.AcquireCoordination(p.Name, p.Holder, time.Duration(p.DurSec*float64(time.Second)))
		if err != nil {
			return nil, err
		}
		return wireCoordGrant{
			Token:      g.Token,
			Holder:     g.Holder,
			LeaseID:    g.Lease.ID,
			Expiration: g.Lease.Expiration,
		}, nil
	})
	srpc.HandleFunc(server, "coord.holder", func(p wireCoordName) (any, error) {
		holder, token, ok := src.CoordinationHolder(p.Name)
		return wireCoordHolder{Holder: holder, Token: token, OK: ok}, nil
	})
	srpc.HandleFunc(server, "coord.renew", func(p wireCoordLease) (any, error) {
		return src.RenewCoordination(p.LeaseID, time.Duration(p.DurSec*float64(time.Second)))
	})
	srpc.HandleFunc(server, "coord.cancel", func(p wireCoordLease) (any, error) {
		return nil, src.CancelCoordination(p.LeaseID)
	})
}

// coordErr maps a server-side failure string back onto the sentinel a
// coordinator replica branches on (srpc flattens errors to strings).
func coordErr(err error) error {
	if err == nil {
		return nil
	}
	var re *srpc.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{lease.ErrHeld, lease.ErrUnknownLease, lease.ErrCanceled} {
		if strings.Contains(re.Message, sentinel.Error()) {
			return fmt.Errorf("%w: %s", sentinel, re.Message)
		}
	}
	return err
}

// CoordinationClient is a registry.CoordGrantor stub over srpc: the
// handle a separate-process coordinator replica competes through.
type CoordinationClient struct {
	client  *srpc.Client
	timeout time.Duration
}

// NewCoordinationClient dials a lookup service's coordination endpoints.
func NewCoordinationClient(locator string, timeout time.Duration) (*CoordinationClient, error) {
	c, err := srpc.Dial(locator, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing coordination host %s: %w", locator, err)
	}
	return &CoordinationClient{client: c, timeout: timeout}, nil
}

// AcquireCoordination implements registry.CoordGrantor over srpc. The
// returned grant's lease renews and cancels through this client.
func (c *CoordinationClient) AcquireCoordination(name, holder string, dur time.Duration) (lease.FencedGrant, error) {
	var res wireCoordGrant
	err := c.client.CallWithTimeout("coord.acquire",
		wireCoordAcquire{Name: name, Holder: holder, DurSec: dur.Seconds()}, &res, c.timeout)
	if err != nil {
		return lease.FencedGrant{}, coordErr(err)
	}
	return lease.FencedGrant{
		Token:  res.Token,
		Holder: res.Holder,
		Lease: lease.Lease{
			ID:         res.LeaseID,
			Expiration: res.Expiration,
			Grantor:    &coordGrantor{client: c},
		},
	}, nil
}

// CoordinationHolder implements registry.CoordGrantor over srpc. A
// transport failure reports no holder — indistinguishable, to a standby,
// from the lease being free; the authoritative answer is Acquire's.
func (c *CoordinationClient) CoordinationHolder(name string) (string, uint64, bool) {
	var res wireCoordHolder
	if err := c.client.CallWithTimeout("coord.holder", wireCoordName{Name: name}, &res, c.timeout); err != nil {
		return "", 0, false
	}
	return res.Holder, res.Token, res.OK
}

// Close releases the connection.
func (c *CoordinationClient) Close() { c.client.Close() }

var _ registry.CoordGrantor = (*CoordinationClient)(nil)

// coordGrantor renews/cancels coordination leases over the wire.
type coordGrantor struct{ client *CoordinationClient }

// Renew implements lease.Grantor.
func (g *coordGrantor) Renew(id uint64, requested time.Duration) (time.Time, error) {
	var exp time.Time
	err := g.client.client.CallWithTimeout("coord.renew",
		wireCoordLease{LeaseID: id, DurSec: requested.Seconds()}, &exp, g.client.timeout)
	return exp, coordErr(err)
}

// Cancel implements lease.Grantor.
func (g *coordGrantor) Cancel(id uint64) error {
	return coordErr(g.client.client.CallWithTimeout("coord.cancel",
		wireCoordLease{LeaseID: id}, nil, g.client.timeout))
}
