package remote

import (
	"errors"
	"fmt"
	"time"

	"sensorcer/internal/resilience"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/srpc"
	"sensorcer/internal/txn"
)

// ServicerKind is the ProxyDesc kind for exertion-capable peers: with it,
// federated method invocation crosses process boundaries — a remote
// provider serves tasks exactly as an in-process one does.
const ServicerKind = "servicer"

// wireTask is the JSON form of an elementary exertion: its signature and
// a flat service context. Context values must be JSON-representable
// (numbers, strings, booleans, lists); richer values stay in-process.
type wireTask struct {
	Name         string         `json:"name"`
	ServiceType  string         `json:"serviceType"`
	Selector     string         `json:"selector"`
	ProviderName string         `json:"providerName,omitempty"`
	Context      map[string]any `json:"context,omitempty"`
}

// wireTaskResult carries the post-execution context back.
type wireTaskResult struct {
	Context map[string]any `json:"context,omitempty"`
}

func contextToWire(ctx *sorcer.Context) map[string]any {
	out := make(map[string]any, ctx.Len())
	for _, p := range ctx.Paths() {
		v, _ := ctx.Get(p)
		out[p] = v
	}
	return out
}

// ServeServicer exports a Servicer on the srpc server under the service
// name, returning its proxy descriptor. Remote transactions are not
// supported: tasks arriving over the wire run transaction-free.
func ServeServicer(server *srpc.Server, serviceName string, svc sorcer.Servicer) ProxyDesc {
	srpc.HandleFunc(server, "servicer.service."+serviceName, func(p wireTask) (any, error) {
		sig := sorcer.Signature{
			ServiceType:  p.ServiceType,
			Selector:     p.Selector,
			ProviderName: p.ProviderName,
		}
		ctx := sorcer.NewContext()
		for k, v := range p.Context {
			ctx.Put(k, v)
		}
		task := sorcer.NewTask(p.Name, sig, ctx)
		res, err := svc.Service(task, nil)
		if err != nil {
			return nil, err
		}
		return wireTaskResult{Context: contextToWire(res.Context())}, nil
	})
	return ProxyDesc{Kind: ServicerKind, Locator: server.Addr(), Service: serviceName}
}

// ServicerClient is a sorcer.Servicer stub over srpc.
type ServicerClient struct {
	desc   ProxyDesc
	client *srpc.Client
	// policy governs each remote exertion call (zero = single attempt).
	policy resilience.Policy
}

// SetRetryPolicy runs every remote exertion under the resilience policy.
// Remote execution errors are never retried by default — the provider ran
// the task and failed; re-running would double-execute. Only transport
// faults (timeouts, lost connections) are retried, and those carry the
// risk the request was executed but the reply lost: at-most-once becomes
// at-least-once, which exertion operations must tolerate.
func (s *ServicerClient) SetRetryPolicy(p resilience.Policy) {
	s.policy = callPolicy(p)
}

// NewServicerClient materializes a stub from a servicer proxy descriptor.
func NewServicerClient(desc ProxyDesc, timeout time.Duration) (*ServicerClient, error) {
	if desc.Kind != ServicerKind {
		return nil, fmt.Errorf("remote: descriptor kind %q is not a servicer", desc.Kind)
	}
	client, err := srpc.Dial(desc.Locator, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing %s: %w", desc.Locator, err)
	}
	return &ServicerClient{desc: desc, client: client}, nil
}

// Service implements sorcer.Servicer for elementary exertions. The task's
// context travels both ways; the remote execution result is merged back
// into the local task.
func (s *ServicerClient) Service(ex sorcer.Exertion, tx *txn.Transaction) (sorcer.Exertion, error) {
	task, ok := ex.(*sorcer.Task)
	if !ok {
		return ex, fmt.Errorf("remote: only tasks cross process boundaries, got %T", ex)
	}
	if tx != nil {
		err := errors.New("remote: transactions are not supported across srpc")
		sorcer.FinishTask(task, nil, err)
		return task, err
	}
	sig := task.Signature()
	req := wireTask{
		Name:         task.Name(),
		ServiceType:  sig.ServiceType,
		Selector:     sig.Selector,
		ProviderName: sig.ProviderName,
		Context:      contextToWire(task.Context()),
	}
	var res wireTaskResult
	err := s.policy.Run(func(at resilience.Attempt) error {
		return s.client.CallWithTimeout("servicer.service."+s.desc.Service, req, &res, at.Timeout)
	})
	if err != nil {
		sorcer.FinishTask(task, nil, err)
		return task, err
	}
	ctx := task.Context()
	for k, v := range res.Context {
		ctx.Put(k, v)
	}
	sorcer.FinishTask(task, ctx, nil)
	return task, nil
}

// Close releases the stub's connection.
func (s *ServicerClient) Close() { s.client.Close() }

var _ sorcer.Servicer = (*ServicerClient)(nil)

// SetToken attaches a shared secret to the stub's connection.
func (s *ServicerClient) SetToken(token string) { s.client.SetToken(token) }
