package remote

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/srpc"
	"sensorcer/internal/subscribe"
)

// cpuNow reads the process's consumed CPU time (user + system). Both
// fan-out benchmarks host client and server in one process, so the delta
// across the loop is the total CPU a propagated delta costs, scheduler
// idle time excluded — the number the poll→push comparison is about.
func cpuNow(b *testing.B) time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		b.Fatal(err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// benchSensor is the upstream source both fan-out benchmarks share: a
// settable value with an evaluation counter, so the benchmarks can report
// how many sensor evaluations one propagated delta costs. Poll pays one
// evaluation per subscriber per delta; the subscription plane pays one
// per delta, full stop.
type benchSensor struct {
	mu    sync.Mutex
	value float64
	evals atomic.Int64
}

func (s *benchSensor) set(v float64) {
	s.mu.Lock()
	s.value = v
	s.mu.Unlock()
}

func (s *benchSensor) GetValue() (probe.Reading, error) {
	s.evals.Add(1)
	s.mu.Lock()
	v := s.value
	s.mu.Unlock()
	return probe.Reading{Sensor: "bench-rtd", Kind: "temperature", Unit: "celsius", Value: v, Timestamp: epoch}, nil
}

func (s *benchSensor) GetReadings(int) []probe.Reading { return nil }

func (s *benchSensor) SensorName() string { return "bench-rtd" }

func (s *benchSensor) Describe() probe.Info {
	return probe.Info{Name: "bench-rtd", Technology: "bench", Kind: "temperature", Unit: "celsius"}
}

// fanoutConns is the connection budget for a subscriber fleet: real
// deployments multiplex many subscribers over few connections, so the
// benchmarks do too instead of paying 5000 TCP sockets.
func fanoutConns(subscribers int) int {
	if subscribers < 32 {
		return subscribers
	}
	return 32
}

// fanoutSizes is the subscriber-count sweep: the single-subscriber
// baseline, a realistic federation, and the scale point where per-
// subscriber eval cost dominates polling.
var fanoutSizes = []int{1, 100, 5000}

// BenchmarkPollFanout is the pre-subscription baseline: every subscriber
// polls GetValue over srpc once per upstream delta — the minimum a
// polling consumer must do to stay current with each delta. One op =
// one delta propagated to all N subscribers, so ns/op, wirebytes/op and
// evals/op all scale linearly with the fleet.
func BenchmarkPollFanout(b *testing.B) {
	for _, n := range fanoutSizes {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			sensorImpl := &benchSensor{}
			server := srpc.NewServer()
			if err := server.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { server.Close() })
			desc := ServeAccessor(server, "bench-rtd", sensorImpl)
			proxy := startCountingProxy(b, server.Addr())
			desc.Locator = proxy.addr()

			conns := fanoutConns(n)
			clients := make([]*AccessorClient, conns)
			for i := range clients {
				ac, err := NewAccessorClient(desc, 5*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(ac.Close)
				clients[i] = ac
			}
			// Warm the connections, then zero the meters.
			for _, ac := range clients {
				if _, err := ac.GetValue(); err != nil {
					b.Fatal(err)
				}
			}
			proxy.bytes.Store(0)
			sensorImpl.evals.Store(0)
			b.ResetTimer()
			cpu0 := cpuNow(b)
			for i := 0; i < b.N; i++ {
				sensorImpl.set(float64(i))
				// Each connection polls for its share of the fleet, in
				// parallel — the best case for polling.
				var wg sync.WaitGroup
				for w := 0; w < conns; w++ {
					polls := n / conns
					if w < n%conns {
						polls++
					}
					if polls == 0 {
						continue
					}
					wg.Add(1)
					go func(ac *AccessorClient, polls int) {
						defer wg.Done()
						for j := 0; j < polls; j++ {
							if _, err := ac.GetValue(); err != nil {
								b.Error(err)
								return
							}
						}
					}(clients[w], polls)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(cpuNow(b)-cpu0)/float64(b.N), "cpu-ns/op")
			b.ReportMetric(float64(proxy.bytes.Load())/float64(b.N), "wirebytes/op")
			b.ReportMetric(float64(sensorImpl.evals.Load())/float64(b.N), "evals/op")
		})
	}
}

// BenchmarkSubscribeFanout is the subscription plane on the same
// contract: N subscribers hold multiplexed streams over the same
// connection budget, and every upstream delta must leave the whole
// fleet holding the latest value. One op = one delta, paced on a canary
// subscriber's receipt so every delta genuinely evaluates and fans out
// (no wholesale coalescing) while the other deliveries pipeline behind
// it — the plane's contract is freshness, so a consumer the canary
// outran receives a conflated update rather than stalling the
// publisher. The fleet must converge on the final value before the
// clock stops. evals/op stays at 1 regardless of N, where polling pays
// one evaluation per subscriber per delta.
func BenchmarkSubscribeFanout(b *testing.B) {
	for _, n := range fanoutSizes {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			sensorImpl := &benchSensor{}
			hub := subscribe.NewHub()
			b.Cleanup(hub.Close)
			src := subscribe.NewSource(hub, sensorImpl)
			src.Start()
			b.Cleanup(src.Stop)

			server := srpc.NewServer()
			if err := server.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { server.Close() })
			ServeSubscriptions(server, hub)
			proxy := startCountingProxy(b, server.Addr())

			conns := fanoutConns(n)
			clients := make([]*srpc.Client, conns)
			for i := range clients {
				c, err := srpc.Dial(proxy.addr(), 5*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(c.Close)
				clients[i] = c
			}
			// Each subscriber records the latest value it has seen;
			// convergence means the whole fleet observed the final delta.
			// Subscriber 0 is the canary: its receipts pace the publisher.
			lasts := make([]atomic.Int64, n)
			canary := make(chan struct{}, 1)
			for i := 0; i < n; i++ {
				sub, err := Subscribe(clients[i%conns], subscribe.Filter{})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(sub.Close)
				signal := i == 0
				go func(sub *SubscriberClient, last *atomic.Int64) {
					for {
						u, err := sub.Recv(0)
						if err != nil {
							return
						}
						for _, r := range u.Readings {
							last.Store(int64(math.Round(r.Value)))
						}
						if signal {
							select {
							case canary <- struct{}{}:
							default:
							}
						}
					}
				}(sub, &lasts[i])
			}
			waitConverged := func(v int64) {
				deadline := time.Now().Add(30 * time.Second)
				for i := 0; i < n; {
					if lasts[i].Load() == v {
						i++
						continue
					}
					if time.Now().After(deadline) {
						b.Fatalf("subscriber %d stuck at %d, want %d", i, lasts[i].Load(), v)
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
			// The opens race the first publish: wait for the hub to hold
			// the full fleet, then verify delivery once and zero the meters.
			deadline := time.Now().Add(10 * time.Second)
			for hub.Count() != n {
				if time.Now().After(deadline) {
					b.Fatalf("hub never saw %d subscriptions (count %d)", n, hub.Count())
				}
				time.Sleep(time.Millisecond)
			}
			sensorImpl.set(-1)
			src.Notify()
			waitConverged(-1)
			select {
			case <-canary:
			default:
			}
			proxy.bytes.Store(0)
			sensorImpl.evals.Store(0)
			b.ResetTimer()
			cpu0 := cpuNow(b)
			for i := 1; i <= b.N; i++ {
				sensorImpl.set(float64(i))
				src.Notify()
				<-canary
			}
			waitConverged(int64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(cpuNow(b)-cpu0)/float64(b.N), "cpu-ns/op")
			b.ReportMetric(float64(proxy.bytes.Load())/float64(b.N), "wirebytes/op")
			b.ReportMetric(float64(sensorImpl.evals.Load())/float64(b.N), "evals/op")
		})
	}
}
