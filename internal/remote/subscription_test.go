package remote

import (
	"errors"
	"io"
	"testing"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/srpc"
	"sensorcer/internal/subscribe"
)

func newSubHub(t *testing.T) (*srpc.Server, *subscribe.Hub) {
	t.Helper()
	server := srpc.NewServer()
	hub := subscribe.NewHub()
	ServeSubscriptions(server, hub)
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Close()
		hub.Close()
	})
	return server, hub
}

func subDial(t *testing.T, server *srpc.Server) *srpc.Client {
	t.Helper()
	c, err := srpc.Dial(server.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func pubReading(sensor string, v float64) probe.Reading {
	return probe.Reading{Sensor: sensor, Kind: "temperature", Unit: "celsius", Value: v, Timestamp: epoch}
}

func TestSubscriptionEndToEnd(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// The open races the first publish: wait for the hub to see it.
	waitFor(t, func() bool { return hub.Count() == 1 })
	hub.Publish(pubReading("rtd-1", 21.5))
	u, err := sub.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Readings) != 1 || u.Readings[0].Sensor != "rtd-1" || u.Readings[0].Value != 21.5 {
		t.Fatalf("update = %+v", u)
	}
	if u.Readings[0].Unit != "celsius" || u.Readings[0].Kind != "temperature" {
		t.Fatalf("meta lost: %+v", u.Readings[0])
	}
}

func TestSubscriptionFilteredDelivery(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{Sensors: []string{"rtd-1"}, Expr: "value > 20"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, func() bool { return hub.Count() == 1 })
	hub.Publish(pubReading("rtd-2", 30)) // wrong sensor
	hub.Publish(pubReading("rtd-1", 10)) // predicate fails
	hub.Publish(pubReading("rtd-1", 25)) // delivered
	u, err := sub.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Readings) != 1 || u.Readings[0].Value != 25 {
		t.Fatalf("update = %+v", u)
	}
}

func TestSubscriptionDuplicateTokenRejected(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, func() bool { return hub.Count() == 1 })
	// A second subscription with the same token: the server rejects the
	// open and the error surfaces on the first Recv.
	st, err := c.OpenStream(SubscribeMethod, subscribeParams{Token: sub.Token()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var re *srpc.RemoteError
	w := subscribe.WireUpdate{U: &subscribe.Update{}, Dec: &subscribe.UpdateDecoder{}}
	if err := st.Recv(&w, 2*time.Second); !errors.As(err, &re) {
		t.Fatalf("duplicate token err = %v, want RemoteError", err)
	}
}

// TestSubscriptionDurableResume: disconnect, publish into the parked
// backlog, resume on a new connection, catch up with gap accounting.
func TestSubscriptionDurableResume(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{}, WithDurable(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	token := sub.Token()
	waitFor(t, func() bool { return hub.Count() == 1 })
	hub.Publish(pubReading("rtd-1", 1))
	if _, err := sub.Recv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close() // drop the whole connection mid-subscription
	// The hub parks (stays registered) rather than cancelling.
	time.Sleep(50 * time.Millisecond)
	if hub.Count() != 1 {
		t.Fatalf("count after disconnect = %d, want 1 (parked)", hub.Count())
	}
	hub.Publish(pubReading("rtd-1", 2))
	hub.Publish(pubReading("rtd-2", 3))

	c2 := subDial(t, server)
	sub2, err := ResumeSubscription(c2, token)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	u, err := sub2.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range u.Readings {
		got[r.Sensor] = r.Value
	}
	if got["rtd-1"] != 2 || got["rtd-2"] != 3 {
		t.Fatalf("catch-up update = %+v", u.Readings)
	}
}

// TestSubscriptionEphemeralDisconnectCancels: a non-durable subscriber's
// disconnect removes the subscription.
func TestSubscriptionEphemeralDisconnectCancels(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	if _, err := Subscribe(c, subscribe.Filter{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hub.Count() == 1 })
	c.Close()
	waitFor(t, func() bool { return hub.Count() == 0 })
}

// TestSubscriptionSlowConsumerConflation: fill the stream window, keep
// publishing, then drain — delivery resumes with latest-per-key values
// and a dropped count, and the publisher never blocked.
func TestSubscriptionSlowConsumerConflation(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{}, WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, func() bool { return hub.Count() == 1 })
	// Publish far past the window without consuming.
	for i := 1; i <= 200; i++ {
		hub.Publish(pubReading("rtd-1", float64(i)))
	}
	// Drain: the stream delivers at most window-many stale updates, then
	// a conflated one carrying the latest value and the loss count.
	deadline := time.Now().Add(5 * time.Second)
	var last subscribe.Update
	for last.Readings == nil || last.Readings[0].Value != 200 {
		if time.Now().After(deadline) {
			t.Fatalf("never reached latest value; last = %+v", last)
		}
		u, err := sub.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		last = u
	}
	if last.Dropped == 0 {
		t.Fatalf("conflation under stall reported no drops: %+v", last)
	}
}

func TestSubscriptionServerCloseEndsStream(t *testing.T) {
	server, hub := newSubHub(t)
	c := subDial(t, server)
	sub, err := Subscribe(c, subscribe.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hub.Count() == 1 })
	hub.Cancel(sub.Token())
	if _, err := sub.Recv(2 * time.Second); err != io.EOF && !errors.Is(err, srpc.ErrConnClosed) {
		t.Fatalf("recv after cancel = %v, want EOF", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
