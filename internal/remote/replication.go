package remote

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sensorcer/internal/repl"
	"sensorcer/internal/srpc"
	"sensorcer/internal/wal"
)

// ReplicationKind is the ProxyDesc kind for a shard backup reachable
// over srpc: a primary ships its journal to it exactly as it would to
// an in-process node.
const ReplicationKind = "replication"

// Replication wire messages. Payloads are raw WAL record bytes —
// encoding/json transports [][]byte as base64 strings, so arbitrary
// record contents survive the trip.
type wireShipBatch struct {
	Epoch    uint64   `json:"epoch"`
	FirstSeq uint64   `json:"firstSeq"`
	Payloads [][]byte `json:"payloads,omitempty"`
}

type wireShipResult struct {
	NextSeq uint64 `json:"nextSeq"`
}

type wireShipSnapshot struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	Data  []byte `json:"data"`
}

type wireHeartbeat struct {
	Epoch uint64 `json:"epoch"`
}

// ServeReplication exports a node's replication endpoints (batch ship,
// snapshot install, heartbeat) on the srpc server under the shard name,
// returning the proxy descriptor a remote primary dials.
func ServeReplication(server *srpc.Server, shardName string, node *repl.Node) ProxyDesc {
	srpc.HandleFunc(server, "repl.ship."+shardName, func(p wireShipBatch) (any, error) {
		next, err := node.ShipBatch(p.Epoch, p.FirstSeq, p.Payloads)
		if err != nil {
			return nil, err
		}
		return wireShipResult{NextSeq: next}, nil
	})
	srpc.HandleFunc(server, "repl.snapshot."+shardName, func(p wireShipSnapshot) (any, error) {
		if err := node.ShipSnapshot(p.Epoch, p.Seq, p.Data); err != nil {
			return nil, err
		}
		return wireShipResult{NextSeq: p.Seq + 1}, nil
	})
	srpc.HandleFunc(server, "repl.heartbeat."+shardName, func(p wireHeartbeat) (any, error) {
		if err := node.Heartbeat(p.Epoch); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	})
	return ProxyDesc{Kind: ReplicationKind, Locator: server.Addr(), Service: shardName}
}

// ReplicationClient is a repl.Follower stub over srpc: the remote half
// of a cross-process shard pair.
type ReplicationClient struct {
	desc    ProxyDesc
	client  *srpc.Client
	timeout time.Duration
}

// NewReplicationClient materializes a follower stub from a replication
// proxy descriptor. The timeout bounds each ship — a primary
// acknowledges nothing while a ship is in flight, so an unresponsive
// backup must fail the ship (suspending the primary) rather than stall
// every writer forever.
func NewReplicationClient(desc ProxyDesc, timeout time.Duration) (*ReplicationClient, error) {
	if desc.Kind != ReplicationKind {
		return nil, fmt.Errorf("remote: descriptor kind %q is not a replication endpoint", desc.Kind)
	}
	client, err := srpc.Dial(desc.Locator, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing %s: %w", desc.Locator, err)
	}
	return &ReplicationClient{desc: desc, client: client, timeout: timeout}, nil
}

// replErr maps a server-side failure string back onto the sentinel the
// replication layer branches on — srpc flattens errors to strings, and
// a primary must distinguish "stale epoch, fence yourself" from "backup
// unreachable, suspend".
func replErr(err error) error {
	if err == nil {
		return nil
	}
	var re *srpc.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{
		repl.ErrStaleEpoch,
		repl.ErrNodeDown,
		repl.ErrNotBackup,
		wal.ErrSeqGap,
		wal.ErrCompacted,
	} {
		if strings.Contains(re.Message, sentinel.Error()) {
			return fmt.Errorf("%w: %s", sentinel, re.Message)
		}
	}
	return err
}

// ShipBatch implements repl.Follower over srpc.
func (c *ReplicationClient) ShipBatch(epoch, firstSeq uint64, payloads [][]byte) (uint64, error) {
	var res wireShipResult
	err := c.client.CallWithTimeout("repl.ship."+c.desc.Service,
		wireShipBatch{Epoch: epoch, FirstSeq: firstSeq, Payloads: payloads}, &res, c.timeout)
	if err != nil {
		return 0, replErr(err)
	}
	return res.NextSeq, nil
}

// ShipSnapshot implements repl.Follower over srpc.
func (c *ReplicationClient) ShipSnapshot(epoch, seq uint64, data []byte) error {
	var res wireShipResult
	err := c.client.CallWithTimeout("repl.snapshot."+c.desc.Service,
		wireShipSnapshot{Epoch: epoch, Seq: seq, Data: data}, &res, c.timeout)
	return replErr(err)
}

// Heartbeat implements repl.Follower over srpc.
func (c *ReplicationClient) Heartbeat(epoch uint64) error {
	var res struct{}
	err := c.client.CallWithTimeout("repl.heartbeat."+c.desc.Service,
		wireHeartbeat{Epoch: epoch}, &res, c.timeout)
	return replErr(err)
}

// Close releases the stub's connection.
func (c *ReplicationClient) Close() { c.client.Close() }

var _ repl.Follower = (*ReplicationClient)(nil)
