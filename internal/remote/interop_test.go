// Cross-codec interop: the binary frame protocol must coexist with
// JSON-only peers in both directions, because a federation upgrades one
// process at a time. The negotiation contract (see internal/srpc's
// codec doc) makes this hold by construction; these tests pin it at the
// stub level, where the hot-shape encoders would otherwise be the first
// thing to break a mixed deployment.
package remote

import (
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/repl"
	"sensorcer/internal/space"
	"sensorcer/internal/srpc"
	"sensorcer/internal/wal"
)

// TestInteropBinaryStubsAgainstJSONServer downgrades the server to the
// legacy codec: every default (binary-capable) stub must negotiate down
// and run the whole conversation over JSON lines — registrar lookups,
// accessor reads, and replicated journal shipping included.
func TestInteropBinaryStubsAgainstJSONServer(t *testing.T) {
	server := srpc.NewServer()
	server.SetCodec(srpc.CodecJSON)
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// Registrar round trip.
	lus := registry.New("json-lus", clockwork.Real())
	defer lus.Close()
	ServeRegistrar(server, lus)
	rc, err := NewRegistrarClient(server.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	esp := newESP("Mixed-Sensor", 21.5, 22.5)
	defer esp.Close()
	desc := ServeAccessor(server, "Mixed-Sensor", esp)
	reg, err := rc.Register(registry.ServiceItem{
		Service:    desc,
		Types:      []string{"SensorDataAccessor"},
		Attributes: attr.Set{attr.New("SensorType", "kind", "temperature", "unit", "C")},
	}, time.Minute)
	if err != nil {
		t.Fatalf("register against JSON server: %v", err)
	}
	items := rc.Lookup(registry.Template{Types: []string{"SensorDataAccessor"}}, 10)
	if len(items) != 1 || items[0].ID != reg.ServiceID {
		t.Fatalf("lookup against JSON server = %+v", items)
	}

	// Accessor round trip (wireReadings fast path must fall back cleanly).
	ac, err := NewAccessorClient(desc, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if r, err := ac.GetValue(); err != nil || r.Value != 21.5 {
		t.Fatalf("GetValue against JSON server = %+v, %v", r, err)
	}
	if r, err := ac.GetValue(); err != nil || r.Value != 22.5 {
		t.Fatalf("second GetValue against JSON server = %+v, %v", r, err)
	}
	if readings := ac.GetReadings(0); len(readings) != 2 {
		t.Fatalf("GetReadings against JSON server = %d", len(readings))
	}

	// Replication round trip: attach resync + synchronous batch shipping
	// (the wireShipBatch fast path) negotiated down to JSON.
	policy := lease.Policy{Max: time.Hour}
	backup, err := repl.NewNode("b", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	follower, err := NewReplicationClient(ServeReplication(server, "s0", backup), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	primary, err := repl.NewNode("p", clockwork.Real(), policy, t.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	sp, err := primary.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.AttachBackup(2, follower, false); err != nil {
		t.Fatalf("attach against JSON server: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sp.Write(space.NewEntry("reading", "seq", int64(i)), nil, time.Hour); err != nil {
			t.Fatalf("replicated write %d against JSON server: %v", i, err)
		}
	}
	if err := follower.Heartbeat(2); err != nil {
		t.Fatalf("heartbeat against JSON server: %v", err)
	}
}

// TestInteropJSONClientAgainstBinaryServer is the other direction: a
// legacy client that has never heard of binary frames calls handlers
// registered with hot-shape decoders. The request arrives as shape-0
// JSON, the response must mirror it — the fast-path result types have to
// keep their JSON encodings alongside the binary ones.
func TestInteropJSONClientAgainstBinaryServer(t *testing.T) {
	server := srpc.NewServer() // binary-capable default
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	lus := registry.New("bin-lus", clockwork.Real())
	defer lus.Close()
	ServeRegistrar(server, lus)
	if _, err := lus.Register(registry.ServiceItem{
		Types:      []string{"SensorDataAccessor"},
		Attributes: attr.Set{attr.New("Location", "building", "B1")},
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	esp := newESP("Legacy-Read", 19.5)
	defer esp.Close()
	ServeAccessor(server, "Legacy-Read", esp)

	c, err := srpc.DialCodec(server.Addr(), srpc.CodecJSON, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Lookup: wireItems results travel back as plain JSON.
	var ws wireItems
	if err := c.Call("registrar.lookup", lookupParams{Types: []string{"SensorDataAccessor"}, Max: 10}, &ws); err != nil {
		t.Fatalf("JSON lookup against binary server: %v", err)
	}
	if len(ws) != 1 || len(ws[0].Types) != 1 {
		t.Fatalf("JSON lookup = %+v", ws)
	}
	// Accessor: wireReading results likewise.
	var w wireReading
	if err := c.Call("accessor.getValue.Legacy-Read", serviceParams{Service: "Legacy-Read"}, &w); err != nil {
		t.Fatalf("JSON getValue against binary server: %v", err)
	}
	if w.Value != 19.5 || w.Unit != "celsius" {
		t.Fatalf("JSON getValue = %+v", w)
	}
	var batch wireReadings
	if err := c.Call("accessor.getReadings.Legacy-Read", readingsParams{Service: "Legacy-Read", N: 1}, &batch); err != nil || len(batch) != 1 {
		t.Fatalf("JSON getReadings = %+v, %v", batch, err)
	}
}
