package remote

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/srpc"
)

// TestCoordinationOverSRPC competes for a coordination lease hosted in
// another process: acquisition, rival refusal, holder inspection,
// renewal, deposed-renewal failure and orderly abdication all cross the
// wire with their sentinels intact.
func TestCoordinationOverSRPC(t *testing.T) {
	lus := registry.New("lus", clockwork.Real(),
		registry.WithCoordLeasePolicy(lease.Policy{Max: time.Minute, Min: time.Millisecond}))
	defer lus.Close()

	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ServeCoordination(server, lus)

	ca, err := NewCoordinationClient(server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := NewCoordinationClient(server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	a, err := ca.AcquireCoordination("coordinator", "replica-a", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire over srpc: %v", err)
	}
	if a.Token == 0 || a.Holder != "replica-a" {
		t.Fatalf("grant = %+v", a)
	}
	// A rival's acquire bounces with the sentinel a standby branches on.
	if _, err := cb.AcquireCoordination("coordinator", "replica-b", 200*time.Millisecond); !errors.Is(err, lease.ErrHeld) {
		t.Fatalf("rival acquire = %v, want ErrHeld", err)
	}
	holder, tok, ok := cb.CoordinationHolder("coordinator")
	if !ok || holder != "replica-a" || tok != a.Token {
		t.Fatalf("holder over srpc = %q/%d/%v", holder, tok, ok)
	}
	// The grant's lease renews through the wire.
	if err := a.Lease.Renew(200 * time.Millisecond); err != nil {
		t.Fatalf("renew over srpc: %v", err)
	}
	// Orderly abdication frees the name for the next bid, with a
	// dominating token.
	if err := a.Lease.Cancel(); err != nil {
		t.Fatalf("cancel over srpc: %v", err)
	}
	b, err := cb.AcquireCoordination("coordinator", "replica-b", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire after abdication: %v", err)
	}
	if b.Token <= a.Token {
		t.Fatalf("successor token %d does not dominate %d", b.Token, a.Token)
	}
	// The deposed holder's renewal fails with the deposition sentinel.
	if err := a.Lease.Renew(200 * time.Millisecond); !errors.Is(err, lease.ErrCanceled) && !errors.Is(err, lease.ErrUnknownLease) {
		t.Fatalf("deposed renewal = %v, want ErrCanceled/ErrUnknownLease", err)
	}
}
