package remote

import (
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/repl"
	"sensorcer/internal/space"
	"sensorcer/internal/srpc"
	"sensorcer/internal/wal"
)

// benchmarkWriteAckSRPC acks writes against a loopback-srpc follower,
// synchronously or in async-ship mode depending on the node options.
func benchmarkWriteAckSRPC(b *testing.B, opts ...repl.NodeOption) {
	policy := lease.Policy{Max: 24 * time.Hour}
	primary, err := repl.NewNode("p", clockwork.Real(), policy, b.TempDir(),
		append([]repl.NodeOption{repl.WithWALOptions(wal.WithSyncEveryAppend(false))}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = primary.Close() })
	backup, err := repl.NewNode("b", clockwork.Real(), policy, b.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = backup.Close() })

	server := srpc.NewServer()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })
	follower, err := NewReplicationClient(ServeReplication(server, "s0", backup), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { follower.Close() })

	sp, err := primary.Promote(1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := primary.AttachBackup(2, follower, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			b.StopTimer()
			for {
				got, terr := sp.TakeAny(space.NewEntry("job"), 4096, nil, 0)
				if terr != nil || len(got) == 0 {
					break
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkWriteAckReplicatedSRPC is the wire variant of the repl
// package's write-ack benchmarks: every ack waits for a synchronous
// ShipBatch across a loopback srpc connection, so the delta against
// BenchmarkWriteAckReplicated is the wire cost per acknowledged write.
func BenchmarkWriteAckReplicatedSRPC(b *testing.B) {
	benchmarkWriteAckSRPC(b)
}

// BenchmarkWriteAckAsyncShipSRPC is where async-ship pays: the ~30µs
// wire ship leaves the ack path, so acks run at local-journal speed
// while the shipper streams batches behind, backlog bounded at 256
// records. Compare against BenchmarkWriteAckReplicatedSRPC (the sync
// ceiling) and the repl package's BenchmarkWriteAckSolo (the floor).
func BenchmarkWriteAckAsyncShipSRPC(b *testing.B) {
	benchmarkWriteAckSRPC(b, repl.WithAsyncShip(256))
}
