package remote

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/repl"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/srpc"
	"sensorcer/internal/wal"
)

// countingProxy is a transparent TCP forwarder in front of an srpc
// server: everything either peer writes crosses it, so its counter is
// the ground-truth bytes-on-wire number the codec benchmarks report —
// no cooperation from the transport needed.
type countingProxy struct {
	ln    net.Listener
	bytes atomic.Int64
}

func startCountingProxy(b *testing.B, backend string) *countingProxy {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	p := &countingProxy{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				buf := make([]byte, 32<<10)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						p.bytes.Add(int64(n))
						if _, werr := dst.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				dst.Close()
				src.Close()
			}
			go pipe(up, conn)
			go pipe(conn, up)
		}
	}()
	b.Cleanup(func() { ln.Close() })
	return p
}

func (p *countingProxy) addr() string { return p.ln.Addr().String() }

// codecBenchmarks runs fn once per wire codec: the json sub-benchmark is
// the pre-binary baseline (the server refuses to negotiate, so the whole
// connection runs the legacy protocol), binary is the negotiated fast
// path. Comparing the two sub-benchmarks in one run is the PR 9
// acceptance measurement.
func codecBenchmarks(b *testing.B, fn func(b *testing.B, codec srpc.Codec)) {
	b.Run("json", func(b *testing.B) { fn(b, srpc.CodecJSON) })
	b.Run("binary", func(b *testing.B) { fn(b, srpc.CodecBinary) })
}

// benchmarkWriteAckSRPC acks writes against a loopback-srpc follower,
// synchronously or in async-ship mode depending on the node options,
// reporting wire bytes per acknowledged write alongside ns/op.
func benchmarkWriteAckSRPC(b *testing.B, codec srpc.Codec, opts ...repl.NodeOption) {
	policy := lease.Policy{Max: 24 * time.Hour}
	primary, err := repl.NewNode("p", clockwork.Real(), policy, b.TempDir(),
		append([]repl.NodeOption{repl.WithWALOptions(wal.WithSyncEveryAppend(false))}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = primary.Close() })
	backup, err := repl.NewNode("b", clockwork.Real(), policy, b.TempDir(),
		repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = backup.Close() })

	server := srpc.NewServer()
	server.SetCodec(codec)
	if err := server.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })
	proxy := startCountingProxy(b, server.Addr())
	desc := ServeReplication(server, "s0", backup)
	desc.Locator = proxy.addr()
	follower, err := NewReplicationClient(desc, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { follower.Close() })

	sp, err := primary.Promote(1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := primary.AttachBackup(2, follower, false); err != nil {
		b.Fatal(err)
	}
	proxy.bytes.Store(0) // don't charge the attach resync to the ops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			b.StopTimer()
			for {
				got, terr := sp.TakeAny(space.NewEntry("job"), 4096, nil, 0)
				if terr != nil || len(got) == 0 {
					break
				}
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(proxy.bytes.Load())/float64(b.N), "wirebytes/op")
}

// BenchmarkWriteAckReplicatedSRPC is the wire variant of the repl
// package's write-ack benchmarks: every ack waits for a synchronous
// ShipBatch across a loopback srpc connection, so the delta between the
// json and binary sub-benchmarks is what the codec overhaul buys per
// acknowledged write.
func BenchmarkWriteAckReplicatedSRPC(b *testing.B) {
	codecBenchmarks(b, func(b *testing.B, codec srpc.Codec) {
		benchmarkWriteAckSRPC(b, codec)
	})
}

// BenchmarkWriteAckAsyncShipSRPC is where async-ship pays: the wire ship
// leaves the ack path, so acks run at local-journal speed while the
// shipper streams coalesced batches behind, backlog bounded by the lag
// parameter. The lag sweep shows the latency/durability dial; the codec
// split shows how much of the residual cost is encoding.
func BenchmarkWriteAckAsyncShipSRPC(b *testing.B) {
	for _, lag := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("lag-%d", lag), func(b *testing.B) {
			codecBenchmarks(b, func(b *testing.B, codec srpc.Codec) {
				benchmarkWriteAckSRPC(b, codec, repl.WithAsyncShip(lag))
			})
		})
	}
}

// BenchmarkRegistrarLookupSRPC measures the discovery hot path end to
// end: a remote template lookup returning 16 matches (types + attribute
// entries) across the wire, json vs binary. Items carry no proxy
// descriptors so the client's stub materialization cost stays out of the
// RPC measurement.
func BenchmarkRegistrarLookupSRPC(b *testing.B) {
	codecBenchmarks(b, func(b *testing.B, codec srpc.Codec) {
		lus := registry.New("bench-lus", clockwork.Real())
		b.Cleanup(func() { lus.Close() })
		for i := 0; i < 32; i++ {
			item := registry.ServiceItem{
				Types: []string{"SensorDataAccessor"},
				Attributes: attr.Set{
					attr.New("SensorType", "kind", "temperature", "unit", "C"),
					attr.New("Location", "building", "B1", "floor", int64(i%4)),
				},
			}
			if _, err := lus.Register(item, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
		server := srpc.NewServer()
		server.SetCodec(codec)
		if err := server.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { server.Close() })
		ServeRegistrar(server, lus)
		proxy := startCountingProxy(b, server.Addr())
		rc, err := NewRegistrarClient(proxy.addr(), 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rc.Close() })
		tmpl := registry.Template{Types: []string{"SensorDataAccessor"}}
		if got := rc.Lookup(tmpl, 16); len(got) != 16 {
			b.Fatalf("warmup lookup returned %d items", len(got))
		}
		proxy.bytes.Store(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := rc.Lookup(tmpl, 16); len(got) != 16 {
				b.Fatalf("lookup returned %d items", len(got))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(proxy.bytes.Load())/float64(b.N), "wirebytes/op")
	})
}

// BenchmarkSpacerBatchSRPC is the PR 5 pull-mode dispatch benchmark with
// the exertion space's journal shipping to a remote backup over srpc:
// every envelope write and take acks through the wire, so the codec
// shows up in end-to-end job latency, not just in microbenchmarks.
func BenchmarkSpacerBatchSRPC(b *testing.B) {
	const tasks = 8
	codecBenchmarks(b, func(b *testing.B, codec srpc.Codec) {
		policy := lease.Policy{Max: 24 * time.Hour}
		primary, err := repl.NewNode("p", clockwork.Real(), policy, b.TempDir(),
			repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = primary.Close() })
		backup, err := repl.NewNode("b", clockwork.Real(), policy, b.TempDir(),
			repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = backup.Close() })
		server := srpc.NewServer()
		server.SetCodec(codec)
		if err := server.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { server.Close() })
		follower, err := NewReplicationClient(ServeReplication(server, "s0", backup), 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { follower.Close() })
		sp, err := primary.Promote(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := primary.AttachBackup(2, follower, false); err != nil {
			b.Fatal(err)
		}

		w := sorcer.NewSpaceWorker(sp, benchAdder("Adder-1"), "Adder")
		spacer := sorcer.NewSpacer("Spacer-1", sp, sorcer.WithTaskTimeout(30*time.Second))
		b.Cleanup(func() { w.Stop() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var comps []sorcer.Exertion
			for j := 0; j < tasks; j++ {
				comps = append(comps, sorcer.NewTask(fmt.Sprintf("t%d", j),
					sorcer.Sig("Adder", "add"),
					sorcer.NewContextFrom("arg/a", float64(j), "arg/b", 100.0)))
			}
			job := sorcer.NewJob("bench-job", sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, comps...)
			if _, err := spacer.Service(job, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchAdder is a minimal Adder provider for dispatch benchmarks.
func benchAdder(name string) *sorcer.Provider {
	p := sorcer.NewProvider(name, "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		bv, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+bv)
		return nil
	})
	return p
}
