package rio

import (
	"errors"
	"fmt"
)

// ServiceElement is one service requirement inside an OperationalString:
// what to run (Type resolves a BeanFactory), how many (Planned), where
// (QoS), and with what configuration.
type ServiceElement struct {
	// Name is the instance base name, e.g. "New-Composite".
	Name string
	// Type selects the bean factory, e.g. "sensorcer/composite".
	Type string
	// Planned is the desired instance count (default 1).
	Planned int
	// QoS constrains placement.
	QoS QoS
	// Cost is the capacity each instance consumes on its node
	// (default 1.0).
	Cost float64
	// Config is passed to the bean factory.
	Config map[string]any
}

func (e ServiceElement) cost() float64 {
	if e.Cost <= 0 {
		return 1
	}
	return e.Cost
}

// planned returns the effective instance count. Deploy normalizes zero to
// one, so after deployment this is exact; a negative value (never stored)
// reads as zero for safety.
func (e ServiceElement) planned() int {
	if e.Planned < 0 {
		return 0
	}
	return e.Planned
}

// OpString is a deployment descriptor — Rio's OperationalString: a named
// set of service elements the monitor keeps running.
type OpString struct {
	Name     string
	Elements []ServiceElement
}

// Validate checks the descriptor is well-formed.
func (o OpString) Validate() error {
	if o.Name == "" {
		return errors.New("rio: opstring needs a name")
	}
	if len(o.Elements) == 0 {
		return fmt.Errorf("rio: opstring %q has no elements", o.Name)
	}
	seen := map[string]bool{}
	for i, e := range o.Elements {
		if e.Name == "" {
			return fmt.Errorf("rio: opstring %q element %d has no name", o.Name, i)
		}
		if e.Type == "" {
			return fmt.Errorf("rio: opstring %q element %q has no type", o.Name, e.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("rio: opstring %q has duplicate element %q", o.Name, e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}
