package rio

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/event"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

// testBean counts lifecycle calls.
type testBean struct {
	mu      sync.Mutex
	started int
	stopped int
	node    *Cybernode
	failAt  error // Start error to inject
}

func (b *testBean) Start(node *Cybernode) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failAt != nil {
		return b.failAt
	}
	b.started++
	b.node = node
	return nil
}

func (b *testBean) Stop() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopped++
	return nil
}

func (b *testBean) counts() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.started, b.stopped
}

// beanTracker is a factory that remembers created beans.
type beanTracker struct {
	mu    sync.Mutex
	beans []*testBean
}

func (bt *beanTracker) factory(ServiceElement) (Bean, error) {
	b := &testBean{}
	bt.mu.Lock()
	bt.beans = append(bt.beans, b)
	bt.mu.Unlock()
	return b, nil
}

func (bt *beanTracker) count() int {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return len(bt.beans)
}

func newRig(t *testing.T) (*clockwork.Fake, *FactoryRegistry, *beanTracker, *Monitor) {
	t.Helper()
	fc := clockwork.NewFake(epoch)
	reg := NewFactoryRegistry()
	bt := &beanTracker{}
	reg.Register("sensorcer/composite", bt.factory)
	m := NewMonitor(fc, nil)
	t.Cleanup(m.Close)
	return fc, reg, bt, m
}

func element(name string) ServiceElement {
	return ServiceElement{Name: name, Type: "sensorcer/composite"}
}

func TestQoSAdmits(t *testing.T) {
	cap := Capability{CPUs: 4, MemoryMB: 2048, Arch: "amd64", Labels: map[string]string{"zone": "lab"}}
	cases := []struct {
		q    QoS
		util float64
		want bool
	}{
		{QoS{}, 0, true},
		{QoS{MinCPUs: 4}, 0, true},
		{QoS{MinCPUs: 5}, 0, false},
		{QoS{MinMemory: 2048}, 0, true},
		{QoS{MinMemory: 4096}, 0, false},
		{QoS{Arch: "amd64"}, 0, true},
		{QoS{Arch: "arm"}, 0, false},
		{QoS{Labels: map[string]string{"zone": "lab"}}, 0, true},
		{QoS{Labels: map[string]string{"zone": "field"}}, 0, false},
		{QoS{MaxUtilization: 0.5}, 0.4, true},
		{QoS{MaxUtilization: 0.5}, 0.5, false},
	}
	for i, c := range cases {
		if got := c.q.Admits(cap, c.util); got != c.want {
			t.Errorf("case %d %v: Admits = %v, want %v", i, c.q, got, c.want)
		}
	}
}

func TestCybernodeInstantiateAndTerminate(t *testing.T) {
	_, reg, bt, _ := newRig(t)
	node := NewCybernode("Cybernode-1", Capability{CPUs: 2}, reg)
	d, err := node.Instantiate(element("Composite-Service"))
	if err != nil {
		t.Fatal(err)
	}
	if bt.count() != 1 {
		t.Fatalf("beans created = %d", bt.count())
	}
	if got := node.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if len(node.Services()) != 1 {
		t.Fatal("Services() missing instance")
	}
	if err := node.Terminate(d.ID); err != nil {
		t.Fatal(err)
	}
	if node.Utilization() != 0 {
		t.Fatal("utilization not released")
	}
	if _, stopped := bt.beans[0].counts(); stopped != 1 {
		t.Fatal("bean not stopped")
	}
	if err := node.Terminate(d.ID); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("double terminate err = %v", err)
	}
}

func TestCybernodeUnknownType(t *testing.T) {
	_, reg, _, _ := newRig(t)
	node := NewCybernode("n", Capability{}, reg)
	if _, err := node.Instantiate(ServiceElement{Name: "x", Type: "nope"}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestCybernodeKillStopsBeans(t *testing.T) {
	_, reg, bt, _ := newRig(t)
	node := NewCybernode("n", Capability{CPUs: 4}, reg)
	node.Instantiate(element("a"))
	node.Instantiate(element("b"))
	node.Kill()
	node.Kill() // idempotent
	if node.Alive() {
		t.Fatal("killed node reports alive")
	}
	for i, b := range bt.beans {
		if _, stopped := b.counts(); stopped != 1 {
			t.Fatalf("bean %d not stopped on kill", i)
		}
	}
	if _, err := node.Instantiate(element("c")); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("instantiate on dead node err = %v", err)
	}
}

func TestOnDeathAfterKillFiresImmediately(t *testing.T) {
	_, reg, _, _ := newRig(t)
	node := NewCybernode("n", Capability{}, reg)
	node.Kill()
	fired := false
	node.OnDeath(func(*Cybernode) { fired = true })
	if !fired {
		t.Fatal("OnDeath on dead node should fire immediately")
	}
}

func TestOpStringValidate(t *testing.T) {
	good := OpString{Name: "sensors", Elements: []ServiceElement{element("a")}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OpString{
		{},
		{Name: "x"},
		{Name: "x", Elements: []ServiceElement{{Type: "t"}}},
		{Name: "x", Elements: []ServiceElement{{Name: "a"}}},
		{Name: "x", Elements: []ServiceElement{element("a"), element("a")}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeployProvisionsPlannedInstances(t *testing.T) {
	_, reg, bt, m := newRig(t)
	node := NewCybernode("Cybernode-1", Capability{CPUs: 8}, reg)
	m.RegisterCybernode(node, time.Minute)
	elem := element("Composite-Service")
	elem.Planned = 3
	if err := m.Deploy(OpString{Name: "sensors", Elements: []ServiceElement{elem}}); err != nil {
		t.Fatal(err)
	}
	if bt.count() != 3 {
		t.Fatalf("provisioned %d instances, want 3", bt.count())
	}
	st, err := m.Status("sensors")
	if err != nil {
		t.Fatal(err)
	}
	if st[0].Planned != 3 || st[0].Actual != 3 {
		t.Fatalf("status = %+v", st[0])
	}
}

func TestDeployDuplicateRejected(t *testing.T) {
	_, _, _, m := newRig(t)
	ops := OpString{Name: "x", Elements: []ServiceElement{element("a")}}
	m.Deploy(ops)
	if err := m.Deploy(ops); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
}

func TestDeployPendingUntilNodeArrives(t *testing.T) {
	_, reg, bt, m := newRig(t)
	if err := m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("a")}}); err != nil {
		t.Fatal(err)
	}
	if bt.count() != 0 {
		t.Fatal("provisioned without any node")
	}
	st, _ := m.Status("s")
	if st[0].Actual != 0 {
		t.Fatalf("actual = %d", st[0].Actual)
	}
	// A node arriving triggers reconciliation.
	node := NewCybernode("late", Capability{CPUs: 2}, reg)
	m.RegisterCybernode(node, time.Minute)
	if bt.count() != 1 {
		t.Fatal("pending element not provisioned on node arrival")
	}
}

func TestQoSPlacement(t *testing.T) {
	_, reg, _, m := newRig(t)
	small := NewCybernode("small", Capability{CPUs: 1, MemoryMB: 512}, reg)
	big := NewCybernode("big", Capability{CPUs: 8, MemoryMB: 8192}, reg)
	m.RegisterCybernode(small, time.Minute)
	m.RegisterCybernode(big, time.Minute)
	elem := element("heavy")
	elem.QoS = QoS{MinCPUs: 4, MinMemory: 4096}
	if err := m.Deploy(OpString{Name: "s", Elements: []ServiceElement{elem}}); err != nil {
		t.Fatal(err)
	}
	if len(big.Services()) != 1 || len(small.Services()) != 0 {
		t.Fatalf("placement wrong: big=%d small=%d", len(big.Services()), len(small.Services()))
	}
}

func TestFailoverOnKill(t *testing.T) {
	_, reg, _, m := newRig(t)
	n1 := NewCybernode("n1", Capability{CPUs: 4}, reg)
	n2 := NewCybernode("n2", Capability{CPUs: 4}, reg)
	m.RegisterCybernode(n1, time.Minute)
	m.RegisterCybernode(n2, time.Minute)
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("svc")}})

	// Find which node got it and kill that node.
	victim, survivor := n1, n2
	if len(n2.Services()) == 1 {
		victim, survivor = n2, n1
	}
	victim.Kill()
	if len(survivor.Services()) != 1 {
		t.Fatal("instance not re-provisioned onto survivor")
	}
	st, _ := m.Status("s")
	if st[0].Actual != 1 {
		t.Fatalf("actual = %d after failover", st[0].Actual)
	}
}

func TestFailoverOnLeaseExpiry(t *testing.T) {
	fc, reg, _, m := newRig(t)
	n1 := NewCybernode("n1", Capability{CPUs: 4}, reg)
	n2 := NewCybernode("n2", Capability{CPUs: 4}, reg)
	lse1, _ := m.RegisterCybernode(n1, time.Minute)
	reg2lease, _ := m.RegisterCybernode(n2, time.Minute)
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("svc")}})

	victim, survivor := n1, n2
	victimLease, survivorLease := &lse1, &reg2lease
	if len(n2.Services()) == 1 {
		victim, survivor = n2, n1
		victimLease, survivorLease = &reg2lease, &lse1
	}
	_ = victim
	// Keep the survivor's lease alive, let the victim's lapse silently.
	fc.Advance(45 * time.Second)
	survivorLease.Renew(time.Minute)
	fc.Advance(30 * time.Second)
	survivorLease.Renew(time.Minute)
	m.Sweep()
	_ = victimLease
	if len(survivor.Services()) != 1 {
		t.Fatal("silent node death did not trigger failover")
	}
}

func TestFailoverEmitsEvents(t *testing.T) {
	_, reg, _, m := newRig(t)
	n1 := NewCybernode("n1", Capability{CPUs: 4}, reg)
	n2 := NewCybernode("n2", Capability{CPUs: 4}, reg)
	m.RegisterCybernode(n1, time.Minute)
	m.RegisterCybernode(n2, time.Minute)

	var mu sync.Mutex
	kinds := map[uint64]int{}
	m.Events().Register(event.AnyEvent, eventCollector(func(kind uint64) {
		mu.Lock()
		kinds[kind]++
		mu.Unlock()
	}), time.Hour)

	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("svc")}})
	victim := n1
	if len(n2.Services()) == 1 {
		victim = n2
	}
	victim.Kill()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := kinds[EventProvisioned] >= 2 && kinds[EventNodeLost] >= 1 && kinds[EventRelocated] >= 1
		mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("event kinds = %v", kinds)
}

func TestUndeployTerminatesInstances(t *testing.T) {
	_, reg, bt, m := newRig(t)
	node := NewCybernode("n", Capability{CPUs: 4}, reg)
	m.RegisterCybernode(node, time.Minute)
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("svc")}})
	if err := m.Undeploy("s"); err != nil {
		t.Fatal(err)
	}
	if _, stopped := bt.beans[0].counts(); stopped != 1 {
		t.Fatal("instance not terminated on undeploy")
	}
	if err := m.Undeploy("s"); !errors.Is(err, ErrUnknownOpString) {
		t.Fatalf("double undeploy err = %v", err)
	}
	if _, err := m.Status("s"); !errors.Is(err, ErrUnknownOpString) {
		t.Fatalf("status after undeploy err = %v", err)
	}
}

func TestRegisterDeadNodeRejected(t *testing.T) {
	_, reg, _, m := newRig(t)
	node := NewCybernode("n", Capability{}, reg)
	node.Kill()
	if _, err := m.RegisterCybernode(node, time.Minute); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	reg := NewFactoryRegistry()
	reg.Register("t", func(ServiceElement) (Bean, error) { return &testBean{}, nil })
	idle := NewCybernode("idle", Capability{CPUs: 4}, reg)
	busy := NewCybernode("busy", Capability{CPUs: 4}, reg)
	busy.Instantiate(ServiceElement{Name: "x", Type: "t"})
	got := LeastLoaded{}.Select([]*Cybernode{busy, idle}, ServiceElement{})
	if got != idle {
		t.Fatalf("LeastLoaded picked %s", got.Name())
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	reg := NewFactoryRegistry()
	a := NewCybernode("a", Capability{}, reg)
	b := NewCybernode("b", Capability{}, reg)
	rr := &RoundRobin{}
	seq := []*Cybernode{
		rr.Select([]*Cybernode{a, b}, ServiceElement{}),
		rr.Select([]*Cybernode{a, b}, ServiceElement{}),
		rr.Select([]*Cybernode{a, b}, ServiceElement{}),
	}
	if seq[0] != a || seq[1] != b || seq[2] != a {
		t.Fatalf("round robin order: %s %s %s", seq[0].Name(), seq[1].Name(), seq[2].Name())
	}
	if rr.Select(nil, ServiceElement{}) != nil {
		t.Fatal("empty candidates should yield nil")
	}
}

func TestBestFitPolicy(t *testing.T) {
	reg := NewFactoryRegistry()
	small := NewCybernode("small", Capability{CPUs: 2, MemoryMB: 1024}, reg)
	big := NewCybernode("big", Capability{CPUs: 16, MemoryMB: 32768}, reg)
	elem := ServiceElement{QoS: QoS{MinCPUs: 2, MinMemory: 1024}}
	if got := (BestFit{}).Select([]*Cybernode{big, small}, elem); got != small {
		t.Fatalf("BestFit picked %s, want small", got.Name())
	}
}

func TestLoadSpreadsAcrossNodes(t *testing.T) {
	_, reg, _, m := newRig(t)
	n1 := NewCybernode("n1", Capability{CPUs: 8}, reg)
	n2 := NewCybernode("n2", Capability{CPUs: 8}, reg)
	m.RegisterCybernode(n1, time.Minute)
	m.RegisterCybernode(n2, time.Minute)
	elem := element("svc")
	elem.Planned = 6
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{elem}})
	if len(n1.Services()) != 3 || len(n2.Services()) != 3 {
		t.Fatalf("least-loaded spread: n1=%d n2=%d", len(n1.Services()), len(n2.Services()))
	}
}

func TestCapabilityCloneIndependence(t *testing.T) {
	c := Capability{CPUs: 1, Labels: map[string]string{"a": "b"}}
	cl := c.Clone()
	cl.Labels["a"] = "x"
	if c.Labels["a"] != "b" {
		t.Fatal("Clone shares labels")
	}
}

// Property: for any mix of node capacities and planned counts that fits,
// every planned instance lands somewhere and node capacity is respected by
// the monitor's accounting (utilization <= 1 given enough room).
func TestPropertyPlannedAlwaysPlacedWhenCapacityExists(t *testing.T) {
	f := func(nNodes, planned uint8) bool {
		nodes := int(nNodes%4) + 1
		plan := int(planned%8) + 1
		fc := clockwork.NewFake(epoch)
		reg := NewFactoryRegistry()
		reg.Register("t", func(ServiceElement) (Bean, error) { return &testBean{}, nil })
		m := NewMonitor(fc, nil)
		defer m.Close()
		for i := 0; i < nodes; i++ {
			m.RegisterCybernode(NewCybernode(fmt.Sprintf("n%d", i), Capability{CPUs: 8}, reg), time.Minute)
		}
		elem := ServiceElement{Name: "e", Type: "t", Planned: plan}
		if err := m.Deploy(OpString{Name: "s", Elements: []ServiceElement{elem}}); err != nil {
			return false
		}
		st, err := m.Status("s")
		if err != nil {
			return false
		}
		return st[0].Actual == plan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// eventCollector adapts a func(kind) to event.Listener.
type eventCollector func(kind uint64)

func (c eventCollector) Notify(ev event.RemoteEvent) error { c(ev.EventID); return nil }

func TestSetPlannedScalesUpAndDown(t *testing.T) {
	_, reg, bt, m := newRig(t)
	node := NewCybernode("n", Capability{CPUs: 16}, reg)
	m.RegisterCybernode(node, time.Minute)
	elem := element("svc")
	elem.Planned = 2
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{elem}})
	if bt.count() != 2 {
		t.Fatalf("initial instances = %d", bt.count())
	}
	// Scale up.
	if err := m.SetPlanned("s", "svc", 5); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("s")
	if st[0].Planned != 5 || st[0].Actual != 5 {
		t.Fatalf("after scale-up: %+v", st[0])
	}
	// Scale down.
	if err := m.SetPlanned("s", "svc", 1); err != nil {
		t.Fatal(err)
	}
	st, _ = m.Status("s")
	if st[0].Planned != 1 || st[0].Actual != 1 {
		t.Fatalf("after scale-down: %+v", st[0])
	}
	stopped := 0
	for _, b := range bt.beans {
		if _, s := b.counts(); s > 0 {
			stopped++
		}
	}
	if stopped != 4 {
		t.Fatalf("stopped %d beans, want 4", stopped)
	}
	// Node capacity released.
	if got := node.Utilization(); got != 1.0/16 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestSetPlannedValidation(t *testing.T) {
	_, reg, _, m := newRig(t)
	m.RegisterCybernode(NewCybernode("n", Capability{CPUs: 4}, reg), time.Minute)
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{element("svc")}})
	if err := m.SetPlanned("ghost", "svc", 2); !errors.Is(err, ErrUnknownOpString) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetPlanned("s", "ghost", 2); err == nil {
		t.Fatal("unknown element accepted")
	}
	if err := m.SetPlanned("s", "svc", -1); err == nil {
		t.Fatal("negative planned accepted")
	}
	// Scale to zero: element fully retired but redeployable.
	if err := m.SetPlanned("s", "svc", 0); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("s")
	if st[0].Actual != 0 {
		t.Fatalf("actual = %d after scale-to-zero", st[0].Actual)
	}
}

func TestScaledElementFailoverKeepsCount(t *testing.T) {
	_, reg, _, m := newRig(t)
	n1 := NewCybernode("n1", Capability{CPUs: 8}, reg)
	n2 := NewCybernode("n2", Capability{CPUs: 8}, reg)
	m.RegisterCybernode(n1, time.Minute)
	m.RegisterCybernode(n2, time.Minute)
	elem := element("svc")
	elem.Planned = 4
	m.Deploy(OpString{Name: "s", Elements: []ServiceElement{elem}})
	n1.Kill()
	st, _ := m.Status("s")
	if st[0].Actual != 4 {
		t.Fatalf("actual = %d after node loss, want 4", st[0].Actual)
	}
	if len(n2.Services()) != 4 {
		t.Fatalf("survivor hosts %d", len(n2.Services()))
	}
}
