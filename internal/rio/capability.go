// Package rio reimplements the Rio provisioning framework the paper layers
// SenSORCER on (§IV-C): compute resources (cybernodes) advertise
// capabilities and accept dynamically instantiated service beans; a
// provision monitor holds deployment descriptors (OperationalStrings) and
// keeps the planned number of service instances running, matching QoS
// requirements to capable cybernodes, and re-provisioning instances whose
// cybernode fails — the fault-tolerance behaviour the paper demonstrates by
// provisioning "New-Composite" onto an available cybernode (§VI step 3).
package rio

import "fmt"

// Capability describes a cybernode's platform resources.
type Capability struct {
	// CPUs is the number of processors; it doubles as the node's
	// service capacity (utilization denominator).
	CPUs int
	// MemoryMB is the available memory.
	MemoryMB int
	// Arch names the platform ("amd64", "arm", ...).
	Arch string
	// Labels carry operator-assigned placement hints, e.g.
	// {"zone": "field-7", "tier": "edge"}.
	Labels map[string]string
}

// Clone deep-copies the capability.
func (c Capability) Clone() Capability {
	out := c
	if c.Labels != nil {
		out.Labels = make(map[string]string, len(c.Labels))
		for k, v := range c.Labels {
			out.Labels[k] = v
		}
	}
	return out
}

// QoS states a service element's placement requirements — the
// "operational parameters" of a Rio OperationalString.
type QoS struct {
	// MinCPUs and MinMemoryMB are capability floors (0 = don't care).
	MinCPUs   int
	MinMemory int
	// Arch restricts the platform ("" = any).
	Arch string
	// Labels must all be present with equal values on the node.
	Labels map[string]string
	// MaxUtilization rejects nodes at or above this load fraction;
	// 0 means "no constraint".
	MaxUtilization float64
}

// Admits reports whether a node with the given capability and current
// utilization satisfies the QoS.
func (q QoS) Admits(c Capability, utilization float64) bool {
	if q.MinCPUs > 0 && c.CPUs < q.MinCPUs {
		return false
	}
	if q.MinMemory > 0 && c.MemoryMB < q.MinMemory {
		return false
	}
	if q.Arch != "" && q.Arch != c.Arch {
		return false
	}
	for k, v := range q.Labels {
		if c.Labels[k] != v {
			return false
		}
	}
	if q.MaxUtilization > 0 && utilization >= q.MaxUtilization {
		return false
	}
	return true
}

// String renders the QoS compactly for status output.
func (q QoS) String() string {
	return fmt.Sprintf("QoS{cpus>=%d mem>=%d arch=%q labels=%v maxUtil=%.2f}",
		q.MinCPUs, q.MinMemory, q.Arch, q.Labels, q.MaxUtilization)
}
