package rio

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/event"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
)

// Event kinds fired by the Monitor's event generator.
const (
	// EventProvisioned: an instance was started on a node.
	EventProvisioned uint64 = iota + 1
	// EventRelocated: an instance was re-provisioned after its node died.
	EventRelocated
	// EventPending: an element has fewer instances than planned and no
	// admissible node is available.
	EventPending
	// EventNodeLost: a cybernode left (lease expiry or kill).
	EventNodeLost
)

// ProvisionNotice is the payload of monitor events.
type ProvisionNotice struct {
	OpString string
	Element  string
	Node     string
	Detail   string
}

// ErrUnknownOpString is returned for operations on undeployed opstrings.
var ErrUnknownOpString = errors.New("rio: unknown opstring")

// Monitor is the provision monitor ("Monitor" in the paper's Fig. 2): it
// tracks registered cybernodes (leased, so silent node death is detected),
// holds deployed OperationalStrings, and reconciles planned-versus-actual
// instance counts, re-provisioning instances from failed nodes onto
// survivors.
type Monitor struct {
	clock  clockwork.Clock
	policy SelectionPolicy
	leases *lease.Table
	events *event.Generator

	mu       sync.Mutex
	nodes    map[ids.ServiceID]*Cybernode
	byLease  map[uint64]ids.ServiceID
	deployed map[string]*deployment
}

type deployment struct {
	ops       OpString
	instances []*instance
}

type instance struct {
	elemName string
	node     ids.ServiceID
	deployed *Deployed
}

// NewMonitor creates a provision monitor with the selection policy
// (LeastLoaded when nil).
func NewMonitor(clock clockwork.Clock, policy SelectionPolicy) *Monitor {
	if policy == nil {
		policy = LeastLoaded{}
	}
	m := &Monitor{
		clock:    clock,
		policy:   policy,
		events:   event.NewGenerator(ids.NewServiceID(), clock, lease.Policy{Max: lease.DefaultMax}),
		nodes:    make(map[ids.ServiceID]*Cybernode),
		byLease:  make(map[uint64]ids.ServiceID),
		deployed: make(map[string]*deployment),
	}
	m.leases = lease.NewTable(clock, lease.Policy{Max: lease.DefaultMax})
	m.leases.OnExpire(m.onNodeLeaseExpired)
	return m
}

// Events exposes the monitor's event generator for observers (the sensor
// browser subscribes to show provisioning activity).
func (m *Monitor) Events() *event.Generator { return m.events }

// RegisterCybernode adds a compute node under a lease. The node's owner
// keeps the lease renewed (heartbeat); Kill() is also observed directly.
// Registration triggers reconciliation, so pending elements provision as
// soon as a capable node appears.
func (m *Monitor) RegisterCybernode(c *Cybernode, leaseDur time.Duration) (lease.Lease, error) {
	if !c.Alive() {
		return lease.Lease{}, ErrNodeDead
	}
	lse := m.leases.Grant(leaseDur)
	m.mu.Lock()
	m.nodes[c.ID()] = c
	m.byLease[lse.ID] = c.ID()
	m.mu.Unlock()
	c.OnDeath(func(dead *Cybernode) {
		_ = lse.Cancel()
		m.handleNodeLoss(dead.ID(), "killed")
	})
	m.Reconcile()
	return lse, nil
}

// Nodes snapshots the live cybernodes, sorted by name.
func (m *Monitor) Nodes() []*Cybernode {
	m.leases.Sweep()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Cybernode, 0, len(m.nodes))
	for _, c := range m.nodes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Deploy installs an OperationalString and provisions its elements.
func (m *Monitor) Deploy(ops OpString) error {
	if err := ops.Validate(); err != nil {
		return err
	}
	// Normalize: an unset planned count means one instance. After this,
	// Planned is exact (SetPlanned may later drive it to zero).
	ops.Elements = append([]ServiceElement{}, ops.Elements...)
	for i := range ops.Elements {
		if ops.Elements[i].Planned <= 0 {
			ops.Elements[i].Planned = 1
		}
	}
	m.mu.Lock()
	if _, exists := m.deployed[ops.Name]; exists {
		m.mu.Unlock()
		return fmt.Errorf("rio: opstring %q already deployed", ops.Name)
	}
	m.deployed[ops.Name] = &deployment{ops: ops}
	m.mu.Unlock()
	m.Reconcile()
	return nil
}

// Undeploy stops every instance of the opstring and forgets it.
func (m *Monitor) Undeploy(name string) error {
	m.mu.Lock()
	dep, ok := m.deployed[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownOpString, name)
	}
	delete(m.deployed, name)
	instances := dep.instances
	m.mu.Unlock()
	for _, inst := range instances {
		if inst.deployed != nil {
			_ = inst.deployed.Node.Terminate(inst.deployed.ID)
		}
	}
	return nil
}

// SetPlanned rescales one element of a deployed opstring to n instances.
// Scaling up provisions immediately; scaling down terminates surplus
// instances (most recently provisioned first).
func (m *Monitor) SetPlanned(opName, elemName string, n int) error {
	if n < 0 {
		return fmt.Errorf("rio: planned count %d < 0", n)
	}
	m.mu.Lock()
	dep, ok := m.deployed[opName]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownOpString, opName)
	}
	found := false
	for i := range dep.ops.Elements {
		if dep.ops.Elements[i].Name == elemName {
			dep.ops.Elements[i].Planned = n
			found = true
			break
		}
	}
	if !found {
		m.mu.Unlock()
		return fmt.Errorf("rio: opstring %q has no element %q", opName, elemName)
	}
	// Collect surplus instances for termination (newest first).
	var surplus []*instance
	count := 0
	for _, inst := range dep.instances {
		if inst.elemName == elemName {
			count++
		}
	}
	if count > n {
		drop := count - n
		kept := dep.instances[:0]
		for i := len(dep.instances) - 1; i >= 0; i-- {
			inst := dep.instances[i]
			if inst.elemName == elemName && drop > 0 {
				surplus = append(surplus, inst)
				drop--
				continue
			}
			kept = append(kept, inst)
		}
		// kept is reversed; restore order.
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		dep.instances = kept
	}
	m.mu.Unlock()

	for _, inst := range surplus {
		if inst.deployed != nil {
			_ = inst.deployed.Node.Terminate(inst.deployed.ID)
		}
	}
	m.Reconcile()
	return nil
}

// ElementStatus reports planned vs actual for one element.
type ElementStatus struct {
	Element string
	Planned int
	Actual  int
	Nodes   []string
}

// Status reports per-element deployment state for an opstring.
func (m *Monitor) Status(name string) ([]ElementStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dep, ok := m.deployed[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOpString, name)
	}
	var out []ElementStatus
	for _, elem := range dep.ops.Elements {
		st := ElementStatus{Element: elem.Name, Planned: elem.planned()}
		for _, inst := range dep.instances {
			if inst.elemName == elem.Name {
				st.Actual++
				if node, ok := m.nodes[inst.node]; ok {
					st.Nodes = append(st.Nodes, node.Name())
				}
			}
		}
		sort.Strings(st.Nodes)
		out = append(out, st)
	}
	return out, nil
}

// Reconcile provisions missing instances for every deployed opstring. It
// runs automatically on Deploy, RegisterCybernode and node loss; exposed
// for tests and periodic invocation.
func (m *Monitor) Reconcile() {
	m.leases.Sweep()
	type job struct {
		opName  string
		elem    ServiceElement
		missing int
	}
	m.mu.Lock()
	var jobs []job
	for name, dep := range m.deployed {
		for _, elem := range dep.ops.Elements {
			actual := 0
			for _, inst := range dep.instances {
				if inst.elemName == elem.Name {
					actual++
				}
			}
			if missing := elem.planned() - actual; missing > 0 {
				jobs = append(jobs, job{opName: name, elem: elem, missing: missing})
			}
		}
	}
	m.mu.Unlock()

	for _, j := range jobs {
		for i := 0; i < j.missing; i++ {
			if !m.provisionOne(j.opName, j.elem) {
				break // no capacity now; retry on next reconcile
			}
		}
	}
}

// provisionOne places a single instance, reporting success.
func (m *Monitor) provisionOne(opName string, elem ServiceElement) bool {
	for {
		node := m.selectNode(elem)
		if node == nil {
			m.events.Fire(EventPending, ProvisionNotice{
				OpString: opName, Element: elem.Name,
				Detail: "no admissible cybernode",
			})
			return false
		}
		d, err := node.Instantiate(elem)
		if err != nil {
			// Node raced into death or factory failure; try another.
			if errors.Is(err, ErrNodeDead) {
				continue
			}
			m.events.Fire(EventPending, ProvisionNotice{
				OpString: opName, Element: elem.Name, Node: node.Name(),
				Detail: err.Error(),
			})
			return false
		}
		m.mu.Lock()
		dep, ok := m.deployed[opName]
		if !ok {
			m.mu.Unlock()
			_ = node.Terminate(d.ID) // undeployed concurrently
			return false
		}
		dep.instances = append(dep.instances, &instance{
			elemName: elem.Name, node: node.ID(), deployed: d,
		})
		m.mu.Unlock()
		m.events.Fire(EventProvisioned, ProvisionNotice{
			OpString: opName, Element: elem.Name, Node: node.Name(),
		})
		return true
	}
}

// selectNode filters QoS-admissible live nodes and applies the policy.
func (m *Monitor) selectNode(elem ServiceElement) *Cybernode {
	m.mu.Lock()
	candidates := make([]*Cybernode, 0, len(m.nodes))
	for _, c := range m.nodes {
		if c.Alive() && elem.QoS.Admits(c.Capability(), c.Utilization()) {
			candidates = append(candidates, c)
		}
	}
	m.mu.Unlock()
	if len(candidates) == 0 {
		return nil
	}
	// Stable candidate order so policies behave deterministically.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name() < candidates[j].Name() })
	return m.policy.Select(candidates, elem)
}

func (m *Monitor) onNodeLeaseExpired(leaseID uint64) {
	m.mu.Lock()
	nodeID, ok := m.byLease[leaseID]
	if ok {
		delete(m.byLease, leaseID)
	}
	m.mu.Unlock()
	if ok {
		m.handleNodeLoss(nodeID, "lease expired")
	}
}

// handleNodeLoss drops the node and its instances, then re-provisions.
func (m *Monitor) handleNodeLoss(nodeID ids.ServiceID, reason string) {
	m.mu.Lock()
	node, known := m.nodes[nodeID]
	if !known {
		m.mu.Unlock()
		return
	}
	delete(m.nodes, nodeID)
	relocating := 0
	for _, dep := range m.deployed {
		kept := dep.instances[:0]
		for _, inst := range dep.instances {
			if inst.node == nodeID {
				relocating++
				continue
			}
			kept = append(kept, inst)
		}
		dep.instances = kept
	}
	m.mu.Unlock()

	m.events.Fire(EventNodeLost, ProvisionNotice{Node: node.Name(), Detail: reason})
	if relocating > 0 {
		m.Reconcile()
		m.events.Fire(EventRelocated, ProvisionNotice{
			Node:   node.Name(),
			Detail: fmt.Sprintf("%d instance(s) re-provisioned", relocating),
		})
	}
}

// Sweep expires node leases (periodic failure detection).
func (m *Monitor) Sweep() { m.leases.Sweep() }

// Close shuts down the event generator.
func (m *Monitor) Close() { m.events.Close() }
