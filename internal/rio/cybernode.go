package rio

import (
	"errors"
	"fmt"
	"sync"

	"sensorcer/internal/ids"
)

// Bean is a dynamically instantiated service component — Rio's "service
// bean". Start is called on the hosting cybernode; Stop tears the service
// down (deregistration, goroutine shutdown).
type Bean interface {
	Start(node *Cybernode) error
	Stop() error
}

// BeanFactory creates a bean instance from a service element's
// configuration. Factories are registered per service type name.
type BeanFactory func(elem ServiceElement) (Bean, error)

// FactoryRegistry maps service type names to factories. It is shared by
// all cybernodes of a deployment so any capable node can instantiate any
// element.
type FactoryRegistry struct {
	mu        sync.RWMutex
	factories map[string]BeanFactory
}

// NewFactoryRegistry creates an empty registry.
func NewFactoryRegistry() *FactoryRegistry {
	return &FactoryRegistry{factories: make(map[string]BeanFactory)}
}

// Register installs a factory for the service type name, replacing any
// previous one.
func (r *FactoryRegistry) Register(serviceType string, f BeanFactory) {
	r.mu.Lock()
	r.factories[serviceType] = f
	r.mu.Unlock()
}

// Lookup returns the factory for a type name.
func (r *FactoryRegistry) Lookup(serviceType string) (BeanFactory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[serviceType]
	return f, ok
}

// Errors returned by cybernode operations.
var (
	ErrNodeDead       = errors.New("rio: cybernode is dead")
	ErrUnknownType    = errors.New("rio: no factory for service type")
	ErrUnknownService = errors.New("rio: unknown service instance")
)

// Deployed is one service instance running on a cybernode.
type Deployed struct {
	ID      ids.ServiceID
	Element ServiceElement
	Node    *Cybernode
	Bean    Bean
}

// Cybernode is a compute resource that can host dynamically provisioned
// service beans — the "cybernode" of the paper's Fig. 2 (two appear in the
// service list). Each deployed element consumes Cost capacity units out of
// the node's CPU count.
type Cybernode struct {
	id        ids.ServiceID
	name      string
	cap       Capability
	factories *FactoryRegistry

	mu       sync.Mutex
	deployed map[ids.ServiceID]*Deployed
	load     float64
	dead     bool
	// onDeath callbacks let the monitor react to Kill() promptly; lease
	// expiry covers silent crashes.
	onDeath []func(*Cybernode)
}

// NewCybernode creates a compute node with the capability, drawing bean
// factories from the shared registry.
func NewCybernode(name string, cap Capability, factories *FactoryRegistry) *Cybernode {
	if cap.CPUs <= 0 {
		cap.CPUs = 1
	}
	return &Cybernode{
		id:        ids.NewServiceID(),
		name:      name,
		cap:       cap.Clone(),
		factories: factories,
		deployed:  make(map[ids.ServiceID]*Deployed),
	}
}

// ID returns the node identity.
func (c *Cybernode) ID() ids.ServiceID { return c.id }

// Name returns the administrative name ("Cybernode" in Fig. 2).
func (c *Cybernode) Name() string { return c.name }

// Capability returns the node's platform description.
func (c *Cybernode) Capability() Capability { return c.cap.Clone() }

// Utilization reports consumed capacity as a fraction of CPU count.
func (c *Cybernode) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load / float64(c.cap.CPUs)
}

// Alive reports whether the node is serving.
func (c *Cybernode) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.dead
}

// Services snapshots the deployed instances.
func (c *Cybernode) Services() []*Deployed {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Deployed, 0, len(c.deployed))
	for _, d := range c.deployed {
		out = append(out, d)
	}
	return out
}

// Instantiate creates and starts a bean for the element on this node.
func (c *Cybernode) Instantiate(elem ServiceElement) (*Deployed, error) {
	factory, ok := c.factories.Lookup(elem.Type)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, elem.Type)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, ErrNodeDead
	}
	c.mu.Unlock()

	bean, err := factory(elem)
	if err != nil {
		return nil, fmt.Errorf("rio: factory %q: %w", elem.Type, err)
	}
	if err := bean.Start(c); err != nil {
		return nil, fmt.Errorf("rio: starting %q: %w", elem.Name, err)
	}
	d := &Deployed{ID: ids.NewServiceID(), Element: elem, Node: c, Bean: bean}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		_ = bean.Stop()
		return nil, ErrNodeDead
	}
	c.deployed[d.ID] = d
	c.load += elem.cost()
	c.mu.Unlock()
	return d, nil
}

// Terminate stops one deployed instance (planned undeployment).
func (c *Cybernode) Terminate(id ids.ServiceID) error {
	c.mu.Lock()
	d, ok := c.deployed[id]
	if ok {
		delete(c.deployed, id)
		c.load -= d.Element.cost()
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownService, id.Short())
	}
	return d.Bean.Stop()
}

// OnDeath registers a callback invoked once if the node is killed.
func (c *Cybernode) OnDeath(fn func(*Cybernode)) {
	c.mu.Lock()
	dead := c.dead
	if !dead {
		c.onDeath = append(c.onDeath, fn)
	}
	c.mu.Unlock()
	if dead {
		fn(c)
	}
}

// Kill simulates a node crash: every hosted bean dies with it and death
// callbacks fire. Lease-based failure detection covers the case where no
// callback is attached (silent network partition).
func (c *Cybernode) Kill() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	beans := make([]Bean, 0, len(c.deployed))
	for _, d := range c.deployed {
		beans = append(beans, d.Bean)
	}
	c.deployed = map[ids.ServiceID]*Deployed{}
	c.load = 0
	cbs := c.onDeath
	c.onDeath = nil
	c.mu.Unlock()

	for _, b := range beans {
		_ = b.Stop()
	}
	for _, fn := range cbs {
		fn(c)
	}
}
