package rio

import "sync"

// SelectionPolicy picks a cybernode for a service element from the
// QoS-admissible candidates. Rio calls this "pluggable load distribution"
// (§IV-C of the paper); three policies ship and DESIGN.md benchmarks them
// as an ablation.
type SelectionPolicy interface {
	// Select returns one of the candidates (never an element outside the
	// slice) or nil to decline. Candidates are all alive and QoS-valid.
	Select(candidates []*Cybernode, elem ServiceElement) *Cybernode
}

// LeastLoaded picks the candidate with the lowest utilization — the
// paper's "allocating the sensor service to the best compute resource".
type LeastLoaded struct{}

// Select implements SelectionPolicy.
func (LeastLoaded) Select(candidates []*Cybernode, _ ServiceElement) *Cybernode {
	var best *Cybernode
	bestU := 0.0
	for _, c := range candidates {
		u := c.Utilization()
		if best == nil || u < bestU {
			best, bestU = c, u
		}
	}
	return best
}

// RoundRobin cycles through candidates in arrival order.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Select implements SelectionPolicy.
func (r *RoundRobin) Select(candidates []*Cybernode, _ ServiceElement) *Cybernode {
	if len(candidates) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := candidates[r.next%len(candidates)]
	r.next++
	return c
}

// BestFit scores candidates by how tightly their capability matches the
// element's QoS floors, preferring the smallest node that satisfies the
// requirement — leaving big nodes free for demanding elements.
type BestFit struct{}

// Select implements SelectionPolicy.
func (BestFit) Select(candidates []*Cybernode, elem ServiceElement) *Cybernode {
	var best *Cybernode
	bestScore := 0.0
	for _, c := range candidates {
		cap := c.Capability()
		// Slack above the requirement; smaller slack = tighter fit.
		cpuSlack := float64(cap.CPUs - elem.QoS.MinCPUs)
		memSlack := float64(cap.MemoryMB-elem.QoS.MinMemory) / 1024.0
		score := cpuSlack + memSlack + c.Utilization()
		if best == nil || score < bestScore {
			best, bestScore = c, score
		}
	}
	return best
}
