// Package expr implements the runtime compute-expression language that
// stands in for Groovy in the paper (§V "Sensor Computation", §VI steps 2
// and 5). Composite sensor providers attach expressions such as
// "(a + b + c)/3" whose variables are bound at runtime to the values of
// component sensor services; the evaluator computes the composite value.
//
// The language is a dynamically typed expression grammar: 64-bit floats,
// booleans, strings and lists; arithmetic, comparison and boolean
// operators; the conditional operator ?:; list literals and indexing; and
// a library of mathematical builtins (avg, min, max, clamp, ...). Programs
// compile once (Compile) and evaluate many times against different
// variable environments, which is what a CSP does on every GetValue.
package expr

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokPercent  // %
	tokCaret    // ^
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokComma    // ,
	tokLT       // <
	tokLE       // <=
	tokGT       // >
	tokGE       // >=
	tokEQ       // ==
	tokNE       // !=
	tokNot      // !
	tokAnd      // &&
	tokOr       // ||
	tokQuestion // ?
	tokColon    // :
	tokTrue     // true
	tokFalse    // false
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of expression", tokNumber: "number", tokString: "string",
	tokIdent: "identifier", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPercent: "'%'", tokCaret: "'^'", tokLParen: "'('",
	tokRParen: "')'", tokLBracket: "'['", tokRBracket: "']'", tokComma: "','",
	tokLT: "'<'", tokLE: "'<='", tokGT: "'>'", tokGE: "'>='", tokEQ: "'=='",
	tokNE: "'!='", tokNot: "'!'", tokAnd: "'&&'", tokOr: "'||'",
	tokQuestion: "'?'", tokColon: "':'", tokTrue: "'true'", tokFalse: "'false'",
}

func (k tokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError reports a lexical or parse failure with its position.
type SyntaxError struct {
	Pos     int
	Message string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d: %s", e.Pos, e.Message)
}

// EvalError reports a runtime evaluation failure.
type EvalError struct {
	Message string
}

// Error implements error.
func (e *EvalError) Error() string { return "expr: " + e.Message }

func evalErrf(format string, args ...any) *EvalError {
	return &EvalError{Message: fmt.Sprintf(format, args...)}
}
