package expr

import "fmt"

// parser is a Pratt (precedence-climbing) parser over the lexer's tokens.
type parser struct {
	lex lexer
	tok token // lookahead
}

// Compile parses an expression into a reusable Program.
func Compile(source string) (*Program, error) {
	p := &parser{lex: lexer{src: source}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, &SyntaxError{Pos: p.tok.pos, Message: fmt.Sprintf("unexpected %s after expression", p.tok.kind)}
	}
	return newProgram(source, root), nil
}

// MustCompile is Compile that panics on error, for static expressions.
func MustCompile(source string) *Program {
	p, err := Compile(source)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind) error {
	if p.tok.kind != kind {
		return &SyntaxError{Pos: p.tok.pos, Message: fmt.Sprintf("expected %s, found %s", kind, p.tok.kind)}
	}
	return p.advance()
}

// parseExpr parses the lowest-precedence construct: the conditional.
func (p *parser) parseExpr() (node, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokQuestion {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokColon); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return condNode{cond: cond, then: then, els: els}, nil
}

// Binding powers; higher binds tighter. The caret (power) is
// right-associative, handled specially below.
var precedence = map[tokenKind]int{
	tokOr:      1,
	tokAnd:     2,
	tokEQ:      3,
	tokNE:      3,
	tokLT:      4,
	tokLE:      4,
	tokGT:      4,
	tokGE:      4,
	tokPlus:    5,
	tokMinus:   5,
	tokStar:    6,
	tokSlash:   6,
	tokPercent: 6,
	tokCaret:   7,
}

func (p *parser) parseBinary(minPrec int) (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := precedence[p.tok.kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Right-associative power: recurse at same precedence.
		nextMin := prec + 1
		if op == tokCaret {
			nextMin = prec
		}
		right, err := p.parseBinary(nextMin)
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: op, l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	switch p.tok.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: tokMinus, x: x}, nil
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: tokNot, x: x}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by any number of index suffixes.
func (p *parser) parsePostfix() (node, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		x = indexNode{x: x, idx: idx}
	}
	return x, nil
}

func (p *parser) parsePrimary() (node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := numberNode{val: p.tok.num}
		return n, p.advance()
	case tokString:
		n := stringNode{val: p.tok.text}
		return n, p.advance()
	case tokTrue:
		return boolNode{val: true}, p.advance()
	case tokFalse:
		return boolNode{val: false}, p.advance()
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return identNode{name: name}, nil
		}
		// Function call.
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []node
		if p.tok.kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return callNode{name: name, args: args}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokLBracket:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []node
		if p.tok.kind != tokRBracket {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return listNode{elems: elems}, nil
	default:
		return nil, &SyntaxError{Pos: p.tok.pos, Message: fmt.Sprintf("unexpected %s", p.tok.kind)}
	}
}
