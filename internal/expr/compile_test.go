package expr

import (
	"math"
	"strings"
	"testing"
)

// refNumber runs the tree-walking oracle and coerces like EvalNumber.
func refNumber(t *testing.T, p *Program, env Env) (float64, error) {
	t.Helper()
	v, err := p.evalReference(env)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, evalErrf("expression yielded %T, want number", v)
	}
	return f, nil
}

func TestBindEvalFloats(t *testing.T) {
	names := []string{"a", "b", "c"}
	slots := []float64{10, 20, 60}
	hist := [][]float64{{10, 20, 60}, nil, nil}
	cases := []string{
		"(a + b + c) / 3",
		"a - avg(a_hist)",
		"a > b ? a : b",
		"a >= 10 && b < 100 ? c : 0",
		"max(values) - min(values)",
		"avg(values)",
		"sum(a, b, c) / len(values)",
		"clamp(a, 0, 15)",
		"if(a > b, a, b)",
		"pow(a, 2) + sqrt(b)",
		"c2f(a)",
		"stddev(values)",
		"a_hist[0] + values[2]",
		"-a % 7",
		"a ^ 2",
		"!(a > b) ? b : a",
		"pi * a",
		"abs(a - b) <= 10 || a == c ? 1 : 0",
	}
	for _, src := range cases {
		t.Run(src, func(t *testing.T) {
			p := MustCompile(src)
			bp, err := p.Bind(names)
			if err != nil {
				t.Fatalf("Bind(%q): %v", src, err)
			}
			got, err := bp.EvalFloats(slots, hist)
			if err != nil {
				t.Fatalf("EvalFloats: %v", err)
			}
			env := Env{
				"a": slots[0], "b": slots[1], "c": slots[2],
				"a_hist": hist[0], "values": slots,
			}
			want, err := refNumber(t, p, env)
			if err != nil {
				t.Fatalf("reference eval: %v", err)
			}
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("EvalFloats = %v, reference = %v", got, want)
			}
		})
	}
}

func TestBindErrorsMatchReference(t *testing.T) {
	names := []string{"a", "b"}
	cases := []struct {
		src   string
		slots []float64
		hist  [][]float64
	}{
		{"a / b", []float64{1, 0}, nil},
		{"a % b", []float64{1, 0}, nil},
		{"log(a)", []float64{-1, 0}, nil},
		{"avg(a_hist)", []float64{1, 2}, [][]float64{nil, nil}},
		{"a_hist[3]", []float64{1, 2}, [][]float64{{5}, nil}},
		{"clamp(a, 9, b)", []float64{5, 1}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			p := MustCompile(tc.src)
			bp, err := p.Bind(names)
			if err != nil {
				t.Fatalf("Bind: %v", err)
			}
			_, fastErr := bp.EvalFloats(tc.slots, tc.hist)
			env := Env{"a": tc.slots[0], "b": tc.slots[1], "values": tc.slots}
			if tc.hist != nil {
				ah := tc.hist[0]
				if ah == nil {
					ah = []float64{}
				}
				env["a_hist"] = ah
			}
			_, refErr := refNumber(t, p, env)
			if fastErr == nil || refErr == nil {
				t.Fatalf("want errors from both paths, got fast=%v ref=%v", fastErr, refErr)
			}
			if fastErr.Error() != refErr.Error() {
				t.Fatalf("error mismatch:\n fast: %v\n  ref: %v", fastErr, refErr)
			}
		})
	}
}

func TestBindRejectsNonNumeric(t *testing.T) {
	names := []string{"a", "b"}
	cases := []string{
		`"x" + "y"`,        // strings
		`[a, b]`,           // list literal
		`median(a, b)`,     // sorts (allocates)
		`a + d`,            // unbound variable
		`a > b`,            // bool-rooted
		`unknownfn(a)`,     // unknown function
		`len(a)`,           // scalar len always errors
		`a > 0 ? a : true`, // mixed branch types
	}
	for _, src := range cases {
		if _, err := MustCompile(src).Bind(names); err == nil {
			t.Errorf("Bind(%q) unexpectedly succeeded", src)
		}
	}
}

func TestBindSlotCountChecked(t *testing.T) {
	bp, err := MustCompile("a + b").Bind([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if n := bp.NumSlots(); n != 2 {
		t.Fatalf("NumSlots = %d, want 2", n)
	}
	if _, err := bp.EvalFloats([]float64{1}, nil); err == nil {
		t.Fatal("want error for short slot vector")
	}
}

func TestEvalFloatsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; allocs/op is covered by the non-race run")
	}
	names := []string{"a", "b", "c"}
	slots := []float64{10, 20, 60}
	hist := [][]float64{{10, 20, 60, 40}, nil, nil}
	for _, src := range []string{
		"(a + b + c) / 3",
		"a - avg(a_hist)",
		"a >= 10 && b < 100 ? c : 0",
		"max(values) - min(values)",
		"stddev(values) + clamp(a, 0, 100)",
	} {
		bp, err := MustCompile(src).Bind(names)
		if err != nil {
			t.Fatalf("Bind(%q): %v", src, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := bp.EvalFloats(slots, hist); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("EvalFloats(%q): %v allocs/op, want 0", src, allocs)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	// Folded programs still honour lazy error semantics: the dead branch
	// of a constant conditional never raises, and a reachable constant
	// error surfaces only at evaluation time with the tree's message.
	cases := []struct {
		src     string
		want    Value
		wantErr string
	}{
		{src: "1 + 2 * 3", want: 7.0},
		{src: "true ? 1 : 1/0", want: 1.0},
		{src: "false && (1/0 == 1)", want: false},
		{src: "true || (1/0 == 1)", want: true},
		{src: "1/0", wantErr: "division by zero"},
		{src: "false ? 1/0 : 2", want: 2.0},
		{src: "avg(2, 4)", want: 3.0},
		{src: "min([1, 2], 0)", want: 0.0},
		{src: `"a" + "b"`, want: "ab"},
		{src: "log(0)", wantErr: "non-positive argument"},
		{src: "nosuchfn(1)", wantErr: `unknown function "nosuchfn"`},
		{src: "[1, 2][3]", wantErr: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			p := MustCompile(tc.src)
			got, err := p.Eval(nil)
			ref, refErr := p.evalReference(nil)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("compiled err=%v, reference err=%v", err, refErr)
			}
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				if err.Error() != refErr.Error() {
					t.Fatalf("error text diverged: %v vs %v", err, refErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if !valuesEqual(got, ref) || !valuesEqual(got, tc.want) {
				t.Fatalf("Eval = %v, reference = %v, want %v", got, ref, tc.want)
			}
		})
	}
}

func TestNormalizeValueKinds(t *testing.T) {
	cases := []struct {
		name string
		in   Value
		want Value
	}{
		{"int16", int16(-7), -7.0},
		{"uint16", uint16(40000), 40000.0},
		{"uint32", uint32(70000), 70000.0},
		{"int", int(3), 3.0},
		{"int32", int32(-3), -3.0},
		{"int64", int64(9), 9.0},
		{"uint", uint(4), 4.0},
		{"uint64", uint64(8), 8.0},
		{"float32", float32(1.5), 1.5},
		{"[]int", []int{1, 2}, []Value{1.0, 2.0}},
		{"[]float32", []float32{0.5, 1.5}, []Value{0.5, 1.5}},
		{"[]float64", []float64{1, 2}, []Value{1.0, 2.0}},
		{"bool", true, true},
		{"string", "s", "s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := normalizeValue(tc.in)
			if err != nil {
				t.Fatalf("normalizeValue(%v): %v", tc.in, err)
			}
			if !valuesEqual(got, tc.want) {
				t.Fatalf("normalizeValue(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
	for _, bad := range []Value{uint8(1), struct{}{}, []string{"x"}, complex(1, 2)} {
		if _, err := normalizeValue(bad); err == nil {
			t.Errorf("normalizeValue(%T) unexpectedly succeeded", bad)
		}
	}
}

func TestNormalizeValueKindsThroughEnv(t *testing.T) {
	p := MustCompile("avg(xs) + n")
	v, err := p.Eval(Env{"xs": []int{2, 4}, "n": uint16(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v != 4.0 {
		t.Fatalf("got %v, want 4", v)
	}
}

// valuesEqual compares runtime values treating NaN as equal to NaN.
func valuesEqual(a, b Value) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	case []Value:
		y, ok := b.([]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !valuesEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
