package expr

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func num(t *testing.T, src string, env Env) float64 {
	t.Helper()
	v, err := Eval(src, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("Eval(%q) = %T, want float64", src, v)
	}
	return f
}

func boolean(t *testing.T, src string, env Env) bool {
	t.Helper()
	v, err := Eval(src, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	b, ok := v.(bool)
	if !ok {
		t.Fatalf("Eval(%q) = %T, want bool", src, v)
	}
	return b
}

func TestPaperExpressions(t *testing.T) {
	// The exact expressions from §VI steps 2 and 5.
	if got := num(t, "(a + b + c)/3", Env{"a": 20.0, "b": 22.0, "c": 24.0}); got != 22 {
		t.Fatalf("(a+b+c)/3 = %v", got)
	}
	if got := num(t, "(a + b)/2", Env{"a": 22.0, "b": 26.0}); got != 24 {
		t.Fatalf("(a+b)/2 = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1+2*3":   7,
		"(1+2)*3": 9,
		"10-4-3":  3,   // left associative
		"2^3^2":   512, // right associative
		"7%4":     3,
		"-3+5":    2,
		"--4":     4,
		"2*-3":    -6,
		"1/4":     0.25,
		"1e3+1":   1001,
		"2.5*4":   10,
		".5*2":    1,
	}
	for src, want := range cases {
		if got := num(t, src, nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":            true,
		"2 <= 2":           true,
		"3 > 4":            false,
		"4 >= 4":           true,
		"1 == 1":           true,
		"1 != 1":           false,
		"true && false":    false,
		"true || false":    true,
		"!true":            false,
		"1 < 2 && 2 < 3":   true,
		"\"a\" < \"b\"":    true,
		"\"x\" == \"x\"":   true,
		"true == true":     true,
		"false != true":    true,
		"1 < 2 || 1/0 > 0": true, // short-circuit skips division by zero
	}
	for src, want := range cases {
		if got := boolean(t, src, nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuitAndSkipsRHS(t *testing.T) {
	if got := boolean(t, "false && 1/0 > 0", nil); got != false {
		t.Fatal("short-circuit && broken")
	}
}

func TestConditional(t *testing.T) {
	if got := num(t, "a > 30 ? 1 : 0", Env{"a": 35.0}); got != 1 {
		t.Fatalf("ternary = %v", got)
	}
	if got := num(t, "a > 30 ? 1 : 0", Env{"a": 25.0}); got != 0 {
		t.Fatalf("ternary = %v", got)
	}
	// Nested.
	if got := num(t, "a < 0 ? -1 : a == 0 ? 0 : 1", Env{"a": 5.0}); got != 1 {
		t.Fatalf("nested ternary = %v", got)
	}
}

func TestStrings(t *testing.T) {
	v, err := Eval(`"temp: " + "ok"`, nil)
	if err != nil || v != "temp: ok" {
		t.Fatalf("concat = %v, %v", v, err)
	}
	v, err = Eval(`'single\'quote'`, nil)
	if err != nil || v != "single'quote" {
		t.Fatalf("single-quoted = %q, %v", v, err)
	}
	v, err = Eval(`"tab\there"`, nil)
	if err != nil || v != "tab\there" {
		t.Fatalf("escape = %q, %v", v, err)
	}
}

func TestListsAndIndexing(t *testing.T) {
	if got := num(t, "[10, 20, 30][1]", nil); got != 20 {
		t.Fatalf("index = %v", got)
	}
	if got := num(t, "len([1,2,3])", nil); got != 3 {
		t.Fatalf("len = %v", got)
	}
	if got := num(t, "avg(values)", Env{"values": []float64{1, 2, 3, 4}}); got != 2.5 {
		t.Fatalf("avg(list) = %v", got)
	}
	if got := num(t, "xs[i]", Env{"xs": []Value{1.0, 2.0}, "i": 1}); got != 2 {
		t.Fatalf("var index = %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := map[string]float64{
		"abs(-3)":            3,
		"sqrt(16)":           4,
		"min(3, 1, 2)":       1,
		"max(3, 1, 2)":       3,
		"sum(1, 2, 3)":       6,
		"avg(1, 2, 3, 4)":    2.5,
		"median(1, 3, 2)":    2,
		"median(1, 2, 3, 4)": 2.5,
		"floor(2.7)":         2,
		"ceil(2.2)":          3,
		"round(2.5)":         3,
		"pow(2, 10)":         1024,
		"clamp(15, 0, 10)":   10,
		"clamp(-5, 0, 10)":   0,
		"clamp(5, 0, 10)":    5,
		"c2f(100)":           212,
		"f2c(32)":            0,
		"exp(0)":             1,
		"log(e)":             1,
		"sin(0)":             0,
		"cos(0)":             1,
		"tan(0)":             0,
		"len(\"abcd\")":      4,
		"if(1 < 2, 10, 20)":  10,
	}
	for src, want := range cases {
		if got := num(t, src, nil); math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if got := num(t, "stddev(2, 4, 4, 4, 5, 5, 7, 9)", nil); got != 2 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestConstants(t *testing.T) {
	if got := num(t, "pi", nil); got != math.Pi {
		t.Fatalf("pi = %v", got)
	}
	// Env overrides constants.
	if got := num(t, "pi", Env{"pi": 3.0}); got != 3 {
		t.Fatalf("overridden pi = %v", got)
	}
}

func TestEnvNumericCoercion(t *testing.T) {
	for _, v := range []Value{int(5), int32(5), int64(5), uint(5), uint64(5), float32(5)} {
		if got := num(t, "x * 2", Env{"x": v}); got != 10 {
			t.Fatalf("coercion of %T: got %v", v, got)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "[1, 2", "1 2", "a ? 1", "a ? 1 :", "min(",
		"\"unterminated", "1..2", "@", "f(1,)", "'bad\\q'",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) accepted", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Compile(%q) error type %T", src, err)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src string
		env Env
		sub string
	}{
		{"x + 1", nil, "unbound variable"},
		{"1/0", nil, "division by zero"},
		{"1%0", nil, "modulo by zero"},
		{"-true", nil, "unary '-'"},
		{"!1", nil, "unary '!'"},
		{"1 + true", nil, "operator +"},
		{"\"a\" - \"b\"", nil, "not defined on strings"},
		{"true < false", nil, "not defined on booleans"},
		{"1 ? 2 : 3", nil, "condition yielded"},
		{"nosuch(1)", nil, "unknown function"},
		{"abs()", nil, "at least 1"},
		{"abs(1, 2)", nil, "at most 1"},
		{"avg()", nil, "at least"},
		{"[1,2][5]", nil, "out of range"},
		{"[1,2][0.5]", nil, "non-integer index"},
		{"[1,2][\"x\"]", nil, "index is"},
		{"x[0]", Env{"x": 1}, "indexing float64"},
		{"log(0)", nil, "non-positive"},
		{"clamp(1, 5, 0)", nil, "lo"},
		{"avg(\"a\")", nil, "not numeric"},
		{"x", Env{"x": struct{}{}}, "unsupported value type"},
		{"if(1, 2, 3)", nil, "condition is"},
		{"len(1)", nil, "no length"},
	}
	for _, c := range cases {
		_, err := Eval(c.src, c.env)
		if err == nil {
			t.Errorf("Eval(%q) succeeded, want error containing %q", c.src, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Eval(%q) error = %q, want substring %q", c.src, err, c.sub)
		}
	}
}

func TestProgramVars(t *testing.T) {
	p := MustCompile("(a + b + c)/3 + avg(a, d) + pi")
	got := p.Vars()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestProgramReuseConcurrent(t *testing.T) {
	p := MustCompile("(a + b)/2")
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			ok := true
			for i := 0; i < 200; i++ {
				v, err := p.EvalNumber(Env{"a": float64(g), "b": float64(g)})
				if err != nil || v != float64(g) {
					ok = false
				}
			}
			done <- ok
		}(g)
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent evaluation failed")
		}
	}
}

func TestEvalNumberTypeError(t *testing.T) {
	p := MustCompile("1 < 2")
	if _, err := p.EvalNumber(nil); err == nil {
		t.Fatal("EvalNumber on bool accepted")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("1 +")
}

func TestSourceAccessor(t *testing.T) {
	p := MustCompile("(a+b)/2")
	if p.Source() != "(a+b)/2" {
		t.Fatalf("Source = %q", p.Source())
	}
}

func TestBuiltinsListed(t *testing.T) {
	names := Builtins()
	if len(names) < 20 {
		t.Fatalf("only %d builtins", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Builtins not sorted")
		}
	}
}

// Property: printing a parsed program and re-parsing yields a tree that
// evaluates identically (round-trip stability).
func TestPropertyPrintReparse(t *testing.T) {
	exprs := []string{
		"(a + b + c)/3",
		"a*b - c/d + 2^e2",
		"a < b ? a : b",
		"avg(a, b, c) + min(a, max(b, c))",
		"[a, b, c][1] + len([a])",
		"!(a > b) && (c != d || a == b)",
		"-a + -b * -2",
		"clamp(a, 0, 100) % 7",
	}
	env := Env{"a": 3.0, "b": 5.0, "c": 7.0, "d": 11.0, "e2": 2.0}
	for _, src := range exprs {
		p1 := MustCompile(src)
		p2, err := Compile(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, p1.String(), err)
		}
		v1, err1 := p1.Eval(env)
		v2, err2 := p2.Eval(env)
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Fatalf("%q: %v/%v vs reparse %v/%v", src, v1, err1, v2, err2)
		}
	}
}

// Property: for random finite inputs, avg is bounded by min and max.
func TestPropertyAvgBounded(t *testing.T) {
	f := func(a, b, c int16) bool {
		env := Env{"a": float64(a), "b": float64(b), "c": float64(c)}
		avg := mustNum(env, "avg(a, b, c)")
		lo := mustNum(env, "min(a, b, c)")
		hi := mustNum(env, "max(a, b, c)")
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the paper's average expression equals the builtin avg.
func TestPropertyPaperAvgEqualsBuiltin(t *testing.T) {
	f := func(a, b, c int16) bool {
		env := Env{"a": float64(a), "b": float64(b), "c": float64(c)}
		return math.Abs(mustNum(env, "(a + b + c)/3")-mustNum(env, "avg(a, b, c)")) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison trichotomy.
func TestPropertyTrichotomy(t *testing.T) {
	f := func(a, b int16) bool {
		env := Env{"a": float64(a), "b": float64(b)}
		lt := mustBool(env, "a < b")
		eq := mustBool(env, "a == b")
		gt := mustBool(env, "a > b")
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustNum(env Env, src string) float64 {
	v, err := Eval(src, env)
	if err != nil {
		panic(err)
	}
	return v.(float64)
}

func mustBool(env Env, src string) bool {
	v, err := Eval(src, env)
	if err != nil {
		panic(err)
	}
	return v.(bool)
}

// Property: Compile never panics, whatever the input; it either returns a
// program or a SyntaxError.
func TestPropertyCompileNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p, err := Compile(src)
		if err != nil {
			var se *SyntaxError
			return errors.As(err, &se)
		}
		// Compiled programs also must not panic when evaluated against an
		// empty environment (errors are fine).
		_, _ = p.Eval(nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
