//go:build !race

package expr

const raceEnabled = false
