package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer scans an expression source string into tokens.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) *SyntaxError {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		return l.lexNumber(start)
	case c == '"' || c == '\'':
		return l.lexString(start, c)
	case isIdentStart(rune(c)):
		return l.lexIdent(start)
	}
	// Operators.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=":
		l.pos += 2
		return token{kind: tokLE, text: two, pos: start}, nil
	case ">=":
		l.pos += 2
		return token{kind: tokGE, text: two, pos: start}, nil
	case "==":
		l.pos += 2
		return token{kind: tokEQ, text: two, pos: start}, nil
	case "!=":
		l.pos += 2
		return token{kind: tokNE, text: two, pos: start}, nil
	case "&&":
		l.pos += 2
		return token{kind: tokAnd, text: two, pos: start}, nil
	case "||":
		l.pos += 2
		return token{kind: tokOr, text: two, pos: start}, nil
	}
	single := map[byte]tokenKind{
		'+': tokPlus, '-': tokMinus, '*': tokStar, '/': tokSlash,
		'%': tokPercent, '^': tokCaret, '(': tokLParen, ')': tokRParen,
		'[': tokLBracket, ']': tokRBracket, ',': tokComma, '<': tokLT,
		'>': tokGT, '!': tokNot, '?': tokQuestion, ':': tokColon,
	}
	if kind, ok := single[c]; ok {
		l.pos++
		return token{kind: kind, text: string(c), pos: start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return token{}, l.errf(start, "unexpected character %q", r)
}

func (l *lexer) lexNumber(start int) (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
			l.pos++
			continue
		}
		// Exponent sign.
		if (c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, text: text, num: v, pos: start}, nil
}

func (l *lexer) lexString(start int, quote byte) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case quote:
				b.WriteByte(quote)
			default:
				return token{}, l.errf(l.pos, "unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexIdent(start int) (token, error) {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	switch text {
	case "true":
		return token{kind: tokTrue, text: text, pos: start}, nil
	case "false":
		return token{kind: tokFalse, text: text, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
