package expr

import (
	"testing"
)

// Acceptance benchmarks for the compilation backend: the compiled
// closures and the float64 fast path against the tree-walking baseline,
// on the representative sensor shapes from the paper's §V-B usage.

var vmShapes = []struct {
	name  string
	src   string
	names []string
	slots []float64
	hist  [][]float64
}{
	{
		name:  "paper-avg",
		src:   "(a + b + c) / 3",
		names: []string{"a", "b", "c"},
		slots: []float64{21.4, 22.9, 20.1},
	},
	{
		name:  "hist-baseline",
		src:   "a - avg(a_hist)",
		names: []string{"a"},
		slots: []float64{24.0},
		hist:  [][]float64{{21, 22, 23, 24, 22, 21, 25, 24, 23, 22, 21, 24, 25, 23, 22, 24}},
	},
	{
		name:  "conditional",
		src:   "a >= 10 && b < 100 ? (a + b + c)/3 : clamp(c, 0, 50)",
		names: []string{"a", "b", "c"},
		slots: []float64{21.4, 22.9, 20.1},
	},
	{
		name:  "quorum",
		src:   "max(values) - min(values) < 5 ? avg(values) : nan",
		names: []string{"a", "b", "c", "d"},
		slots: []float64{21.4, 22.9, 20.1, 21.8},
	},
}

func benchEnv(shape int) Env {
	s := vmShapes[shape]
	env := Env{"values": s.slots}
	for i, n := range s.names {
		env[n] = s.slots[i]
		if i < len(s.hist) && s.hist[i] != nil {
			env[n+"_hist"] = s.hist[i]
		}
	}
	return env
}

// BenchmarkEvalVMTree is the baseline: the original tree-walking
// evaluator over a map env.
func BenchmarkEvalVMTree(b *testing.B) {
	for si, s := range vmShapes {
		p := MustCompile(s.src)
		env := benchEnv(si)
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.evalReference(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalVMCompiled is Program.Eval: slot-resolved closures with a
// pooled machine, still reading a map env once per distinct variable.
func BenchmarkEvalVMCompiled(b *testing.B) {
	for si, s := range vmShapes {
		p := MustCompile(s.src)
		env := benchEnv(si)
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Eval(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalVMBound is the float64 fast path: no env, no boxing, zero
// allocation per evaluation.
func BenchmarkEvalVMBound(b *testing.B) {
	for _, s := range vmShapes {
		bp, err := MustCompile(s.src).Bind(s.names)
		if err != nil {
			b.Fatal(err)
		}
		slots, hist := s.slots, s.hist
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bp.EvalFloats(slots, hist); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
