package expr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the differential harness for the compilation backend: a
// generator produces random well-formed expressions and environments, and
// every case must evaluate identically — same value, same error text —
// through the compiled closures (Program.Eval), the tree walker
// (evalReference), and, where an expression binds, the float64 fast path
// (BoundProgram.EvalFloats).

// genIdents is the identifier pool; it deliberately mixes bindable
// variables, history/values names the CSP uses, named constants, and a
// name the environments never bind (to exercise unbound-variable errors).
var genIdents = []string{"a", "b", "c", "x", "a_hist", "values", "pi", "nan", "zz_unbound"}

var genCalls = []struct {
	name  string
	arity []int
}{
	{"abs", []int{1}}, {"sqrt", []int{1}}, {"floor", []int{1}},
	{"round", []int{1}}, {"sin", []int{1}}, {"exp", []int{1}},
	{"log", []int{1}}, {"pow", []int{2}}, {"min", []int{1, 2, 3}},
	{"max", []int{1, 2, 3}}, {"sum", []int{1, 2, 3}}, {"avg", []int{1, 2, 3}},
	{"median", []int{1, 3}}, {"stddev", []int{1, 2}}, {"clamp", []int{3}},
	{"len", []int{1}}, {"if", []int{3}}, {"c2f", []int{1}}, {"f2c", []int{1}},
}

// genExpr emits a random expression that is guaranteed to parse; whether
// it evaluates or errors is exactly what the differential test compares.
func genExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return genIdents[r.Intn(len(genIdents))]
		case 1:
			return fmt.Sprintf("%g", float64(r.Intn(21)-10)/2)
		case 2:
			return []string{"true", "false"}[r.Intn(2)]
		default:
			return fmt.Sprintf("%q", []string{"s", "t", ""}[r.Intn(3)])
		}
	}
	switch r.Intn(10) {
	case 0:
		return genExpr(r, 0)
	case 1:
		op := []string{"-", "!"}[r.Intn(2)]
		return "(" + op + genExpr(r, depth-1) + ")"
	case 2, 3, 4:
		ops := []string{"+", "-", "*", "/", "%", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
		return "(" + genExpr(r, depth-1) + " " + ops[r.Intn(len(ops))] + " " + genExpr(r, depth-1) + ")"
	case 5:
		return "(" + genExpr(r, depth-1) + " ? " + genExpr(r, depth-1) + " : " + genExpr(r, depth-1) + ")"
	case 6:
		n := 1 + r.Intn(3)
		elems := make([]string, n)
		for i := range elems {
			elems[i] = genExpr(r, depth-1)
		}
		return "[" + strings.Join(elems, ", ") + "]"
	case 7:
		return genExpr(r, depth-1) + "[" + genExpr(r, 0) + "]"
	default:
		c := genCalls[r.Intn(len(genCalls))]
		n := c.arity[r.Intn(len(c.arity))]
		args := make([]string, n)
		for i := range args {
			args[i] = genExpr(r, depth-1)
		}
		return c.name + "(" + strings.Join(args, ", ") + ")"
	}
}

// genEnv binds a random subset of the variable pool to randomly typed
// values, including the numeric kinds normalizeValue coerces.
func genEnv(r *rand.Rand) Env {
	env := Env{}
	for _, name := range []string{"a", "b", "c", "x"} {
		switch r.Intn(8) {
		case 0: // unbound
		case 1:
			env[name] = float64(r.Intn(41) - 20)
		case 2:
			env[name] = r.NormFloat64() * 10
		case 3:
			env[name] = r.Intn(2) == 0
		case 4:
			env[name] = []string{"s", "t"}[r.Intn(2)]
		case 5:
			env[name] = []Value{float64(r.Intn(5)), float64(r.Intn(5))}
		case 6:
			env[name] = int32(r.Intn(100) - 50)
		default:
			env[name] = uint16(r.Intn(100))
		}
	}
	if r.Intn(2) == 0 {
		env["a_hist"] = []float64{1, 2, 3}[:r.Intn(4)]
	}
	if r.Intn(2) == 0 {
		env["values"] = []float64{10, 20, 30}
	}
	if r.Intn(8) == 0 {
		env["pi"] = 3.0 // env may shadow a named constant
	}
	return env
}

// diffOne compares the compiled evaluator against the tree walker for one
// (source, env) pair; it reports a fatal mismatch through t.
func diffOne(t *testing.T, src string, env Env) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("generated expression failed to parse: %q: %v", src, err)
	}
	got, gotErr := p.Eval(env)
	want, wantErr := p.evalReference(env)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%q with env %v:\n compiled: (%v, %v)\n     tree: (%v, %v)", src, env, got, gotErr, want, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%q with env %v: error text diverged:\n compiled: %v\n     tree: %v", src, env, gotErr, wantErr)
		}
		return
	}
	if !valuesEqual(got, want) {
		t.Fatalf("%q with env %v: compiled %#v, tree %#v", src, env, got, want)
	}
}

func TestDifferentialCompiledVsTree(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	for i := 0; i < 4000; i++ {
		src := genExpr(r, 1+r.Intn(4))
		diffOne(t, src, genEnv(r))
	}
}

// TestDifferentialBoundVsTree drives the float64 fast path: whenever a
// generated expression binds against a fixed slot layout, EvalFloats must
// agree with the tree walker over the equivalent Env.
func TestDifferentialBoundVsTree(t *testing.T) {
	r := rand.New(rand.NewSource(8052026))
	names := []string{"a", "b", "c"}
	bound := 0
	for i := 0; i < 4000; i++ {
		src := genExpr(r, 1+r.Intn(4))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated expression failed to parse: %q: %v", src, err)
		}
		bp, err := p.Bind(names)
		if err != nil {
			continue // no fast path; the Env path is the behaviour
		}
		bound++
		slots := []float64{float64(r.Intn(21) - 10), r.NormFloat64() * 5, float64(r.Intn(100))}
		hist := [][]float64{[]float64{4, 5, 6}[:r.Intn(4)], nil, nil}
		got, gotErr := bp.EvalFloats(slots, hist)
		env := Env{
			"a": slots[0], "b": slots[1], "c": slots[2],
			"a_hist": hist[0], "values": slots,
		}
		if hist[0] == nil {
			env["a_hist"] = []float64{}
		}
		want, wantErr := refNumber(t, p, env)
		if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("%q: fast (%v, %v) vs tree (%v, %v)", src, got, gotErr, want, wantErr)
		}
		if gotErr == nil && !valuesEqual(got, want) {
			t.Fatalf("%q: fast %v, tree %v", src, got, want)
		}
	}
	if bound < 100 {
		t.Fatalf("only %d/4000 generated expressions took the fast path; generator drifted", bound)
	}
}

// fuzzCorpus seeds the fuzz target with the shapes the unit suite
// exercises (expr_test.go) plus CSP-style sensor expressions.
var fuzzCorpus = []string{
	"1 + 2 * 3",
	"(a + b + c) / 3",
	"a - avg(a_hist)",
	"max(values) - min(values)",
	"a > 25 ? 1 : 0",
	"clamp((a + b)/2, 0, 100)",
	"true && false || a > 1",
	`"temp: " + "high"`,
	"[a, b, c][1]",
	"median(a, b, c)",
	"stddev(values) / sqrt(len(values))",
	"if(a > b, a, b)",
	"-a ^ 2 % 3",
	"pi * e + nan",
	"1/0",
	"log(0)",
	"unknown(a)",
	"len(\"abc\") + len([1,2])",
	"c2f(f2c(a))",
	"a == b != c",
}

// FuzzEvalDifferential fuzzes source text: anything that compiles must
// evaluate identically through the compiled closures and the tree walker
// against a fixed mixed-type environment.
func FuzzEvalDifferential(f *testing.F) {
	for _, src := range fuzzCorpus {
		f.Add(src)
	}
	env := Env{
		"a": 10.0, "b": true, "c": "s", "x": []Value{1.0, 2.0},
		"a_hist": []float64{1, 2, 3}, "values": []float64{10, 20, 30},
		"n": int32(7), "u": uint16(9),
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			return // deep recursion guard; Compile handles depth, keep fuzz fast
		}
		p, err := Compile(src)
		if err != nil {
			return
		}
		got, gotErr := p.Eval(env)
		want, wantErr := p.evalReference(env)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%q: compiled (%v, %v) vs tree (%v, %v)", src, got, gotErr, want, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%q: error text diverged: %v vs %v", src, gotErr, wantErr)
			}
			return
		}
		if !valuesEqual(got, want) {
			t.Fatalf("%q: compiled %#v, tree %#v", src, got, want)
		}
	})
}
