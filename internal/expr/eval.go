package expr

import (
	"math"
)

// Value is a runtime value: float64, bool, string or []Value.
type Value any

// Env binds free variable names to values for one evaluation.
type Env map[string]Value

// constants are identifiers with fixed values, usable without binding.
var constants = map[string]Value{
	"pi":  math.Pi,
	"e":   math.E,
	"nan": math.NaN(),
	"inf": math.Inf(1),
}

// Eval compiles and evaluates source against env in one step. Prefer
// Compile + Program.Eval when the same expression runs repeatedly.
func Eval(source string, env Env) (Value, error) {
	p, err := Compile(source)
	if err != nil {
		return nil, err
	}
	return p.Eval(env)
}

// Eval evaluates the compiled program against the environment. Programs
// run as slot-resolved closures: identifiers were resolved to integer
// slots at compile time, so evaluation performs one env lookup per
// distinct variable (the prefetch below) instead of one per occurrence.
func (p *Program) Eval(env Env) (Value, error) {
	m := machinePool.Get().(*machine)
	m.reset(len(p.slots))
	for i, name := range p.slots {
		if v, ok := env[name]; ok {
			m.slots[i], m.bound[i] = v, true
		} else if c, ok := constants[name]; ok {
			m.slots[i], m.bound[i] = c, true
		}
	}
	v, err := p.code(m)
	m.release()
	return v, err
}

// EvalNumber evaluates and coerces the result to float64, the common case
// for sensor expressions.
func (p *Program) EvalNumber(env Env) (float64, error) {
	v, err := p.Eval(env)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, evalErrf("expression yielded %T, want number", v)
	}
	return f, nil
}

// evalReference runs the original tree-walking evaluator. It is the
// semantic oracle for the compiled backend: the differential tests assert
// Eval and evalReference agree on value and error for every input.
func (p *Program) evalReference(env Env) (Value, error) {
	return eval(p.root, env)
}

func eval(n node, env Env) (Value, error) {
	switch t := n.(type) {
	case numberNode:
		return t.val, nil
	case stringNode:
		return t.val, nil
	case boolNode:
		return t.val, nil
	case identNode:
		if v, ok := env[t.name]; ok {
			return normalizeValue(v)
		}
		if v, ok := constants[t.name]; ok {
			return v, nil
		}
		return nil, evalErrf("unbound variable %q", t.name)
	case listNode:
		out := make([]Value, len(t.elems))
		for i, e := range t.elems {
			v, err := eval(e, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case unaryNode:
		v, err := eval(t.x, env)
		if err != nil {
			return nil, err
		}
		return applyUnary(t.op, v)
	case binaryNode:
		return evalBinary(t, env)
	case condNode:
		c, err := eval(t.cond, env)
		if err != nil {
			return nil, err
		}
		b, ok := c.(bool)
		if !ok {
			return nil, evalErrf("condition yielded %T, want bool", c)
		}
		if b {
			return eval(t.then, env)
		}
		return eval(t.els, env)
	case callNode:
		return evalCall(t, env)
	case indexNode:
		x, err := eval(t.x, env)
		if err != nil {
			return nil, err
		}
		idx, err := eval(t.idx, env)
		if err != nil {
			return nil, err
		}
		return applyIndex(x, idx)
	default:
		return nil, evalErrf("internal: unknown node %T", n)
	}
}

// normalizeValue coerces caller-supplied numeric kinds to float64 so an Env
// populated with ints behaves naturally.
func normalizeValue(v Value) (Value, error) {
	switch x := v.(type) {
	case float64, bool, string, []Value:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int16:
		return float64(x), nil
	case int32:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint:
		return float64(x), nil
	case uint16:
		return float64(x), nil
	case uint32:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	case []float64:
		out := make([]Value, len(x))
		for i, f := range x {
			out[i] = f
		}
		return out, nil
	case []float32:
		out := make([]Value, len(x))
		for i, f := range x {
			out[i] = float64(f)
		}
		return out, nil
	case []int:
		out := make([]Value, len(x))
		for i, n := range x {
			out[i] = float64(n)
		}
		return out, nil
	default:
		return nil, evalErrf("unsupported value type %T", v)
	}
}

// applyUnary applies a unary operator to an evaluated operand; shared by
// the tree walker and the compiled backend so error text stays identical.
func applyUnary(op tokenKind, v Value) (Value, error) {
	switch op {
	case tokMinus:
		f, ok := v.(float64)
		if !ok {
			return nil, evalErrf("unary '-' on %T", v)
		}
		return -f, nil
	case tokNot:
		b, ok := v.(bool)
		if !ok {
			return nil, evalErrf("unary '!' on %T", v)
		}
		return !b, nil
	}
	return nil, evalErrf("internal: bad unary op")
}

func evalBinary(t binaryNode, env Env) (Value, error) {
	// Short-circuit logical operators evaluate lazily.
	if t.op == tokAnd || t.op == tokOr {
		l, err := eval(t.l, env)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, evalErrf("%s on %T", binaryOpText[t.op], l)
		}
		if t.op == tokAnd && !lb {
			return false, nil
		}
		if t.op == tokOr && lb {
			return true, nil
		}
		r, err := eval(t.r, env)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, evalErrf("%s on %T", binaryOpText[t.op], r)
		}
		return rb, nil
	}

	l, err := eval(t.l, env)
	if err != nil {
		return nil, err
	}
	r, err := eval(t.r, env)
	if err != nil {
		return nil, err
	}
	return applyBinary(t.op, l, r)
}

// applyBinary applies a strict (non-short-circuit) binary operator to two
// evaluated operands; shared by the tree walker and the compiled backend.
func applyBinary(op tokenKind, l, r Value) (Value, error) {
	// String concatenation and comparison.
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case tokPlus:
				return ls + rs, nil
			case tokEQ:
				return ls == rs, nil
			case tokNE:
				return ls != rs, nil
			case tokLT:
				return ls < rs, nil
			case tokLE:
				return ls <= rs, nil
			case tokGT:
				return ls > rs, nil
			case tokGE:
				return ls >= rs, nil
			}
			return nil, evalErrf("operator %s not defined on strings", binaryOpText[op])
		}
	}
	// Boolean equality.
	if lb, ok := l.(bool); ok {
		if rb, ok := r.(bool); ok {
			switch op {
			case tokEQ:
				return lb == rb, nil
			case tokNE:
				return lb != rb, nil
			}
			return nil, evalErrf("operator %s not defined on booleans", binaryOpText[op])
		}
	}

	lf, lok := l.(float64)
	rf, rok := r.(float64)
	if !lok || !rok {
		return nil, evalErrf("operator %s on %T and %T", binaryOpText[op], l, r)
	}
	switch op {
	case tokPlus:
		return lf + rf, nil
	case tokMinus:
		return lf - rf, nil
	case tokStar:
		return lf * rf, nil
	case tokSlash:
		if rf == 0 {
			return nil, evalErrf("division by zero")
		}
		return lf / rf, nil
	case tokPercent:
		if rf == 0 {
			return nil, evalErrf("modulo by zero")
		}
		return math.Mod(lf, rf), nil
	case tokCaret:
		return math.Pow(lf, rf), nil
	case tokLT:
		return lf < rf, nil
	case tokLE:
		return lf <= rf, nil
	case tokGT:
		return lf > rf, nil
	case tokGE:
		return lf >= rf, nil
	case tokEQ:
		return lf == rf, nil
	case tokNE:
		return lf != rf, nil
	}
	return nil, evalErrf("internal: bad binary op")
}

// applyIndex indexes an evaluated list with an evaluated subscript; shared
// by the tree walker and the compiled backend.
func applyIndex(x, idx Value) (Value, error) {
	i, ok := idx.(float64)
	if !ok {
		return nil, evalErrf("index is %T, want number", idx)
	}
	list, ok := x.([]Value)
	if !ok {
		return nil, evalErrf("indexing %T, want list", x)
	}
	n := int(i)
	if float64(n) != i {
		return nil, evalErrf("non-integer index %v", i)
	}
	if n < 0 || n >= len(list) {
		return nil, evalErrf("index %d out of range (len %d)", n, len(list))
	}
	return list[n], nil
}
