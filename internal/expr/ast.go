package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// node is an AST node. String renders source that re-parses to an
// equivalent tree (used by tests as a round-trip property).
type node interface {
	String() string
}

type numberNode struct{ val float64 }

func (n numberNode) String() string { return strconv.FormatFloat(n.val, 'g', -1, 64) }

type stringNode struct{ val string }

func (n stringNode) String() string { return strconv.Quote(n.val) }

type boolNode struct{ val bool }

func (n boolNode) String() string { return strconv.FormatBool(n.val) }

type identNode struct{ name string }

func (n identNode) String() string { return n.name }

type listNode struct{ elems []node }

func (n listNode) String() string {
	parts := make([]string, len(n.elems))
	for i, e := range n.elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

type unaryNode struct {
	op tokenKind // tokMinus or tokNot
	x  node
}

func (n unaryNode) String() string {
	op := "-"
	if n.op == tokNot {
		op = "!"
	}
	return "(" + op + n.x.String() + ")"
}

type binaryNode struct {
	op   tokenKind
	l, r node
}

var binaryOpText = map[tokenKind]string{
	tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/",
	tokPercent: "%", tokCaret: "^", tokLT: "<", tokLE: "<=", tokGT: ">",
	tokGE: ">=", tokEQ: "==", tokNE: "!=", tokAnd: "&&", tokOr: "||",
}

func (n binaryNode) String() string {
	return "(" + n.l.String() + " " + binaryOpText[n.op] + " " + n.r.String() + ")"
}

type condNode struct{ cond, then, els node }

func (n condNode) String() string {
	return "(" + n.cond.String() + " ? " + n.then.String() + " : " + n.els.String() + ")"
}

type callNode struct {
	name string
	args []node
}

func (n callNode) String() string {
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return n.name + "(" + strings.Join(parts, ", ") + ")"
}

type indexNode struct{ x, idx node }

func (n indexNode) String() string { return n.x.String() + "[" + n.idx.String() + "]" }

// collectVars accumulates free variable names (identifiers that are not
// builtin function calls).
func collectVars(n node, out map[string]bool) {
	switch t := n.(type) {
	case identNode:
		out[t.name] = true
	case listNode:
		for _, e := range t.elems {
			collectVars(e, out)
		}
	case unaryNode:
		collectVars(t.x, out)
	case binaryNode:
		collectVars(t.l, out)
		collectVars(t.r, out)
	case condNode:
		collectVars(t.cond, out)
		collectVars(t.then, out)
		collectVars(t.els, out)
	case callNode:
		for _, a := range t.args {
			collectVars(a, out)
		}
	case indexNode:
		collectVars(t.x, out)
		collectVars(t.idx, out)
	}
}

// Program is a compiled expression, safe for concurrent evaluation. The
// parse tree is lowered once (compile.go) into slot-resolved closures;
// the tree itself is retained for String() and as the differential
// oracle.
type Program struct {
	source string
	root   node
	slots  []string       // every distinct identifier, sorted (incl. constants)
	slotOf map[string]int // identifier -> slot index
	vars   []string       // slots minus named constants (the public Vars)
	code   genFn          // compiled root
}

// Source returns the original expression text.
func (p *Program) Source() string { return p.source }

// String renders the parsed tree as re-parseable source.
func (p *Program) String() string { return p.root.String() }

// Vars returns the sorted free variable names the expression references —
// the CSP uses this to validate its child bindings ("a", "b", "c", ...).
// The set is resolved at compile time; Vars copies it so callers may keep
// or mutate the slice.
func (p *Program) Vars() []string {
	out := make([]string, len(p.vars))
	copy(out, p.vars)
	return out
}

// sort and fmt import keepalive for siblings of this file.
var (
	_ = fmt.Sprintf
	_ = sort.Strings
)
