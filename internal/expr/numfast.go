package expr

import (
	"fmt"
	"math"
	"strings"
)

// This file is the typed fast path of the compilation backend. Bind
// resolves a numeric-only program against a fixed, ordered variable list
// (the CSP's child bindings) and lowers it to closures over raw float64
// slots: no Env map, no interface boxing, no allocation per evaluation.
// Expressions the fast path cannot express (strings, lists literals,
// median's sort, mixed-type branches) fail Bind and the caller falls back
// to the generic Env evaluator, which is the semantic reference.

// numFn, boolFn and seqFn are compiled numeric-path nodes. slots carries
// the current value of each bound variable; hist carries each variable's
// recent-value window (nil when the expression does not use it).
type (
	numFn  func(slots []float64, hist [][]float64) (float64, error)
	boolFn func(slots []float64, hist [][]float64) (bool, error)
	seqFn  func(slots []float64, hist [][]float64) ([]float64, error)
)

// BoundProgram is a Program bound to a fixed variable ordering, evaluable
// against raw float64 slots without allocation. Safe for concurrent use.
type BoundProgram struct {
	prog   *Program
	nslots int
	root   numFn
}

// bindError reports why an expression could not take the numeric fast
// path; callers treat any bind failure as "use the Env path".
type bindError struct{ msg string }

func (e *bindError) Error() string { return "expr: cannot bind: " + e.msg }

func bindErrf(format string, args ...any) error {
	return &bindError{msg: fmt.Sprintf(format, args...)}
}

// Bind resolves the program's identifiers against names: names[i] maps to
// slot i, names[i]+"_hist" maps to history window i, "values" maps to the
// full slot vector, and named constants resolve to their values. Bind
// fails if the expression references anything else or uses non-numeric
// constructs; the caller should then evaluate via Eval/EvalNumber with an
// Env, which has identical semantics.
func (p *Program) Bind(names []string) (*BoundProgram, error) {
	b := &binder{names: names}
	l, err := b.lower(p.root)
	if err != nil {
		return nil, err
	}
	if l.kind != nkNum {
		return nil, bindErrf("expression yields %s, want number", l.kind)
	}
	return &BoundProgram{prog: p, nslots: len(names), root: l.num}, nil
}

// Program returns the program this binding was compiled from.
func (b *BoundProgram) Program() *Program { return b.prog }

// NumSlots returns the number of variable slots EvalFloats expects.
func (b *BoundProgram) NumSlots() int { return b.nslots }

// EvalFloats evaluates against raw slots. hist[i], when the expression
// references names[i]+"_hist", is that variable's recent-value window
// (oldest first); pass nil when no history variables are bound. EvalFloats
// allocates nothing on the success path and is safe for concurrent use.
//
//lint:noalloc
func (b *BoundProgram) EvalFloats(slots []float64, hist [][]float64) (float64, error) {
	if len(slots) < b.nslots {
		return 0, evalErrf("bound program wants %d slot(s), got %d", b.nslots, len(slots))
	}
	return b.root(slots, hist)
}

// nkind is the static type of a fast-path subtree.
type nkind int

const (
	nkNum nkind = iota
	nkBool
	nkSeq
)

func (k nkind) String() string {
	switch k {
	case nkNum:
		return "number"
	case nkBool:
		return "bool"
	default:
		return "list"
	}
}

// nlowered is one lowered fast-path node; exactly one of num/b/seq is set
// according to kind.
type nlowered struct {
	kind nkind
	num  numFn
	b    boolFn
	seq  seqFn
}

func numConst(f float64) nlowered {
	return nlowered{kind: nkNum, num: func([]float64, [][]float64) (float64, error) { return f, nil }}
}

type binder struct {
	names []string
}

func (b *binder) slotOf(name string) int {
	for i, n := range b.names {
		if n == name {
			return i
		}
	}
	return -1
}

func (b *binder) lower(n node) (nlowered, error) {
	switch t := n.(type) {
	case numberNode:
		return numConst(t.val), nil
	case boolNode:
		v := t.val
		return nlowered{kind: nkBool, b: func([]float64, [][]float64) (bool, error) { return v, nil }}, nil
	case stringNode:
		return nlowered{}, bindErrf("string literal")
	case identNode:
		return b.lowerIdent(t.name)
	case listNode:
		return nlowered{}, bindErrf("list literal")
	case unaryNode:
		return b.lowerUnary(t)
	case binaryNode:
		return b.lowerBinary(t)
	case condNode:
		return b.lowerCond(t)
	case callNode:
		return b.lowerCall(t)
	case indexNode:
		return b.lowerIndex(t)
	default:
		return nlowered{}, bindErrf("unsupported node %T", n)
	}
}

func (b *binder) lowerIdent(name string) (nlowered, error) {
	if i := b.slotOf(name); i >= 0 {
		return nlowered{kind: nkNum, num: func(slots []float64, _ [][]float64) (float64, error) {
			return slots[i], nil
		}}, nil
	}
	if base, ok := strings.CutSuffix(name, "_hist"); ok {
		if i := b.slotOf(base); i >= 0 {
			return nlowered{kind: nkSeq, seq: func(_ []float64, hist [][]float64) ([]float64, error) {
				if i < len(hist) {
					return hist[i], nil
				}
				return nil, nil
			}}, nil
		}
	}
	if name == "values" {
		return nlowered{kind: nkSeq, seq: func(slots []float64, _ [][]float64) ([]float64, error) {
			return slots, nil
		}}, nil
	}
	if c, ok := constants[name]; ok {
		if f, ok := c.(float64); ok {
			return numConst(f), nil
		}
	}
	return nlowered{}, bindErrf("unbound variable %q", name)
}

func (b *binder) lowerUnary(t unaryNode) (nlowered, error) {
	x, err := b.lower(t.x)
	if err != nil {
		return nlowered{}, err
	}
	switch {
	case t.op == tokMinus && x.kind == nkNum:
		xf := x.num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			v, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			return -v, nil
		}}, nil
	case t.op == tokNot && x.kind == nkBool:
		xf := x.b
		return nlowered{kind: nkBool, b: func(s []float64, h [][]float64) (bool, error) {
			v, err := xf(s, h)
			if err != nil {
				return false, err
			}
			return !v, nil
		}}, nil
	}
	return nlowered{}, bindErrf("unary operator on %s", x.kind)
}

func (b *binder) lowerBinary(t binaryNode) (nlowered, error) {
	l, err := b.lower(t.l)
	if err != nil {
		return nlowered{}, err
	}
	r, err := b.lower(t.r)
	if err != nil {
		return nlowered{}, err
	}
	if t.op == tokAnd || t.op == tokOr {
		if l.kind != nkBool || r.kind != nkBool {
			return nlowered{}, bindErrf("%s on %s and %s", binaryOpText[t.op], l.kind, r.kind)
		}
		lf, rf, isAnd := l.b, r.b, t.op == tokAnd
		return nlowered{kind: nkBool, b: func(s []float64, h [][]float64) (bool, error) {
			lv, err := lf(s, h)
			if err != nil {
				return false, err
			}
			if isAnd && !lv {
				return false, nil
			}
			if !isAnd && lv {
				return true, nil
			}
			return rf(s, h)
		}}, nil
	}
	if l.kind == nkBool && r.kind == nkBool {
		if t.op != tokEQ && t.op != tokNE {
			return nlowered{}, bindErrf("operator %s on booleans", binaryOpText[t.op])
		}
		lf, rf, eq := l.b, r.b, t.op == tokEQ
		return nlowered{kind: nkBool, b: func(s []float64, h [][]float64) (bool, error) {
			lv, err := lf(s, h)
			if err != nil {
				return false, err
			}
			rv, err := rf(s, h)
			if err != nil {
				return false, err
			}
			return (lv == rv) == eq, nil
		}}, nil
	}
	if l.kind != nkNum || r.kind != nkNum {
		return nlowered{}, bindErrf("operator %s on %s and %s", binaryOpText[t.op], l.kind, r.kind)
	}
	lf, rf := l.num, r.num
	switch t.op {
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent, tokCaret:
		op := t.op
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			lv, err := lf(s, h)
			if err != nil {
				return 0, err
			}
			rv, err := rf(s, h)
			if err != nil {
				return 0, err
			}
			switch op {
			case tokPlus:
				return lv + rv, nil
			case tokMinus:
				return lv - rv, nil
			case tokStar:
				return lv * rv, nil
			case tokSlash:
				if rv == 0 {
					return 0, evalErrf("division by zero")
				}
				return lv / rv, nil
			case tokPercent:
				if rv == 0 {
					return 0, evalErrf("modulo by zero")
				}
				return math.Mod(lv, rv), nil
			default: // tokCaret
				return math.Pow(lv, rv), nil
			}
		}}, nil
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		op := t.op
		return nlowered{kind: nkBool, b: func(s []float64, h [][]float64) (bool, error) {
			lv, err := lf(s, h)
			if err != nil {
				return false, err
			}
			rv, err := rf(s, h)
			if err != nil {
				return false, err
			}
			switch op {
			case tokLT:
				return lv < rv, nil
			case tokLE:
				return lv <= rv, nil
			case tokGT:
				return lv > rv, nil
			case tokGE:
				return lv >= rv, nil
			case tokEQ:
				return lv == rv, nil
			default: // tokNE
				return lv != rv, nil
			}
		}}, nil
	}
	return nlowered{}, bindErrf("operator %s", binaryOpText[t.op])
}

func (b *binder) lowerCond(t condNode) (nlowered, error) {
	c, err := b.lower(t.cond)
	if err != nil {
		return nlowered{}, err
	}
	if c.kind != nkBool {
		return nlowered{}, bindErrf("condition yields %s, want bool", c.kind)
	}
	th, err := b.lower(t.then)
	if err != nil {
		return nlowered{}, err
	}
	el, err := b.lower(t.els)
	if err != nil {
		return nlowered{}, err
	}
	if th.kind != el.kind {
		return nlowered{}, bindErrf("branches yield %s and %s", th.kind, el.kind)
	}
	cf := c.b
	switch th.kind {
	case nkNum:
		tf, ef := th.num, el.num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			cv, err := cf(s, h)
			if err != nil {
				return 0, err
			}
			if cv {
				return tf(s, h)
			}
			return ef(s, h)
		}}, nil
	case nkBool:
		tf, ef := th.b, el.b
		return nlowered{kind: nkBool, b: func(s []float64, h [][]float64) (bool, error) {
			cv, err := cf(s, h)
			if err != nil {
				return false, err
			}
			if cv {
				return tf(s, h)
			}
			return ef(s, h)
		}}, nil
	}
	return nlowered{}, bindErrf("branches yield %s", th.kind)
}

func (b *binder) lowerIndex(t indexNode) (nlowered, error) {
	x, err := b.lower(t.x)
	if err != nil {
		return nlowered{}, err
	}
	idx, err := b.lower(t.idx)
	if err != nil {
		return nlowered{}, err
	}
	if x.kind != nkSeq || idx.kind != nkNum {
		return nlowered{}, bindErrf("indexing %s with %s", x.kind, idx.kind)
	}
	xf, ifn := x.seq, idx.num
	return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
		xs, err := xf(s, h)
		if err != nil {
			return 0, err
		}
		iv, err := ifn(s, h)
		if err != nil {
			return 0, err
		}
		n := int(iv)
		if float64(n) != iv {
			return 0, evalErrf("non-integer index %v", iv)
		}
		if n < 0 || n >= len(xs) {
			return 0, evalErrf("index %d out of range (len %d)", n, len(xs))
		}
		return xs[n], nil
	}}, nil
}

// numStream is one aggregate argument: either a scalar or a sequence.
type numStream struct {
	num numFn
	seq seqFn
}

// lowerStreams lowers aggregate arguments; each must be a number or a
// sequence (a sequence argument spreads, matching numbersOf).
func (b *binder) lowerStreams(name string, args []node) ([]numStream, error) {
	out := make([]numStream, len(args))
	for i, a := range args {
		l, err := b.lower(a)
		if err != nil {
			return nil, err
		}
		switch l.kind {
		case nkNum:
			out[i] = numStream{num: l.num}
		case nkSeq:
			out[i] = numStream{seq: l.seq}
		default:
			return nil, bindErrf("%s: %s argument", name, l.kind)
		}
	}
	return out, nil
}

// walkStreams feeds every value of every argument, in order, to visit.
// It returns the total value count; errors from argument evaluation
// propagate. Zero-alloc: sequences are iterated in place.
func walkStreams(args []numStream, slots []float64, hist [][]float64, visit func(float64)) (int, error) {
	count := 0
	for _, a := range args {
		if a.num != nil {
			v, err := a.num(slots, hist)
			if err != nil {
				return 0, err
			}
			visit(v)
			count++
			continue
		}
		xs, err := a.seq(slots, hist)
		if err != nil {
			return 0, err
		}
		for _, v := range xs {
			visit(v)
		}
		count += len(xs)
	}
	return count, nil
}

func (b *binder) lowerCall(t callNode) (nlowered, error) {
	if _, err := checkArity(t.name, len(t.args)); err != nil {
		// Unknown function or bad arity: always an error at eval time;
		// let the Env path produce it.
		return nlowered{}, bindErrf("%v", err)
	}
	if f, ok := num1Fns[t.name]; ok {
		x, err := b.lower(t.args[0])
		if err != nil || x.kind != nkNum {
			return nlowered{}, bindErrf("%s: non-numeric argument", t.name)
		}
		xf := x.num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			v, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			return f(v), nil
		}}, nil
	}
	switch t.name {
	case "log":
		x, err := b.lower(t.args[0])
		if err != nil || x.kind != nkNum {
			return nlowered{}, bindErrf("log: non-numeric argument")
		}
		xf := x.num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			v, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			if v <= 0 {
				return 0, evalErrf("log: non-positive argument %v", v)
			}
			return math.Log(v), nil
		}}, nil
	case "pow":
		x, err := b.lower(t.args[0])
		if err != nil || x.kind != nkNum {
			return nlowered{}, bindErrf("pow: non-numeric argument")
		}
		y, err := b.lower(t.args[1])
		if err != nil || y.kind != nkNum {
			return nlowered{}, bindErrf("pow: non-numeric argument")
		}
		xf, yf := x.num, y.num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			xv, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			yv, err := yf(s, h)
			if err != nil {
				return 0, err
			}
			return math.Pow(xv, yv), nil
		}}, nil
	case "min", "max", "sum", "avg", "stddev", "len":
		args, err := b.lowerStreams(t.name, t.args)
		if err != nil {
			return nlowered{}, err
		}
		return b.lowerAggregate(t.name, args)
	case "clamp":
		args, err := b.lowerStreams("clamp", t.args)
		if err != nil {
			return nlowered{}, err
		}
		for _, a := range args {
			if a.num == nil {
				return nlowered{}, bindErrf("clamp: list argument")
			}
		}
		xf, lof, hif := args[0].num, args[1].num, args[2].num
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			x, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			lo, err := lof(s, h)
			if err != nil {
				return 0, err
			}
			hi, err := hif(s, h)
			if err != nil {
				return 0, err
			}
			if lo > hi {
				return 0, evalErrf("clamp: lo %v > hi %v", lo, hi)
			}
			return math.Max(lo, math.Min(hi, x)), nil
		}}, nil
	case "if":
		c, err := b.lower(t.args[0])
		if err != nil || c.kind != nkBool {
			return nlowered{}, bindErrf("if: non-bool condition")
		}
		a, err := b.lower(t.args[1])
		if err != nil || a.kind != nkNum {
			return nlowered{}, bindErrf("if: non-numeric branch")
		}
		e, err := b.lower(t.args[2])
		if err != nil || e.kind != nkNum {
			return nlowered{}, bindErrf("if: non-numeric branch")
		}
		cf, af, ef := c.b, a.num, e.num
		// The builtin form is eager: all three arguments evaluate, in
		// order, before the selection (matching the Env path).
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			cv, err := cf(s, h)
			if err != nil {
				return 0, err
			}
			av, err := af(s, h)
			if err != nil {
				return 0, err
			}
			ev, err := ef(s, h)
			if err != nil {
				return 0, err
			}
			if cv {
				return av, nil
			}
			return ev, nil
		}}, nil
	}
	// median (sorts, allocates) and anything else: Env path.
	return nlowered{}, bindErrf("builtin %q has no fast path", t.name)
}

func (b *binder) lowerAggregate(name string, args []numStream) (nlowered, error) {
	switch name {
	case "len":
		// len takes exactly one argument; on a scalar the Env path
		// errors ("no length"), so only sequences bind.
		if args[0].seq == nil {
			return nlowered{}, bindErrf("len: scalar argument")
		}
		xf := args[0].seq
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			xs, err := xf(s, h)
			if err != nil {
				return 0, err
			}
			return float64(len(xs)), nil
		}}, nil
	case "min", "max":
		useMin := name == "min"
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			m, first := 0.0, true
			n, err := walkStreams(args, s, h, func(v float64) {
				if first {
					m, first = v, false
				} else if useMin {
					m = math.Min(m, v)
				} else {
					m = math.Max(m, v)
				}
			})
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, evalErrf("%s: no values", name)
			}
			return m, nil
		}}, nil
	case "sum", "avg":
		isAvg := name == "avg"
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			total := 0.0
			n, err := walkStreams(args, s, h, func(v float64) { total += v })
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, evalErrf("%s: no values", name)
			}
			if isAvg {
				return total / float64(n), nil
			}
			return total, nil
		}}, nil
	case "stddev":
		return nlowered{kind: nkNum, num: func(s []float64, h [][]float64) (float64, error) {
			total := 0.0
			n, err := walkStreams(args, s, h, func(v float64) { total += v })
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, evalErrf("stddev: no values")
			}
			mean := total / float64(n)
			varsum := 0.0
			if _, err := walkStreams(args, s, h, func(v float64) {
				d := v - mean
				varsum += d * d
			}); err != nil {
				return 0, err
			}
			return math.Sqrt(varsum / float64(n)), nil
		}}, nil
	}
	return nlowered{}, bindErrf("aggregate %q has no fast path", name)
}
