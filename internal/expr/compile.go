package expr

import (
	"sort"
	"sync"
)

// This file is the compilation backend: it lowers the parsed AST into
// slot-resolved closures. Compilation resolves every identifier to an
// integer slot and every call to a builtin-table index, folds constant
// subtrees (deferring any runtime error they would raise so laziness is
// preserved), and emits a tree of small closures that evaluate with no
// map lookups. Program.Eval prefetches the environment into a pooled
// slot array once and runs the closure tree; the original tree walker
// survives as the differential-testing oracle (evalReference).

// machine is the per-evaluation state of a compiled program: one Value
// slot per distinct identifier, with a bound flag distinguishing "absent
// from env" from "bound to nil". Machines are pooled across evaluations.
type machine struct {
	slots []Value
	bound []bool
}

var machinePool = sync.Pool{New: func() any { return new(machine) }}

func (m *machine) reset(n int) {
	if cap(m.slots) < n {
		m.slots = make([]Value, n)
		m.bound = make([]bool, n)
		return
	}
	m.slots = m.slots[:n]
	m.bound = m.bound[:n]
	for i := range m.bound {
		m.bound[i] = false
	}
}

// release drops slot references (they may alias caller data) and returns
// the machine to the pool.
func (m *machine) release() {
	for i := range m.slots {
		m.slots[i] = nil
	}
	machinePool.Put(m)
}

// genFn is one compiled node: evaluate against the machine's slots.
type genFn func(m *machine) (Value, error)

// lowered is the result of lowering one node. konst marks subtrees whose
// outcome is fully determined at compile time — either a value or the
// error evaluation would deterministically raise (kept lazy inside the
// closure so dead branches still never error).
type lowered struct {
	fn    genFn
	val   Value
	err   error
	konst bool
}

func constOf(v Value) lowered {
	return lowered{konst: true, val: v, fn: func(*machine) (Value, error) { return v, nil }}
}

func constErr(err error) lowered {
	return lowered{konst: true, err: err, fn: func(*machine) (Value, error) { return nil, err }}
}

func fromApply(v Value, err error) lowered {
	if err != nil {
		return constErr(err)
	}
	return constOf(v)
}

// leadingErr scans children in evaluation order: if evaluation would
// deterministically hit a constant error before any non-constant work, it
// reports that error. ok=false otherwise (including "all constant, no
// error" — allKonst distinguishes that case).
func leadingErr(children []lowered) (error, bool) {
	for _, c := range children {
		if !c.konst {
			return nil, false
		}
		if c.err != nil {
			return c.err, true
		}
	}
	return nil, false
}

func allKonst(children []lowered) bool {
	for _, c := range children {
		if !c.konst || c.err != nil {
			return false
		}
	}
	return true
}

// newProgram lowers a parsed tree into a compiled Program.
func newProgram(source string, root node) *Program {
	set := map[string]bool{}
	collectVars(root, set)
	slots := make([]string, 0, len(set))
	for name := range set {
		slots = append(slots, name)
	}
	sort.Strings(slots)
	slotOf := make(map[string]int, len(slots))
	for i, name := range slots {
		slotOf[name] = i
	}
	vars := make([]string, 0, len(slots))
	for _, name := range slots {
		if _, isConst := constants[name]; !isConst {
			vars = append(vars, name)
		}
	}
	p := &Program{source: source, root: root, slots: slots, slotOf: slotOf, vars: vars}
	p.code = lower(root, p).fn
	return p
}

func lower(n node, p *Program) lowered {
	switch t := n.(type) {
	case numberNode:
		return constOf(t.val)
	case stringNode:
		return constOf(t.val)
	case boolNode:
		return constOf(t.val)
	case identNode:
		// Never constant: the env may rebind even named constants.
		slot := p.slotOf[t.name]
		name := t.name
		return lowered{fn: func(m *machine) (Value, error) {
			if !m.bound[slot] {
				return nil, evalErrf("unbound variable %q", name)
			}
			return normalizeValue(m.slots[slot])
		}}
	case listNode:
		kids := make([]lowered, len(t.elems))
		for i, e := range t.elems {
			kids[i] = lower(e, p)
		}
		if err, ok := leadingErr(kids); ok {
			return constErr(err)
		}
		if allKonst(kids) {
			out := make([]Value, len(kids))
			for i, k := range kids {
				out[i] = k.val
			}
			return constOf(out)
		}
		fns := childFns(kids)
		return lowered{fn: func(m *machine) (Value, error) {
			out := make([]Value, len(fns))
			for i, f := range fns {
				v, err := f(m)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}}
	case unaryNode:
		x := lower(t.x, p)
		if x.konst {
			if x.err != nil {
				return constErr(x.err)
			}
			return fromApply(applyUnary(t.op, x.val))
		}
		op, xfn := t.op, x.fn
		return lowered{fn: func(m *machine) (Value, error) {
			v, err := xfn(m)
			if err != nil {
				return nil, err
			}
			return applyUnary(op, v)
		}}
	case binaryNode:
		if t.op == tokAnd || t.op == tokOr {
			return lowerLogical(t, p)
		}
		l, r := lower(t.l, p), lower(t.r, p)
		if err, ok := leadingErr([]lowered{l, r}); ok {
			return constErr(err)
		}
		if allKonst([]lowered{l, r}) {
			return fromApply(applyBinary(t.op, l.val, r.val))
		}
		op, lfn, rfn := t.op, l.fn, r.fn
		return lowered{fn: func(m *machine) (Value, error) {
			lv, err := lfn(m)
			if err != nil {
				return nil, err
			}
			rv, err := rfn(m)
			if err != nil {
				return nil, err
			}
			return applyBinary(op, lv, rv)
		}}
	case condNode:
		c := lower(t.cond, p)
		if c.konst {
			if c.err != nil {
				return constErr(c.err)
			}
			b, ok := c.val.(bool)
			if !ok {
				return constErr(evalErrf("condition yielded %T, want bool", c.val))
			}
			// Fold the branch away entirely; the dead arm is never
			// lowered into the closure tree.
			if b {
				return lower(t.then, p)
			}
			return lower(t.els, p)
		}
		cfn := c.fn
		tfn, efn := lower(t.then, p).fn, lower(t.els, p).fn
		return lowered{fn: func(m *machine) (Value, error) {
			cv, err := cfn(m)
			if err != nil {
				return nil, err
			}
			b, ok := cv.(bool)
			if !ok {
				return nil, evalErrf("condition yielded %T, want bool", cv)
			}
			if b {
				return tfn(m)
			}
			return efn(m)
		}}
	case callNode:
		// Unknown-function and arity errors precede argument
		// evaluation, exactly as in the tree walker.
		idx, err := checkArity(t.name, len(t.args))
		if err != nil {
			return constErr(err)
		}
		kids := make([]lowered, len(t.args))
		for i, a := range t.args {
			kids[i] = lower(a, p)
		}
		if err, ok := leadingErr(kids); ok {
			return constErr(err)
		}
		bi := builtinTable[idx]
		if allKonst(kids) {
			args := make([]Value, len(kids))
			for i, k := range kids {
				args[i] = k.val
			}
			return fromApply(bi.apply(args))
		}
		fns := childFns(kids)
		return lowered{fn: func(m *machine) (Value, error) {
			args := make([]Value, len(fns))
			for i, f := range fns {
				v, err := f(m)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return bi.apply(args)
		}}
	case indexNode:
		x, idx := lower(t.x, p), lower(t.idx, p)
		if err, ok := leadingErr([]lowered{x, idx}); ok {
			return constErr(err)
		}
		if allKonst([]lowered{x, idx}) {
			return fromApply(applyIndex(x.val, idx.val))
		}
		xfn, ifn := x.fn, idx.fn
		return lowered{fn: func(m *machine) (Value, error) {
			xv, err := xfn(m)
			if err != nil {
				return nil, err
			}
			iv, err := ifn(m)
			if err != nil {
				return nil, err
			}
			return applyIndex(xv, iv)
		}}
	default:
		return constErr(evalErrf("internal: unknown node %T", n))
	}
}

// lowerLogical compiles && and || preserving lazy right-operand
// evaluation and short-circuit semantics through constant folding.
func lowerLogical(t binaryNode, p *Program) lowered {
	isAnd := t.op == tokAnd
	opText := binaryOpText[t.op]
	l := lower(t.l, p)
	coerceR := func(r lowered) lowered {
		if r.konst {
			if r.err != nil {
				return constErr(r.err)
			}
			rb, ok := r.val.(bool)
			if !ok {
				return constErr(evalErrf("%s on %T", opText, r.val))
			}
			return constOf(rb)
		}
		rfn := r.fn
		return lowered{fn: func(m *machine) (Value, error) {
			rv, err := rfn(m)
			if err != nil {
				return nil, err
			}
			rb, ok := rv.(bool)
			if !ok {
				return nil, evalErrf("%s on %T", opText, rv)
			}
			return rb, nil
		}}
	}
	if l.konst {
		if l.err != nil {
			return constErr(l.err)
		}
		lb, ok := l.val.(bool)
		if !ok {
			return constErr(evalErrf("%s on %T", opText, l.val))
		}
		if isAnd && !lb {
			return constOf(false)
		}
		if !isAnd && lb {
			return constOf(true)
		}
		// Left operand is the logical identity: the result is the
		// right operand coerced to bool.
		return coerceR(lower(t.r, p))
	}
	lfn := l.fn
	rfn := lower(t.r, p).fn
	return lowered{fn: func(m *machine) (Value, error) {
		lv, err := lfn(m)
		if err != nil {
			return nil, err
		}
		lb, ok := lv.(bool)
		if !ok {
			return nil, evalErrf("%s on %T", opText, lv)
		}
		if isAnd && !lb {
			return false, nil
		}
		if !isAnd && lb {
			return true, nil
		}
		rv, err := rfn(m)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(bool)
		if !ok {
			return nil, evalErrf("%s on %T", opText, rv)
		}
		return rb, nil
	}}
}

func childFns(kids []lowered) []genFn {
	fns := make([]genFn, len(kids))
	for i, k := range kids {
		fns[i] = k.fn
	}
	return fns
}
