package expr

import (
	"math"
	"sort"
)

// builtin is a library function: validated arity, then applied to values.
type builtin struct {
	minArgs int
	maxArgs int // -1 = variadic
	apply   func(args []Value) (Value, error)
}

// numbersOf flattens arguments into a float64 slice; a single list argument
// spreads, so avg(values) and avg(a, b, c) both work.
func numbersOf(name string, args []Value) ([]float64, error) {
	var out []float64
	var walk func(v Value) error
	walk = func(v Value) error {
		switch x := v.(type) {
		case float64:
			out = append(out, x)
			return nil
		case []Value:
			for _, e := range x {
				if err := walk(e); err != nil {
					return err
				}
			}
			return nil
		default:
			return evalErrf("%s: argument %T is not numeric", name, v)
		}
	}
	for _, a := range args {
		if err := walk(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func oneNumber(name string, args []Value) (float64, error) {
	f, ok := args[0].(float64)
	if !ok {
		return 0, evalErrf("%s: argument is %T, want number", name, args[0])
	}
	return f, nil
}

func numericFn(f func(float64) float64) builtin {
	return builtin{minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		x, err := oneNumber("fn", args)
		if err != nil {
			return nil, err
		}
		return f(x), nil
	}}
}

func aggregateFn(name string, f func([]float64) (float64, error)) builtin {
	return builtin{minArgs: 1, maxArgs: -1, apply: func(args []Value) (Value, error) {
		xs, err := numbersOf(name, args)
		if err != nil {
			return nil, err
		}
		if len(xs) == 0 {
			return nil, evalErrf("%s: no values", name)
		}
		return f(xs)
	}}
}

var builtins = map[string]builtin{
	"abs":   numericFn(math.Abs),
	"sqrt":  numericFn(math.Sqrt),
	"floor": numericFn(math.Floor),
	"ceil":  numericFn(math.Ceil),
	"round": numericFn(math.Round),
	"sin":   numericFn(math.Sin),
	"cos":   numericFn(math.Cos),
	"tan":   numericFn(math.Tan),
	"exp":   numericFn(math.Exp),
	"log": {minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		x, err := oneNumber("log", args)
		if err != nil {
			return nil, err
		}
		if x <= 0 {
			return nil, evalErrf("log: non-positive argument %v", x)
		}
		return math.Log(x), nil
	}},
	"pow": {minArgs: 2, maxArgs: 2, apply: func(args []Value) (Value, error) {
		x, xok := args[0].(float64)
		y, yok := args[1].(float64)
		if !xok || !yok {
			return nil, evalErrf("pow: want two numbers")
		}
		return math.Pow(x, y), nil
	}},
	"min": aggregateFn("min", func(xs []float64) (float64, error) {
		m := xs[0]
		for _, x := range xs[1:] {
			m = math.Min(m, x)
		}
		return m, nil
	}),
	"max": aggregateFn("max", func(xs []float64) (float64, error) {
		m := xs[0]
		for _, x := range xs[1:] {
			m = math.Max(m, x)
		}
		return m, nil
	}),
	"sum": aggregateFn("sum", func(xs []float64) (float64, error) {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s, nil
	}),
	"avg": aggregateFn("avg", func(xs []float64) (float64, error) {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs)), nil
	}),
	"median": aggregateFn("median", func(xs []float64) (float64, error) {
		s := append([]float64{}, xs...)
		sort.Float64s(s)
		n := len(s)
		if n%2 == 1 {
			return s[n/2], nil
		}
		return (s[n/2-1] + s[n/2]) / 2, nil
	}),
	"stddev": aggregateFn("stddev", func(xs []float64) (float64, error) {
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varsum := 0.0
		for _, x := range xs {
			d := x - mean
			varsum += d * d
		}
		return math.Sqrt(varsum / float64(len(xs))), nil
	}),
	"clamp": {minArgs: 3, maxArgs: 3, apply: func(args []Value) (Value, error) {
		xs, err := numbersOf("clamp", args)
		if err != nil {
			return nil, err
		}
		if len(xs) != 3 {
			return nil, evalErrf("clamp: want (x, lo, hi)")
		}
		x, lo, hi := xs[0], xs[1], xs[2]
		if lo > hi {
			return nil, evalErrf("clamp: lo %v > hi %v", lo, hi)
		}
		return math.Max(lo, math.Min(hi, x)), nil
	}},
	"len": {minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		switch x := args[0].(type) {
		case []Value:
			return float64(len(x)), nil
		case string:
			return float64(len(x)), nil
		default:
			return nil, evalErrf("len: argument %T has no length", args[0])
		}
	}},
	// if(cond, a, b) — eager functional form of ?: for readability.
	"if": {minArgs: 3, maxArgs: 3, apply: func(args []Value) (Value, error) {
		c, ok := args[0].(bool)
		if !ok {
			return nil, evalErrf("if: condition is %T, want bool", args[0])
		}
		if c {
			return args[1], nil
		}
		return args[2], nil
	}},
	// c2f / f2c — unit conversions common in the paper's temperature
	// aggregation scenario.
	"c2f": numericFn(func(c float64) float64 { return c*9/5 + 32 }),
	"f2c": numericFn(func(f float64) float64 { return (f - 32) * 5 / 9 }),
}

// Builtins lists the available function names, sorted (documentation and
// browser help).
func Builtins() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func evalCall(t callNode, env Env) (Value, error) {
	fn, ok := builtins[t.name]
	if !ok {
		return nil, evalErrf("unknown function %q", t.name)
	}
	if len(t.args) < fn.minArgs {
		return nil, evalErrf("%s: want at least %d argument(s), got %d", t.name, fn.minArgs, len(t.args))
	}
	if fn.maxArgs >= 0 && len(t.args) > fn.maxArgs {
		return nil, evalErrf("%s: want at most %d argument(s), got %d", t.name, fn.maxArgs, len(t.args))
	}
	args := make([]Value, len(t.args))
	for i, a := range t.args {
		v, err := eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.apply(args)
}
