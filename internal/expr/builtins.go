package expr

import (
	"math"
	"sort"
)

// builtin is a library function: validated arity, then applied to values.
// Builtins live in a dense table so compiled programs dispatch by integer
// index instead of a map lookup per call.
type builtin struct {
	name    string
	minArgs int
	maxArgs int // -1 = variadic
	apply   func(args []Value) (Value, error)
}

// numbersOf flattens arguments into a float64 slice; a single list argument
// spreads, so avg(values) and avg(a, b, c) both work.
func numbersOf(name string, args []Value) ([]float64, error) {
	var out []float64
	var walk func(v Value) error
	walk = func(v Value) error {
		switch x := v.(type) {
		case float64:
			out = append(out, x)
			return nil
		case []Value:
			for _, e := range x {
				if err := walk(e); err != nil {
					return err
				}
			}
			return nil
		default:
			return evalErrf("%s: argument %T is not numeric", name, v)
		}
	}
	for _, a := range args {
		if err := walk(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func oneNumber(name string, args []Value) (float64, error) {
	f, ok := args[0].(float64)
	if !ok {
		return 0, evalErrf("%s: argument is %T, want number", name, args[0])
	}
	return f, nil
}

func numericFn(name string, f func(float64) float64) builtin {
	return builtin{name: name, minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		x, err := oneNumber("fn", args)
		if err != nil {
			return nil, err
		}
		return f(x), nil
	}}
}

func aggregateFn(name string, f func([]float64) (float64, error)) builtin {
	return builtin{name: name, minArgs: 1, maxArgs: -1, apply: func(args []Value) (Value, error) {
		xs, err := numbersOf(name, args)
		if err != nil {
			return nil, err
		}
		if len(xs) == 0 {
			return nil, evalErrf("%s: no values", name)
		}
		return f(xs)
	}}
}

// num1Fns are the single-argument numeric builtins, shared between the
// generic table and the typed float64 fast path (numfast.go).
var num1Fns = map[string]func(float64) float64{
	"abs":   math.Abs,
	"sqrt":  math.Sqrt,
	"floor": math.Floor,
	"ceil":  math.Ceil,
	"round": math.Round,
	"sin":   math.Sin,
	"cos":   math.Cos,
	"tan":   math.Tan,
	"exp":   math.Exp,
	// c2f / f2c — unit conversions common in the paper's temperature
	// aggregation scenario.
	"c2f": func(c float64) float64 { return c*9/5 + 32 },
	"f2c": func(f float64) float64 { return (f - 32) * 5 / 9 },
}

var builtinTable = []builtin{
	numericFn("abs", num1Fns["abs"]),
	numericFn("sqrt", num1Fns["sqrt"]),
	numericFn("floor", num1Fns["floor"]),
	numericFn("ceil", num1Fns["ceil"]),
	numericFn("round", num1Fns["round"]),
	numericFn("sin", num1Fns["sin"]),
	numericFn("cos", num1Fns["cos"]),
	numericFn("tan", num1Fns["tan"]),
	numericFn("exp", num1Fns["exp"]),
	{name: "log", minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		x, err := oneNumber("log", args)
		if err != nil {
			return nil, err
		}
		if x <= 0 {
			return nil, evalErrf("log: non-positive argument %v", x)
		}
		return math.Log(x), nil
	}},
	{name: "pow", minArgs: 2, maxArgs: 2, apply: func(args []Value) (Value, error) {
		x, xok := args[0].(float64)
		y, yok := args[1].(float64)
		if !xok || !yok {
			return nil, evalErrf("pow: want two numbers")
		}
		return math.Pow(x, y), nil
	}},
	aggregateFn("min", func(xs []float64) (float64, error) {
		m := xs[0]
		for _, x := range xs[1:] {
			m = math.Min(m, x)
		}
		return m, nil
	}),
	aggregateFn("max", func(xs []float64) (float64, error) {
		m := xs[0]
		for _, x := range xs[1:] {
			m = math.Max(m, x)
		}
		return m, nil
	}),
	aggregateFn("sum", func(xs []float64) (float64, error) {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s, nil
	}),
	aggregateFn("avg", func(xs []float64) (float64, error) {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs)), nil
	}),
	aggregateFn("median", func(xs []float64) (float64, error) {
		s := append([]float64{}, xs...)
		sort.Float64s(s)
		n := len(s)
		if n%2 == 1 {
			return s[n/2], nil
		}
		return (s[n/2-1] + s[n/2]) / 2, nil
	}),
	aggregateFn("stddev", func(xs []float64) (float64, error) {
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varsum := 0.0
		for _, x := range xs {
			d := x - mean
			varsum += d * d
		}
		return math.Sqrt(varsum / float64(len(xs))), nil
	}),
	{name: "clamp", minArgs: 3, maxArgs: 3, apply: func(args []Value) (Value, error) {
		xs, err := numbersOf("clamp", args)
		if err != nil {
			return nil, err
		}
		if len(xs) != 3 {
			return nil, evalErrf("clamp: want (x, lo, hi)")
		}
		x, lo, hi := xs[0], xs[1], xs[2]
		if lo > hi {
			return nil, evalErrf("clamp: lo %v > hi %v", lo, hi)
		}
		return math.Max(lo, math.Min(hi, x)), nil
	}},
	{name: "len", minArgs: 1, maxArgs: 1, apply: func(args []Value) (Value, error) {
		switch x := args[0].(type) {
		case []Value:
			return float64(len(x)), nil
		case string:
			return float64(len(x)), nil
		default:
			return nil, evalErrf("len: argument %T has no length", args[0])
		}
	}},
	// if(cond, a, b) — eager functional form of ?: for readability.
	{name: "if", minArgs: 3, maxArgs: 3, apply: func(args []Value) (Value, error) {
		c, ok := args[0].(bool)
		if !ok {
			return nil, evalErrf("if: condition is %T, want bool", args[0])
		}
		if c {
			return args[1], nil
		}
		return args[2], nil
	}},
	numericFn("c2f", num1Fns["c2f"]),
	numericFn("f2c", num1Fns["f2c"]),
}

// builtinIndex maps names to builtinTable slots; compilation resolves a
// call site to its index once so evaluation never consults the map.
var builtinIndex = func() map[string]int {
	m := make(map[string]int, len(builtinTable))
	for i, b := range builtinTable {
		m[b.name] = i
	}
	return m
}()

// Builtins lists the available function names, sorted (documentation and
// browser help).
func Builtins() []string {
	out := make([]string, 0, len(builtinTable))
	for _, b := range builtinTable {
		out = append(out, b.name)
	}
	sort.Strings(out)
	return out
}

// checkArity mirrors the eval-time arity validation; compilation performs
// it once per call site, deferring the identical error to evaluation time.
func checkArity(name string, nargs int) (int, error) {
	idx, ok := builtinIndex[name]
	if !ok {
		return 0, evalErrf("unknown function %q", name)
	}
	fn := builtinTable[idx]
	if nargs < fn.minArgs {
		return 0, evalErrf("%s: want at least %d argument(s), got %d", name, fn.minArgs, nargs)
	}
	if fn.maxArgs >= 0 && nargs > fn.maxArgs {
		return 0, evalErrf("%s: want at most %d argument(s), got %d", name, fn.maxArgs, nargs)
	}
	return idx, nil
}

func evalCall(t callNode, env Env) (Value, error) {
	idx, err := checkArity(t.name, len(t.args))
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(t.args))
	for i, a := range t.args {
		v, err := eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return builtinTable[idx].apply(args)
}
