//go:build race

package expr

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are skipped (instrumentation allocates).
const raceEnabled = true
