package repl

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/space"
)

// coordTerm keeps coordination tests snappy while leaving headroom for
// slow CI machines.
const coordTerm = 100 * time.Millisecond

// newCoordRegistry hosts coordination leases for the tests.
func newCoordRegistry(t *testing.T) *registry.LookupService {
	t.Helper()
	l := registry.New("lus", clockwork.Real(),
		registry.WithCoordLeasePolicy(lease.Policy{Max: time.Minute, Min: time.Millisecond}))
	t.Cleanup(l.Close)
	return l
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startCoordinator(t *testing.T, name string, lus *registry.LookupService, r *Router) *Coordinator {
	t.Helper()
	c := NewCoordinator(name, clockwork.Real(), lus, r, CoordinatorConfig{
		Term:     coordTerm,
		Interval: 5 * time.Millisecond,
		Misses:   3,
	})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestCoordinatorLeaderRunsFailover(t *testing.T) {
	r, a, b := newTestRouter(t)
	lus := newCoordRegistry(t)
	c := startCoordinator(t, "coord-1", lus, r)

	waitFor(t, "leadership", func() bool { _, ok := c.Leading(); return ok })
	if _, err := r.Write(space.NewEntry("job", "n", float64(1)), nil, time.Hour); err != nil {
		t.Fatalf("write: %v", err)
	}
	a.Kill()
	waitFor(t, "failover to backup", func() bool { return r.Shard("s0").Primary() == b })
	// The acked write survived the promotion.
	if _, err := r.Read(space.NewEntry("job", "n", float64(1)), nil, time.Second); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	tok, _ := c.Leading()
	if got := r.Shard("s0").Gen(); got != tok {
		t.Fatalf("shard gen = %d, want leader token %d", got, tok)
	}
}

func TestStandbyTakesOverAfterLeaderDies(t *testing.T) {
	r, _, _ := newTestRouter(t)
	lus := newCoordRegistry(t)
	c1 := startCoordinator(t, "coord-1", lus, r)
	c2 := startCoordinator(t, "coord-2", lus, r)

	waitFor(t, "a first leader", func() bool {
		_, ok1 := c1.Leading()
		_, ok2 := c2.Leading()
		return ok1 || ok2
	})
	leader, standby := c1, c2
	if _, ok := c2.Leading(); ok {
		leader, standby = c2, c1
	}
	oldTok, _ := leader.Leading()

	// An unclean death: the lease lapses and the standby must win the
	// next contest within a term or two.
	leader.Kill()
	waitFor(t, "standby takeover", func() bool { _, ok := standby.Leading(); return ok })
	newTok, _ := standby.Leading()
	if newTok <= oldTok {
		t.Fatalf("successor token %d does not dominate deposed %d", newTok, oldTok)
	}
	if got := r.Gen(); got != newTok {
		t.Fatalf("router gen = %d, want %d", got, newTok)
	}
}

func TestOrderlyStopHandsOverImmediately(t *testing.T) {
	r, _, _ := newTestRouter(t)
	lus := newCoordRegistry(t)
	c1 := startCoordinator(t, "coord-1", lus, r)
	waitFor(t, "leadership", func() bool { _, ok := c1.Leading(); return ok })
	c1.Stop()

	// The lease was cancelled, so a fresh replica wins its first bid
	// without waiting out the term.
	c2 := startCoordinator(t, "coord-2", lus, r)
	waitFor(t, "successor leadership", func() bool { _, ok := c2.Leading(); return ok })
}

func TestDeposedCoordinatorDecisionsBounce(t *testing.T) {
	r, _, b := newTestRouter(t)
	if err := r.AdoptCoordinator(2); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	// Every coordinator op under an older generation bounces stale.
	if _, err := r.FailoverAs(1, "s0"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale FailoverAs = %v, want ErrStaleEpoch", err)
	}
	if err := r.DetachAs(1, "s0"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale DetachAs = %v, want ErrStaleEpoch", err)
	}
	if err := r.ReattachAs(1, "s0"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale ReattachAs = %v, want ErrStaleEpoch", err)
	}
	if _, err := r.ReviveAs(1, "s0"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale ReviveAs = %v, want ErrStaleEpoch", err)
	}
	// An adoption moving backwards bounces too.
	if err := r.AdoptCoordinator(1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale adopt = %v, want ErrStaleEpoch", err)
	}
	// The current generation still works, and bumps the epoch.
	before := r.Shard("s0").Epoch()
	if _, err := r.FailoverAs(2, "s0"); err != nil {
		t.Fatalf("current-gen FailoverAs: %v", err)
	}
	if r.Shard("s0").Primary() != b || r.Shard("s0").Epoch() != before+1 {
		t.Fatal("current-gen failover did not take effect")
	}
}

func TestShardMapCarriesCoordinatorGeneration(t *testing.T) {
	r, _, _ := newTestRouter(t)
	lus := newCoordRegistry(t)
	if _, _, err := PublishShardMap(lus, "spaces", r, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := r.AdoptCoordinator(7); err != nil {
		t.Fatal(err)
	}
	infos, err := LookupShardMap(lus, "spaces")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Gen != 7 {
		t.Fatalf("published shard map = %+v, want one shard at gen 7", infos)
	}
}
