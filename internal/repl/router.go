package repl

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/space"
	"sensorcer/internal/txn"
)

// Router is the shard-aware front door to a replicated exertion space:
// entry kinds are consistent-hashed onto shards, each shard a
// primary/backup Node pair, and every space operation is routed to the
// owning shard's current primary. The Router is also the coordinator —
// the single authority that orders membership changes and mints the
// fencing epochs the data path checks.
//
// When an operation fails for a reason a failover can cure
// (IsFailoverErr), the Router parks it until the shard's configuration
// changes and retries against the new primary, so Spacers and workers
// see a shard failover as a transient retry instead of an outage. The
// retry preserves the federation's at-least-once envelope contract: an
// operation that was acknowledged is durable on both replicas; one that
// failed over mid-flight is simply re-run.
type Router struct {
	clock clockwork.Clock
	// writeWindow bounds how long a non-blocking operation (Write,
	// WriteBatch, Count) rides out a failover before giving up.
	writeWindow time.Duration

	shards []*Shard
	ring   []ringPoint

	mu       sync.Mutex
	gen      uint64 // adopted coordinator generation (fencing token)
	closed   chan struct{}
	isClosed bool
	onChange func()

	monitors sync.WaitGroup
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard *Shard
}

// ringVnodes is how many ring points each shard claims; enough to
// spread kinds evenly across a handful of shards.
const ringVnodes = 64

// Shard is one replicated slice of the keyspace: a primary serving a
// tuple space, an optional backup receiving its journal, and the
// shard's current fencing epoch.
type Shard struct {
	name string

	// coordMu serializes membership changes (failover, reattach,
	// detach), which block on promotion or catch-up; mu only guards the
	// published state and is never held across node calls.
	coordMu sync.Mutex

	mu       sync.Mutex
	gen      uint64 // coordinator generation (fencing token) of the last accepted decision
	epoch    uint64
	primary  *Node
	backup   *Node // the other replica; attached as follower unless solo
	attached bool  // backup is live and receiving ships
	sp       *space.Space
	down     bool
	reconfig chan struct{} // closed (and replaced) on every config change
}

// Name returns the shard's name.
func (sh *Shard) Name() string { return sh.name }

// current returns the space to operate on, the channel that closes on
// the next reconfiguration, and whether the shard is down.
func (sh *Shard) current() (*space.Space, <-chan struct{}, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sp, sh.reconfig, sh.down
}

// publishLocked installs a new configuration and wakes parked
// operations. Caller holds sh.mu.
func (sh *Shard) publishLocked() {
	close(sh.reconfig)
	sh.reconfig = make(chan struct{})
}

// Epoch returns the shard's current fencing epoch.
func (sh *Shard) Epoch() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.epoch
}

// Gen returns the coordinator generation of the shard's last accepted
// coordination decision.
func (sh *Shard) Gen() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.gen
}

// requireCoordGen fences a coordinator decision against the shard: a
// decision carrying a generation below the shard's recorded one comes
// from a deposed coordinator and bounces with ErrStaleEpoch, exactly
// like a stale primary's ship does; a newer generation is adopted.
// Decisions are therefore ordered lexicographically by (generation,
// epoch) — the coordination lease's fencing token dominates every epoch
// the holder mints. Must be called (and must succeed) before any
// membership mutation or shard-map publication.
func (sh *Shard) requireCoordGen(gen uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if gen < sh.gen {
		return fmt.Errorf("%w: coordinator generation %d superseded by %d on shard %q", ErrStaleEpoch, gen, sh.gen, sh.name)
	}
	sh.gen = gen
	return nil
}

// Primary returns the node currently serving the shard.
func (sh *Shard) Primary() *Node {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.primary
}

// Backup returns the shard's other replica (attached or not).
func (sh *Shard) Backup() *Node {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.backup
}

// BackupAttached reports whether the backup is receiving ships (false
// means the primary runs solo).
func (sh *Shard) BackupAttached() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.attached
}

// ShardSpec names the replica pair for one shard at construction.
type ShardSpec struct {
	Name    string
	Primary *Node
	Backup  *Node // optional; nil runs the shard unreplicated
}

// RouterOption customizes a Router.
type RouterOption func(*Router)

// WithWriteWindow bounds how long non-blocking operations ride out a
// failover (default 10s).
func WithWriteWindow(d time.Duration) RouterOption {
	return func(r *Router) { r.writeWindow = d }
}

// NewRouter brings up every shard — promoting each primary at epoch 1
// and attaching its backup at epoch 2 — and returns the routing front
// door. The caller owns the nodes' lifecycles beyond Close.
func NewRouter(clock clockwork.Clock, specs []ShardSpec, opts ...RouterOption) (*Router, error) {
	if len(specs) == 0 {
		return nil, ErrNoShards
	}
	r := &Router{
		clock:       clock,
		writeWindow: 10 * time.Second,
		closed:      make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	for _, spec := range specs {
		sh := &Shard{name: spec.Name, primary: spec.Primary, backup: spec.Backup, reconfig: make(chan struct{})}
		sp, err := spec.Primary.Promote(1)
		if err != nil {
			return nil, fmt.Errorf("repl: bringing up shard %q: %w", spec.Name, err)
		}
		sh.sp = sp
		sh.epoch = 1
		if spec.Backup != nil {
			sp, err = spec.Primary.AttachBackup(2, spec.Backup, false)
			if err != nil {
				return nil, fmt.Errorf("repl: attaching backup of shard %q: %w", spec.Name, err)
			}
			sh.sp = sp
			sh.epoch = 2
			sh.attached = true
		}
		r.shards = append(r.shards, sh)
		for v := 0; v < ringVnodes; v++ {
			r.ring = append(r.ring, ringPoint{hash: hashRing(fmt.Sprintf("%s#%d", spec.Name, v)), shard: sh})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r, nil
}

// hashRing is the ring's hash function (FNV-1a, stable across runs).
func hashRing(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// ShardFor returns the shard owning an entry kind.
func (r *Router) ShardFor(kind string) *Shard {
	h := hashRing(kind)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Shards returns the router's shards (coordination and inspection).
func (r *Router) Shards() []*Shard { return r.shards }

// Shard returns the shard with the given name, or nil.
func (r *Router) Shard(name string) *Shard {
	for _, sh := range r.shards {
		if sh.name == name {
			return sh
		}
	}
	return nil
}

// OnChange registers a callback invoked after every membership change —
// the registry's shard-map publication hooks in here.
func (r *Router) OnChange(fn func()) {
	r.mu.Lock()
	r.onChange = fn
	r.mu.Unlock()
}

// notify fires the membership-change callback. It must be called with no
// shard's coordMu held: the callback is arbitrary user code (in-tree it
// cancels leases over RPC and deregisters from the lookup service), and
// running it inside the coordination critical section would let one slow
// observer wedge every subsequent failover on the shard — the exact
// coupling deepblock exists to flag. The coordinator methods therefore
// publish the new configuration, release coordMu, and only then notify.
func (r *Router) notify() {
	r.mu.Lock()
	fn := r.onChange
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// --- coordination: the epoch authority ---

// Gen returns the router's adopted coordinator generation: the fencing
// token of the coordination-lease holder it last accepted a decision
// from (zero until a coordinator adopts it).
func (r *Router) Gen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// AdoptCoordinator installs a new coordination-lease holder's fencing
// token as the generation every subsequent decision must carry. Each
// shard's recorded generation is raised under its coordination lock, so
// a deposed holder mid-decision finishes (or bounces) before the
// takeover lands and every later stale-generation decision is refused.
// The republished shard map carries the new generation.
func (r *Router) AdoptCoordinator(token uint64) error {
	for _, sh := range r.shards {
		if err := r.adoptShard(token, sh); err != nil {
			return err
		}
	}
	r.mu.Lock()
	if token > r.gen {
		r.gen = token
	}
	r.mu.Unlock()
	r.notify()
	return nil
}

// adoptShard is AdoptCoordinator's per-shard critical section.
//
//lint:blockok coordinator path: waiting out an in-flight membership change under coordMu is the takeover contract; data-path operations never take coordMu
func (r *Router) adoptShard(token uint64, sh *Shard) error {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	return sh.requireCoordGen(token)
}

// Failover promotes the named shard's backup under the router's adopted
// generation — the convenience form for deployments without replicated
// coordinators (and the failure-detector's own promotion path).
func (r *Router) Failover(name string) (*space.Space, error) {
	return r.FailoverAs(r.Gen(), name)
}

// FailoverAs promotes the named shard's backup and demotes (fences) the
// old primary from the configuration: the new epoch is minted here and
// carried by the promotion, so the old primary's next ship — if it is
// alive at all — is rejected as stale and fences it. gen is the calling
// coordinator's fencing token; a deposed coordinator's call bounces with
// ErrStaleEpoch before touching the shard. Returns the promoted space.
func (r *Router) FailoverAs(gen uint64, name string) (*space.Space, error) {
	sh := r.Shard(name)
	if sh == nil {
		return nil, fmt.Errorf("repl: unknown shard %q", name)
	}
	sp, err := r.failoverShard(gen, sh, name)
	if err == nil {
		r.notify()
	}
	return sp, err
}

// failoverShard is Failover's critical section; the caller notifies after
// coordMu is released.
//
//lint:blockok coordinator path: serializing promotion (log replay, WAL fsync) under coordMu is the failover contract; data-path operations never take coordMu
func (r *Router) failoverShard(gen uint64, sh *Shard, name string) (*space.Space, error) {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	if err := sh.requireCoordGen(gen); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	epoch, oldPrimary, backup, attached := sh.epoch, sh.primary, sh.backup, sh.attached
	sh.mu.Unlock()
	if backup == nil || !attached {
		// Only a backup that was receiving ships at the moment of the
		// failure holds every acknowledged mutation. An unattached spare
		// (parked by an earlier failover, detach or rebalance) has a
		// stale log: promoting it would resurrect taken entries and drop
		// acks, so the shard parks instead — Restart plus Revive of the
		// last primary is the recovery path.
		sh.mu.Lock()
		sh.down = true
		sh.publishLocked()
		sh.mu.Unlock()
		return nil, ErrShardDown
	}
	sp, err := backup.Promote(epoch + 1)
	if err != nil {
		if errors.Is(err, ErrNodeDown) {
			// Double failure: both replicas gone. Park the shard; a Restart
			// plus Reattach/Failover brings it back.
			sh.mu.Lock()
			sh.down = true
			sh.publishLocked()
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrShardDown, err)
		}
		return nil, fmt.Errorf("repl: failing over shard %q: %w", name, err)
	}
	sh.mu.Lock()
	sh.primary, sh.backup = backup, oldPrimary
	sh.attached = false
	sh.sp = sp
	sh.epoch = epoch + 1
	sh.down = false
	sh.publishLocked()
	sh.mu.Unlock()
	return sp, nil
}

// Reattach brings the named shard's spare replica (typically a
// restarted ex-primary) back as the live backup under a fresh epoch.
// The attach always full-resyncs — an ex-primary's log can hold
// unacknowledged records past the divergence point, which no length
// check can detect — and mutations retried by the router ride out the
// catch-up window.
func (r *Router) Reattach(name string) error {
	return r.ReattachAs(r.Gen(), name)
}

// ReattachAs is Reattach fenced by the calling coordinator's generation.
func (r *Router) ReattachAs(gen uint64, name string) error {
	sh := r.Shard(name)
	if sh == nil {
		return fmt.Errorf("repl: unknown shard %q", name)
	}
	published, err := r.reattachShard(gen, sh, name)
	if published {
		r.notify()
	}
	return err
}

// reattachShard is Reattach's critical section. It reports whether a new
// configuration was published (a suspended primary's fresh space publishes
// even when the catch-up fails); the caller notifies after coordMu is
// released.
//
//lint:blockok coordinator path: serializing the attach catch-up (checkpoint, snapshot ship, tail replay) under coordMu is the failover contract; data-path operations never take coordMu
func (r *Router) reattachShard(gen uint64, sh *Shard, name string) (bool, error) {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	if err := sh.requireCoordGen(gen); err != nil {
		return false, err
	}
	sh.mu.Lock()
	epoch, primary, backup := sh.epoch, sh.primary, sh.backup
	sh.mu.Unlock()
	if backup == nil {
		return false, fmt.Errorf("repl: shard %q has no spare replica", name)
	}
	if backup.Role() == RolePrimary {
		// A fenced or superseded ex-primary: reclaim it first.
		if err := backup.Demote(epoch); err != nil {
			return false, fmt.Errorf("repl: demoting ex-primary of shard %q: %w", name, err)
		}
	}
	sp, err := primary.AttachBackup(epoch+1, backup, true)
	published := sp != nil
	if published {
		// A suspended primary re-recovered: publish the fresh space (and
		// epoch) even if the catch-up itself failed, so clients rebind.
		sh.mu.Lock()
		sh.sp = sp
		sh.epoch = epoch + 1
		sh.attached = err == nil
		sh.publishLocked()
		sh.mu.Unlock()
	}
	if err != nil {
		return published, fmt.Errorf("repl: reattaching backup of shard %q: %w", name, err)
	}
	return published, nil
}

// Revive re-promotes the named shard's current primary replica after a
// Restart — the double-failure recovery path. Only the last primary's
// log is guaranteed to hold every acknowledged mutation (the spare was
// detached from the ack path at the failover that made this node
// primary), so only it may serve again; promoting the spare instead
// could resurrect a pre-failover state and lose acks.
func (r *Router) Revive(name string) (*space.Space, error) {
	return r.ReviveAs(r.Gen(), name)
}

// ReviveAs is Revive fenced by the calling coordinator's generation.
func (r *Router) ReviveAs(gen uint64, name string) (*space.Space, error) {
	sh := r.Shard(name)
	if sh == nil {
		return nil, fmt.Errorf("repl: unknown shard %q", name)
	}
	sp, err := r.reviveShard(gen, sh, name)
	if err == nil {
		r.notify()
	}
	return sp, err
}

// reviveShard is Revive's critical section; the caller notifies after
// coordMu is released.
//
//lint:blockok coordinator path: serializing re-promotion (log replay, WAL fsync) under coordMu is the failover contract; data-path operations never take coordMu
func (r *Router) reviveShard(gen uint64, sh *Shard, name string) (*space.Space, error) {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	if err := sh.requireCoordGen(gen); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	epoch, primary := sh.epoch, sh.primary
	sh.mu.Unlock()
	sp, err := primary.Promote(epoch + 1)
	if err != nil {
		return nil, fmt.Errorf("repl: reviving shard %q: %w", name, err)
	}
	sh.mu.Lock()
	sh.sp = sp
	sh.epoch = epoch + 1
	sh.attached = false
	sh.down = false
	sh.publishLocked()
	sh.mu.Unlock()
	return sp, nil
}

// Detach drops the named shard's backup from the configuration: the
// primary continues solo under a fresh epoch (acks locally durable
// only). Used when the backup is unreachable but the primary healthy.
func (r *Router) Detach(name string) error {
	return r.DetachAs(r.Gen(), name)
}

// DetachAs is Detach fenced by the calling coordinator's generation.
func (r *Router) DetachAs(gen uint64, name string) error {
	sh := r.Shard(name)
	if sh == nil {
		return fmt.Errorf("repl: unknown shard %q", name)
	}
	err := r.detachShard(gen, sh, name)
	if err == nil {
		r.notify()
	}
	return err
}

// detachShard is Detach's critical section; the caller notifies after
// coordMu is released.
//
//lint:blockok coordinator path: serializing the detach (re-recovery, log replay) under coordMu is the failover contract; data-path operations never take coordMu
func (r *Router) detachShard(gen uint64, sh *Shard, name string) error {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	if err := sh.requireCoordGen(gen); err != nil {
		return err
	}
	sh.mu.Lock()
	epoch, primary := sh.epoch, sh.primary
	sh.mu.Unlock()
	sp, err := primary.DetachBackup(epoch + 1)
	if err != nil {
		return fmt.Errorf("repl: detaching backup of shard %q: %w", name, err)
	}
	sh.mu.Lock()
	sh.sp = sp
	sh.epoch = epoch + 1
	sh.attached = false
	sh.publishLocked()
	sh.mu.Unlock()
	return nil
}

// StartMonitor runs heartbeat failure detection: every interval each
// shard's primary is probed, and after misses consecutive failures the
// shard fails over automatically. Runs until the router closes.
func (r *Router) StartMonitor(interval time.Duration, misses int) {
	for _, sh := range r.shards {
		r.monitors.Add(1)
		go r.monitorShard(sh, interval, misses)
	}
}

// monitorShard is one shard's failure detector.
func (r *Router) monitorShard(sh *Shard, interval time.Duration, misses int) {
	defer r.monitors.Done()
	t := r.clock.NewTimer(interval)
	defer t.Stop()
	consecutive := 0
	for {
		select {
		case <-r.closed:
			return
		case <-t.C():
		}
		sh.mu.Lock()
		primary, epoch, down := sh.primary, sh.epoch, sh.down
		sh.mu.Unlock()
		if !down {
			switch err := primary.Heartbeat(epoch); {
			case errors.Is(err, ErrStaleEpoch):
				// A reconfiguration bumped the node's epoch between the
				// state read and the probe; the primary answered, so it
				// is alive — not a miss.
				consecutive = 0
			case err != nil:
				consecutive++
			default:
				consecutive = 0
			}
			if consecutive >= misses {
				consecutive = 0
				_, _ = r.Failover(sh.name)
			}
		}
		t.Reset(interval)
	}
}

// Close shuts down the router: parked operations fail, monitors exit,
// and every node closes in an orderly way.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.isClosed {
		r.mu.Unlock()
		return nil
	}
	r.isClosed = true
	close(r.closed)
	r.mu.Unlock()
	r.monitors.Wait()
	var first error
	for _, sh := range r.shards {
		sh.mu.Lock()
		nodes := []*Node{sh.primary, sh.backup}
		sh.mu.Unlock()
		for _, n := range nodes {
			if n == nil {
				continue
			}
			if err := n.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// --- the routed space operations ---

// do runs op against the owning shard's current primary, retrying
// across reconfigurations within the budget. Blocking operations whose
// budget runs out mid-failover report ErrTimeout — to their callers
// (pollers, await loops with their own retry policies) an outage
// shorter than their patience is indistinguishable from no match.
func (r *Router) do(kind string, budget time.Duration, blocking bool, op func(sp *space.Space, remaining time.Duration) error) error {
	deadline := r.clock.Now().Add(budget)
	for {
		sp, reconfig, down := r.ShardFor(kind).current()
		remaining := deadline.Sub(r.clock.Now())
		var err error
		if down {
			err = ErrShardDown
		} else {
			err = op(sp, remaining)
		}
		if err == nil || !IsFailoverErr(err) {
			return err
		}
		remaining = deadline.Sub(r.clock.Now())
		if remaining <= 0 {
			if blocking {
				return space.ErrTimeout
			}
			return err
		}
		wait := r.clock.NewTimer(remaining)
		select {
		case <-reconfig:
			wait.Stop()
		case <-r.closed:
			wait.Stop()
			return space.ErrClosed
		case <-wait.C():
			if blocking {
				return space.ErrTimeout
			}
			return err
		}
	}
}

// Write stores one entry on its kind's shard; a nil error means the
// write is durable on both replicas (or the solo primary's log).
func (r *Router) Write(e space.Entry, tx *txn.Transaction, leaseDur time.Duration) (lease.Lease, error) {
	var out lease.Lease
	err := r.do(e.Kind, r.writeWindow, false, func(sp *space.Space, _ time.Duration) error {
		l, werr := sp.Write(e, tx, leaseDur)
		if werr == nil {
			out = l
		}
		return werr
	})
	return out, err
}

// WriteBatch group-commits entries on the first entry's shard (a batch
// spans one shard: kinds hash identically when equal, and federation
// batches are single-kind envelopes).
func (r *Router) WriteBatch(entries []space.Entry, tx *txn.Transaction, leaseDur time.Duration) ([]lease.Lease, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	var out []lease.Lease
	err := r.do(entries[0].Kind, r.writeWindow, false, func(sp *space.Space, _ time.Duration) error {
		ls, werr := sp.WriteBatch(entries, tx, leaseDur)
		if werr == nil {
			out = ls
		}
		return werr
	})
	return out, err
}

// Read blocks up to timeout for a matching entry without removing it.
func (r *Router) Read(tmpl space.Entry, tx *txn.Transaction, timeout time.Duration) (space.Entry, error) {
	var out space.Entry
	err := r.do(tmpl.Kind, timeout, true, func(sp *space.Space, remaining time.Duration) error {
		e, rerr := sp.Read(tmpl, tx, remaining)
		if rerr == nil {
			out = e
		}
		return rerr
	})
	return out, err
}

// Take blocks up to timeout to remove and return a matching entry.
func (r *Router) Take(tmpl space.Entry, tx *txn.Transaction, timeout time.Duration) (space.Entry, error) {
	var out space.Entry
	err := r.do(tmpl.Kind, timeout, true, func(sp *space.Space, remaining time.Duration) error {
		e, terr := sp.Take(tmpl, tx, remaining)
		if terr == nil {
			out = e
		}
		return terr
	})
	return out, err
}

// TakeAny removes up to max matches, blocking up to timeout for the
// first — the worker poll loop's entry point.
func (r *Router) TakeAny(tmpl space.Entry, max int, tx *txn.Transaction, timeout time.Duration) ([]space.Entry, error) {
	var out []space.Entry
	err := r.do(tmpl.Kind, timeout, true, func(sp *space.Space, remaining time.Duration) error {
		es, terr := sp.TakeAny(tmpl, max, tx, remaining)
		if terr == nil {
			out = es
		}
		return terr
	})
	return out, err
}

// Count reports how many visible entries match the template.
func (r *Router) Count(tmpl space.Entry) int {
	n := 0
	_ = r.do(tmpl.Kind, r.writeWindow, false, func(sp *space.Space, _ time.Duration) error {
		n = sp.Count(tmpl)
		return nil
	})
	return n
}
