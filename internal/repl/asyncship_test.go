package repl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// newAsyncPair builds a primary in async-ship mode and a plain backup.
func newAsyncPair(t *testing.T, maxLag int) (*Node, *Node) {
	t.Helper()
	a, err := NewNode("a", clockwork.Real(), testPolicy, t.TempDir(),
		WithWALOptions(wal.WithSyncEveryAppend(false)), WithAsyncShip(maxLag))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", clockwork.Real(), testPolicy, t.TempDir(),
		WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

// gatedFollower forwards ships to the inner follower, optionally parking
// them on a gate channel so tests can hold the pipeline open.
type gatedFollower struct {
	Follower
	mu   sync.Mutex
	gate chan struct{} // non-nil: ships wait until it closes
}

func (g *gatedFollower) setGate(ch chan struct{}) {
	g.mu.Lock()
	g.gate = ch
	g.mu.Unlock()
}

func (g *gatedFollower) ShipBatch(epoch, firstSeq uint64, payloads [][]byte) (uint64, error) {
	g.mu.Lock()
	ch := g.gate
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return g.Follower.ShipBatch(epoch, firstSeq, payloads)
}

// failingFollower forwards ships until armed, then fails every one.
type failingFollower struct {
	Follower
	mu    sync.Mutex
	armed bool
}

var errShipBoom = errors.New("ship: injected failure")

func (f *failingFollower) arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

func (f *failingFollower) ShipBatch(epoch, firstSeq uint64, payloads [][]byte) (uint64, error) {
	f.mu.Lock()
	armed := f.armed
	f.mu.Unlock()
	if armed {
		return 0, errShipBoom
	}
	return f.Follower.ShipBatch(epoch, firstSeq, payloads)
}

func TestAsyncShipAcksLocallyAndConverges(t *testing.T) {
	a, b := newAsyncPair(t, 1024)
	sp, err := a.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachBackup(2, b, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", float64(i)), nil, time.Hour); err != nil {
			t.Fatalf("async write %d: %v", i, err)
		}
	}
	// The acks ran ahead of the ships; the backlog converges shortly.
	deadline := time.Now().Add(5 * time.Second)
	for a.Log().NextSeq() != b.Log().NextSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("logs never converged: primary %d, backup %d", a.Log().NextSeq(), b.Log().NextSeq())
		}
		time.Sleep(time.Millisecond)
	}
	// Everything shipped is servable from the backup.
	bsp, err := b.Promote(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := bsp.Count(space.NewEntry("job")); got != 200 {
		t.Fatalf("backup recovered %d entries, want 200", got)
	}
}

func TestAsyncShipLagBoundDegradesToSync(t *testing.T) {
	a, b := newAsyncPair(t, 0)
	sp, err := a.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedFollower{Follower: b}
	if _, err := a.AttachBackup(2, g, false); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	g.setGate(gate)

	// First write acks immediately (backlog 0 <= bound) and parks in the
	// gated ship.
	if _, err := sp.Write(space.NewEntry("job", "n", float64(0)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Second write must block: the backlog exceeds the lag bound, so the
	// ack degrades to sync-ship pacing until the pipeline drains.
	done := make(chan error, 1)
	go func() {
		_, werr := sp.Write(space.NewEntry("job", "n", float64(1)), nil, time.Hour)
		done <- werr
	}()
	select {
	case err := <-done:
		t.Fatalf("over-lag write acked while the pipeline was blocked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked write never completed after the pipeline drained")
	}
}

func TestAsyncShipErrorSuspendsAndReattachRecovers(t *testing.T) {
	a, b := newAsyncPair(t, 1024)
	sp, err := a.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	f := &failingFollower{Follower: b}
	if _, err := a.AttachBackup(2, f, false); err != nil {
		t.Fatal(err)
	}
	f.arm()
	// The failing ship happens behind the ack; the node suspends as soon
	// as the shipper hits it, after which nothing further acknowledges.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, werr := sp.Write(space.NewEntry("job", "n", float64(0)), nil, time.Hour)
		if werr != nil {
			if !errors.Is(werr, ErrBackupUnavailable) {
				t.Fatalf("suspended write = %v, want ErrBackupUnavailable", werr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ship failure never suspended the primary")
		}
		time.Sleep(time.Millisecond)
	}
	// The coordinator's cure — a full-resync reattach — restores service:
	// the resync replays the log, which holds every record the queue
	// dropped, and clears the latched pipeline failure.
	sp2, err := a.AttachBackup(3, b, true)
	if err != nil {
		t.Fatalf("reattach after async ship failure: %v", err)
	}
	if _, err := sp2.Write(space.NewEntry("job", "n", float64(1)), nil, time.Hour); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	waitConverged(t, a, b)
}

// waitConverged polls until both logs sit at the same position.
func waitConverged(t *testing.T, a, b *Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Log().NextSeq() != b.Log().NextSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("logs never converged: primary %d, backup %d", a.Log().NextSeq(), b.Log().NextSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncShipCheckpointDrainsBacklog(t *testing.T) {
	a, b := newAsyncPair(t, 1024)
	sp, err := a.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachBackup(2, b, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", float64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint must drain the async backlog before shipping the
	// snapshot, so the backup's log never jumps past records it hasn't
	// received.
	if err := sp.Checkpoint(); err != nil {
		t.Fatalf("checkpoint in async mode: %v", err)
	}
	waitConverged(t, a, b)
	if a.Log().SnapshotSeq() != b.Log().SnapshotSeq() {
		t.Fatalf("snapshot positions diverged: primary %d, backup %d", a.Log().SnapshotSeq(), b.Log().SnapshotSeq())
	}
}
