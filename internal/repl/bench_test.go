package repl

import (
	"fmt"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// The replication cost model: a write acks only after the batch is in
// both logs, so the per-ack overhead versus a solo primary is one
// follower ShipBatch (in-process here; the srpc wire variant lives in
// internal/remote). Sync-per-append is off in every variant so the
// deltas isolate shipping cost rather than fsync cost.

func benchNode(b *testing.B, name string) *Node {
	b.Helper()
	n, err := NewNode(name, clockwork.Real(), lease.Policy{Max: 24 * time.Hour},
		b.TempDir(), WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = n.Close() })
	return n
}

// benchSpace returns a serving primary: solo, or with an in-process
// follower when replicated.
func benchSpace(b *testing.B, replicated bool) *space.Space {
	b.Helper()
	primary := benchNode(b, "p")
	sp, err := primary.Promote(1)
	if err != nil {
		b.Fatal(err)
	}
	if replicated {
		backup := benchNode(b, "b")
		if _, err := primary.AttachBackup(2, backup, false); err != nil {
			b.Fatal(err)
		}
	}
	return sp
}

// drainSpace empties the space outside the timer so the working set
// stays bounded without charging take cost to the write path.
func drainSpace(b *testing.B, sp *space.Space) {
	b.Helper()
	b.StopTimer()
	for {
		got, err := sp.TakeAny(space.NewEntry("job"), 4096, nil, 0)
		if err != nil || len(got) == 0 {
			break
		}
	}
	b.StartTimer()
}

func benchmarkWriteAck(b *testing.B, replicated bool) {
	sp := benchSpace(b, replicated)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			drainSpace(b, sp)
		}
	}
}

func BenchmarkWriteAckSolo(b *testing.B) { benchmarkWriteAck(b, false) }

func BenchmarkWriteAckReplicated(b *testing.B) { benchmarkWriteAck(b, true) }

// BenchmarkWriteAckAsyncShip sweeps the async-ship lag bound: maxLag=0
// acknowledges after the local append but still paces one batch behind
// the shipper (the degenerate bound), larger bounds let the ack path
// run ahead of the wire. Read against WriteAckSolo (the floor: no ship
// at all) and WriteAckReplicated (the ceiling: ship inside the ack
// path) to see what each rung of the durability ladder buys.
func BenchmarkWriteAckAsyncShip(b *testing.B) {
	for _, maxLag := range []int{0, 16, 256, 4096} {
		b.Run(fmt.Sprintf("lag=%d", maxLag), func(b *testing.B) {
			primary, err := NewNode("p", clockwork.Real(), lease.Policy{Max: 24 * time.Hour},
				b.TempDir(), WithWALOptions(wal.WithSyncEveryAppend(false)), WithAsyncShip(maxLag))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = primary.Close() })
			sp, err := primary.Promote(1)
			if err != nil {
				b.Fatal(err)
			}
			backup := benchNode(b, "b")
			if _, err := primary.AttachBackup(2, backup, false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
					b.Fatal(err)
				}
				if i%8192 == 8191 {
					drainSpace(b, sp)
				}
			}
		})
	}
}

func benchmarkWriteBatch16(b *testing.B, replicated bool) {
	sp := benchSpace(b, replicated)
	entries := make([]space.Entry, 16)
	for i := range entries {
		entries[i] = space.NewEntry("job", "n", int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.WriteBatch(entries, nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if i%512 == 511 {
			drainSpace(b, sp)
		}
	}
}

func BenchmarkWriteBatch16Solo(b *testing.B) { benchmarkWriteBatch16(b, false) }

func BenchmarkWriteBatch16Replicated(b *testing.B) { benchmarkWriteBatch16(b, true) }

// BenchmarkRouterWriteReplicated is the end-to-end routed ack path:
// kind hash, shard lookup, replicated write.
func BenchmarkRouterWriteReplicated(b *testing.B) {
	r, err := NewRouter(clockwork.Real(), []ShardSpec{
		{Name: "s0", Primary: benchNode(b, "a"), Backup: benchNode(b, "b")},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = r.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			b.StopTimer()
			for {
				got, terr := r.TakeAny(space.NewEntry("job"), 4096, nil, 0)
				if terr != nil || len(got) == 0 {
					break
				}
			}
			b.StartTimer()
		}
	}
}
