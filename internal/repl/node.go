package repl

import (
	"errors"
	"fmt"
	"sync"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// Role is a node's current duty within its shard.
type Role int

// The two roles a node cycles through across failovers.
const (
	// RoleBackup applies shipped batches; every node starts here.
	RoleBackup Role = iota
	// RolePrimary serves a durable tuple space and ships its journal.
	RolePrimary
)

// String names the role for diagnostics.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "backup"
}

// Node is one replica of a shard: a WAL plus — while primary — the tuple
// space recovered from it. All methods are safe for concurrent use. The
// coordinator (Router) drives every role change with a strictly
// increasing epoch; data traffic checks that epoch on both ends.
//
// Lock ordering: a space's internal mutex may be held when node methods
// run (the journal is called inside the space's critical section), so
// node code never calls back into a live space while holding n.mu.
type Node struct {
	name    string
	dir     string
	clock   clockwork.Clock
	policy  lease.Policy
	walOpts []wal.Option

	mu        sync.Mutex
	log       *wal.Log
	space     *space.Space // non-nil while serving as primary
	follower  Follower     // non-nil while a backup is attached
	epoch     uint64
	role      Role
	fenced    bool // saw ErrStaleEpoch: superseded, refuse everything
	suspended bool // ship failed: log/memory may diverge, stop serving
	attaching bool // catch-up in flight: mutations blocked
	down      bool // killed or closed

	// async is the background ship pipeline (asyncship.go), non-nil only
	// in async-ship mode; asyncOn/asyncLag survive Kill/Restart.
	async    *asyncShipper
	asyncOn  bool
	asyncLag int

	inj     *faults.Injector
	injSite string
}

// NodeOption customizes a Node.
type NodeOption func(*Node)

// WithWALOptions forwards options to the node's log (and to reopens
// after Restart).
func WithWALOptions(opts ...wal.Option) NodeOption {
	return func(n *Node) { n.walOpts = opts }
}

// WithAsyncShip puts the node in async-ship mode: writes are
// acknowledged after the local journal append and shipped to the backup
// in the background, with the acknowledged-but-unshipped backlog
// bounded by maxLag records (see asyncship.go for the degradation
// ladder and the durability tradeoff).
func WithAsyncShip(maxLag int) NodeOption {
	return func(n *Node) {
		n.asyncOn = true
		if maxLag < 0 {
			maxLag = 0
		}
		n.asyncLag = maxLag
	}
}

// NewNode opens (or creates) a replica over the WAL directory dir. The
// node starts as a backup at epoch 0; the coordinator promotes or
// attaches it from there.
func NewNode(name string, clock clockwork.Clock, policy lease.Policy, dir string, opts ...NodeOption) (*Node, error) {
	n := &Node{name: name, dir: dir, clock: clock, policy: policy}
	for _, o := range opts {
		o(n)
	}
	walOpts := append([]wal.Option{wal.WithClock(clock)}, n.walOpts...)
	l, err := wal.Open(dir, walOpts...)
	if err != nil {
		return nil, err
	}
	n.log = l
	n.walOpts = walOpts
	if n.asyncOn {
		n.async = newAsyncShipper(n, n.asyncLag)
	}
	return n, nil
}

// asyncPipe returns the node's background shipper, nil in sync mode (or
// after a kill).
func (n *Node) asyncPipe() *asyncShipper {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.async
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Epoch returns the newest configuration epoch the node has seen.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Log exposes the node's WAL (chaos tests arm fault injectors on it).
// Nil while the node is down.
func (n *Node) Log() *wal.Log {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil
	}
	return n.log
}

// CurrentSpace returns the space the node is serving, or nil when it is
// not primary.
func (n *Node) CurrentSpace() *space.Space {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.space
}

// IsFenced reports whether the node refused itself after seeing a newer
// epoch.
func (n *Node) IsFenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// SetFaultInjector arms chaos hooks: the replication endpoints consult
// "<site>"+FaultSiteShip and "<site>"+FaultSiteHeartbeat.
func (n *Node) SetFaultInjector(inj *faults.Injector, site string) {
	n.mu.Lock()
	n.inj = inj
	n.injSite = site
	n.mu.Unlock()
}

// faultHooks snapshots the injector under the lock.
func (n *Node) faultHooks() (*faults.Injector, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inj, n.injSite
}

// --- epoch checks (the fencing invariant's enforcement points) ---

// requireEpochPrimary admits a primary-side mutation: the node must be a
// live, unfenced, unsuspended primary with no attach in flight. Returns
// the epoch to tag outgoing ships with and the follower to ship to.
func (n *Node) requireEpochPrimary() (uint64, Follower, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, nil, ErrNodeDown
	}
	if n.fenced {
		return 0, nil, fmt.Errorf("%w: fenced at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if n.role != RolePrimary {
		return 0, nil, ErrNotPrimary
	}
	if n.suspended {
		return 0, nil, ErrBackupUnavailable
	}
	if n.attaching {
		return 0, nil, fmt.Errorf("%w: backup attach in progress", ErrBackupUnavailable)
	}
	return n.epoch, n.follower, nil
}

// requireEpochCheckpoint admits a checkpoint: like requireEpochPrimary
// but permitted while an attach is in flight (the attach itself
// checkpoints to build the resync snapshot; no client ack rides on it).
func (n *Node) requireEpochCheckpoint() (uint64, Follower, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, nil, ErrNodeDown
	}
	if n.fenced {
		return 0, nil, fmt.Errorf("%w: fenced at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if n.role != RolePrimary {
		return 0, nil, ErrNotPrimary
	}
	if n.suspended {
		return 0, nil, ErrBackupUnavailable
	}
	return n.epoch, n.follower, nil
}

// requireEpochBackupLocked admits replication traffic tagged with epoch:
// stale senders are rejected, newer configurations adopted. Caller holds
// n.mu.
func (n *Node) requireEpochBackupLocked(epoch uint64) error {
	if n.down {
		return ErrNodeDown
	}
	if epoch < n.epoch {
		return fmt.Errorf("%w: shipped epoch %d, node at %d", ErrStaleEpoch, epoch, n.epoch)
	}
	if n.role != RoleBackup {
		// Two primaries cannot coexist under one coordinator; whoever is
		// shipping here is stale by construction.
		return fmt.Errorf("%w: receiving node is primary at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	return nil
}

// requireEpochAttaching admits a catch-up ship: the node must still be
// the unfenced primary of exactly the attach epoch.
func (n *Node) requireEpochAttaching(epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	if n.fenced {
		return fmt.Errorf("%w: fenced at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if n.role != RolePrimary {
		return ErrNotPrimary
	}
	if n.epoch != epoch {
		return fmt.Errorf("%w: attach epoch %d, node at %d", ErrStaleEpoch, epoch, n.epoch)
	}
	return nil
}

// guard is the space.SetGuard hook: consulted inside the space's
// critical section before any mutation is journaled, so a fenced or
// suspended primary cannot acknowledge anything.
func (n *Node) guard() error {
	_, _, err := n.requireEpochPrimary()
	return err
}

// shipFailed records a failed ship: a stale epoch fences the node
// permanently (it was superseded); anything else suspends it until the
// coordinator detaches or replaces the backup. Either way the mutation
// in flight is not acknowledged.
func (n *Node) shipFailed(err error) error {
	n.mu.Lock()
	if errors.Is(err, ErrStaleEpoch) {
		n.fenced = true
		n.mu.Unlock()
		return fmt.Errorf("repl: shipping to backup: %w", err)
	}
	n.suspended = true
	n.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrBackupUnavailable, err)
}

// --- Follower implementation (the backup half, served in-process) ---

// ShipBatch implements Follower: applies a shipped batch durably at its
// explicit sequences and returns the next expected one. An empty batch
// is a position probe.
func (n *Node) ShipBatch(epoch, firstSeq uint64, payloads [][]byte) (uint64, error) {
	inj, site := n.faultHooks()
	if err := inj.Inject(site + FaultSiteShip); err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.requireEpochBackupLocked(epoch); err != nil {
		return 0, err
	}
	return n.log.AppendAt(firstSeq, payloads)
}

// ShipSnapshot implements Follower: replaces the backup's log contents
// with the primary's snapshot — the full-resync path, also used for
// live compaction (an in-sync backup installs an identical snapshot).
func (n *Node) ShipSnapshot(epoch, seq uint64, data []byte) error {
	inj, site := n.faultHooks()
	if err := inj.Inject(site + FaultSiteShip); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.requireEpochBackupLocked(epoch); err != nil {
		return err
	}
	return n.log.InstallSnapshot(seq, data)
}

// Heartbeat implements Follower: a liveness probe under the sender's
// epoch. The monitor treats repeated failures as node death.
func (n *Node) Heartbeat(epoch uint64) error {
	inj, site := n.faultHooks()
	if err := inj.Inject(site + FaultSiteHeartbeat); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	if epoch < n.epoch {
		return fmt.Errorf("%w: heartbeat epoch %d, node at %d", ErrStaleEpoch, epoch, n.epoch)
	}
	return nil
}

var _ Follower = (*Node)(nil)

// --- coordinator-driven role changes ---

// Promote makes the node the shard's primary at newEpoch: it recovers a
// tuple space from its log (which, for a backup that acknowledged every
// shipped batch, holds every acknowledged mutation) and serves it solo
// until a backup is attached. The epoch must exceed anything the node
// has seen — the coordinator's guarantee that at most one primary per
// epoch exists.
func (n *Node) Promote(newEpoch uint64) (*space.Space, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNodeDown
	}
	if newEpoch <= n.epoch {
		return nil, fmt.Errorf("%w: promote to epoch %d, node at %d", ErrStaleEpoch, newEpoch, n.epoch)
	}
	if n.role == RolePrimary {
		return nil, errors.New("repl: node is already primary")
	}
	// The lock-order edge Node.mu -> Space.mu taken here (and by the
	// re-recovery paths in AttachBackup/DetachBackup, which drop n.mu
	// first) is safe at the instance level even though the space's journal
	// path takes Node.mu under Space.mu: the Space locked under n.mu is
	// always freshly recovered and unpublished, so no other goroutine can
	// hold its mutex yet. Demote/Kill/Close release n.mu before touching a
	// published space for the same reason.
	//
	//lint:lockorder allow repl.Node.mu->space.Space.mu the space locked under Node.mu is freshly recovered and unpublished; published spaces are only touched after n.mu is released
	j := &shippingJournal{node: n, log: n.log}
	//lint:ignore sensorlint/deepblock widening artifact: Recover only reads the local log; the ship closures the analyzer folds into Replay's callback parameter belong to shipTail and never run during recovery
	sp, err := space.Recover(n.clock, n.policy, j)
	if err != nil {
		return nil, fmt.Errorf("repl: promoting %s: %w", n.name, err)
	}
	sp.SetGuard(n.guard)
	n.space = sp
	n.role = RolePrimary
	n.epoch = newEpoch
	n.follower = nil
	n.fenced = false
	n.suspended = false
	if n.async != nil {
		// A fresh tenure: any ship failure latched by the previous one is
		// void (the log just recovered from holds every record).
		n.async.reset()
	}
	return sp, nil
}

// AttachBackup connects a backup to this primary at newEpoch: the
// backup is brought to the primary's exact log position — a full resync
// (checkpoint, snapshot install, tail replay) when resync is true or
// whenever the fast path cannot prove the backup holds a clean prefix —
// after which every journaled batch ships to it synchronously.
// Mutations are refused (ErrBackupUnavailable) for the duration of the
// catch-up; the Router retries them across it.
//
// A suspended primary (an earlier ship failed, so its memory may lag
// its log) is first re-recovered from its own log; the returned space
// is the one now being served, which the caller must rebind to.
func (n *Node) AttachBackup(newEpoch uint64, f Follower, resync bool) (*space.Space, error) {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, ErrNodeDown
	}
	if n.fenced {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: fenced at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if n.role != RolePrimary {
		n.mu.Unlock()
		return nil, ErrNotPrimary
	}
	if n.attaching {
		n.mu.Unlock()
		return nil, errors.New("repl: attach already in progress")
	}
	if newEpoch <= n.epoch {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: attach at epoch %d, node at %d", ErrStaleEpoch, newEpoch, n.epoch)
	}
	n.attaching = true
	n.epoch = newEpoch
	if n.async != nil {
		// Clear any latched ship failure up front: the catch-up below
		// (including its checkpoint, which drains the pipeline) replays
		// the full log, which holds every record the queue dropped.
		n.async.reset()
	}
	suspended := n.suspended
	sp := n.space
	log := n.log
	n.mu.Unlock()

	var err error
	if suspended {
		// Memory may lag the log (a shipped-but-unacked record): replace
		// the space with a fresh recovery so memory, log and the backup
		// about to copy that log all agree. The re-recovered space serves
		// from here on even if the catch-up below fails — the node is
		// then a coherent solo primary at newEpoch and the coordinator
		// retries the attach later — so the suspension lifts now (the
		// attaching flag still blocks mutations until the attach ends).
		resync = true
		sp.Close()
		sp, err = space.Recover(n.clock, n.policy, &shippingJournal{node: n, log: log})
		if err == nil {
			sp.SetGuard(n.guard)
			n.mu.Lock()
			n.space = sp
			n.suspended = false
			n.mu.Unlock()
		}
	}
	if err == nil {
		err = n.catchUp(newEpoch, f, sp, resync)
	}

	n.mu.Lock()
	n.attaching = false
	if err == nil {
		n.follower = f
	}
	n.mu.Unlock()
	return sp, err
}

// catchUp brings f to this node's exact log position under the attach
// epoch. The fast path re-ships the missing tail when f provably holds
// a clean prefix of this log (a crashed-and-restarted backup that was
// never promoted); everything else — divergence risk, compaction gap,
// probe failure — falls back to snapshot install plus tail.
func (n *Node) catchUp(epoch uint64, f Follower, sp *space.Space, resync bool) error {
	if err := n.requireEpochAttaching(epoch); err != nil {
		return err
	}
	if !resync {
		next, err := f.ShipBatch(epoch, 1, nil) // position probe
		if err == nil && next > n.log.SnapshotSeq() && next <= n.log.NextSeq() {
			return n.shipTail(epoch, f, next)
		}
	}
	if err := sp.Checkpoint(); err != nil {
		return fmt.Errorf("repl: checkpoint for resync: %w", err)
	}
	data, seq, _, ok := n.log.Snapshot()
	if !ok {
		return errors.New("repl: checkpoint produced no snapshot")
	}
	if err := f.ShipSnapshot(epoch, seq, data); err != nil {
		return err
	}
	return n.shipTail(epoch, f, seq+1)
}

// catchUpChunk bounds how many records one catch-up ship carries.
const catchUpChunk = 256

// shipTail streams this node's log records from position from to f.
func (n *Node) shipTail(epoch uint64, f Follower, from uint64) error {
	if err := n.requireEpochAttaching(epoch); err != nil {
		return err
	}
	var batch [][]byte
	var first uint64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		// Re-fence per chunk: a catch-up superseded mid-stream (the shard
		// failed over again) must stop shipping immediately.
		if err := n.requireEpochAttaching(epoch); err != nil {
			return err
		}
		_, err := f.ShipBatch(epoch, first, batch)
		batch = batch[:0]
		return err
	}
	err := n.log.ReplayFrom(from, func(seq uint64, payload []byte) error {
		if len(batch) == 0 {
			first = seq
		}
		batch = append(batch, append([]byte(nil), payload...))
		if len(batch) >= catchUpChunk {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// DetachBackup drops the attached backup at newEpoch: the primary
// continues solo (acks become locally durable only — see the package
// comment on double failure). A suspended primary is re-recovered from
// its log first; the returned space is the one now being served.
func (n *Node) DetachBackup(newEpoch uint64) (*space.Space, error) {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, ErrNodeDown
	}
	if n.fenced {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: fenced at epoch %d", ErrStaleEpoch, n.epoch)
	}
	if n.role != RolePrimary {
		n.mu.Unlock()
		return nil, ErrNotPrimary
	}
	if newEpoch <= n.epoch {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: detach at epoch %d, node at %d", ErrStaleEpoch, newEpoch, n.epoch)
	}
	n.epoch = newEpoch
	n.follower = nil
	if n.async != nil {
		// No follower, no backlog: clear any latched ship failure so the
		// solo primary serves again.
		n.async.reset()
	}
	suspended := n.suspended
	sp := n.space
	log := n.log
	n.mu.Unlock()
	if !suspended {
		return sp, nil
	}
	sp.Close()
	fresh, err := space.Recover(n.clock, n.policy, &shippingJournal{node: n, log: log})
	if err != nil {
		return nil, fmt.Errorf("repl: re-recovering after detach: %w", err)
	}
	fresh.SetGuard(n.guard)
	n.mu.Lock()
	n.space = fresh
	n.suspended = false
	n.mu.Unlock()
	return fresh, nil
}

// Demote turns an ex-primary back into a backup at newEpoch, closing
// its space. The coordinator uses it to reclaim a fenced or superseded
// primary before reattaching it.
func (n *Node) Demote(newEpoch uint64) error {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return ErrNodeDown
	}
	if newEpoch < n.epoch {
		n.mu.Unlock()
		return fmt.Errorf("%w: demote to epoch %d, node at %d", ErrStaleEpoch, newEpoch, n.epoch)
	}
	sp := n.space
	n.space = nil
	n.follower = nil
	n.role = RoleBackup
	n.epoch = newEpoch
	n.fenced = false
	n.suspended = false
	n.mu.Unlock()
	if sp != nil {
		sp.Close()
	}
	return nil
}

// Kill simulates the node's process dying: the space fails every
// blocked operation, the log closes, and every endpoint returns
// ErrNodeDown until Restart.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.down = true
	sp := n.space
	n.space = nil
	n.follower = nil
	log := n.log
	pipe := n.async
	n.async = nil
	n.mu.Unlock()
	if pipe != nil {
		pipe.stop()
	}
	if sp != nil {
		sp.Close()
	}
	if log != nil {
		_ = log.Close()
	}
}

// Restart reopens a killed node's log (truncating any torn tail) and
// returns it to backup duty; the coordinator decides whether to promote
// or reattach it.
func (n *Node) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.down {
		return errors.New("repl: restarting a node that is not down")
	}
	l, err := wal.Open(n.dir, n.walOpts...)
	if err != nil {
		return fmt.Errorf("repl: restarting %s: %w", n.name, err)
	}
	n.log = l
	n.down = false
	n.fenced = false
	n.suspended = false
	n.attaching = false
	n.role = RoleBackup
	n.space = nil
	n.follower = nil
	if n.asyncOn {
		n.async = newAsyncShipper(n, n.asyncLag)
	}
	return nil
}

// Close shuts the node down in an orderly way (flushing its log).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil
	}
	n.down = true
	sp := n.space
	n.space = nil
	n.follower = nil
	log := n.log
	pipe := n.async
	n.async = nil
	n.mu.Unlock()
	if pipe != nil {
		pipe.stop()
	}
	if sp != nil {
		sp.Close()
	}
	if log != nil {
		return log.Close()
	}
	return nil
}
