// Live shard handoff: moving a shard's primary onto a new node while
// the federation keeps serving.
//
// Rebalance reuses the attach machinery end to end — the target is
// seeded exactly like a reattaching backup (checkpoint → snapshot
// install → chunked, re-fenced tail), then promoted one epoch above the
// attach epoch so the old primary's next ship bounces as stale, and
// finally the shard map entry flips. In-flight Router operations park
// on the shard's reconfig channel across the flip and retry against the
// new primary, so clients observe the handoff as at-least-once retries:
// every acknowledged write was shipped to the target before its
// promotion, and nothing unacknowledged is lost — it is simply re-run.
package repl

import (
	"errors"
	"fmt"
)

// Rebalance moves the named shard's primary onto target under the
// router's adopted coordinator generation. To move an entry kind, pass
// r.ShardFor(kind).Name(). See RebalanceAs.
func (r *Router) Rebalance(name string, target *Node) (*Node, error) {
	return r.RebalanceAs(r.Gen(), name, target)
}

// RebalanceAs hands the named shard off to target: the target is
// brought to the primary's exact log position, promoted under a fresh
// epoch, and installed as the shard's primary; the old primary is
// demoted and kept as the shard's spare (reattachable via Reattach).
// The previous spare — no longer in the configuration — is returned for
// the caller to retire. gen is the calling coordinator's fencing token;
// a deposed coordinator's handoff bounces with ErrStaleEpoch before
// touching the shard.
func (r *Router) RebalanceAs(gen uint64, name string, target *Node) (*Node, error) {
	sh := r.Shard(name)
	if sh == nil {
		return nil, fmt.Errorf("repl: unknown shard %q", name)
	}
	retired, err := r.rebalanceShard(gen, sh, name, target)
	r.notify()
	return retired, err
}

// rebalanceShard is RebalanceAs's critical section; the caller notifies
// after coordMu is released.
//
//lint:blockok coordinator path: serializing the handoff (checkpoint, snapshot ship, tail replay, promotion) under coordMu is the rebalance contract; data-path operations never take coordMu
func (r *Router) rebalanceShard(gen uint64, sh *Shard, name string, target *Node) (*Node, error) {
	sh.coordMu.Lock()
	defer sh.coordMu.Unlock()
	if err := sh.requireCoordGen(gen); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	epoch, primary, spare, down := sh.epoch, sh.primary, sh.backup, sh.down
	sh.mu.Unlock()
	if down {
		return nil, ErrShardDown
	}
	if target == nil || target == primary {
		return nil, fmt.Errorf("repl: rebalance of shard %q needs a distinct target", name)
	}

	// Phase 1 — seed: the target becomes the primary's (sole) follower
	// and is brought to its exact log position. From here on every
	// acknowledged write is durable on the target; the old spare leaves
	// the ack path. A failure here is non-destructive: the primary keeps
	// serving solo at the attach epoch.
	sp, err := primary.AttachBackup(epoch+1, target, true)
	if sp != nil {
		// Publish the attach epoch (and, for a re-recovered suspended
		// primary, the fresh space) so heartbeats and clients track the
		// node's real state mid-handoff.
		sh.mu.Lock()
		sh.sp = sp
		sh.epoch = epoch + 1
		sh.attached = err == nil
		sh.publishLocked()
		sh.mu.Unlock()
	}
	if err != nil {
		return nil, fmt.Errorf("repl: seeding rebalance target for shard %q: %w", name, err)
	}

	// Phase 2 — promote the target one epoch above the attach epoch.
	// The old primary's next ship bounces as stale and fences it, so no
	// write can be acknowledged twice-owned: acks before this instant
	// reached the target's log (synchronous ship), acks after it can
	// only come from the target.
	sp2, err := target.Promote(epoch + 2)
	if err != nil {
		// The target died (or was superseded) mid-handoff: fall back to
		// the old primary running solo, dropping the dead follower so
		// writes stop ship-failing.
		if fsp, ferr := primary.DetachBackup(epoch + 2); ferr == nil {
			sh.mu.Lock()
			sh.sp = fsp
			sh.epoch = epoch + 2
			sh.attached = false
			sh.publishLocked()
			sh.mu.Unlock()
		} else if !errors.Is(ferr, ErrNodeDown) {
			sh.mu.Lock()
			sh.down = true
			sh.publishLocked()
			sh.mu.Unlock()
		}
		return nil, fmt.Errorf("repl: promoting rebalance target for shard %q: %w", name, err)
	}

	// Phase 3 — retire the old primary. Demote closes its space, so
	// operations still blocked on it fail over and re-park; a demote
	// failure (the node died under us) leaves a space the node's own
	// death already closed. Either way the flip below must proceed: the
	// target is promoted, and pointing the shard anywhere else would
	// only serve stale epochs.
	_ = primary.Demote(epoch + 2)

	sh.mu.Lock()
	sh.primary = target
	sh.backup = primary
	sh.attached = false
	sh.sp = sp2
	sh.epoch = epoch + 2
	sh.down = false
	sh.publishLocked()
	sh.mu.Unlock()
	return spare, nil
}
