package repl

import "time"

// shippingJournal is the space.Journal a replicated primary writes
// through: every append lands in the local WAL and is then shipped to
// the attached backup under the current epoch, so the space's
// journal-before-ack becomes replicated-journal-before-ack. The space
// calls these inside its critical section, which makes journal order,
// ship order and memory order one and the same.
//
// The log handle is captured at creation (one journal per
// promotion/recovery), so reads never race a Restart swapping n.log.
type shippingJournal struct {
	node *Node
	log  logBackend
}

// logBackend is the slice of *wal.Log the journal uses (narrowed for
// clarity; *wal.Log satisfies it).
type logBackend interface {
	Append(payload []byte) (uint64, error)
	AppendBatch(payloads [][]byte) (uint64, error)
	WriteSnapshot(data []byte) error
	Snapshot() (data []byte, seq uint64, taken time.Time, ok bool)
	Replay(fn func(seq uint64, payload []byte) error) error
	SnapshotSeq() uint64
}

// Append journals one record locally and ships it, acknowledging only
// after both copies are durable.
func (j *shippingJournal) Append(payload []byte) (uint64, error) {
	if _, _, err := j.node.requireEpochPrimary(); err != nil {
		return 0, err
	}
	return j.AppendBatch([][]byte{payload})
}

// AppendBatch journals a batch locally and ships it as one unit. A ship
// failure suspends (or, on a stale epoch, fences) the node and returns
// an error — the batch is in the local log but never acknowledged,
// which replay treats like any op in flight at a crash: indeterminate,
// resolved by the at-least-once envelope above.
func (j *shippingJournal) AppendBatch(payloads [][]byte) (uint64, error) {
	epoch, f, err := j.node.requireEpochPrimary()
	if err != nil {
		return 0, err
	}
	if len(payloads) == 0 {
		return 0, nil
	}
	first, err := j.log.AppendBatch(payloads)
	if err != nil {
		return 0, err
	}
	if f != nil {
		if s := j.node.asyncPipe(); s != nil {
			// Async-ship mode: acknowledge after the local journal; the
			// shipper replays the batch within the lag bound. A pipeline
			// that has failed (or is over the bound and cannot drain)
			// refuses the batch — journaled but never acknowledged, the
			// same indeterminate outcome as a synchronous ship failure.
			if serr := s.enqueue(epoch, f, first, payloads); serr != nil {
				return 0, serr
			}
		} else if _, serr := f.ShipBatch(epoch, first, payloads); serr != nil {
			return 0, j.node.shipFailed(serr)
		}
	}
	return first, nil
}

// WriteSnapshot checkpoints the local log and ships the same snapshot
// to the backup, keeping both logs compacted in lockstep.
func (j *shippingJournal) WriteSnapshot(data []byte) error {
	epoch, f, err := j.node.requireEpochCheckpoint()
	if err != nil {
		return err
	}
	if s := j.node.asyncPipe(); s != nil && f != nil {
		// Snapshot ships stay synchronous: drain the record backlog so the
		// backup never installs a snapshot from the future of its log.
		if derr := s.drain(); derr != nil {
			return derr
		}
	}
	if err := j.log.WriteSnapshot(data); err != nil {
		return err
	}
	if f != nil {
		if serr := f.ShipSnapshot(epoch, j.log.SnapshotSeq(), data); serr != nil {
			return j.node.shipFailed(serr)
		}
	}
	return nil
}

// Snapshot reads the local snapshot (recovery path; no replication).
func (j *shippingJournal) Snapshot() (data []byte, seq uint64, taken time.Time, ok bool) {
	return j.log.Snapshot()
}

// Replay streams the local log (recovery path; no replication).
func (j *shippingJournal) Replay(fn func(seq uint64, payload []byte) error) error {
	return j.log.Replay(fn)
}
