package repl

import (
	"fmt"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
)

// ShardMapType is the registry service type under which a Router
// publishes its shard map, so federation peers can discover which node
// serves which slice of the keyspace — and at which epoch.
const ShardMapType = "sensorcer.ShardMap"

// ShardAttrType is the attribute entry type carrying one shard's
// configuration (one entry per shard on the published item).
const ShardAttrType = "SpaceShard"

// ShardInfo is one shard's published configuration.
type ShardInfo struct {
	Shard    string
	Gen      uint64 // coordinator generation the configuration was decided under
	Epoch    uint64
	Primary  string
	Backup   string
	Attached bool
	Down     bool
}

// ShardMapPublication keeps a Router's shard map registered: the
// attribute set is refreshed on every membership change, so a lookup
// always sees the current primaries and epochs.
type ShardMapPublication struct {
	reg  registry.Registrar
	id   ids.ServiceID
	name string
	r    *Router
}

// shardAttrs snapshots the router's configuration as registry
// attributes.
func shardAttrs(name string, r *Router) attr.Set {
	set := attr.Set{attr.Name(name)}
	for _, sh := range r.Shards() {
		sh.mu.Lock()
		info := ShardInfo{
			Shard:    sh.name,
			Gen:      sh.gen,
			Epoch:    sh.epoch,
			Attached: sh.attached,
			Down:     sh.down,
		}
		if sh.primary != nil {
			info.Primary = sh.primary.Name()
		}
		if sh.backup != nil {
			info.Backup = sh.backup.Name()
		}
		sh.mu.Unlock()
		set = append(set, attr.New(ShardAttrType,
			"shard", info.Shard,
			"gen", int64(info.Gen),
			"epoch", int64(info.Epoch),
			"primary", info.Primary,
			"backup", info.Backup,
			"attached", info.Attached,
			"down", info.Down,
		))
	}
	return set
}

// PublishShardMap registers the router's shard map with the registry
// under name and keeps it current: every failover, reattach or detach
// republishes the attributes. The caller keeps the registration lease
// alive (e.g. with a lease.RenewalManager) via the returned
// registration's lease.
func PublishShardMap(reg registry.Registrar, name string, r *Router, leaseDur time.Duration) (*ShardMapPublication, registry.Registration, error) {
	return PublishShardMapVia(reg, name, r, r, leaseDur)
}

// PublishShardMapVia is PublishShardMap with an explicit service value
// for the registration. An in-process registry accepts the Router
// itself (the default); a remote registrar requires a proxy descriptor,
// so a federation publishing its map into a separate-process lookup
// service passes one here. Consumers only read the attributes either
// way — LookupShardMap never touches the service value.
func PublishShardMapVia(reg registry.Registrar, name string, r *Router, svc any, leaseDur time.Duration) (*ShardMapPublication, registry.Registration, error) {
	item := registry.ServiceItem{
		ID:         ids.NewServiceID(),
		Service:    svc,
		Types:      []string{ShardMapType},
		Attributes: shardAttrs(name, r),
	}
	regn, err := reg.Register(item, leaseDur)
	if err != nil {
		return nil, registry.Registration{}, fmt.Errorf("repl: publishing shard map %q: %w", name, err)
	}
	p := &ShardMapPublication{reg: reg, id: item.ID, name: name, r: r}
	r.OnChange(func() {
		// Best effort: a lapsed registration is the renewal manager's
		// problem, not the failover path's.
		_ = reg.ModifyAttributes(p.id, shardAttrs(name, r))
	})
	return p, regn, nil
}

// Close stops republishing and removes the registration.
func (p *ShardMapPublication) Close() error {
	p.r.OnChange(nil)
	return p.reg.Deregister(p.id)
}

// LookupShardMap finds the named shard map in the registry and decodes
// its per-shard attributes.
func LookupShardMap(reg registry.Registrar, name string) ([]ShardInfo, error) {
	item, err := reg.LookupOne(registry.ByName(name, ShardMapType))
	if err != nil {
		return nil, err
	}
	var out []ShardInfo
	for _, e := range item.Attributes {
		if e.Type != ShardAttrType {
			continue
		}
		info := ShardInfo{}
		if v, ok := e.Get("shard"); ok {
			info.Shard, _ = v.(string)
		}
		if v, ok := e.Get("gen"); ok {
			switch n := v.(type) {
			case int64:
				info.Gen = uint64(n)
			case float64:
				info.Gen = uint64(n)
			}
		}
		if v, ok := e.Get("epoch"); ok {
			switch n := v.(type) {
			case int64:
				info.Epoch = uint64(n)
			case float64:
				info.Epoch = uint64(n)
			}
		}
		if v, ok := e.Get("primary"); ok {
			info.Primary, _ = v.(string)
		}
		if v, ok := e.Get("backup"); ok {
			info.Backup, _ = v.(string)
		}
		if v, ok := e.Get("attached"); ok {
			info.Attached, _ = v.(bool)
		}
		if v, ok := e.Get("down"); ok {
			info.Down, _ = v.(bool)
		}
		out = append(out, info)
	}
	return out, nil
}
