package repl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// newSpareNode builds an extra node for handoff targets.
func newSpareNode(t *testing.T, name string) *Node {
	t.Helper()
	n, err := NewNode(name, clockwork.Real(), testPolicy, t.TempDir(),
		WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestRebalanceMovesShardWithoutLosingWrites(t *testing.T) {
	r, a, b := newTestRouter(t)
	c := newSpareNode(t, "c")
	for i := 0; i < 300; i++ { // enough to span catch-up chunks
		if _, err := r.Write(space.NewEntry("job", "n", float64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := r.Shard("s0").Epoch()
	retired, err := r.Rebalance("s0", c)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if retired != b {
		t.Fatalf("retired node = %v, want old backup", retired)
	}
	sh := r.Shard("s0")
	if sh.Primary() != c || sh.Backup() != a || sh.BackupAttached() {
		t.Fatal("handoff did not install target as solo primary with the ex-primary as spare")
	}
	if sh.Epoch() != epochBefore+2 {
		t.Fatalf("epoch = %d, want %d", sh.Epoch(), epochBefore+2)
	}
	got, err := r.TakeAny(space.NewEntry("job"), 1000, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("recovered %d entries after handoff, want 300", len(got))
	}
	// The shard keeps serving writes on the new primary, and the retired
	// ex-primary can come back as its live backup.
	if _, err := r.Write(space.NewEntry("job", "n", float64(1000)), nil, time.Hour); err != nil {
		t.Fatalf("write after handoff: %v", err)
	}
	if err := r.Reattach("s0"); err != nil {
		t.Fatalf("reattach of ex-primary after handoff: %v", err)
	}
	if !sh.BackupAttached() {
		t.Fatal("ex-primary did not reattach")
	}
}

func TestRebalanceUnderLoadLosesNoAckedWrite(t *testing.T) {
	r, _, _ := newTestRouter(t)
	c := newSpareNode(t, "c")

	const writers = 4
	var mu sync.Mutex
	acked := 0
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := space.NewEntry("job", "w", float64(w), "i", float64(i))
				if _, err := r.Write(e, nil, time.Hour); err != nil {
					// The router retries failover-class errors itself;
					// anything surfacing here is a real client-visible
					// failure the handoff contract forbids.
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				acked++
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let load build
	if _, err := r.Rebalance("s0", c); err != nil {
		t.Fatalf("rebalance under load: %v", err)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	n := acked
	mu.Unlock()
	got, err := r.TakeAny(space.NewEntry("job"), n+1000, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < n {
		t.Fatalf("recovered %d entries, want at least the %d acked", len(got), n)
	}
}

func TestRebalanceTargetDeadFailsNonDestructively(t *testing.T) {
	r, a, _ := newTestRouter(t)
	c := newSpareNode(t, "c")
	if _, err := r.Write(space.NewEntry("job", "n", float64(1)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	c.Kill()
	if _, err := r.Rebalance("s0", c); err == nil {
		t.Fatal("rebalance onto a dead target succeeded")
	}
	// The shard still serves from the old primary.
	if r.Shard("s0").Primary() != a {
		t.Fatal("failed handoff displaced the primary")
	}
	if _, err := r.Read(space.NewEntry("job", "n", float64(1)), nil, time.Second); err != nil {
		t.Fatalf("read after failed handoff: %v", err)
	}
	if _, err := r.Write(space.NewEntry("job", "n", float64(2)), nil, time.Hour); err != nil {
		t.Fatalf("write after failed handoff: %v", err)
	}
}

func TestRebalanceStaleGenerationBounces(t *testing.T) {
	r, a, _ := newTestRouter(t)
	c := newSpareNode(t, "c")
	if err := r.AdoptCoordinator(5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RebalanceAs(4, "s0", c); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale RebalanceAs = %v, want ErrStaleEpoch", err)
	}
	if r.Shard("s0").Primary() != a {
		t.Fatal("stale handoff touched the shard")
	}
}
