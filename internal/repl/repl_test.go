package repl

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// testPolicy keeps entry leases generous so nothing expires mid-test.
var testPolicy = lease.Policy{Max: time.Hour, Min: time.Millisecond}

// newPair builds a primary/backup node pair on fresh temp WALs.
func newPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	a, err := NewNode("a", clockwork.Real(), testPolicy, t.TempDir(),
		WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", clockwork.Real(), testPolicy, t.TempDir(),
		WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

// newTestRouter builds a single-shard router over a fresh pair.
func newTestRouter(t *testing.T, opts ...RouterOption) (*Router, *Node, *Node) {
	t.Helper()
	a, b := newPair(t)
	r, err := NewRouter(clockwork.Real(), []ShardSpec{{Name: "s0", Primary: a, Backup: b}}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, a, b
}

func TestReplicatedWriteIsDurableOnBothNodes(t *testing.T) {
	r, a, b := newTestRouter(t)
	for i := 0; i < 5; i++ {
		e := space.NewEntry("job", "n", int64(i))
		if _, err := r.Write(e, nil, time.Hour); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Every acked write shipped synchronously: both logs sit at the same
	// position.
	if ap, bp := a.Log().NextSeq(), b.Log().NextSeq(); ap != bp || ap != 6 {
		t.Fatalf("log positions: primary %d, backup %d, want both 6", ap, bp)
	}
}

func TestFailoverServesEveryAckedWrite(t *testing.T) {
	r, a, _ := newTestRouter(t)
	for i := 0; i < 8; i++ {
		if _, err := r.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	a.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	got, err := r.TakeAny(space.NewEntry("job"), 16, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("recovered %d entries after failover, want 8", len(got))
	}
}

func TestSupersededPrimaryFencesItself(t *testing.T) {
	r, a, b := newTestRouter(t)
	sp := a.CurrentSpace()
	if _, err := r.Write(space.NewEntry("job", "n", int64(1)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	// The backup is promoted behind the primary's back — the partition
	// scenario, with the coordinator on the far side.
	if _, err := b.Promote(a.Epoch() + 1); err != nil {
		t.Fatal(err)
	}
	// The old primary's next write ships under the old epoch, is rejected
	// as stale, and must NOT be acknowledged.
	_, err := sp.Write(space.NewEntry("job", "n", int64(2)), nil, time.Hour)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale primary ack: err = %v, want ErrStaleEpoch", err)
	}
	if !a.IsFenced() {
		t.Fatal("superseded primary did not fence itself")
	}
	// Fenced means fenced: even with the backup healthy again, nothing
	// goes through until the coordinator demotes and reattaches.
	if _, err := sp.Write(space.NewEntry("job", "n", int64(3)), nil, time.Hour); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("fenced primary accepted a write: %v", err)
	}
}

func TestPartitionedShipSuspendsPrimaryWithoutAck(t *testing.T) {
	r, a, b := newTestRouter(t)
	// Cut the replication link: every ship to b now fails.
	inj := faults.New(1, clockwork.Real())
	inj.Set(FaultSiteShip, faults.Rule{ErrorRate: 1, Err: errors.New("link down")})
	b.SetFaultInjector(inj, "")
	sp := a.CurrentSpace()
	_, err := sp.Write(space.NewEntry("job", "n", int64(1)), nil, time.Hour)
	if !errors.Is(err, ErrBackupUnavailable) {
		t.Fatalf("unshippable write: err = %v, want ErrBackupUnavailable", err)
	}
	// Suspended is sticky until the coordinator acts.
	if _, err := sp.Write(space.NewEntry("job", "n", int64(2)), nil, time.Hour); !errors.Is(err, ErrBackupUnavailable) {
		t.Fatalf("suspended primary accepted a write: %v", err)
	}
	// Detach heals the shard: the primary re-recovers from its own log
	// (memory may lag it by the unacked record) and serves solo.
	if err := r.Detach("s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(space.NewEntry("job", "n", int64(3)), nil, time.Hour); err != nil {
		t.Fatalf("write after detach: %v", err)
	}
}

func TestReattachFullResyncRestoresReplication(t *testing.T) {
	r, a, _ := newTestRouter(t)
	for i := 0; i < 6; i++ {
		if _, err := r.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	a.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(space.NewEntry("job", "n", int64(100)), nil, time.Hour); err != nil {
		t.Fatalf("solo write after failover: %v", err)
	}
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := r.Reattach("s0"); err != nil {
		t.Fatal(err)
	}
	if !r.Shard("s0").BackupAttached() {
		t.Fatal("backup not attached after reattach")
	}
	// Replication is synchronous again: a new write lands on both.
	if _, err := r.Write(space.NewEntry("job", "n", int64(101)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	p, bk := r.Shard("s0").Primary(), r.Shard("s0").Backup()
	if pp, bp := p.Log().NextSeq(), bk.Log().NextSeq(); pp != bp {
		t.Fatalf("after reattach: primary at %d, backup at %d", pp, bp)
	}
	// And the resynced backup can itself take over with full state.
	p.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	if n := r.Count(space.NewEntry("job")); n != 8 {
		t.Fatalf("entries after second failover = %d, want 8", n)
	}
}

func TestRouterParksOpsAcrossFailover(t *testing.T) {
	r, a, _ := newTestRouter(t)
	if _, err := r.Write(space.NewEntry("job", "n", int64(1)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Started before the failover; must ride it out and succeed
		// against the promoted primary.
		_, err := r.Take(space.NewEntry("job"), nil, 5*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("take across failover: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("take never completed after failover")
	}
}

func TestMonitorPromotesAfterMissedHeartbeats(t *testing.T) {
	r, a, b := newTestRouter(t)
	r.StartMonitor(5*time.Millisecond, 3)
	if _, err := r.Write(space.NewEntry("job", "n", int64(1)), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	a.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for r.Shard("s0").Primary() != b {
		if time.Now().After(deadline) {
			t.Fatal("monitor never promoted the backup")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := r.Take(space.NewEntry("job"), nil, time.Second); err != nil {
		t.Fatalf("take after monitor-driven failover: %v", err)
	}
}

func TestHeartbeatFaultSiteMakesNodeLookDead(t *testing.T) {
	_, a, _ := newTestRouter(t)
	inj := faults.New(1, clockwork.Real())
	inj.Set(FaultSiteHeartbeat, faults.Rule{ErrorRate: 1, Err: faults.ErrInjected})
	a.SetFaultInjector(inj, "")
	if err := a.Heartbeat(a.Epoch()); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("heartbeat = %v, want injected fault", err)
	}
}

func TestRoutingSpreadsKindsAcrossShards(t *testing.T) {
	a1, b1 := newPair(t)
	a2, b2 := newPair(t)
	r, err := NewRouter(clockwork.Real(), []ShardSpec{
		{Name: "s0", Primary: a1, Backup: b1},
		{Name: "s1", Primary: a2, Backup: b2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	hits := map[string]bool{}
	kinds := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, k := range kinds {
		sh := r.ShardFor(k)
		hits[sh.Name()] = true
		if r.ShardFor(k) != sh {
			t.Fatalf("kind %q routed inconsistently", k)
		}
		if _, err := r.Write(space.NewEntry(k, "x", int64(1)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
		if got := r.Count(space.NewEntry(k)); got != 1 {
			t.Fatalf("kind %q count = %d after routed write", k, got)
		}
	}
	if len(hits) != 2 {
		t.Fatalf("all kinds hashed to one shard: %v", hits)
	}
}

func TestShardMapPublicationTracksFailover(t *testing.T) {
	r, a, b := newTestRouter(t)
	reg := registry.New("lus", clockwork.Real())
	pub, _, err := PublishShardMap(reg, "exertion-space", r, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := pub.Close(); cerr != nil {
			t.Errorf("closing publication: %v", cerr)
		}
	}()
	infos, err := LookupShardMap(reg, "exertion-space")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Primary != "a" || infos[0].Backup != "b" || !infos[0].Attached {
		t.Fatalf("initial shard map = %+v", infos)
	}
	before := infos[0].Epoch
	a.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	infos, err = LookupShardMap(reg, "exertion-space")
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Primary != b.Name() || infos[0].Epoch <= before || infos[0].Attached {
		t.Fatalf("post-failover shard map = %+v (epoch before %d)", infos, before)
	}
}

func TestFollowerCrashDuringCatchUpLeavesAttachRetryable(t *testing.T) {
	r, a, _ := newTestRouter(t)
	for i := 0; i < 4; i++ {
		if _, err := r.Write(space.NewEntry("job", "n", int64(i)), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	a.Kill()
	if _, err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	// The restarted spare rejects the catch-up ship: attach must fail,
	// leave the primary serving solo, and succeed on a later retry.
	inj := faults.New(1, clockwork.Real())
	inj.Set(FaultSiteShip, faults.Rule{ErrorRate: 1, Err: errors.New("still partitioned")})
	a.SetFaultInjector(inj, "")
	if err := r.Reattach("s0"); err == nil {
		t.Fatal("reattach through a dead link succeeded")
	}
	if _, err := r.Write(space.NewEntry("job", "n", int64(99)), nil, time.Hour); err != nil {
		t.Fatalf("solo write after failed attach: %v", err)
	}
	a.SetFaultInjector(nil, "")
	if err := r.Reattach("s0"); err != nil {
		t.Fatalf("retried reattach: %v", err)
	}
	if !r.Shard("s0").BackupAttached() {
		t.Fatal("backup not attached after retried reattach")
	}
}
