// Coordinator replicas: the lease-fenced coordination plane.
//
// PR 6 gave every shard a failover-capable primary/backup pair, but the
// promotion logic itself — the Router's heartbeat monitor — ran in
// exactly one place. A Coordinator replica wraps that logic in a
// registry-backed coordination lease: N replicas compete for the
// single-holder lease, the winner adopts its fencing token as the
// router's coordinator generation and runs the monitor, and the
// standbys keep bidding so one of them takes over within a lease term
// of the holder dying. Every decision the holder makes carries its
// token, so a deposed holder that keeps acting (split-brain) bounces
// off requireCoordGen exactly like a stale primary bounces off an
// epoch check.
package repl

import (
	"errors"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sync"
)

// DefaultCoordResource is the coordination-lease name replicas compete
// for when the config leaves Resource empty.
const DefaultCoordResource = "sensorcer.space-coordinator"

// CoordinatorConfig tunes one coordinator replica.
type CoordinatorConfig struct {
	// Resource is the coordination-lease name (DefaultCoordResource if
	// empty). Replicas coordinating the same router must agree on it.
	Resource string
	// Term is the coordination-lease duration; a dead holder is
	// replaced within one term.
	Term time.Duration
	// Interval is the heartbeat probe period while leading.
	Interval time.Duration
	// Misses is how many consecutive heartbeat failures fail a shard
	// over.
	Misses int
}

// Coordinator is one replica of the coordination plane. Run competes
// for the coordination lease; while holding it the replica drives
// fenced failovers off heartbeat misses and renews at half-term, and on
// any renewal failure it stops acting immediately and rejoins the
// standby contest.
type Coordinator struct {
	name    string
	clock   clockwork.Clock
	grantor registry.CoordGrantor
	r       *Router
	cfg     CoordinatorConfig

	mu      sync.Mutex
	token   uint64
	leading bool
	killed  bool

	closed   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator creates a replica named name (the lease holder id)
// coordinating r through the grantor. Call Start to enter the contest.
func NewCoordinator(name string, clock clockwork.Clock, grantor registry.CoordGrantor, r *Router, cfg CoordinatorConfig) *Coordinator {
	if cfg.Resource == "" {
		cfg.Resource = DefaultCoordResource
	}
	if cfg.Term <= 0 {
		cfg.Term = 5 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Term / 10
	}
	if cfg.Misses <= 0 {
		cfg.Misses = 3
	}
	return &Coordinator{
		name:    name,
		clock:   clock,
		grantor: grantor,
		r:       r,
		cfg:     cfg,
		closed:  make(chan struct{}),
	}
}

// Name returns the replica's holder id.
func (c *Coordinator) Name() string { return c.name }

// Leading reports whether this replica currently holds the coordination
// lease, and under which fencing token.
func (c *Coordinator) Leading() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token, c.leading
}

// Start enters the coordination contest in the background.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go c.run()
}

// Stop abdicates in an orderly way: the lease is cancelled so a standby
// wins the very next bid instead of waiting out the term.
func (c *Coordinator) Stop() { c.halt(false) }

// Kill simulates the holder dying: loops stop but the lease is left to
// lapse, so the standbys' takeover races the lease expiry — the case
// the chaos suite drills.
func (c *Coordinator) Kill() { c.halt(true) }

func (c *Coordinator) halt(kill bool) {
	c.mu.Lock()
	c.killed = c.killed || kill
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.closed) })
	c.wg.Wait()
}

// run is the replica's lifecycle: bid, lead, step down, repeat.
func (c *Coordinator) run() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		g, err := c.grantor.AcquireCoordination(c.cfg.Resource, c.name, c.cfg.Term)
		if err != nil {
			// Held by a live rival (or the grantor is unreachable):
			// stand by for a fraction of a term and bid again.
			if !c.standby(c.cfg.Term / 4) {
				return
			}
			continue
		}
		c.lead(g)
	}
}

// standby sleeps d, returning false if the replica was stopped.
func (c *Coordinator) standby(d time.Duration) bool {
	if d <= 0 {
		d = time.Millisecond
	}
	t := c.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
		return false
	case <-t.C():
		return true
	}
}

// lead is one tenure as coordination-lease holder. It returns when the
// replica is deposed (renewal or a fenced decision bounced), the lease
// could not be adopted, or the replica is stopped.
func (c *Coordinator) lead(g lease.FencedGrant) {
	if err := c.r.AdoptCoordinator(g.Token); err != nil {
		// The router has already accepted a later holder; this token is
		// stillborn. Free the name for the live contest and stand by.
		_ = g.Lease.Cancel()
		return
	}
	c.mu.Lock()
	c.token, c.leading = g.Token, true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.leading = false
		c.mu.Unlock()
	}()

	misses := make([]int, len(c.r.Shards()))
	t := c.clock.NewTimer(c.cfg.Interval)
	defer t.Stop()
	renewAt := g.Lease.Expiration.Add(-c.cfg.Term / 2)
	for {
		select {
		case <-c.closed:
			c.mu.Lock()
			killed := c.killed
			c.mu.Unlock()
			if !killed {
				_ = g.Lease.Cancel()
			}
			return
		case <-t.C():
		}
		if !c.clock.Now().Before(renewAt) {
			if err := g.Lease.Renew(c.cfg.Term); err != nil {
				// Deposed or partitioned from the grantor: stop acting
				// immediately — the token may already be superseded.
				return
			}
			renewAt = g.Lease.Expiration.Add(-c.cfg.Term / 2)
		}
		if !c.probe(g.Token, misses) {
			return
		}
		t.Reset(c.cfg.Interval)
	}
}

// probe heartbeats every shard primary and fails over any that missed
// too many in a row, all under the tenure's fencing token. It returns
// false when a decision bounced as stale — proof a later holder has
// taken over.
func (c *Coordinator) probe(token uint64, misses []int) bool {
	for i, sh := range c.r.Shards() {
		sh.mu.Lock()
		primary, epoch, down := sh.primary, sh.epoch, sh.down
		sh.mu.Unlock()
		if down {
			continue
		}
		switch err := primary.Heartbeat(epoch); {
		case errors.Is(err, ErrStaleEpoch):
			// The shard reconfigured between reading its state and the
			// probe (an attach or rebalance bumped the node's epoch
			// ahead of the published one). The primary is alive enough
			// to fence us — not a liveness miss.
			misses[i] = 0
		case err != nil:
			misses[i]++
		default:
			misses[i] = 0
		}
		if misses[i] >= c.cfg.Misses {
			misses[i] = 0
			if _, err := c.r.FailoverAs(token, sh.name); errors.Is(err, ErrStaleEpoch) {
				return false
			}
		}
	}
	return true
}
