// Package repl is the primary/backup replication layer for the exertion
// space. A replicated shard is a pair of Nodes, each owning a segmented
// WAL (internal/wal): the primary serves a durable tuple space whose
// journal ships every appended batch to the backup synchronously —
// journal-before-ack becomes *replicated*-journal-before-ack, so an
// acknowledged mutation is durable on both nodes before the caller sees
// nil. On top of the pair sit failure detection (heartbeats on the
// injected clock), automatic backup promotion under a fencing epoch, and
// a shard-aware Router (consistent-hashed by entry kind) that Spacers and
// workers use so a shard failover looks like a transient retry, not an
// outage.
//
// # Epoch fencing
//
// Every membership change — promotion, backup attach, backup detach — is
// ordered by a single coordinator (the Router) and carries a strictly
// increasing epoch per shard. Replication traffic is tagged with the
// sender's epoch and a node refuses anything older than what it has seen
// (ErrStaleEpoch). Because a primary acknowledges a mutation only after
// its follower accepted the shipped batch, a superseded primary — say,
// one cut off by a partition while its backup was promoted — cannot
// acknowledge anything: its ships are rejected as stale, it fences
// itself, and every in-flight operation fails without an ack. The guard
// installed into the space (space.SetGuard) enforces the same fence
// before any record is journaled.
//
// # What double failure does and does not guarantee
//
// A single node loss never loses an acknowledged mutation: the survivor
// holds every acked record. After a failover the promoted primary runs
// solo — acks are locally durable only — until the coordinator attaches
// a new backup (which always full-resyncs: snapshot install plus log
// tail). A solo primary that crashes and restarts recovers every ack
// from its own log; only losing the solo primary's disk before a backup
// reattaches loses acks, which is the inherent limit of a two-node pair.
package repl

import (
	"errors"

	"sensorcer/internal/space"
)

// Fault-injection site suffixes consulted by a Node's replication
// endpoints (appended to the base site handed to SetFaultInjector).
const (
	// FaultSiteShip is consulted by ShipBatch/ShipSnapshot on the
	// receiving node: injected errors reject the shipped batch — the
	// in-process stand-in for a partition between primary and backup.
	FaultSiteShip = "/repl/ship"
	// FaultSiteHeartbeat is consulted by Heartbeat on the receiving
	// node: injected errors make the node look dead to the monitor.
	FaultSiteHeartbeat = "/repl/heartbeat"
)

// Errors returned by the replication layer.
var (
	// ErrStaleEpoch rejects traffic from a superseded configuration: the
	// sender's epoch is older than what the receiver has seen. A primary
	// observing it fences itself — it has been replaced.
	ErrStaleEpoch = errors.New("repl: stale epoch")
	// ErrNotPrimary is returned by mutation paths on a node that is not
	// currently the serving primary.
	ErrNotPrimary = errors.New("repl: node is not the primary")
	// ErrNotBackup is returned by replication endpoints on a node that
	// is not currently a backup.
	ErrNotBackup = errors.New("repl: node is not a backup")
	// ErrNodeDown is returned by every operation on a killed node.
	ErrNodeDown = errors.New("repl: node is down")
	// ErrBackupUnavailable suspends a primary whose ship to its backup
	// failed for a reason other than a stale epoch: the mutation is in
	// the local log but unacknowledged, so the node must not serve
	// further traffic until the coordinator detaches or replaces the
	// backup (which re-recovers the space from the log).
	ErrBackupUnavailable = errors.New("repl: backup unavailable; node suspended")
	// ErrNoShards is returned by a Router with an empty shard set.
	ErrNoShards = errors.New("repl: router has no shards")
	// ErrShardDown is returned when a shard has no serviceable replica
	// (double failure with nothing restarted yet).
	ErrShardDown = errors.New("repl: shard has no serviceable replica")
)

// Follower is where a primary ships its journal: the backup half of a
// shard, reachable either in-process (*Node implements Follower) or over
// srpc (remote.ReplicationClient).
type Follower interface {
	// ShipBatch applies payloads at explicit sequences (payloads[0] is
	// firstSeq) under the sender's epoch, durably, and returns the
	// follower's next expected sequence. Idempotent for re-shipped
	// prefixes. An empty batch is a position probe.
	ShipBatch(epoch, firstSeq uint64, payloads [][]byte) (uint64, error)
	// ShipSnapshot installs a snapshot covering seq, replacing the
	// follower's log contents — the full-resync path.
	ShipSnapshot(epoch, seq uint64, data []byte) error
	// Heartbeat probes liveness under the sender's epoch.
	Heartbeat(epoch uint64) error
}

// IsFailoverErr reports whether err is the kind of failure a shard
// failover (or rebind to the promoted primary) can cure — as opposed to
// an operation-level outcome like a timeout or a validation error. The
// Router retries these against the shard's next configuration.
func IsFailoverErr(err error) bool {
	return errors.Is(err, space.ErrClosed) ||
		errors.Is(err, ErrStaleEpoch) ||
		errors.Is(err, ErrNotPrimary) ||
		errors.Is(err, ErrNodeDown) ||
		errors.Is(err, ErrBackupUnavailable) ||
		errors.Is(err, ErrShardDown)
}
