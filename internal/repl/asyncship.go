// Async-ship mode: the latency/durability dial on a replicated primary.
//
// In the default synchronous mode an acknowledged write is durable on
// both replicas — the journal ships inside the ack path. WithAsyncShip
// moves the ship off the ack path: the primary acknowledges after the
// local journal append and a background shipper replays the batches to
// the backup in order, with the acknowledged-but-unshipped backlog
// bounded by maxLag records. The degradation ladder when the mode's
// assumptions break:
//
//  1. lag bound hit — enqueue blocks until the shipper drains below the
//     bound: the node transparently degrades to sync-ship pacing.
//  2. ship error — the shipper records the error, drops its queue (the
//     records are all in the local log, which any reattach full-resyncs
//     from) and suspends the node via shipFailed, exactly like a
//     synchronous ship failure; nothing further is acknowledged.
//  3. checkpoint — snapshot ships stay synchronous: WriteSnapshot drains
//     the queue first so the backup never sees a snapshot from the
//     future of its log.
//
// The tradeoff is explicit: in async mode a primary crash can lose up
// to maxLag acknowledged records on the surviving backup. Deployments
// that cannot afford that keep the default; the write-ack benchmarks
// (BenchmarkWriteAckAsyncShip) measure what the relaxation buys.
package repl

import "sync"

// shipItem is one journaled batch awaiting background shipment.
type shipItem struct {
	epoch    uint64
	f        Follower
	firstSeq uint64
	payloads [][]byte
}

// asyncShipper is the background ship pipeline of one node. All
// coordination runs over one mutex/cond pair: enqueue blocks while the
// backlog exceeds the lag bound, drain blocks until it empties, and the
// run goroutine ships strictly in enqueue (= journal) order.
type asyncShipper struct {
	node   *Node
	maxLag int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []shipItem
	inFlight int // records journaled locally but not yet shipped
	err      error
	stopped  bool
	done     chan struct{}

	// scratch is the run goroutine's reusable coalesce buffer: ships are
	// strictly sequential, so the previous ship is done with it by the
	// time the next coalesce runs. run clears it after each coalesced
	// ship so payload bytes aren't pinned between ships.
	scratch [][]byte
}

// newAsyncShipper starts the pipeline.
func newAsyncShipper(n *Node, maxLag int) *asyncShipper {
	s := &asyncShipper{node: n, maxLag: maxLag, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// enqueue hands a journaled batch to the shipper, blocking while the
// acknowledged-but-unshipped backlog exceeds the lag bound (the
// sync-ship degradation). A non-nil return means the batch will never
// ship — the caller must not acknowledge.
//
//lint:blockok ack-lag backpressure: waiting out the ship backlog under the shipper's own mutex is the bounded-lag contract; the cond is signalled by the run goroutine, which never takes space or node locks while holding it
func (s *asyncShipper) enqueue(epoch uint64, f Follower, firstSeq uint64, payloads [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && !s.stopped && s.inFlight > s.maxLag {
		s.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	if s.stopped {
		return ErrNodeDown
	}
	s.queue = append(s.queue, shipItem{epoch: epoch, f: f, firstSeq: firstSeq, payloads: payloads})
	s.inFlight += len(payloads)
	s.cond.Broadcast()
	return nil
}

// drain blocks until every enqueued batch has shipped (or the pipeline
// failed). Checkpoints call it so snapshot ships stay ordered after the
// record ships they compact.
//
//lint:blockok checkpoint ordering: waiting for the ship backlog under the shipper's own mutex keeps snapshot ships behind the record ships they compact; the cond is signalled by the run goroutine, which never takes space or node locks while holding it
func (s *asyncShipper) drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && !s.stopped && s.inFlight > 0 {
		s.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	if s.stopped {
		return ErrNodeDown
	}
	return nil
}

// reset clears a latched ship failure after the coordinator has
// re-established replication (a reattach full-resyncs the backup from
// the local log, which holds every record the queue dropped).
func (s *asyncShipper) reset() {
	s.mu.Lock()
	s.err = nil
	s.mu.Unlock()
}

// stop shuts the pipeline down, failing blocked enqueues; pending
// batches are dropped (they are all in the local log).
func (s *asyncShipper) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.queue = nil
	s.inFlight = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// run ships queued batches in order until stopped.
//
//lint:blockok pipeline idle-wait: the run goroutine parks on its own cond until work arrives; it holds no space or node locks, and every signaller takes only s.mu
func (s *asyncShipper) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for !s.stopped && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		it, n := s.coalesceLocked()
		s.queue = s.queue[n:]
		s.mu.Unlock()

		err := s.ship(it)
		if n > 1 {
			// it.payloads is the scratch buffer; drop the record
			// references now that the wire is done with them.
			clear(it.payloads)
		}

		s.mu.Lock()
		s.inFlight -= len(it.payloads)
		if err != nil && s.err == nil {
			s.err = err
			s.queue = nil
			s.inFlight = 0
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			// Suspend (or fence) the node exactly like a synchronous ship
			// failure — outside s.mu, since shipFailed takes n.mu.
			_ = s.node.shipFailed(err)
		}
	}
}

// coalesceLocked merges the contiguous head of the queue — same epoch,
// same follower, gapless sequence — into one ship, returning it and how
// many queue items it covers. This is what makes async mode pay under
// sustained load: while one wire ship is in flight the backlog (bounded
// by maxLag) accumulates behind it, and the next ship carries the whole
// backlog in a single round trip instead of replaying the wire latency
// per journaled batch.
func (s *asyncShipper) coalesceLocked() (shipItem, int) {
	it := s.queue[0]
	n := 1
	total := len(it.payloads)
	for ; n < len(s.queue); n++ {
		nxt := s.queue[n]
		if nxt.epoch != it.epoch || nxt.f != it.f ||
			nxt.firstSeq != it.firstSeq+uint64(total) {
			break
		}
		total += len(nxt.payloads)
	}
	if n == 1 {
		return it, 1
	}
	combined := s.scratch[:0]
	if cap(combined) < total {
		combined = make([][]byte, 0, total)
	}
	for _, q := range s.queue[:n] {
		combined = append(combined, q.payloads...)
	}
	s.scratch = combined
	return shipItem{epoch: it.epoch, f: it.f, firstSeq: it.firstSeq, payloads: combined}, n
}

// ship sends one batch under its enqueue-time epoch. A batch whose
// epoch the node has moved past is dropped, not failed: the attach that
// bumped the epoch full-resyncs the backup from the local log, which
// already holds these records.
func (s *asyncShipper) ship(it shipItem) error {
	if err := s.node.requireEpochAttaching(it.epoch); err != nil {
		return nil
	}
	_, err := it.f.ShipBatch(it.epoch, it.firstSeq, it.payloads)
	return err
}
