package subscribe

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/event"
	"sensorcer/internal/expr"
	"sensorcer/internal/lease"
	"sensorcer/internal/sensor/probe"
)

// ErrDuplicateToken rejects a Subscribe reusing a live token.
var ErrDuplicateToken = errors.New("subscribe: token already subscribed")

// ErrUnknownToken rejects a Resume for a token the hub does not hold —
// never subscribed, cancelled, or parked past its lease.
var ErrUnknownToken = errors.New("subscribe: unknown subscription token")

// ErrAlreadyAttached rejects a Resume while the subscription still has a
// live sink.
var ErrAlreadyAttached = errors.New("subscribe: subscription already attached")

// ErrHubClosed rejects operations on a closed hub.
var ErrHubClosed = errors.New("subscribe: hub closed")

// DefaultParkCapacity bounds readings stored per parked subscription.
const DefaultParkCapacity = 256

// Hub owns the subscriber registry and the fan-out: Publish offers one
// reading to every subscription's filter, and each subscription's pump
// goroutine pushes conflated updates into its sink at the consumer's
// pace. Publish never blocks on any subscriber.
type Hub struct {
	clock   clockwork.Clock
	parkCap int
	// mailbox store-and-forwards readings for parked durable
	// subscriptions, with lease-bounded retention.
	mailbox *event.Mailbox

	mu     sync.RWMutex
	subs   map[string]*subscription
	closed bool

	wg        sync.WaitGroup
	published atomic.Uint64
}

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithHubClock injects a clock (tests).
func WithHubClock(c clockwork.Clock) HubOption {
	return func(h *Hub) { h.clock = c }
}

// WithParkCapacity bounds the stored backlog per parked subscription
// (default DefaultParkCapacity; oldest readings drop first).
func WithParkCapacity(n int) HubOption {
	return func(h *Hub) {
		if n > 0 {
			h.parkCap = n
		}
	}
}

// NewHub creates an empty subscription hub.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{
		clock:   clockwork.Real(),
		parkCap: DefaultParkCapacity,
		subs:    make(map[string]*subscription),
	}
	for _, o := range opts {
		o(h)
	}
	h.mailbox = event.NewMailbox(h.clock, lease.Policy{Max: lease.DefaultMax}, h.parkCap)
	return h
}

// subscription is one registered subscriber. Its pending map conflates
// undelivered readings latest-per-sensor; the pump goroutine drains it
// into the sink as credit allows.
type subscription struct {
	hub     *Hub
	token   string
	filter  Filter
	prog    *expr.Program
	durable bool
	ttl     time.Duration

	mu sync.Mutex
	// Exactly one of sink (attached) or box (parked durable) is non-nil;
	// both nil only transiently during resume.
	sink     Sink
	stop     chan struct{}
	box      *event.Box
	boxLease lease.Lease
	// pending is the conflation buffer: latest reading per sensor, with
	// order preserving first arrival.
	pending map[string]probe.Reading
	order   []string
	// dropped counts readings conflated away or lost since the last
	// delivered update.
	dropped uint64
	// lastVal is the last accepted value per sensor (min-change filter).
	lastVal map[string]float64
	seq     uint64
	// evSeq numbers readings stored while parked, so box overflow shows
	// as a SeqNo discontinuity.
	evSeq      uint64
	lastSentAt time.Time
	gone       bool
	// paced is the filter's MinInterval > 0, fixed at Subscribe: paced
	// subscriptions always deliver through the pump.
	paced bool
	// delivering serializes delivery: at most one goroutine (the pump or
	// an inline publisher) drains pending into the sink at a time, so
	// updates leave in seq order.
	delivering bool
	// notify (capacity 1) wakes the pump when pending gains data.
	notify chan struct{}
}

// Subscribe registers a new subscription under the caller-chosen token
// and starts pushing matching updates into sink. A durable subscription
// survives sink loss: it parks with a lease of ttl, buffering filtered
// readings for a later Resume.
func (h *Hub) Subscribe(token string, f Filter, sink Sink, durable bool, ttl time.Duration) error {
	if token == "" {
		return errors.New("subscribe: empty subscription token")
	}
	if sink == nil {
		return errors.New("subscribe: nil sink")
	}
	prog, err := filterProg(f)
	if err != nil {
		return err
	}
	s := &subscription{
		hub:     h,
		token:   token,
		filter:  f,
		prog:    prog,
		durable: durable,
		ttl:     ttl,
		paced:   f.MinInterval() > 0,
		pending: make(map[string]probe.Reading),
		lastVal: make(map[string]float64),
		notify:  make(chan struct{}, 1),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	if _, dup := h.subs[token]; dup {
		h.mu.Unlock()
		return ErrDuplicateToken
	}
	h.subs[token] = s
	h.mu.Unlock()
	h.attach(s, sink)
	return nil
}

// Resume reattaches a parked durable subscription: the buffered backlog
// (plus the drop count of anything the capacity bound discarded) ships
// as the first update on the new sink.
func (h *Hub) Resume(token string, sink Sink) error {
	if sink == nil {
		return errors.New("subscribe: nil sink")
	}
	h.mu.RLock()
	s := h.subs[token]
	h.mu.RUnlock()
	if s == nil {
		return ErrUnknownToken
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return ErrUnknownToken
	}
	if s.box == nil {
		s.mu.Unlock()
		return ErrAlreadyAttached
	}
	box, lse := s.box, s.boxLease
	s.box = nil
	s.mu.Unlock()
	backlog, gap := box.DrainWithDropped(0)
	_ = lse.Cancel()
	s.mu.Lock()
	s.dropped += gap
	for _, ev := range backlog {
		r, ok := ev.Payload.(probe.Reading)
		if !ok {
			continue
		}
		s.mergeLocked(r)
	}
	hasPending := len(s.order) > 0
	s.mu.Unlock()
	h.attach(s, sink)
	if hasPending {
		s.signal()
	}
	return nil
}

// attach installs sink and starts its pump.
func (h *Hub) attach(s *subscription, sink Sink) {
	stop := make(chan struct{})
	s.mu.Lock()
	s.sink = sink
	s.stop = stop
	s.mu.Unlock()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		s.pump(sink, stop)
	}()
}

// Detach handles sink loss (the subscriber's connection dropped): a
// durable subscription parks behind a leased store-and-forward box; an
// ephemeral one is cancelled. Idempotent.
func (h *Hub) Detach(token string) {
	h.mu.RLock()
	s := h.subs[token]
	h.mu.RUnlock()
	if s == nil {
		return
	}
	if !s.durable {
		h.remove(token)
		return
	}
	h.park(s)
}

// park moves a durable subscription from its sink to a leased box,
// migrating any pending conflated readings so nothing delivered late is
// lost.
func (h *Hub) park(s *subscription) {
	box, lse := h.mailbox.Register(s.ttl)
	s.mu.Lock()
	if s.gone || s.box != nil || s.sink == nil {
		s.mu.Unlock()
		_ = lse.Cancel()
		return
	}
	stop, sink := s.stop, s.sink
	s.stop, s.sink = nil, nil
	s.box = box
	s.boxLease = lse
	for _, k := range s.order {
		r := s.pending[k]
		delete(s.pending, k)
		s.evSeq++
		_ = box.Notify(event.RemoteEvent{SeqNo: s.evSeq, Timestamp: r.Timestamp, Payload: r})
	}
	s.order = s.order[:0]
	s.mu.Unlock()
	close(stop)
	sink.Close(nil)
}

// Cancel removes a subscription entirely, durable or not.
func (h *Hub) Cancel(token string) { h.remove(token) }

func (h *Hub) remove(token string) {
	h.mu.Lock()
	s := h.subs[token]
	delete(h.subs, token)
	h.mu.Unlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gone = true
	stop, sink := s.stop, s.sink
	box, lse := s.box, s.boxLease
	s.stop, s.sink, s.box = nil, nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if sink != nil {
		sink.Close(nil)
	}
	if box != nil {
		_ = lse.Cancel()
	}
}

// Publish offers one reading to every subscription. It runs the filter
// chain per subscriber and, for unpaced subscriptions whose sink can
// accept immediately, the (never-blocking) send itself; everything that
// would make the publisher wait — pacing, an exhausted credit window, a
// dead sink — is handed to the subscription's pump, so a stalled or
// parked subscriber costs the publisher nothing beyond the filter
// check.
func (h *Hub) Publish(r probe.Reading) {
	// Expire lapsed park leases first, so offers to dead boxes fail and
	// their subscriptions get reaped below.
	h.mailbox.Sweep()
	var expired []string
	h.mu.RLock()
	for token, s := range h.subs {
		if !s.offer(r) {
			expired = append(expired, token)
		}
	}
	h.mu.RUnlock()
	// Parked subscriptions whose lease lapsed are dropped outside the
	// registry read lock.
	for _, token := range expired {
		h.remove(token)
	}
	h.published.Add(1)
}

// Published reports how many readings were fanned out.
func (h *Hub) Published() uint64 { return h.published.Load() }

// Count reports live subscriptions (attached and parked).
func (h *Hub) Count() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}

// Close cancels every subscription and waits for the pumps to exit.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	tokens := make([]string, 0, len(h.subs))
	for token := range h.subs {
		tokens = append(tokens, token)
	}
	h.mu.Unlock()
	for _, token := range tokens {
		h.remove(token)
	}
	h.wg.Wait()
}

// offer runs the filter chain and routes an accepted reading into the
// conflation buffer (attached) or the parked box. It reports false when
// the subscription is dead (parked lease expired) so Publish can reap
// it.
//
// An attached, unpaced subscription whose sink is idle is delivered
// inline on the publisher's goroutine: TrySend never blocks, so the
// publisher pays an encode and a buffer append instead of waking the
// pump — at fan-out scale that removes a goroutine handoff per
// subscriber per reading. The pump keeps everything the inline path
// declines: pacing, credit waits, and teardown.
func (s *subscription) offer(r probe.Reading) bool {
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return false
	}
	last, have := s.lastVal[r.Sensor]
	if !matches(s.filter, s.prog, r, last, have) {
		s.mu.Unlock()
		return true
	}
	s.lastVal[r.Sensor] = r.Value
	if s.box != nil {
		s.evSeq++
		err := s.box.Notify(event.RemoteEvent{SeqNo: s.evSeq, Timestamp: r.Timestamp, Payload: r})
		if err != nil {
			// The park lease expired underneath us.
			s.gone = true
			s.mu.Unlock()
			return false
		}
		s.mu.Unlock()
		return true
	}
	s.mergeLocked(r)
	sink := s.sink
	if s.paced || s.delivering || sink == nil {
		// Paced, mid-resume, or a deliverer is active — it rechecks
		// pending before standing down, so the merge is covered.
		if !s.delivering {
			select {
			case s.notify <- struct{}{}:
			default:
			}
		}
		s.mu.Unlock()
		return true
	}
	s.delivering = true
	s.mu.Unlock()
	s.deliverInline(sink)
	return true
}

// deliverInline drains pending on the publisher's goroutine while the
// sends stay trivially cheap. The moment a send cannot complete
// immediately — no credit, sink closed — it stands down and hands the
// subscription to the pump, which owns waiting and teardown.
//
//lint:blockok TrySend is contractually non-blocking (a credit check and a buffer append; an exhausted window returns ErrSinkBlocked instead of waiting), so the publisher holding Hub.mu is never coupled to a subscriber's progress
func (s *subscription) deliverInline(sink Sink) {
	for {
		u, ok := s.take()
		if !ok {
			s.release()
			return
		}
		err := sink.TrySend(u)
		if err == nil {
			continue
		}
		if errors.Is(err, ErrSinkBlocked) {
			s.requeue(u)
		}
		s.release()
		s.signal()
		return
	}
}

// release clears the delivering flag, re-signalling the pump if an
// offer merged new pending after the deliverer's last (empty) take —
// that offer saw the flag and skipped its own wakeup.
func (s *subscription) release() {
	s.mu.Lock()
	s.delivering = false
	stranded := len(s.order) > 0
	s.mu.Unlock()
	if stranded {
		s.signal()
	}
}

// mergeLocked conflates r into pending: latest value wins per sensor,
// and a superseded reading counts as dropped.
func (s *subscription) mergeLocked(r probe.Reading) {
	if _, exists := s.pending[r.Sensor]; exists {
		s.dropped++
	} else {
		s.order = append(s.order, r.Sensor)
	}
	s.pending[r.Sensor] = r
}

func (s *subscription) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// pump is the per-subscription delivery goroutine: woken by offer, it
// drains the conflation buffer into the sink, pacing to the filter's
// min-interval and parking on the sink's Ready channel when credit runs
// out. It exits when the attachment stops (park or cancel) or the sink
// reports its consumer gone.
func (s *subscription) pump(sink Sink, stop <-chan struct{}) {
	for {
		select {
		case <-s.notify:
		case <-stop:
			return
		case <-sink.Done():
			s.hub.Detach(s.token)
			return
		}
		if !s.acquire() {
			// An inline deliverer is active; it re-signals on stand-down
			// if anything is left for the pump.
			continue
		}
		ok := s.deliver(sink, stop)
		s.release()
		if !ok {
			return
		}
	}
}

// acquire takes the delivering flag, failing if a deliverer is active.
func (s *subscription) acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delivering {
		return false
	}
	s.delivering = true
	return true
}

// deliver drains pending into the sink; false means the pump must exit.
func (s *subscription) deliver(sink Sink, stop <-chan struct{}) bool {
	clock := s.hub.clock
	// Pacing bookkeeping (two clock reads per delivery) is only worth
	// paying when the filter actually asks for it; the unpaced fan-out
	// path stays clock-free.
	paced := s.filter.MinInterval() > 0
	for {
		// Pace before taking, so readings landing inside the min-interval
		// window conflate instead of queueing.
		if d := s.paceDelay(paced, clock); d > 0 {
			timer := clock.NewTimer(d)
			select {
			case <-timer.C():
			case <-stop:
				timer.Stop()
				return false
			case <-sink.Done():
				timer.Stop()
				s.hub.Detach(s.token)
				return false
			}
		}
		u, ok := s.take()
		if !ok {
			return true
		}
		err := sink.TrySend(u)
		switch {
		case err == nil:
			if paced {
				s.sent(clock.Now())
			}
		case errors.Is(err, ErrSinkBlocked):
			// Put the snapshot back (newer arrivals win) and wait for
			// credit; conflation continues in pending meanwhile.
			s.requeue(u)
			select {
			case <-sink.Ready():
			case <-stop:
				return false
			case <-sink.Done():
				s.hub.Detach(s.token)
				return false
			}
		default:
			// Closed or broken sink: treat as a disconnect.
			s.hub.Detach(s.token)
			return false
		}
	}
}

// take drains pending into one Update (false when empty).
func (s *subscription) take() (*Update, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		return nil, false
	}
	readings := make([]probe.Reading, 0, len(s.order))
	for _, k := range s.order {
		readings = append(readings, s.pending[k])
		delete(s.pending, k)
	}
	s.order = s.order[:0]
	s.seq++
	u := &Update{SeqNo: s.seq, Dropped: s.dropped, Readings: readings}
	s.dropped = 0
	return u, true
}

// requeue returns an undeliverable snapshot to pending. A sensor that
// gained a newer reading while the snapshot was out keeps the newer one;
// the snapshot's copy counts as dropped. Only the pump calls this, so
// unwinding the seq it took is safe.
func (s *subscription) requeue(u *Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq--
	s.dropped += u.Dropped
	restored := make([]string, 0, len(u.Readings))
	for _, r := range u.Readings {
		if _, exists := s.pending[r.Sensor]; exists {
			s.dropped++
			continue
		}
		s.pending[r.Sensor] = r
		restored = append(restored, r.Sensor)
	}
	s.order = append(restored, s.order...)
}

func (s *subscription) paceDelay(paced bool, clock clockwork.Clock) time.Duration {
	if !paced {
		return 0
	}
	min := s.filter.MinInterval()
	s.mu.Lock()
	last := s.lastSentAt
	s.mu.Unlock()
	if last.IsZero() {
		return 0
	}
	if elapsed := clock.Now().Sub(last); elapsed < min {
		return min - elapsed
	}
	return 0
}

func (s *subscription) sent(now time.Time) {
	s.mu.Lock()
	s.lastSentAt = now
	s.mu.Unlock()
}
