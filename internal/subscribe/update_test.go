package subscribe

import (
	"testing"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/wire"
)

func TestUpdateCodecRoundTrip(t *testing.T) {
	base := time.Unix(1700000000, 0)
	var enc UpdateEncoder
	var dec UpdateDecoder
	updates := []Update{
		{SeqNo: 1, Dropped: 0, Readings: []probe.Reading{
			{Sensor: "rtd-1", Kind: "temperature", Unit: "celsius", Value: 21.53, Timestamp: base},
			{Sensor: "rtd-2", Kind: "temperature", Unit: "celsius", Value: -3.07, Timestamp: base.Add(5 * time.Millisecond)},
		}},
		// Second update: same sensors ride the dictionary, one new.
		{SeqNo: 2, Dropped: 3, Readings: []probe.Reading{
			{Sensor: "rtd-1", Kind: "temperature", Unit: "celsius", Value: 21.6, Timestamp: base.Add(time.Second)},
			{Sensor: "hygro", Kind: "humidity", Unit: "percent", Value: 40.25, Timestamp: base.Add(1100 * time.Millisecond)},
		}},
		// Empty keep-alive update.
		{SeqNo: 3, Dropped: 1},
	}
	for i, u := range updates {
		b := enc.Append(nil, &u)
		got, err := dec.Decode(b)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if got.SeqNo != u.SeqNo || got.Dropped != u.Dropped || len(got.Readings) != len(u.Readings) {
			t.Fatalf("update %d header: got %+v want %+v", i, got, u)
		}
		for j, r := range u.Readings {
			g := got.Readings[j]
			if g.Sensor != r.Sensor || g.Kind != r.Kind || g.Unit != r.Unit {
				t.Fatalf("update %d reading %d meta: got %+v want %+v", i, j, g, r)
			}
			if d := g.Value - r.Value; d > wire.Quantum/2 || d < -wire.Quantum/2 {
				t.Fatalf("update %d reading %d value: got %v want %v", i, j, g.Value, r.Value)
			}
			if g.Timestamp.UnixMilli() != r.Timestamp.UnixMilli() {
				t.Fatalf("update %d reading %d time: got %v want %v", i, j, g.Timestamp, r.Timestamp)
			}
		}
	}
}

// TestUpdateCodecDictionaryAmortizes: after the first update, repeats of
// the same sensor cost a few bytes, not its meta strings.
func TestUpdateCodecDictionaryAmortizes(t *testing.T) {
	base := time.Unix(1700000000, 0)
	var enc UpdateEncoder
	u := Update{SeqNo: 1, Readings: []probe.Reading{
		{Sensor: "a-rather-long-sensor-name", Kind: "temperature", Unit: "celsius", Value: 20, Timestamp: base},
	}}
	first := len(enc.Append(nil, &u))
	u.SeqNo = 2
	second := len(enc.Append(nil, &u))
	if second >= first {
		t.Fatalf("dictionary did not amortize: first %dB, second %dB", first, second)
	}
	if second > 16 {
		t.Fatalf("steady-state reading costs %dB, want a handful", second)
	}
}

func TestUpdateCodecHostileInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0x01, 0x00},
		{0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f}, // absurd count
		{0x01, 0x00, 0x01, 1, 2, 3, 4, 5, 6, 7, 8}, // count 1, base, then truncated
		// ref pointing past the (empty) dictionary
		append([]byte{0x01, 0x00, 0x01, 1, 2, 3, 4, 5, 6, 7, 8}, 0x05, 0x00, 0x00),
	}
	for i, b := range cases {
		var dec UpdateDecoder
		if _, err := dec.Decode(b); err == nil {
			t.Fatalf("case %d: hostile input decoded", i)
		}
	}
}
