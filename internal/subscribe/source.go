package subscribe

import (
	"sync"
	"sync/atomic"

	"sensorcer/internal/event"
	"sensorcer/internal/sensor/probe"
)

// Reader is the slice of sensor.DataAccessor the source needs — one
// evaluated read. Declared locally so this package does not depend on
// internal/sensor; any ESP or CSP satisfies it.
type Reader interface {
	GetValue() (probe.Reading, error)
}

// Source is the single-eval fan-out point: upstream deltas (ESP
// reading-update events, or explicit Notify calls) mark it dirty, and
// its loop evaluates the reader exactly once per dirt burst and
// publishes the result to the hub. This is where N subscribers stop
// costing N evaluations — a burst of upstream deltas during one
// evaluation coalesces into at most one more.
type Source struct {
	hub    *Hub
	reader Reader

	// dirty (capacity 1) coalesces upstream deltas.
	dirty chan struct{}
	evals atomic.Uint64

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSource creates a source publishing reader's values to hub.
func NewSource(hub *Hub, reader Reader) *Source {
	return &Source{
		hub:    hub,
		reader: reader,
		dirty:  make(chan struct{}, 1),
	}
}

// Notify marks the upstream dirty; the loop re-evaluates at most once
// per pending mark. Safe from any goroutine, never blocks.
func (s *Source) Notify() {
	select {
	case s.dirty <- struct{}{}:
	default:
	}
}

// Listener adapts the source to the event model: register it with an
// ESP's generator and every reading-update marks the source dirty.
func (s *Source) Listener() event.Listener {
	return event.ListenerFunc(func(event.RemoteEvent) error {
		s.Notify()
		return nil
	})
}

// Evals reports how many times the reader was evaluated — the quantity
// that stays flat as subscribers grow.
func (s *Source) Evals() uint64 { return s.evals.Load() }

// Start launches the evaluation loop (no-op if running).
func (s *Source) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go s.loop(stop, done)
}

func (s *Source) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-s.dirty:
		case <-stop:
			return
		}
		r, err := s.reader.GetValue()
		s.evals.Add(1)
		if err != nil {
			continue
		}
		s.hub.Publish(r)
	}
}

// Stop halts the loop. The source can be restarted.
func (s *Source) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
