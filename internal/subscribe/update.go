// The update wire codec: a compact, stream-stateful delta encoding for
// subscription updates, riding srpc's binary fast path as payload shape
// ShapeUpdate. Sensor metadata (name, kind, unit) is sent once per
// stream and referenced by index afterwards, timestamps ride as
// millisecond deltas from a per-update base — which itself rides as a
// millisecond delta from the previous update's base, so the steady
// state pays one or two bytes where an absolute stamp costs eight —
// and values are quantized svarints at wire.Quantum. The steady-state
// cost of one delivered reading is a few bytes, not a JSON object. The
// per-stream state is safe because srpc streams are ordered and
// reliable: the decoder sees every meta and every base exactly when
// the encoder emitted it.
package subscribe

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/wire"
)

// ShapeUpdate is the srpc payload-shape tag for a subscription update.
// Shape tags are allocated per package: srpc reserves 0, internal/remote
// owns 1..31, internal/wire owns 32..47, this package owns 48+.
const ShapeUpdate byte = 48

// updateMeta is the per-sensor metadata sent once per stream.
type updateMeta struct {
	sensor string
	kind   string
	unit   string
}

// UpdateEncoder encodes updates for one stream, carrying the meta
// dictionary and the previous update's base timestamp. Not safe for
// concurrent use — each stream's pump owns one.
type UpdateEncoder struct {
	idx map[updateMeta]uint64
	// prevBaseMS is the decoder-visible base of the last non-empty
	// update, in unix millis; the next base is sent as a delta from it.
	prevBaseMS int64
}

// Append encodes u:
//
//	uvarint seq | uvarint dropped | uvarint count |
//	[count > 0: svarint millis(base - previous base)] then per reading:
//	  uvarint ref      0 = new sensor, meta strings follow and the
//	                   sensor takes the next dictionary index;
//	                   else dictionary index + 1
//	  [ref == 0: sensor | kind | unit, each uvarint-length-prefixed]
//	  svarint millis(timestamp - base)
//	  svarint round(value / wire.Quantum)
//
// The base is the first reading's timestamp at millisecond resolution;
// the first non-empty update on a stream pays the absolute unix-millis
// value (prevBaseMS starts at zero), every later one a small delta.
func (e *UpdateEncoder) Append(b []byte, u *Update) []byte {
	b = wire.AppendUvarint(b, u.SeqNo)
	b = wire.AppendUvarint(b, u.Dropped)
	b = wire.AppendUvarint(b, uint64(len(u.Readings)))
	if len(u.Readings) == 0 {
		return b
	}
	baseMS := u.Readings[0].Timestamp.UnixMilli()
	b = wire.AppendSvarint(b, baseMS-e.prevBaseMS)
	e.prevBaseMS = baseMS
	for _, r := range u.Readings {
		m := updateMeta{sensor: r.Sensor, kind: r.Kind, unit: r.Unit}
		if ref, known := e.idx[m]; known {
			b = wire.AppendUvarint(b, ref+1)
		} else {
			if e.idx == nil {
				e.idx = make(map[updateMeta]uint64)
			}
			e.idx[m] = uint64(len(e.idx))
			b = append(b, 0)
			b = wire.AppendString(b, r.Sensor)
			b = wire.AppendString(b, r.Kind)
			b = wire.AppendString(b, r.Unit)
		}
		b = wire.AppendSvarint(b, r.Timestamp.UnixMilli()-baseMS)
		b = wire.AppendSvarint(b, int64(math.Round(r.Value/wire.Quantum)))
	}
	return b
}

// UpdateDecoder decodes one stream's updates, growing the meta
// dictionary in the order the encoder introduced entries and tracking
// the previous base timestamp the base deltas chain from. Not safe for
// concurrent use.
type UpdateDecoder struct {
	metas []updateMeta
	// prevBaseMS mirrors the encoder's: the base of the last non-empty
	// update, in unix millis.
	prevBaseMS int64
}

// errTruncated reports malformed update bytes.
var errTruncated = errors.New("subscribe: truncated update")

// Decode parses one encoded update.
func (d *UpdateDecoder) Decode(b []byte) (Update, error) {
	seq, b, ok := wire.ConsumeUvarint(b)
	if !ok {
		return Update{}, errTruncated
	}
	dropped, b, ok := wire.ConsumeUvarint(b)
	if !ok {
		return Update{}, errTruncated
	}
	count, b, ok := wire.ConsumeUvarint(b)
	if !ok {
		return Update{}, errTruncated
	}
	u := Update{SeqNo: seq, Dropped: dropped}
	if count == 0 {
		if len(b) != 0 {
			return Update{}, errTruncated
		}
		return u, nil
	}
	// Each reading costs at least 3 bytes (ref, delta, value), so a
	// hostile count cannot force a huge allocation.
	if count > uint64(len(b))/3+1 {
		return Update{}, errTruncated
	}
	baseDelta, b, ok := wire.ConsumeSvarint(b)
	if !ok {
		return Update{}, errTruncated
	}
	baseMS := d.prevBaseMS + baseDelta
	d.prevBaseMS = baseMS
	u.Readings = make([]probe.Reading, 0, count)
	for i := uint64(0); i < count; i++ {
		ref, rest, ok := wire.ConsumeUvarint(b)
		if !ok {
			return Update{}, errTruncated
		}
		b = rest
		var m updateMeta
		if ref == 0 {
			var sOk, kOk, uOk bool
			m.sensor, b, sOk = wire.ConsumeString(b)
			m.kind, b, kOk = wire.ConsumeString(b)
			m.unit, b, uOk = wire.ConsumeString(b)
			if !sOk || !kOk || !uOk {
				return Update{}, errTruncated
			}
			d.metas = append(d.metas, m)
		} else {
			if ref > uint64(len(d.metas)) {
				return Update{}, fmt.Errorf("subscribe: update references unknown sensor meta %d (dictionary has %d)", ref-1, len(d.metas))
			}
			m = d.metas[ref-1]
		}
		deltaMS, rest, ok := wire.ConsumeSvarint(b)
		if !ok {
			return Update{}, errTruncated
		}
		q, rest, ok := wire.ConsumeSvarint(rest)
		if !ok {
			return Update{}, errTruncated
		}
		b = rest
		u.Readings = append(u.Readings, probe.Reading{
			Sensor:    m.sensor,
			Kind:      m.kind,
			Unit:      m.unit,
			Value:     float64(q) * wire.Quantum,
			Timestamp: time.UnixMilli(baseMS + deltaMS),
		})
	}
	if len(b) != 0 {
		return Update{}, errTruncated
	}
	return u, nil
}

// WireUpdate adapts an Update to srpc's structural binary-payload
// interfaces (SrpcShape/AppendSrpc/UnmarshalSrpc) without importing
// srpc. Enc backs sends, Dec backs receives; U points at the update to
// encode or fill.
type WireUpdate struct {
	U   *Update
	Enc *UpdateEncoder
	Dec *UpdateDecoder
}

// SrpcShape tags the payload.
func (w WireUpdate) SrpcShape() byte { return ShapeUpdate }

// AppendSrpc encodes the update through the stream's encoder.
func (w WireUpdate) AppendSrpc(b []byte) ([]byte, error) {
	return w.Enc.Append(b, w.U), nil
}

// UnmarshalSrpc decodes an update through the stream's decoder.
func (w *WireUpdate) UnmarshalSrpc(shape byte, b []byte) error {
	if shape != ShapeUpdate {
		return fmt.Errorf("subscribe: unexpected payload shape %#x", shape)
	}
	u, err := w.Dec.Decode(b)
	if err != nil {
		return err
	}
	*w.U = u
	return nil
}
