// Package subscribe is the push-based subscription plane (ROADMAP item
// 2): instead of N clients polling one composite — N round trips and N
// expression evaluations per update — clients register a filter once and
// the provider evaluates once per upstream delta, fanning the result out
// to every matching subscriber over multiplexed srpc streams.
//
// The plane has three parts. A Source watches an upstream accessor
// (typically a CSP) and evaluates it exactly once per delta burst. The
// Hub owns the subscriber registry: each subscription carries a Filter
// (sensor set, an expr predicate, min-change and max-rate bounds) and a
// Sink the pump goroutine pushes matching Updates into. Flow control is
// the sink's: TrySend never blocks, and a sink without credit makes the
// pump conflate — latest value wins per sensor key, with a dropped
// count revealing the loss — so a stalled subscriber costs itself
// staleness, never publisher throughput or sibling delivery.
package subscribe

import (
	"errors"
	"time"

	"sensorcer/internal/expr"
	"sensorcer/internal/sensor/probe"
)

// Filter selects which readings a subscription receives and how often.
// The zero Filter matches every reading at full rate.
type Filter struct {
	// Sensors limits delivery to readings from the named sensors; empty
	// matches all.
	Sensors []string `json:"sensors,omitempty"`
	// Expr is an expression-VM predicate evaluated per candidate reading
	// with `value`, `sensor`, `kind` and `unit` bound; a falsy result
	// suppresses delivery. Empty means no predicate.
	Expr string `json:"expr,omitempty"`
	// MinChange suppresses a reading whose value moved less than this
	// from the last accepted value of the same sensor.
	MinChange float64 `json:"min_change,omitempty"`
	// MinIntervalMS paces delivery: updates are at least this many
	// milliseconds apart, intervening readings conflating to latest.
	MinIntervalMS int64 `json:"min_interval_ms,omitempty"`
}

// MinInterval returns the pacing bound as a duration.
func (f Filter) MinInterval() time.Duration {
	return time.Duration(f.MinIntervalMS) * time.Millisecond
}

// Update is one delivery to a subscriber: the readings that survived
// filtering and conflation since the previous update.
type Update struct {
	// SeqNo increases by one per update on a subscription.
	SeqNo uint64
	// Dropped counts readings lost to conflation or overflow since the
	// previous update — non-zero means the subscriber saw a gap.
	Dropped uint64
	// Readings are the surviving readings, latest per sensor, in first-
	// arrival key order.
	Readings []probe.Reading
}

// Sink is where a subscription's pump pushes updates — in practice an
// srpc server stream. TrySend must never block: it reports
// ErrSinkBlocked when the consumer's credit window is empty (the pump
// conflates and parks on Ready) and ErrSinkClosed once the consumer is
// gone.
type Sink interface {
	TrySend(u *Update) error
	// Ready is signaled when a blocked sink may accept again.
	Ready() <-chan struct{}
	// Done closes when the sink is gone.
	Done() <-chan struct{}
	// Close ends the sink from the producer side (nil = orderly).
	Close(err error)
}

// ErrSinkBlocked is returned by Sink.TrySend when the consumer has no
// credit; the pump conflates until Ready fires.
var ErrSinkBlocked = errors.New("subscribe: sink out of credit")

// ErrSinkClosed is returned by Sink.TrySend after the consumer is gone.
var ErrSinkClosed = errors.New("subscribe: sink closed")

// filterProg compiles the Filter's expression predicate ("" = none).
func filterProg(f Filter) (*expr.Program, error) {
	if f.Expr == "" {
		return nil, nil
	}
	p, err := expr.Compile(f.Expr)
	if err != nil {
		return nil, errors.Join(errors.New("subscribe: bad filter expression"), err)
	}
	return p, nil
}

// matches applies the full filter chain (sensor set, min-change,
// predicate) to one reading given the last accepted value for its
// sensor.
func matches(f Filter, prog *expr.Program, r probe.Reading, last float64, haveLast bool) bool {
	if len(f.Sensors) > 0 {
		found := false
		for _, s := range f.Sensors {
			if s == r.Sensor {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if f.MinChange > 0 && haveLast {
		d := r.Value - last
		if d < 0 {
			d = -d
		}
		if d < f.MinChange {
			return false
		}
	}
	if prog != nil {
		v, err := prog.Eval(expr.Env{
			"value":  r.Value,
			"sensor": r.Sensor,
			"kind":   r.Kind,
			"unit":   r.Unit,
		})
		if err != nil {
			return false
		}
		switch t := v.(type) {
		case bool:
			return t
		case float64:
			return t != 0
		default:
			return false
		}
	}
	return true
}
