package subscribe

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/sensor/probe"
)

// testSink is an in-process Sink with an explicit credit window, mirroring
// the srpc stream contract.
type testSink struct {
	mu      sync.Mutex
	updates []*Update
	credit  int
	closed  bool
	err     error
	ready   chan struct{}
	done    chan struct{}
	// delivered signals each accepted update (capacity-buffered).
	delivered chan *Update
}

func newTestSink(credit int) *testSink {
	return &testSink{
		credit:    credit,
		ready:     make(chan struct{}, 1),
		done:      make(chan struct{}),
		delivered: make(chan *Update, 1024),
	}
}

func (k *testSink) TrySend(u *Update) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return ErrSinkClosed
	}
	if k.credit <= 0 {
		return ErrSinkBlocked
	}
	k.credit--
	k.updates = append(k.updates, u)
	select {
	case k.delivered <- u:
	default:
	}
	return nil
}

func (k *testSink) grant(n int) {
	k.mu.Lock()
	k.credit += n
	k.mu.Unlock()
	select {
	case k.ready <- struct{}{}:
	default:
	}
}

func (k *testSink) Ready() <-chan struct{} { return k.ready }
func (k *testSink) Done() <-chan struct{}  { return k.done }

func (k *testSink) Close(err error) {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return
	}
	k.closed = true
	k.err = err
	k.mu.Unlock()
	close(k.done)
}

func (k *testSink) all() []*Update {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Update, len(k.updates))
	copy(out, k.updates)
	return out
}

func (k *testSink) recv(t *testing.T, timeout time.Duration) *Update {
	t.Helper()
	select {
	case u := <-k.delivered:
		return u
	case <-time.After(timeout):
		t.Fatal("timed out waiting for an update")
		return nil
	}
}

func reading(sensor string, v float64) probe.Reading {
	return probe.Reading{Sensor: sensor, Kind: "temperature", Unit: "celsius", Value: v, Timestamp: time.Unix(1700000000, 0)}
}

func TestHubDelivers(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(100)
	if err := h.Subscribe("tok", Filter{}, sink, false, 0); err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-1", 21.5))
	u := sink.recv(t, 2*time.Second)
	if len(u.Readings) != 1 || u.Readings[0].Sensor != "rtd-1" || u.Readings[0].Value != 21.5 {
		t.Fatalf("update = %+v", u)
	}
	if u.SeqNo != 1 || u.Dropped != 0 {
		t.Fatalf("seq/dropped = %d/%d", u.SeqNo, u.Dropped)
	}
}

func TestHubSensorAndExprFilter(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(100)
	err := h.Subscribe("tok", Filter{Sensors: []string{"rtd-1"}, Expr: "value > 20"}, sink, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-2", 99))  // wrong sensor
	h.Publish(reading("rtd-1", 10))  // fails predicate
	h.Publish(reading("rtd-1", 25))  // passes
	u := sink.recv(t, 2*time.Second)
	if len(u.Readings) != 1 || u.Readings[0].Value != 25 {
		t.Fatalf("update = %+v", u)
	}
}

func TestHubBadExprRejected(t *testing.T) {
	h := NewHub()
	defer h.Close()
	if err := h.Subscribe("tok", Filter{Expr: "value >"}, newTestSink(1), false, 0); err == nil {
		t.Fatal("malformed filter expression accepted")
	}
}

func TestHubMinChange(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(100)
	if err := h.Subscribe("tok", Filter{MinChange: 0.5}, sink, false, 0); err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-1", 20.0)) // first always passes
	sink.recv(t, 2*time.Second)
	h.Publish(reading("rtd-1", 20.2)) // moved 0.2 < 0.5: suppressed
	h.Publish(reading("rtd-1", 20.8)) // moved 0.8 from last accepted: passes
	u := sink.recv(t, 2*time.Second)
	if len(u.Readings) != 1 || u.Readings[0].Value != 20.8 {
		t.Fatalf("update = %+v", u)
	}
}

// TestHubSlowConsumerConflates is the conflation contract: a subscriber
// with no credit accumulates latest-per-sensor, and the next delivered
// update carries the final values plus an accurate dropped count.
func TestHubSlowConsumerConflates(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(1)
	if err := h.Subscribe("tok", Filter{}, sink, false, 0); err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-1", 1))
	first := sink.recv(t, 2*time.Second) // consumed the only credit
	if first.Readings[0].Value != 1 {
		t.Fatalf("first = %+v", first)
	}
	// Burst while stalled: 10 readings for rtd-1, 3 for rtd-2.
	for i := 2; i <= 11; i++ {
		h.Publish(reading("rtd-1", float64(i)))
	}
	for i := 1; i <= 3; i++ {
		h.Publish(reading("rtd-2", float64(100+i)))
	}
	// Let the pump observe the blocked sink and conflate.
	time.Sleep(50 * time.Millisecond)
	sink.grant(10)
	u := sink.recv(t, 2*time.Second)
	got := map[string]float64{}
	for _, r := range u.Readings {
		got[r.Sensor] = r.Value
	}
	if got["rtd-1"] != 11 || got["rtd-2"] != 103 {
		t.Fatalf("latest-per-key violated: %+v", got)
	}
	// 13 readings accepted, 2 delivered in this update: 11 conflated away.
	if u.Dropped != 11 {
		t.Fatalf("dropped = %d, want 11", u.Dropped)
	}
	if u.SeqNo != first.SeqNo+1 {
		t.Fatalf("seq jumped: %d after %d", u.SeqNo, first.SeqNo)
	}
}

// TestHubStalledSubscriberDoesNotBlockSiblings: the publisher keeps
// shipping to a live subscriber at full rate while another is stalled —
// the acceptance criterion's seeded slow-consumer test.
func TestHubStalledSubscriberDoesNotBlockSiblings(t *testing.T) {
	h := NewHub()
	defer h.Close()
	stalled := newTestSink(0) // never any credit
	live := newTestSink(1 << 20)
	if err := h.Subscribe("stalled", Filter{}, stalled, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Subscribe("live", Filter{}, live, false, 0); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	start := time.Now()
	for i := 0; i < n; i++ {
		h.Publish(reading("rtd-1", float64(i)))
	}
	publishTime := time.Since(start)
	// Publish must not have parked on the stalled subscriber: 2000
	// publishes complete in far under the pump's multi-second timescale.
	if publishTime > 5*time.Second {
		t.Fatalf("publisher stalled: %d publishes took %v", n, publishTime)
	}
	// The live subscriber converges on the final value.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var last float64 = -1
		for _, u := range live.all() {
			for _, r := range u.Readings {
				last = r.Value
			}
		}
		if last == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live subscriber never saw the final value (last %v)", last)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(stalled.all()); got != 0 {
		t.Fatalf("stalled sink received %d updates with zero credit", got)
	}
}

// TestHubDetachCancelsEphemeral: losing the sink of a non-durable
// subscription removes it.
func TestHubDetachCancelsEphemeral(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(10)
	if err := h.Subscribe("tok", Filter{}, sink, false, 0); err != nil {
		t.Fatal(err)
	}
	sink.Close(nil) // consumer gone
	deadline := time.Now().Add(2 * time.Second)
	for h.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription not reaped; count = %d", h.Count())
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.Resume("tok", newTestSink(1)); err != ErrUnknownToken {
		t.Fatalf("resume after cancel = %v, want ErrUnknownToken", err)
	}
}

// TestHubParkResume: a durable subscription survives sink loss, buffers
// while parked, and the resume update carries backlog plus the drop gap.
func TestHubParkResume(t *testing.T) {
	h := NewHub(WithParkCapacity(4))
	defer h.Close()
	sink := newTestSink(10)
	if err := h.Subscribe("tok", Filter{}, sink, true, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-1", 1))
	sink.recv(t, 2*time.Second)
	sink.Close(nil) // disconnect → parks
	deadline := time.Now().Add(2 * time.Second)
	for {
		h.mu.RLock()
		s := h.subs["tok"]
		h.mu.RUnlock()
		s.mu.Lock()
		parked := s.box != nil
		s.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durable subscription never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if h.Count() != 1 {
		t.Fatalf("count after park = %d, want 1", h.Count())
	}
	// 6 distinct sensors into a capacity-4 box: 2 oldest drop.
	for i := 0; i < 6; i++ {
		h.Publish(probe.Reading{Sensor: "s" + string(rune('a'+i)), Value: float64(i), Timestamp: time.Unix(1700000100, 0)})
	}
	sink2 := newTestSink(10)
	if err := h.Resume("tok", sink2); err != nil {
		t.Fatal(err)
	}
	u := sink2.recv(t, 2*time.Second)
	if len(u.Readings) != 4 {
		t.Fatalf("resume update has %d readings, want 4", len(u.Readings))
	}
	if u.Dropped != 2 {
		t.Fatalf("resume dropped = %d, want 2 (gap from park overflow)", u.Dropped)
	}
	// The survivors are the newest 4.
	if u.Readings[0].Sensor != "sc" || u.Readings[3].Sensor != "sf" {
		t.Fatalf("resume kept wrong window: %+v", u.Readings)
	}
	// And delivery continues live.
	h.Publish(reading("rtd-1", 2))
	u2 := sink2.recv(t, 2*time.Second)
	if u2.Readings[0].Value != 2 {
		t.Fatalf("post-resume update = %+v", u2)
	}
}

func TestHubResumeErrors(t *testing.T) {
	h := NewHub()
	defer h.Close()
	if err := h.Resume("nope", newTestSink(1)); err != ErrUnknownToken {
		t.Fatalf("unknown token: %v", err)
	}
	sink := newTestSink(1)
	if err := h.Subscribe("tok", Filter{}, sink, true, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := h.Resume("tok", newTestSink(1)); err != ErrAlreadyAttached {
		t.Fatalf("attached resume: %v", err)
	}
	if err := h.Subscribe("tok", Filter{}, newTestSink(1), false, 0); err != ErrDuplicateToken {
		t.Fatalf("duplicate: %v", err)
	}
}

// TestHubParkedLeaseExpiry: a parked subscription whose lease lapses is
// reaped on the next publish.
func TestHubParkedLeaseExpiry(t *testing.T) {
	clock := clockwork.NewFake(time.Unix(1700000000, 0))
	h := NewHub(WithHubClock(clock))
	defer h.Close()
	sink := newTestSink(10)
	if err := h.Subscribe("tok", Filter{}, sink, true, time.Second); err != nil {
		t.Fatal(err)
	}
	h.Detach("tok") // park with 1s lease
	if h.Count() != 1 {
		t.Fatalf("count after park = %d", h.Count())
	}
	clock.Advance(2 * time.Second)
	h.Publish(reading("rtd-1", 1))
	if h.Count() != 0 {
		t.Fatalf("expired parked subscription survived; count = %d", h.Count())
	}
	if err := h.Resume("tok", newTestSink(1)); err != ErrUnknownToken {
		t.Fatalf("resume after expiry = %v, want ErrUnknownToken", err)
	}
}

// TestHubMinIntervalPacing: with a min-interval, deliveries space out and
// intervening readings conflate.
func TestHubMinIntervalPacing(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sink := newTestSink(1000)
	if err := h.Subscribe("tok", Filter{MinIntervalMS: 100}, sink, false, 0); err != nil {
		t.Fatal(err)
	}
	h.Publish(reading("rtd-1", 1))
	sink.recv(t, 2*time.Second)
	// A burst inside the pacing window conflates to one update.
	for i := 2; i <= 5; i++ {
		h.Publish(reading("rtd-1", float64(i)))
	}
	u := sink.recv(t, 2*time.Second)
	if u.Readings[0].Value != 5 {
		t.Fatalf("paced update = %+v, want conflated latest 5", u.Readings)
	}
	select {
	case extra := <-sink.delivered:
		t.Fatalf("pacing violated: extra update %+v", extra)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestHubCloseStopsPumps: Close with stalled and live subscribers leaks
// no goroutines.
func TestHubCloseStopsPumps(t *testing.T) {
	before := runtime.NumGoroutine()
	h := NewHub()
	for i := 0; i < 10; i++ {
		if err := h.Subscribe("tok"+string(rune('0'+i)), Filter{}, newTestSink(0), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		h.Publish(reading("rtd-1", float64(i)))
	}
	h.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
}

// TestSourceSingleEval: a burst of upstream deltas coalesces into at
// most two evaluations regardless of subscriber count.
func TestSourceSingleEval(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sinks := make([]*testSink, 50)
	for i := range sinks {
		sinks[i] = newTestSink(1000)
		if err := h.Subscribe("tok"+string(rune('0'+i/10))+string(rune('0'+i%10)), Filter{}, sinks[i], false, 0); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	evals := 0
	src := NewSource(h, readerFunc(func() (probe.Reading, error) {
		mu.Lock()
		evals++
		v := evals
		mu.Unlock()
		time.Sleep(10 * time.Millisecond) // make evaluation slow enough to coalesce under
		return reading("composite", float64(v)), nil
	}))
	src.Start()
	defer src.Stop()
	// 100 upstream deltas in a burst.
	for i := 0; i < 100; i++ {
		src.Notify()
	}
	// Every subscriber gets the pushed value.
	for _, k := range sinks {
		k.recv(t, 5*time.Second)
	}
	mu.Lock()
	n := evals
	mu.Unlock()
	if n > 2 {
		t.Fatalf("burst of 100 deltas cost %d evaluations, want ≤ 2", n)
	}
	if src.Evals() != uint64(n) {
		t.Fatalf("Evals() = %d, want %d", src.Evals(), n)
	}
}

type readerFunc func() (probe.Reading, error)

func (f readerFunc) GetValue() (probe.Reading, error) { return f() }
