package sorcer

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/space"
	"sensorcer/internal/txn"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

// rig is a one-LUS federation for tests.
type rig struct {
	bus      *discovery.Bus
	lus      *registry.LookupService
	mgr      *discovery.Manager
	accessor *Accessor
	exerter  *Exerter
	joins    []*discovery.Join
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{bus: discovery.NewBus()}
	r.lus = registry.New("test-lus", clockwork.NewFake(epoch))
	cancel := r.bus.Announce(r.lus)
	r.mgr = discovery.NewManager(r.bus)
	r.accessor = NewAccessor(r.mgr)
	r.exerter = NewExerter(r.accessor)
	t.Cleanup(func() {
		for _, j := range r.joins {
			j.Terminate()
		}
		r.mgr.Terminate()
		cancel()
		r.lus.Close()
	})
	return r
}

func (r *rig) publish(t *testing.T, p *Provider) {
	t.Helper()
	j := p.Publish(clockwork.Real(), r.mgr, nil)
	r.joins = append(r.joins, j)
}

// adderProvider implements an "Adder" service type with an "add" op.
func adderProvider(name string) *Provider {
	p := NewProvider(name, "Adder")
	p.RegisterOp("add", func(ctx *Context) error {
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		b, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+b)
		return nil
	})
	return p
}

func TestExertTask(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))

	task := NewTask("add", Sig("Adder", "add"), NewContextFrom("arg/a", 3.0, "arg/b", 4.0))
	res, err := r.exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status() != Done {
		t.Fatalf("status = %v", res.Status())
	}
	v, err := res.Context().Float("result/value")
	if err != nil || v != 7 {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestExertTaskByProviderName(t *testing.T) {
	r := newRig(t)
	one := adderProvider("Adder-1")
	two := NewProvider("Adder-2", "Adder")
	two.RegisterOp("add", func(ctx *Context) error {
		ctx.Put("result/value", -1.0) // wrong on purpose, to detect binding
		return nil
	})
	r.publish(t, one)
	r.publish(t, two)

	sig := Sig("Adder", "add")
	sig.ProviderName = "Adder-2"
	task := NewTask("add", sig, NewContextFrom("arg/a", 1.0, "arg/b", 1.0))
	res, err := r.exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Context().Float("result/value"); v != -1 {
		t.Fatal("ProviderName pin not honored")
	}
}

func TestExertNoProvider(t *testing.T) {
	r := newRig(t)
	task := NewTask("x", Sig("Missing", "op"), nil)
	_, err := r.exerter.Exert(task, nil)
	if !errors.Is(err, ErrNoProvider) {
		t.Fatalf("err = %v", err)
	}
	if task.Status() != Failed {
		t.Fatalf("status = %v", task.Status())
	}
}

func TestExertUnknownSelector(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	task := NewTask("x", Sig("Adder", "subtract"), nil)
	if _, err := r.exerter.Exert(task, nil); !errors.Is(err, ErrUnknownSelector) {
		t.Fatalf("err = %v", err)
	}
}

// flakyProvider fails the first n invocations.
func flakyProvider(name string, failures int) *Provider {
	p := NewProvider(name, "Flaky")
	var count atomic.Int64
	p.RegisterOp("run", func(ctx *Context) error {
		if count.Add(1) <= int64(failures) {
			return errors.New("transient fault")
		}
		ctx.Put("by", name)
		return nil
	})
	return p
}

func TestFMIRebindsOnFailure(t *testing.T) {
	// The failing provider is tried, errors, and the exerter moves to an
	// equivalent provider — the paper's §V-A re-binding behaviour.
	r := newRig(t)
	r.publish(t, flakyProvider("Flaky-1", 1_000_000)) // always fails
	r.publish(t, flakyProvider("Flaky-2", 0))         // always works

	task := NewTask("run", Sig("Flaky", "run"), nil)
	res, err := r.exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if by, _ := res.Context().Get("by"); by != "Flaky-2" {
		t.Fatalf("served by %v, want the healthy provider", by)
	}
}

func TestFMIAllBindingsFail(t *testing.T) {
	r := newRig(t)
	r.publish(t, flakyProvider("Flaky-1", 1_000_000))
	task := NewTask("run", Sig("Flaky", "run"), nil)
	_, err := r.exerter.Exert(task, nil)
	if err == nil || !strings.Contains(err.Error(), "binding(s) failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalJobberSequentialWithPipes(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))

	t1 := NewTask("first", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 2.0))
	t2 := NewTask("second", Sig("Adder", "add"), NewContextFrom("arg/b", 10.0))
	job := NewJob("chain", Strategy{
		Flow:   Sequential,
		Access: Push,
		Pipes:  []Pipe{{FromIndex: 0, FromPath: "result/value", ToIndex: 1, ToPath: "arg/a"}},
	}, t1, t2)

	res, err := r.exerter.Exert(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status() != Done {
		t.Fatalf("status = %v", res.Status())
	}
	v, err := res.Context().Float("second/result/value")
	if err != nil || v != 13 {
		t.Fatalf("piped result = %v, %v (ctx: %s)", v, err, res.Context())
	}
}

func TestJobberParallel(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	var tasks []Exertion
	for i := 0; i < 8; i++ {
		tasks = append(tasks, NewTask(fmt.Sprintf("t%d", i),
			Sig("Adder", "add"), NewContextFrom("arg/a", float64(i), "arg/b", 1.0)))
	}
	job := NewJob("par", Strategy{Flow: Parallel, Access: Push}, tasks...)
	res, err := r.exerter.Exert(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v, err := res.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+1) {
			t.Fatalf("t%d = %v, %v", i, v, err)
		}
	}
}

func TestJobFailsWhenComponentFails(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	good := NewTask("good", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 1.0))
	bad := NewTask("bad", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0)) // missing arg/b
	job := NewJob("j", Strategy{Flow: Sequential, Access: Push}, good, bad)
	_, err := r.exerter.Exert(job, nil)
	if err == nil || job.Status() != Failed {
		t.Fatalf("err = %v, status = %v", err, job.Status())
	}
}

func TestPipeValidation(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	t1 := NewTask("a", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 1.0))
	t2 := NewTask("b", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 1.0))
	// Forward pipe (from later to earlier) is invalid.
	job := NewJob("j", Strategy{
		Flow:  Sequential,
		Pipes: []Pipe{{FromIndex: 1, FromPath: "x", ToIndex: 0, ToPath: "y"}},
	}, t1, t2)
	if _, err := r.exerter.Exert(job, nil); err == nil {
		t.Fatal("forward pipe accepted")
	}
}

func TestRegisteredJobberUsedForPushJobs(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	jb := NewJobber("Jobber-1", r.exerter)
	join := PublishServicer(clockwork.Real(), r.mgr, jb, jb.ID(), jb.Name(), []string{JobberType}, nil)
	defer join.Terminate()

	task := NewTask("t", Sig("Adder", "add"), NewContextFrom("arg/a", 2.0, "arg/b", 3.0))
	job := NewJob("j", Strategy{Flow: Sequential, Access: Push}, task)
	res, err := r.exerter.Exert(job, nil)
	if err != nil || res.Status() != Done {
		t.Fatalf("err = %v, status = %v", err, res.Status())
	}
	if v, _ := res.Context().Float("t/result/value"); v != 5 {
		t.Fatalf("result = %v", v)
	}
}

func TestSpacerPullJob(t *testing.T) {
	r := newRig(t)
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()

	// Two adder providers work the space.
	p1, p2 := adderProvider("Adder-1"), adderProvider("Adder-2")
	w1 := NewSpaceWorker(sp, p1, "Adder")
	w2 := NewSpaceWorker(sp, p2, "Adder")
	defer w1.Stop()
	defer w2.Stop()

	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second))
	join := PublishServicer(clockwork.Real(), r.mgr, spacer, spacer.ID(), spacer.Name(), []string{SpacerType}, nil)
	defer join.Terminate()

	var tasks []Exertion
	for i := 0; i < 6; i++ {
		tasks = append(tasks, NewTask(fmt.Sprintf("t%d", i),
			Sig("Adder", "add"), NewContextFrom("arg/a", float64(i), "arg/b", 100.0)))
	}
	job := NewJob("pull-job", Strategy{Flow: Parallel, Access: Pull}, tasks...)
	res, err := r.exerter.Exert(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, err := res.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+100) {
			t.Fatalf("t%d = %v, %v", i, v, err)
		}
	}
}

func TestSpacerSequentialWithPipes(t *testing.T) {
	r := newRig(t)
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()
	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second))
	join := PublishServicer(clockwork.Real(), r.mgr, spacer, spacer.ID(), spacer.Name(), []string{SpacerType}, nil)
	defer join.Terminate()

	t1 := NewTask("first", Sig("Adder", "add"), NewContextFrom("arg/a", 5.0, "arg/b", 5.0))
	t2 := NewTask("second", Sig("Adder", "add"), NewContextFrom("arg/b", 1.0))
	job := NewJob("seq-pull", Strategy{
		Flow: Sequential, Access: Pull,
		Pipes: []Pipe{{FromIndex: 0, FromPath: "result/value", ToIndex: 1, ToPath: "arg/a"}},
	}, t1, t2)
	res, err := r.exerter.Exert(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Context().Float("second/result/value"); v != 11 {
		t.Fatalf("piped pull result = %v", v)
	}
}

func TestPullJobWithoutSpacerFails(t *testing.T) {
	r := newRig(t)
	job := NewJob("j", Strategy{Access: Pull}, NewTask("t", Sig("Adder", "add"), nil))
	if _, err := r.exerter.Exert(job, nil); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpacerFailedTaskSurfacesError(t *testing.T) {
	r := newRig(t)
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()
	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second))
	join := PublishServicer(clockwork.Real(), r.mgr, spacer, spacer.ID(), spacer.Name(), []string{SpacerType}, nil)
	defer join.Terminate()

	bad := NewTask("bad", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0)) // missing b
	job := NewJob("j", Strategy{Flow: Parallel, Access: Pull}, bad)
	_, err := r.exerter.Exert(job, nil)
	if err == nil || !strings.Contains(err.Error(), "failed in space") {
		t.Fatalf("err = %v", err)
	}
}

func TestProviderServiceValidation(t *testing.T) {
	p := adderProvider("A")
	// Jobs are rejected by taskers.
	if _, err := p.Service(NewJob("j", Strategy{}), nil); !errors.Is(err, ErrNotTask) {
		t.Fatalf("err = %v", err)
	}
	// Wrong service type.
	task := NewTask("t", Sig("Other", "add"), nil)
	if _, err := p.Service(task, nil); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
}

func TestProviderTypesIncludeServicer(t *testing.T) {
	p := NewProvider("x", "A", "B")
	types := p.Types()
	found := map[string]bool{}
	for _, tp := range types {
		found[tp] = true
	}
	if !found["A"] || !found["B"] || !found[ServicerType] {
		t.Fatalf("Types = %v", types)
	}
}

func TestAccessorFindAllDeduplicatesAcrossRegistrars(t *testing.T) {
	// Two LUSes; the provider joins both; FindAll must yield it once.
	bus := discovery.NewBus()
	lus1 := registry.New("one", clockwork.NewFake(epoch))
	lus2 := registry.New("two", clockwork.NewFake(epoch))
	defer lus1.Close()
	defer lus2.Close()
	defer bus.Announce(lus1)()
	defer bus.Announce(lus2)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()

	p := adderProvider("Adder-1")
	join := p.Publish(clockwork.Real(), mgr, nil)
	defer join.Terminate()

	acc := NewAccessor(mgr)
	all, err := acc.FindAll(Sig("Adder", "add"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("FindAll = %d providers, want 1 (dedup)", len(all))
	}
	items := acc.FindItems(Sig("Adder", "add"), 0)
	if len(items) != 1 || attr.NameOf(items[0].Attributes) != "Adder-1" {
		t.Fatalf("FindItems = %v", items)
	}
}

func TestExertUnknownExertionType(t *testing.T) {
	r := newRig(t)
	if _, err := r.exerter.Exert(nil, nil); err == nil {
		t.Fatal("nil exertion accepted")
	}
}

func TestProviderConcurrencyBound(t *testing.T) {
	p := NewProvider("bounded", "Work")
	var cur, max atomic.Int64
	p.RegisterOp("run", func(ctx *Context) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	p.SetConcurrency(2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask("t", Sig("Work", "run"), nil)
			if _, err := p.Service(task, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Fatalf("max concurrency = %d, want <= 2", got)
	}
	// Restore unbounded.
	p.SetConcurrency(0)
	task := NewTask("t", Sig("Work", "run"), nil)
	if _, err := p.Service(task, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExerterRoundRobinSpreadsLoad(t *testing.T) {
	r := newRig(t)
	var counts [3]atomic.Int64
	for i := 0; i < 3; i++ {
		i := i
		p := NewProvider(fmt.Sprintf("rr-%d", i), "RR")
		p.RegisterOp("hit", func(ctx *Context) error {
			counts[i].Add(1)
			return nil
		})
		r.publish(t, p)
	}
	for i := 0; i < 30; i++ {
		task := NewTask("t", Sig("RR", "hit"), nil)
		if _, err := r.exerter.Exert(task, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range counts {
		if got := counts[i].Load(); got != 10 {
			t.Fatalf("provider %d served %d tasks, want 10 (round robin)", i, got)
		}
	}
}

func TestJobOfJobs(t *testing.T) {
	// Hierarchical composition: a job containing jobs (the paper's §IV-D:
	// "an exertion job is defined hierarchically in terms of tasks and
	// other jobs").
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	inner1 := NewJob("inner1", Strategy{Flow: Parallel, Access: Push},
		NewTask("x", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 2.0)))
	inner2 := NewJob("inner2", Strategy{Flow: Sequential, Access: Push},
		NewTask("y", Sig("Adder", "add"), NewContextFrom("arg/a", 10.0, "arg/b", 20.0)))
	outer := NewJob("outer", Strategy{Flow: Sequential, Access: Push}, inner1, inner2)

	res, err := r.exerter.Exert(outer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status() != Done {
		t.Fatalf("status = %v", res.Status())
	}
	v1, err := res.Context().Float("inner1/x/result/value")
	if err != nil || v1 != 3 {
		t.Fatalf("inner1 = %v, %v (ctx %s)", v1, err, res.Context())
	}
	v2, err := res.Context().Float("inner2/y/result/value")
	if err != nil || v2 != 30 {
		t.Fatalf("inner2 = %v, %v", v2, err)
	}
}

func TestJobberRelaysBareTask(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	jb := NewJobber("Jobber-1", r.exerter)
	task := NewTask("t", Sig("Adder", "add"), NewContextFrom("arg/a", 2.0, "arg/b", 2.0))
	res, err := jb.Service(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Context().Float("result/value"); v != 4 {
		t.Fatalf("relayed task = %v", v)
	}
}

func TestJobUnderTransaction(t *testing.T) {
	// Exertions accept a transaction; providers that touch the space
	// stage under it. Here the op writes into the tuple space under the
	// job's transaction: aborting discards, committing publishes.
	r := newRig(t)
	fc := clockwork.NewFake(epoch)
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})
	sp := space.New(fc, lease.Policy{Max: time.Hour})
	defer sp.Close()

	p := NewProvider("Writer", "Writer")
	p.RegisterOp("emit", func(ctx *Context) error {
		txv, _ := ctx.Get("txn")
		tx, _ := txv.(*txn.Transaction)
		_, err := sp.Write(space.NewEntry("Out", "v", 1), tx, time.Hour)
		return err
	})
	r.publish(t, p)

	tx, _ := tm.Create(time.Minute)
	task := NewTask("t", Sig("Writer", "emit"), NewContextFrom("txn", tx))
	if _, err := r.exerter.Exert(task, tx); err != nil {
		t.Fatal(err)
	}
	if sp.Count(space.NewEntry("Out")) != 0 {
		t.Fatal("staged write visible before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if sp.Count(space.NewEntry("Out")) != 1 {
		t.Fatal("committed write not visible")
	}
}

func TestFMIRebindsAcrossHeterogeneousSelectors(t *testing.T) {
	// Two providers of the same type with different operation sets: a
	// task whose selector only the second implements must still succeed,
	// whatever the round-robin starting point.
	r := newRig(t)
	squareOnly := NewProvider("SquareOnly", "Calc")
	squareOnly.RegisterOp("square", func(ctx *Context) error {
		x, _ := ctx.Float("x")
		ctx.Put("y", x*x)
		return nil
	})
	sqrtOnly := NewProvider("SqrtOnly", "Calc")
	sqrtOnly.RegisterOp("sqrt", func(ctx *Context) error {
		ctx.Put("y", 3.0)
		return nil
	})
	r.publish(t, squareOnly)
	r.publish(t, sqrtOnly)
	for i := 0; i < 4; i++ { // cover both rotation phases
		task := NewTask("t", Sig("Calc", "sqrt"), NewContextFrom("x", 9.0))
		res, err := r.exerter.Exert(task, nil)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if y, _ := res.Context().Float("y"); y != 3 {
			t.Fatalf("iteration %d: y = %v", i, y)
		}
	}
}

// Property: a sequential job chaining K adder tasks through context pipes
// computes the running sum, for arbitrary inputs — pipes compose
// associatively.
func TestPropertyPipedChainComputesFold(t *testing.T) {
	r := newRig(t)
	r.publish(t, adderProvider("Adder-1"))
	f := func(raw []int8) bool {
		vals := raw
		if len(vals) > 12 {
			vals = vals[:12]
		}
		if len(vals) < 2 {
			return true
		}
		var tasks []Exertion
		var pipes []Pipe
		for i, v := range vals {
			ctx := NewContextFrom("arg/b", float64(v))
			if i == 0 {
				ctx.Put("arg/a", 0.0)
			} else {
				pipes = append(pipes, Pipe{
					FromIndex: i - 1, FromPath: "result/value",
					ToIndex: i, ToPath: "arg/a",
				})
			}
			tasks = append(tasks, NewTask(fmt.Sprintf("t%d", i), Sig("Adder", "add"), ctx))
		}
		job := NewJob("fold", Strategy{Flow: Sequential, Access: Push, Pipes: pipes}, tasks...)
		res, err := r.exerter.Exert(job, nil)
		if err != nil {
			return false
		}
		got, err := res.Context().Float(fmt.Sprintf("t%d/result/value", len(vals)-1))
		if err != nil {
			return false
		}
		want := 0.0
		for _, v := range vals {
			want += float64(v)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
