package sorcer

import (
	"fmt"
	"sync"

	"sensorcer/internal/ids"
	"sensorcer/internal/txn"
)

// Jobber is the push-mode rendezvous peer: it coordinates a job's
// component exertions by dispatching each directly to a bound provider via
// the shared Exerter, honoring the job's flow (sequential with context
// pipes, or parallel).
type Jobber struct {
	id      ids.ServiceID
	name    string
	exerter *Exerter
}

// NewJobber creates a job coordinator that dispatches through exerter.
func NewJobber(name string, exerter *Exerter) *Jobber {
	return &Jobber{id: ids.NewServiceID(), name: name, exerter: exerter}
}

// ID returns the jobber's identity.
func (jb *Jobber) ID() ids.ServiceID { return jb.id }

// Name returns the jobber's name.
func (jb *Jobber) Name() string { return jb.name }

// Service implements Servicer for job exertions.
func (jb *Jobber) Service(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	job, ok := ex.(*Job)
	if !ok {
		// A jobber can also relay a task straight to a provider.
		return jb.exerter.Exert(ex, tx)
	}
	job.setStatus(Running, nil)
	components := job.Exertions()

	var err error
	switch job.Strategy().Flow {
	case Sequential:
		err = jb.runSequential(job, components, tx)
	case Parallel:
		err = jb.runParallel(components, tx)
	default:
		err = fmt.Errorf("sorcer: unknown flow %d", job.Strategy().Flow)
	}
	job.aggregateContexts()
	if err != nil {
		job.setStatus(Failed, err)
		return job, err
	}
	job.setStatus(Done, nil)
	return job, nil
}

func (jb *Jobber) runSequential(job *Job, components []Exertion, tx *txn.Transaction) error {
	pipes := job.Strategy().Pipes
	for i, ex := range components {
		// Feed pipes targeting this component from earlier results.
		for _, p := range pipes {
			if p.ToIndex != i {
				continue
			}
			if p.FromIndex < 0 || p.FromIndex >= i {
				return fmt.Errorf("sorcer: job %q pipe from %d to %d is not backward", job.Name(), p.FromIndex, p.ToIndex)
			}
			v, ok := components[p.FromIndex].Context().Get(p.FromPath)
			if !ok {
				return fmt.Errorf("sorcer: job %q pipe source %q missing on %q", job.Name(), p.FromPath, components[p.FromIndex].Name())
			}
			ex.Context().Put(p.ToPath, v)
		}
		if _, err := jb.exerter.Exert(ex, tx); err != nil {
			return fmt.Errorf("sorcer: job %q component %q: %w", job.Name(), ex.Name(), err)
		}
	}
	return nil
}

func (jb *Jobber) runParallel(components []Exertion, tx *txn.Transaction) error {
	var wg sync.WaitGroup
	errs := make([]error, len(components))
	for i, ex := range components {
		wg.Add(1)
		go func(i int, ex Exertion) {
			defer wg.Done()
			_, errs[i] = jb.exerter.Exert(ex, tx)
		}(i, ex)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sorcer: parallel component %q: %w", components[i].Name(), err)
		}
	}
	return nil
}
