package sorcer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"sensorcer/internal/ids"
	"sensorcer/internal/space"
)

// taskCodec makes *Task values durable inside tuple-space entries: the
// Spacer's exertion envelopes carry the task as a payload field, and a
// durable space must journal it to redispatch recovered-but-untaken
// envelopes after a restart. Only the dispatchable essence is serialized —
// identity, name, signature and context data. Execution state (status,
// error) is not: a recovered envelope is by definition un-executed, and
// its task restarts from Initial, matching at-least-once redispatch
// semantics.
type taskCodec struct{}

func init() { space.RegisterPayloadCodec(taskCodec{}) }

// taskWire is the durable form of a *Task (on-disk format).
type taskWire struct {
	ID        ids.ServiceID  `json:"id"`
	Name      string         `json:"name"`
	Signature Signature      `json:"sig"`
	Context   map[string]any `json:"ctx,omitempty"`
}

// Name implements space.PayloadCodec.
func (taskCodec) Name() string { return "sorcer.task" }

// Encode implements space.PayloadCodec.
func (taskCodec) Encode(v any) ([]byte, bool) {
	t, ok := v.(*Task)
	if !ok {
		return nil, false
	}
	w := taskWire{ID: t.ID(), Name: t.Name(), Signature: t.Signature()}
	ctx := t.Context()
	if n := ctx.Len(); n > 0 {
		w.Context = make(map[string]any, n)
		for _, p := range ctx.Paths() {
			v, _ := ctx.Get(p)
			w.Context[p] = v
		}
	}
	data, err := json.Marshal(w)
	if err != nil {
		// Unserializable context payload: degrade to opaque rather than
		// failing the write (matching encodeFields' policy).
		return nil, false
	}
	return data, true
}

// Decode implements space.PayloadCodec.
func (taskCodec) Decode(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var w taskWire
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("sorcer: decoding task: %w", err)
	}
	for _, e := range w.Signature.Attributes {
		for k, v := range e.Fields {
			e.Fields[k] = fixNumber(v)
		}
	}
	ctx := NewContext()
	for p, v := range w.Context {
		ctx.Put(p, fixNumber(v))
	}
	return &Task{id: w.ID, name: w.Name, signature: w.Signature, ctx: ctx}, nil
}

// fixNumber converts json.Number values (and any nested inside maps or
// slices) to int64 when integral, float64 otherwise — matching package
// attr's canonical kinds so signature attributes keep matching and
// Context.Float keeps coercing after recovery.
func fixNumber(v any) any {
	switch x := v.(type) {
	case json.Number:
		if !strings.ContainsAny(x.String(), ".eE") {
			if i, err := x.Int64(); err == nil {
				return i
			}
		}
		f, err := x.Float64()
		if err != nil {
			return x.String()
		}
		return f
	case map[string]any:
		for k, e := range x {
			x[k] = fixNumber(e)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = fixNumber(e)
		}
		return x
	default:
		return v
	}
}
