// Package sorcer implements the exertion-oriented programming (EOP) model
// of the SORCER metacomputing environment the paper builds on (§IV-D): a
// requestor describes a collaboration as an exertion — service data (a
// ServiceContext), operations (Signatures) and a control strategy — and
// calls Exert, which federates with currently available providers to run
// it. Elementary exertions (Tasks) bind to a single provider; composite
// exertions (Jobs) are coordinated by rendezvous peers: the Jobber (push
// mode, direct dispatch) or the Spacer (pull mode, tuple-space
// distribution via package space).
package sorcer

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Context is the service context: the hierarchical data an exertion's
// operations read and write, addressed by slash-separated paths such as
// "sensor/temperature/value". It is the collaboration's shared document —
// requestors put inputs in, providers put outputs back.
type Context struct {
	mu   sync.RWMutex
	data map[string]any
}

// NewContext creates an empty context.
func NewContext() *Context { return &Context{data: make(map[string]any)} }

// NewContextFrom creates a context from alternating path/value pairs.
func NewContextFrom(kv ...any) *Context {
	if len(kv)%2 != 0 {
		panic("sorcer.NewContextFrom: odd number of path/value arguments")
	}
	c := NewContext()
	for i := 0; i < len(kv); i += 2 {
		c.Put(kv[i].(string), kv[i+1])
	}
	return c
}

// ErrNoPath is returned when a context path is absent.
var ErrNoPath = errors.New("sorcer: no such context path")

// Put stores a value at the path.
func (c *Context) Put(path string, v any) {
	c.mu.Lock()
	c.data[path] = v
	c.mu.Unlock()
}

// Get returns the value at the path.
func (c *Context) Get(path string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.data[path]
	return v, ok
}

// MustGet returns the value at the path or an ErrNoPath-wrapped error.
func (c *Context) MustGet(path string) (any, error) {
	if v, ok := c.Get(path); ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoPath, path)
}

// Float returns a float64 at the path, coercing integer kinds.
func (c *Context) Float(path string) (float64, error) {
	v, err := c.MustGet(path)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("sorcer: path %q holds %T, want number", path, v)
	}
}

// String returns a string value at the path.
func (c *Context) StringAt(path string) (string, error) {
	v, err := c.MustGet(path)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("sorcer: path %q holds %T, want string", path, v)
	}
	return s, nil
}

// Delete removes a path.
func (c *Context) Delete(path string) {
	c.mu.Lock()
	delete(c.data, path)
	c.mu.Unlock()
}

// Paths returns all paths in sorted order.
func (c *Context) Paths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.data))
	for p := range c.data {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of paths.
func (c *Context) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.data)
}

// Clone deep-copies the path map (values are shared).
func (c *Context) Clone() *Context {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := &Context{data: make(map[string]any, len(c.data))}
	for k, v := range c.data {
		out.data[k] = v
	}
	return out
}

// Merge copies every path of other into c, overwriting collisions.
func (c *Context) Merge(other *Context) {
	if other == nil {
		return
	}
	other.mu.RLock()
	pairs := make(map[string]any, len(other.data))
	for k, v := range other.data {
		pairs[k] = v
	}
	other.mu.RUnlock()
	c.mu.Lock()
	for k, v := range pairs {
		c.data[k] = v
	}
	c.mu.Unlock()
}

// Sub returns a new context holding the paths under the given prefix, with
// the prefix stripped — e.g. Sub("sensor") of {"sensor/v": 1} is {"v": 1}.
func (c *Context) Sub(prefix string) *Context {
	clean := strings.TrimSuffix(prefix, "/") + "/"
	out := NewContext()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.data {
		if strings.HasPrefix(k, clean) {
			out.data[strings.TrimPrefix(k, clean)] = v
		}
	}
	return out
}

// String renders the context sorted by path, one pair per line.
func (c *Context) String() string {
	paths := c.Paths()
	var b strings.Builder
	for _, p := range paths {
		v, _ := c.Get(p)
		fmt.Fprintf(&b, "%s = %v\n", p, v)
	}
	return b.String()
}
