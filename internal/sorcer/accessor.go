package sorcer

import (
	"errors"
	"fmt"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
)

// RegistrarSource yields the currently known lookup services; the
// discovery Manager satisfies it.
type RegistrarSource interface {
	Registrars() []registry.Registrar
}

// ErrNoProvider is returned when no provider satisfies a signature.
var ErrNoProvider = errors.New("sorcer: no provider for signature")

// Accessor finds service providers for signatures across every discovered
// lookup service — the paper's "Service Accessor" (§V-B): it "first
// discovers lookup services and then finds matching services specified by
// signatures in exertions".
type Accessor struct {
	source RegistrarSource
}

// NewAccessor creates an accessor over the registrar source.
func NewAccessor(source RegistrarSource) *Accessor {
	return &Accessor{source: source}
}

// template converts a signature to a lookup template.
func template(sig Signature) registry.Template {
	attrs := attr.CloneSet(sig.Attributes)
	if sig.ProviderName != "" {
		attrs = attrs.Replace(attr.Name(sig.ProviderName))
	}
	return registry.Template{
		Types:      []string{sig.ServiceType, ServicerType},
		Attributes: attrs,
	}
}

// Find returns one Servicer satisfying the signature.
func (a *Accessor) Find(sig Signature) (Servicer, error) {
	all, err := a.FindAll(sig, 1)
	if err != nil {
		return nil, err
	}
	return all[0], nil
}

// FindAll returns up to max (all if <= 0) distinct Servicers satisfying
// the signature, deduplicated across registrars by service ID.
func (a *Accessor) FindAll(sig Signature, max int) ([]Servicer, error) {
	tmpl := template(sig)
	var seen map[ids.ServiceID]bool
	var out []Servicer
	regs := a.source.Registrars()
	for _, reg := range regs {
		for _, item := range reg.Lookup(tmpl, lookupCap(max, regs)) {
			if seen[item.ID] {
				continue
			}
			if seen == nil {
				seen = make(map[ids.ServiceID]bool, 1)
			}
			seen[item.ID] = true
			svc, ok := item.Service.(Servicer)
			if !ok {
				continue // registered under Servicer type but wrong proxy
			}
			out = append(out, svc)
			if max > 0 && len(out) >= max {
				return out, nil
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoProvider, sig)
	}
	return out, nil
}

// lookupCap bounds a per-registrar lookup: with a single registrar the
// caller's max is exact, while several registrars need full match sets so
// cross-registrar duplicates cannot crowd out distinct providers.
func lookupCap(max int, regs []registry.Registrar) int {
	if len(regs) == 1 {
		return max
	}
	return 0
}

// FindItems returns the raw service items matching the signature (used by
// the sensor network manager, which needs attributes as well as proxies).
func (a *Accessor) FindItems(sig Signature, max int) []registry.ServiceItem {
	tmpl := template(sig)
	var seen map[ids.ServiceID]bool
	var out []registry.ServiceItem
	regs := a.source.Registrars()
	for _, reg := range regs {
		for _, item := range reg.Lookup(tmpl, lookupCap(max, regs)) {
			if seen[item.ID] {
				continue
			}
			if seen == nil {
				seen = make(map[ids.ServiceID]bool, 1)
			}
			seen[item.ID] = true
			out = append(out, item)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}
