package sorcer

import (
	"fmt"
	"sync/atomic"

	"sensorcer/internal/txn"
)

// Rendezvous peer type names.
const (
	// JobberType marks push-mode job coordinators.
	JobberType = "Jobber"
	// SpacerType marks pull-mode job coordinators.
	SpacerType = "Spacer"
)

// Exerter implements federated method invocation (FMI): Exert binds an
// exertion to currently available providers and runs it. Tasks bind to a
// provider of the signature's type, retrying equivalent providers on
// failure ("if for any reason a particular sensor service is not
// available, the request can be passed on to the equivalent available
// service provider", §V-A). Jobs route to a rendezvous peer — a Jobber for
// push access, a Spacer for pull access — falling back to an in-process
// Jobber when no rendezvous peer is registered.
type Exerter struct {
	accessor *Accessor
	// maxBindings caps how many equivalent providers a failing task is
	// retried against.
	maxBindings int
	// rr rotates the starting candidate so equivalent providers share
	// load across successive exertions (the federation has no global
	// queue-depth view; round-robin is the classic blind spreading).
	rr atomic.Uint64
}

// NewExerter creates an FMI executor over the accessor.
func NewExerter(accessor *Accessor) *Exerter {
	return &Exerter{accessor: accessor, maxBindings: 4}
}

// Exert runs the exertion and returns it with result state and contexts
// filled in — the paper's Exertion.exert(Transaction) operation. The
// returned error mirrors Exertion.Err for convenience.
func (e *Exerter) Exert(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	switch x := ex.(type) {
	case *Task:
		return e.exertTask(x, tx)
	case *Job:
		return e.exertJob(x, tx)
	default:
		return ex, fmt.Errorf("sorcer: cannot exert %T", ex)
	}
}

func (e *Exerter) exertTask(task *Task, tx *txn.Transaction) (Exertion, error) {
	candidates, err := e.accessor.FindAll(task.Signature(), e.maxBindings)
	if err != nil {
		task.setResult(nil, Failed, err)
		return task, err
	}
	if len(candidates) > 1 {
		// Rotate the starting point across calls.
		start := int(e.rr.Add(1)) % len(candidates)
		rotated := make([]Servicer, 0, len(candidates))
		rotated = append(rotated, candidates[start:]...)
		rotated = append(rotated, candidates[:start]...)
		candidates = rotated
	}
	var lastErr error
	for _, svc := range candidates {
		res, err := svc.Service(task, tx)
		if err == nil {
			return res, nil
		}
		// Any failure — execution fault or a provider that implements
		// the type but not this selector — re-binds to the next
		// equivalent provider; providers of one type need not implement
		// identical operation sets.
		lastErr = err
	}
	err = fmt.Errorf("sorcer: all %d binding(s) failed for %s: %w", len(candidates), task.Signature(), lastErr)
	task.setResult(nil, Failed, err)
	return task, err
}

func (e *Exerter) exertJob(job *Job, tx *txn.Transaction) (Exertion, error) {
	rendezvousType := JobberType
	if job.Strategy().Access == Pull {
		rendezvousType = SpacerType
	}
	sig := Signature{ServiceType: rendezvousType, Selector: "execute"}
	if svc, err := e.accessor.Find(sig); err == nil {
		return svc.Service(job, tx)
	}
	if job.Strategy().Access == Pull {
		err := fmt.Errorf("%w: no %s available for pull-mode job %q", ErrNoProvider, SpacerType, job.Name())
		job.setStatus(Failed, err)
		return job, err
	}
	// Fall back to coordinating the push job locally.
	local := NewJobber("local-jobber", e)
	return local.Service(job, tx)
}
