package sorcer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sensorcer/internal/ids"
	"sensorcer/internal/resilience"
	"sensorcer/internal/txn"
)

// Rendezvous peer type names.
const (
	// JobberType marks push-mode job coordinators.
	JobberType = "Jobber"
	// SpacerType marks pull-mode job coordinators.
	SpacerType = "Spacer"
)

// Exerter implements federated method invocation (FMI): Exert binds an
// exertion to currently available providers and runs it. Tasks bind to a
// provider of the signature's type, retrying equivalent providers on
// failure ("if for any reason a particular sensor service is not
// available, the request can be passed on to the equivalent available
// service provider", §V-A). Jobs route to a rendezvous peer — a Jobber for
// push access, a Spacer for pull access — falling back to an in-process
// Jobber when no rendezvous peer is registered.
type Exerter struct {
	accessor *Accessor
	// maxBindings caps how many equivalent providers a failing task is
	// retried against.
	maxBindings int
	// rr rotates the starting candidate so equivalent providers share
	// load across successive exertions (the federation has no global
	// queue-depth view; round-robin is the classic blind spreading).
	rr atomic.Uint64
	// breakers, when set, tracks a circuit breaker per provider so a
	// repeatedly failing peer is skipped outright instead of burning a
	// binding slot on every exertion; see WithBreakers. brCache memoizes
	// the Servicer→Breaker resolution off the bind hot path.
	breakers *resilience.BreakerSet
	brCache  sync.Map
	// rebind, when non-zero, re-runs the whole discover-and-bind cycle
	// after all current candidates fail — a crashed federation member may
	// be replaced by a freshly registered equivalent between attempts.
	rebind resilience.Policy
}

// ExertOption customizes an Exerter.
type ExertOption func(*Exerter)

// WithMaxBindings caps how many equivalent providers a failing task is
// retried against per bind cycle (default 4).
func WithMaxBindings(n int) ExertOption {
	return func(e *Exerter) {
		if n > 0 {
			e.maxBindings = n
		}
	}
}

// WithBreakers tracks per-provider circuit breakers: candidates whose
// breaker is open are skipped during binding, and every service outcome
// feeds the provider's breaker. A provider that keeps failing stops being
// tried until its cooldown elapses and a half-open probe succeeds.
func WithBreakers(bs *resilience.BreakerSet) ExertOption {
	return func(e *Exerter) { e.breakers = bs }
}

// WithRebindPolicy retries the whole discover-and-bind cycle under the
// policy when every candidate in a pass fails. Between attempts new
// equivalent providers may have registered (or a breaker may have
// half-opened), so each attempt sees fresh candidates. ErrNoProvider is
// still retried — a provider may simply not have joined yet.
func WithRebindPolicy(p resilience.Policy) ExertOption {
	return func(e *Exerter) { e.rebind = p }
}

// NewExerter creates an FMI executor over the accessor.
func NewExerter(accessor *Accessor, opts ...ExertOption) *Exerter {
	e := &Exerter{accessor: accessor, maxBindings: 4}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Exert runs the exertion and returns it with result state and contexts
// filled in — the paper's Exertion.exert(Transaction) operation. The
// returned error mirrors Exertion.Err for convenience.
func (e *Exerter) Exert(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	switch x := ex.(type) {
	case *Task:
		return e.exertTask(x, tx)
	case *Job:
		return e.exertJob(x, tx)
	default:
		return ex, fmt.Errorf("sorcer: cannot exert %T", ex)
	}
}

// providerKey identifies a provider for breaker bookkeeping: its service
// ID when it has one, its pointer identity otherwise.
func providerKey(svc Servicer) string {
	if ider, ok := svc.(interface{ ID() ids.ServiceID }); ok {
		return ider.ID().String()
	}
	return fmt.Sprintf("%p", svc)
}

// breakerFor resolves a candidate's breaker. The result is memoized per
// Servicer identity so the no-fault bind path skips the key formatting and
// set lock after the first exertion against a provider; a nil breaker set
// costs nothing at all.
func (e *Exerter) breakerFor(svc Servicer) *resilience.Breaker {
	if e.breakers == nil {
		return nil
	}
	if br, ok := e.brCache.Load(svc); ok {
		return br.(*resilience.Breaker)
	}
	br := e.breakers.For(providerKey(svc))
	e.brCache.Store(svc, br)
	return br
}

func (e *Exerter) exertTask(task *Task, tx *txn.Transaction) (Exertion, error) {
	var out Exertion
	err := e.rebind.Run(func(resilience.Attempt) error {
		res, err := e.bindOnce(task, tx)
		if err == nil {
			out = res
		}
		return err
	})
	if err != nil {
		task.setResult(nil, Failed, err)
		return task, err
	}
	return out, nil
}

// bindOnce runs one discover-and-bind pass: find candidates, rotate, try
// each non-open one in turn.
func (e *Exerter) bindOnce(task *Task, tx *txn.Transaction) (Exertion, error) {
	candidates, err := e.accessor.FindAll(task.Signature(), e.maxBindings)
	if err != nil {
		return nil, err
	}
	if len(candidates) > 1 {
		// Rotate the starting point across calls.
		start := int(e.rr.Add(1)) % len(candidates)
		rotated := make([]Servicer, 0, len(candidates))
		rotated = append(rotated, candidates[start:]...)
		rotated = append(rotated, candidates[:start]...)
		candidates = rotated
	}
	var lastErr error
	skipped := 0
	for _, svc := range candidates {
		br := e.breakerFor(svc)
		if err := br.Allow(); err != nil {
			// Open breaker: this provider has been failing; spend the
			// binding on an equivalent one instead.
			skipped++
			lastErr = err
			continue
		}
		res, err := svc.Service(task, tx)
		br.Record(err)
		if err == nil {
			return res, nil
		}
		// Any failure — execution fault or a provider that implements
		// the type but not this selector — re-binds to the next
		// equivalent provider; providers of one type need not implement
		// identical operation sets.
		lastErr = err
	}
	return nil, fmt.Errorf("sorcer: all %d binding(s) failed (%d breaker-skipped) for %s: %w",
		len(candidates), skipped, task.Signature(), lastErr)
}

func (e *Exerter) exertJob(job *Job, tx *txn.Transaction) (Exertion, error) {
	rendezvousType := JobberType
	if job.Strategy().Access == Pull {
		rendezvousType = SpacerType
	}
	sig := Signature{ServiceType: rendezvousType, Selector: "execute"}
	if svc, err := e.accessor.Find(sig); err == nil {
		return svc.Service(job, tx)
	}
	if job.Strategy().Access == Pull {
		err := fmt.Errorf("%w: no %s available for pull-mode job %q", ErrNoProvider, SpacerType, job.Name())
		job.setStatus(Failed, err)
		return job, err
	}
	// Fall back to coordinating the push job locally.
	local := NewJobber("local-jobber", e)
	return local.Service(job, tx)
}

// BreakerStates exposes the per-provider breaker states (nil map when no
// breaker set is installed) for dashboards and tests.
func (e *Exerter) BreakerStates() map[string]resilience.BreakerState {
	if e.breakers == nil {
		return nil
	}
	return e.breakers.States()
}
