package sorcer

import (
	"errors"
	"fmt"
	"sync"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
	"sensorcer/internal/txn"
)

// ServicerType is the registry type name every exertion-capable peer
// registers under; the paper: "all service providers in EOA implement the
// service(Exertion, Transaction) operation of the Servicer interface".
const ServicerType = "Servicer"

// Servicer is the top-level peer interface. Operations of a provider are
// exposed indirectly: a requestor cannot call them, only pass an exertion
// whose signature names them.
type Servicer interface {
	Service(ex Exertion, tx *txn.Transaction) (Exertion, error)
}

// Operation is a provider-implemented task body working on the task's
// service context.
type Operation func(ctx *Context) error

// Errors returned by providers.
var (
	ErrNotTask         = errors.New("sorcer: provider executes tasks only")
	ErrUnknownSelector = errors.New("sorcer: no such operation selector")
	ErrWrongType       = errors.New("sorcer: provider does not implement signature type")
)

// Provider is a domain-specific task peer — SORCER's "tasker". It
// implements one or more service types, each selector mapping to an
// Operation.
type Provider struct {
	id   ids.ServiceID
	name string

	mu    sync.RWMutex
	types map[string]bool
	ops   map[string]Operation
	// slots bounds concurrent operation execution when non-nil (a
	// provider models a compute node with finite capacity; a sensor node
	// is typically SetConcurrency(1)).
	slots chan struct{}
}

// NewProvider creates a tasker implementing the given service types (the
// ServicerType is always added).
func NewProvider(name string, serviceTypes ...string) *Provider {
	p := &Provider{
		id:    ids.NewServiceID(),
		name:  name,
		types: map[string]bool{ServicerType: true},
		ops:   make(map[string]Operation),
	}
	for _, t := range serviceTypes {
		p.types[t] = true
	}
	return p
}

// ID returns the provider identity.
func (p *Provider) ID() ids.ServiceID { return p.id }

// Name returns the provider name.
func (p *Provider) Name() string { return p.name }

// Types lists the implemented service type names.
func (p *Provider) Types() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.types))
	for t := range p.types {
		out = append(out, t)
	}
	return out
}

// RegisterOp installs the operation for a selector.
func (p *Provider) RegisterOp(selector string, op Operation) {
	p.mu.Lock()
	p.ops[selector] = op
	p.mu.Unlock()
}

// SetConcurrency bounds how many operations may execute at once (n <= 0
// restores unbounded execution). Push-mode dispatch to a saturated
// provider queues on its slots; pull-mode providers instead take work at
// their own pace — the trade-off benchmarked by experiment C7.
func (p *Provider) SetConcurrency(n int) {
	p.mu.Lock()
	if n <= 0 {
		p.slots = nil
	} else {
		p.slots = make(chan struct{}, n)
	}
	p.mu.Unlock()
}

// Service implements Servicer: it accepts a task exertion whose signature
// names one of this provider's types and selectors, runs the operation on
// the task's context, and returns the task with its result state set.
func (p *Provider) Service(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	task, ok := ex.(*Task)
	if !ok {
		return ex, fmt.Errorf("%w: got %T", ErrNotTask, ex)
	}
	sig := task.Signature()
	p.mu.RLock()
	typeOK := p.types[sig.ServiceType]
	op, opOK := p.ops[sig.Selector]
	p.mu.RUnlock()
	if !typeOK {
		err := fmt.Errorf("%w: %q (provider %q)", ErrWrongType, sig.ServiceType, p.name)
		return task, err
	}
	if !opOK {
		err := fmt.Errorf("%w: %q (provider %q)", ErrUnknownSelector, sig.Selector, p.name)
		task.setResult(nil, Failed, err)
		return task, err
	}
	p.mu.RLock()
	slots := p.slots
	p.mu.RUnlock()
	if slots != nil {
		slots <- struct{}{}
		defer func() { <-slots }()
	}
	task.setResult(nil, Running, nil)
	ctx := task.Context()
	if err := op(ctx); err != nil {
		err = fmt.Errorf("sorcer: %s by %q: %w", sig, p.name, err)
		task.setResult(ctx, Failed, err)
		return task, err
	}
	task.setResult(ctx, Done, nil)
	return task, nil
}

// Publish registers the provider on every discovered lookup service and
// keeps the registrations leased. Returned Join terminates the presence.
func (p *Provider) Publish(clock clockwork.Clock, mgr *discovery.Manager, attrs attr.Set) *discovery.Join {
	return PublishServicer(clock, mgr, p, p.id, p.name, p.Types(), attrs)
}

// PublishServicer registers any Servicer (provider, jobber, spacer, sensor
// service) on every discovered lookup service under the given types,
// keeping the registrations leased.
func PublishServicer(clock clockwork.Clock, mgr *discovery.Manager, svc Servicer, id ids.ServiceID, name string, types []string, attrs attr.Set) *discovery.Join {
	attrs = attr.CloneSet(attrs)
	if attr.NameOf(attrs) == "" {
		attrs = attrs.Replace(attr.Name(name))
	}
	hasServicer := false
	for _, t := range types {
		if t == ServicerType {
			hasServicer = true
		}
	}
	if !hasServicer {
		types = append(append([]string{}, types...), ServicerType)
	}
	item := registry.ServiceItem{
		ID:         id,
		Service:    svc,
		Types:      types,
		Attributes: attrs,
	}
	return discovery.NewJoin(clock, mgr, item)
}
