package sorcer

import (
	"fmt"
	"sync"

	"sensorcer/internal/attr"
	"sensorcer/internal/ids"
)

// Signature identifies an operation on a service type — SORCER's service
// signature. A signature never names a concrete provider instance unless
// ProviderName is set; binding to an actual provider happens at exert time
// (federated method invocation).
type Signature struct {
	// ServiceType is the interface type name the provider must implement
	// (as registered in the lookup service), e.g. "SensorDataAccessor".
	ServiceType string
	// Selector is the operation name within the provider, e.g. "getValue".
	Selector string
	// ProviderName optionally pins a named provider ("Neem-Sensor").
	ProviderName string
	// Attributes add further lookup constraints.
	Attributes attr.Set
}

// String renders the signature like "getValue@SensorDataAccessor[Neem]".
func (s Signature) String() string {
	out := s.Selector + "@" + s.ServiceType
	if s.ProviderName != "" {
		out += "[" + s.ProviderName + "]"
	}
	return out
}

// Sig is a convenience constructor.
func Sig(serviceType, selector string) Signature {
	return Signature{ServiceType: serviceType, Selector: selector}
}

// Status tracks an exertion's execution state.
type Status int

// Exertion statuses.
const (
	Initial Status = iota
	Running
	Done
	Failed
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Initial:
		return "INITIAL"
	case Running:
		return "RUNNING"
	case Done:
		return "DONE"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Exertion is the common surface of tasks and jobs.
type Exertion interface {
	// ID is the exertion's unique identity.
	ID() ids.ServiceID
	// Name is the human label.
	Name() string
	// Context returns the exertion's service context.
	Context() *Context
	// Status returns the execution state.
	Status() Status
	// Err returns the failure cause when Status is Failed.
	Err() error
	// IsJob distinguishes composite from elementary exertions.
	IsJob() bool
}

// Task is an elementary exertion: one signature applied to one context by
// a single provider (or a small federation of equivalent providers, any of
// which may serve it).
type Task struct {
	id        ids.ServiceID
	name      string
	signature Signature

	mu     sync.Mutex
	ctx    *Context
	status Status
	err    error
}

// NewTask creates a task with its own context.
func NewTask(name string, sig Signature, ctx *Context) *Task {
	if ctx == nil {
		ctx = NewContext()
	}
	return &Task{id: ids.NewServiceID(), name: name, signature: sig, ctx: ctx}
}

// ID implements Exertion.
func (t *Task) ID() ids.ServiceID { return t.id }

// Name implements Exertion.
func (t *Task) Name() string { return t.name }

// Signature returns the task's operation signature.
func (t *Task) Signature() Signature { return t.signature }

// Context implements Exertion.
func (t *Task) Context() *Context {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ctx
}

// Status implements Exertion.
func (t *Task) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Err implements Exertion.
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// IsJob implements Exertion.
func (t *Task) IsJob() bool { return false }

// FinishTask transitions a task executed outside a Provider (sensor
// services implement Servicer directly) into its terminal state: Done when
// err is nil, Failed otherwise.
func FinishTask(t *Task, ctx *Context, err error) {
	if err != nil {
		t.setResult(ctx, Failed, err)
		return
	}
	t.setResult(ctx, Done, nil)
}

func (t *Task) setResult(ctx *Context, status Status, err error) {
	t.mu.Lock()
	if ctx != nil {
		t.ctx = ctx
	}
	t.status = status
	t.err = err
	t.mu.Unlock()
}

// Flow selects how a job's component exertions execute.
type Flow int

// Flow kinds.
const (
	// Sequential runs component exertions in order, allowing context
	// pipes from earlier to later components.
	Sequential Flow = iota
	// Parallel runs components concurrently.
	Parallel
)

// Access selects how a job reaches providers.
type Access int

// Access kinds.
const (
	// Push dispatches each component directly to a looked-up provider
	// (Jobber coordination).
	Push Access = iota
	// Pull drops component tasks into the tuple space for any capable
	// worker to take (Spacer coordination).
	Pull
)

// Pipe connects an output path of one component exertion to an input path
// of a later one (only meaningful under Sequential flow).
type Pipe struct {
	FromIndex int
	FromPath  string
	ToIndex   int
	ToPath    string
}

// Strategy is a job's control strategy.
type Strategy struct {
	Flow   Flow
	Access Access
	Pipes  []Pipe
}

// Job is a composite exertion defined hierarchically over tasks and other
// jobs, executed by a rendezvous peer according to its control strategy.
type Job struct {
	id       ids.ServiceID
	name     string
	strategy Strategy

	mu        sync.Mutex
	exertions []Exertion
	ctx       *Context
	status    Status
	err       error
}

// NewJob creates a job over the component exertions.
func NewJob(name string, strategy Strategy, exertions ...Exertion) *Job {
	return &Job{
		id:        ids.NewServiceID(),
		name:      name,
		strategy:  strategy,
		exertions: exertions,
		ctx:       NewContext(),
	}
}

// ID implements Exertion.
func (j *Job) ID() ids.ServiceID { return j.id }

// Name implements Exertion.
func (j *Job) Name() string { return j.name }

// Strategy returns the job's control strategy.
func (j *Job) Strategy() Strategy { return j.strategy }

// Exertions snapshots the component exertions.
func (j *Job) Exertions() []Exertion {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Exertion{}, j.exertions...)
}

// Context implements Exertion: a job's context aggregates each component's
// context under "<component name>/".
func (j *Job) Context() *Context {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ctx
}

// Status implements Exertion.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err implements Exertion.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// IsJob implements Exertion.
func (j *Job) IsJob() bool { return true }

func (j *Job) setStatus(status Status, err error) {
	j.mu.Lock()
	j.status = status
	j.err = err
	j.mu.Unlock()
}

// aggregateContexts rebuilds the job context from component contexts.
func (j *Job) aggregateContexts() {
	agg := NewContext()
	for _, ex := range j.Exertions() {
		sub := ex.Context()
		for _, p := range sub.Paths() {
			v, _ := sub.Get(p)
			agg.Put(ex.Name()+"/"+p, v)
		}
	}
	j.mu.Lock()
	j.ctx = agg
	j.mu.Unlock()
}
