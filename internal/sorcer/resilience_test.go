package sorcer

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/resilience"
	"sensorcer/internal/space"
)

// failingProvider always errors, counting how often it was actually tried.
func failingProvider(name string, calls *atomic.Int64) *Provider {
	p := NewProvider(name, "Breaky")
	p.RegisterOp("run", func(*Context) error {
		calls.Add(1)
		return errors.New("hardware fault")
	})
	return p
}

func TestExerterBreakerStopsTryingDeadProvider(t *testing.T) {
	r := newRig(t)
	var badCalls atomic.Int64
	r.publish(t, failingProvider("Breaky-dead", &badCalls))
	healthy := NewProvider("Breaky-ok", "Breaky")
	healthy.RegisterOp("run", func(ctx *Context) error {
		ctx.Put("by", "Breaky-ok")
		return nil
	})
	r.publish(t, healthy)

	breakers := resilience.NewBreakerSet(clockwork.Real(), resilience.BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Hour, // never half-opens within the test
	})
	ex := NewExerter(r.accessor, WithBreakers(breakers))

	for i := 0; i < 10; i++ {
		task := NewTask("run", Sig("Breaky", "run"), nil)
		res, err := ex.Exert(task, nil)
		if err != nil {
			t.Fatalf("exert %d: %v", i, err)
		}
		if by, _ := res.Context().Get("by"); by != "Breaky-ok" {
			t.Fatalf("exert %d served by %v", i, by)
		}
	}
	// The dead provider was tried exactly up to the breaker threshold,
	// then skipped for the remaining exertions.
	if n := badCalls.Load(); n != 2 {
		t.Fatalf("dead provider tried %d times, want 2 (threshold)", n)
	}
	open := 0
	for _, st := range ex.BreakerStates() {
		if st == resilience.Open {
			open++
		}
	}
	if open != 1 {
		t.Fatalf("%d breakers open, want 1", open)
	}
}

func TestExerterRebindPolicyWaitsOutLateProvider(t *testing.T) {
	r := newRig(t)
	ex := NewExerter(r.accessor, WithRebindPolicy(resilience.Policy{
		MaxAttempts: 100,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	}))
	// The provider joins the federation only after the first bind attempts
	// have already failed with ErrNoProvider. Joined before the test ends
	// so the publish can't race the rig's cleanup.
	published := make(chan struct{})
	go func() {
		defer close(published)
		time.Sleep(60 * time.Millisecond)
		r.publish(t, adderProvider("Late-Adder"))
	}()
	defer func() { <-published }()
	task := NewTask("add", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 2.0))
	res, err := ex.Exert(task, nil)
	if err != nil {
		t.Fatalf("exert never bound the late provider: %v", err)
	}
	if v, err := res.Context().Float("result/value"); err != nil || v != 3 {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestSpacerRedispatchesEnvelopeLostToCrashedWorker(t *testing.T) {
	r := newRig(t)
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()

	spacer := NewSpacer("Spacer-1", sp,
		WithTaskTimeout(50*time.Millisecond),
		WithAwaitPolicy(resilience.Policy{MaxAttempts: 20, BaseBackoff: time.Millisecond}))
	join := PublishServicer(clockwork.Real(), r.mgr, spacer, spacer.ID(), spacer.Name(), []string{SpacerType}, nil)
	defer join.Terminate()

	job := NewJob("pull-job", Strategy{Flow: Parallel, Access: Pull},
		NewTask("t0", Sig("Adder", "add"), NewContextFrom("arg/a", 1.0, "arg/b", 2.0)))

	done := make(chan error, 1)
	go func() {
		_, err := r.exerter.Exert(job, nil)
		done <- err
	}()

	// Play a worker that crashes after taking the envelope: the envelope
	// disappears from the space and no result is ever written.
	envTmpl := space.NewEntry(EnvelopeKind, "type", "Adder")
	if _, err := sp.Take(envTmpl, nil, 2*time.Second); err != nil {
		t.Fatalf("crashing worker never saw the envelope: %v", err)
	}
	// Now a healthy worker appears. The spacer's await policy must notice
	// the vanished envelope and redispatch the task to it.
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pull job failed despite redispatch: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pull job hung: lost envelope was never redispatched")
	}
	if v, err := job.Context().Float("t0/result/value"); err != nil || v != 3 {
		t.Fatalf("result = %v, %v", v, err)
	}
}
