package sorcer

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/space"
)

func pullAdderJob(n int) *Job {
	var tasks []Exertion
	for i := 0; i < n; i++ {
		tasks = append(tasks, NewTask(fmt.Sprintf("t%d", i),
			Sig("Adder", "add"), NewContextFrom("arg/a", float64(i), "arg/b", 100.0)))
	}
	return NewJob("batch-job", Strategy{Flow: Parallel, Access: Pull}, tasks...)
}

func checkAdderJob(t *testing.T, job *Job, n int) {
	t.Helper()
	if job.Status() != Done {
		t.Fatalf("job status = %v", job.Status())
	}
	for i := 0; i < n; i++ {
		v, err := job.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+100) {
			t.Fatalf("t%d result = %v, %v", i, v, err)
		}
	}
}

// TestSpacerBatchDispatchParallel runs the default batched path
// explicitly: all envelopes land via one WriteBatch, workers drain with
// TakeAny, and results come back tagged with the job's batch id.
func TestSpacerBatchDispatchParallel(t *testing.T) {
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()
	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second))

	job := pullAdderJob(8)
	if _, err := spacer.Service(job, nil); err != nil {
		t.Fatal(err)
	}
	checkAdderJob(t, job, 8)
	// Nothing left behind — every envelope taken, every result consumed.
	if n := sp.Count(space.NewEntry(EnvelopeKind)); n != 0 {
		t.Fatalf("%d envelopes left in space", n)
	}
	if n := sp.Count(space.NewEntry(ResultKind)); n != 0 {
		t.Fatalf("%d results left in space", n)
	}
}

// TestSpacerPerEnvelopeDispatch keeps the ablation path (one Write/Take
// per task) working — it is the baseline the batch benchmarks compare
// against.
func TestSpacerPerEnvelopeDispatch(t *testing.T) {
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder", WithWorkerBatch(1))
	defer w.Stop()
	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second), WithPerEnvelopeDispatch())

	job := pullAdderJob(4)
	if _, err := spacer.Service(job, nil); err != nil {
		t.Fatal(err)
	}
	checkAdderJob(t, job, 4)
}

// TestSpacerBatchDispatchDurable runs the batched path over a journaled
// space: envelopes and results are group-committed, and the job completes
// with the same results as the volatile case.
func TestSpacerBatchDispatchDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "space-wal")
	sp, l := recoverSpace(t, dir)
	defer func() { sp.Close(); _ = l.Close() }()
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()
	spacer := NewSpacer("Spacer-1", sp, WithTaskTimeout(5*time.Second))

	job := pullAdderJob(6)
	if _, err := spacer.Service(job, nil); err != nil {
		t.Fatal(err)
	}
	checkAdderJob(t, job, 6)
}

// TestSpacerBatchRedispatchLostEnvelopes exercises the batched
// at-least-once retry: a saboteur takes half the envelopes and never
// answers, the await times out, and the spacer redispatches exactly the
// lost tasks (as one batch) once a real worker is available.
func TestSpacerBatchRedispatchLostEnvelopes(t *testing.T) {
	sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
	defer sp.Close()
	spacer := restartSpacer(sp) // 500ms waits, 40 retry attempts

	job := pullAdderJob(4)
	done := make(chan error, 1)
	go func() {
		_, err := spacer.Service(job, nil)
		done <- err
	}()

	// Crash-simulating worker: take two envelopes and drop them.
	envTmpl := space.NewEntry(EnvelopeKind, "type", "Adder")
	if out, err := sp.TakeAny(envTmpl, 2, nil, 2*time.Second); err != nil || len(out) == 0 {
		t.Fatalf("saboteur got (%d, %v)", len(out), err)
	}
	// Healthy worker appears; lost tasks must be redispatched to it.
	w := NewSpaceWorker(sp, adderProvider("Adder-1"), "Adder")
	defer w.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed despite redispatch: %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("lost envelopes were never redispatched")
	}
	checkAdderJob(t, job, 4)
}
