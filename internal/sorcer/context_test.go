package sorcer

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestContextPutGet(t *testing.T) {
	c := NewContext()
	c.Put("sensor/temperature/value", 22.5)
	v, ok := c.Get("sensor/temperature/value")
	if !ok || v != 22.5 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing path reported present")
	}
}

func TestContextMustGet(t *testing.T) {
	c := NewContext()
	if _, err := c.MustGet("x"); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextFloatCoercion(t *testing.T) {
	c := NewContextFrom("a", 1, "b", int64(2), "c", float32(3), "d", 4.0, "s", "str")
	for path, want := range map[string]float64{"a": 1, "b": 2, "c": 3, "d": 4} {
		got, err := c.Float(path)
		if err != nil || got != want {
			t.Fatalf("Float(%s) = %v, %v", path, got, err)
		}
	}
	if _, err := c.Float("s"); err == nil {
		t.Fatal("Float on string accepted")
	}
	if _, err := c.Float("nope"); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextStringAt(t *testing.T) {
	c := NewContextFrom("name", "Neem-Sensor", "n", 1)
	s, err := c.StringAt("name")
	if err != nil || s != "Neem-Sensor" {
		t.Fatalf("StringAt = %q, %v", s, err)
	}
	if _, err := c.StringAt("n"); err == nil {
		t.Fatal("StringAt on number accepted")
	}
}

func TestContextFromPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContextFrom("a")
}

func TestContextDeleteLenPaths(t *testing.T) {
	c := NewContextFrom("b", 2, "a", 1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	paths := c.Paths()
	if paths[0] != "a" || paths[1] != "b" {
		t.Fatalf("Paths = %v", paths)
	}
	c.Delete("a")
	if c.Len() != 1 {
		t.Fatal("Delete failed")
	}
}

func TestContextCloneIndependence(t *testing.T) {
	c := NewContextFrom("a", 1)
	cl := c.Clone()
	cl.Put("a", 2)
	if v, _ := c.Get("a"); v != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestContextMerge(t *testing.T) {
	a := NewContextFrom("x", 1, "y", 2)
	b := NewContextFrom("y", 3, "z", 4)
	a.Merge(b)
	if v, _ := a.Get("y"); v != 3 {
		t.Fatal("Merge did not overwrite")
	}
	if v, _ := a.Get("z"); v != 4 {
		t.Fatal("Merge did not add")
	}
	a.Merge(nil) // no-op
}

func TestContextSub(t *testing.T) {
	c := NewContextFrom("sensor/value", 22.0, "sensor/unit", "C", "other/x", 1)
	sub := c.Sub("sensor")
	if sub.Len() != 2 {
		t.Fatalf("Sub len = %d", sub.Len())
	}
	if v, _ := sub.Get("value"); v != 22.0 {
		t.Fatal("Sub did not strip prefix")
	}
	if strings.Contains(sub.String(), "other") {
		t.Fatal("Sub leaked foreign paths")
	}
}

func TestContextString(t *testing.T) {
	c := NewContextFrom("b", 2, "a", 1)
	if got := c.String(); got != "a = 1\nb = 2\n" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Put then Get returns the stored value for arbitrary paths.
func TestPropertyContextRoundTrip(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		c := NewContext()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := map[string]int64{}
		for i := 0; i < n; i++ {
			c.Put(keys[i], vals[i])
			want[keys[i]] = vals[i]
		}
		for k, v := range want {
			got, ok := c.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return c.Len() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureString(t *testing.T) {
	s := Sig("SensorDataAccessor", "getValue")
	if s.String() != "getValue@SensorDataAccessor" {
		t.Fatalf("String = %q", s.String())
	}
	s.ProviderName = "Neem-Sensor"
	if s.String() != "getValue@SensorDataAccessor[Neem-Sensor]" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Initial: "INITIAL", Running: "RUNNING", Done: "DONE", Failed: "FAILED", Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d = %q", s, s.String())
		}
	}
}

func TestTaskBasics(t *testing.T) {
	task := NewTask("read", Sig("X", "get"), nil)
	if task.ID().IsZero() || task.Name() != "read" || task.IsJob() {
		t.Fatal("task basics wrong")
	}
	if task.Status() != Initial || task.Err() != nil {
		t.Fatal("fresh task state wrong")
	}
	if task.Context() == nil {
		t.Fatal("nil context not defaulted")
	}
}

func TestJobAggregatesComponentContexts(t *testing.T) {
	t1 := NewTask("first", Sig("X", "get"), NewContextFrom("out", 1.0))
	t2 := NewTask("second", Sig("X", "get"), NewContextFrom("out", 2.0))
	job := NewJob("combo", Strategy{}, t1, t2)
	if !job.IsJob() || job.Name() != "combo" {
		t.Fatal("job basics wrong")
	}
	job.aggregateContexts()
	v, ok := job.Context().Get("first/out")
	if !ok || v != 1.0 {
		t.Fatalf("aggregate first/out = %v, %v", v, ok)
	}
	if v, _ := job.Context().Get("second/out"); v != 2.0 {
		t.Fatalf("aggregate second/out = %v", v)
	}
}
