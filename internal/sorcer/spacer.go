package sorcer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/ids"
	"sensorcer/internal/resilience"
	"sensorcer/internal/space"
	"sensorcer/internal/txn"
)

// Space entry kinds used by pull-mode federation.
const (
	// EnvelopeKind marks task envelopes awaiting a worker.
	EnvelopeKind = "ExertionEnvelope"
	// ResultKind marks completed envelopes.
	ResultKind = "ResultEnvelope"
)

// Spacer is the pull-mode rendezvous peer: instead of binding providers
// itself, it drops each component task into the tuple space as an
// envelope; any SpaceWorker whose provider implements the signature type
// takes the envelope, executes, and writes back a result. This inverts the
// dispatch direction — workers pull work at their own pace, which is how
// SORCER balances load across heterogeneous providers.
type Spacer struct {
	id   ids.ServiceID
	name string
	// mu guards space, which Rebind swaps after a crash-recovery cycle:
	// jobs in flight pick up the recovered space on their next retry.
	mu    sync.Mutex
	space *space.Space
	// taskTimeout bounds the wait for each result envelope.
	taskTimeout time.Duration
	// envelopeLease bounds how long an unclaimed envelope survives.
	envelopeLease time.Duration
	// await, when non-zero, governs result waits: on a timed-out wait the
	// spacer redispatches the task if its envelope is gone (a worker
	// crashed holding it, or the write was lost) and waits again. Pull
	// federation thereby gets at-least-once delivery; see WithAwaitPolicy.
	await resilience.Policy
}

// SpacerOption customizes a Spacer.
type SpacerOption func(*Spacer)

// WithTaskTimeout sets the per-task result wait (default 10s).
func WithTaskTimeout(d time.Duration) SpacerOption {
	return func(s *Spacer) { s.taskTimeout = d }
}

// WithAwaitPolicy retries timed-out result waits under the policy. Before
// each retry the spacer checks whether the task's envelope is still in the
// space: if it vanished without a result (worker crash mid-execution, lost
// write, expired lease) the task is redispatched. Tasks may therefore
// execute more than once — pull-mode semantics become at-least-once, the
// standard trade for liveness in tuple-space federations. Only timeouts
// are retried; a worker's clean failure report is final.
func WithAwaitPolicy(p resilience.Policy) SpacerOption {
	return func(s *Spacer) {
		if p.Retryable == nil {
			// ErrClosed is retryable alongside ErrTimeout so awaits survive
			// a durable space being closed for crash recovery: once Rebind
			// installs the recovered space, the retry proceeds against it
			// and redispatches any envelope the recovery did not preserve.
			p.Retryable = func(err error) bool {
				return errors.Is(err, space.ErrTimeout) || errors.Is(err, space.ErrClosed)
			}
		}
		s.await = p
	}
}

// NewSpacer creates a pull-mode coordinator over the tuple space.
func NewSpacer(name string, sp *space.Space, opts ...SpacerOption) *Spacer {
	s := &Spacer{
		id:            ids.NewServiceID(),
		name:          name,
		space:         sp,
		taskTimeout:   10 * time.Second,
		envelopeLease: time.Minute,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ID returns the spacer's identity.
func (s *Spacer) ID() ids.ServiceID { return s.id }

// sp returns the current tuple space.
func (s *Spacer) sp() *space.Space {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.space
}

// Rebind points the spacer at a recovered tuple space after the previous
// one was closed by a crash (or an orderly restart). In-flight awaits —
// retrying on ErrClosed under the await policy — continue against the new
// space; recovered-but-untaken envelopes are simply taken by workers
// again, and lost ones are redispatched by the envelope-count check.
func (s *Spacer) Rebind(sp *space.Space) {
	s.mu.Lock()
	s.space = sp
	s.mu.Unlock()
}

// Name returns the spacer's name.
func (s *Spacer) Name() string { return s.name }

// Service implements Servicer for pull-mode jobs. Sequential flow feeds
// envelopes one at a time (honoring pipes); parallel flow floods all
// envelopes and collects results as they land.
func (s *Spacer) Service(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	job, ok := ex.(*Job)
	if !ok {
		return ex, fmt.Errorf("sorcer: spacer coordinates jobs, got %T", ex)
	}
	job.setStatus(Running, nil)
	components := job.Exertions()
	tasks := make([]*Task, len(components))
	for i, c := range components {
		t, ok := c.(*Task)
		if !ok {
			err := fmt.Errorf("sorcer: pull-mode job %q component %q is not a task", job.Name(), c.Name())
			job.setStatus(Failed, err)
			return job, err
		}
		tasks[i] = t
	}

	var err error
	if job.Strategy().Flow == Sequential {
		err = s.runSequential(job, tasks, tx)
	} else {
		err = s.runParallel(tasks, tx)
	}
	job.aggregateContexts()
	if err != nil {
		job.setStatus(Failed, err)
		return job, err
	}
	job.setStatus(Done, nil)
	return job, nil
}

func (s *Spacer) runSequential(job *Job, tasks []*Task, tx *txn.Transaction) error {
	pipes := job.Strategy().Pipes
	for i, t := range tasks {
		for _, p := range pipes {
			if p.ToIndex != i {
				continue
			}
			if p.FromIndex < 0 || p.FromIndex >= i {
				return fmt.Errorf("sorcer: job %q pipe from %d to %d is not backward", job.Name(), p.FromIndex, p.ToIndex)
			}
			v, ok := tasks[p.FromIndex].Context().Get(p.FromPath)
			if !ok {
				return fmt.Errorf("sorcer: job %q pipe source %q missing", job.Name(), p.FromPath)
			}
			t.Context().Put(p.ToPath, v)
		}
		if err := s.dispatch(t, tx); err != nil {
			return err
		}
		if err := s.awaitResult(t, tx); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spacer) runParallel(tasks []*Task, tx *txn.Transaction) error {
	for _, t := range tasks {
		if err := s.dispatch(t, tx); err != nil {
			return err
		}
	}
	for _, t := range tasks {
		if err := s.awaitResult(t, tx); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spacer) dispatch(t *Task, tx *txn.Transaction) error {
	env := space.NewEntry(EnvelopeKind,
		"type", t.Signature().ServiceType,
		"selector", t.Signature().Selector,
		"taskID", t.ID().String(),
		"task", t,
	)
	if _, err := s.sp().Write(env, tx, s.envelopeLease); err != nil {
		return fmt.Errorf("sorcer: writing envelope for %q: %w", t.Name(), err)
	}
	return nil
}

func (s *Spacer) awaitResult(t *Task, tx *txn.Transaction) error {
	return s.await.Run(func(a resilience.Attempt) error {
		if a.N > 1 {
			// Retry: if the envelope is gone but no result ever arrived,
			// the worker (or the envelope itself) was lost mid-flight —
			// put the task back into play.
			envTmpl := space.NewEntry(EnvelopeKind, "taskID", t.ID().String())
			if s.sp().Count(envTmpl) == 0 {
				if err := s.dispatch(t, tx); err != nil {
					return err
				}
			}
		}
		timeout := a.Timeout
		if timeout <= 0 {
			timeout = s.taskTimeout
		}
		tmpl := space.NewEntry(ResultKind, "taskID", t.ID().String())
		res, err := s.sp().Take(tmpl, tx, timeout)
		if err != nil {
			return fmt.Errorf("sorcer: awaiting result of %q: %w", t.Name(), err)
		}
		if failMsg, _ := res.Field("error").(string); failMsg != "" {
			return fmt.Errorf("sorcer: task %q failed in space: %s", t.Name(), failMsg)
		}
		if rt, ok := res.Field("task").(*Task); ok && rt != t {
			// The worker executed a copy of the task — it decoded the
			// envelope from a recovered durable space, where pointer
			// identity does not survive. Graft the copy's outputs onto our
			// instance so the job's aggregated context is complete.
			t.Context().Merge(rt.Context())
			FinishTask(t, nil, nil)
		}
		return nil
	})
}

// SpaceWorker pulls envelopes for one service type from the space and
// executes them against its servicer — the worker side of pull-mode
// federation. Attach one to each provider that should serve space jobs.
type SpaceWorker struct {
	space       *space.Space
	servicer    Servicer
	serviceType string
	stop        chan struct{}
	done        chan struct{}
}

// NewSpaceWorker starts a worker pulling envelopes of serviceType.
func NewSpaceWorker(sp *space.Space, servicer Servicer, serviceType string) *SpaceWorker {
	w := &SpaceWorker{
		space:       sp,
		servicer:    servicer,
		serviceType: serviceType,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go w.loop()
	return w
}

// Stop halts the worker after its current envelope.
func (w *SpaceWorker) Stop() {
	close(w.stop)
	<-w.done
}

func (w *SpaceWorker) loop() {
	defer close(w.done)
	tmpl := space.NewEntry(EnvelopeKind, "type", w.serviceType)
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		env, err := w.space.Take(tmpl, nil, 50*time.Millisecond)
		if err != nil {
			if err == space.ErrClosed {
				return
			}
			continue // timeout: poll the stop channel again
		}
		task, ok := env.Field("task").(*Task)
		if !ok {
			continue // malformed envelope
		}
		_, execErr := w.servicer.Service(task, nil)
		// The executed task rides along so a spacer holding a different
		// instance (envelope recovered from a durable space) still gets
		// the outputs.
		result := space.NewEntry(ResultKind, "taskID", task.ID().String(), "task", task)
		if execErr != nil {
			result.Fields["error"] = execErr.Error()
		}
		// Best effort: if the space is closing, the spacer times out.
		_, _ = w.space.Write(result, nil, time.Minute)
	}
}
