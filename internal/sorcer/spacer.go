package sorcer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/resilience"
	"sensorcer/internal/space"
	"sensorcer/internal/txn"
)

// SpaceOps is the tuple-space surface pull-mode federation runs on: the
// operations Spacer and SpaceWorker use, lifted to an interface so a
// federation binds equally to one *space.Space or to a replicated,
// shard-routed *repl.Router — failover then looks like a transient
// retry instead of a rebind.
type SpaceOps interface {
	// Write stores one entry under a lease.
	Write(e space.Entry, tx *txn.Transaction, leaseDur time.Duration) (lease.Lease, error)
	// WriteBatch stores entries under one group commit.
	WriteBatch(entries []space.Entry, tx *txn.Transaction, leaseDur time.Duration) ([]lease.Lease, error)
	// Read blocks up to timeout for a match without removing it.
	Read(tmpl space.Entry, tx *txn.Transaction, timeout time.Duration) (space.Entry, error)
	// Take blocks up to timeout to remove and return a match.
	Take(tmpl space.Entry, tx *txn.Transaction, timeout time.Duration) (space.Entry, error)
	// TakeAny removes up to max matches, blocking for the first.
	TakeAny(tmpl space.Entry, max int, tx *txn.Transaction, timeout time.Duration) ([]space.Entry, error)
	// Count reports how many visible entries match.
	Count(tmpl space.Entry) int
}

// Space entry kinds used by pull-mode federation.
const (
	// EnvelopeKind marks task envelopes awaiting a worker.
	EnvelopeKind = "ExertionEnvelope"
	// ResultKind marks completed envelopes.
	ResultKind = "ResultEnvelope"
)

// Spacer is the pull-mode rendezvous peer: instead of binding providers
// itself, it drops each component task into the tuple space as an
// envelope; any SpaceWorker whose provider implements the signature type
// takes the envelope, executes, and writes back a result. This inverts the
// dispatch direction — workers pull work at their own pace, which is how
// SORCER balances load across heterogeneous providers.
type Spacer struct {
	id   ids.ServiceID
	name string
	// mu guards space, which Rebind swaps after a crash-recovery cycle:
	// jobs in flight pick up the recovered space on their next retry.
	mu    sync.Mutex
	space SpaceOps
	// taskTimeout bounds the wait for each result envelope.
	taskTimeout time.Duration
	// envelopeLease bounds how long an unclaimed envelope survives.
	envelopeLease time.Duration
	// await, when non-zero, governs result waits: on a timed-out wait the
	// spacer redispatches the task if its envelope is gone (a worker
	// crashed holding it, or the write was lost) and waits again. Pull
	// federation thereby gets at-least-once delivery; see WithAwaitPolicy.
	await resilience.Policy
	// perEnvelope reverts parallel jobs to one Write/Take per task (see
	// WithPerEnvelopeDispatch). Default is batched dispatch.
	perEnvelope bool
}

// SpacerOption customizes a Spacer.
type SpacerOption func(*Spacer)

// WithTaskTimeout sets the per-task result wait (default 10s).
func WithTaskTimeout(d time.Duration) SpacerOption {
	return func(s *Spacer) { s.taskTimeout = d }
}

// WithAwaitPolicy retries timed-out result waits under the policy. Before
// each retry the spacer checks whether the task's envelope is still in the
// space: if it vanished without a result (worker crash mid-execution, lost
// write, expired lease) the task is redispatched. Tasks may therefore
// execute more than once — pull-mode semantics become at-least-once, the
// standard trade for liveness in tuple-space federations. Only timeouts
// are retried; a worker's clean failure report is final.
func WithAwaitPolicy(p resilience.Policy) SpacerOption {
	return func(s *Spacer) {
		if p.Retryable == nil {
			// ErrClosed is retryable alongside ErrTimeout so awaits survive
			// a durable space being closed for crash recovery: once Rebind
			// installs the recovered space, the retry proceeds against it
			// and redispatches any envelope the recovery did not preserve.
			p.Retryable = func(err error) bool {
				return errors.Is(err, space.ErrTimeout) || errors.Is(err, space.ErrClosed)
			}
		}
		s.await = p
	}
}

// WithPerEnvelopeDispatch makes parallel jobs write one envelope and take
// one result at a time instead of batching through WriteBatch/TakeAny —
// the pre-batching behavior, kept for comparison benchmarks and as an
// escape hatch. Semantics are identical either way; batching only changes
// how many lock acquisitions and journal fsyncs a job costs.
func WithPerEnvelopeDispatch() SpacerOption {
	return func(s *Spacer) { s.perEnvelope = true }
}

// NewSpacer creates a pull-mode coordinator over the tuple space (a
// single *space.Space or a replicated *repl.Router).
func NewSpacer(name string, sp SpaceOps, opts ...SpacerOption) *Spacer {
	s := &Spacer{
		id:            ids.NewServiceID(),
		name:          name,
		space:         sp,
		taskTimeout:   10 * time.Second,
		envelopeLease: time.Minute,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ID returns the spacer's identity.
func (s *Spacer) ID() ids.ServiceID { return s.id }

// sp returns the current tuple space.
func (s *Spacer) sp() SpaceOps {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.space
}

// Rebind points the spacer at a recovered tuple space after the previous
// one was closed by a crash (or an orderly restart). In-flight awaits —
// retrying on ErrClosed under the await policy — continue against the new
// space; recovered-but-untaken envelopes are simply taken by workers
// again, and lost ones are redispatched by the envelope-count check.
// (A Spacer bound to a repl.Router never needs Rebind: the router
// re-routes to the promoted primary internally.)
func (s *Spacer) Rebind(sp SpaceOps) {
	s.mu.Lock()
	s.space = sp
	s.mu.Unlock()
}

// Name returns the spacer's name.
func (s *Spacer) Name() string { return s.name }

// Service implements Servicer for pull-mode jobs. Sequential flow feeds
// envelopes one at a time (honoring pipes); parallel flow floods all
// envelopes and collects results as they land.
func (s *Spacer) Service(ex Exertion, tx *txn.Transaction) (Exertion, error) {
	job, ok := ex.(*Job)
	if !ok {
		return ex, fmt.Errorf("sorcer: spacer coordinates jobs, got %T", ex)
	}
	job.setStatus(Running, nil)
	components := job.Exertions()
	tasks := make([]*Task, len(components))
	for i, c := range components {
		t, ok := c.(*Task)
		if !ok {
			err := fmt.Errorf("sorcer: pull-mode job %q component %q is not a task", job.Name(), c.Name())
			job.setStatus(Failed, err)
			return job, err
		}
		tasks[i] = t
	}

	var err error
	if job.Strategy().Flow == Sequential {
		err = s.runSequential(job, tasks, tx)
	} else {
		err = s.runParallel(tasks, tx)
	}
	job.aggregateContexts()
	if err != nil {
		job.setStatus(Failed, err)
		return job, err
	}
	job.setStatus(Done, nil)
	return job, nil
}

func (s *Spacer) runSequential(job *Job, tasks []*Task, tx *txn.Transaction) error {
	pipes := job.Strategy().Pipes
	for i, t := range tasks {
		for _, p := range pipes {
			if p.ToIndex != i {
				continue
			}
			if p.FromIndex < 0 || p.FromIndex >= i {
				return fmt.Errorf("sorcer: job %q pipe from %d to %d is not backward", job.Name(), p.FromIndex, p.ToIndex)
			}
			v, ok := tasks[p.FromIndex].Context().Get(p.FromPath)
			if !ok {
				return fmt.Errorf("sorcer: job %q pipe source %q missing", job.Name(), p.FromPath)
			}
			t.Context().Put(p.ToPath, v)
		}
		if err := s.dispatch(t, tx); err != nil {
			return err
		}
		if err := s.awaitResult(t, tx); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spacer) runParallel(tasks []*Task, tx *txn.Transaction) error {
	if s.perEnvelope {
		for _, t := range tasks {
			if err := s.dispatch(t, tx); err != nil {
				return err
			}
		}
		for _, t := range tasks {
			if err := s.awaitResult(t, tx); err != nil {
				return err
			}
		}
		return nil
	}
	return s.runParallelBatch(tasks, tx)
}

// runParallelBatch floods every component envelope into the space as one
// WriteBatch (one lock, one journal group commit) and collects results
// with TakeAny against a job-unique batch tag, so an n-task job costs a
// couple of space operations instead of 2n. The at-least-once contract is
// unchanged: on a timed-out attempt, every pending task whose envelope
// vanished without a result is redispatched — again as one batch.
func (s *Spacer) runParallelBatch(tasks []*Task, tx *txn.Transaction) error {
	batchID := ids.NewServiceID().String()
	pending := make(map[string]*Task, len(tasks))
	for _, t := range tasks {
		pending[t.ID().String()] = t
	}
	if err := s.dispatchBatch(tasks, batchID, tx); err != nil {
		return err
	}
	tmpl := space.NewEntry(ResultKind, "batchID", batchID)
	return s.await.Run(func(a resilience.Attempt) error {
		if a.N > 1 {
			var lost []*Task
			for id, t := range pending {
				if s.sp().Count(space.NewEntry(EnvelopeKind, "taskID", id)) == 0 {
					lost = append(lost, t)
				}
			}
			if len(lost) > 0 {
				if err := s.dispatchBatch(lost, batchID, tx); err != nil {
					return err
				}
			}
		}
		timeout := a.Timeout
		if timeout <= 0 {
			timeout = s.taskTimeout
		}
		for len(pending) > 0 {
			results, err := s.sp().TakeAny(tmpl, len(pending), tx, timeout)
			if err != nil {
				return fmt.Errorf("sorcer: awaiting batch results: %w", err)
			}
			for _, res := range results {
				id, _ := res.Field("taskID").(string)
				t, ok := pending[id]
				if !ok {
					continue // duplicate from an at-least-once re-execution
				}
				if failMsg, _ := res.Field("error").(string); failMsg != "" {
					return fmt.Errorf("sorcer: task %q failed in space: %s", t.Name(), failMsg)
				}
				if rt, ok := res.Field("task").(*Task); ok && rt != t {
					t.Context().Merge(rt.Context())
					FinishTask(t, nil, nil)
				}
				delete(pending, id)
			}
		}
		return nil
	})
}

func (s *Spacer) dispatchBatch(tasks []*Task, batchID string, tx *txn.Transaction) error {
	envs := make([]space.Entry, len(tasks))
	for i, t := range tasks {
		envs[i] = space.NewEntry(EnvelopeKind,
			"type", t.Signature().ServiceType,
			"selector", t.Signature().Selector,
			"taskID", t.ID().String(),
			"batchID", batchID,
			"task", t,
		)
	}
	if _, err := s.sp().WriteBatch(envs, tx, s.envelopeLease); err != nil {
		return fmt.Errorf("sorcer: writing %d envelope(s): %w", len(envs), err)
	}
	return nil
}

func (s *Spacer) dispatch(t *Task, tx *txn.Transaction) error {
	env := space.NewEntry(EnvelopeKind,
		"type", t.Signature().ServiceType,
		"selector", t.Signature().Selector,
		"taskID", t.ID().String(),
		"task", t,
	)
	if _, err := s.sp().Write(env, tx, s.envelopeLease); err != nil {
		return fmt.Errorf("sorcer: writing envelope for %q: %w", t.Name(), err)
	}
	return nil
}

func (s *Spacer) awaitResult(t *Task, tx *txn.Transaction) error {
	return s.await.Run(func(a resilience.Attempt) error {
		if a.N > 1 {
			// Retry: if the envelope is gone but no result ever arrived,
			// the worker (or the envelope itself) was lost mid-flight —
			// put the task back into play.
			envTmpl := space.NewEntry(EnvelopeKind, "taskID", t.ID().String())
			if s.sp().Count(envTmpl) == 0 {
				if err := s.dispatch(t, tx); err != nil {
					return err
				}
			}
		}
		timeout := a.Timeout
		if timeout <= 0 {
			timeout = s.taskTimeout
		}
		tmpl := space.NewEntry(ResultKind, "taskID", t.ID().String())
		res, err := s.sp().Take(tmpl, tx, timeout)
		if err != nil {
			return fmt.Errorf("sorcer: awaiting result of %q: %w", t.Name(), err)
		}
		if failMsg, _ := res.Field("error").(string); failMsg != "" {
			return fmt.Errorf("sorcer: task %q failed in space: %s", t.Name(), failMsg)
		}
		if rt, ok := res.Field("task").(*Task); ok && rt != t {
			// The worker executed a copy of the task — it decoded the
			// envelope from a recovered durable space, where pointer
			// identity does not survive. Graft the copy's outputs onto our
			// instance so the job's aggregated context is complete.
			t.Context().Merge(rt.Context())
			FinishTask(t, nil, nil)
		}
		return nil
	})
}

// SpaceWorker pulls envelopes for one service type from the space and
// executes them against its servicer — the worker side of pull-mode
// federation. Attach one to each provider that should serve space jobs.
type SpaceWorker struct {
	space       SpaceOps
	servicer    Servicer
	serviceType string
	batch       int
	stop        chan struct{}
	done        chan struct{}
}

// WorkerOption customizes a SpaceWorker.
type WorkerOption func(*SpaceWorker)

// DefaultWorkerBatch is how many envelopes a worker drains per space
// visit when WithWorkerBatch is not given.
const DefaultWorkerBatch = 8

// WithWorkerBatch sets how many envelopes the worker takes per space
// visit (and how many results it writes back as one batch). 1 reproduces
// the historical one-envelope-at-a-time loop; larger values amortize the
// space's lock and — on a durable space — its journal fsync across the
// batch. Envelopes in a batch still execute sequentially, so a worker
// never holds more work than it can finish before its results land.
func WithWorkerBatch(n int) WorkerOption {
	return func(w *SpaceWorker) {
		if n > 0 {
			w.batch = n
		}
	}
}

// NewSpaceWorker starts a worker pulling envelopes of serviceType.
func NewSpaceWorker(sp SpaceOps, servicer Servicer, serviceType string, opts ...WorkerOption) *SpaceWorker {
	w := &SpaceWorker{
		space:       sp,
		servicer:    servicer,
		serviceType: serviceType,
		batch:       DefaultWorkerBatch,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, o := range opts {
		o(w)
	}
	go w.loop()
	return w
}

// Stop halts the worker after its current envelope.
func (w *SpaceWorker) Stop() {
	close(w.stop)
	<-w.done
}

func (w *SpaceWorker) loop() {
	defer close(w.done)
	tmpl := space.NewEntry(EnvelopeKind, "type", w.serviceType)
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		envs, err := w.space.TakeAny(tmpl, w.batch, nil, 50*time.Millisecond)
		if err != nil {
			if errors.Is(err, space.ErrClosed) {
				return
			}
			continue // timeout: poll the stop channel again
		}
		results := make([]space.Entry, 0, len(envs))
		for _, env := range envs {
			task, ok := env.Field("task").(*Task)
			if !ok {
				continue // malformed envelope
			}
			_, execErr := w.servicer.Service(task, nil)
			// The executed task rides along so a spacer holding a different
			// instance (envelope recovered from a durable space) still gets
			// the outputs. The batch tag rides along too, so a spacer
			// awaiting a whole batch sees this result.
			result := space.NewEntry(ResultKind, "taskID", task.ID().String(), "task", task)
			if batchID, _ := env.Field("batchID").(string); batchID != "" {
				result.Fields["batchID"] = batchID
			}
			if execErr != nil {
				result.Fields["error"] = execErr.Error()
			}
			results = append(results, result)
		}
		// Best effort: if the space is closing, the spacer times out.
		if len(results) > 0 {
			_, _ = w.space.WriteBatch(results, nil, time.Minute)
		}
	}
}
