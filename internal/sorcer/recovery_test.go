package sorcer

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/resilience"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// recoverSpace opens (or reopens) the durable space journaled in dir.
func recoverSpace(t *testing.T, dir string) (*space.Space, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := space.Recover(clockwork.Real(), lease.Policy{Max: time.Hour}, l)
	if err != nil {
		t.Fatal(err)
	}
	return sp, l
}

// restartSpacer returns a spacer whose await policy rides out a space
// restart: closed-space errors retry until Rebind installs the recovered
// space.
func restartSpacer(sp *space.Space) *Spacer {
	return NewSpacer("Spacer-1", sp,
		WithTaskTimeout(500*time.Millisecond),
		WithAwaitPolicy(resilience.Policy{
			MaxAttempts: 40,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		}))
}

func awaitEnvelopes(t *testing.T, sp *space.Space, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sp.Count(space.NewEntry(EnvelopeKind)) < want {
		if time.Now().After(deadline) {
			t.Fatalf("envelopes never reached %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpacerJobCompletesAcrossSpaceRestart kills the durable exertion
// space while a pull-mode job's envelopes are waiting in it — no worker
// has taken them yet — then recovers the space from its journal, rebinds
// the spacer, and only then starts workers. The recovered envelopes (with
// their task payloads rebuilt by the task codec) must be served and the
// job must complete end-to-end with correct results.
func TestSpacerJobCompletesAcrossSpaceRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "space-wal")
	sp, l := recoverSpace(t, dir)
	spacer := restartSpacer(sp)

	var tasks []Exertion
	for i := 0; i < 3; i++ {
		tasks = append(tasks, NewTask(fmt.Sprintf("t%d", i),
			Sig("Adder", "add"), NewContextFrom("arg/a", float64(i), "arg/b", 100.0)))
	}
	job := NewJob("restart-job", Strategy{Flow: Parallel, Access: Pull}, tasks...)

	done := make(chan error, 1)
	go func() {
		_, err := spacer.Service(job, nil)
		done <- err
	}()

	// All three envelopes written and journaled; no worker is running, so
	// they are still in the space. Crash it.
	awaitEnvelopes(t, sp, 3)
	sp.Close()
	_ = l.Close()

	// Recover, rebind, and only now provide workers.
	sp2, l2 := recoverSpace(t, dir)
	defer func() { sp2.Close(); _ = l2.Close() }()
	if n := sp2.Count(space.NewEntry(EnvelopeKind)); n != 3 {
		t.Fatalf("recovered %d envelopes, want 3", n)
	}
	spacer.Rebind(sp2)
	w := NewSpaceWorker(sp2, adderProvider("Adder-1"), "Adder")
	defer w.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed across restart: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job did not complete after space recovery")
	}
	if job.Status() != Done {
		t.Fatalf("job status = %v", job.Status())
	}
	for i := 0; i < 3; i++ {
		v, err := job.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+100) {
			t.Fatalf("t%d result = %v, %v", i, v, err)
		}
	}
}

// TestSpacerRedispatchAfterSpaceRestart covers the other
// recovery path: a worker takes the envelope (the take is journaled, so
// the entry is durably gone) and dies before producing a result. After
// the space restarts, the envelope is absent — the spacer's await retry
// notices and redispatches the task.
func TestSpacerRedispatchAfterSpaceRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "space-wal")
	sp, l := recoverSpace(t, dir)
	spacer := restartSpacer(sp)

	task := NewTask("t0", Sig("Adder", "add"), NewContextFrom("arg/a", 7.0, "arg/b", 3.0))
	job := NewJob("redispatch-job", Strategy{Flow: Parallel, Access: Pull}, task)

	done := make(chan error, 1)
	go func() {
		_, err := spacer.Service(job, nil)
		done <- err
	}()

	// A doomed worker takes the envelope and crashes with it: the take is
	// durable, the result never arrives.
	awaitEnvelopes(t, sp, 1)
	if _, err := sp.Take(space.NewEntry(EnvelopeKind), nil, time.Second); err != nil {
		t.Fatal(err)
	}
	sp.Close()
	_ = l.Close()

	sp2, l2 := recoverSpace(t, dir)
	defer func() { sp2.Close(); _ = l2.Close() }()
	if n := sp2.Count(space.NewEntry(EnvelopeKind)); n != 0 {
		t.Fatalf("taken envelope resurrected: %d", n)
	}
	spacer.Rebind(sp2)
	w := NewSpaceWorker(sp2, adderProvider("Adder-1"), "Adder")
	defer w.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed after worker loss: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("task was never redispatched")
	}
	if v, err := job.Context().Float("t0/result/value"); err != nil || v != 10 {
		t.Fatalf("result = %v, %v", v, err)
	}
}
