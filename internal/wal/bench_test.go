package wal

import (
	"fmt"
	"sync"
	"testing"
)

// benchPayload is a representative journal record: roughly the size of a
// JSON-encoded space write with a small envelope.
var benchPayload = make([]byte, 256)

func benchmarkAppend(b *testing.B, syncEach bool) {
	l, err := Open(b.TempDir(), WithSyncEveryAppend(syncEach))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendNoSync(b *testing.B) { benchmarkAppend(b, false) }

func BenchmarkAppendSyncEach(b *testing.B) { benchmarkAppend(b, true) }

// benchmarkAppendConcurrent drives 8 appender goroutines against a synced
// log. opts chooses the commit protocol: group commit (the default) shares
// one fsync across the batch, while WithGroupCommit(1, 0) is the historical
// one-fsync-per-append baseline. The acceptance bar for group commit is
// >= 3x the baseline's throughput at 8 goroutines.
func benchmarkAppendConcurrent(b *testing.B, opts ...Option) {
	const workers = 8
	l, err := Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := b.N / workers
			if w < b.N%workers {
				n++
			}
			for i := 0; i < n; i++ {
				if _, err := l.Append(benchPayload); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkAppendGroupCommit8(b *testing.B) {
	benchmarkAppendConcurrent(b)
}

func BenchmarkAppendPerAppendSync8(b *testing.B) {
	benchmarkAppendConcurrent(b, WithGroupCommit(1, 0))
}

// BenchmarkRecovery measures Open+Replay time against log size.
func BenchmarkRecovery(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, WithSyncEveryAppend(false))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if _, err := l.Append(benchPayload); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				if err := re.Replay(func(uint64, []byte) error { n++; return nil }); err != nil {
					b.Fatal(err)
				}
				if n != records {
					b.Fatalf("replayed %d, want %d", n, records)
				}
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryWithSnapshot shows what compaction buys: the same
// history, but checkpointed so recovery loads the snapshot plus a short
// record suffix.
func BenchmarkRecoveryWithSnapshot(b *testing.B) {
	const records = 50_000
	dir := b.TempDir()
	l, err := Open(dir, WithSyncEveryAppend(false))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := re.Replay(func(uint64, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 100 {
			b.Fatalf("replayed %d, want 100", n)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
